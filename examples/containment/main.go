// Containment under summary constraints: reasoning impossible without the
// summary becomes decidable — and pattern minimization drops redundant
// nodes (Chapter 4 walkthrough on XMark-like data).
package main

import (
	"fmt"
	"log"

	"xamdb/internal/containment"
	"xamdb/internal/datagen"
	"xamdb/internal/summary"
	"xamdb/internal/xam"
)

func main() {
	doc := datagen.XMark(3, 8, 6)
	s := summary.Build(doc)
	st := s.Stats()
	fmt.Printf("XMark-like document: %d nodes; summary: %d paths, %d strong edges (%d one-to-one)\n\n",
		doc.Size(), st.Paths, st.StrongEdge, st.OneToOne)

	check := func(p, q string) {
		pp, qq := xam.MustParse(p), xam.MustParse(q)
		ok, err := containment.Contained(pp, qq, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-55s ⊆  %-55s : %v\n", p, q, ok)
	}

	// Every listitem under an item sits inside its description subtree, so
	// the summary proves the equivalence of short and long navigation.
	// (Keywords would not do: they also occur inside mail texts.)
	check(`// item(// listitem{id s})`, `// item(/ description(// listitem{id s}))`)
	check(`// item(/ description(// listitem{id s}))`, `// item(// listitem{id s})`)
	check(`// item(// keyword{id s})`, `// item(/ description(// keyword{id s}))`)

	// A region child with a description child can only be an item.
	check(`// regions(/ *(/ *{id s}(/(s) description)))`, `// item{id s}`)

	// But not every item-shaped thing is under europe.
	check(`// item{id s}`, `// europe(/ item{id s})`)

	// Value predicates: v=3 implies v≤10, never the converse.
	check(`// quantity{id s, val=3}`, `// quantity{id s, val<=10}`)
	check(`// quantity{id s, val<=10}`, `// quantity{id s, val=3}`)

	// Canonical model sizes (the |mod_S(p)| of Figure 4.14).
	for _, src := range []string{
		`// item{id s}`,
		`// *(// keyword{id s})`,
		`// item{id s}(/(o) mailbox(/ mail{id s}))`,
	} {
		model := containment.CanonicalModel(xam.MustParse(src), s)
		fmt.Printf("\n|mod_S(%s)| = %d", src, len(model))
	}

	// Minimization by S-contraction: the parlist hop is redundant.
	p := xam.MustParse(`// description(// parlist(// listitem(// keyword{id s})))`)
	min, err := containment.MinimizeByContraction(p, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n\nminimizing %s (%d nodes):\n", p, p.Size())
	for _, m := range min {
		fmt.Printf("  minimal: %s (%d nodes)\n", m, m.Size())
	}
}
