// Quickstart: parse a document, inspect its path summary, describe a storage
// structure with a XAM and evaluate it, then run an XQuery through the
// engine.
package main

import (
	"fmt"
	"log"

	"xamdb/internal/engine"
	"xamdb/internal/storage"
	"xamdb/internal/summary"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
)

const bib = `<bib>
  <book year="1999">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Suciu</author>
  </book>
  <book year="2002">
    <title>The Syntactic Web</title>
    <author>Tom Lerners-Bee</author>
  </book>
  <phdthesis year="2004">
    <title>The Web: next generation</title>
    <author>Jim Smith</author>
  </phdthesis>
</bib>`

func main() {
	// 1. Parse; every node receives (pre, post, depth) and Dewey IDs.
	doc, err := xmltree.Parse("bib.xml", bib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document %s: %d nodes\n", doc.Name, doc.Size())

	// 2. The path summary (strong DataGuide) with 1/+ integrity edges.
	s := summary.Build(doc)
	fmt.Printf("\npath summary (%d paths):\n%s\n", s.Size(), s)

	// 3. A XAM describing a materialized view: publications with their
	// year attribute (required present via the semijoin edge), nesting the
	// authors.
	pat := xam.MustParse(`// *{id s, tag}(/(s) @year, /(nj) author{val})`)
	rel, err := pat.Eval(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XAM %s\n%s\n", pat, rel)

	// 4. An index: books by (year, title) — the booksByYearTitle of §2.1.2.
	ix, err := storage.BuildIndex(doc, "booksByYearTitle",
		`// book{id s}(/ @year{val R}, / title{val R})`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index %s over %d entries, key %s\n\n", ix.Name, ix.Size(), ix.BindingSchema())

	// 5. Queries through the engine (falls back to the base store here).
	e := engine.New()
	e.AddDocument(doc)
	out, rep, err := e.Query(`for $x in doc("bib.xml")//book where $x/@year = "1999" ` +
		`return <info>{$x/author}{$x/title}</info>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
	fmt.Println("result:", out)
}
