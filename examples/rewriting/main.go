// Rewriting XQuery over materialized XAM views (Chapter 5): register views,
// extract the query's maximal patterns, enumerate equivalent plans, execute
// the cheapest and check it against direct evaluation.
package main

import (
	"fmt"
	"log"

	"xamdb/internal/datagen"
	"xamdb/internal/rewrite"
	"xamdb/internal/summary"
	"xamdb/internal/xam"
	"xamdb/internal/xquery"
)

func main() {
	doc := datagen.XMark(3, 8, 6)
	s := summary.Build(doc)

	// Materialized views, described as XAMs (§5.2's V1/V2 in spirit).
	views := []*rewrite.View{
		{Name: "v_items", Pattern: xam.MustParse(`// item{id s}`)},
		{Name: "v_names", Pattern: xam.MustParse(`// item(/ name{id s, val})`)},
		{Name: "v_locations", Pattern: xam.MustParse(`// location{id s, val}`)},
	}
	rw := rewrite.NewRewriter(s, views, rewrite.Options{})
	env, err := rw.Materialize(doc)
	if err != nil {
		log.Fatal(err)
	}

	// A query pattern needing item IDs paired with location values.
	q := xam.MustParse(`// item{id s}(/ location{id s, val})`)
	plans, err := rw.Rewrite(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query pattern: %s\n%d equivalent plans:\n", q, len(plans))
	for _, p := range plans {
		fmt.Printf("  cost %2d: %s\n", p.Plan.Cost(), p.Plan)
	}
	if len(plans) == 0 {
		log.Fatal("no rewriting")
	}
	got, err := plans[0].Execute(env)
	if err != nil {
		log.Fatal(err)
	}
	want, err := q.Eval(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest plan returns %d tuples; direct evaluation %d tuples; equal: %v\n",
		got.Len(), want.Len(), got.EqualAsSet(want))

	// The same machinery behind full XQuery: extract, then rewrite.
	query := `for $x in doc("xmark.xml")//item return <r>{$x/name/text()}</r>`
	ex, err := xquery.Extract(xquery.MustParse(query))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nXQuery: %s\nextracted maximal pattern: %s\n", query, ex.Patterns[0])
}
