// Physical data independence in action: the same XQuery runs unchanged over
// four different storage schemes — the engine only ever sees their XAM
// descriptions (Chapter 2's thesis statement).
package main

import (
	"fmt"
	"log"

	"xamdb/internal/datagen"
	"xamdb/internal/engine"
	"xamdb/internal/rewrite"
	"xamdb/internal/storage"
	"xamdb/internal/xmltree"
)

const query = `doc("dblp.xml")//article/title/text()`

func run(label string, build func(doc *xmltree.Document, e *engine.Engine) (*storage.Store, error)) {
	doc := datagen.DBLP(18)
	e := engine.New()
	// A demo wants the first plan fast, not the full plan space.
	e.Opts = rewrite.Options{MaxPlans: 1, MaxCandidates: 400}
	e.AddDocument(doc)
	st, err := build(doc, e)
	if err != nil {
		log.Fatal(err)
	}
	if st != nil {
		if err := e.RegisterStore(doc.Name, st); err != nil {
			log.Fatal(err)
		}
	}
	out, rep, err := e.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	modules := 0
	if st != nil {
		modules = len(st.Modules)
	}
	fmt.Printf("=== %-16s (%d modules)\n", label, modules)
	fmt.Print(rep)
	fmt.Printf("  result size: %d bytes\n\n", len(out))
}

func main() {
	fmt.Printf("query: %s\n\n", query)
	run("base only", func(doc *xmltree.Document, e *engine.Engine) (*storage.Store, error) {
		return nil, nil
	})
	run("tag-partitioned", func(doc *xmltree.Document, e *engine.Engine) (*storage.Store, error) {
		return storage.TagPartitioned(doc)
	})
	run("path-partitioned", func(doc *xmltree.Document, e *engine.Engine) (*storage.Store, error) {
		return storage.PathPartitioned(doc, e.Summary(doc.Name))
	})
	run("node store", func(doc *xmltree.Document, e *engine.Engine) (*storage.Store, error) {
		return storage.NodeStore(doc)
	})
	run("hybrid inlined", func(doc *xmltree.Document, e *engine.Engine) (*storage.Store, error) {
		return storage.Hybrid(doc, e.Summary(doc.Name))
	})
}
