// Indexes and persistence: composite-key indexes with R-marked XAMs
// (restricted semantics via nested tuple intersection), full-text indexes,
// and saving/reloading a store — Chapter 2's index models in action.
package main

import (
	"bytes"
	"fmt"
	"log"

	"xamdb/internal/algebra"
	"xamdb/internal/datagen"
	"xamdb/internal/storage"
	"xamdb/internal/xmltree"
)

func main() {
	doc := datagen.DBLP(40)
	fmt.Printf("document %s: %d nodes\n\n", doc.Name, doc.Size())

	// 1. A composite-key index, the booksByYearTitle of §2.1.2: the R marks
	// on year and title make them the lookup key.
	ix, err := storage.BuildIndex(doc, "articlesByYearTitle",
		`// article{id s}(/ year{val R}, / title{val R, val})`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index %s: %d entries, key %s\n", ix.Name, ix.Size(), ix.BindingSchema())

	// Probe it: first find a real (year, title) pair to look up.
	probeYear, probeTitle := findProbe(doc)
	bindings := algebra.NewRelation(ix.BindingSchema())
	bindings.Add(algebra.Tuple{algebra.S(probeYear), algebra.S(probeTitle)})
	hit, err := ix.Lookup(bindings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup (%s, %q): %d article(s)\n", probeYear, probeTitle, hit.Len())

	miss := algebra.NewRelation(ix.BindingSchema())
	miss.Add(algebra.Tuple{algebra.S("1850"), algebra.S("No Such Paper")})
	empty, _ := ix.Lookup(miss)
	fmt.Printf("lookup (1850, \"No Such Paper\"): %d article(s)\n\n", empty.Len())

	// 2. A full-text index over titles (the IndexFabric-style FTI).
	fti, err := storage.BuildFullTextIndex(doc, "titleWords", `// title{id s, val}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-text index: %d distinct words\n", fti.Words())
	for _, w := range []string{"data", "web", "zebra"} {
		fmt.Printf("  %-8q -> %d title(s)\n", w, len(fti.Lookup(w)))
	}

	// 3. Persistence: a store survives serialization, pattern and extents
	// included.
	st, err := storage.TagPartitioned(doc)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := storage.SaveStore(&buf, st); err != nil {
		log.Fatal(err)
	}
	again, err := storage.LoadStore(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstore %s: %d modules, %d tuples — serialized to %d bytes, reloaded intact: %v\n",
		st.Name, len(st.Modules), st.TotalTuples(), buf.Cap(),
		again.TotalTuples() == st.TotalTuples())
}

// findProbe extracts the first article's (year, title) for the demo lookup.
func findProbe(doc *xmltree.Document) (year, title string) {
	for _, pub := range doc.Root.Elements() {
		if pub.Label != "article" {
			continue
		}
		for _, c := range pub.Elements() {
			switch c.Label {
			case "year":
				year = c.Value()
			case "title":
				title = c.Value()
			}
		}
		if year != "" && title != "" {
			return year, title
		}
	}
	return "", ""
}
