// Package xamdb's root benchmark suite: one testing.B benchmark per table /
// figure of the thesis's evaluation, driving the same harness as
// cmd/xambench (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// paper-vs-measured record).
package xamdb_test

import (
	"context"
	"testing"

	"xamdb/internal/bench"
	"xamdb/internal/containment"
	"xamdb/internal/datagen"
	"xamdb/internal/patgen"
	"xamdb/internal/rewrite"
	"xamdb/internal/summary"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
	"xamdb/internal/xquery"
)

// E1 / Figure 4.13 — summary construction over every dataset.
func BenchmarkSummaryBuild(b *testing.B) {
	xmark := datagen.XMark(5, 20, 15)
	dblp := datagen.DBLP(150)
	b.Run("XMark", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			summary.Build(xmark)
		}
	})
	b.Run("DBLP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			summary.Build(dblp)
		}
	})
}

// E2 / Figure 4.14 (top) — self-containment of the 20 XMark query patterns.
func BenchmarkContainmentXMarkQueries(b *testing.B) {
	d := bench.XMarkDataset()
	var pats []*xam.Pattern
	for _, src := range bench.XMarkQueryPatternSources() {
		pats = append(pats, xam.MustParse(src))
	}
	// Query 7's canonical model is two orders of magnitude larger; bench it
	// apart so the common case is visible.
	b.Run("typical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for qi, p := range pats {
				if qi == 6 {
					continue
				}
				if ok, err := containment.Contained(p, p, d.Summary); err != nil || !ok {
					b.Fatal(qi, ok, err)
				}
			}
		}
	})
	b.Run("query7-outlier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ok, err := containment.Contained(pats[6], pats[6], d.Summary); err != nil || !ok {
				b.Fatal(ok, err)
			}
		}
	})
}

// E3 / Figure 4.14 (bottom) — synthetic pattern containment over the XMark
// summary, by pattern size.
func BenchmarkContainmentSyntheticXMark(b *testing.B) {
	benchSynthetic(b, bench.XMarkDataset())
}

// E4 / Figure 4.15 — the same over the DBLP summary (expected several times
// faster than XMark).
func BenchmarkContainmentSyntheticDBLP(b *testing.B) {
	benchSynthetic(b, bench.DBLPDataset())
}

func benchSynthetic(b *testing.B, d bench.Dataset) {
	for _, n := range []int{3, 7, 13} {
		pats := boundedPatterns(d, patgen.Config{Nodes: n, Returns: 1, POpt: 0.5}, 10, 1)
		b.Run("n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pats[i%len(pats)]
				q := pats[(i+1)%len(pats)]
				if _, err := containment.Contained(p, q, d.Summary); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// boundedPatterns mirrors the harness's oversized-model filter: patterns
// whose canonical models blow toward the |S|^|p| worst case would measure
// the pathological corner instead of the figures' realistic workload.
func boundedPatterns(d bench.Dataset, cfg patgen.Config, count int, seed int64) []*xam.Pattern {
	raw := patgen.GenerateSet(d.Summary, cfg, count*3, seed)
	out := make([]*xam.Pattern, 0, count)
	for _, p := range raw {
		if len(out) == count {
			break
		}
		if _, truncated := containment.CanonicalModelBounded(p, d.Summary, 600); truncated {
			continue
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		out = raw[:1]
	}
	return out
}

// E5 / §4.6 — optional-edge ablation: containment cost at P(opt) 0 / 0.5 / 1.
func BenchmarkContainmentOptionalAblation(b *testing.B) {
	d := bench.XMarkDataset()
	for _, pOpt := range []float64{0, 0.5, 1.0} {
		pats := boundedPatterns(d, patgen.Config{Nodes: 7, Returns: 1, POpt: pOpt}, 10, 2)
		b.Run("popt="+ftoa(pOpt), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pats[i%len(pats)]
				q := pats[(i+1)%len(pats)]
				if _, err := containment.Contained(p, q, d.Summary); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E6 / §5.6 — rewriting time as the view set grows.
func BenchmarkRewriteScalingViews(b *testing.B) {
	d := bench.XMarkDataset()
	for _, vc := range []int{5, 20, 80} {
		b.Run("views="+itoa(vc), func(b *testing.B) {
			b.StopTimer()
			q := patgen.GenerateSet(d.Summary, patgen.Config{Nodes: 5, Returns: 1}, 1, 77)[0]
			views := benchViews(d, vc)
			b.StartTimer()
			for i := 0; i < b.N; i++ {
				rw := rewrite.NewRewriter(d.Summary, views, rewrite.Options{MaxPlans: 4})
				if _, err := rw.Rewrite(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchViews(d bench.Dataset, vc int) []*rewrite.View {
	pats := patgen.GenerateSet(d.Summary, patgen.Config{Nodes: 3, Returns: 2, PPred: -1, POpt: -1}, vc, 5)
	views := make([]*rewrite.View, len(pats))
	for i, p := range pats {
		for _, n := range p.ReturnNodes() {
			n.StoreVal = true
		}
		views[i] = &rewrite.View{Name: "v" + itoa(i), Pattern: p}
	}
	return views
}

// E7 / Chapter 2 — the QEP comparisons across storage schemes.
func BenchmarkStorageModelQEP(b *testing.B) {
	b.Run("all-pairs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.StorageQEPs(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E8 / Chapter 3 — pattern extraction from nested XQuery.
func BenchmarkPatternExtraction(b *testing.B) {
	q := xquery.MustParse(`for $x in doc("x.xml")//site/*, $y in doc("x.xml")//person return <res1>{$x//keyword,
	   <res2>{$y//emailaddress,
	     for $z in $y//address return <res3>{$z//city}</res3>}</res2>}</res1>`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xquery.Extract(q); err != nil {
			b.Fatal(err)
		}
	}
}

// Substrate microbenchmarks: parsing and XAM evaluation.
func BenchmarkParseXMark(b *testing.B) {
	src := datagen.XMark(3, 10, 8).Serialize()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parseDoc(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXAMEval(b *testing.B) {
	doc := datagen.XMark(3, 10, 8)
	p := xam.MustParse(`// item{id s}(/ name{val}, /(nj) description(// listitem{id s}))`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Eval(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func parseDoc(src string) (*xmltree.Document, error) {
	return xmltree.Parse("bench.xml", src)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func ftoa(f float64) string {
	switch f {
	case 0:
		return "0.0"
	case 0.5:
		return "0.5"
	case 1.0:
		return "1.0"
	}
	return "?"
}

// Execution-layer ablation (§1.2.3): StackTree physical joins vs naive
// materialized nested-loops on the same plan.
func BenchmarkExecutionLogicalVsPhysical(b *testing.B) {
	rows, err := bench.ExecutionAblation(context.Background(), []int{10})
	if err != nil {
		b.Fatal(err)
	}
	_ = rows
	doc := datagen.XMark(10, 40, 30)
	s := summary.Build(doc)
	views := []*rewrite.View{
		{Name: "items", Pattern: xam.MustParse(`// item{id s}`)},
		{Name: "keywords", Pattern: xam.MustParse(`// keyword{id s, val}`)},
	}
	rw := rewrite.NewRewriter(s, views, rewrite.Options{MaxPlans: 1})
	env, err := rw.Materialize(doc)
	if err != nil {
		b.Fatal(err)
	}
	plans, err := rw.Rewrite(xam.MustParse(`// item{id s}(// keyword{id s, val})`))
	if err != nil || len(plans) == 0 {
		b.Fatal("no plan", err)
	}
	plan := plans[0].Plan
	b.Run("logical-nested-loops", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Execute(env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("physical-stacktree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rewrite.ExecutePhysical(plan, env); err != nil {
				b.Fatal(err)
			}
		}
	})
}
