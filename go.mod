module xamdb

go 1.22
