// Command xamlint is the multichecker for the engine's invariant suite
// (see internal/lint): it type-checks the module's packages with no
// toolchain subprocesses or network access and applies every analyzer.
//
//	go run ./cmd/xamlint ./...                # whole module (CI gate)
//	go run ./cmd/xamlint ./internal/storage   # one package
//	go run ./cmd/xamlint -run errwrap ./...   # one analyzer
//	go run ./cmd/xamlint -list                # describe the suite
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load failure.
// Suppressions require a reason: //xamlint:allow name(reason).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xamdb/internal/lint"
	"xamdb/internal/lint/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := lint.Analyzers()
	if *run != "" {
		suite = nil
		for _, name := range strings.Split(*run, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "xamlint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fail(err)
	}
	var dirs []string
	for _, p := range patterns {
		switch {
		case p == "./..." || p == "...":
			ds, err := loader.ModuleDirs()
			if err != nil {
				fail(err)
			}
			dirs = append(dirs, ds...)
		case strings.HasSuffix(p, "/..."):
			ds, err := loader.ModuleDirs()
			if err != nil {
				fail(err)
			}
			root := strings.TrimSuffix(p, "/...")
			for _, d := range ds {
				rel, err := relToModule(loader, d)
				if err != nil {
					fail(err)
				}
				if rel == strings.TrimPrefix(root, "./") || strings.HasPrefix(rel, strings.TrimPrefix(root, "./")+"/") {
					dirs = append(dirs, d)
				}
			}
		default:
			dirs = append(dirs, p)
		}
	}

	bad := 0
	for _, dir := range dirs {
		path, err := loader.PathForDir(dir)
		if err != nil {
			fail(err)
		}
		pkg, err := loader.Load(path)
		if err != nil {
			fail(err)
		}
		diags, err := analysis.Run(loader.Fset, pkg, suite)
		if err != nil {
			fail(err)
		}
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
		}
		bad += len(diags)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "xamlint: %d finding(s)\n", bad)
		os.Exit(1)
	}
}

func relToModule(l *analysis.Loader, dir string) (string, error) {
	path, err := l.PathForDir(dir)
	if err != nil {
		return "", err
	}
	if path == l.ModulePath {
		return ".", nil
	}
	return strings.TrimPrefix(path, l.ModulePath+"/"), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xamlint:", err)
	os.Exit(2)
}
