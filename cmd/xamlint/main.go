// Command xamlint is the multichecker for the engine's invariant suite
// (see internal/lint): it type-checks the module's packages with no
// toolchain subprocesses or network access and applies every analyzer.
//
//	go run ./cmd/xamlint ./...                # whole module (CI gate)
//	go run ./cmd/xamlint ./internal/storage   # one package
//	go run ./cmd/xamlint -run errwrap ./...   # one analyzer
//	go run ./cmd/xamlint -json ./...          # machine-readable findings
//	go run ./cmd/xamlint -allows ./...        # audit every allow directive
//	go run ./cmd/xamlint -list                # describe the suite
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load failure.
// Suppressions require a reason: //xamlint:allow name(reason). The -allows
// audit lists every directive in the tree with its file, line and reason,
// and exits 1 if any directive is missing a reason — a suppression whose
// justification has rotted away is a finding in its own right.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"xamdb/internal/lint"
	"xamdb/internal/lint/analysis"
)

// finding is the JSON shape of one diagnostic (-json mode).
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// allowEntry is the JSON shape of one allow directive (-allows -json).
type allowEntry struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	allows := flag.Bool("allows", false, "audit allow directives instead of running analyzers; exit 1 on reasonless directives")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := lint.Analyzers()
	if *run != "" {
		suite = nil
		for _, name := range strings.Split(*run, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "xamlint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fail(err)
	}
	var dirs []string
	for _, p := range patterns {
		switch {
		case p == "./..." || p == "...":
			ds, err := loader.ModuleDirs()
			if err != nil {
				fail(err)
			}
			dirs = append(dirs, ds...)
		case strings.HasSuffix(p, "/..."):
			ds, err := loader.ModuleDirs()
			if err != nil {
				fail(err)
			}
			root := strings.TrimSuffix(p, "/...")
			for _, d := range ds {
				rel, err := relToModule(loader, d)
				if err != nil {
					fail(err)
				}
				if rel == strings.TrimPrefix(root, "./") || strings.HasPrefix(rel, strings.TrimPrefix(root, "./")+"/") {
					dirs = append(dirs, d)
				}
			}
		default:
			dirs = append(dirs, p)
		}
	}

	if *allows {
		os.Exit(auditAllows(loader, dirs, *jsonOut))
	}

	bad := 0
	report := []finding{}
	for _, dir := range dirs {
		path, err := loader.PathForDir(dir)
		if err != nil {
			fail(err)
		}
		pkg, err := loader.Load(path)
		if err != nil {
			fail(err)
		}
		diags, err := analysis.Run(loader.Fset, pkg, suite)
		if err != nil {
			fail(err)
		}
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			if *jsonOut {
				report = append(report, finding{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: d.Analyzer, Message: d.Message,
				})
			} else {
				fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
			}
		}
		bad += len(diags)
	}
	if *jsonOut {
		emitJSON(report)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "xamlint: %d finding(s)\n", bad)
		os.Exit(1)
	}
}

// auditAllows lists every //xamlint:allow directive under dirs and returns
// the process exit code: 1 if any directive lacks a reason, else 0.
func auditAllows(loader *analysis.Loader, dirs []string, jsonOut bool) int {
	entries := []allowEntry{}
	reasonless := 0
	for _, dir := range dirs {
		path, err := loader.PathForDir(dir)
		if err != nil {
			fail(err)
		}
		pkg, err := loader.Load(path)
		if err != nil {
			fail(err)
		}
		for _, f := range pkg.Files {
			for _, a := range analysis.Allows(loader.Fset, f) {
				entries = append(entries, allowEntry{
					File: a.Pos.Filename, Line: a.Pos.Line,
					Analyzers: a.Analyzers, Reason: a.Reason,
				})
				if a.Reason == "" {
					reasonless++
				}
			}
		}
	}
	if jsonOut {
		emitJSON(entries)
	} else {
		for _, e := range entries {
			reason := e.Reason
			if reason == "" {
				reason = "<MISSING REASON>"
			}
			fmt.Printf("%s:%d: allow %s: %s\n", e.File, e.Line, strings.Join(e.Analyzers, ","), reason)
		}
		fmt.Fprintf(os.Stderr, "xamlint: %d allow directive(s), %d without a reason\n", len(entries), reasonless)
	}
	if reasonless > 0 {
		return 1
	}
	return 0
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}

func relToModule(l *analysis.Loader, dir string) (string, error) {
	path, err := l.PathForDir(dir)
	if err != nil {
		return "", err
	}
	if path == l.ModulePath {
		return ".", nil
	}
	return strings.TrimPrefix(path, l.ModulePath+"/"), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xamlint:", err)
	os.Exit(2)
}
