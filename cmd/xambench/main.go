// Command xambench regenerates the rows of every table and figure in the
// thesis's evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md
// for paper-vs-measured comparisons).
//
//	xambench -exp summaries          # Figure 4.13
//	xambench -exp xmark-self         # Figure 4.14 (top)
//	xambench -exp synthetic -summary xmark   # Figure 4.14 (bottom)
//	xambench -exp synthetic -summary dblp    # Figure 4.15
//	xambench -exp optional-ablation  # §4.6 optional-edge ablation
//	xambench -exp rewrite            # §5.6 rewriting scaling
//	xambench -exp qep                # Chapter 2 QEP comparisons
//	xambench -exp execution          # §1.2.3 StackTree vs nested loops
//	xambench -exp minimize           # §4.5 minimization by S-contraction
//	xambench -exp extraction         # Chapter 3 pattern extraction
//	xambench -exp observability      # query-path latency/throughput + metrics JSON
//	xambench -exp plancache          # warm-path planning: cache, lazy extents, scaling
//	xambench -exp admission          # admission control at saturation: shedding, accounting, bounded p99
//	xambench -exp predicates         # §5 predicate absorption: selectivity sweep, base scan vs fused σ-scan
//	xambench -exp vectorized         # row-vs-batch execution ablation over columnar extents
//	xambench -exp workload           # workload observatory: Zipfian mix, advisor ranking, fold-in overhead
//	xambench -exp all                # everything
//
// The observability and plancache experiments write their full reports
// (latencies, traces, sweeps, metrics snapshot) to the file named by -json;
// the default is per-experiment (BENCH_observability.json /
// BENCH_plancache.json).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"xamdb/internal/bench"
)

// timeNS renders a nanosecond count as a duration string.
func timeNS(ns int64) time.Duration { return time.Duration(ns) }

func main() {
	exp := flag.String("exp", "all", "experiment: summaries, xmark-self, synthetic, optional-ablation, rewrite, qep, execution, minimize, extraction, observability, plancache, admission, predicates, vectorized, workload, all")
	sumName := flag.String("summary", "xmark", "summary for synthetic containment: xmark or dblp")
	perSet := flag.Int("perset", 20, "synthetic patterns per configuration")
	seed := flag.Int64("seed", 1, "random seed")
	jsonPath := flag.String("json", "", "output file for the observability/plancache report (default BENCH_<experiment>.json)")
	iters := flag.Int("iters", 3, "observability/plancache/predicates: repetitions per query")
	items := flag.Int("items", 0, "predicates/vectorized: items in the synthetic document (0 = default 100000)")
	workers := flag.Int("workers", 4, "observability: concurrent goroutines")
	queries := flag.Int("queries", 0, "workload: Zipf-distributed query draws (0 = default 3000)")
	flag.Parse()

	// The JSON reports default to one file per experiment so `-exp all`
	// does not overwrite one report with the other.
	jsonFor := func(experiment string) string {
		if *jsonPath != "" {
			return *jsonPath
		}
		return "BENCH_" + experiment + ".json"
	}

	// ^C aborts the sweep at the next cancellation checkpoint instead of
	// letting the current plan run to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "xambench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("summaries", func() error {
		fmt.Printf("%-12s %9s %7s %8s %8s %6s\n", "dataset", "N", "|S|", "strong", "1-to-1", "depth")
		for _, r := range bench.SummaryStats() {
			fmt.Printf("%-12s %9d %7d %8d %8d %6d\n", r.Name, r.Nodes, r.Paths, r.StrongEdge, r.OneToOne, r.MaxDepth)
		}
		return nil
	})

	run("xmark-self", func() error {
		d := bench.XMarkDataset()
		fmt.Printf("XMark summary: %d paths\n", d.Summary.Size())
		rows, err := bench.XMarkSelfContainment(d.Summary)
		if err != nil {
			return err
		}
		fmt.Printf("%5s %6s %8s %12s\n", "query", "nodes", "|mod_S|", "time")
		for _, r := range rows {
			fmt.Printf("Q%-4d %6d %8d %12s\n", r.Query, r.Nodes, r.ModelSize, r.Time)
		}
		return nil
	})

	run("synthetic", func() error {
		var d bench.Dataset
		if *sumName == "dblp" {
			d = bench.DBLPDataset()
		} else {
			d = bench.XMarkDataset()
		}
		fmt.Printf("summary: %s (%d paths), %d patterns/config, P(opt)=0.5\n", d.Name, d.Summary.Size(), *perSet)
		rows, err := bench.SyntheticContainment(d.Summary,
			[]int{3, 5, 7, 9, 11, 13}, []int{1, 2, 3}, *perSet, 0.5, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("%5s %3s %6s %5s %12s %12s %9s\n", "nodes", "r", "pairs", "pos", "pos-avg", "neg-avg", "avg|mod|")
		for _, r := range rows {
			fmt.Printf("%5d %3d %6d %5d %12s %12s %9.1f\n",
				r.Nodes, r.Returns, r.Pairs, r.Positive, r.PosAvg, r.NegAvg, r.ModelAvg)
		}
		return nil
	})

	run("optional-ablation", func() error {
		d := bench.XMarkDataset()
		rows, err := bench.OptionalAblation(d.Summary, 7, *perSet, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("%8s %12s %6s\n", "P(opt)", "avg time", "pairs")
		base := rows[0].AvgTime
		for _, r := range rows {
			ratio := float64(r.AvgTime) / float64(base)
			fmt.Printf("%8.1f %12s %6d  (%.2fx conjunctive)\n", r.POptional, r.AvgTime, r.Pairs, ratio)
		}
		return nil
	})

	run("rewrite", func() error {
		d := bench.DBLPDataset()
		rows, err := bench.RewriteScaling(d, []int{5, 10, 20, 40, 80}, []int{3, 5, 7}, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("%6s %7s %6s %12s\n", "views", "q-size", "plans", "time")
		for _, r := range rows {
			fmt.Printf("%6d %7d %6d %12s\n", r.Views, r.QueryNodes, r.PlansFound, r.Time)
		}
		return nil
	})

	run("qep", func() error {
		rows, err := bench.StorageQEPs()
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%-15s %8d tuples %9d bytes %12s  %s\n", r.Experiment, r.Tuples, r.Bytes, r.Time, r.Variant)
		}
		return nil
	})

	run("minimize", func() error {
		d := bench.DBLPDataset()
		rows, err := bench.MinimizationStudy(d.Summary, []int{3, 5, 7}, *perSet, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("%6s %9s %11s %10s %7s %12s\n", "nodes", "patterns", "avg-before", "avg-after", "shrunk", "avg-time")
		for _, r := range rows {
			fmt.Printf("%6d %9d %11.2f %10.2f %7d %12s\n", r.Nodes, r.Patterns, r.AvgBefore, r.AvgAfter, r.Shrunk, r.AvgTime)
		}
		return nil
	})

	run("execution", func() error {
		rows, err := bench.ExecutionAblation(ctx, []int{2, 5, 10, 20})
		if err != nil {
			return err
		}
		fmt.Printf("%7s %12s %12s %8s\n", "items", "logical", "physical", "tuples")
		for _, r := range rows {
			fmt.Printf("%7d %12s %12s %8d\n", r.Items, r.Logical, r.Physical, r.Tuples)
		}
		return nil
	})

	run("observability", func() error {
		rep, err := bench.QueryObservability(ctx, bench.ObsConfig{Iters: *iters, Goroutines: *workers})
		if err != nil {
			return err
		}
		fmt.Printf("dataset=%s store=%s\n", rep.Dataset, rep.Store)
		fmt.Printf("%-70s %10s %10s %10s\n", "query", "avg", "min", "max")
		for _, r := range rep.Queries {
			q := r.Query
			if len(q) > 68 {
				q = q[:65] + "..."
			}
			fmt.Printf("%-70s %8.2fµs %8.2fµs %8.2fµs\n", q,
				float64(r.AvgNS)/1e3, float64(r.MinNS)/1e3, float64(r.MaxNS)/1e3)
		}
		c := rep.Concurrency
		fmt.Printf("concurrent: %d goroutines, %d queries in %.2fms → %.0f qps\n",
			c.Goroutines, c.Queries, float64(c.ElapsedNS)/1e6, c.QPS)
		if o := rep.Overhead; o != nil {
			fmt.Printf("query-log overhead: warm p50 %.2fµs monitored vs %.2fµs baseline over %d samples → %+.2f%%\n",
				float64(o.MonitoredP50NS)/1e3, float64(o.BaselineP50NS)/1e3, o.Samples, o.OverheadPct)
		}
		if rep.Analyze != nil {
			fmt.Printf("explain analyze (%s):\n%s", rep.Queries[0].Query, rep.Analyze.String())
		}
		out := jsonFor("observability")
		if err := rep.WriteJSON(out); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", out)
		return nil
	})

	run("plancache", func() error {
		rep, err := bench.PlanCache(ctx, bench.PlanCacheConfig{Iters: *iters})
		if err != nil {
			return err
		}
		fmt.Printf("dataset=%s store=%s\n", rep.Dataset, rep.Store)
		fmt.Printf("%-70s %10s %10s\n", "query", "cold", "warm p50")
		for _, r := range rep.Queries {
			q := r.Query
			if len(q) > 68 {
				q = q[:65] + "..."
			}
			fmt.Printf("%-70s %8.2fµs %8.2fµs\n", q,
				float64(r.ColdNS)/1e3, float64(r.WarmP50NS)/1e3)
		}
		fmt.Printf("warm p50 / execute p50 = %.2fx\n", rep.WarmVsExecuteP50)
		for _, row := range rep.Throughput {
			fmt.Printf("throughput: %d workers → %.0f qps (%.2fx linear)\n",
				row.Workers, row.QPS, row.Scaling)
		}
		for _, row := range rep.FirstQuery {
			fmt.Printf("first query with %d views: %.2fµs (%d view(s) materialized)\n",
				row.Views, float64(row.FirstQueryNS)/1e3, row.ViewsMaterialized)
		}
		out := jsonFor("plancache")
		if err := rep.WriteJSON(out); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", out)
		return nil
	})

	run("admission", func() error {
		rep, err := bench.AdmissionLoad(ctx, bench.AdmissionConfig{})
		out := jsonFor("admission")
		if rep != nil {
			if werr := rep.WriteJSON(out); werr != nil && err == nil {
				err = werr
			}
			fmt.Printf("pool: %d workers, queue %d (timeout %s)\n",
				rep.Workers, rep.QueueDepth, timeNS(rep.QueueTimeoutNS))
			fmt.Printf("closed loop: %d clients → %.0f qps served (%d served, %d shed)\n",
				rep.Closed.Clients, rep.Closed.QPS, rep.Closed.Served, rep.Closed.Shed)
			fmt.Printf("open loop: offered %.0f qps for %s → statuses %v\n",
				rep.Open.OfferedQPS, timeNS(rep.Open.ElapsedNS), rep.Open.Statuses)
			fmt.Printf("accounting: submitted=%d accounted=%d (served=%d shed-full=%d shed-timeout=%d)\n",
				rep.Stats.Submitted, rep.Stats.Accounted(), rep.Stats.Served,
				rep.Stats.ShedQueueFull, rep.Stats.ShedQueueTimeout)
			fmt.Printf("queue wait p99: %s (bound 2x queue timeout); goroutines %d → %d\n",
				timeNS(rep.WaitP99NS), rep.GoroutinesBefore, rep.GoroutinesAfter)
			for _, f := range rep.Failures {
				fmt.Printf("FAIL: %s\n", f)
			}
			fmt.Printf("report written to %s\n", out)
		}
		return err
	})

	run("predicates", func() error {
		rep, err := bench.PredicateSweep(ctx, bench.PredConfig{Items: *items, Iters: *iters})
		if err != nil {
			return err
		}
		fmt.Printf("dataset=%s items=%d\n", rep.Dataset, rep.Items)
		fmt.Printf("%12s %9s %12s %12s %9s\n", "selectivity", "rows", "base p50", "absorbed", "speedup")
		for _, r := range rep.Rows {
			fmt.Printf("%11.3f%% %9d %10.2fms %10.2fms %8.1fx\n",
				r.SelectivityPct, r.MatchRows,
				float64(r.BaseP50NS)/1e6, float64(r.AbsorbedP50NS)/1e6, r.Speedup)
		}
		fmt.Printf("absorbing engine: base_scans=%d pred_absorbed=%d pred_residual=%d\n",
			rep.BaseScans, rep.PredAbsorbed, rep.PredResidual)
		fmt.Printf("plan: %s\n", rep.Rows[0].Plan)
		out := jsonFor("predicates")
		if err := rep.WriteJSON(out); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", out)
		return nil
	})

	run("vectorized", func() error {
		rep, err := bench.VectorizedAblation(ctx, bench.VectorConfig{Items: *items, Iters: *iters})
		if err != nil {
			return err
		}
		fmt.Printf("dataset=%s items=%d\n", rep.Dataset, rep.Items)
		fmt.Printf("%-55s %12s %12s %9s\n", "query", "row exec", "batch exec", "speedup")
		for _, r := range rep.Rows {
			q := r.Query
			if len(q) > 53 {
				q = q[:50] + "..."
			}
			fmt.Printf("%-55s %10.2fms %10.2fms %8.1fx\n", q,
				float64(r.RowExecP50NS)/1e6, float64(r.BatchP50NS)/1e6, r.Speedup)
		}
		fmt.Printf("speedup p50: %.1fx; batch engine: batches=%d fallbacks=%d\n",
			rep.SpeedupP50, rep.Batches, rep.BatchFallbacks)
		fmt.Printf("plan: %s\n", rep.Rows[0].Plan)
		out := jsonFor("vectorized")
		if err := rep.WriteJSON(out); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", out)
		return nil
	})

	run("workload", func() error {
		rep, err := bench.WorkloadObservatory(ctx, bench.WorkloadConfig{Queries: *queries, Iters: *iters})
		if err != nil {
			return err
		}
		fmt.Printf("dataset=%s store=%s zipf_s=%.1f\n", rep.Dataset, rep.Store, rep.ZipfS)
		fmt.Printf("%-70s %6s\n", "query (by rank)", "draws")
		for _, m := range rep.Mix {
			q := m.Query
			if len(q) > 68 {
				q = q[:65] + "..."
			}
			fmt.Printf("%-70s %6d\n", q, m.Draws)
		}
		fmt.Print(rep.Advisor.String())
		fmt.Printf("advisor top match: %v (planted %s)\n", rep.AdvisorTopMatch, rep.PlantedQuery)
		if o := rep.Overhead; o != nil {
			fmt.Printf("fold-in overhead: warm p50 %.2fµs observed vs %.2fµs baseline over %d samples → %+.2f%% (ok=%v)\n",
				float64(o.MonitoredP50NS)/1e3, float64(o.BaselineP50NS)/1e3, o.Samples, o.OverheadPct, rep.OverheadOK)
		}
		for _, f := range rep.Failures {
			fmt.Printf("FAIL: %s\n", f)
		}
		out := jsonFor("workload")
		if err := rep.WriteJSON(out); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", out)
		return nil
	})

	run("extraction", func() error {
		rows, err := bench.ExtractionStudy()
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("patterns=%d nodes=%d xpath-baseline=%d time=%s\n  %s\n",
				r.Patterns, r.PatternNodes, r.XPathViews, r.Time, r.Query)
		}
		return nil
	})
}
