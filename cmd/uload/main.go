// Command uload is the interactive face of the prototype: it loads XML
// documents (from files or the built-in synthetic datasets), prints their
// path summaries, registers XAM-described views and storage schemes, and
// plans/executes XQuery queries, reporting which access paths were chosen.
//
// Examples:
//
//	uload -dataset xmark -summary
//	uload -file bib.xml -query 'doc("bib.xml")//book/title'
//	uload -dataset dblp -store tag -explain \
//	    -query 'for $x in doc("dblp.xml")//article where $x/year = "1999" return <r>{$x/title}</r>'
//	uload -file bib.xml -view 'v1=// book{id s}(/ title{id s, val})' -query '...'
//	uload -file bib.xml -analyze -query 'doc("bib.xml")//book/title'   # EXPLAIN ANALYZE
//	uload -file bib.xml -trace -query '...'                            # span tree as JSON
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xamdb/internal/admission"
	"xamdb/internal/datagen"
	"xamdb/internal/engine"
	"xamdb/internal/obs"
	"xamdb/internal/serve"
	"xamdb/internal/storage"
	"xamdb/internal/xmltree"
)

type viewFlags []string

func (v *viewFlags) String() string { return strings.Join(*v, ";") }

func (v *viewFlags) Set(s string) error {
	*v = append(*v, s)
	return nil
}

func main() {
	var (
		file       = flag.String("file", "", "XML file to load")
		db         = flag.String("db", "", "load a saved catalog instead of -file/-dataset")
		save       = flag.String("save", "", "save the catalog to this path before exiting")
		repl       = flag.Bool("repl", false, "read queries interactively from stdin")
		dataset    = flag.String("dataset", "", "built-in dataset: xmark, dblp, shakespeare, nasa, swissprot")
		scale      = flag.Int("scale", 5, "dataset scale factor")
		query      = flag.String("query", "", "XQuery to run")
		explain    = flag.Bool("explain", false, "plan only, do not execute")
		analyze    = flag.Bool("analyze", false, "execute and print the per-operator tree (EXPLAIN ANALYZE)")
		trace      = flag.Bool("trace", false, "print the query's span trace as JSON")
		metrics    = flag.Bool("metrics", false, "print the engine metrics snapshot before exiting")
		printSum   = flag.Bool("summary", false, "print the path summary")
		store      = flag.String("store", "", "register a storage scheme: tag, path, node, edge, hybrid")
		noFallback = flag.Bool("no-fallback", false, "fail when no rewriting exists (pure physical independence mode)")
		noCache    = flag.Bool("nocache", false, "disable the rewriting cache: replan every query (for debugging and cold-path timing)")
		noBatch    = flag.Bool("nobatch", false, "disable vectorized batch execution: physical plans run through the row iterators (row-vs-batch ablations)")
		timeout    = flag.Duration("timeout", 0, "per-query timeout (e.g. 500ms, 10s); 0 = unlimited")
		serveAddr  = flag.String("serve", "", "serve the query path (POST /query) and monitoring endpoints (/metrics, /debug/*, pprof) on this address until interrupted")
		slow       = flag.Duration("slow", engine.DefaultSlowQueryThreshold, "slow-query threshold: queries at or above it retain full traces in the query log (0 disables)")
		qlogCap    = flag.Int("querylog", engine.DefaultQueryLogSize, "query-log ring capacity (records retained for /debug/queries)")
		workload   = flag.Bool("workload", false, "print the workload observatory tables (fingerprint aggregates, per-view attribution) and the advisor report before exiting")
		wlTopK     = flag.Int("workload-topk", engine.DefaultWorkloadTopK, "workload observatory capacity: exact fingerprint entries kept before eviction into the overflow bucket (0 disables the observatory)")

		// Admission-control knobs for -serve (see DESIGN.md "Admission
		// control"): pool size, queue bound, per-query deadlines and quotas,
		// and the graceful-drain deadline applied on SIGINT/SIGTERM.
		workers      = flag.Int("workers", 0, "-serve: concurrent query workers (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 0, "-serve: admission queue depth (0 = 4x workers); beyond it requests are shed with 429")
		queueTimeout = flag.Duration("queue-timeout", time.Second, "-serve: max queue wait before a request is shed")
		deadline     = flag.Duration("deadline", 30*time.Second, "-serve: default per-query deadline")
		maxDeadline  = flag.Duration("max-deadline", 0, "-serve: ceiling for client timeout_ms hints (0 = 2x deadline)")
		maxRows      = flag.Int64("max-rows", 0, "-serve: per-query rows-out quota (0 = unlimited)")
		maxExtentB   = flag.Int64("max-extent-bytes", 0, "-serve: per-query decoded-extent-bytes quota (0 = unlimited)")
		maxTuples    = flag.Int64("max-tuples", 0, "-serve: per-query tuple work quota (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "-serve: graceful-drain deadline on shutdown; hung queries are killed past it")
	)
	var views viewFlags
	flag.Var(&views, "view", "register a view as name=XAM (repeatable)")
	flag.Parse()

	var e *engine.Engine
	if *db != "" {
		var err error
		e, err = engine.LoadFile(*db)
		fatal(err)
		fmt.Printf("loaded catalog %s\n", *db)
	} else {
		e = engine.New()
	}
	e.FallbackToBase = !*noFallback
	e.QueryTimeout = *timeout
	e.Options.DisablePlanCache = *noCache
	// Rewritten plans execute through the physical operators — vectorized
	// batches by default, the row iterators under -nobatch. The quota and
	// checkpoint protocols live on this path; the logical evaluator remains
	// reachable only through the library boundary.
	e.UsePhysical = true
	e.UseBatch = !*noBatch
	if *qlogCap != engine.DefaultQueryLogSize || *slow != engine.DefaultSlowQueryThreshold {
		e.QueryLog = obs.NewQueryLog(*qlogCap, *slow)
	}
	switch {
	case *wlTopK <= 0:
		e.Workload = nil
	case *wlTopK != engine.DefaultWorkloadTopK:
		e.Workload = obs.NewWorkloadStats(*wlTopK)
	}

	var doc *xmltree.Document
	switch {
	case *db != "":
		// catalog already loaded
	case *file != "":
		data, err := os.ReadFile(*file)
		fatal(err)
		doc, err = xmltree.Parse(*file, string(data))
		fatal(err)
	case *dataset != "":
		switch *dataset {
		case "xmark":
			doc = datagen.XMark(*scale, *scale*4, *scale*3)
		case "dblp":
			doc = datagen.DBLP(*scale * 20)
		case "shakespeare":
			doc = datagen.Shakespeare(*scale, *scale)
		case "nasa":
			doc = datagen.Nasa(*scale * 10)
		case "swissprot":
			doc = datagen.SwissProt(*scale * 10)
		default:
			fatal(fmt.Errorf("unknown dataset %q", *dataset))
		}
	default:
		fmt.Fprintln(os.Stderr, "uload: need -file, -dataset or -db; see -help")
		os.Exit(2)
	}
	if doc != nil {
		e.AddDocument(doc)
		fmt.Printf("loaded %s: %d nodes, summary %d paths\n", doc.Name, doc.Size(), e.Summary(doc.Name).Size())
	}

	if *printSum && doc != nil {
		fmt.Print(e.Summary(doc.Name))
	}

	if *store != "" && doc != nil {
		var st *storage.Store
		var err error
		switch *store {
		case "tag":
			st, err = storage.TagPartitioned(doc)
		case "path":
			st, err = storage.PathPartitioned(doc, e.Summary(doc.Name))
		case "node":
			st, err = storage.NodeStore(doc)
		case "edge":
			st, err = storage.EdgeStore(doc)
		case "hybrid":
			st, err = storage.Hybrid(doc, e.Summary(doc.Name))
		default:
			err = fmt.Errorf("unknown store %q", *store)
		}
		fatal(err)
		fatal(e.RegisterStore(doc.Name, st))
		fmt.Print(st)
	}

	for _, v := range views {
		name, pat, ok := strings.Cut(v, "=")
		if !ok {
			fatal(fmt.Errorf("bad -view %q, want name=XAM", v))
		}
		fatal(e.RegisterView(doc.Name, strings.TrimSpace(name), pat))
		fmt.Printf("registered view %s: %s\n", name, pat)
	}

	if *save != "" {
		fatal(e.SaveFile(*save))
		fmt.Printf("saved catalog to %s\n", *save)
	}

	// The serving front end comes up before any query runs so the REPL (or
	// a long -query) can be queried and scraped live; main blocks on it at
	// the end.
	srvDone := startServe(e, *serveAddr, admission.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		QueueTimeout:    *queueTimeout,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		MaxRowsOut:      *maxRows,
		MaxExtentBytes:  *maxExtentB,
		MaxTuples:       *maxTuples,
		DrainTimeout:    *drainTimeout,
	})

	if *repl {
		runREPL(e, *explain, *analyze, *trace)
	} else if *query != "" {
		runQuery(e, *query, *explain, *analyze, *trace)
	}
	printMetrics(e, *metrics)
	printWorkload(e, *workload)
	if srvDone != nil {
		fatal(<-srvDone)
	}
}

// runQuery plans (and, unless explainOnly, executes) one query, printing
// the report, optional trace and result.
func runQuery(e *engine.Engine, query string, explainOnly, analyze, trace bool) {
	if explainOnly {
		rep, err := e.Explain(query)
		fatal(err)
		fmt.Print(rep)
		return
	}
	var (
		out string
		rep *engine.Report
		err error
	)
	if analyze {
		out, rep, err = e.Analyze(query)
	} else {
		out, rep, err = e.Query(query)
	}
	if err != nil && rep != nil {
		// Even a failed query carries a partial report; surface it so the
		// user sees how far the pipeline got.
		fmt.Fprint(os.Stderr, rep)
	}
	fatal(err)
	if analyze {
		fmt.Print(rep.AnalyzeString()) // includes the pattern/plan lines
	} else {
		fmt.Print(rep)
	}
	if trace && rep.Trace != nil {
		data, err := rep.Trace.JSON()
		fatal(err)
		fmt.Println(string(data))
	}
	warnDegraded(rep)
	fmt.Println("result:")
	fmt.Println(out)
}

// startServe binds the HTTP front end (when -serve is set) — the
// admission-controlled query path plus monitoring — and runs it in the
// background until SIGINT/SIGTERM, at which point the admission controller
// drains (in-flight queries finish, new ones get 503, hung ones are killed
// at the drain deadline) before the server exits. The returned channel
// yields Serve's result (nil on graceful shutdown), or nil when disabled.
func startServe(e *engine.Engine, addr string, cfg admission.Config) <-chan error {
	if addr == "" {
		return nil
	}
	cfg.Metrics = e.Metrics
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	srv := serve.NewWithQuery(e, admission.New(cfg))
	fatal(srv.Listen(addr))
	fmt.Printf("serving on http://%s (POST /query; /metrics, /debug/queries, /debug/workload, /debug/advisor, /debug/catalog, /debug/plancache, /debug/admission, /healthz, /readyz, /debug/pprof)\n", srv.Addr())
	done := make(chan error, 1)
	go func() {
		defer stop()
		done <- srv.Serve(ctx)
	}()
	return done
}

// printMetrics dumps the engine's metrics registry when -metrics is set.
func printMetrics(e *engine.Engine, enabled bool) {
	if !enabled {
		return
	}
	fmt.Println("metrics:")
	fmt.Print(e.Metrics.Snapshot())
}

// printWorkload dumps the workload observatory and the advisor report when
// -workload is set: the one-shot equivalent of /debug/workload?format=table
// plus /debug/advisor?format=table.
func printWorkload(e *engine.Engine, enabled bool) {
	if !enabled {
		return
	}
	if e.Workload == nil {
		fmt.Println("workload observatory disabled (-workload-topk 0)")
		return
	}
	fmt.Print(e.Workload.Snapshot().String())
	fmt.Print(e.Advise(obs.AdvisorOptions{}).String())
}

// warnDegraded surfaces fallback-cascade activity on stderr so scripts see
// it even when the report goes to a pipe.
func warnDegraded(rep *engine.Report) {
	if rep.Degraded() {
		fmt.Fprintf(os.Stderr, "uload: warning: query answered in degraded mode (%d plan failure(s); see report)\n",
			len(rep.Degradations))
	}
}

// runREPL reads one query per line from stdin, planning and executing each.
func runREPL(e *engine.Engine, explainOnly, analyze, trace bool) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println(`enter XQuery per line ("quit" to exit):`)
	for {
		fmt.Print("uload> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch line {
		case "":
			continue
		case "quit", "exit", "\\q":
			return
		}
		if explainOnly {
			rep, err := e.Explain(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(rep)
			continue
		}
		var (
			out string
			rep *engine.Report
			err error
		)
		if analyze {
			out, rep, err = e.Analyze(line)
		} else {
			out, rep, err = e.Query(line)
		}
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		if analyze {
			fmt.Print(rep.AnalyzeString()) // includes the pattern/plan lines
		} else {
			fmt.Print(rep)
		}
		if trace && rep.Trace != nil {
			if data, err := rep.Trace.JSON(); err == nil {
				fmt.Println(string(data))
			}
		}
		warnDegraded(rep)
		fmt.Println(out)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "uload:", err)
		os.Exit(1)
	}
}
