package storage

import (
	"testing"

	"xamdb/internal/xmltree"
)

// FuzzLoadStoreBytes asserts the loader's total-safety contract: arbitrary
// bytes never panic, and a successful load yields a well-formed store.
func FuzzLoadStoreBytes(f *testing.F) {
	doc := xmltree.MustParse("bib.xml", bibXML)
	if st, err := TagPartitioned(doc); err == nil {
		if b, err := StoreBytes(st); err == nil {
			f.Add(b)
			f.Add(b[:len(b)/2])
		}
	}
	f.Add([]byte{})
	f.Add([]byte("XAMSTORE"))
	f.Add([]byte("XAMSTORE\x01\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("not a store at all"))
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := LoadStoreBytes(b)
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("nil store with nil error")
		}
		for _, m := range s.Modules {
			if m == nil || m.Pattern == nil || m.Data == nil {
				t.Fatalf("loaded store has an incomplete module: %+v", m)
			}
		}
	})
}
