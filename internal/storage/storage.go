// Package storage implements the persistent storage schemes surveyed in
// Chapter 2, each described uniformly by XAMs and materialized as nested
// relations: tag-partitioned stores (Timber/Natix style), path-partitioned
// stores (early Monet/XQueC), node stores (Galax native model #1), the Edge
// relation approach, inlined Hybrid-style relational mappings, unfragmented
// content ("blob") stores, composite-key indexes and full-text indexes. The
// point of the chapter — and of this package — is that the optimizer sees
// every one of them as just a set of XAMs.
package storage

import (
	"fmt"
	"sort"
	"strings"

	"xamdb/internal/algebra"
	"xamdb/internal/rewrite"
	"xamdb/internal/summary"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
)

// Module is one persistent structure: a XAM and its materialized extent.
type Module struct {
	Name    string
	Pattern *xam.Pattern
	Data    *algebra.Relation
}

// Store is a named collection of modules implementing one storage scheme.
type Store struct {
	Name    string
	Modules []*Module
}

// Module returns the named module, or nil.
func (s *Store) Module(name string) *Module {
	for _, m := range s.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Views exposes the store's XAMs to the rewriter.
func (s *Store) Views() []*rewrite.View {
	out := make([]*rewrite.View, len(s.Modules))
	for i, m := range s.Modules {
		out[i] = &rewrite.View{Name: m.Name, Pattern: m.Pattern}
	}
	return out
}

// Env exposes the materialized extents under the column naming the rewriter
// expects (view-prefixed node names), without re-evaluating patterns.
func (s *Store) Env() rewrite.Env {
	env := rewrite.Env{}
	for _, m := range s.Modules {
		renamed := &algebra.Schema{Attrs: make([]algebra.Attr, len(m.Data.Schema.Attrs))}
		for i, a := range m.Data.Schema.Attrs {
			renamed.Attrs[i] = algebra.Attr{Name: m.Name + "_" + a.Name, Nested: prefixNested(m.Name, a.Nested)}
		}
		rel := algebra.NewRelation(renamed)
		rel.Tuples = m.Data.Tuples
		env[m.Name] = rel
	}
	return env
}

func prefixNested(prefix string, s *algebra.Schema) *algebra.Schema {
	if s == nil {
		return nil
	}
	out := &algebra.Schema{Attrs: make([]algebra.Attr, len(s.Attrs))}
	for i, a := range s.Attrs {
		out.Attrs[i] = algebra.Attr{Name: prefix + "_" + a.Name, Nested: prefixNested(prefix, a.Nested)}
	}
	return out
}

// TotalTuples sums module extents; a coarse size measure.
func (s *Store) TotalTuples() int {
	n := 0
	for _, m := range s.Modules {
		n += m.Data.Len()
	}
	return n
}

func (s *Store) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "store %s (%d modules, %d tuples)\n", s.Name, len(s.Modules), s.TotalTuples())
	for _, m := range s.Modules {
		fmt.Fprintf(&sb, "  %-24s %6d tuples  %s\n", m.Name, m.Data.Len(), m.Pattern)
	}
	return sb.String()
}

// buildModule evaluates a XAM over the document.
func buildModule(doc *xmltree.Document, name, pat string) (*Module, error) {
	p, err := xam.Parse(pat)
	if err != nil {
		return nil, err
	}
	data, err := p.Eval(doc)
	if err != nil {
		return nil, err
	}
	return &Module{Name: name, Pattern: p, Data: data}, nil
}

// elementTags returns the document's distinct element tags, sorted.
func elementTags(doc *xmltree.Document) []string {
	set := map[string]bool{}
	doc.Walk(func(n *xmltree.Node) bool {
		if n.Kind == xmltree.Element {
			set[n.Label] = true
		}
		return true
	})
	tags := make([]string, 0, len(set))
	for t := range set {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}

// TagPartitioned builds the native storage model #3 (§2.1.1): tag-partitioned
// collections of structural identifiers, as used by Timber and Natix, plus an
// attribute module.
func TagPartitioned(doc *xmltree.Document) (*Store, error) {
	s := &Store{Name: "tag-partitioned"}
	for _, t := range elementTags(doc) {
		m, err := buildModule(doc, "tag_"+t, fmt.Sprintf("// %s{id s, val}", t))
		if err != nil {
			return nil, err
		}
		s.Modules = append(s.Modules, m)
	}
	m, err := buildModule(doc, "tag_attrs", "// @*{id s, tag, val}")
	if err != nil {
		return nil, err
	}
	s.Modules = append(s.Modules, m)
	return s, nil
}

// PathPartitioned builds the native storage model #4 (§2.1.1): one module
// per rooted element path, in the precise [Tag=c]-per-step form preferred in
// §2.3.2 (Figure 2.14(b)).
func PathPartitioned(doc *xmltree.Document, sum *summary.Summary) (*Store, error) {
	s := &Store{Name: "path-partitioned"}
	for _, sn := range sum.Nodes() {
		if strings.HasPrefix(sn.Label, "@") || sn.Label == "#text" {
			continue
		}
		// Build the chain pattern /root(/l2(/...{id s, val})).
		var labels []string
		for n := sn; n != nil; n = n.Parent {
			labels = append([]string{n.Label}, labels...)
		}
		var sb strings.Builder
		for i, l := range labels {
			sb.WriteString("/ ")
			sb.WriteString(l)
			if i == len(labels)-1 {
				sb.WriteString("{id s, val}")
			}
			if i < len(labels)-1 {
				sb.WriteString("(")
			}
		}
		sb.WriteString(strings.Repeat(")", len(labels)-1))
		m, err := buildModule(doc, fmt.Sprintf("path_%d", sn.Num), sb.String())
		if err != nil {
			return nil, err
		}
		s.Modules = append(s.Modules, m)
	}
	return s, nil
}

// NodeStore builds the Galax-style native model #1/#2 (§2.1.1): one entry
// per node, with structural IDs replacing explicit parent pointers.
func NodeStore(doc *xmltree.Document) (*Store, error) {
	s := &Store{Name: "node-store"}
	elems, err := buildModule(doc, "main_elems", "// *{id s, tag, val}")
	if err != nil {
		return nil, err
	}
	attrs, err := buildModule(doc, "main_attrs", "// @*{id s, tag, val}")
	if err != nil {
		return nil, err
	}
	s.Modules = []*Module{elems, attrs}
	return s, nil
}

// EdgeStore builds the Edge approach of Florescu & Kossmann (§2.3.1): one
// tuple per parent-child pair of nodes, with order-reflecting IDs; the child
// carries name and value (the Value table is folded in).
func EdgeStore(doc *xmltree.Document) (*Store, error) {
	s := &Store{Name: "edge"}
	edges, err := buildModule(doc, "edge", "// *{id o}(/ *{id o, tag, val})")
	if err != nil {
		return nil, err
	}
	attrEdges, err := buildModule(doc, "edge_attrs", "// *{id o}(/ @*{id o, tag, val})")
	if err != nil {
		return nil, err
	}
	root, err := buildModule(doc, "edge_root", "/ *{id o, tag, val}")
	if err != nil {
		return nil, err
	}
	s.Modules = []*Module{edges, attrEdges, root}
	return s, nil
}

// ContentStore builds an unfragmented ("blob") store for the given tags
// (§2.1.1's sectionContent): each element's full serialized content in one
// module.
func ContentStore(doc *xmltree.Document, tags ...string) (*Store, error) {
	s := &Store{Name: "content"}
	for _, t := range tags {
		m, err := buildModule(doc, "content_"+t, fmt.Sprintf("// %s{id s, cont}", t))
		if err != nil {
			return nil, err
		}
		s.Modules = append(s.Modules, m)
	}
	return s, nil
}

// Hybrid builds a Shanmugasundaram-style inlined relational mapping
// (§2.1.1 model #1): per element tag, a module storing the element's ID and
// the values of children that occur at most once under every instance
// (one-to-one edges in the enhanced summary); repeatable children keep their
// own modules.
func Hybrid(doc *xmltree.Document, sum *summary.Summary) (*Store, error) {
	s := &Store{Name: "hybrid"}
	// For each tag, collect child labels inlineable everywhere the tag
	// occurs.
	inlineable := map[string]map[string]bool{}
	occurrences := map[string][]*summary.Node{}
	for _, sn := range sum.Nodes() {
		if strings.HasPrefix(sn.Label, "@") || sn.Label == "#text" {
			continue
		}
		occurrences[sn.Label] = append(occurrences[sn.Label], sn)
	}
	for tag, sns := range occurrences {
		cands := map[string]int{}
		for _, sn := range sns {
			for _, c := range sn.Children {
				if c.Label == "#text" {
					continue
				}
				if c.EdgeIn == summary.One && isLeafLike(c) {
					cands[c.Label]++
				} else {
					cands[c.Label] = -1 << 20
				}
			}
		}
		inlineable[tag] = map[string]bool{}
		for l, n := range cands {
			if n > 0 {
				inlineable[tag][l] = true
			}
		}
	}
	tags := make([]string, 0, len(occurrences))
	for t := range occurrences {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	inlinedSomewhere := map[string]bool{}
	for _, t := range tags {
		var sb strings.Builder
		fmt.Fprintf(&sb, "// %s{id s, val}", t)
		var kids []string
		for l := range inlineable[t] {
			kids = append(kids, l)
		}
		sort.Strings(kids)
		if len(kids) > 0 {
			sb.WriteString("(")
			for i, l := range kids {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "/(o) %s{val}", l)
				inlinedSomewhere[l] = true
			}
			sb.WriteString(")")
		}
		m, err := buildModule(doc, "hybrid_"+t, sb.String())
		if err != nil {
			return nil, err
		}
		s.Modules = append(s.Modules, m)
	}
	m, err := buildModule(doc, "hybrid_attrs", "// @*{id s, tag, val}")
	if err != nil {
		return nil, err
	}
	s.Modules = append(s.Modules, m)
	return s, nil
}

// isLeafLike reports whether a summary node has only text below it.
func isLeafLike(n *summary.Node) bool {
	for _, c := range n.Children {
		if c.Label != "#text" {
			return false
		}
	}
	return true
}
