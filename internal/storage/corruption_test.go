package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xamdb/internal/faultinject"
	"xamdb/internal/xmltree"
)

func mustStoreBytes(t *testing.T) (*Store, []byte) {
	t.Helper()
	doc := xmltree.MustParse("bib.xml", bibXML)
	st, err := TagPartitioned(doc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StoreBytes(st)
	if err != nil {
		t.Fatal(err)
	}
	return st, b
}

// loadNoPanic runs LoadStoreBytes converting any panic into a test failure,
// so the corruption sweep reports the offending offset instead of crashing.
func loadNoPanic(t *testing.T, label string, b []byte) (s *Store, err error) {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("%s: LoadStoreBytes panicked: %v", label, p)
		}
	}()
	return LoadStoreBytes(b)
}

// TestLoadStoreCorruptionSweep flips every byte of a saved store and
// truncates it at every length: no mutation may panic or load silently —
// the CRC (or the framing checks before it) must reject each one.
func TestLoadStoreCorruptionSweep(t *testing.T) {
	_, b := mustStoreBytes(t)
	if _, err := loadNoPanic(t, "pristine", b); err != nil {
		t.Fatalf("pristine bytes must load: %v", err)
	}
	for i := range b {
		for _, mask := range []byte{0xff, 0x01} {
			c := append([]byte(nil), b...)
			c[i] ^= mask
			if _, err := loadNoPanic(t, "flip", c); err == nil {
				t.Fatalf("flipping byte %d with %#x loaded silently", i, mask)
			}
		}
	}
	for n := 0; n < len(b); n++ {
		if _, err := loadNoPanic(t, "truncate", b[:n]); err == nil {
			t.Fatalf("truncation to %d bytes loaded silently", n)
		}
	}
}

func TestLoadStoreLegacyFormatDetected(t *testing.T) {
	// A pre-framing store was a raw gob stream; any non-magic prefix must
	// produce the clear "not a xamdb store" error, not a gob error.
	_, err := LoadStoreBytes([]byte("\x0c\xff\x81\x02legacy gob-ish bytes........."))
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("legacy bytes must be rejected with a bad-magic error, got %v", err)
	}
}

func TestLoadStoreUnsupportedVersion(t *testing.T) {
	_, b := mustStoreBytes(t)
	c := append([]byte(nil), b...)
	c[len(storeMagic)] = 99
	_, err := LoadStoreBytes(c)
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("future version must be rejected clearly, got %v", err)
	}
}

func TestLoadStoreTruncationErrorHasOffset(t *testing.T) {
	_, b := mustStoreBytes(t)
	_, err := LoadStoreBytes(b[:storeHeaderSize+5])
	if err == nil || !strings.Contains(err.Error(), "byte offset") {
		t.Fatalf("truncation error must carry a byte offset, got %v", err)
	}
}

func TestLoadStoreEmptyInput(t *testing.T) {
	for _, b := range [][]byte{nil, {}, []byte("X")} {
		if _, err := LoadStoreBytes(b); err == nil {
			t.Fatalf("%d-byte input must error", len(b))
		}
	}
}

func TestFromPersistedValueKindRange(t *testing.T) {
	_, err := fromPersistedValue(persistedValue{Kind: 200})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range kind must be a corruption error, got %v", err)
	}
}

func TestSaveStoreFileAtomic(t *testing.T) {
	st, _ := mustStoreBytes(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "s.store")
	if err := SaveStoreFile(path, st); err != nil {
		t.Fatal(err)
	}
	again, err := LoadStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if again.Name != st.Name || len(again.Modules) != len(st.Modules) {
		t.Fatalf("round trip shape: %q/%d vs %q/%d",
			again.Name, len(again.Modules), st.Name, len(st.Modules))
	}
	// A failing save must leave neither a damaged target nor temp litter.
	faultinject.Arm(SiteSave, faultinject.Fault{})
	t.Cleanup(faultinject.Reset)
	if err := SaveStoreFile(path, st); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected save fault must surface, got %v", err)
	}
	if _, err := LoadStoreFile(path); err != nil {
		t.Fatalf("failed save must not damage the existing file: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %d entries in %s", len(entries), dir)
	}
}

func TestSaveStoreWriteFailureMidStream(t *testing.T) {
	st, b := mustStoreBytes(t)
	for _, after := range []int64{0, 3, int64(storeHeaderSize), int64(len(b) - 2)} {
		var buf bytes.Buffer
		w := &faultinject.Writer{W: &buf, FailAfter: after}
		if err := SaveStore(w, st); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("write failing after %d bytes must surface, got %v", after, err)
		}
	}
}

func TestLoadStoreReadFailureMidStream(t *testing.T) {
	_, b := mustStoreBytes(t)
	for _, after := range []int64{0, 3, int64(storeHeaderSize), int64(len(b) - 2)} {
		r := &faultinject.Reader{R: bytes.NewReader(b), FailAfter: after}
		if _, err := LoadStore(r); err == nil {
			t.Fatalf("read failing after %d bytes must error", after)
		}
	}
}

func TestLoadStoreInjectedSiteFault(t *testing.T) {
	_, b := mustStoreBytes(t)
	faultinject.Arm(SiteLoad, faultinject.Fault{})
	t.Cleanup(faultinject.Reset)
	if _, err := LoadStoreBytes(b); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("armed storage.load site must inject, got %v", err)
	}
	faultinject.Reset()
	if _, err := LoadStoreBytes(b); err != nil {
		t.Fatalf("after reset the load must succeed: %v", err)
	}
}
