package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"xamdb/internal/algebra"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
)

// Format version 2 replaces the gob relation payload with a binary columnar
// layout: each module's relation is stored as per-attribute typed column
// arrays — interned string dictionaries, zigzag-varint integers and
// structural IDs, nested collections as offset-delimited child columns —
// inside the same XAMSTORE CRC framing. Extents decode straight into
// scan-ready column vectors (algebra.Columns), so a loaded store feeds the
// batch execution path without a transpose.
//
// Payload v2 layout (after the verified framing):
//
//	str(store name)
//	uvarint(#modules)
//	per module: str(name)  str(textual XAM)  relation
//
//	relation: schema  uvarint(#rows)  column per top-level attribute
//	schema:   uvarint(#attrs)  per attr: str(name)  byte(nested?)  [schema]
//
//	column: byte(encoding)
//	  encoding 1 (uniform — every non-null value has one kind):
//	    byte(kind)  byte(has-nulls)  [ceil(n/8) null bitmap, bit set = ⊥]
//	    then the non-null rows' payloads, packed by kind:
//	      Str    uvarint(#dict) dict strings, then uvarint(dict idx) per row
//	      Int    zigzag varint per row
//	      Float  8-byte big-endian IEEE bits per row
//	      ID     zigzag varints pre, post, depth per row
//	      Dewey  uvarint(#components) + zigzag varint components per row
//	      Rel    shared child schema, uvarint(#children) per row, then the
//	             concatenated child tuples as columns (recursively)
//	      Null   nothing (the bitmap carries the whole column)
//	  encoding 2 (rowwise — mixed kinds or heterogeneous nested schemas):
//	    per row: byte(kind) + that kind's payload (Rel: a full relation)
//
// varints are encoding/binary's; "zigzag" is binary.PutVarint. str is
// uvarint length + bytes. The decoder is total: every length is bounds-
// checked against the remaining payload before allocation (an all-null
// column still costs ceil(n/8) bytes, which bounds row counts by
// 8·remaining), nesting depth is capped, and no input can make it panic.

const (
	colEncUniform byte = 1
	colEncRowwise byte = 2

	// maxNestDepth caps schema/collection recursion so a crafted payload
	// cannot exhaust the stack.
	maxNestDepth = 100
)

// ---------------------------------------------------------------------------
// Encoding

type colWriter struct {
	buf     bytes.Buffer
	scratch [binary.MaxVarintLen64]byte
}

func (w *colWriter) u64(v uint64) {
	n := binary.PutUvarint(w.scratch[:], v)
	w.buf.Write(w.scratch[:n])
}

func (w *colWriter) i64(v int64) {
	n := binary.PutVarint(w.scratch[:], v)
	w.buf.Write(w.scratch[:n])
}

func (w *colWriter) byte(b byte) { w.buf.WriteByte(b) }

func (w *colWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.buf.WriteString(s)
}

func (w *colWriter) f64(f float64) {
	binary.BigEndian.PutUint64(w.scratch[:8], math.Float64bits(f))
	w.buf.Write(w.scratch[:8])
}

// encodeStoreV2 renders the whole store as a v2 payload.
func encodeStoreV2(s *Store) ([]byte, error) {
	w := &colWriter{}
	w.str(s.Name)
	w.u64(uint64(len(s.Modules)))
	for _, m := range s.Modules {
		w.str(m.Name)
		w.str(m.Pattern.String())
		if err := encodeRelation(w, m.Data, 0); err != nil {
			return nil, fmt.Errorf("storage: save module %s: %w", m.Name, err)
		}
	}
	return w.buf.Bytes(), nil
}

func encodeSchema(w *colWriter, s *algebra.Schema, depth int) error {
	if depth > maxNestDepth {
		return fmt.Errorf("schema nesting exceeds %d levels", maxNestDepth)
	}
	w.u64(uint64(len(s.Attrs)))
	for _, a := range s.Attrs {
		w.str(a.Name)
		if a.Nested != nil {
			w.byte(1)
			if err := encodeSchema(w, a.Nested, depth+1); err != nil {
				return err
			}
		} else {
			w.byte(0)
		}
	}
	return nil
}

func encodeRelation(w *colWriter, r *algebra.Relation, depth int) error {
	if depth > maxNestDepth {
		return fmt.Errorf("collection nesting exceeds %d levels", maxNestDepth)
	}
	if err := encodeSchema(w, r.Schema, depth); err != nil {
		return err
	}
	n := r.Len()
	w.u64(uint64(n))
	for j := range r.Schema.Attrs {
		col := make([]algebra.Value, n)
		for i, t := range r.Tuples {
			if j < len(t) {
				col[i] = t[j]
			}
		}
		if err := encodeColumn(w, col, depth); err != nil {
			return err
		}
	}
	return nil
}

// uniformKind classifies a column: the single non-null kind (Null if the
// whole column is ⊥), or ok=false when kinds are mixed or nested collections
// carry heterogeneous schemas — those columns encode rowwise.
func uniformKind(vals []algebra.Value) (algebra.Kind, bool) {
	kind := algebra.Null
	var relSchema *algebra.Schema
	for i := range vals {
		v := &vals[i]
		if v.Kind == algebra.Null {
			continue
		}
		if kind == algebra.Null {
			kind = v.Kind
		} else if v.Kind != kind {
			return 0, false
		}
		if v.Kind == algebra.Rel {
			if v.Rel == nil {
				return 0, false
			}
			if relSchema == nil {
				relSchema = v.Rel.Schema
			} else if !relSchema.Equal(v.Rel.Schema) {
				return 0, false
			}
		}
	}
	return kind, true
}

func encodeColumn(w *colWriter, vals []algebra.Value, depth int) error {
	kind, uniform := uniformKind(vals)
	if !uniform {
		w.byte(colEncRowwise)
		for i := range vals {
			if err := encodeValueRow(w, vals[i], depth); err != nil {
				return err
			}
		}
		return nil
	}

	w.byte(colEncUniform)
	w.byte(byte(kind))
	hasNulls := kind == algebra.Null && len(vals) > 0
	for i := range vals {
		if vals[i].Kind == algebra.Null {
			hasNulls = true
			break
		}
	}
	if hasNulls {
		w.byte(1)
		bitmap := make([]byte, (len(vals)+7)/8)
		for i := range vals {
			if vals[i].Kind == algebra.Null {
				bitmap[i/8] |= 1 << (i % 8)
			}
		}
		w.buf.Write(bitmap)
	} else {
		w.byte(0)
	}

	switch kind {
	case algebra.Null:
		return nil
	case algebra.Str:
		dict := map[string]uint64{}
		var order []string
		for i := range vals {
			if vals[i].Kind == algebra.Null {
				continue
			}
			if _, ok := dict[vals[i].Str]; !ok {
				dict[vals[i].Str] = uint64(len(order))
				order = append(order, vals[i].Str)
			}
		}
		w.u64(uint64(len(order)))
		for _, s := range order {
			w.str(s)
		}
		for i := range vals {
			if vals[i].Kind != algebra.Null {
				w.u64(dict[vals[i].Str])
			}
		}
	case algebra.Int:
		for i := range vals {
			if vals[i].Kind != algebra.Null {
				w.i64(vals[i].Int)
			}
		}
	case algebra.Float:
		for i := range vals {
			if vals[i].Kind != algebra.Null {
				w.f64(vals[i].Float)
			}
		}
	case algebra.ID:
		for i := range vals {
			if vals[i].Kind != algebra.Null {
				w.i64(int64(vals[i].ID.Pre))
				w.i64(int64(vals[i].ID.Post))
				w.i64(int64(vals[i].ID.Depth))
			}
		}
	case algebra.DeweyID:
		for i := range vals {
			if vals[i].Kind != algebra.Null {
				w.u64(uint64(len(vals[i].Dewey)))
				for _, c := range vals[i].Dewey {
					w.i64(int64(c))
				}
			}
		}
	case algebra.Rel:
		// Offset-delimited child columns: the shared child schema, each
		// row's child count, then every child tuple of every row
		// concatenated and encoded as one set of columns.
		var childSchema *algebra.Schema
		total := 0
		for i := range vals {
			if vals[i].Kind != algebra.Null {
				childSchema = vals[i].Rel.Schema
				total += vals[i].Rel.Len()
			}
		}
		if childSchema == nil {
			childSchema = &algebra.Schema{}
		}
		if err := encodeSchema(w, childSchema, depth+1); err != nil {
			return err
		}
		for i := range vals {
			if vals[i].Kind != algebra.Null {
				w.u64(uint64(vals[i].Rel.Len()))
			}
		}
		for j := range childSchema.Attrs {
			col := make([]algebra.Value, 0, total)
			for i := range vals {
				if vals[i].Kind == algebra.Null {
					continue
				}
				for _, t := range vals[i].Rel.Tuples {
					if j < len(t) {
						col = append(col, t[j])
					} else {
						col = append(col, algebra.NullValue)
					}
				}
			}
			if err := encodeColumn(w, col, depth+1); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unencodable value kind %d", kind)
	}
	return nil
}

func encodeValueRow(w *colWriter, v algebra.Value, depth int) error {
	if v.Kind > algebra.Rel {
		return fmt.Errorf("unencodable value kind %d", v.Kind)
	}
	w.byte(byte(v.Kind))
	switch v.Kind {
	case algebra.Null:
	case algebra.Str:
		w.str(v.Str)
	case algebra.Int:
		w.i64(v.Int)
	case algebra.Float:
		w.f64(v.Float)
	case algebra.ID:
		w.i64(int64(v.ID.Pre))
		w.i64(int64(v.ID.Post))
		w.i64(int64(v.ID.Depth))
	case algebra.DeweyID:
		w.u64(uint64(len(v.Dewey)))
		for _, c := range v.Dewey {
			w.i64(int64(c))
		}
	case algebra.Rel:
		rel := v.Rel
		if rel == nil {
			rel = algebra.NewRelation(&algebra.Schema{})
		}
		return encodeRelation(w, rel, depth+1)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Decoding

// colReader walks a decoded payload with a sticky error: once any read runs
// off the end or a count fails validation, every subsequent read is a no-op
// and the error surfaces at the call site's convenience. All slice
// allocations are bounded by the remaining payload first.
type colReader struct {
	b   []byte
	off int
	err error
}

func (r *colReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("byte offset %d: "+format, append([]any{r.off}, args...)...)
	}
}

func (r *colReader) remaining() int { return len(r.b) - r.off }

func (r *colReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated or malformed uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *colReader) i64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated or malformed varint")
		return 0
	}
	r.off += n
	return v
}

func (r *colReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated byte")
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

func (r *colReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.remaining() {
		r.fail("truncated: need %d bytes, have %d", n, r.remaining())
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *colReader) str() string {
	n := r.u64()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.remaining()) {
		r.fail("string length %d exceeds remaining %d bytes", n, r.remaining())
		return ""
	}
	return string(r.take(int(n)))
}

func (r *colReader) f64() float64 {
	b := r.take(8)
	if r.err != nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

// count validates a uvarint element count against the remaining payload:
// every element costs at least minBytes bytes, so larger counts are corrupt
// and must not drive an allocation.
func (r *colReader) count(what string, minBytes int) int {
	n := r.u64()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(r.remaining()/minBytes) {
		r.fail("%s count %d exceeds remaining payload", what, n)
		return 0
	}
	return int(n)
}

// decodeStoreV2 rebuilds a store from a v2 payload (framing and CRC already
// verified by LoadStore).
func decodeStoreV2(payload []byte) (*Store, error) {
	r := &colReader{b: payload}
	s := &Store{Name: r.str()}
	nmod := r.count("module", 2)
	for i := 0; i < nmod && r.err == nil; i++ {
		name := r.str()
		pattern := r.str()
		rel := decodeRelation(r, 0)
		if r.err != nil {
			break
		}
		pat, err := xam.Parse(pattern)
		if err != nil {
			return nil, fmt.Errorf("storage: load module %s: %w", name, err)
		}
		s.Modules = append(s.Modules, &Module{Name: name, Pattern: pat, Data: rel})
	}
	if r.err != nil {
		return nil, fmt.Errorf("storage: load: corrupt v2 payload at %w", r.err)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("storage: load: %d trailing payload bytes after store", r.remaining())
	}
	return s, nil
}

func decodeSchema(r *colReader, depth int) *algebra.Schema {
	if depth > maxNestDepth {
		r.fail("schema nesting exceeds %d levels", maxNestDepth)
		return nil
	}
	nattrs := r.count("attribute", 2)
	s := &algebra.Schema{}
	for i := 0; i < nattrs && r.err == nil; i++ {
		name := r.str()
		var nested *algebra.Schema
		if r.byte() == 1 {
			nested = decodeSchema(r, depth+1)
		}
		s.Attrs = append(s.Attrs, algebra.Attr{Name: name, Nested: nested})
	}
	return s
}

// rowCount validates a relation/collection row count: even an all-null
// column costs ceil(n/8) bitmap bytes, so n beyond 8·remaining (plus slack
// for tiny relations) cannot be honest.
func (r *colReader) rowCount() int {
	n := r.u64()
	if r.err != nil {
		return 0
	}
	if n > uint64(8*r.remaining()+64) {
		r.fail("row count %d exceeds what %d remaining bytes could encode", n, r.remaining())
		return 0
	}
	return int(n)
}

func decodeRelation(r *colReader, depth int) *algebra.Relation {
	if depth > maxNestDepth {
		r.fail("collection nesting exceeds %d levels", maxNestDepth)
		return nil
	}
	schema := decodeSchema(r, depth)
	n := r.rowCount()
	if r.err != nil {
		return nil
	}
	cols := make([][]algebra.Value, len(schema.Attrs))
	for j := range cols {
		cols[j] = decodeColumn(r, n, depth)
		if r.err != nil {
			return nil
		}
	}
	return algebra.NewColumns(schema, cols, n).Relation()
}

func decodeColumn(r *colReader, n, depth int) []algebra.Value {
	switch enc := r.byte(); enc {
	case colEncUniform:
		return decodeUniformColumn(r, n, depth)
	case colEncRowwise:
		vals := make([]algebra.Value, n)
		for i := 0; i < n && r.err == nil; i++ {
			vals[i] = decodeValueRow(r, depth)
		}
		return vals
	default:
		if r.err == nil {
			r.fail("unknown column encoding %d", enc)
		}
		return nil
	}
}

func decodeUniformColumn(r *colReader, n, depth int) []algebra.Value {
	kind := algebra.Kind(r.byte())
	if r.err != nil {
		return nil
	}
	if kind > algebra.Rel {
		r.fail("value kind %d out of range [0,%d]", kind, algebra.Rel)
		return nil
	}
	var bitmap []byte
	if r.byte() == 1 {
		bitmap = r.take((n + 7) / 8)
	}
	if r.err != nil {
		return nil
	}
	isNull := func(i int) bool {
		return bitmap != nil && bitmap[i/8]&(1<<(i%8)) != 0
	}
	vals := make([]algebra.Value, n)

	switch kind {
	case algebra.Null:
		return vals
	case algebra.Str:
		ndict := r.count("dictionary", 1)
		dict := make([]string, ndict)
		for i := range dict {
			dict[i] = r.str()
		}
		for i := 0; i < n && r.err == nil; i++ {
			if isNull(i) {
				continue
			}
			idx := r.u64()
			if idx >= uint64(len(dict)) {
				r.fail("dictionary index %d out of range [0,%d)", idx, len(dict))
				return nil
			}
			vals[i] = algebra.S(dict[idx])
		}
	case algebra.Int:
		for i := 0; i < n && r.err == nil; i++ {
			if !isNull(i) {
				vals[i] = algebra.I(r.i64())
			}
		}
	case algebra.Float:
		for i := 0; i < n && r.err == nil; i++ {
			if !isNull(i) {
				vals[i] = algebra.F(r.f64())
			}
		}
	case algebra.ID:
		for i := 0; i < n && r.err == nil; i++ {
			if !isNull(i) {
				vals[i] = algebra.IDV(xmltree.NodeID{
					Pre:   int32(r.i64()),
					Post:  int32(r.i64()),
					Depth: int32(r.i64()),
				})
			}
		}
	case algebra.DeweyID:
		for i := 0; i < n && r.err == nil; i++ {
			if isNull(i) {
				continue
			}
			ncomp := r.count("dewey component", 1)
			d := make(xmltree.Dewey, ncomp)
			for k := range d {
				d[k] = int32(r.i64())
			}
			vals[i] = algebra.DV(d)
		}
	case algebra.Rel:
		childSchema := decodeSchema(r, depth+1)
		if r.err != nil {
			return nil
		}
		counts := make([]int, 0, n)
		total := 0
		for i := 0; i < n && r.err == nil; i++ {
			if isNull(i) {
				continue
			}
			c := r.u64()
			if c > uint64(8*r.remaining()+64) {
				r.fail("child row count %d exceeds remaining payload", c)
				return nil
			}
			counts = append(counts, int(c))
			total += int(c)
			// The concatenated child columns still lie ahead, so the running
			// total must stay encodable in what remains (all-null columns
			// cost ceil(total/8) bytes each) — otherwise summed counts could
			// compound into an allocation far beyond the payload size.
			if total > 8*r.remaining()+64 {
				r.fail("summed child row count %d exceeds remaining payload", total)
				return nil
			}
		}
		if r.err != nil {
			return nil
		}
		ccols := make([][]algebra.Value, len(childSchema.Attrs))
		for j := range ccols {
			ccols[j] = decodeColumn(r, total, depth+1)
			if r.err != nil {
				return nil
			}
		}
		concat := algebra.NewColumns(childSchema, ccols, total).Relation()
		pos, ci := 0, 0
		for i := 0; i < n; i++ {
			if isNull(i) {
				continue
			}
			c := counts[ci]
			ci++
			child := algebra.NewRelation(childSchema)
			child.Tuples = concat.Tuples[pos : pos+c]
			pos += c
			vals[i] = algebra.RelV(child)
		}
	}
	return vals
}

func decodeValueRow(r *colReader, depth int) algebra.Value {
	kind := algebra.Kind(r.byte())
	if r.err != nil {
		return algebra.NullValue
	}
	if kind > algebra.Rel {
		r.fail("value kind %d out of range [0,%d]", kind, algebra.Rel)
		return algebra.NullValue
	}
	switch kind {
	case algebra.Str:
		return algebra.S(r.str())
	case algebra.Int:
		return algebra.I(r.i64())
	case algebra.Float:
		return algebra.F(r.f64())
	case algebra.ID:
		return algebra.IDV(xmltree.NodeID{
			Pre:   int32(r.i64()),
			Post:  int32(r.i64()),
			Depth: int32(r.i64()),
		})
	case algebra.DeweyID:
		ncomp := r.count("dewey component", 1)
		d := make(xmltree.Dewey, ncomp)
		for k := range d {
			d[k] = int32(r.i64())
		}
		return algebra.DV(d)
	case algebra.Rel:
		rel := decodeRelation(r, depth+1)
		if r.err != nil {
			return algebra.NullValue
		}
		return algebra.RelV(rel)
	}
	return algebra.NullValue
}
