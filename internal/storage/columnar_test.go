package storage

import (
	"bytes"
	"math"
	"testing"

	"xamdb/internal/algebra"
	"xamdb/internal/summary"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
)

// trickyStore builds a store whose single module exercises every column
// shape the v2 codec distinguishes: uniform typed columns with and without
// nulls, an all-null column, a mixed-kind column (rowwise encoding),
// homogeneous nested collections (offset-delimited child columns, including
// an empty child) and heterogeneous nested collections (rowwise fallback).
func trickyStore(t *testing.T) *Store {
	t.Helper()
	childA := algebra.NewSchema("c1", "c2")
	childB := algebra.NewSchema("other")
	mkChild := func(s *algebra.Schema, rows ...algebra.Tuple) *algebra.Relation {
		r := algebra.NewRelation(s)
		r.Tuples = rows
		return r
	}
	schema := algebra.NewSchema("ints", "strs", "floats", "ids", "dewey", "allnull", "mixed", "nested", "hetero")
	rel := algebra.NewRelation(schema)
	rel.Add(
		algebra.Tuple{
			algebra.I(42), algebra.S("alpha"), algebra.F(3.5),
			algebra.IDV(xmltree.NodeID{Pre: 1, Post: 9, Depth: 2}),
			algebra.DV(xmltree.Dewey{1, 2, 3}), algebra.NullValue,
			algebra.I(-7),
			algebra.RelV(mkChild(childA,
				algebra.Tuple{algebra.I(1), algebra.S("x")},
				algebra.Tuple{algebra.I(2), algebra.S("y")})),
			algebra.RelV(mkChild(childA, algebra.Tuple{algebra.I(1), algebra.S("x")})),
		},
		algebra.Tuple{
			algebra.NullValue, algebra.S("alpha"), algebra.F(math.Inf(1)),
			algebra.NullValue,
			algebra.DV(xmltree.Dewey{}), algebra.NullValue,
			algebra.S("now a string"),
			algebra.RelV(mkChild(childA)), // zero-row child
			algebra.RelV(mkChild(childB, algebra.Tuple{algebra.S("different schema")})),
		},
		algebra.Tuple{
			algebra.I(-1 << 40), algebra.S(""), algebra.F(math.Copysign(0, -1)),
			algebra.IDV(xmltree.NodeID{Pre: -3, Post: 0, Depth: 0}),
			algebra.NullValue, algebra.NullValue,
			algebra.F(2.25),
			algebra.RelV(mkChild(childA,
				algebra.Tuple{algebra.NullValue, algebra.S("y")})),
			algebra.NullValue,
		},
	)
	pat, err := xam.Parse(`// a{id p}`)
	if err != nil {
		t.Fatal(err)
	}
	return &Store{Name: "tricky", Modules: []*Module{{Name: "m", Pattern: pat, Data: rel}}}
}

func storesEqual(t *testing.T, label string, got, want *Store) {
	t.Helper()
	if got.Name != want.Name || len(got.Modules) != len(want.Modules) {
		t.Fatalf("%s: shape %q/%d vs %q/%d", label, got.Name, len(got.Modules), want.Name, len(want.Modules))
	}
	for i, m := range want.Modules {
		g := got.Modules[i]
		if g.Name != m.Name {
			t.Fatalf("%s: module %d name %q vs %q", label, i, g.Name, m.Name)
		}
		if g.Pattern.String() != m.Pattern.String() {
			t.Fatalf("%s: module %s pattern %q vs %q", label, m.Name, g.Pattern, m.Pattern)
		}
		if !g.Data.Equal(m.Data) {
			t.Fatalf("%s: module %s data differs:\n%s\nvs\n%s", label, m.Name, g.Data, m.Data)
		}
	}
}

func TestColumnarRoundTripTrickyValues(t *testing.T) {
	st := trickyStore(t)
	b, err := StoreBytes(st)
	if err != nil {
		t.Fatal(err)
	}
	if b[len(storeMagic)] != storeVersionColumnar {
		t.Fatalf("SaveStore must write version %d, wrote %d", storeVersionColumnar, b[len(storeMagic)])
	}
	again, err := LoadStoreBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	storesEqual(t, "v2 round trip", again, st)
}

// TestV1StoresLoadEqualToV2 proves backward compatibility: a store saved in
// the legacy gob format loads into relations Relation-equal to both the
// original and the v2-columnar load of the same store.
func TestV1StoresLoadEqualToV2(t *testing.T) {
	doc := xmltree.MustParse("bib.xml", bibXML)
	builds := []func() (*Store, error){
		func() (*Store, error) { return TagPartitioned(doc) },
		func() (*Store, error) { return PathPartitioned(doc, summary.Build(doc)) },
		func() (*Store, error) { return Hybrid(doc, summary.Build(doc)) },
		func() (*Store, error) { return trickyStore(t), nil },
	}
	for _, build := range builds {
		st, err := build()
		if err != nil {
			t.Fatal(err)
		}
		var v1 bytes.Buffer
		if err := saveStoreV1(&v1, st); err != nil {
			t.Fatal(err)
		}
		if v1.Bytes()[len(storeMagic)] != storeVersionGob {
			t.Fatalf("saveStoreV1 must write version %d", storeVersionGob)
		}
		fromV1, err := LoadStoreBytes(v1.Bytes())
		if err != nil {
			t.Fatalf("v1 store must keep loading: %v", err)
		}
		storesEqual(t, "v1 load", fromV1, st)

		v2, err := StoreBytes(st)
		if err != nil {
			t.Fatal(err)
		}
		fromV2, err := LoadStoreBytes(v2)
		if err != nil {
			t.Fatal(err)
		}
		storesEqual(t, "v1 vs v2 load", fromV1, fromV2)
	}
}

// TestColumnarDecodeIsScanReady asserts the load path's contract with the
// batch engine: a loaded module's relation carries its column-major view
// already built (no transpose on first scan).
func TestColumnarDecodeIsScanReady(t *testing.T) {
	st := trickyStore(t)
	b, err := StoreBytes(st)
	if err != nil {
		t.Fatal(err)
	}
	again, err := LoadStoreBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	rel := again.Modules[0].Data
	cols := rel.Columns()
	if cols.NRows != rel.Len() || len(cols.Cols) != len(rel.Schema.Attrs) {
		t.Fatalf("columns shape %dx%d vs relation %dx%d",
			cols.NRows, len(cols.Cols), rel.Len(), len(rel.Schema.Attrs))
	}
	for j := range cols.Cols {
		for i := 0; i < cols.NRows; i++ {
			if !cols.Cols[j][i].Equal(rel.Tuples[i][j]) {
				t.Fatalf("column view diverges from tuples at (%d,%d)", i, j)
			}
		}
	}
}
