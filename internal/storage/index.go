package storage

import (
	"fmt"
	"sort"
	"strings"

	"xamdb/internal/algebra"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
)

// Index is a generic XML index described by an R-marked XAM (§2.2.2): the
// required attributes form the lookup key; Lookup applies the restricted
// semantics (Definition 2.2.6) against the precomputed full extent.
type Index struct {
	Name    string
	Pattern *xam.Pattern
	full    *algebra.Relation
}

// BuildIndex materializes the index over the document. The pattern must
// carry at least one R marker.
func BuildIndex(doc *xmltree.Document, name, pat string) (*Index, error) {
	p, err := xam.Parse(pat)
	if err != nil {
		return nil, err
	}
	if !p.HasRequired() {
		return nil, fmt.Errorf("storage: index pattern %q has no required attribute", pat)
	}
	full, err := p.StripRequired().Eval(doc)
	if err != nil {
		return nil, err
	}
	return &Index{Name: name, Pattern: p, full: full}, nil
}

// BindingSchema returns the lookup key type.
func (ix *Index) BindingSchema() *algebra.Schema { return ix.Pattern.BindingSchema() }

// Lookup returns the data accessible under the given bindings.
func (ix *Index) Lookup(bindings *algebra.Relation) (*algebra.Relation, error) {
	bs := ix.BindingSchema()
	if !bs.Equal(bindings.Schema) {
		return nil, fmt.Errorf("storage: binding schema %s does not match %s", bindings.Schema, bs)
	}
	out := algebra.NewRelation(ix.full.Schema)
	for _, b := range bindings.Tuples {
		for _, t := range ix.full.Tuples {
			if r, ok := xam.IntersectTuples(t, ix.full.Schema, b, bs); ok {
				out.Add(r)
			}
		}
	}
	return algebra.Distinct(out), nil
}

// Size returns the number of indexed tuples.
func (ix *Index) Size() int { return ix.full.Len() }

// FullTextIndex maps words to the structural identifiers of the elements
// whose value contains them — the IndexFabric-style FTI of §2.1.2, scoped by
// a single-return-node XAM (e.g. "// title{id s, val}" indexes book titles
// by title words).
type FullTextIndex struct {
	Name    string
	Pattern *xam.Pattern
	posting map[string][]xmltree.NodeID
}

// BuildFullTextIndex builds the word index over the elements selected by the
// pattern, which must store exactly one node's ID and Val.
func BuildFullTextIndex(doc *xmltree.Document, name, pat string) (*FullTextIndex, error) {
	p, err := xam.Parse(pat)
	if err != nil {
		return nil, err
	}
	rel, err := p.Eval(doc)
	if err != nil {
		return nil, err
	}
	idCol, valCol := -1, -1
	for i, a := range rel.Schema.Attrs {
		switch {
		case strings.HasSuffix(a.Name, ".ID"):
			idCol = i
		case strings.HasSuffix(a.Name, ".Val"):
			valCol = i
		}
	}
	if idCol < 0 || valCol < 0 {
		return nil, fmt.Errorf("storage: FTI pattern must store one node's ID and Val, got %s", rel.Schema)
	}
	fti := &FullTextIndex{Name: name, Pattern: p, posting: map[string][]xmltree.NodeID{}}
	for _, t := range rel.Tuples {
		if t[idCol].Kind != algebra.ID {
			continue
		}
		id := t[idCol].ID
		seen := map[string]bool{}
		for _, w := range strings.Fields(strings.ToLower(t[valCol].AsString())) {
			w = strings.Trim(w, ".,;:!?()'\"")
			if w == "" || seen[w] {
				continue
			}
			seen[w] = true
			fti.posting[w] = append(fti.posting[w], id)
		}
	}
	for _, ids := range fti.posting {
		sort.Slice(ids, func(i, j int) bool { return ids[i].Pre < ids[j].Pre })
	}
	return fti, nil
}

// Lookup returns the IDs of elements containing the word, in document order.
func (f *FullTextIndex) Lookup(word string) []xmltree.NodeID {
	return f.posting[strings.ToLower(word)]
}

// Words returns the number of distinct indexed words.
func (f *FullTextIndex) Words() int { return len(f.posting) }
