package storage

import (
	"strings"
	"testing"

	"xamdb/internal/algebra"
	"xamdb/internal/rewrite"
	"xamdb/internal/summary"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
)

const bibXML = `<bib>
  <book year="1999">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Suciu</author>
  </book>
  <book year="2002">
    <title>The Syntactic Web</title>
    <author>Tom Lerners-Bee</author>
  </book>
</bib>`

func bib(t *testing.T) *xmltree.Document {
	t.Helper()
	return xmltree.MustParse("bib.xml", bibXML)
}

func TestTagPartitioned(t *testing.T) {
	s, err := TagPartitioned(bib(t))
	if err != nil {
		t.Fatal(err)
	}
	books := s.Module("tag_book")
	if books == nil || books.Data.Len() != 2 {
		t.Fatalf("books module: %v", books)
	}
	authors := s.Module("tag_author")
	if authors == nil || authors.Data.Len() != 3 {
		t.Fatalf("authors module: %v", authors)
	}
	attrs := s.Module("tag_attrs")
	if attrs == nil || attrs.Data.Len() != 2 {
		t.Fatalf("attrs module: %v", attrs)
	}
}

func TestPathPartitioned(t *testing.T) {
	doc := bib(t)
	s, err := PathPartitioned(doc, summary.Build(doc))
	if err != nil {
		t.Fatal(err)
	}
	// Modules: /bib, /bib/book, /bib/book/title, /bib/book/author.
	if len(s.Modules) != 4 {
		t.Fatalf("modules: %s", s)
	}
	var titleMod *Module
	for _, m := range s.Modules {
		if strings.Contains(m.Pattern.String(), "title") {
			titleMod = m
		}
	}
	if titleMod == nil || titleMod.Data.Len() != 2 {
		t.Fatalf("title module: %v", titleMod)
	}
}

func TestNodeAndEdgeStores(t *testing.T) {
	doc := bib(t)
	ns, err := NodeStore(doc)
	if err != nil {
		t.Fatal(err)
	}
	// 8 elements + 2 attributes.
	if ns.Module("main_elems").Data.Len() != 8 || ns.Module("main_attrs").Data.Len() != 2 {
		t.Fatalf("node store: %s", ns)
	}
	es, err := EdgeStore(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Element parent-child pairs: bib→book ×2, book→title ×2, book→author ×3.
	if es.Module("edge").Data.Len() != 7 {
		t.Fatalf("edge store: %s", es)
	}
	if es.Module("edge_attrs").Data.Len() != 2 || es.Module("edge_root").Data.Len() != 1 {
		t.Fatalf("edge store aux: %s", es)
	}
}

func TestContentStore(t *testing.T) {
	s, err := ContentStore(bib(t), "book")
	if err != nil {
		t.Fatal(err)
	}
	m := s.Module("content_book")
	if m.Data.Len() != 2 {
		t.Fatalf("content store: %s", s)
	}
	if !strings.Contains(m.Data.Tuples[0][1].Str, "<title>Data on the Web</title>") {
		t.Fatalf("content: %s", m.Data.Tuples[0][1].Str)
	}
}

func TestHybridInlining(t *testing.T) {
	doc := bib(t)
	s, err := Hybrid(doc, summary.Build(doc))
	if err != nil {
		t.Fatal(err)
	}
	bm := s.Module("hybrid_book")
	if bm == nil {
		t.Fatalf("no book module: %s", s)
	}
	// title occurs exactly once per book → inlined; author repeats → not.
	if !strings.Contains(bm.Pattern.String(), "title") {
		t.Fatalf("title not inlined: %s", bm.Pattern)
	}
	if strings.Contains(bm.Pattern.String(), "author") {
		t.Fatalf("author wrongly inlined: %s", bm.Pattern)
	}
	if s.Module("hybrid_author") == nil {
		t.Fatal("author module missing")
	}
}

func TestStoreFeedsRewriter(t *testing.T) {
	// The headline of the paper: the optimizer consumes ANY store through
	// its XAMs. Rewrite a query over the tag-partitioned store and compare
	// with direct evaluation.
	doc := bib(t)
	sum := summary.Build(doc)
	st, err := TagPartitioned(doc)
	if err != nil {
		t.Fatal(err)
	}
	rw := rewrite.NewRewriter(sum, st.Views(), rewrite.Options{})
	q := xam.MustParse(`// book{id s}(/ title{id s, val})`)
	plans, err := rw.Rewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plan over tag-partitioned store")
	}
	got, err := plans[0].Execute(st.Env())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := q.Eval(doc)
	if !got.EqualAsSet(want) {
		t.Fatalf("results differ:\n%s\nvs\n%s", got, want)
	}
}

func TestCompositeIndex(t *testing.T) {
	// The booksByYearTitle index of §2.1.2: key (year, title) → book.
	doc := bib(t)
	ix, err := BuildIndex(doc, "booksByYearTitle",
		`// b:book{id s}(/ y:@year{val R}, / t:title{val R})`)
	if err != nil {
		t.Fatal(err)
	}
	bs := ix.BindingSchema()
	if len(bs.Attrs) != 2 {
		t.Fatalf("binding schema: %s", bs)
	}
	bindings := algebra.NewRelation(bs)
	bindings.Add(algebra.Tuple{algebra.S("1999"), algebra.S("Data on the Web")})
	got, err := ix.Lookup(bindings)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("lookup: %s", got)
	}
	// Missing key → empty.
	miss := algebra.NewRelation(bs)
	miss.Add(algebra.Tuple{algebra.S("1999"), algebra.S("No Such Book")})
	got2, _ := ix.Lookup(miss)
	if got2.Len() != 0 {
		t.Fatalf("miss lookup: %s", got2)
	}
	if _, err := BuildIndex(doc, "bad", `// book{id}`); err == nil {
		t.Fatal("index without R must be rejected")
	}
}

func TestFullTextIndex(t *testing.T) {
	doc := bib(t)
	fti, err := BuildFullTextIndex(doc, "titleWords", `// title{id s, val}`)
	if err != nil {
		t.Fatal(err)
	}
	web := fti.Lookup("Web")
	if len(web) != 2 {
		t.Fatalf("'Web' postings: %v", web)
	}
	if len(fti.Lookup("syntactic")) != 1 {
		t.Fatal("case-insensitive lookup failed")
	}
	if len(fti.Lookup("zebra")) != 0 {
		t.Fatal("absent word must have no postings")
	}
	// Postings in document order.
	if web[0].Pre > web[1].Pre {
		t.Fatal("postings not in document order")
	}
	if fti.Words() == 0 {
		t.Fatal("no words indexed")
	}
}

func TestStoreEnvPrefixing(t *testing.T) {
	st, err := NodeStore(bib(t))
	if err != nil {
		t.Fatal(err)
	}
	env := st.Env()
	rel := env["main_elems"]
	if rel == nil || !strings.HasPrefix(rel.Schema.Attrs[0].Name, "main_elems_") {
		t.Fatalf("env schema: %v", rel.Schema)
	}
}
