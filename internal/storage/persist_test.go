package storage

import (
	"testing"

	"xamdb/internal/summary"
	"xamdb/internal/xmltree"
)

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	doc := xmltree.MustParse("bib.xml", bibXML)
	for _, build := range []func() (*Store, error){
		func() (*Store, error) { return TagPartitioned(doc) },
		func() (*Store, error) { return PathPartitioned(doc, summary.Build(doc)) },
		func() (*Store, error) { return Hybrid(doc, summary.Build(doc)) },
	} {
		st, err := build()
		if err != nil {
			t.Fatal(err)
		}
		b, err := StoreBytes(st)
		if err != nil {
			t.Fatal(err)
		}
		again, err := LoadStoreBytes(b)
		if err != nil {
			t.Fatal(err)
		}
		if again.Name != st.Name || len(again.Modules) != len(st.Modules) {
			t.Fatalf("shape: %s vs %s", again.Name, st.Name)
		}
		for i, m := range st.Modules {
			m2 := again.Modules[i]
			if m2.Name != m.Name {
				t.Fatalf("module %d name %q vs %q", i, m2.Name, m.Name)
			}
			if m2.Pattern.String() != m.Pattern.String() {
				t.Fatalf("module %s pattern %q vs %q", m.Name, m2.Pattern, m.Pattern)
			}
			if !m2.Data.Equal(m.Data) {
				t.Fatalf("module %s data differs:\n%s\nvs\n%s", m.Name, m2.Data, m.Data)
			}
		}
	}
}

func TestStoreLoadCorrupt(t *testing.T) {
	if _, err := LoadStoreBytes([]byte("not a store")); err == nil {
		t.Fatal("corrupt input must error")
	}
}

func TestPersistNestedRelations(t *testing.T) {
	doc := xmltree.MustParse("n.xml", `<r><a><b>1</b><b>2</b></a></r>`)
	m, err := buildModule(doc, "nested", `// a{id p}(/(nj) b{id s, val})`)
	if err != nil {
		t.Fatal(err)
	}
	st := &Store{Name: "n", Modules: []*Module{m}}
	b, err := StoreBytes(st)
	if err != nil {
		t.Fatal(err)
	}
	again, err := LoadStoreBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Modules[0].Data.Equal(m.Data) {
		t.Fatalf("nested round trip:\n%s\nvs\n%s", again.Modules[0].Data, m.Data)
	}
}
