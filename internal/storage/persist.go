package storage

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"xamdb/internal/algebra"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
)

// The thesis studies *persistent* XML databases: storage modules outlive the
// process. This file serializes stores to disk-ready bytes — relations via
// gob, XAMs via their textual syntax (always reparseable), documents via
// their XML serialization.

// persistedModule is the on-wire form of a Module.
type persistedModule struct {
	Name    string
	Pattern string // textual XAM
	Data    persistedRelation
}

// persistedRelation flattens a nested relation for gob: the schema as a
// rendering-independent structure and the tuples with explicit value kinds.
type persistedRelation struct {
	Schema persistedSchema
	Tuples []persistedTuple
}

type persistedSchema struct {
	Names    []string
	Nested   []persistedSchema // zero value for atomic attributes
	IsNested []bool
}

type persistedTuple struct {
	Values []persistedValue
}

type persistedValue struct {
	Kind  uint8
	Str   string
	Int   int64
	Float float64
	Pre   int32
	Post  int32
	Depth int32
	Dewey []int32
	Rel   *persistedRelation
}

func toPersistedSchema(s *algebra.Schema) persistedSchema {
	out := persistedSchema{}
	for _, a := range s.Attrs {
		out.Names = append(out.Names, a.Name)
		if a.Nested != nil {
			out.Nested = append(out.Nested, toPersistedSchema(a.Nested))
			out.IsNested = append(out.IsNested, true)
		} else {
			out.Nested = append(out.Nested, persistedSchema{})
			out.IsNested = append(out.IsNested, false)
		}
	}
	return out
}

func fromPersistedSchema(p persistedSchema) (*algebra.Schema, error) {
	if len(p.Names) != len(p.Nested) || len(p.Names) != len(p.IsNested) {
		return nil, fmt.Errorf("storage: corrupt schema: %d names, %d nests", len(p.Names), len(p.Nested))
	}
	out := &algebra.Schema{}
	for i, n := range p.Names {
		var nested *algebra.Schema
		if p.IsNested[i] {
			var err error
			nested, err = fromPersistedSchema(p.Nested[i])
			if err != nil {
				return nil, err
			}
		}
		out.Attrs = append(out.Attrs, algebra.Attr{Name: n, Nested: nested})
	}
	return out, nil
}

func toPersistedRelation(r *algebra.Relation) persistedRelation {
	out := persistedRelation{Schema: toPersistedSchema(r.Schema)}
	for _, t := range r.Tuples {
		pt := persistedTuple{}
		for _, v := range t {
			pt.Values = append(pt.Values, toPersistedValue(v))
		}
		out.Tuples = append(out.Tuples, pt)
	}
	return out
}

func toPersistedValue(v algebra.Value) persistedValue {
	pv := persistedValue{Kind: uint8(v.Kind), Str: v.Str, Int: v.Int, Float: v.Float,
		Pre: v.ID.Pre, Post: v.ID.Post, Depth: v.ID.Depth, Dewey: v.Dewey}
	if v.Kind == algebra.Rel && v.Rel != nil {
		pr := toPersistedRelation(v.Rel)
		pv.Rel = &pr
	}
	return pv
}

func fromPersistedRelation(p persistedRelation) (*algebra.Relation, error) {
	schema, err := fromPersistedSchema(p.Schema)
	if err != nil {
		return nil, err
	}
	out := algebra.NewRelation(schema)
	for _, pt := range p.Tuples {
		t := make(algebra.Tuple, 0, len(pt.Values))
		for _, pv := range pt.Values {
			v, err := fromPersistedValue(pv)
			if err != nil {
				return nil, err
			}
			t = append(t, v)
		}
		out.Add(t)
	}
	return out, nil
}

func fromPersistedValue(pv persistedValue) (algebra.Value, error) {
	v := algebra.Value{Kind: algebra.Kind(pv.Kind), Str: pv.Str, Int: pv.Int, Float: pv.Float,
		ID: xmltree.NodeID{Pre: pv.Pre, Post: pv.Post, Depth: pv.Depth}, Dewey: pv.Dewey}
	if v.Kind == algebra.Rel {
		if pv.Rel == nil {
			return v, fmt.Errorf("storage: corrupt value: nil nested relation")
		}
		rel, err := fromPersistedRelation(*pv.Rel)
		if err != nil {
			return v, err
		}
		v.Rel = rel
	}
	return v, nil
}

// SaveStore serializes the store.
func SaveStore(w io.Writer, s *Store) error {
	mods := make([]persistedModule, len(s.Modules))
	for i, m := range s.Modules {
		mods[i] = persistedModule{
			Name:    m.Name,
			Pattern: m.Pattern.String(),
			Data:    toPersistedRelation(m.Data),
		}
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(s.Name); err != nil {
		return fmt.Errorf("storage: save: %w", err)
	}
	if err := enc.Encode(mods); err != nil {
		return fmt.Errorf("storage: save: %w", err)
	}
	return nil
}

// LoadStore deserializes a store written by SaveStore.
func LoadStore(r io.Reader) (*Store, error) {
	dec := gob.NewDecoder(r)
	s := &Store{}
	if err := dec.Decode(&s.Name); err != nil {
		return nil, fmt.Errorf("storage: load: %w", err)
	}
	var mods []persistedModule
	if err := dec.Decode(&mods); err != nil {
		return nil, fmt.Errorf("storage: load: %w", err)
	}
	for _, pm := range mods {
		pat, err := xam.Parse(pm.Pattern)
		if err != nil {
			return nil, fmt.Errorf("storage: load module %s: %w", pm.Name, err)
		}
		data, err := fromPersistedRelation(pm.Data)
		if err != nil {
			return nil, fmt.Errorf("storage: load module %s: %w", pm.Name, err)
		}
		s.Modules = append(s.Modules, &Module{Name: pm.Name, Pattern: pat, Data: data})
	}
	return s, nil
}

// StoreBytes is SaveStore into a fresh buffer.
func StoreBytes(s *Store) ([]byte, error) {
	var buf bytes.Buffer
	if err := SaveStore(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadStoreBytes is LoadStore from a byte slice.
func LoadStoreBytes(b []byte) (*Store, error) {
	return LoadStore(bytes.NewReader(b))
}
