package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"xamdb/internal/algebra"
	"xamdb/internal/faultinject"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
)

// The thesis studies *persistent* XML databases: storage modules outlive the
// process. This file serializes stores to disk-ready bytes — relations via
// gob, XAMs via their textual syntax (always reparseable), documents via
// their XML serialization.
//
// On-disk framing (format version 1):
//
//	offset 0   8 bytes  magic "XAMSTORE"
//	offset 8   1 byte   format version (currently 1)
//	offset 9   8 bytes  big-endian payload length
//	offset 17  n bytes  payload: gob(store name), gob([]persistedModule)
//	offset 17+n 4 bytes big-endian CRC32-Castagnoli of the payload
//
// The checksum is verified before any byte of the payload is decoded, so
// silently-truncated or bit-flipped files are rejected up front instead of
// being half-deserialized. Files written before the framing existed (raw
// gob) are detected by the missing magic and rejected with a clear error.

const (
	storeMagic = "XAMSTORE"
	// storeVersionGob is format 1: gob-encoded persistedModule payloads.
	// Still read for backward compatibility; no longer written.
	storeVersionGob = 1
	// storeVersionColumnar is format 2: the binary columnar payload of
	// columnar.go. All new stores are written in this format.
	storeVersionColumnar = 2
	// storeHeaderSize is magic + version byte + payload length.
	storeHeaderSize = len(storeMagic) + 1 + 8
)

// Registered fault-injection sites (see internal/faultinject and the
// faultsite analyzer): exported so resilience tests arm exactly the names
// the production checks consult.
const (
	// SiteSave fails SaveStore before any byte is written.
	SiteSave = "storage.save"
	// SiteLoad fails LoadStore before any byte is read.
	SiteLoad = "storage.load"
)

var storeCRCTable = crc32.MakeTable(crc32.Castagnoli)

// persistedModule is the on-wire form of a Module.
type persistedModule struct {
	Name    string
	Pattern string // textual XAM
	Data    persistedRelation
}

// persistedRelation flattens a nested relation for gob: the schema as a
// rendering-independent structure and the tuples with explicit value kinds.
type persistedRelation struct {
	Schema persistedSchema
	Tuples []persistedTuple
}

type persistedSchema struct {
	Names    []string
	Nested   []persistedSchema // zero value for atomic attributes
	IsNested []bool
}

type persistedTuple struct {
	Values []persistedValue
}

type persistedValue struct {
	Kind  uint8
	Str   string
	Int   int64
	Float float64
	Pre   int32
	Post  int32
	Depth int32
	Dewey []int32
	Rel   *persistedRelation
}

func toPersistedSchema(s *algebra.Schema) persistedSchema {
	out := persistedSchema{}
	for _, a := range s.Attrs {
		out.Names = append(out.Names, a.Name)
		if a.Nested != nil {
			out.Nested = append(out.Nested, toPersistedSchema(a.Nested))
			out.IsNested = append(out.IsNested, true)
		} else {
			out.Nested = append(out.Nested, persistedSchema{})
			out.IsNested = append(out.IsNested, false)
		}
	}
	return out
}

func fromPersistedSchema(p persistedSchema) (*algebra.Schema, error) {
	if len(p.Names) != len(p.Nested) || len(p.Names) != len(p.IsNested) {
		return nil, fmt.Errorf("storage: corrupt schema: %d names, %d nests", len(p.Names), len(p.Nested))
	}
	out := &algebra.Schema{}
	for i, n := range p.Names {
		var nested *algebra.Schema
		if p.IsNested[i] {
			var err error
			nested, err = fromPersistedSchema(p.Nested[i])
			if err != nil {
				return nil, err
			}
		}
		out.Attrs = append(out.Attrs, algebra.Attr{Name: n, Nested: nested})
	}
	return out, nil
}

func toPersistedRelation(r *algebra.Relation) persistedRelation {
	out := persistedRelation{Schema: toPersistedSchema(r.Schema)}
	for _, t := range r.Tuples {
		pt := persistedTuple{}
		for _, v := range t {
			pt.Values = append(pt.Values, toPersistedValue(v))
		}
		out.Tuples = append(out.Tuples, pt)
	}
	return out
}

func toPersistedValue(v algebra.Value) persistedValue {
	pv := persistedValue{Kind: uint8(v.Kind), Str: v.Str, Int: v.Int, Float: v.Float,
		Pre: v.ID.Pre, Post: v.ID.Post, Depth: v.ID.Depth, Dewey: v.Dewey}
	if v.Kind == algebra.Rel && v.Rel != nil {
		pr := toPersistedRelation(v.Rel)
		pv.Rel = &pr
	}
	return pv
}

func fromPersistedRelation(p persistedRelation) (*algebra.Relation, error) {
	schema, err := fromPersistedSchema(p.Schema)
	if err != nil {
		return nil, err
	}
	out := algebra.NewRelation(schema)
	for _, pt := range p.Tuples {
		t := make(algebra.Tuple, 0, len(pt.Values))
		for _, pv := range pt.Values {
			v, err := fromPersistedValue(pv)
			if err != nil {
				return nil, err
			}
			t = append(t, v)
		}
		out.Add(t)
	}
	return out, nil
}

func fromPersistedValue(pv persistedValue) (algebra.Value, error) {
	if pv.Kind > uint8(algebra.Rel) {
		return algebra.Value{}, fmt.Errorf("storage: corrupt value: kind %d out of range [0,%d]",
			pv.Kind, uint8(algebra.Rel))
	}
	v := algebra.Value{Kind: algebra.Kind(pv.Kind), Str: pv.Str, Int: pv.Int, Float: pv.Float,
		ID: xmltree.NodeID{Pre: pv.Pre, Post: pv.Post, Depth: pv.Depth}, Dewey: pv.Dewey}
	if v.Kind == algebra.Rel {
		if pv.Rel == nil {
			return v, fmt.Errorf("storage: corrupt value: nil nested relation")
		}
		rel, err := fromPersistedRelation(*pv.Rel)
		if err != nil {
			return v, err
		}
		v.Rel = rel
	}
	return v, nil
}

// SaveStore serializes the store with the versioned, checksummed framing,
// using the version-2 binary columnar payload (columnar.go).
func SaveStore(w io.Writer, s *Store) error {
	if err := faultinject.Check(SiteSave); err != nil {
		return fmt.Errorf("storage: save: %w", err)
	}
	payload, err := encodeStoreV2(s)
	if err != nil {
		return err
	}
	return writeFramed(w, storeVersionColumnar, payload)
}

// saveStoreV1 writes the legacy version-1 gob payload. No production caller
// remains; it exists so the loader's backward-compatibility path — v1 files
// must keep loading into relations equal to their v2 counterparts — stays
// testable without fixture files.
func saveStoreV1(w io.Writer, s *Store) error {
	if err := faultinject.Check(SiteSave); err != nil {
		return fmt.Errorf("storage: save: %w", err)
	}
	mods := make([]persistedModule, len(s.Modules))
	for i, m := range s.Modules {
		mods[i] = persistedModule{
			Name:    m.Name,
			Pattern: m.Pattern.String(),
			Data:    toPersistedRelation(m.Data),
		}
	}
	var payload bytes.Buffer
	enc := gob.NewEncoder(&payload)
	if err := enc.Encode(s.Name); err != nil {
		return fmt.Errorf("storage: save: %w", err)
	}
	if err := enc.Encode(mods); err != nil {
		return fmt.Errorf("storage: save: %w", err)
	}
	return writeFramed(w, storeVersionGob, payload.Bytes())
}

// writeFramed writes the XAMSTORE header, payload and CRC32-Castagnoli
// trailer shared by every format version.
func writeFramed(w io.Writer, version byte, payload []byte) error {
	header := make([]byte, storeHeaderSize)
	copy(header, storeMagic)
	header[len(storeMagic)] = version
	binary.BigEndian.PutUint64(header[len(storeMagic)+1:], uint64(len(payload)))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("storage: save header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("storage: save payload: %w", err)
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(payload, storeCRCTable))
	if _, err := w.Write(crc[:]); err != nil {
		return fmt.Errorf("storage: save checksum: %w", err)
	}
	return nil
}

// offsetReader counts consumed bytes so decode errors can say where in the
// file they happened.
type offsetReader struct {
	r   io.Reader
	off int64
}

func (o *offsetReader) Read(p []byte) (int, error) {
	n, err := o.r.Read(p)
	o.off += int64(n)
	return n, err
}

// LoadStore deserializes a store written by SaveStore, verifying the
// framing and checksum before decoding a single payload byte. Errors carry
// the byte offset at which the file stopped making sense.
func LoadStore(r io.Reader) (*Store, error) {
	if err := faultinject.Check(SiteLoad); err != nil {
		return nil, fmt.Errorf("storage: load: %w", err)
	}
	header := make([]byte, storeHeaderSize)
	if n, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("storage: load: truncated header at byte offset %d (want %d bytes): %w",
			n, storeHeaderSize, err)
	}
	if string(header[:len(storeMagic)]) != storeMagic {
		return nil, fmt.Errorf("storage: load: bad magic %q at byte offset 0: not a xamdb store "+
			"(or a legacy pre-versioned store; re-save it with this build)", header[:len(storeMagic)])
	}
	version := header[len(storeMagic)]
	if version != storeVersionGob && version != storeVersionColumnar {
		return nil, fmt.Errorf("storage: load: unsupported store format version %d at byte offset %d "+
			"(this build reads versions %d and %d)", version, len(storeMagic), storeVersionGob, storeVersionColumnar)
	}
	length := binary.BigEndian.Uint64(header[len(storeMagic)+1:])
	// CopyN grows the buffer incrementally, so a corrupted length field
	// cannot force a giant allocation before the short read is noticed.
	var payload bytes.Buffer
	if _, err := io.CopyN(&payload, r, int64(length)); err != nil {
		return nil, fmt.Errorf("storage: load: truncated payload at byte offset %d (want %d payload bytes): %w",
			storeHeaderSize+payload.Len(), length, err)
	}
	var crcBytes [4]byte
	if _, err := io.ReadFull(r, crcBytes[:]); err != nil {
		return nil, fmt.Errorf("storage: load: truncated checksum at byte offset %d: %w",
			storeHeaderSize+payload.Len(), err)
	}
	stored := binary.BigEndian.Uint32(crcBytes[:])
	if computed := crc32.Checksum(payload.Bytes(), storeCRCTable); computed != stored {
		return nil, fmt.Errorf("storage: load: checksum mismatch (stored %08x, computed %08x): store is corrupt",
			stored, computed)
	}
	if version == storeVersionColumnar {
		return decodeStoreV2(payload.Bytes())
	}
	or := &offsetReader{r: &payload}
	dec := gob.NewDecoder(or)
	s := &Store{}
	if err := dec.Decode(&s.Name); err != nil {
		return nil, fmt.Errorf("storage: load: decode error at byte offset %d: %w",
			int64(storeHeaderSize)+or.off, err)
	}
	var mods []persistedModule
	if err := dec.Decode(&mods); err != nil {
		return nil, fmt.Errorf("storage: load: decode error at byte offset %d: %w",
			int64(storeHeaderSize)+or.off, err)
	}
	for _, pm := range mods {
		pat, err := xam.Parse(pm.Pattern)
		if err != nil {
			return nil, fmt.Errorf("storage: load module %s: %w", pm.Name, err)
		}
		data, err := fromPersistedRelation(pm.Data)
		if err != nil {
			return nil, fmt.Errorf("storage: load module %s: %w", pm.Name, err)
		}
		s.Modules = append(s.Modules, &Module{Name: pm.Name, Pattern: pat, Data: data})
	}
	return s, nil
}

// SaveStoreFile writes the store to path atomically: the bytes go to a
// temp file in the same directory, are fsynced, and only then renamed over
// path — a crash mid-save never leaves a half-written store behind.
func SaveStoreFile(path string, s *Store) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("storage: save %s: %w", path, err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := SaveStore(tmp, s); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("storage: save %s: sync: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("storage: save %s: close: %w", path, err)
	}
	name := tmp.Name()
	tmp = nil // committed: the deferred cleanup must not remove it
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("storage: save %s: rename: %w", path, err)
	}
	return nil
}

// LoadStoreFile reads a store written by SaveStoreFile (or any SaveStore
// output on disk).
func LoadStoreFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: load %s: %w", path, err)
	}
	defer f.Close()
	return LoadStore(f)
}

// StoreBytes is SaveStore into a fresh buffer.
func StoreBytes(s *Store) ([]byte, error) {
	var buf bytes.Buffer
	if err := SaveStore(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadStoreBytes is LoadStore from a byte slice.
func LoadStoreBytes(b []byte) (*Store, error) {
	return LoadStore(bytes.NewReader(b))
}
