package xam

import (
	"fmt"
	"strings"

	"xamdb/internal/value"
)

// Parse parses the textual XAM syntax. Examples:
//
//	// book{id s, tag}(/ year{val}, //(nj) author{id, cont})
//	ordered / bib(/ book{id}(/(o) title{val}))
//	// item{id R}(/ @id{val R})
//
// Grammar:
//
//	pattern := 'ordered'? edge (',' edge)*
//	edge    := ('//' | '/') ('(' sem ')')? node          sem ∈ {j,o,s,nj,no}
//	node    := (name ':')? label annots? ('(' edge (',' edge)* ')')?
//	label   := NCName | '*' | '@'NCName | '@*'
//	annots  := '{' annot (',' annot)* '}'
//	annot   := 'id' ('i'|'o'|'s'|'p')? 'R'? | 'tag' 'R'? | 'val' 'R'?
//	         | 'cont' | 'ret' | 'val' cmp literal
//	cmp     := '=' | '!=' | '<' | '<=' | '>' | '>='
func Parse(src string) (*Pattern, error) {
	p := &patParser{src: src}
	pat, err := p.parsePattern()
	if err != nil {
		return nil, fmt.Errorf("xam: parse %q: %w", src, err)
	}
	pat.AssignNames()
	wireParents(pat)
	return pat, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(src string) *Pattern {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func wireParents(p *Pattern) {
	var visit func(n *Node)
	visit = func(n *Node) {
		for _, e := range n.Edges {
			e.Child.Parent = n
			visit(e.Child)
		}
	}
	for _, e := range p.Top {
		e.Child.Parent = nil
		visit(e.Child)
	}
}

type patParser struct {
	src string
	pos int
}

func (p *patParser) errorf(format string, args ...any) error {
	return fmt.Errorf("offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *patParser) ws() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *patParser) eof() bool { p.ws(); return p.pos >= len(p.src) }

func (p *patParser) has(s string) bool {
	p.ws()
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *patParser) eat(s string) bool {
	if p.has(s) {
		p.pos += len(s)
		return true
	}
	return false
}

func identByte(b byte, first bool) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_':
		return true
	case !first && (b >= '0' && b <= '9' || b == '-' || b == '.'):
		return true
	}
	return false
}

func (p *patParser) ident() string {
	p.ws()
	start := p.pos
	if p.pos >= len(p.src) || !identByte(p.src[p.pos], true) {
		return ""
	}
	p.pos++
	for p.pos < len(p.src) && identByte(p.src[p.pos], false) {
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *patParser) parsePattern() (*Pattern, error) {
	pat := &Pattern{}
	p.ws()
	save := p.pos
	if id := p.ident(); id == "ordered" {
		pat.Ordered = true
	} else {
		p.pos = save
	}
	for {
		e, err := p.parseEdge()
		if err != nil {
			return nil, err
		}
		pat.Top = append(pat.Top, e)
		if !p.eat(",") {
			break
		}
	}
	if !p.eof() {
		return nil, p.errorf("trailing input")
	}
	return pat, nil
}

func (p *patParser) parseEdge() (*Edge, error) {
	p.ws()
	e := &Edge{}
	switch {
	case p.eat("//"):
		e.Axis = Descendant
	case p.eat("/"):
		e.Axis = Child
	default:
		return nil, p.errorf("expected '/' or '//'")
	}
	if p.eat("(") {
		sem := p.ident()
		switch sem {
		case "j":
			e.Sem = SemJoin
		case "o":
			e.Sem = SemOuter
		case "s":
			e.Sem = SemSemi
		case "nj":
			e.Sem = SemNest
		case "no":
			e.Sem = SemNestOuter
		default:
			return nil, p.errorf("unknown edge semantics %q", sem)
		}
		if !p.eat(")") {
			return nil, p.errorf("expected ')' after edge semantics")
		}
	}
	n, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	e.Child = n
	return e, nil
}

func (p *patParser) parseNode() (*Node, error) {
	p.ws()
	n := &Node{}
	// Optional "name:" prefix.
	save := p.pos
	if id := p.ident(); id != "" && p.eat(":") {
		n.Name = id
	} else {
		p.pos = save
	}
	// Label.
	p.ws()
	switch {
	case p.eat("@*"):
		n.Label = "@*"
	case p.eat("@"):
		id := p.ident()
		if id == "" {
			return nil, p.errorf("expected attribute name after '@'")
		}
		n.Label = "@" + id
	case p.eat("*"):
		n.Label = "*"
	default:
		id := p.ident()
		if id == "" {
			return nil, p.errorf("expected node label")
		}
		n.Label = id
	}
	if p.eat("{") {
		for {
			if err := p.parseAnnot(n); err != nil {
				return nil, err
			}
			if p.eat(",") {
				continue
			}
			if p.eat("}") {
				break
			}
			return nil, p.errorf("expected ',' or '}' in annotations")
		}
	}
	if p.eat("(") {
		for {
			e, err := p.parseEdge()
			if err != nil {
				return nil, err
			}
			e.Child.Parent = n
			n.Edges = append(n.Edges, e)
			if p.eat(",") {
				continue
			}
			if p.eat(")") {
				break
			}
			return nil, p.errorf("expected ',' or ')' in edge list")
		}
	}
	return n, nil
}

func (p *patParser) parseAnnot(n *Node) error {
	kw := p.ident()
	switch kw {
	case "id":
		n.IDSpec = SimpleID
		p.ws()
		save := p.pos
		if k := p.ident(); k != "" {
			switch k {
			case "i":
				n.IDSpec = SimpleID
			case "o":
				n.IDSpec = OrderID
			case "s":
				n.IDSpec = StructID
			case "p":
				n.IDSpec = ParentID
			case "R":
				n.IDRequired = true
				return nil
			default:
				p.pos = save
				return nil
			}
			if q := p.ident(); q == "R" {
				n.IDRequired = true
			} else if q != "" {
				return p.errorf("unexpected token %q in id spec", q)
			}
		}
		return nil
	case "tag":
		if p.eat("=") {
			lit, err := p.literal()
			if err != nil {
				return err
			}
			n.Label = lit
			return nil
		}
		n.StoreTag = true
		if r := p.identIfR(); r {
			n.TagRequired = true
		}
		return nil
	case "val":
		// Either a stored-value spec or a predicate.
		for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
			if p.eat(op) {
				lit, err := p.literal()
				if err != nil {
					return err
				}
				f, err := value.FromComparison(op, value.Str(lit))
				if err != nil {
					return err
				}
				if n.HasValuePred {
					n.ValuePred = n.ValuePred.And(f)
				} else {
					n.ValuePred = f
					n.HasValuePred = true
				}
				if strings.ContainsAny(lit, ", \t(){}") {
					lit = `"` + lit + `"`
				}
				n.PredSrc = append(n.PredSrc, "val"+op+lit)
				return nil
			}
		}
		n.StoreVal = true
		if p.identIfR() {
			n.ValRequired = true
		}
		return nil
	case "cont":
		n.StoreCont = true
		return nil
	case "ret":
		n.Ret = true
		return nil
	}
	return p.errorf("unknown annotation %q", kw)
}

func (p *patParser) identIfR() bool {
	save := p.pos
	if p.ident() == "R" {
		return true
	}
	p.pos = save
	return false
}

func (p *patParser) literal() (string, error) {
	p.ws()
	if p.pos < len(p.src) && p.src[p.pos] == '"' {
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '"' {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return "", p.errorf("unterminated string literal")
		}
		s := p.src[start:p.pos]
		p.pos++
		return s, nil
	}
	// Bare literal: up to a delimiter.
	start := p.pos
	for p.pos < len(p.src) && !strings.ContainsRune(",}){( \t\n\r", rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errorf("expected literal")
	}
	return p.src[start:p.pos], nil
}
