package xam

import (
	"fmt"

	"xamdb/internal/algebra"
	"xamdb/internal/value"
	"xamdb/internal/xmltree"
)

// Schema computes the nested relational schema of the XAM's semantics
// (§2.2.2): each node contributes ID/Tag/Val/Cont attributes named
// "<node>.<attr>"; j and o edges splice the child schema flat, s edges
// contribute nothing, nj and no edges contribute a collection attribute
// named after the child node.
func (p *Pattern) Schema() *algebra.Schema {
	out := &algebra.Schema{}
	for _, e := range p.Top {
		appendEdgeSchema(out, e)
	}
	return out
}

func appendEdgeSchema(s *algebra.Schema, e *Edge) {
	n := e.Child
	switch e.Sem {
	case SemSemi:
		return
	case SemNest, SemNestOuter:
		inner := &algebra.Schema{}
		appendNodeSchema(inner, n)
		s.Attrs = append(s.Attrs, algebra.Attr{Name: n.Name, Nested: inner})
	default:
		appendNodeSchema(s, n)
	}
}

func appendNodeSchema(s *algebra.Schema, n *Node) {
	if n.IDSpec != NoID {
		s.Attrs = append(s.Attrs, algebra.Attr{Name: n.Name + ".ID"})
	}
	if n.StoreTag {
		s.Attrs = append(s.Attrs, algebra.Attr{Name: n.Name + ".Tag"})
	}
	if n.StoreVal {
		s.Attrs = append(s.Attrs, algebra.Attr{Name: n.Name + ".Val"})
	}
	if n.StoreCont {
		s.Attrs = append(s.Attrs, algebra.Attr{Name: n.Name + ".Cont"})
	}
	for _, e := range n.Edges {
		appendEdgeSchema(s, e)
	}
}

// Eval computes the XAM's semantics over a document: the set (list, if
// ordered) of nested tuples of Definitions 2.2.2–2.2.5. Patterns with R
// markers must use EvalWithBindings.
func (p *Pattern) Eval(doc *xmltree.Document) (*algebra.Relation, error) {
	if p.HasRequired() {
		return nil, fmt.Errorf("xam: pattern has required attributes; use EvalWithBindings")
	}
	out := algebra.NewRelation(p.Schema())
	// ⊤ behaves as a node whose edges are the top edges; its single match is
	// the virtual document node.
	tuples, err := evalEdges(p.Top, doc, nil)
	if err != nil {
		return nil, err
	}
	out.Add(tuples...)
	// Π_χ eliminates duplicates (Definition 2.2.3).
	return algebra.Distinct(out), nil
}

// matchLabel tests a document node against a XAM node's tag predicate.
func matchNode(pn *Node, dn *xmltree.Node) bool {
	switch pn.Label {
	case "*":
		if dn.Kind != xmltree.Element {
			return false
		}
	case "@*":
		if dn.Kind != xmltree.Attribute {
			return false
		}
	default:
		if dn.Label != pn.Label {
			return false
		}
	}
	if pn.HasValuePred && !pn.ValuePred.Holds(value.Str(dn.Value())) {
		return false
	}
	return true
}

// candidates returns the document nodes reachable from ctx along the edge.
// A nil ctx denotes the virtual document node ⊤.
func candidates(e *Edge, doc *xmltree.Document, ctx *xmltree.Node) []*xmltree.Node {
	attr := e.Child.IsAttribute()
	var out []*xmltree.Node
	consider := func(n *xmltree.Node) {
		if matchNode(e.Child, n) {
			out = append(out, n)
		}
	}
	if ctx == nil {
		if doc.Root == nil {
			return nil
		}
		if e.Axis == Child {
			if !attr {
				consider(doc.Root)
			}
			return out
		}
		doc.Walk(func(n *xmltree.Node) bool {
			consider(n)
			return true
		})
		return out
	}
	if e.Axis == Child {
		for _, c := range ctx.Children {
			_ = attr
			consider(c)
		}
		return out
	}
	for _, d := range ctx.Descendants() {
		consider(d)
	}
	return out
}

// evalEdges computes the cross-combination of all edges' contributions for
// one context node.
func evalEdges(edges []*Edge, doc *xmltree.Document, ctx *xmltree.Node) ([]algebra.Tuple, error) {
	acc := []algebra.Tuple{{}}
	for _, e := range edges {
		contrib, err := evalEdge(e, doc, ctx)
		if err != nil {
			return nil, err
		}
		if contrib == nil {
			// Edge eliminates the context (no matches on a mandatory edge).
			return nil, nil
		}
		var next []algebra.Tuple
		for _, a := range acc {
			for _, c := range contrib {
				next = append(next, a.Concat(c))
			}
		}
		acc = next
	}
	return acc, nil
}

// evalEdge computes one edge's tuple fragments for a context node. It
// returns nil (not an empty slice) when the edge's semantics eliminate the
// context, and a slice of fragments otherwise. Semijoin edges yield a single
// empty fragment when satisfied.
func evalEdge(e *Edge, doc *xmltree.Document, ctx *xmltree.Node) ([]algebra.Tuple, error) {
	cands := candidates(e, doc, ctx)
	var matches []algebra.Tuple
	for _, dn := range cands {
		sub, err := evalEdges(e.Child.Edges, doc, dn)
		if err != nil {
			return nil, err
		}
		if sub == nil {
			continue
		}
		base := nodeTuple(e.Child, dn)
		for _, s := range sub {
			matches = append(matches, base.Concat(s))
		}
	}
	switch e.Sem {
	case SemJoin:
		if len(matches) == 0 {
			return nil, nil
		}
		return matches, nil
	case SemSemi:
		if len(matches) == 0 {
			return nil, nil
		}
		return []algebra.Tuple{{}}, nil
	case SemOuter:
		if len(matches) == 0 {
			width := len(subSchemaOf(e.Child).Attrs)
			pad := make(algebra.Tuple, width)
			for i := range pad {
				pad[i] = algebra.NullValue
			}
			return []algebra.Tuple{pad}, nil
		}
		return matches, nil
	case SemNest, SemNestOuter:
		if len(matches) == 0 && e.Sem == SemNest {
			return nil, nil
		}
		inner := algebra.NewRelation(subSchemaOf(e.Child))
		inner.Add(matches...)
		return []algebra.Tuple{{algebra.RelV(inner)}}, nil
	}
	return nil, fmt.Errorf("xam: unknown edge semantics %v", e.Sem)
}

// subSchemaOf computes the schema fragment contributed by a node subtree.
func subSchemaOf(n *Node) *algebra.Schema {
	s := &algebra.Schema{}
	appendNodeSchema(s, n)
	return s
}

// nodeTuple extracts the stored attributes of a document node.
func nodeTuple(pn *Node, dn *xmltree.Node) algebra.Tuple {
	var t algebra.Tuple
	if pn.IDSpec != NoID {
		switch pn.IDSpec {
		case ParentID:
			t = append(t, algebra.DV(dn.Dewey))
		default:
			t = append(t, algebra.IDV(dn.ID))
		}
	}
	if pn.StoreTag {
		label := dn.Label
		if dn.Kind == xmltree.Attribute {
			label = dn.Label[1:]
		}
		t = append(t, algebra.S(label))
	}
	if pn.StoreVal {
		t = append(t, algebra.S(dn.Value()))
	}
	if pn.StoreCont {
		t = append(t, algebra.S(dn.Content()))
	}
	return t
}
