// Package xam implements XML Access Modules (§2.2): the tree pattern language
// that uniformly describes XML storage structures, indices and materialized
// views. A XAM is an annotated tree (NS, ES, o): nodes carry identifier, tag,
// value and content specifications (each possibly marked R, required), edges
// are parent-child or ancestor-descendant with join / outerjoin / semijoin /
// nest-join / nest-outerjoin semantics, and the o flag declares document
// order.
//
// The package provides the textual syntax, the algebraic semantics over a
// document (Definitions 2.2.2–2.2.5) producing nested relations, and the
// restricted semantics under binding lists for R-marked XAMs (Definition
// 2.2.6, Algorithm 1's nested tuple intersection).
package xam

import (
	"fmt"
	"strings"

	"xamdb/internal/value"
)

// IDKind describes the identifier specification of a XAM node (§2.2.1).
type IDKind uint8

const (
	// NoID means the node's identifier is not stored.
	NoID IDKind = iota
	// SimpleID ("i") only guarantees unique identification.
	SimpleID
	// OrderID ("o") additionally reflects document order.
	OrderID
	// StructID ("s") allows deciding parent/ancestor by comparing IDs.
	StructID
	// ParentID ("p") designates navigational structural identifiers (Dewey,
	// ORDPATH) from which ancestors' IDs are directly derivable.
	ParentID
)

func (k IDKind) String() string {
	switch k {
	case NoID:
		return ""
	case SimpleID:
		return "i"
	case OrderID:
		return "o"
	case StructID:
		return "s"
	case ParentID:
		return "p"
	}
	return "?"
}

// Structural reports whether IDs of this kind support structural comparison.
func (k IDKind) Structural() bool { return k == StructID || k == ParentID }

// Axis is the edge axis: parent-child or ancestor-descendant.
type Axis uint8

const (
	// Child is the '/' axis.
	Child Axis = iota
	// Descendant is the '//' axis.
	Descendant
)

func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// EdgeSem is the join semantics of a XAM edge (§2.2.1: j, o, s, nj, no).
type EdgeSem uint8

const (
	// SemJoin is the plain structural join (j).
	SemJoin EdgeSem = iota
	// SemOuter is the left outerjoin (o) — the child subtree is optional,
	// missing matches yield nulls.
	SemOuter
	// SemSemi is the left semijoin (s) — the child subtree filters but
	// contributes no attributes.
	SemSemi
	// SemNest is the nest join (nj) — matches are grouped into a nested
	// collection.
	SemNest
	// SemNestOuter is the nest outerjoin (no) — like nj but parents without
	// matches keep an empty collection.
	SemNestOuter
)

func (s EdgeSem) String() string {
	switch s {
	case SemJoin:
		return "j"
	case SemOuter:
		return "o"
	case SemSemi:
		return "s"
	case SemNest:
		return "nj"
	case SemNestOuter:
		return "no"
	}
	return "?"
}

// Optional reports whether the edge is optional in the §4.1 sense (matches
// may be absent without suppressing the parent).
func (s EdgeSem) Optional() bool { return s == SemOuter || s == SemNestOuter }

// Nested reports whether the edge produces a nested collection.
func (s EdgeSem) Nested() bool { return s == SemNest || s == SemNestOuter }

// Edge connects a parent XAM node to a child node.
type Edge struct {
	Axis  Axis
	Sem   EdgeSem
	Child *Node
}

// Node is one XAM node with its specifications.
type Node struct {
	// Name is the node identifier used in attribute names (e1, e2, …);
	// assigned automatically when absent.
	Name string

	// Label is the tag predicate: a tag constant for [Tag=c] nodes, "*" for
	// unconstrained element nodes, "@a" for attribute nodes, "@*" for
	// unconstrained attribute nodes.
	Label string

	// IDSpec / StoreTag / StoreVal / StoreCont say which attributes the XAM
	// stores for this node.
	IDSpec    IDKind
	StoreTag  bool
	StoreVal  bool
	StoreCont bool

	// Required flags (the R markers): the attribute's value must be supplied
	// through bindings to access the XAM's data.
	IDRequired  bool
	TagRequired bool
	ValRequired bool

	// ValuePred is the φ(v) decoration ([Val=c] and its generalizations,
	// §4.1). HasValuePred distinguishes "no predicate" from T. PredSrc
	// keeps the parsed annotation texts so String() stays parseable.
	ValuePred    value.Formula
	HasValuePred bool
	PredSrc      []string

	// Ret marks an explicit return node (containment chapters use boxed
	// return nodes even on patterns without stored attributes).
	Ret bool

	Edges  []*Edge
	Parent *Node
}

// Pattern is a full XAM: the implicit ⊤ root with its top edges, plus the
// order flag.
type Pattern struct {
	// Top holds the edges leaving the ⊤ node.
	Top []*Edge
	// Ordered is the o flag: data is stored in document order.
	Ordered bool
}

// IsAttribute reports whether the node denotes an XML attribute.
func (n *Node) IsAttribute() bool { return strings.HasPrefix(n.Label, "@") }

// Wildcard reports whether the node has no tag constraint.
func (n *Node) Wildcard() bool { return n.Label == "*" || n.Label == "@*" }

// StoresAnything reports whether the node contributes attributes to the XAM
// content.
func (n *Node) StoresAnything() bool {
	return n.IDSpec != NoID || n.StoreTag || n.StoreVal || n.StoreCont
}

// IsReturn reports whether the node is a return node: marked explicitly or
// storing at least one attribute.
func (n *Node) IsReturn() bool { return n.Ret || n.StoresAnything() }

// Nodes returns every node of the pattern in a pre-order walk of the tree.
func (p *Pattern) Nodes() []*Node {
	var out []*Node
	var visit func(n *Node)
	visit = func(n *Node) {
		out = append(out, n)
		for _, e := range n.Edges {
			visit(e.Child)
		}
	}
	for _, e := range p.Top {
		visit(e.Child)
	}
	return out
}

// ReturnNodes returns the pattern's return nodes in pre-order.
func (p *Pattern) ReturnNodes() []*Node {
	var out []*Node
	for _, n := range p.Nodes() {
		if n.IsReturn() {
			out = append(out, n)
		}
	}
	return out
}

// Size returns the number of pattern nodes (excluding ⊤).
func (p *Pattern) Size() int { return len(p.Nodes()) }

// Conjunctive reports whether the pattern lies in the conjunctive subset of
// §4.1: only j edges.
func (p *Pattern) Conjunctive() bool {
	for _, n := range p.Nodes() {
		for _, e := range n.Edges {
			if e.Sem != SemJoin {
				return false
			}
		}
	}
	for _, e := range p.Top {
		if e.Sem != SemJoin {
			return false
		}
	}
	return true
}

// HasRequired reports whether any attribute is R-marked (the XAM models an
// index and needs bindings).
func (p *Pattern) HasRequired() bool {
	for _, n := range p.Nodes() {
		if n.IDRequired || n.TagRequired || n.ValRequired {
			return true
		}
	}
	return false
}

// StripRequired returns a copy of the pattern with all R markers erased
// (the χ⁰ of Definition 2.2.6).
func (p *Pattern) StripRequired() *Pattern {
	q := p.Clone()
	for _, n := range q.Nodes() {
		n.IDRequired, n.TagRequired, n.ValRequired = false, false, false
	}
	return q
}

// Clone returns a deep copy of the pattern.
func (p *Pattern) Clone() *Pattern {
	out := &Pattern{Ordered: p.Ordered}
	var cloneNode func(n *Node, parent *Node) *Node
	cloneNode = func(n *Node, parent *Node) *Node {
		c := *n
		c.Parent = parent
		c.Edges = nil
		for _, e := range n.Edges {
			ce := &Edge{Axis: e.Axis, Sem: e.Sem}
			ce.Child = cloneNode(e.Child, &c)
			c.Edges = append(c.Edges, ce)
		}
		return &c
	}
	for _, e := range p.Top {
		ce := &Edge{Axis: e.Axis, Sem: e.Sem}
		ce.Child = cloneNode(e.Child, nil)
		out.Top = append(out.Top, ce)
	}
	return out
}

// AssignNames gives every unnamed node a fresh name e1, e2, … in pre-order.
func (p *Pattern) AssignNames() {
	used := map[string]bool{}
	for _, n := range p.Nodes() {
		if n.Name != "" {
			used[n.Name] = true
		}
	}
	i := 0
	for _, n := range p.Nodes() {
		if n.Name != "" {
			continue
		}
		for {
			i++
			cand := fmt.Sprintf("e%d", i)
			if !used[cand] {
				n.Name = cand
				used[cand] = true
				break
			}
		}
	}
}

// NodeByName returns the node with the given name, or nil.
func (p *Pattern) NodeByName(name string) *Node {
	for _, n := range p.Nodes() {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// CacheKey renders the pattern as a canonical cache key. Unlike String —
// which elides auto-assigned node names ("e1", "e2", …) for readability —
// the key includes every node name, so two patterns share a key only if a
// plan compiled for one also has the right output schema for the other
// (attribute names derive from node names). Value predicates print their
// normalized formula rather than the source annotation text, so
// syntactically different spellings of the same predicate share a key.
func (p *Pattern) CacheKey() string {
	var sb strings.Builder
	if p.Ordered {
		sb.WriteString("o|")
	}
	for i, e := range p.Top {
		if i > 0 {
			sb.WriteByte(',')
		}
		writeKeyEdge(&sb, e)
	}
	return sb.String()
}

func writeKeyEdge(sb *strings.Builder, e *Edge) {
	sb.WriteString(e.Axis.String())
	if e.Sem != SemJoin {
		fmt.Fprintf(sb, "(%s)", e.Sem)
	}
	writeKeyNode(sb, e.Child)
}

func writeKeyNode(sb *strings.Builder, n *Node) {
	sb.WriteString(n.Name)
	sb.WriteByte(':')
	sb.WriteString(n.Label)
	sb.WriteByte('{')
	if n.IDSpec != NoID {
		sb.WriteString("id ")
		sb.WriteString(n.IDSpec.String())
		if n.IDRequired {
			sb.WriteByte('R')
		}
		sb.WriteByte(';')
	}
	if n.StoreTag {
		sb.WriteString("tag")
		if n.TagRequired {
			sb.WriteByte('R')
		}
		sb.WriteByte(';')
	}
	if n.StoreVal {
		sb.WriteString("val")
		if n.ValRequired {
			sb.WriteByte('R')
		}
		sb.WriteByte(';')
	}
	if n.HasValuePred {
		sb.WriteString("φ=")
		sb.WriteString(n.ValuePred.String())
		sb.WriteByte(';')
	}
	if n.StoreCont {
		sb.WriteString("cont;")
	}
	if n.Ret {
		sb.WriteString("ret;")
	}
	sb.WriteByte('}')
	if len(n.Edges) > 0 {
		sb.WriteByte('(')
		for i, e := range n.Edges {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeKeyEdge(sb, e)
		}
		sb.WriteByte(')')
	}
}

// String renders the pattern in the textual XAM syntax accepted by Parse.
func (p *Pattern) String() string {
	var sb strings.Builder
	if p.Ordered {
		sb.WriteString("ordered ")
	}
	for i, e := range p.Top {
		if i > 0 {
			sb.WriteString(", ")
		}
		writeEdge(&sb, e)
	}
	return sb.String()
}

func writeEdge(sb *strings.Builder, e *Edge) {
	sb.WriteString(e.Axis.String())
	if e.Sem != SemJoin {
		fmt.Fprintf(sb, "(%s)", e.Sem)
	}
	writeNode(sb, e.Child)
}

func writeNode(sb *strings.Builder, n *Node) {
	if n.Name != "" && !strings.HasPrefix(n.Name, "e") {
		sb.WriteString(n.Name)
		sb.WriteByte(':')
	}
	sb.WriteString(n.Label)
	var annots []string
	if n.IDSpec != NoID {
		a := "id"
		if n.IDSpec != SimpleID {
			a += " " + n.IDSpec.String()
		}
		if n.IDRequired {
			a += " R"
		}
		annots = append(annots, a)
	}
	if n.StoreTag {
		a := "tag"
		if n.TagRequired {
			a += " R"
		}
		annots = append(annots, a)
	}
	if n.StoreVal {
		a := "val"
		if n.ValRequired {
			a += " R"
		}
		annots = append(annots, a)
	}
	if n.HasValuePred {
		if len(n.PredSrc) > 0 {
			annots = append(annots, n.PredSrc...)
		} else {
			annots = append(annots, "val="+n.ValuePred.String())
		}
	}
	if n.StoreCont {
		annots = append(annots, "cont")
	}
	if n.Ret && !n.StoresAnything() {
		annots = append(annots, "ret")
	}
	if len(annots) > 0 {
		sb.WriteByte('{')
		sb.WriteString(strings.Join(annots, ", "))
		sb.WriteByte('}')
	}
	if len(n.Edges) > 0 {
		sb.WriteByte('(')
		for i, e := range n.Edges {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeEdge(sb, e)
		}
		sb.WriteByte(')')
	}
}
