package xam

import (
	"strings"
	"testing"

	"xamdb/internal/algebra"
	"xamdb/internal/xmltree"
)

// The Figure 2.5 sample document.
const libraryXML = `<library>
  <book year="1999">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Suciu</author>
  </book>
  <book>
    <title>The Syntactic Web</title>
    <author>Tom Lerners-Bee</author>
  </book>
  <phdthesis year="2004">
    <title>The Web: next generation</title>
    <author>Jim Smith</author>
  </phdthesis>
</library>`

func libDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	return xmltree.MustParse("library.xml", libraryXML)
}

func TestParsePrintRoundTrip(t *testing.T) {
	cases := []string{
		`// book{id s, tag}(/ @year{val}, //(nj) author{id, cont})`,
		`ordered / library(/ book{id}(/(o) title{val}))`,
		`// *{tag, val}`,
		`// item{id R}(/ @id{val R})`,
		`// book{id}(/(s) @year, /(nj) title{val}(/(no) *{cont}))`,
		`// a{val=5}`,
		`// a{val>=3, val<10}`,
		`// t{ret}`,
	}
	for _, src := range cases {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		again, err := Parse(p.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", src, p.String(), err)
		}
		if p.String() != again.String() {
			t.Fatalf("print not stable: %q vs %q", p.String(), again.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "book", "/ book{zzz}", "/ book{id} extra", "/(x) book",
		"/ book(/ title", "/ book{val~3}", "/ @", "/ book{",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestAssignNamesAndLookup(t *testing.T) {
	p := MustParse(`// book(/ title, / author)`)
	names := map[string]bool{}
	for _, n := range p.Nodes() {
		if n.Name == "" {
			t.Fatal("unnamed node after parse")
		}
		if names[n.Name] {
			t.Fatalf("duplicate name %s", n.Name)
		}
		names[n.Name] = true
	}
	if p.NodeByName("e1") == nil || p.NodeByName("zz") != nil {
		t.Fatal("NodeByName wrong")
	}
}

// χ1 of Figure 2.8: // book{id, tag}. Expect the two books.
func TestEvalChi1(t *testing.T) {
	doc := libDoc(t)
	p := MustParse(`// book{id, tag}`)
	got, err := p.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("χ1: want 2 books, got %s", got)
	}
	for _, tp := range got.Tuples {
		if tp[1].Str != "book" {
			t.Fatalf("tag attr: %s", got)
		}
	}
}

// χ2 of Figure 2.8: // book{id, tag}(/(s) @year) — semijoin on @year keeps
// only the first book.
func TestEvalChi2SemijoinEdge(t *testing.T) {
	doc := libDoc(t)
	p := MustParse(`// book{id, tag}(/(s) @year)`)
	got, err := p.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("χ2: want 1 book, got %s", got)
	}
	if len(got.Schema.Attrs) != 2 {
		t.Fatalf("semijoin must not add attributes: %s", got.Schema)
	}
}

// χ3 of Figure 2.8: nested title under the year-filtered book.
func TestEvalChi3Nested(t *testing.T) {
	doc := libDoc(t)
	p := MustParse(`// b:book{id, tag}(/(s) @year, /(nj) t:title{id, val})`)
	got, err := p.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("χ3: %s", got)
	}
	nested := got.Tuples[0][2]
	if nested.Kind != algebra.Rel || nested.Rel.Len() != 1 {
		t.Fatalf("nested titles: %s", got)
	}
	if v := nested.Rel.Tuples[0][1].Str; v != "Data on the Web" {
		t.Fatalf("title value: %q", v)
	}
}

func TestEvalValuePredicate(t *testing.T) {
	doc := libDoc(t)
	p := MustParse(`// book{id}(/ title{val="Data on the Web"})`)
	got, err := p.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("value predicate: %s", got)
	}
	// Numeric predicate on attribute value.
	p2 := MustParse(`// *{tag}(/ @year{val>=2000})`)
	got2, _ := p2.Eval(doc)
	if got2.Len() != 1 || got2.Tuples[0][0].Str != "phdthesis" {
		t.Fatalf("numeric predicate: %s", got2)
	}
}

func TestEvalOuterEdgeNulls(t *testing.T) {
	doc := libDoc(t)
	// Optional @year: the second book yields ⊥.
	p := MustParse(`// book{id}(/(o) @year{val})`)
	got, err := p.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("outer edge: %s", got)
	}
	var nulls int
	for _, tp := range got.Tuples {
		if tp[1].IsNull() {
			nulls++
		}
	}
	if nulls != 1 {
		t.Fatalf("want exactly one ⊥ year: %s", got)
	}
}

func TestEvalNestOuterEmptyCollection(t *testing.T) {
	doc := xmltree.MustParse("d.xml", `<r><a><b/></a><a/></r>`)
	p := MustParse(`// a{id}(/(no) b{id})`)
	got, err := p.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("nest outer: %s", got)
	}
	if got.Tuples[1][1].Rel.Len() != 0 {
		t.Fatalf("second a must have empty collection: %s", got)
	}
}

func TestEvalWildcardAndDescendant(t *testing.T) {
	doc := libDoc(t)
	p := MustParse(`/ library(// *{id, tag})`)
	got, err := p.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Elements below library: 3 entries + 3 titles + 4 authors = 10.
	if got.Len() != 10 {
		t.Fatalf("wildcard descendants = %d: %s", got.Len(), got)
	}
	// Without IDs the same pattern dedups down to the 4 distinct tags
	// (Π eliminates duplicates, Definition 2.2.3).
	p2 := MustParse(`/ library(// *{tag})`)
	got2, _ := p2.Eval(doc)
	if got2.Len() != 4 {
		t.Fatalf("dedup by tag = %d: %s", got2.Len(), got2)
	}
}

func TestEvalDeweyIDs(t *testing.T) {
	doc := libDoc(t)
	p := MustParse(`// author{id p}`)
	got, err := p.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Fatalf("authors: %s", got)
	}
	for _, tp := range got.Tuples {
		if tp[0].Kind != algebra.DeweyID {
			t.Fatalf("want dewey ids: %s", got)
		}
	}
}

func TestEvalDuplicateElimination(t *testing.T) {
	doc := libDoc(t)
	// Without IDs, the two matches of (book, author-exists) dedup by tag.
	p := MustParse(`// book{tag}(/(s) author)`)
	got, err := p.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("Π must eliminate duplicates: %s", got)
	}
}

func TestEvalRejectsRequiredWithoutBindings(t *testing.T) {
	p := MustParse(`// book{id R}`)
	if _, err := p.Eval(libDoc(t)); err == nil {
		t.Fatal("Eval must reject R-marked patterns")
	}
}

// χ4/χ5 of Figure 2.9 and Example 2.2.2: composite-key index semantics.
func TestEvalWithBindings(t *testing.T) {
	doc := libDoc(t)
	// χ4: elements with title and author children; element tag and title
	// value are required (an index keyed on publication type + title).
	chi4 := MustParse(`// e1:*{id, tag R}(/(nj) e2:title{id, val R}, /(nj) e3:author{id, val})`)
	bs := chi4.BindingSchema()
	// Binding schema: (e1.Tag, e2(e2.Val)).
	if len(bs.Attrs) != 2 || bs.Attrs[0].Name != "e1.Tag" || bs.Attrs[1].Nested == nil {
		t.Fatalf("binding schema: %s", bs)
	}

	mkBinding := func(tag, title string) algebra.Tuple {
		inner := algebra.NewRelation(bs.Attrs[1].Nested)
		inner.Add(algebra.Tuple{algebra.S(title)})
		return algebra.Tuple{algebra.S(tag), algebra.RelV(inner)}
	}
	bindings := algebra.NewRelation(bs)
	bindings.Add(mkBinding("book", "Data on the Web"))

	got, err := chi4.EvalWithBindings(doc, bindings)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("lookup: %s", got)
	}
	// The matched book has both authors in its nested author collection.
	authors := got.Tuples[0][3]
	if authors.Kind != algebra.Rel || authors.Rel.Len() != 2 {
		t.Fatalf("authors of match: %s", got)
	}

	// Unsuccessful lookup: an 'article' with that title does not exist.
	bindings2 := algebra.NewRelation(bs)
	bindings2.Add(mkBinding("article", "Data on the Web"))
	got2, _ := chi4.EvalWithBindings(doc, bindings2)
	if got2.Len() != 0 {
		t.Fatalf("lookup must be empty: %s", got2)
	}

	// Two bindings: both books found (Example 2.2.2's [t1, t2]).
	bindings3 := algebra.NewRelation(bs)
	bindings3.Add(mkBinding("book", "Data on the Web"), mkBinding("book", "The Syntactic Web"))
	got3, _ := chi4.EvalWithBindings(doc, bindings3)
	if got3.Len() != 2 {
		t.Fatalf("two lookups: %s", got3)
	}
}

func TestEvalWithBindingsSchemaMismatch(t *testing.T) {
	p := MustParse(`// book{id R}`)
	bad := algebra.NewRelation(algebra.NewSchema("whatever"))
	if _, err := p.EvalWithBindings(libDoc(t), bad); err == nil {
		t.Fatal("schema mismatch must error")
	}
}

func TestIntersectTuplesAlgorithm1(t *testing.T) {
	// The worked example after Algorithm 1:
	// t = e1(ID=2, Tag="book", e2[(Val="Abiteboul"),(Val="Suciu")], e3[(ID=4, Val="Data on the Web")])
	// b1 = e1(ID=2, e2[(Val="Suciu"),(Val="Buneman")])
	e2Schema := algebra.NewSchema("e2.Val")
	e3Schema := algebra.NewSchema("e3.ID", "e3.Val")
	ts := algebra.NewSchema("e1.ID", "e1.Tag").
		WithNested("e2", e2Schema).
		WithNested("e3", e3Schema)

	e2rel := algebra.NewRelation(e2Schema).Add(
		algebra.Tuple{algebra.S("Abiteboul")},
		algebra.Tuple{algebra.S("Suciu")})
	e3rel := algebra.NewRelation(e3Schema).Add(
		algebra.Tuple{algebra.I(4), algebra.S("Data on the Web")})
	t0 := algebra.Tuple{algebra.I(2), algebra.S("book"), algebra.RelV(e2rel), algebra.RelV(e3rel)}

	bsInner := algebra.NewSchema("e2.Val")
	bs := algebra.NewSchema("e1.ID").WithNested("e2", bsInner)
	b2rel := algebra.NewRelation(bsInner).Add(
		algebra.Tuple{algebra.S("Suciu")},
		algebra.Tuple{algebra.S("Buneman")})
	b := algebra.Tuple{algebra.I(2), algebra.RelV(b2rel)}

	res, ok := IntersectTuples(t0, ts, b, bs)
	if !ok {
		t.Fatal("intersection must succeed")
	}
	if res[0].Int != 2 || res[1].Str != "book" {
		t.Fatalf("atomic attrs: %v", res)
	}
	if res[2].Rel.Len() != 1 || res[2].Rel.Tuples[0][0].Str != "Suciu" {
		t.Fatalf("e2 must reduce to Suciu: %v", res[2].Rel)
	}
	if res[3].Rel.Len() != 1 {
		t.Fatalf("e3 must be copied: %v", res[3].Rel)
	}

	// Disagreeing atomic value: no access.
	b2 := algebra.Tuple{algebra.I(99), algebra.RelV(b2rel)}
	if _, ok := IntersectTuples(t0, ts, b2, bs); ok {
		t.Fatal("ID mismatch must fail")
	}
	// Empty collection intersection: no access.
	b3rel := algebra.NewRelation(bsInner).Add(algebra.Tuple{algebra.S("Nobody")})
	b3 := algebra.Tuple{algebra.I(2), algebra.RelV(b3rel)}
	if _, ok := IntersectTuples(t0, ts, b3, bs); ok {
		t.Fatal("empty collection intersection must fail")
	}
}

func TestSchemaShape(t *testing.T) {
	p := MustParse(`// b:book{id s, tag}(/ y:@year{val}, //(nj) a:author{id, cont})`)
	s := p.Schema()
	want := "(b.ID, b.Tag, y.Val, a(a.ID, a.Cont))"
	if s.String() != want {
		t.Fatalf("schema = %s, want %s", s, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := MustParse(`// book{id}(/ title{val})`)
	q := p.Clone()
	q.Nodes()[0].Label = "changed"
	if p.Nodes()[0].Label != "book" {
		t.Fatal("clone must be independent")
	}
	if q.Nodes()[1].Parent == nil || q.Nodes()[1].Parent.Label != "changed" {
		t.Fatal("clone must wire parents")
	}
}

func TestStripRequired(t *testing.T) {
	p := MustParse(`// book{id R, tag R}(/ title{val R})`)
	q := p.StripRequired()
	if q.HasRequired() {
		t.Fatal("strip failed")
	}
	if !p.HasRequired() {
		t.Fatal("original mutated")
	}
}

func TestConjunctive(t *testing.T) {
	if !MustParse(`// a(/ b, // c)`).Conjunctive() {
		t.Fatal("pure-j pattern must be conjunctive")
	}
	if MustParse(`// a(/(o) b)`).Conjunctive() {
		t.Fatal("optional edge is not conjunctive")
	}
}

func TestStringHasNoTrailingGarbage(t *testing.T) {
	p := MustParse(`ordered // a{id}`)
	if !strings.HasPrefix(p.String(), "ordered ") {
		t.Fatalf("ordered flag lost: %s", p)
	}
}

func TestEnumStringsAndPredicates(t *testing.T) {
	if StructID.String() != "s" || ParentID.String() != "p" || NoID.String() != "" {
		t.Fatal("IDKind strings")
	}
	if !StructID.Structural() || !ParentID.Structural() || OrderID.Structural() {
		t.Fatal("Structural()")
	}
	if SemNest.String() != "nj" || !SemNest.Nested() || SemNest.Optional() {
		t.Fatal("SemNest")
	}
	if !SemNestOuter.Optional() || !SemNestOuter.Nested() {
		t.Fatal("SemNestOuter")
	}
	p := MustParse(`// *{id}(/ @x{val}, / t{ret})`)
	star := p.Nodes()[0]
	if !star.Wildcard() || !star.IsReturn() {
		t.Fatal("wildcard/return")
	}
	at := p.Nodes()[1]
	if !at.IsAttribute() || at.Wildcard() {
		t.Fatal("attribute node")
	}
	retOnly := p.Nodes()[2]
	if !retOnly.IsReturn() || retOnly.StoresAnything() {
		t.Fatal("explicit ret marker")
	}
	if len(p.ReturnNodes()) != 3 || p.Size() != 3 {
		t.Fatal("returns/size")
	}
}

// TestCacheKeyCanonical checks the plan-cache key contract: equal patterns
// share a key, and patterns that differ anywhere a compiled plan could
// diverge — structure, annotations, order, or node names (which determine
// output schemas) — must not.
func TestCacheKeyCanonical(t *testing.T) {
	if a, b := MustParse(`// book(/ title{cont})`), MustParse(`// book(/ title{cont})`); a.CacheKey() != b.CacheKey() {
		t.Fatalf("equal patterns must share a key: %q vs %q", a.CacheKey(), b.CacheKey())
	}
	distinct := []string{
		`// book(/ title{cont})`,
		`// book(/ author{cont})`,
		`/ book(/ title{cont})`,
		`// book(/(nj) title{cont})`,
		`// book(/ title{val})`,
		`// book(/ title{val R})`,
		`ordered // book(/ title{cont})`,
		`// book{id}(/ title{cont})`,
		`// book(/ title{val=5})`,
	}
	keys := map[string]string{}
	for _, src := range distinct {
		k := MustParse(src).CacheKey()
		if prev, dup := keys[k]; dup {
			t.Fatalf("patterns %q and %q share cache key %q", prev, src, k)
		}
		keys[k] = src
	}
	// Node names feed output schemas, so same-print patterns with different
	// names must not collide (String elides auto-assigned e* names; the key
	// must not).
	a, c := MustParse(`// book(/ title{cont})`), MustParse(`// book(/ title{cont})`)
	c.Nodes()[0].Name = "ex9"
	if a.String() != c.String() {
		t.Fatalf("test premise broken: prints differ %q vs %q", a, c)
	}
	if a.CacheKey() == c.CacheKey() {
		t.Fatal("same print, different node names must not share a cache key")
	}
}
