package xam

import (
	"fmt"

	"xamdb/internal/algebra"
	"xamdb/internal/xmltree"
)

// BindingSchema computes the type of binding tuples for a XAM with R
// markers: the projection of the XAM's schema over its required attributes
// (§2.2.2). Nested collections survive only when their subtree contains a
// required attribute.
func (p *Pattern) BindingSchema() *algebra.Schema {
	out := &algebra.Schema{}
	for _, e := range p.Top {
		appendBindingEdgeSchema(out, e)
	}
	return out
}

func appendBindingEdgeSchema(s *algebra.Schema, e *Edge) {
	n := e.Child
	switch e.Sem {
	case SemSemi:
		return
	case SemNest, SemNestOuter:
		inner := &algebra.Schema{}
		appendBindingNodeSchema(inner, n)
		if len(inner.Attrs) > 0 {
			s.Attrs = append(s.Attrs, algebra.Attr{Name: n.Name, Nested: inner})
		}
	default:
		appendBindingNodeSchema(s, n)
	}
}

func appendBindingNodeSchema(s *algebra.Schema, n *Node) {
	if n.IDSpec != NoID && n.IDRequired {
		s.Attrs = append(s.Attrs, algebra.Attr{Name: n.Name + ".ID"})
	}
	if n.StoreTag && n.TagRequired {
		s.Attrs = append(s.Attrs, algebra.Attr{Name: n.Name + ".Tag"})
	}
	if n.StoreVal && n.ValRequired {
		s.Attrs = append(s.Attrs, algebra.Attr{Name: n.Name + ".Val"})
	}
	for _, e := range n.Edges {
		appendBindingEdgeSchema(s, e)
	}
}

// IntersectTuples implements the nested tuple intersection t ∩ b of
// Algorithm 1: the data accessible from t given binding b. The binding
// schema bs must be a (name-matched) projection of ts. It returns the
// reduced tuple and whether any data is reachable. Intersection is not
// commutative.
func IntersectTuples(t algebra.Tuple, ts *algebra.Schema, b algebra.Tuple, bs *algebra.Schema) (algebra.Tuple, bool) {
	out := t.Clone()
	for bi, battr := range bs.Attrs {
		ti := ts.Index(battr.Name)
		if ti < 0 {
			return nil, false
		}
		tv, bv := t[ti], b[bi]
		if battr.Nested == nil {
			// Atomic attribute: values must agree (lines 2–7).
			if bv.IsNull() {
				continue
			}
			if !tv.Equal(bv) {
				return nil, false
			}
			continue
		}
		// Collection attribute: pairwise intersection (lines 8–11).
		if tv.Kind != algebra.Rel || bv.Kind != algebra.Rel {
			return nil, false
		}
		innerTS := ts.Attrs[ti].Nested
		result := algebra.NewRelation(innerTS)
		for _, it := range tv.Rel.Tuples {
			for _, ib := range bv.Rel.Tuples {
				if r, ok := IntersectTuples(it, innerTS, ib, battr.Nested); ok {
					result.Add(r)
				}
			}
		}
		if result.Len() == 0 {
			return nil, false
		}
		out[ti] = algebra.RelV(algebra.Distinct(result))
	}
	return out, true
}

// EvalWithBindings computes the restricted XAM semantics (Definition 2.2.6):
// [[χ(B)]]_d = ⋃_{b∈B, t∈[[χ⁰]]_d} t ∩ b. The bindings relation must have
// the pattern's BindingSchema.
func (p *Pattern) EvalWithBindings(doc *xmltree.Document, bindings *algebra.Relation) (*algebra.Relation, error) {
	bs := p.BindingSchema()
	if !bs.Equal(bindings.Schema) {
		return nil, fmt.Errorf("xam: binding schema %s does not match required %s", bindings.Schema, bs)
	}
	full, err := p.StripRequired().Eval(doc)
	if err != nil {
		return nil, err
	}
	out := algebra.NewRelation(full.Schema)
	for _, b := range bindings.Tuples {
		for _, t := range full.Tuples {
			if r, ok := IntersectTuples(t, full.Schema, b, bs); ok {
				out.Add(r)
			}
		}
	}
	return algebra.Distinct(out), nil
}
