package xam

import "testing"

// FuzzXAMParse asserts the parser's total-safety contract on arbitrary
// input: no panic, and any accepted pattern renders to text that parses
// again (String is the persistence format for XAMs, so a print/parse
// asymmetry would corrupt saved catalogs).
func FuzzXAMParse(f *testing.F) {
	for _, seed := range []string{
		`// book{id s}(/ title{id s, val})`,
		`// a{id p}(/(nj) b{id s, val})`,
		`// *{id, tag}(// *{id, tag, val})`,
		`// book(/ title{cont})`,
		`/ bib(// book{id}(/ author{val}, / title{val}))`,
		`// item{id s, val [. >= "10"]}`,
		`// book{id s}(/ year{id s, val>=1990, val<2000})`,
		`// item{val!="x y"}(/ payload{cont})`,
		`// a{val<3}(/(no) b{id s, val})`,
		``,
		`((((`,
		`// `,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		if p == nil {
			t.Fatal("nil pattern with nil error")
		}
		rendered := p.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but its rendering %q fails to reparse: %v", src, rendered, err)
		}
		if got := again.String(); got != rendered {
			t.Fatalf("rendering is not a fixpoint: %q -> %q", rendered, got)
		}
	})
}
