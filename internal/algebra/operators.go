package algebra

import (
	"fmt"
	"sort"
	"strings"
)

// Cmp is a predicate comparator (§1.2.2): value comparisons plus the
// structural comparators ≺ (parent) and ≺≺ (ancestor) over identifiers.
type Cmp uint8

const (
	// Eq is '='.
	Eq Cmp = iota
	// Ne is '≠'.
	Ne
	// Lt is '<'.
	Lt
	// Le is '≤'.
	Le
	// Gt is '>'.
	Gt
	// Ge is '≥'.
	Ge
	// Parent is the structural ≺ comparator on identifiers.
	Parent
	// Ancestor is the structural ≺≺ comparator on identifiers.
	Ancestor
)

func (c Cmp) String() string {
	switch c {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Parent:
		return "≺"
	case Ancestor:
		return "≺≺"
	}
	return "?"
}

// Apply evaluates the comparator over two values. Comparisons involving ⊥ or
// incomparable kinds are false.
func (c Cmp) Apply(a, b Value) bool {
	switch c {
	case Parent:
		switch {
		case a.Kind == ID && b.Kind == ID:
			return a.ID.ParentOf(b.ID)
		case a.Kind == DeweyID && b.Kind == DeweyID:
			return a.Dewey.ParentOf(b.Dewey)
		}
		return false
	case Ancestor:
		switch {
		case a.Kind == ID && b.Kind == ID:
			return a.ID.AncestorOf(b.ID)
		case a.Kind == DeweyID && b.Kind == DeweyID:
			return a.Dewey.AncestorOf(b.Dewey)
		}
		return false
	}
	cmp, ok := a.Compare(b)
	if !ok {
		if c == Eq {
			return a.Equal(b) && a.Kind != Null
		}
		if c == Ne {
			return !a.Equal(b) && a.Kind != Null && b.Kind != Null
		}
		return false
	}
	switch c {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	}
	return false
}

// Pred is a selection predicate A θ c over a single relation. Path may be a
// dotted nested attribute path; selection then has the map/existential
// semantics of §1.2.2 (Example 1.2.2): tuples survive if some nested value
// matches, and nested collections are reduced to the matching tuples.
type Pred struct {
	Path  string
	Op    Cmp
	Const Value
}

func (p Pred) String() string {
	return fmt.Sprintf("%s%s%s", p.Path, p.Op, p.Const)
}

// Select implements σ_pred with map semantics on nested paths.
func Select(r *Relation, preds ...Pred) (*Relation, error) {
	out := NewRelation(r.Schema)
	resolved := make([][]int, len(preds))
	for i, p := range preds {
		idx, err := r.Schema.Resolve(p.Path)
		if err != nil {
			return nil, err
		}
		resolved[i] = idx
	}
	for _, t := range r.Tuples {
		keep := true
		cur := t
		for i, p := range preds {
			var ok bool
			cur, ok = filterTuple(cur, resolved[i], p.Op, p.Const)
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out.Add(cur)
		}
	}
	return out, nil
}

// filterTuple applies the predicate along the index path; it returns the
// (possibly reduced) tuple and whether it survives.
func filterTuple(t Tuple, idx []int, op Cmp, c Value) (Tuple, bool) {
	if len(idx) == 1 {
		return t, op.Apply(t[idx[0]], c)
	}
	v := t[idx[0]]
	if v.Kind != Rel {
		return t, false
	}
	inner := NewRelation(v.Rel.Schema)
	for _, it := range v.Rel.Tuples {
		if reduced, ok := filterTuple(it, idx[1:], op, c); ok {
			inner.Add(reduced)
		}
	}
	if inner.Len() == 0 {
		return t, false
	}
	out := t.Clone()
	out[idx[0]] = RelV(inner)
	return out, true
}

// Project implements π over top-level attribute names; dedup selects π⁰
// (duplicate elimination).
func Project(r *Relation, dedup bool, names ...string) (*Relation, error) {
	cols := make([]int, len(names))
	outSchema := &Schema{}
	for i, n := range names {
		j := r.Schema.Index(n)
		if j < 0 {
			return nil, fmt.Errorf("algebra: project: no attribute %q", n)
		}
		cols[i] = j
		outSchema.Attrs = append(outSchema.Attrs, r.Schema.Attrs[j])
	}
	out := NewRelation(outSchema)
	var seen dedupSet
	for _, t := range r.Tuples {
		nt := make(Tuple, len(cols))
		for i, j := range cols {
			nt[i] = t[j]
		}
		if dedup && !seen.insert(nt) {
			continue
		}
		out.Add(nt)
	}
	return out, nil
}

// Distinct removes duplicate tuples preserving first occurrence order.
func Distinct(r *Relation) *Relation {
	out := NewRelation(r.Schema)
	var seen dedupSet
	for _, t := range r.Tuples {
		if seen.insert(t) {
			out.Add(t)
		}
	}
	return out
}

// dedupSet eliminates duplicate tuples in near-linear time: tuples are
// bucketed by a canonical fingerprint and collisions are confirmed with
// Tuple.Equal, so the result is exactly the quadratic scan's — π° and
// Distinct sit on every projected rewriting's output, where a linear scan
// per tuple dominated selective-predicate plans.
type dedupSet struct {
	buckets map[string][]Tuple
}

func (d *dedupSet) contains(t Tuple) bool {
	var sb strings.Builder
	tupleKey(&sb, t)
	for _, u := range d.buckets[sb.String()] {
		if u.Equal(t) {
			return true
		}
	}
	return false
}

func (d *dedupSet) insert(t Tuple) bool {
	if d.buckets == nil {
		d.buckets = map[string][]Tuple{}
	}
	var sb strings.Builder
	tupleKey(&sb, t)
	k := sb.String()
	for _, u := range d.buckets[k] {
		if u.Equal(t) {
			return false
		}
	}
	d.buckets[k] = append(d.buckets[k], t)
	return true
}

// tupleKey renders a fingerprint under which equal tuples collide: the kind
// tag plus a length-prefixed canonical rendering per value, recursing into
// nested collections.
func tupleKey(sb *strings.Builder, t Tuple) {
	for _, v := range t {
		sb.WriteByte(byte('0' + v.Kind))
		if v.Kind == Rel && v.Rel != nil {
			sb.WriteByte('[')
			for _, it := range v.Rel.Tuples {
				tupleKey(sb, it)
				sb.WriteByte(';')
			}
			sb.WriteByte(']')
			continue
		}
		s := v.AsString()
		fmt.Fprintf(sb, "%d:%s", len(s), s)
	}
}

// Product implements the cartesian product ×.
func Product(r, s *Relation) *Relation {
	out := NewRelation(r.Schema.Concat(s.Schema))
	for _, t := range r.Tuples {
		for _, u := range s.Tuples {
			out.Add(t.Concat(u))
		}
	}
	return out
}

// Union implements duplicate-preserving union; schemas must agree.
func Union(r, s *Relation) (*Relation, error) {
	if !r.Schema.Equal(s.Schema) {
		return nil, fmt.Errorf("algebra: union: schema mismatch %s vs %s", r.Schema, s.Schema)
	}
	out := NewRelation(r.Schema)
	out.Add(r.Tuples...)
	out.Add(s.Tuples...)
	return out, nil
}

// Difference implements set difference \ (tuples of r absent from s).
func Difference(r, s *Relation) (*Relation, error) {
	if !r.Schema.Equal(s.Schema) {
		return nil, fmt.Errorf("algebra: difference: schema mismatch")
	}
	out := NewRelation(r.Schema)
	var exclude dedupSet
	for _, t := range s.Tuples {
		exclude.insert(t)
	}
	for _, t := range r.Tuples {
		if !exclude.contains(t) {
			out.Add(t)
		}
	}
	return out, nil
}

// JoinMode selects among the paper's join flavors.
type JoinMode uint8

const (
	// InnerJoin is ⋈.
	InnerJoin JoinMode = iota
	// SemiJoin is the left semijoin ⋉.
	SemiJoin
	// AntiJoin keeps left tuples with no match (the σ∅ of Definition 1.2.1's
	// complement; used to implement negation and outerjoin padding).
	AntiJoin
	// OuterJoin is the left outerjoin.
	OuterJoin
	// NestJoin groups matches into a fresh collection attribute (⋈ⁿ).
	NestJoin
	// NestOuterJoin is the nest outerjoin: left tuples without matches keep
	// an empty collection.
	NestOuterJoin
)

func (m JoinMode) String() string {
	switch m {
	case InnerJoin:
		return "join"
	case SemiJoin:
		return "semijoin"
	case AntiJoin:
		return "antijoin"
	case OuterJoin:
		return "outerjoin"
	case NestJoin:
		return "nestjoin"
	case NestOuterJoin:
		return "nestouterjoin"
	}
	return "?"
}

// JoinPred is a join predicate left.Path θ right.Path. The left path may be
// dotted (nested); the right path must be a top-level attribute of the right
// operand. With a nested left path the join applies inside the nested
// collection via the map meta-operator (Example 1.2.3).
type JoinPred struct {
	Left  string
	Op    Cmp
	Right string
}

func (p JoinPred) String() string {
	return fmt.Sprintf("%s%s%s", p.Left, p.Op, p.Right)
}

// Join implements the join family over a single predicate. nestAs names the
// new collection attribute for nest variants.
func Join(r, s *Relation, pred JoinPred, mode JoinMode, nestAs string) (*Relation, error) {
	lidx, err := r.Schema.Resolve(pred.Left)
	if err != nil {
		return nil, err
	}
	ridx := s.Schema.Index(pred.Right)
	if ridx < 0 {
		return nil, fmt.Errorf("algebra: join: no right attribute %q", pred.Right)
	}
	if len(lidx) > 1 {
		return mapJoin(r, s, lidx, pred.Op, ridx, mode, nestAs)
	}
	return flatJoin(r, s, lidx[0], pred.Op, ridx, mode, nestAs)
}

func nullTuple(s *Schema) Tuple {
	t := make(Tuple, len(s.Attrs))
	for i := range t {
		t[i] = NullValue
	}
	return t
}

func flatJoin(r, s *Relation, li int, op Cmp, ri int, mode JoinMode, nestAs string) (*Relation, error) {
	var out *Relation
	switch mode {
	case InnerJoin, OuterJoin:
		out = NewRelation(r.Schema.Concat(s.Schema))
	case SemiJoin, AntiJoin:
		out = NewRelation(r.Schema)
	case NestJoin, NestOuterJoin:
		out = NewRelation(&Schema{Attrs: append(append([]Attr{}, r.Schema.Attrs...), Attr{Name: nestAs, Nested: s.Schema})})
	}
	for _, t := range r.Tuples {
		var matches []Tuple
		for _, u := range s.Tuples {
			if op.Apply(t[li], u[ri]) {
				matches = append(matches, u)
			}
		}
		switch mode {
		case InnerJoin:
			for _, u := range matches {
				out.Add(t.Concat(u))
			}
		case OuterJoin:
			if len(matches) == 0 {
				out.Add(t.Concat(nullTuple(s.Schema)))
			}
			for _, u := range matches {
				out.Add(t.Concat(u))
			}
		case SemiJoin:
			if len(matches) > 0 {
				out.Add(t)
			}
		case AntiJoin:
			if len(matches) == 0 {
				out.Add(t)
			}
		case NestJoin, NestOuterJoin:
			if len(matches) == 0 && mode == NestJoin {
				continue
			}
			nested := NewRelation(s.Schema)
			nested.Add(matches...)
			out.Add(append(t.Clone(), RelV(nested)))
		}
	}
	return out, nil
}

// mapJoin applies the join inside the nested collection reached by lidx,
// implementing map(op, r, s, A1...Ak, B) of §1.2.2: tuples whose nested
// collections end up empty are eliminated (for non-outer modes).
func mapJoin(r, s *Relation, lidx []int, op Cmp, ri int, mode JoinMode, nestAs string) (*Relation, error) {
	outSchema, err := mapJoinSchema(r.Schema, s.Schema, lidx, mode, nestAs)
	if err != nil {
		return nil, err
	}
	out := NewRelation(outSchema)
	for _, t := range r.Tuples {
		nts, err := mapJoinTuple(t, s, lidx, op, ri, mode, nestAs)
		if err != nil {
			return nil, err
		}
		out.Add(nts...)
	}
	return out, nil
}

func mapJoinSchema(left, right *Schema, lidx []int, mode JoinMode, nestAs string) (*Schema, error) {
	out := &Schema{Attrs: append([]Attr{}, left.Attrs...)}
	cur := out
	for i := 0; i < len(lidx)-1; i++ {
		j := lidx[i]
		inner := cur.Attrs[j].Nested
		if inner == nil {
			return nil, fmt.Errorf("algebra: map join path crosses atomic attribute")
		}
		var innerOut *Schema
		if i == len(lidx)-2 {
			switch mode {
			case InnerJoin, OuterJoin:
				innerOut = inner.Concat(right)
			case SemiJoin, AntiJoin:
				innerOut = &Schema{Attrs: append([]Attr{}, inner.Attrs...)}
			case NestJoin, NestOuterJoin:
				innerOut = &Schema{Attrs: append(append([]Attr{}, inner.Attrs...), Attr{Name: nestAs, Nested: right})}
			}
		} else {
			innerOut = &Schema{Attrs: append([]Attr{}, inner.Attrs...)}
		}
		cur.Attrs[j] = Attr{Name: cur.Attrs[j].Name, Nested: innerOut}
		cur = innerOut
	}
	return out, nil
}

func mapJoinTuple(t Tuple, s *Relation, lidx []int, op Cmp, ri int, mode JoinMode, nestAs string) ([]Tuple, error) {
	j := lidx[0]
	if len(lidx) == 1 {
		// Innermost: join this tuple against s.
		var matches []Tuple
		for _, u := range s.Tuples {
			if op.Apply(t[j], u[ri]) {
				matches = append(matches, u)
			}
		}
		switch mode {
		case InnerJoin:
			out := make([]Tuple, 0, len(matches))
			for _, u := range matches {
				out = append(out, t.Concat(u))
			}
			return out, nil
		case OuterJoin:
			if len(matches) == 0 {
				return []Tuple{t.Concat(nullTuple(s.Schema))}, nil
			}
			out := make([]Tuple, 0, len(matches))
			for _, u := range matches {
				out = append(out, t.Concat(u))
			}
			return out, nil
		case SemiJoin:
			if len(matches) > 0 {
				return []Tuple{t}, nil
			}
			return nil, nil
		case AntiJoin:
			if len(matches) == 0 {
				return []Tuple{t}, nil
			}
			return nil, nil
		case NestJoin, NestOuterJoin:
			if len(matches) == 0 && mode == NestJoin {
				return nil, nil
			}
			nested := NewRelation(s.Schema)
			nested.Add(matches...)
			return []Tuple{append(t.Clone(), RelV(nested))}, nil
		}
		return nil, nil
	}
	v := t[j]
	if v.Kind != Rel {
		return nil, fmt.Errorf("algebra: map join path expects nested collection")
	}
	inner := NewRelation(nil)
	for _, it := range v.Rel.Tuples {
		nts, err := mapJoinTuple(it, s, lidx[1:], op, ri, mode, nestAs)
		if err != nil {
			return nil, err
		}
		inner.Add(nts...)
	}
	switch mode {
	case OuterJoin, NestOuterJoin, AntiJoin:
		// outer modes keep the tuple even with empty inner collections
	default:
		if inner.Len() == 0 {
			return nil, nil
		}
	}
	out := t.Clone()
	out[j] = RelV(inner)
	return []Tuple{out}, nil
}

// Nest packs all tuples of r into one tuple with a single collection
// attribute named as; this is the n operator used when translating element
// constructors (§3.3.2).
func Nest(r *Relation, as string) *Relation {
	out := NewRelation((&Schema{}).WithNested(as, r.Schema))
	inner := NewRelation(r.Schema)
	inner.Add(r.Tuples...)
	out.Add(Tuple{RelV(inner)})
	return out
}

// Unnest implements u_B: each tuple is replaced by one tuple per member of
// its collection attribute named name, concatenating outer and inner values.
func Unnest(r *Relation, name string) (*Relation, error) {
	j := r.Schema.Index(name)
	if j < 0 || r.Schema.Attrs[j].Nested == nil {
		return nil, fmt.Errorf("algebra: unnest: %q is not a collection attribute", name)
	}
	outSchema := &Schema{}
	for i, a := range r.Schema.Attrs {
		if i != j {
			outSchema.Attrs = append(outSchema.Attrs, a)
		}
	}
	outSchema.Attrs = append(outSchema.Attrs, r.Schema.Attrs[j].Nested.Attrs...)
	out := NewRelation(outSchema)
	for _, t := range r.Tuples {
		v := t[j]
		if v.Kind != Rel {
			continue
		}
		outer := make(Tuple, 0, len(t)-1)
		for i, val := range t {
			if i != j {
				outer = append(outer, val)
			}
		}
		for _, it := range v.Rel.Tuples {
			out.Add(outer.Concat(it))
		}
	}
	return out, nil
}

// GroupBy implements γ: tuples sharing the listed atomic attributes are
// grouped; the remaining attributes are packed into a collection named as.
func GroupBy(r *Relation, as string, keys ...string) (*Relation, error) {
	keyIdx := make([]int, len(keys))
	for i, k := range keys {
		j := r.Schema.Index(k)
		if j < 0 {
			return nil, fmt.Errorf("algebra: groupby: no attribute %q", k)
		}
		keyIdx[i] = j
	}
	restSchema := &Schema{}
	var restIdx []int
	for i, a := range r.Schema.Attrs {
		isKey := false
		for _, j := range keyIdx {
			if i == j {
				isKey = true
				break
			}
		}
		if !isKey {
			restSchema.Attrs = append(restSchema.Attrs, a)
			restIdx = append(restIdx, i)
		}
	}
	outSchema := &Schema{}
	for _, j := range keyIdx {
		outSchema.Attrs = append(outSchema.Attrs, r.Schema.Attrs[j])
	}
	outSchema.WithNested(as, restSchema)
	out := NewRelation(outSchema)
	var groups []Tuple // key tuples in first-seen order
	groupRel := map[int]*Relation{}
	for _, t := range r.Tuples {
		key := make(Tuple, len(keyIdx))
		for i, j := range keyIdx {
			key[i] = t[j]
		}
		gi := -1
		for i, g := range groups {
			if g.Equal(key) {
				gi = i
				break
			}
		}
		if gi < 0 {
			gi = len(groups)
			groups = append(groups, key)
			groupRel[gi] = NewRelation(restSchema)
		}
		rest := make(Tuple, len(restIdx))
		for i, j := range restIdx {
			rest[i] = t[j]
		}
		groupRel[gi].Add(rest)
	}
	for i, g := range groups {
		out.Add(append(g.Clone(), RelV(groupRel[i])))
	}
	return out, nil
}

// OrderDesc is an order descriptor (§1.2.3): a list of dotted attribute
// paths; the output is sorted by each in turn, descending into nested
// collections for dotted paths.
type OrderDesc []string

// Sort returns a copy of r ordered by the descriptor. Dotted paths sort
// the nested collections inside each tuple by their tail attribute, and the
// outer tuples by the heads.
func Sort(r *Relation, desc OrderDesc) (*Relation, error) {
	out := NewRelation(r.Schema)
	for _, t := range r.Tuples {
		out.Add(t.Clone())
	}
	// First sort nested collections for dotted paths.
	for _, p := range desc {
		idx, err := r.Schema.Resolve(p)
		if err != nil {
			return nil, err
		}
		if len(idx) > 1 {
			for _, t := range out.Tuples {
				sortNested(t, idx)
			}
		}
	}
	// Then sort the top level by the first components.
	sort.SliceStable(out.Tuples, func(i, j int) bool {
		for _, p := range desc {
			idx, _ := r.Schema.Resolve(p)
			a := topSortKey(out.Tuples[i], idx)
			b := topSortKey(out.Tuples[j], idx)
			if cmp, ok := a.Compare(b); ok && cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return out, nil
}

func sortNested(t Tuple, idx []int) {
	if len(idx) <= 1 {
		return
	}
	v := t[idx[0]]
	if v.Kind != Rel {
		return
	}
	if len(idx) == 2 {
		sort.SliceStable(v.Rel.Tuples, func(i, j int) bool {
			cmp, ok := v.Rel.Tuples[i][idx[1]].Compare(v.Rel.Tuples[j][idx[1]])
			return ok && cmp < 0
		})
		return
	}
	for _, it := range v.Rel.Tuples {
		sortNested(it, idx[1:])
	}
}

func topSortKey(t Tuple, idx []int) Value {
	cur := t
	for i, j := range idx {
		if i == len(idx)-1 {
			return cur[j]
		}
		v := cur[j]
		if v.Kind != Rel || v.Rel.Len() == 0 {
			return NullValue
		}
		cur = v.Rel.Tuples[0]
	}
	return NullValue
}

// RenameSchema returns a copy of r whose top-level attributes are renamed by
// prefixing; used to disambiguate self-joins (main₁, main₂ … in §2.1).
func RenameSchema(r *Relation, prefix string) *Relation {
	out := NewRelation(&Schema{Attrs: make([]Attr, len(r.Schema.Attrs))})
	for i, a := range r.Schema.Attrs {
		out.Schema.Attrs[i] = Attr{Name: prefix + a.Name, Nested: a.Nested}
	}
	out.Tuples = r.Tuples
	return out
}
