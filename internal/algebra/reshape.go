package algebra

import (
	"fmt"

	"xamdb/internal/value"
)

// SelectFormula is the logical residual-selection operator σ_φ of predicate
// absorption: it keeps the tuples whose named top-level attribute satisfies
// a §4.1 interval-union formula. Null never satisfies a formula (an absent
// value has no point in the ordered domain).
func SelectFormula(r *Relation, attr string, f value.Formula) (*Relation, error) {
	col := r.Schema.Index(attr)
	if col < 0 {
		return nil, fmt.Errorf("algebra: select-formula: no attribute %q", attr)
	}
	out := NewRelation(r.Schema)
	for _, t := range r.Tuples {
		v := t[col]
		if v.Kind != Null && f.Holds(value.Str(v.AsString())) {
			out.Add(t)
		}
	}
	return out, nil
}

// Reshape restructures r to the target schema by attribute name, descending
// into nested collections: every target attribute must name an attribute of
// the source schema with the same shape (atomic for atomic, collection for
// collection), and collection attributes are reshaped recursively to the
// target's inner schema. It is the nested generalization of Project —
// projection inside collections without unnesting — used to erase view
// annotations that live inside a nest edge.
func Reshape(r *Relation, target *Schema) (*Relation, error) {
	plan, err := reshapePlan(r.Schema, target)
	if err != nil {
		return nil, err
	}
	out := NewRelation(target)
	for _, t := range r.Tuples {
		rt, err := plan.apply(t)
		if err != nil {
			return nil, err
		}
		out.Add(rt)
	}
	return out, nil
}

// reshaper is a compiled source→target mapping: one source column index per
// target attribute, with a nested reshaper for collection attributes.
type reshaper struct {
	target *Schema
	cols   []int
	nested []*reshaper // aligned with cols; nil for atomic attributes
}

func reshapePlan(src, target *Schema) (*reshaper, error) {
	rs := &reshaper{target: target}
	for _, a := range target.Attrs {
		j := src.Index(a.Name)
		if j < 0 {
			return nil, fmt.Errorf("algebra: reshape: no attribute %q in %s", a.Name, src)
		}
		sa := src.Attrs[j]
		if (sa.Nested == nil) != (a.Nested == nil) {
			return nil, fmt.Errorf("algebra: reshape: attribute %q changes shape", a.Name)
		}
		rs.cols = append(rs.cols, j)
		if a.Nested == nil {
			rs.nested = append(rs.nested, nil)
			continue
		}
		inner, err := reshapePlan(sa.Nested, a.Nested)
		if err != nil {
			return nil, err
		}
		rs.nested = append(rs.nested, inner)
	}
	return rs, nil
}

func (rs *reshaper) apply(t Tuple) (Tuple, error) {
	out := make(Tuple, len(rs.cols))
	for i, j := range rs.cols {
		v := t[j]
		if rs.nested[i] == nil || v.Kind == Null {
			out[i] = v
			continue
		}
		if v.Kind != Rel {
			return nil, fmt.Errorf("algebra: reshape: attribute %q is not a collection", rs.target.Attrs[i].Name)
		}
		inner := NewRelation(rs.nested[i].target)
		for _, it := range v.Rel.Tuples {
			rt, err := rs.nested[i].apply(it)
			if err != nil {
				return nil, err
			}
			inner.Add(rt)
		}
		out[i] = RelV(inner)
	}
	return out, nil
}
