package algebra

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Attr describes one attribute of a (possibly nested) schema. A collection
// attribute has a non-nil Nested schema; atomic attributes have nil.
type Attr struct {
	Name   string
	Nested *Schema
}

// Schema is an ordered list of attributes, possibly nested in alternation
// with collections, as the data model of §1.2.2 requires.
type Schema struct {
	Attrs []Attr
}

// NewSchema builds a flat schema of atomic attributes.
func NewSchema(names ...string) *Schema {
	s := &Schema{Attrs: make([]Attr, len(names))}
	for i, n := range names {
		s.Attrs[i] = Attr{Name: n}
	}
	return s
}

// WithNested appends a collection attribute and returns the schema.
func (s *Schema) WithNested(name string, nested *Schema) *Schema {
	s.Attrs = append(s.Attrs, Attr{Name: name, Nested: nested})
	return s
}

// Index returns the position of the named attribute, or -1.
func (s *Schema) Index(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Resolve follows a dotted attribute path such as "A1.A11" through nested
// schemas and returns the index path. Attribute names may themselves contain
// dots (the XAM convention names attributes "node.Attr"), so resolution is
// greedy: at every level the longest attribute name matching a prefix of the
// remaining path wins.
func (s *Schema) Resolve(path string) ([]int, error) {
	parts := strings.Split(path, ".")
	idx, ok := resolveParts(s, parts)
	if !ok {
		return nil, fmt.Errorf("algebra: no attribute %q in schema %s", path, s)
	}
	return idx, nil
}

func resolveParts(s *Schema, parts []string) ([]int, bool) {
	if s == nil || len(parts) == 0 {
		return nil, false
	}
	for take := len(parts); take >= 1; take-- {
		name := strings.Join(parts[:take], ".")
		j := s.Index(name)
		if j < 0 {
			continue
		}
		if take == len(parts) {
			return []int{j}, true
		}
		rest, ok := resolveParts(s.Attrs[j].Nested, parts[take:])
		if !ok {
			continue
		}
		return append([]int{j}, rest...), true
	}
	return nil, false
}

// Concat returns the concatenation of two schemas (tuple concatenation ||).
func (s *Schema) Concat(o *Schema) *Schema {
	out := &Schema{Attrs: make([]Attr, 0, len(s.Attrs)+len(o.Attrs))}
	out.Attrs = append(out.Attrs, s.Attrs...)
	out.Attrs = append(out.Attrs, o.Attrs...)
	return out
}

// Equal reports structural schema equality (names and nesting).
func (s *Schema) Equal(o *Schema) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.Attrs) != len(o.Attrs) {
		return false
	}
	for i := range s.Attrs {
		if s.Attrs[i].Name != o.Attrs[i].Name {
			return false
		}
		a, b := s.Attrs[i].Nested, o.Attrs[i].Nested
		if (a == nil) != (b == nil) || (a != nil && !a.Equal(b)) {
			return false
		}
	}
	return true
}

func (s *Schema) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, a := range s.Attrs {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.Name)
		if a.Nested != nil {
			sb.WriteString(a.Nested.String())
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// Tuple is one row; values align positionally with the schema's attributes.
type Tuple []Value

// Concat returns the concatenation t || o.
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	out = append(out, o...)
	return out
}

// Clone returns a shallow copy of the tuple (values are immutable by
// convention; nested relations are shared).
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports deep tuple equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Relation is an ordered collection of tuples over a schema. Following
// §1.2.2 we do not eliminate duplicates unless an operator says so; whether
// the collection is interpreted as a set, bag or list is up to the operator
// (the physical representation is always an ordered slice).
type Relation struct {
	Schema *Schema
	Tuples []Tuple

	// estBytes caches EstimatedBytes. Extents are immutable once built, so
	// a computed estimate stays valid; concurrent first calls may both
	// compute, the atomic keeps the cache race-free.
	estBytes atomic.Int64

	// cols caches the column-major view built by Columns() under the same
	// immutability convention.
	cols atomic.Pointer[Columns]
}

// NewRelation builds an empty relation over the schema.
func NewRelation(s *Schema) *Relation { return &Relation{Schema: s} }

// Add appends tuples.
func (r *Relation) Add(ts ...Tuple) *Relation {
	r.Tuples = append(r.Tuples, ts...)
	return r
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// EstimatedBytes estimates the relation's decoded in-memory size: per-value
// struct overhead plus string payloads, Dewey vectors and nested
// collections, recursively. The estimate feeds per-query extent-byte quotas
// — it must be cheap and stable, not exact. Computed once and cached
// (relations used as extents are immutable after materialization); callers
// that mutate a relation afterwards must not rely on the estimate.
func (r *Relation) EstimatedBytes() int64 {
	if r == nil {
		return 0
	}
	if v := r.estBytes.Load(); v > 0 {
		return v
	}
	n := int64(64) // Relation + Schema headers
	for _, t := range r.Tuples {
		n += tupleBytes(t)
	}
	r.estBytes.Store(n)
	return n
}

// tupleBytes estimates one tuple's decoded size.
func tupleBytes(t Tuple) int64 {
	const valueOverhead = 64 // Value struct + slice header amortization
	n := int64(24)           // tuple slice header
	for _, v := range t {
		n += valueOverhead
		n += int64(len(v.Str))
		n += int64(len(v.Dewey)) * 4
		if v.Rel != nil {
			n += v.Rel.EstimatedBytes()
		}
	}
	return n
}

// Equal reports ordered deep equality of two relations.
func (r *Relation) Equal(o *Relation) bool {
	if r == nil || o == nil {
		return (r == nil || r.Len() == 0) && (o == nil || o.Len() == 0)
	}
	if len(r.Tuples) != len(o.Tuples) {
		return false
	}
	for i := range r.Tuples {
		if !r.Tuples[i].Equal(o.Tuples[i]) {
			return false
		}
	}
	return true
}

// EqualAsSet reports set equality ignoring order and duplicates.
func (r *Relation) EqualAsSet(o *Relation) bool {
	contains := func(rel *Relation, t Tuple) bool {
		for _, u := range rel.Tuples {
			if t.Equal(u) {
				return true
			}
		}
		return false
	}
	for _, t := range r.Tuples {
		if !contains(o, t) {
			return false
		}
	}
	for _, t := range o.Tuples {
		if !contains(r, t) {
			return false
		}
	}
	return true
}

// Get returns the value at the dotted attribute path within tuple t,
// descending only through the *first* tuple of nested collections. It is a
// convenience accessor for flat paths; operators use index paths directly.
func (r *Relation) Get(t Tuple, path string) (Value, error) {
	idx, err := r.Schema.Resolve(path)
	if err != nil {
		return NullValue, err
	}
	cur := t
	for i, j := range idx {
		if i == len(idx)-1 {
			return cur[j], nil
		}
		v := cur[j]
		if v.Kind != Rel || v.Rel.Len() == 0 {
			return NullValue, nil
		}
		cur = v.Rel.Tuples[0]
	}
	return NullValue, nil
}

func (r *Relation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s [%d tuples]\n", r.Schema, len(r.Tuples))
	for _, t := range r.Tuples {
		sb.WriteString("  ")
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
