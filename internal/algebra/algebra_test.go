package algebra

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xamdb/internal/xmltree"
)

func idv(pre, post, depth int32) Value {
	return IDV(xmltree.NodeID{Pre: pre, Post: post, Depth: depth})
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{I(1), I(2), -1, true},
		{I(2), F(2.0), 0, true},
		{F(3.5), I(3), 1, true},
		{S("a"), S("b"), -1, true},
		{S("10"), I(9), 1, true}, // untyped numeric coercion
		{S("abc"), I(9), 0, false},
		{NullValue, I(1), 0, false},
		{idv(1, 5, 1), idv(2, 2, 2), -1, true},
		{DV(xmltree.Dewey{1, 2}), DV(xmltree.Dewey{1, 3}), -1, true},
	}
	for _, c := range cases {
		cmp, ok := c.a.Compare(c.b)
		if ok != c.ok || (ok && cmp != c.cmp) {
			t.Errorf("Compare(%v,%v) = %d,%v want %d,%v", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestCmpApplyStructural(t *testing.T) {
	root := idv(1, 10, 1)
	child := idv(2, 4, 2)
	grandchild := idv(3, 2, 3)
	if !Parent.Apply(root, child) {
		t.Error("root ≺ child expected")
	}
	if Parent.Apply(root, grandchild) {
		t.Error("root must not be parent of grandchild")
	}
	if !Ancestor.Apply(root, grandchild) {
		t.Error("root ≺≺ grandchild expected")
	}
	d1, d2 := DV(xmltree.Dewey{1}), DV(xmltree.Dewey{1, 2})
	if !Parent.Apply(d1, d2) || Ancestor.Apply(d2, d1) {
		t.Error("dewey structural comparators wrong")
	}
	if Parent.Apply(S("x"), child) {
		t.Error("non-ID operands must not satisfy structural comparators")
	}
}

func TestCmpApplyNulls(t *testing.T) {
	if Eq.Apply(NullValue, NullValue) {
		t.Error("⊥=⊥ must be false")
	}
	if Lt.Apply(NullValue, I(5)) || Eq.Apply(I(5), NullValue) {
		t.Error("comparisons with ⊥ must be false")
	}
}

func rel2(t *testing.T, names []string, rows ...[]Value) *Relation {
	t.Helper()
	r := NewRelation(NewSchema(names...))
	for _, row := range rows {
		r.Add(Tuple(row))
	}
	return r
}

func TestSelectFlat(t *testing.T) {
	r := rel2(t, []string{"A", "B"},
		[]Value{I(1), S("x")},
		[]Value{I(2), S("y")},
		[]Value{I(3), S("x")})
	got, err := Select(r, Pred{Path: "B", Op: Eq, Const: S("x")})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Tuples[0][0].Int != 1 || got.Tuples[1][0].Int != 3 {
		t.Fatalf("select result: %s", got)
	}
	got2, _ := Select(r, Pred{Path: "A", Op: Ge, Const: I(2)}, Pred{Path: "B", Op: Eq, Const: S("x")})
	if got2.Len() != 1 || got2.Tuples[0][0].Int != 3 {
		t.Fatalf("conjunctive select: %s", got2)
	}
}

func TestSelectNestedExistential(t *testing.T) {
	// r(A1(A11), A2): Example 1.2.2 — keep tuples where some A1.A11 = 5,
	// reducing the nested collection.
	inner := NewSchema("A11")
	schema := (&Schema{}).WithNested("A1", inner)
	schema.Attrs = append(schema.Attrs, Attr{Name: "A2"})
	r := NewRelation(schema)
	n1 := NewRelation(inner).Add(Tuple{I(5)}, Tuple{I(7)})
	n2 := NewRelation(inner).Add(Tuple{I(7)})
	r.Add(Tuple{RelV(n1), S("a")}, Tuple{RelV(n2), S("b")})

	got, err := Select(r, Pred{Path: "A1.A11", Op: Eq, Const: I(5)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("want 1 tuple, got %s", got)
	}
	nested := got.Tuples[0][0].Rel
	if nested.Len() != 1 || nested.Tuples[0][0].Int != 5 {
		t.Fatalf("nested collection not reduced: %s", nested)
	}
	if got.Tuples[0][1].Str != "a" {
		t.Fatal("wrong surviving tuple")
	}
	// Original relation must be untouched.
	if n1.Len() != 2 {
		t.Fatal("input mutated")
	}
}

func TestProjectAndDistinct(t *testing.T) {
	r := rel2(t, []string{"A", "B"},
		[]Value{I(1), S("x")},
		[]Value{I(1), S("y")},
		[]Value{I(1), S("x")})
	p, err := Project(r, false, "A")
	if err != nil || p.Len() != 3 {
		t.Fatalf("plain projection must preserve duplicates: %v %v", p, err)
	}
	p0, _ := Project(r, true, "A")
	if p0.Len() != 1 {
		t.Fatalf("π⁰ must dedup: %s", p0)
	}
	d := Distinct(r)
	if d.Len() != 2 {
		t.Fatalf("distinct: %s", d)
	}
	if _, err := Project(r, false, "Z"); err == nil {
		t.Fatal("projecting unknown attribute must error")
	}
}

func TestProductUnionDifference(t *testing.T) {
	r := rel2(t, []string{"A"}, []Value{I(1)}, []Value{I(2)})
	s := rel2(t, []string{"B"}, []Value{S("x")})
	p := Product(r, s)
	if p.Len() != 2 || len(p.Schema.Attrs) != 2 {
		t.Fatalf("product: %s", p)
	}
	u, err := Union(r, rel2(t, []string{"A"}, []Value{I(1)}))
	if err != nil || u.Len() != 3 {
		t.Fatalf("union must preserve duplicates: %v %v", u, err)
	}
	if _, err := Union(r, s); err == nil {
		t.Fatal("union with mismatched schema must error")
	}
	d, err := Difference(r, rel2(t, []string{"A"}, []Value{I(2)}))
	if err != nil || d.Len() != 1 || d.Tuples[0][0].Int != 1 {
		t.Fatalf("difference: %v %v", d, err)
	}
}

func TestJoinModes(t *testing.T) {
	r := rel2(t, []string{"A", "X"},
		[]Value{I(1), S("r1")},
		[]Value{I(2), S("r2")},
		[]Value{I(3), S("r3")})
	s := rel2(t, []string{"B", "Y"},
		[]Value{I(1), S("s1")},
		[]Value{I(1), S("s1b")},
		[]Value{I(2), S("s2")})
	pred := JoinPred{Left: "A", Op: Eq, Right: "B"}

	j, err := Join(r, s, pred, InnerJoin, "")
	if err != nil || j.Len() != 3 {
		t.Fatalf("inner join: %v %v", j, err)
	}
	o, _ := Join(r, s, pred, OuterJoin, "")
	if o.Len() != 4 {
		t.Fatalf("outer join: %s", o)
	}
	var padded bool
	for _, tp := range o.Tuples {
		if tp[0].Int == 3 && tp[2].IsNull() && tp[3].IsNull() {
			padded = true
		}
	}
	if !padded {
		t.Fatal("outer join must pad unmatched left tuple with ⊥")
	}
	sj, _ := Join(r, s, pred, SemiJoin, "")
	if sj.Len() != 2 || len(sj.Schema.Attrs) != 2 {
		t.Fatalf("semijoin: %s", sj)
	}
	aj, _ := Join(r, s, pred, AntiJoin, "")
	if aj.Len() != 1 || aj.Tuples[0][0].Int != 3 {
		t.Fatalf("antijoin: %s", aj)
	}
	nj, _ := Join(r, s, pred, NestJoin, "G")
	if nj.Len() != 2 {
		t.Fatalf("nestjoin: %s", nj)
	}
	if g := nj.Tuples[0][2]; g.Kind != Rel || g.Rel.Len() != 2 {
		t.Fatalf("nestjoin group: %s", nj)
	}
	no, _ := Join(r, s, pred, NestOuterJoin, "G")
	if no.Len() != 3 {
		t.Fatalf("nest outer join: %s", no)
	}
	if g := no.Tuples[2][2]; g.Kind != Rel || g.Rel.Len() != 0 {
		t.Fatalf("nest outer join empty group: %s", no)
	}
}

func TestStructuralJoin(t *testing.T) {
	// book(1,8,1) has title(2,2,2) and author(3,4,2); author has a text
	// child (4,3,3).
	books := rel2(t, []string{"ID"}, []Value{idv(1, 8, 1)})
	children := rel2(t, []string{"CID"},
		[]Value{idv(2, 2, 2)},
		[]Value{idv(3, 4, 2)},
		[]Value{idv(4, 3, 3)})
	pc, err := Join(books, children, JoinPred{Left: "ID", Op: Parent, Right: "CID"}, InnerJoin, "")
	if err != nil || pc.Len() != 2 {
		t.Fatalf("parent-child: %v %v", pc, err)
	}
	ad, _ := Join(books, children, JoinPred{Left: "ID", Op: Ancestor, Right: "CID"}, InnerJoin, "")
	if ad.Len() != 3 {
		t.Fatalf("ancestor-descendant: %s", ad)
	}
	nested, _ := Join(books, children, JoinPred{Left: "ID", Op: Parent, Right: "CID"}, NestJoin, "kids")
	if nested.Len() != 1 || nested.Tuples[0][1].Rel.Len() != 2 {
		t.Fatalf("nest structural join: %s", nested)
	}
}

func TestMapJoinInsideNested(t *testing.T) {
	// r(A1(A11, A12), A2) with A1.A12 of type ID, joined to s(B1, B2) on
	// A1.A12 ≺ B1 — Example 1.2.3.
	inner := NewSchema("A11", "A12")
	schema := (&Schema{}).WithNested("A1", inner)
	schema.Attrs = append(schema.Attrs, Attr{Name: "A2"})
	r := NewRelation(schema)
	n1 := NewRelation(inner).Add(
		Tuple{S("x"), idv(1, 10, 1)},
		Tuple{S("y"), idv(5, 3, 4)})
	r.Add(Tuple{RelV(n1), S("t1")})
	s := rel2(t, []string{"B1", "B2"},
		[]Value{idv(2, 9, 2), S("child-of-1")},
		[]Value{idv(7, 1, 3), S("unrelated")})

	got, err := Join(r, s, JoinPred{Left: "A1.A12", Op: Parent, Right: "B1"}, NestJoin, "G")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("map nest join: %s", got)
	}
	innerRel := got.Tuples[0][0].Rel
	if innerRel.Len() != 1 { // only the matching inner tuple survives
		t.Fatalf("inner reduced wrong: %s", innerRel)
	}
	g := innerRel.Tuples[0][2]
	if g.Kind != Rel || g.Rel.Len() != 1 || g.Rel.Tuples[0][1].Str != "child-of-1" {
		t.Fatalf("nested group wrong: %v", g)
	}
}

func TestNestAndUnnestRoundTrip(t *testing.T) {
	r := rel2(t, []string{"A", "B"},
		[]Value{I(1), S("x")},
		[]Value{I(2), S("y")})
	n := Nest(r, "G")
	if n.Len() != 1 || n.Tuples[0][0].Rel.Len() != 2 {
		t.Fatalf("nest: %s", n)
	}
	u, err := Unnest(n, "G")
	if err != nil || !u.EqualAsSet(r) {
		t.Fatalf("unnest round trip: %v %v", u, err)
	}
	if _, err := Unnest(r, "A"); err == nil {
		t.Fatal("unnesting atomic attribute must error")
	}
}

func TestGroupBy(t *testing.T) {
	r := rel2(t, []string{"K", "V"},
		[]Value{S("a"), I(1)},
		[]Value{S("b"), I(2)},
		[]Value{S("a"), I(3)})
	g, err := GroupBy(r, "G", "K")
	if err != nil || g.Len() != 2 {
		t.Fatalf("groupby: %v %v", g, err)
	}
	if g.Tuples[0][0].Str != "a" || g.Tuples[0][1].Rel.Len() != 2 {
		t.Fatalf("group a: %s", g)
	}
	if g.Tuples[1][1].Rel.Len() != 1 {
		t.Fatalf("group b: %s", g)
	}
	if _, err := GroupBy(r, "G", "Z"); err == nil {
		t.Fatal("groupby unknown key must error")
	}
}

func TestSortTopLevelAndNested(t *testing.T) {
	r := rel2(t, []string{"A", "B"},
		[]Value{I(3), S("c")},
		[]Value{I(1), S("a")},
		[]Value{I(2), S("b")})
	sorted, err := Sort(r, OrderDesc{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if sorted.Tuples[0][0].Int != 1 || sorted.Tuples[2][0].Int != 3 {
		t.Fatalf("sort: %s", sorted)
	}
	// Nested sort: order descriptor A2.A21 of §1.2.3.
	inner := NewSchema("A21")
	schema := NewSchema("A1")
	schema.WithNested("A2", inner)
	nr := NewRelation(schema)
	coll := NewRelation(inner).Add(Tuple{I(5)}, Tuple{I(2)}, Tuple{I(9)})
	nr.Add(Tuple{I(1), RelV(coll)})
	ns, err := Sort(nr, OrderDesc{"A2.A21"})
	if err != nil {
		t.Fatal(err)
	}
	got := ns.Tuples[0][1].Rel
	if got.Tuples[0][0].Int != 2 || got.Tuples[2][0].Int != 9 {
		t.Fatalf("nested sort: %s", got)
	}
}

func TestXMLizeTemplate(t *testing.T) {
	// Recreate Example 1.2.4: R(A1(A11)) where A1 holds name values and A11
	// listitem values, template <res_item>A1 <res_desc>A11</res_desc></res_item>.
	inner := NewSchema("A11")
	schema := (&Schema{}).WithNested("A1", inner)
	r := NewRelation(schema)
	coll := NewRelation(inner).Add(Tuple{S("li1")}, Tuple{S("li2")})
	r.Add(Tuple{RelV(coll)})

	templ := Elem("res_item",
		ForEach("A1",
			Field("A11"))) // simplified: one field per inner tuple
	nodes, err := XMLize(r, templ)
	if err != nil {
		t.Fatal(err)
	}
	got := SerializeNodes(nodes)
	if got != "<res_item>li1li2</res_item>" {
		t.Fatalf("xmlize = %q", got)
	}

	templ2 := Elem("res_item",
		ForEach("A1",
			Elem("res_desc", Field("A11"))))
	nodes2, _ := XMLize(r, templ2)
	if got := SerializeNodes(nodes2); got != "<res_item><res_desc>li1</res_desc><res_desc>li2</res_desc></res_item>" {
		t.Fatalf("xmlize2 = %q", got)
	}
}

func TestXMLizeRawContent(t *testing.T) {
	r := rel2(t, []string{"C"}, []Value{S("<b>bold</b>")})
	nodes, err := XMLize(r, Elem("out", RawField("C")))
	if err != nil {
		t.Fatal(err)
	}
	if got := SerializeNodes(nodes); got != "<out><b>bold</b></out>" {
		t.Fatalf("raw xmlize = %q", got)
	}
	// Null fields construct the element with no content (XQuery semantics,
	// §3.1).
	r2 := rel2(t, []string{"C"}, []Value{NullValue})
	nodes2, _ := XMLize(r2, Elem("out", Field("C")))
	if got := SerializeNodes(nodes2); got != "<out/>" {
		t.Fatalf("null field xmlize = %q", got)
	}
}

func TestRenameSchema(t *testing.T) {
	r := rel2(t, []string{"ID", "V"}, []Value{I(1), S("x")})
	r2 := RenameSchema(r, "main1.")
	if r2.Schema.Index("main1.ID") != 0 || r2.Len() != 1 {
		t.Fatalf("rename: %s", r2.Schema)
	}
	// Underlying tuples shared, schema independent.
	if r.Schema.Index("main1.ID") != -1 {
		t.Fatal("original schema mutated")
	}
}

func TestSchemaResolveErrors(t *testing.T) {
	s := NewSchema("A")
	if _, err := s.Resolve("A.B"); err == nil {
		t.Fatal("descending past atomic attribute must error")
	}
	if _, err := s.Resolve("Z"); err == nil {
		t.Fatal("unknown attribute must error")
	}
}

func TestStringRenderings(t *testing.T) {
	// Human-readable forms used in plan explanations and errors.
	for _, c := range []struct{ got, want string }{
		{Eq.String(), "="},
		{Parent.String(), "≺"},
		{Ancestor.String(), "≺≺"},
		{InnerJoin.String(), "join"},
		{NestOuterJoin.String(), "nestouterjoin"},
		{Pred{Path: "A", Op: Lt, Const: I(3)}.String(), "A<3"},
		{JoinPred{Left: "A", Op: Eq, Right: "B"}.String(), "A=B"},
		{NullValue.String(), "⊥"},
		{S("x").String(), `"x"`},
		{I(7).String(), "7"},
	} {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
	r := NewRelation(NewSchema("A")).Add(Tuple{I(1)})
	if !strings.Contains(r.String(), "1 tuples") {
		t.Errorf("relation string: %q", r.String())
	}
	if r.Schema.String() != "(A)" {
		t.Errorf("schema string: %q", r.Schema.String())
	}
}

func TestValueAsString(t *testing.T) {
	inner := NewRelation(NewSchema("X")).Add(Tuple{S("a")}, Tuple{S("b")})
	for _, c := range []struct {
		v    Value
		want string
	}{
		{NullValue, ""},
		{S("hi"), "hi"},
		{I(-4), "-4"},
		{F(2.5), "2.5"},
		{IDV(xmltree.NodeID{Pre: 1, Post: 2, Depth: 3}), "(1,2,3)"},
		{DV(xmltree.Dewey{1, 2}), "1.2"},
		{RelV(inner), `("a") ("b")`},
	} {
		if got := c.v.AsString(); got != c.want {
			t.Errorf("AsString(%v) = %q, want %q", c.v.Kind, got, c.want)
		}
	}
}

func TestValueEqualAcrossKinds(t *testing.T) {
	if S("1").Equal(I(1)) {
		t.Error("different kinds must not be Equal")
	}
	if !DV(xmltree.Dewey{1, 2}).Equal(DV(xmltree.Dewey{1, 2})) {
		t.Error("dewey equality")
	}
	inner1 := NewRelation(NewSchema("X")).Add(Tuple{I(1)})
	inner2 := NewRelation(NewSchema("X")).Add(Tuple{I(1)})
	if !RelV(inner1).Equal(RelV(inner2)) {
		t.Error("nested relation equality")
	}
	inner2.Add(Tuple{I(2)})
	if RelV(inner1).Equal(RelV(inner2)) {
		t.Error("nested relation inequality")
	}
}

func TestRelationGet(t *testing.T) {
	inner := NewSchema("B")
	schema := NewSchema("A")
	schema.WithNested("G", inner)
	r := NewRelation(schema)
	coll := NewRelation(inner).Add(Tuple{S("deep")})
	r.Add(Tuple{I(1), RelV(coll)})
	v, err := r.Get(r.Tuples[0], "A")
	if err != nil || v.Int != 1 {
		t.Fatalf("Get(A) = %v, %v", v, err)
	}
	v, err = r.Get(r.Tuples[0], "G.B")
	if err != nil || v.Str != "deep" {
		t.Fatalf("Get(G.B) = %v, %v", v, err)
	}
	if _, err := r.Get(r.Tuples[0], "Z"); err == nil {
		t.Fatal("Get unknown must error")
	}
}

func TestRelationEqualOrdered(t *testing.T) {
	a := NewRelation(NewSchema("A")).Add(Tuple{I(1)}, Tuple{I(2)})
	b := NewRelation(NewSchema("A")).Add(Tuple{I(2)}, Tuple{I(1)})
	if a.Equal(b) {
		t.Error("order matters for Equal")
	}
	if !a.EqualAsSet(b) {
		t.Error("EqualAsSet ignores order")
	}
	var nilRel *Relation
	empty := NewRelation(NewSchema("A"))
	if !nilRel.Equal(empty) {
		t.Error("nil vs empty must be equal")
	}
}

func TestMapJoinErrorsOnAtomicPath(t *testing.T) {
	r := rel2(t, []string{"A", "B"}, []Value{I(1), S("x")})
	s := rel2(t, []string{"C"}, []Value{I(1)})
	if _, err := Join(r, s, JoinPred{Left: "A.B", Op: Eq, Right: "C"}, InnerJoin, ""); err == nil {
		t.Fatal("nested path through atomic attribute must error")
	}
}

func TestSortByNestedKeyOfFirstTuple(t *testing.T) {
	inner := NewSchema("K")
	schema := (&Schema{}).WithNested("G", inner)
	r := NewRelation(schema)
	mk := func(v int64) Tuple {
		c := NewRelation(inner).Add(Tuple{I(v)})
		return Tuple{RelV(c)}
	}
	r.Add(mk(3), mk(1), mk(2))
	sorted, err := Sort(r, OrderDesc{"G.K"})
	if err != nil {
		t.Fatal(err)
	}
	// Nested sorting happens inside tuples; top order follows first nested
	// keys.
	first := func(i int) int64 { return sorted.Tuples[i][0].Rel.Tuples[0][0].Int }
	if !(first(0) <= first(1) && first(1) <= first(2)) {
		t.Fatalf("nested-key top sort: %v %v %v", first(0), first(1), first(2))
	}
}

// Property: semijoin ≡ π(left) over inner join results (set-wise), and
// outer join row count = inner matches + unmatched left rows — checked on
// random relations with testing/quick.
func TestQuickJoinLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(name string, n int) *Relation {
			r := NewRelation(NewSchema(name))
			for i := 0; i < n; i++ {
				r.Add(Tuple{I(int64(rng.Intn(6)))})
			}
			return r
		}
		l := mk("A", 1+rng.Intn(8))
		rr := mk("B", 1+rng.Intn(8))
		pred := JoinPred{Left: "A", Op: Eq, Right: "B"}
		inner, err := Join(l, rr, pred, InnerJoin, "")
		if err != nil {
			return false
		}
		semi, _ := Join(l, rr, pred, SemiJoin, "")
		anti, _ := Join(l, rr, pred, AntiJoin, "")
		outer, _ := Join(l, rr, pred, OuterJoin, "")
		if semi.Len()+anti.Len() != l.Len() {
			return false
		}
		if outer.Len() != inner.Len()+anti.Len() {
			return false
		}
		// Every semijoin tuple appears as some inner join prefix.
		for _, t := range semi.Tuples {
			found := false
			for _, u := range inner.Tuples {
				if u[0].Equal(t[0]) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
