// Package algebra implements the paper's logical algebra for XML processing
// (§1.2.2): a nested relational data model with order, selections,
// projections, value and structural joins (plain, semi, outer, nest and nest
// outer variants), the map meta-operator that applies operators inside nested
// tuples, group-by, unnest, sorting with order descriptors, and the XML
// construction operator.
package algebra

import (
	"fmt"
	"strconv"
	"strings"

	"xamdb/internal/xmltree"
)

// Kind enumerates the kinds of attribute values.
type Kind uint8

const (
	// Null is the ⊥ value.
	Null Kind = iota
	// Str is an atomic string value.
	Str
	// Int is an atomic integer value.
	Int
	// Float is an atomic floating-point value.
	Float
	// ID is a (pre, post, depth) structural identifier.
	ID
	// DeweyID is a navigational Dewey identifier.
	DeweyID
	// Rel is a nested collection of homogeneous tuples.
	Rel
)

func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Str:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case ID:
		return "id"
	case DeweyID:
		return "dewey"
	case Rel:
		return "relation"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is one attribute value: an atom from A, null, or a nested collection.
type Value struct {
	Kind  Kind
	Str   string
	Int   int64
	Float float64
	ID    xmltree.NodeID
	Dewey xmltree.Dewey
	Rel   *Relation
}

// NullValue is the ⊥ constant.
var NullValue = Value{Kind: Null}

// S builds a string value.
func S(s string) Value { return Value{Kind: Str, Str: s} }

// I builds an integer value.
func I(i int64) Value { return Value{Kind: Int, Int: i} }

// F builds a float value.
func F(f float64) Value { return Value{Kind: Float, Float: f} }

// IDV builds a structural-identifier value.
func IDV(id xmltree.NodeID) Value { return Value{Kind: ID, ID: id} }

// DV builds a Dewey identifier value.
func DV(d xmltree.Dewey) Value { return Value{Kind: DeweyID, Dewey: d} }

// RelV builds a nested-collection value.
func RelV(r *Relation) Value { return Value{Kind: Rel, Rel: r} }

// IsNull reports whether v is ⊥.
func (v Value) IsNull() bool { return v.Kind == Null }

// Equal reports deep value equality. Nested relations compare as ordered
// lists of tuples.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case Null:
		return true
	case Str:
		return v.Str == o.Str
	case Int:
		return v.Int == o.Int
	case Float:
		return v.Float == o.Float
	case ID:
		return v.ID == o.ID
	case DeweyID:
		return v.Dewey.Compare(o.Dewey) == 0
	case Rel:
		return v.Rel.Equal(o.Rel)
	}
	return false
}

// Compare orders two atomic values; relations and mismatched kinds are
// incomparable and Compare reports ok=false. Numeric kinds compare
// numerically across Int/Float; strings compare lexicographically; a string
// that parses as a number compares numerically with numeric operands,
// mirroring XQuery's untyped-data comparison rules loosely.
func (v Value) Compare(o Value) (cmp int, ok bool) {
	if v.Kind == Null || o.Kind == Null {
		return 0, false
	}
	if v.Kind == ID && o.Kind == ID {
		switch {
		case v.ID.Pre < o.ID.Pre:
			return -1, true
		case v.ID.Pre > o.ID.Pre:
			return 1, true
		}
		return 0, true
	}
	if v.Kind == DeweyID && o.Kind == DeweyID {
		return v.Dewey.Compare(o.Dewey), true
	}
	vf, vNum := v.asFloat()
	of, oNum := o.asFloat()
	if vNum && oNum {
		switch {
		case vf < of:
			return -1, true
		case vf > of:
			return 1, true
		}
		return 0, true
	}
	if v.Kind == Str && o.Kind == Str {
		return strings.Compare(v.Str, o.Str), true
	}
	return 0, false
}

func (v Value) asFloat() (float64, bool) {
	switch v.Kind {
	case Int:
		return float64(v.Int), true
	case Float:
		return v.Float, true
	case Str:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
		return f, err == nil
	}
	return 0, false
}

// AsString renders an atomic value as text (used by serialization and the
// XML construction operator). Nested relations render recursively.
func (v Value) AsString() string {
	switch v.Kind {
	case Null:
		return ""
	case Str:
		return v.Str
	case Int:
		return strconv.FormatInt(v.Int, 10)
	case Float:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case ID:
		return v.ID.String()
	case DeweyID:
		return v.Dewey.String()
	case Rel:
		var sb strings.Builder
		for i, t := range v.Rel.Tuples {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(t.String())
		}
		return sb.String()
	}
	return ""
}

func (v Value) String() string {
	if v.Kind == Str {
		return strconv.Quote(v.Str)
	}
	if v.Kind == Null {
		return "⊥"
	}
	if v.Kind == Rel {
		return "[" + v.AsString() + "]"
	}
	return v.AsString()
}
