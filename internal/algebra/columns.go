package algebra

import (
	"sync/atomic"

	"xamdb/internal/value"
)

// Columns is the column-major view of a relation: one []Value per top-level
// attribute, all of length NRows. It is the backing the batch execution
// path scans — a batch of tuples is a window over these vectors plus a
// selection, no per-tuple materialization. A Columns is immutable once
// published (extents are immutable after materialization), so it can be
// shared across concurrent queries.
type Columns struct {
	Schema *Schema
	Cols   [][]Value
	NRows  int

	// atoms lazily caches each column's values parsed into formula atoms
	// (value.Str over AsString) — the per-row parse a vectorized σ_φ would
	// otherwise redo on every query over the same extent. One slot per
	// column; racing first computations store equivalent slices.
	atoms []atomic.Pointer[[]value.Atom]
	// nulls caches, per column, the ascending row indexes holding ⊥ —
	// usually empty, letting a filter kernel skip per-row kind checks.
	nulls []atomic.Pointer[[]int32]
}

// NewColumns builds a Columns over pre-built column vectors. All columns
// must have length nrows; the storage layer decodes extents straight into
// this shape.
func NewColumns(schema *Schema, cols [][]Value, nrows int) *Columns {
	return &Columns{Schema: schema, Cols: cols, NRows: nrows,
		atoms: make([]atomic.Pointer[[]value.Atom], len(cols)),
		nulls: make([]atomic.Pointer[[]int32], len(cols))}
}

// Atoms returns column col parsed into formula atoms, computing and caching
// the parse on first use. Null values map to the zero Atom; callers must
// consult the value's kind before trusting the atom (the batch filter skips
// null rows first, matching the row path's null-never-satisfies rule).
func (c *Columns) Atoms(col int) []value.Atom {
	if p := c.atoms[col].Load(); p != nil {
		return *p
	}
	vals := c.Cols[col]
	out := make([]value.Atom, len(vals))
	var nulls []int32
	for i := range vals {
		if vals[i].Kind != Null {
			out[i] = value.Str(vals[i].AsString())
		} else {
			nulls = append(nulls, int32(i))
		}
	}
	// Racing first computations publish equivalent slices; last store wins.
	//xamlint:allow snapshot(idempotent cache fill: every store publishes a freshly built, equivalent parse of the same immutable column)
	c.atoms[col].Store(&out)
	//xamlint:allow snapshot(idempotent cache fill: every store publishes a freshly built, equivalent null index of the same immutable column)
	c.nulls[col].Store(&nulls)
	return out
}

// Nulls returns the ascending row indexes where column col is ⊥ (nil when
// none), computing and caching the index on first use.
func (c *Columns) Nulls(col int) []int32 {
	if p := c.nulls[col].Load(); p != nil {
		return *p
	}
	vals := c.Cols[col]
	var nulls []int32
	for i := range vals {
		if vals[i].Kind == Null {
			nulls = append(nulls, int32(i))
		}
	}
	//xamlint:allow snapshot(idempotent cache fill: every store publishes a freshly built, equivalent null index of the same immutable column)
	c.nulls[col].Store(&nulls)
	return nulls
}

// Relation materializes the columns back into a row-major relation with a
// single backing array (one allocation for all tuples), and caches the
// columns on the result so a batch scan of it is transpose-free.
func (c *Columns) Relation() *Relation {
	w := len(c.Cols)
	rel := NewRelation(c.Schema)
	if c.NRows == 0 {
		//xamlint:allow snapshot(publish to a relation still private to this call: rel was just constructed and has not escaped)
		rel.cols.Store(c)
		return rel
	}
	backing := make([]Value, c.NRows*w)
	tuples := make([]Tuple, c.NRows)
	for i := 0; i < c.NRows; i++ {
		row := backing[i*w : (i+1)*w : (i+1)*w]
		for j := 0; j < w; j++ {
			row[j] = c.Cols[j][i]
		}
		tuples[i] = row
	}
	rel.Tuples = tuples
	//xamlint:allow snapshot(publish to a relation still private to this call: rel was just constructed and has not escaped)
	rel.cols.Store(c)
	return rel
}

// Columns returns the relation's column-major view, transposing and caching
// it on first use. Relations used as extents are immutable once built, so
// the transpose stays valid; racing first calls both compute and publish
// equivalent views.
func (r *Relation) Columns() *Columns {
	if c := r.cols.Load(); c != nil {
		return c
	}
	w := len(r.Schema.Attrs)
	cols := make([][]Value, w)
	if n := len(r.Tuples); n > 0 && w > 0 {
		backing := make([]Value, n*w)
		for j := 0; j < w; j++ {
			cols[j] = backing[j*n : (j+1)*n : (j+1)*n]
		}
		for i, t := range r.Tuples {
			for j := 0; j < w && j < len(t); j++ {
				cols[j][i] = t[j]
			}
		}
	}
	c := NewColumns(r.Schema, cols, len(r.Tuples))
	//xamlint:allow snapshot(idempotent cache fill: every store publishes a freshly built, equivalent transpose of the same immutable relation)
	r.cols.Store(c)
	return c
}
