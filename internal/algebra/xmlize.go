package algebra

import (
	"fmt"
	"strings"

	"xamdb/internal/xmltree"
)

// TemplateKind distinguishes tagging-template node types.
type TemplateKind uint8

const (
	// TElem creates a new element with the given tag around its children
	// (the ν node-creation function of §1.2.2).
	TElem TemplateKind = iota
	// TField splices the atomic value found at Path. With Raw set, the value
	// is parsed as serialized XML content (a Cont attribute) and inserted as
	// subtrees rather than text.
	TField
	// TForEach descends into the collection attribute at Path and evaluates
	// its children once per inner tuple, preserving order.
	TForEach
)

// Template is a tagging template for the xml_templ construction operator.
type Template struct {
	Kind     TemplateKind
	Tag      string // TElem
	Path     string // TField / TForEach (relative to the current schema)
	Raw      bool   // TField: value is serialized XML content
	Children []*Template
}

// Elem builds an element template.
func Elem(tag string, children ...*Template) *Template {
	return &Template{Kind: TElem, Tag: tag, Children: children}
}

// Field builds a text-splicing template.
func Field(path string) *Template { return &Template{Kind: TField, Path: path} }

// RawField builds a content-splicing template.
func RawField(path string) *Template { return &Template{Kind: TField, Path: path, Raw: true} }

// ForEach builds a per-inner-tuple template.
func ForEach(path string, children ...*Template) *Template {
	return &Template{Kind: TForEach, Path: path, Children: children}
}

// frame is one lexical scope level during template instantiation: field
// paths resolve against the innermost frame whose schema knows their first
// component, which lets templates produced for nested query blocks reference
// attributes of enclosing blocks (§3.3.2).
type frame struct {
	schema *Schema
	tuple  Tuple
}

// XMLize implements the xml_templ operator: for every tuple of r it
// instantiates the template, producing a list of freshly created XML nodes.
// It runs in time linear in the constructed output (§1.2.3). An element
// template with an empty tag splices its children without creating a node
// (sequence concatenation).
func XMLize(r *Relation, templ *Template) ([]*xmltree.Node, error) {
	var out []*xmltree.Node
	for _, t := range r.Tuples {
		nodes, err := instantiate(templ, []frame{{r.Schema, t}})
		if err != nil {
			return nil, err
		}
		out = append(out, nodes...)
	}
	return out, nil
}

// lookup resolves a dotted path against the frame stack, innermost first.
func lookup(frames []frame, path string) (Value, error) {
	for i := len(frames) - 1; i >= 0; i-- {
		if _, err := frames[i].schema.Resolve(path); err == nil {
			return resolveValue(frames[i].schema, frames[i].tuple, path)
		}
	}
	return NullValue, fmt.Errorf("algebra: template path %q not found in any scope", path)
}

func instantiate(tp *Template, frames []frame) ([]*xmltree.Node, error) {
	switch tp.Kind {
	case TElem:
		var kids []*xmltree.Node
		for _, c := range tp.Children {
			ks, err := instantiate(c, frames)
			if err != nil {
				return nil, err
			}
			kids = append(kids, ks...)
		}
		if tp.Tag == "" {
			return kids, nil
		}
		elem := xmltree.NewElement(tp.Tag)
		elem.Children = kids
		return []*xmltree.Node{elem}, nil
	case TField:
		v, err := lookup(frames, tp.Path)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			return nil, nil
		}
		if v.Kind == Rel {
			// A collection field splices every member in order.
			var out []*xmltree.Node
			for _, it := range v.Rel.Tuples {
				for i := range it {
					out = append(out, fieldNodes(it[i], tp.Raw)...)
				}
			}
			return out, nil
		}
		return fieldNodes(v, tp.Raw), nil
	case TForEach:
		v, err := lookup(frames, tp.Path)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			return nil, nil
		}
		if v.Kind != Rel {
			return nil, fmt.Errorf("algebra: foreach path %q is not a collection", tp.Path)
		}
		var out []*xmltree.Node
		for _, it := range v.Rel.Tuples {
			for _, c := range tp.Children {
				kids, err := instantiate(c, append(frames, frame{v.Rel.Schema, it}))
				if err != nil {
					return nil, err
				}
				out = append(out, kids...)
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("algebra: unknown template kind %d", tp.Kind)
}

func fieldNodes(v Value, raw bool) []*xmltree.Node {
	if v.IsNull() {
		return nil
	}
	if raw {
		if doc, err := xmltree.Parse("field", v.AsString()); err == nil {
			return []*xmltree.Node{doc.Root}
		}
	}
	return []*xmltree.Node{xmltree.NewText(v.AsString())}
}

// resolveValue follows a dotted path to its value inside t; if the path
// traverses a collection it returns the collection restructured so callers
// can iterate (only single-step traversal deep paths are needed by the
// translations in §3).
func resolveValue(schema *Schema, t Tuple, path string) (Value, error) {
	idx, err := schema.Resolve(path)
	if err != nil {
		return NullValue, err
	}
	cur := t
	curSchema := schema
	for i, j := range idx {
		if i == len(idx)-1 {
			return cur[j], nil
		}
		v := cur[j]
		if v.Kind != Rel {
			return NullValue, nil
		}
		if v.Rel.Len() == 0 {
			return NullValue, nil
		}
		cur = v.Rel.Tuples[0]
		curSchema = curSchema.Attrs[j].Nested
	}
	_ = curSchema
	return NullValue, nil
}

// SerializeNodes renders a node list to a string; convenience for tests and
// for producing serialized query answers.
func SerializeNodes(nodes []*xmltree.Node) string {
	var sb []byte
	for _, n := range nodes {
		d := xmltree.NewDocument("out", n)
		sb = append(sb, d.Serialize()...)
	}
	return string(sb)
}

// String renders the template structure for plan explanations.
func (tp *Template) String() string {
	var sb strings.Builder
	writeTemplate(&sb, tp)
	return sb.String()
}

func writeTemplate(sb *strings.Builder, tp *Template) {
	switch tp.Kind {
	case TElem:
		if tp.Tag == "" {
			for i, c := range tp.Children {
				if i > 0 {
					sb.WriteString(", ")
				}
				writeTemplate(sb, c)
			}
			return
		}
		fmt.Fprintf(sb, "<%s>", tp.Tag)
		for _, c := range tp.Children {
			writeTemplate(sb, c)
		}
		fmt.Fprintf(sb, "</%s>", tp.Tag)
	case TField:
		if tp.Raw {
			fmt.Fprintf(sb, "{%s as xml}", tp.Path)
		} else {
			fmt.Fprintf(sb, "{%s}", tp.Path)
		}
	case TForEach:
		fmt.Fprintf(sb, "{for %s: ", tp.Path)
		for _, c := range tp.Children {
			writeTemplate(sb, c)
		}
		sb.WriteString("}")
	}
}
