package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"xamdb/internal/admission"
	"xamdb/internal/engine"
	"xamdb/internal/obs"
)

// StatusClientClosedRequest is the nginx-convention status for a request
// whose client went away mid-execution; the write usually fails anyway, but
// logs and tests see an honest status.
const StatusClientClosedRequest = 499

// queryRequest is the POST /query body.
type queryRequest struct {
	// Query is the XQuery text (required).
	Query string `json:"query"`
	// TimeoutMS is the client's deadline hint in milliseconds; clamped to
	// the server's MaxDeadline. 0 uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Explain plans without executing; Analyze executes with per-operator
	// instrumentation (EXPLAIN ANALYZE). Explain wins when both are set.
	Explain bool `json:"explain,omitempty"`
	Analyze bool `json:"analyze,omitempty"`
}

// queryResponse is the POST /query response. Outcome uses the admission
// wire names; RetryAfterS mirrors the Retry-After header on 429/503.
type queryResponse struct {
	Outcome      string   `json:"outcome"`
	Result       string   `json:"result,omitempty"`
	Plans        []string `json:"plans,omitempty"`
	Patterns     []string `json:"patterns,omitempty"`
	Degradations int      `json:"degradations,omitempty"`
	Analyze      string   `json:"analyze,omitempty"`
	Error        string   `json:"error,omitempty"`
	QueueWaitNS  int64    `json:"queue_wait_ns"`
	DurationNS   int64    `json:"duration_ns"`
	RetryAfterS  int      `json:"retry_after_s,omitempty"`
}

// handleQuery is the production query path: decode (body capped), admit
// through the controller, execute, map the admission outcome to an HTTP
// status. Every request gets exactly one response and exactly one account:
// 200 served, 400 malformed, 413 oversized, 422 failed or quota-killed,
// 429 shed (Retry-After set), 499 client gone, 503 draining or no
// controller (Retry-After set), 504 deadline.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.ctrl == nil {
		w.Header().Set("Retry-After", "60")
		http.Error(w, "query path not enabled", http.StatusServiceUnavailable)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, MaxQueryBodyBytes)
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "request body over limit", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Query == "" {
		http.Error(w, `missing "query"`, http.StatusBadRequest)
		return
	}

	var (
		out    string
		rep    *engine.Report
		start  = time.Now()
		runFn  func(ctx context.Context) error
		isExpl = req.Explain
	)
	switch {
	case isExpl:
		runFn = func(ctx context.Context) error {
			var err error
			rep, err = s.e.ExplainContext(ctx, req.Query)
			return err
		}
	case req.Analyze:
		runFn = func(ctx context.Context) error {
			var err error
			out, rep, err = s.e.AnalyzeContext(ctx, req.Query)
			return err
		}
	default:
		runFn = func(ctx context.Context) error {
			var err error
			out, rep, err = s.e.QueryContext(ctx, req.Query)
			return err
		}
	}
	res := s.ctrl.Do(r.Context(), time.Duration(req.TimeoutMS)*time.Millisecond, runFn)
	if !res.Ran {
		// The engine never saw the query: record the shed/cancel here so the
		// query log accounts every request, same as the admission counters.
		s.logShed(req.Query, start, res)
	}

	resp := queryResponse{
		Outcome:     res.Outcome.String(),
		QueueWaitNS: int64(res.QueueWait),
		DurationNS:  int64(time.Since(start)),
	}
	if res.Err != nil {
		resp.Error = res.Err.Error()
	}
	if rep != nil {
		resp.Plans = rep.Plans
		resp.Patterns = rep.Patterns
		resp.Degradations = len(rep.Degradations)
		if req.Analyze && !isExpl {
			resp.Analyze = rep.AnalyzeString()
		}
	}
	status := http.StatusOK
	switch res.Outcome {
	case admission.OutcomeServed:
		resp.Result = out
	case admission.OutcomeErrored, admission.OutcomeQuotaKilled:
		status = http.StatusUnprocessableEntity
	case admission.OutcomeDeadline:
		status = http.StatusGatewayTimeout
	case admission.OutcomeCancelled:
		status = StatusClientClosedRequest
	case admission.OutcomeShedQueueFull, admission.OutcomeShedQueueTimeout:
		status = http.StatusTooManyRequests
		resp.RetryAfterS = s.ctrl.RetryAfter()
	case admission.OutcomeShedDraining:
		status = http.StatusServiceUnavailable
		resp.RetryAfterS = s.ctrl.RetryAfter()
	default:
		status = http.StatusInternalServerError
	}
	if resp.RetryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(resp.RetryAfterS))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// logShed records a request the admission layer rejected (or that was
// cancelled while queued) in the engine's query log and workload table, so
// both — like the admission counters — account every request, not just the
// ones that ran.
func (s *Server) logShed(query string, start time.Time, res admission.Result) {
	if s.e.QueryLog == nil && s.e.Workload == nil {
		return
	}
	if len(query) > 256 {
		query = query[:256] + "…"
	}
	rec := obs.QueryRecord{
		TimeUnixNS:  start.UnixNano(),
		Fingerprint: "shed",
		Query:       query,
		Outcome:     res.Outcome.String(),
		DurationNS:  int64(res.QueueWait),
	}
	if res.Err != nil {
		rec.Error = res.Err.Error()
	}
	s.e.Workload.Observe(rec)
	s.e.QueryLog.Record(rec)
}

// admissionResponse is the /debug/admission JSON schema.
type admissionResponse struct {
	Enabled bool             `json:"enabled"`
	Stats   *admission.Stats `json:"stats,omitempty"`
	Config  *admissionConfig `json:"config,omitempty"`
}

// admissionConfig is the exported subset of the controller configuration.
type admissionConfig struct {
	Workers           int   `json:"workers"`
	QueueDepth        int   `json:"queue_depth"`
	QueueTimeoutMS    int64 `json:"queue_timeout_ms"`
	DefaultDeadlineMS int64 `json:"default_deadline_ms"`
	MaxDeadlineMS     int64 `json:"max_deadline_ms"`
	MaxRowsOut        int64 `json:"max_rows_out,omitempty"`
	MaxExtentBytes    int64 `json:"max_extent_bytes,omitempty"`
	MaxTuples         int64 `json:"max_tuples,omitempty"`
	DrainTimeoutMS    int64 `json:"drain_timeout_ms"`
}

func (s *Server) handleAdmission(w http.ResponseWriter, _ *http.Request) {
	if s.ctrl == nil {
		writeJSON(w, admissionResponse{Enabled: false})
		return
	}
	st := s.ctrl.Stats()
	cfg := s.ctrl.Config()
	writeJSON(w, admissionResponse{
		Enabled: true,
		Stats:   &st,
		Config: &admissionConfig{
			Workers:           cfg.Workers,
			QueueDepth:        cfg.QueueDepth,
			QueueTimeoutMS:    cfg.QueueTimeout.Milliseconds(),
			DefaultDeadlineMS: cfg.DefaultDeadline.Milliseconds(),
			MaxDeadlineMS:     cfg.MaxDeadline.Milliseconds(),
			MaxRowsOut:        cfg.MaxRowsOut,
			MaxExtentBytes:    cfg.MaxExtentBytes,
			MaxTuples:         cfg.MaxTuples,
			DrainTimeoutMS:    cfg.DrainTimeout.Milliseconds(),
		},
	})
}
