// Package serve is the engine's HTTP front end: the production query path
// (POST /query, admission-controlled) plus the live monitoring surface —
// Prometheus metrics, the structured query log, catalog and plan-cache
// introspection, admission statistics, health probes and pprof over a
// running engine, so a long-lived process can be queried, scraped, alerted
// on and profiled under load (CLI: uload -serve). See DESIGN.md "Serving &
// monitoring" for the endpoint table and response schemas.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"xamdb/internal/admission"
	"xamdb/internal/engine"
	"xamdb/internal/obs"
)

// ShutdownTimeout bounds how long Serve waits for in-flight requests
// (e.g. a running pprof profile) after its context is cancelled.
const ShutdownTimeout = 5 * time.Second

// MaxQueryBodyBytes caps the POST /query request body; larger bodies are
// rejected with 413 before any parsing.
const MaxQueryBodyBytes = 1 << 20

// maxLogParam caps the ?n / ?k query-log view sizes, so a hostile or
// fat-fingered parameter cannot make one scrape copy the entire retained
// window many times over.
const maxLogParam = 1000

// Embedded http.Server hardening: slowloris-resistant header/body reads, a
// write ceiling generous enough for 30s pprof profiles and max-deadline
// queries, bounded idle keep-alives and header size.
const (
	readHeaderTimeout = 10 * time.Second
	readTimeout       = 30 * time.Second
	idleTimeout       = 2 * time.Minute
	minWriteTimeout   = 2 * time.Minute
	maxHeaderBytes    = 1 << 20
)

// Server exposes one engine's query path and observability over HTTP.
// Create with New (monitoring only) or NewWithQuery (adds the
// admission-controlled POST /query path), bind with Listen, then run Serve
// until the context is cancelled.
type Server struct {
	e    *engine.Engine
	ctrl *admission.Controller
	http *http.Server
	ln   net.Listener
}

// New builds a monitoring-only server over the engine (no /query path).
// The handler is safe for concurrent use alongside live queries and view
// registrations: every endpoint reads copy-on-write snapshots or
// goroutine-safe registries.
func New(e *engine.Engine) *Server {
	return NewWithQuery(e, nil)
}

// NewWithQuery builds a server with the production query path: POST /query
// runs engine queries through the admission controller (bounded worker
// pool, FIFO queue, per-query deadlines and quotas, overload shedding),
// and /debug/admission exposes its accounting. A nil controller serves
// monitoring only, with /query answering 503.
func NewWithQuery(e *engine.Engine, ctrl *admission.Controller) *Server {
	s := &Server{e: e, ctrl: ctrl}
	wt := minWriteTimeout
	if ctrl != nil {
		// The write timeout must outlast the longest admitted query: queue
		// wait + clamped deadline + serialization slack.
		if d := ctrl.Config().MaxDeadline + ctrl.Config().QueueTimeout + 30*time.Second; d > wt {
			wt = d
		}
	}
	s.http = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		WriteTimeout:      wt,
		IdleTimeout:       idleTimeout,
		MaxHeaderBytes:    maxHeaderBytes,
	}
	return s
}

// Handler returns the serving mux:
//
//	/query            POST: admission-controlled query execution (JSON)
//	/metrics          Prometheus text exposition (engine registry + top-K
//	                  workload fingerprint/view series)
//	/debug/queries    query log: recent, slow, top-K by latency, error tail
//	/debug/workload   fingerprint-aggregated workload table + per-view
//	                  attribution (JSON; ?format=table for terminals)
//	/debug/advisor    view advisor: materialization candidates and cold
//	                  views (JSON; ?format=table)
//	/debug/catalog    documents, views, extent states, planning epochs
//	/debug/plancache  rewriting-cache occupancy and hit/miss totals
//	/debug/admission  admission-control accounting and configuration
//	/healthz          liveness (always 200)
//	/readyz           readiness (200 once a document is registered)
//	/debug/pprof/...  net/http/pprof profiles
//
// /debug/workload and /debug/advisor answer 503 with Retry-After while the
// admission controller drains.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/debug/admission", s.handleAdmission)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/queries", s.handleQueries)
	mux.HandleFunc("/debug/workload", s.handleWorkload)
	mux.HandleFunc("/debug/advisor", s.handleAdvisor)
	mux.HandleFunc("/debug/catalog", s.handleCatalog)
	mux.HandleFunc("/debug/plancache", s.handlePlanCache)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Listen binds the server's listener; Addr reports the bound address
// (useful with ":0" in tests).
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	return nil
}

// Addr returns the listener's bound address ("" before Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections on the bound listener until ctx is cancelled,
// then shuts down gracefully: the admission controller drains first —
// while the listener still accepts, so new /query requests get an explicit
// 503 instead of a connection refusal — finishing in-flight queries within
// the controller's drain deadline; then the HTTP server itself shuts down
// and in-flight scrapes finish within ShutdownTimeout. Returns nil on a
// clean context-driven shutdown (a forced query kill at the drain deadline
// surfaces as an error, but shutdown still completes).
func (s *Server) Serve(ctx context.Context) error {
	if s.ln == nil {
		return fmt.Errorf("serve: Serve called before Listen")
	}
	errc := make(chan error, 1)
	go func() { errc <- s.http.Serve(s.ln) }()
	select {
	case <-ctx.Done():
		var drainErr error
		if s.ctrl != nil {
			drainErr = s.ctrl.Drain(s.ctrl.Config().DrainTimeout)
		}
		shCtx, cancel := context.WithTimeout(context.Background(), ShutdownTimeout)
		defer cancel()
		err := s.http.Shutdown(shCtx)
		<-errc // http.Serve has returned ErrServerClosed
		if err != nil {
			return fmt.Errorf("serve: shutdown: %w", err)
		}
		if drainErr != nil {
			return fmt.Errorf("serve: drain: %w", drainErr)
		}
		return nil
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	}
}

// handleMetrics syncs the planning-state gauges and writes the registry
// snapshot in Prometheus text format, with the workload observatory's
// top-K fingerprint and per-view series attached as labeled families.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.e.SyncStateGauges()
	snap := s.e.Registry().Snapshot()
	snap.Labeled = s.e.Workload.PromFamilies(promWorkloadTopK)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := snap.WriteProm(w); err != nil {
		// Headers are gone; all we can do is abort the response body.
		return
	}
}

// queriesResponse is the /debug/queries JSON schema.
type queriesResponse struct {
	SlowThresholdNS int64             `json:"slow_threshold_ns"`
	Recent          []obs.QueryRecord `json:"recent"`
	Slow            []obs.QueryRecord `json:"slow"`
	Top             []obs.QueryRecord `json:"top"`
	Errors          []obs.QueryRecord `json:"errors"`
}

// handleQueries serves the query log: ?n bounds the recent/slow/error
// views (default 50), ?k the top-by-latency view (default 10), and
// ?format=jsonl streams the raw retained window as JSON Lines instead.
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	lg := s.e.QueryLog
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/jsonl")
		_ = lg.WriteJSONL(w)
		return
	}
	n := queryInt(r, "n", 50)
	k := queryInt(r, "k", 10)
	resp := queriesResponse{
		SlowThresholdNS: int64(lg.SlowThreshold()),
		Recent:          orEmpty(lg.Recent(n)),
		Slow:            orEmpty(lg.Slow(n)),
		Top:             orEmpty(lg.TopK(k)),
		Errors:          orEmpty(lg.Errors(n)),
	}
	writeJSON(w, resp)
}

// catalogResponse is the /debug/catalog JSON schema.
type catalogResponse struct {
	Docs []engine.CatalogDoc `json:"docs"`
}

func (s *Server) handleCatalog(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, catalogResponse{Docs: s.e.Catalog()})
}

// planCacheResponse is the /debug/plancache JSON schema; hit/miss totals
// come from the engine's metrics registry.
type planCacheResponse struct {
	Docs      []engine.PlanCacheStat `json:"docs"`
	Hits      int64                  `json:"hits"`
	Misses    int64                  `json:"misses"`
	Evictions int64                  `json:"evictions"`
	HitRatio  float64                `json:"hit_ratio"`
}

func (s *Server) handlePlanCache(w http.ResponseWriter, _ *http.Request) {
	snap := s.e.Registry().Snapshot()
	resp := planCacheResponse{
		Docs:      s.e.PlanCacheStats(),
		Hits:      snap.Counters[engine.MetricPlanCacheHits],
		Misses:    snap.Counters[engine.MetricPlanCacheMisses],
		Evictions: snap.Counters[engine.MetricPlanCacheEvictions],
	}
	if total := resp.Hits + resp.Misses; total > 0 {
		resp.HitRatio = float64(resp.Hits) / float64(total)
	}
	writeJSON(w, resp)
}

// handleReadyz reports ready once the engine serves at least one document
// — before that every query errors, so load balancers should hold traffic.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(s.e.Catalog()) == 0 {
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no documents registered")
		return
	}
	fmt.Fprintln(w, "ready")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// queryInt parses an integer query parameter, falling back to def when
// absent or malformed and clamping to [1, maxLogParam] — a hostile ?n can
// neither dump unbounded views (n ≤ 0 means "all" in the log API) nor
// request absurd copies.
func queryInt(r *http.Request, name string, def int) int {
	v := r.URL.Query().Get(name)
	n, err := strconv.Atoi(v)
	if v == "" || err != nil {
		n = def
	}
	if n < 1 {
		n = 1
	}
	if n > maxLogParam {
		n = maxLogParam
	}
	return n
}

// orEmpty keeps JSON arrays as [] rather than null for empty views.
func orEmpty(recs []obs.QueryRecord) []obs.QueryRecord {
	if recs == nil {
		return []obs.QueryRecord{}
	}
	return recs
}
