package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xamdb/internal/admission"
	"xamdb/internal/obs"
)

// TestWorkloadEndpoints drives /debug/workload and /debug/advisor over a
// warm engine: the aggregate table carries both the view-served and the
// base-scanned fingerprints with per-view attribution, the advisor ranks
// the base-scanned pattern as the top candidate, and /metrics carries the
// labeled top-K series.
func TestWorkloadEndpoints(t *testing.T) {
	e := newEngine(t)
	// Served by vt.
	for i := 0; i < 2; i++ {
		if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
			t.Fatal(err)
		}
	}
	// No view covers authors: base scans — the advisor's target.
	for i := 0; i < 4; i++ {
		if _, _, err := e.Query(`doc("bib.xml")//book/author`); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(New(e).Handler())
	defer ts.Close()

	code, body := get(t, ts, "/debug/workload")
	if code != http.StatusOK {
		t.Fatalf("/debug/workload status %d", code)
	}
	var wr struct {
		Workload *obs.WorkloadSnapshot `json:"workload"`
	}
	if err := json.Unmarshal([]byte(body), &wr); err != nil {
		t.Fatalf("/debug/workload JSON: %v\n%s", err, body)
	}
	if wr.Workload.TotalQueries != 6 || len(wr.Workload.Fingerprints) != 2 {
		t.Fatalf("workload snapshot: %+v", wr.Workload)
	}
	if top := wr.Workload.Fingerprints[0]; top.Count != 4 || top.BaseScans != 4 {
		t.Fatalf("count-descending order broken: %+v", top)
	}
	if len(wr.Workload.Views) != 1 || wr.Workload.Views[0].View != "vt" ||
		wr.Workload.Views[0].Queries != 2 {
		t.Fatalf("view attribution: %+v", wr.Workload.Views)
	}

	// ?n clamps the fingerprint rows; ?format=table renders text.
	code, body = get(t, ts, "/debug/workload?n=1")
	if code != http.StatusOK {
		t.Fatalf("?n=1 status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &wr); err != nil || len(wr.Workload.Fingerprints) != 1 {
		t.Fatalf("?n=1 must keep one row: %v\n%s", err, body)
	}
	code, body = get(t, ts, "/debug/workload?format=table")
	if code != http.StatusOK || !strings.Contains(body, "fingerprint") {
		t.Fatalf("table render: %d\n%s", code, body)
	}

	code, body = get(t, ts, "/debug/advisor")
	if code != http.StatusOK {
		t.Fatalf("/debug/advisor status %d", code)
	}
	var ar struct {
		Advisor *obs.AdvisorReport `json:"advisor"`
	}
	if err := json.Unmarshal([]byte(body), &ar); err != nil {
		t.Fatalf("/debug/advisor JSON: %v\n%s", err, body)
	}
	if len(ar.Advisor.Candidates) == 0 ||
		!strings.Contains(ar.Advisor.Candidates[0].Query, "author") {
		t.Fatalf("advisor must rank the base-scanned author query first: %+v", ar.Advisor)
	}
	code, body = get(t, ts, "/debug/advisor?format=table")
	if code != http.StatusOK || !strings.Contains(body, "advisor:") {
		t.Fatalf("advisor table render: %d\n%s", code, body)
	}

	// /metrics carries the labeled workload series.
	code, body = get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE engine_workload_fingerprint_queries counter",
		`engine_workload_view_queries{view="vt"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestWorkloadEndpointsDrainGuard pins the documented drain behavior: both
// workload endpoints answer 503 with Retry-After while the controller
// drains.
func TestWorkloadEndpointsDrainGuard(t *testing.T) {
	e := newEngine(t)
	ctrl := admission.New(testCtrlConfig())
	ts := httptest.NewServer(NewWithQuery(e, ctrl).Handler())
	defer ts.Close()

	ctrl.Drain(10 * time.Millisecond)
	for _, path := range []string{"/debug/workload", "/debug/advisor"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s during drain: status %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s during drain must carry Retry-After", path)
		}
	}
}

// TestWorkloadEndpointNilObservatory pins that a disabled observatory
// serves empty (not erroring) responses.
func TestWorkloadEndpointNilObservatory(t *testing.T) {
	e := newEngine(t)
	e.Workload = nil
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(e).Handler())
	defer ts.Close()
	code, body := get(t, ts, "/debug/workload")
	if code != http.StatusOK || !strings.Contains(body, `"total_queries": 0`) {
		t.Fatalf("nil observatory: %d\n%s", code, body)
	}
	if code, _ := get(t, ts, "/debug/advisor"); code != http.StatusOK {
		t.Fatalf("nil observatory advisor: %d", code)
	}
}
