package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xamdb/internal/engine"
	"xamdb/internal/obs"
)

const bibXML = `<bib>
  <book year="1999">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
  </book>
  <book year="2002">
    <title>The Syntactic Web</title>
    <author>Tom Lerners-Bee</author>
  </book>
</bib>`

// newEngine builds an engine with one document and one content view.
func newEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New()
	if err := e.LoadDocument("bib.xml", bibXML); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	return e
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestEndpoints drives every monitoring endpoint over a warm engine and
// checks the load-bearing content of each response.
func TestEndpoints(t *testing.T) {
	e := newEngine(t)
	// Threshold of 1ns marks everything slow; running the same query twice
	// makes the second run instrumented (slow-query capture), so its
	// record carries both the trace and the operator stats.
	e.QueryLog = obs.NewQueryLog(32, time.Nanosecond)
	for i := 0; i < 2; i++ {
		if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := e.Query(`doc("`); err == nil {
		t.Fatal("parse error expected")
	}
	ts := httptest.NewServer(New(e).Handler())
	defer ts.Close()

	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE engine_queries counter",
		"engine_queries 3",
		"engine_query_ns_bucket{le=",
		"engine_plan_cache_size 1",
		"engine_view_extents_built 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, ts, "/debug/queries")
	if code != http.StatusOK {
		t.Fatalf("/debug/queries status %d", code)
	}
	var qr struct {
		SlowThresholdNS int64             `json:"slow_threshold_ns"`
		Recent          []obs.QueryRecord `json:"recent"`
		Slow            []obs.QueryRecord `json:"slow"`
		Top             []obs.QueryRecord `json:"top"`
		Errors          []obs.QueryRecord `json:"errors"`
	}
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatalf("/debug/queries JSON: %v\n%s", err, body)
	}
	if qr.SlowThresholdNS != 1 || len(qr.Recent) != 3 || len(qr.Top) != 3 {
		t.Fatalf("query views wrong: thr=%d recent=%d top=%d", qr.SlowThresholdNS, len(qr.Recent), len(qr.Top))
	}
	if len(qr.Errors) != 1 || !strings.Contains(qr.Errors[0].Error, "parse") {
		t.Fatalf("error tail must carry the failed query: %+v", qr.Errors)
	}
	// The second (instrumented) run of the slow query retains trace + ops.
	second := qr.Slow[1] // newest-first: [0]=failed parse, [1]=2nd title query
	if len(second.Trace) == 0 {
		t.Fatalf("slow query must retain its trace: %+v", second)
	}
	if len(second.Ops) == 0 {
		t.Fatalf("recurring slow query must retain operator stats: %+v", second)
	}
	if !strings.Contains(string(second.Ops), "rows") {
		t.Fatalf("operator stats must carry row counts: %s", second.Ops)
	}

	code, body = get(t, ts, "/debug/queries?format=jsonl")
	if code != http.StatusOK || len(strings.Split(strings.TrimSpace(body), "\n")) != 3 {
		t.Fatalf("JSONL export wrong (status %d):\n%s", code, body)
	}

	code, body = get(t, ts, "/debug/catalog")
	if code != http.StatusOK {
		t.Fatalf("/debug/catalog status %d", code)
	}
	var cat struct {
		Docs []engine.CatalogDoc `json:"docs"`
	}
	if err := json.Unmarshal([]byte(body), &cat); err != nil {
		t.Fatalf("/debug/catalog JSON: %v\n%s", err, body)
	}
	if len(cat.Docs) != 1 || cat.Docs[0].Doc != "bib.xml" || cat.Docs[0].Epoch != 1 {
		t.Fatalf("catalog wrong: %+v", cat.Docs)
	}
	if len(cat.Docs[0].Views) != 1 || cat.Docs[0].Views[0].Extent != engine.ExtentBuilt {
		t.Fatalf("view extent state must be visible: %+v", cat.Docs[0].Views)
	}

	code, body = get(t, ts, "/debug/plancache")
	if code != http.StatusOK {
		t.Fatalf("/debug/plancache status %d", code)
	}
	var pc struct {
		Docs     []engine.PlanCacheStat `json:"docs"`
		Hits     int64                  `json:"hits"`
		Misses   int64                  `json:"misses"`
		HitRatio float64                `json:"hit_ratio"`
	}
	if err := json.Unmarshal([]byte(body), &pc); err != nil {
		t.Fatalf("/debug/plancache JSON: %v\n%s", err, body)
	}
	if len(pc.Docs) != 1 || pc.Docs[0].Entries != 1 || pc.Hits != 1 || pc.Misses != 1 || pc.HitRatio != 0.5 {
		t.Fatalf("plan cache stats wrong: %+v hits=%d misses=%d ratio=%v", pc.Docs, pc.Hits, pc.Misses, pc.HitRatio)
	}

	if code, body = get(t, ts, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, _ = get(t, ts, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz: %d", code)
	}
	if code, _ = get(t, ts, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}

// TestReadyzHoldsTrafficWithoutDocuments checks the readiness probe fails
// until a document is registered.
func TestReadyzHoldsTrafficWithoutDocuments(t *testing.T) {
	e := engine.New()
	ts := httptest.NewServer(New(e).Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz on empty engine: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("/readyz 503 must carry Retry-After so probes back off")
	}
	if err := e.LoadDocument("bib.xml", bibXML); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, ts, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after registration: %d, want 200", code)
	}
}

// TestServeGracefulShutdown binds a real listener, scrapes it, cancels the
// context and checks Serve returns cleanly.
func TestServeGracefulShutdown(t *testing.T) {
	s := New(newEngine(t))
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx) }()

	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over real listener: %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown must return nil: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
}

// TestConcurrentScrapeWhileQuerying is the -race proof for the monitoring
// surface: workers hammer the engine with queries and registrations while
// scrapers hit every endpoint.
func TestConcurrentScrapeWhileQuerying(t *testing.T) {
	e := newEngine(t)
	e.QueryLog = obs.NewQueryLog(64, time.Nanosecond)
	ts := httptest.NewServer(New(e).Handler())
	defer ts.Close()

	const workers, iters = 4, 25
	var wg sync.WaitGroup
	errc := make(chan error, workers*2+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, _, err := e.QueryContext(context.Background(), `doc("bib.xml")//book/title`); err != nil {
					errc <- err
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, path := range []string{"/metrics", "/debug/queries", "/debug/catalog", "/debug/plancache", "/readyz"} {
					resp, err := ts.Client().Get(ts.URL + path)
					if err != nil {
						errc <- err
						return
					}
					_, err = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if err != nil {
						errc <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errc <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // churn the catalog mid-scrape
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := e.RegisterView("bib.xml", fmt.Sprintf("vx%d", i), `// book(/ author{cont})`); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := e.Registry().Snapshot().Counters[engine.MetricQueries]; got != workers*iters {
		t.Fatalf("engine.queries = %d, want %d", got, workers*iters)
	}
}
