package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xamdb/internal/admission"
	"xamdb/internal/faultinject"
	"xamdb/internal/obs"
)

// testCtrlConfig is a small, fast admission configuration for tests.
func testCtrlConfig() admission.Config {
	return admission.Config{
		Workers:         2,
		QueueDepth:      4,
		QueueTimeout:    500 * time.Millisecond,
		DefaultDeadline: 2 * time.Second,
		MaxDeadline:     4 * time.Second,
		DrainTimeout:    time.Second,
		Metrics:         obs.NewRegistry(),
	}
}

// postQuery POSTs one /query request and decodes the JSON response.
func postQuery(t *testing.T, ts *httptest.Server, body string) (int, http.Header, queryResponse) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var qr queryResponse
	if resp.StatusCode != http.StatusBadRequest &&
		resp.StatusCode != http.StatusRequestEntityTooLarge &&
		resp.StatusCode != http.StatusMethodNotAllowed {
		if err := json.Unmarshal(data, &qr); err != nil {
			t.Fatalf("bad response JSON (%d): %v: %s", resp.StatusCode, err, data)
		}
	}
	return resp.StatusCode, resp.Header, qr
}

// TestQueryServed checks the happy path: a query runs through admission and
// returns rows plus its plan.
func TestQueryServed(t *testing.T) {
	e := newEngine(t)
	ctrl := admission.New(testCtrlConfig())
	defer ctrl.Drain(time.Second)
	s := NewWithQuery(e, ctrl)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _, qr := postQuery(t, ts, `{"query":"doc(\"bib.xml\")//book/title"}`)
	if code != http.StatusOK || qr.Outcome != "served" {
		t.Fatalf("code=%d resp=%+v", code, qr)
	}
	if !strings.Contains(qr.Result, "<title>Data on the Web</title>") {
		t.Fatalf("result: %q", qr.Result)
	}
	if len(qr.Plans) != 1 {
		t.Fatalf("plans: %+v", qr.Plans)
	}
}

// TestQueryExplainAndAnalyze checks the explain/analyze modes.
func TestQueryExplainAndAnalyze(t *testing.T) {
	e := newEngine(t)
	ctrl := admission.New(testCtrlConfig())
	defer ctrl.Drain(time.Second)
	ts := httptest.NewServer(NewWithQuery(e, ctrl).Handler())
	defer ts.Close()

	code, _, qr := postQuery(t, ts, `{"query":"doc(\"bib.xml\")//book/title","explain":true}`)
	if code != http.StatusOK || qr.Result != "" || len(qr.Plans) != 1 {
		t.Fatalf("explain: code=%d resp=%+v", code, qr)
	}
	code, _, qr = postQuery(t, ts, `{"query":"doc(\"bib.xml\")//book/title","analyze":true}`)
	if code != http.StatusOK || qr.Result == "" || qr.Analyze == "" {
		t.Fatalf("analyze: code=%d resp=%+v", code, qr)
	}
}

// TestQueryBadRequests checks the malformed-input edges: wrong method,
// broken JSON, missing query text, oversized body.
func TestQueryBadRequests(t *testing.T) {
	e := newEngine(t)
	ctrl := admission.New(testCtrlConfig())
	defer ctrl.Drain(time.Second)
	ts := httptest.NewServer(NewWithQuery(e, ctrl).Handler())
	defer ts.Close()

	if code, _ := get(t, ts, "/query"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: %d", code)
	}
	if code, _, _ := postQuery(t, ts, `{not json`); code != http.StatusBadRequest {
		t.Fatalf("broken JSON: %d", code)
	}
	if code, _, _ := postQuery(t, ts, `{}`); code != http.StatusBadRequest {
		t.Fatalf("missing query: %d", code)
	}
	big := fmt.Sprintf(`{"query":%q}`, strings.Repeat("x", MaxQueryBodyBytes+1))
	if code, _, _ := postQuery(t, ts, big); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d", code)
	}
	// A failing query (unknown document) is 422 with the error surfaced.
	code, _, qr := postQuery(t, ts, `{"query":"doc(\"nope.xml\")//x"}`)
	if code != http.StatusUnprocessableEntity || qr.Outcome != "error" || qr.Error == "" {
		t.Fatalf("failed query: code=%d resp=%+v", code, qr)
	}
}

// TestQueryWithoutController checks monitoring-only servers answer /query
// with an explicit 503, not a 404.
func TestQueryWithoutController(t *testing.T) {
	ts := httptest.NewServer(New(newEngine(t)).Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"query":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("code=%d retry-after=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestQueryQuotaKilled checks a quota-limited server answers an over-quota
// query with 422 and outcome quota_killed.
func TestQueryQuotaKilled(t *testing.T) {
	e := newEngine(t)
	cfg := testCtrlConfig()
	cfg.MaxRowsOut = 1 // the test query yields 2 titles
	ctrl := admission.New(cfg)
	defer ctrl.Drain(time.Second)
	ts := httptest.NewServer(NewWithQuery(e, ctrl).Handler())
	defer ts.Close()

	code, _, qr := postQuery(t, ts, `{"query":"doc(\"bib.xml\")//book/title"}`)
	if code != http.StatusUnprocessableEntity || qr.Outcome != "quota_killed" {
		t.Fatalf("code=%d resp=%+v", code, qr)
	}
	if qr.Result != "" {
		t.Fatalf("over-quota result leaked: %q", qr.Result)
	}
}

// TestQueryOverloadSheds saturates a tiny pool with slow queries and checks
// excess requests get 429 with Retry-After while nothing is dropped.
func TestQueryOverloadSheds(t *testing.T) {
	e := newEngine(t)
	cfg := testCtrlConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	ctrl := admission.New(cfg)
	defer ctrl.Drain(2 * time.Second)
	ts := httptest.NewServer(NewWithQuery(e, ctrl).Handler())
	defer ts.Close()

	// Block the single worker via an armed dispatch fault that sleeps?
	// Simpler: flood with concurrent queries; with 1 worker + 1 queue slot,
	// some must shed. Every response must be 200 or 429.
	const n = 12
	var wg sync.WaitGroup
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/query", "application/json",
				strings.NewReader(`{"query":"doc(\"bib.xml\")//book/title"}`))
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				codes <- -2
				return
			}
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	tally := map[int]int{}
	for c := range codes {
		tally[c]++
	}
	if tally[-1] > 0 || tally[-2] > 0 {
		t.Fatalf("transport errors or missing Retry-After: %v", tally)
	}
	for c := range tally {
		if c != http.StatusOK && c != http.StatusTooManyRequests {
			t.Fatalf("unexpected status %d: %v", c, tally)
		}
	}
	st := ctrl.Stats()
	if st.Submitted != n || st.Accounted() != n {
		t.Fatalf("unaccounted requests: %+v (accounted %d)", st, st.Accounted())
	}
}

// TestQuerySheddedRequestsLogged checks shed requests land in the query log
// with their shed outcome (the engine never saw them).
func TestQuerySheddedRequestsLogged(t *testing.T) {
	e := newEngine(t)
	ctrl := admission.New(testCtrlConfig())
	ts := httptest.NewServer(NewWithQuery(e, ctrl).Handler())
	defer ts.Close()

	ctrl.Drain(10 * time.Millisecond) // draining: everything sheds
	code, hdr, qr := postQuery(t, ts, `{"query":"doc(\"bib.xml\")//book/title"}`)
	if code != http.StatusServiceUnavailable || qr.Outcome != "shed:draining" {
		t.Fatalf("code=%d resp=%+v", code, qr)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 must carry Retry-After")
	}
	recent := e.QueryLog.Recent(1)
	if len(recent) != 1 || recent[0].Outcome != "shed:draining" {
		t.Fatalf("shed not logged: %+v", recent)
	}
}

// TestQueryWorkerPanicDoesNotKillServer arms a panic at the dispatch fault
// site and checks the server answers 422 and keeps serving.
func TestQueryWorkerPanicDoesNotKillServer(t *testing.T) {
	defer faultinject.Reset()
	e := newEngine(t)
	ctrl := admission.New(testCtrlConfig())
	defer ctrl.Drain(time.Second)
	ts := httptest.NewServer(NewWithQuery(e, ctrl).Handler())
	defer ts.Close()

	faultinject.Arm(admission.SiteDispatch, faultinject.Fault{PanicWith: "worker bug"})
	code, _, qr := postQuery(t, ts, `{"query":"doc(\"bib.xml\")//book/title"}`)
	if code != http.StatusUnprocessableEntity || qr.Outcome != "error" {
		t.Fatalf("panic request: code=%d resp=%+v", code, qr)
	}
	faultinject.Disarm(admission.SiteDispatch)
	code, _, qr = postQuery(t, ts, `{"query":"doc(\"bib.xml\")//book/title"}`)
	if code != http.StatusOK || qr.Outcome != "served" {
		t.Fatalf("post-panic request: code=%d resp=%+v", code, qr)
	}
}

// TestQueryLogParamsClamped checks ?n/?k are clamped instead of trusted.
func TestQueryLogParamsClamped(t *testing.T) {
	e := newEngine(t)
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(e).Handler())
	defer ts.Close()
	for _, q := range []string{"?n=-5&k=0", "?n=999999999&k=999999999", "?n=abc&k=xyz", ""} {
		code, body := get(t, ts, "/debug/queries"+q)
		if code != http.StatusOK {
			t.Fatalf("GET /debug/queries%s: %d", q, code)
		}
		var resp queriesResponse
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("GET /debug/queries%s: %v", q, err)
		}
		if len(resp.Recent) < 1 {
			t.Fatalf("clamped params must still return records: %s", q)
		}
	}
}

// TestDebugAdmission checks the admission introspection endpoint.
func TestDebugAdmission(t *testing.T) {
	e := newEngine(t)
	ctrl := admission.New(testCtrlConfig())
	defer ctrl.Drain(time.Second)
	ts := httptest.NewServer(NewWithQuery(e, ctrl).Handler())
	defer ts.Close()

	postQuery(t, ts, `{"query":"doc(\"bib.xml\")//book/title"}`)
	code, body := get(t, ts, "/debug/admission")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/admission: %d", code)
	}
	var resp admissionResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Enabled || resp.Stats == nil || resp.Stats.Served != 1 || resp.Config.Workers != 2 {
		t.Fatalf("admission response: %s", body)
	}

	// Monitoring-only server reports disabled.
	ts2 := httptest.NewServer(New(e).Handler())
	defer ts2.Close()
	_, body = get(t, ts2, "/debug/admission")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Enabled {
		t.Fatalf("monitoring-only server must report admission disabled: %s", body)
	}
}

// TestServeDrainsOnShutdown is the graceful-drain contract test: with an
// in-flight query, cancelling Serve's context (SIGTERM path) lets the query
// finish, answers new requests 503, and returns within the drain deadline.
func TestServeDrainsOnShutdown(t *testing.T) {
	e := newEngine(t)
	cfg := testCtrlConfig()
	cfg.DrainTimeout = 2 * time.Second
	ctrl := admission.New(cfg)
	s := NewWithQuery(e, ctrl)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx) }()
	base := "http://" + s.Addr()

	// Hold a slot with a slow in-flight query (engine-agnostic: submit
	// directly through the controller so we control its duration).
	release := make(chan struct{})
	started := make(chan struct{})
	inflight := make(chan admission.Result, 1)
	go func() {
		inflight <- ctrl.Do(context.Background(), 0, func(qctx context.Context) error {
			close(started)
			select {
			case <-release:
				return nil
			case <-qctx.Done():
				return qctx.Err()
			}
		})
	}()
	<-started

	cancel() // SIGTERM: drain starts, listener still answering
	waitDraining := time.Now().Add(time.Second)
	for !ctrl.Draining() {
		if time.Now().After(waitDraining) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	// New queries during drain must get an explicit 503.
	resp, err := http.Post(base+"/query", "application/json",
		bytes.NewReader([]byte(`{"query":"doc(\"bib.xml\")//book/title"}`)))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("during drain: %d", resp.StatusCode)
		}
	}
	close(release) // let the in-flight query finish
	if r := <-inflight; r.Outcome != admission.OutcomeServed {
		t.Fatalf("in-flight query must complete during drain: %+v", r)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("clean drain shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not exit within the drain deadline")
	}
}

// TestServeDrainDeadlineBounds checks a hung query cannot hold up shutdown
// past the drain deadline: the query is killed and Serve reports the forced
// drain.
func TestServeDrainDeadlineBounds(t *testing.T) {
	e := newEngine(t)
	cfg := testCtrlConfig()
	cfg.DrainTimeout = 100 * time.Millisecond
	ctrl := admission.New(cfg)
	s := NewWithQuery(e, ctrl)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx) }()

	started := make(chan struct{})
	inflight := make(chan admission.Result, 1)
	go func() {
		inflight <- ctrl.Do(context.Background(), 0, func(qctx context.Context) error {
			close(started)
			<-qctx.Done() // hung until killed
			return context.Cause(qctx)
		})
	}()
	<-started

	t0 := time.Now()
	cancel()
	select {
	case err := <-serveErr:
		if err == nil || !strings.Contains(err.Error(), "drain") {
			t.Fatalf("forced drain must surface: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve hung past the drain deadline")
	}
	if el := time.Since(t0); el > 6*time.Second {
		t.Fatalf("shutdown took %v", el)
	}
	if r := <-inflight; r.Outcome != admission.OutcomeCancelled {
		t.Fatalf("hung query must be force-killed: %+v", r)
	}
	st := ctrl.Stats()
	if st.Submitted != st.Accounted() {
		t.Fatalf("unaccounted after forced drain: %+v", st)
	}
}
