package serve

import (
	"fmt"
	"net/http"
	"strconv"

	"xamdb/internal/obs"
)

// promWorkloadTopK bounds how many per-fingerprint series the /metrics
// exposition carries (the full table stays on /debug/workload); label
// cardinality is a scrape-storage cost, not a table cost.
const promWorkloadTopK = 10

// guardDraining answers 503 + Retry-After while the admission controller
// drains, so scrapers back off the observability surface during shutdown
// the same way queries are shed. Returns true when the request was
// answered.
func (s *Server) guardDraining(w http.ResponseWriter) bool {
	if s.ctrl == nil || !s.ctrl.Draining() {
		return false
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.ctrl.RetryAfter()))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, "draining")
	return true
}

// workloadResponse is the /debug/workload JSON schema.
type workloadResponse struct {
	Workload *obs.WorkloadSnapshot `json:"workload"`
}

// handleWorkload serves the workload observatory: the fingerprint
// aggregate table (count-descending) and the per-view attribution index.
// ?n bounds the fingerprint rows (default 50); ?format=table renders the
// human-readable tables instead of JSON.
func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	if s.guardDraining(w) {
		return
	}
	snap := s.e.Workload.Snapshot()
	if n := queryInt(r, "n", 50); len(snap.Fingerprints) > n {
		snap.Fingerprints = snap.Fingerprints[:n]
	}
	if r.URL.Query().Get("format") == "table" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, snap.String())
		return
	}
	writeJSON(w, workloadResponse{Workload: snap})
}

// advisorResponse is the /debug/advisor JSON schema.
type advisorResponse struct {
	Advisor *obs.AdvisorReport `json:"advisor"`
}

// handleAdvisor serves the view advisor's report: materialization
// candidates (hot fingerprints still base-scanning or carrying residual
// selections, scored frequency × latency) and cold views. ?n bounds both
// lists (default 20); ?format=table renders the human-readable tables.
func (s *Server) handleAdvisor(w http.ResponseWriter, r *http.Request) {
	if s.guardDraining(w) {
		return
	}
	n := queryInt(r, "n", 20)
	rep := s.e.Advise(obs.AdvisorOptions{MaxCandidates: n, MaxColdViews: n})
	if r.URL.Query().Get("format") == "table" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, rep.String())
		return
	}
	writeJSON(w, advisorResponse{Advisor: rep})
}
