// Package datagen produces deterministic synthetic XML documents whose
// path-summary shapes mimic the data sets of the thesis's evaluation
// (Figure 4.13): XMark auction data (with the recursive parlist/listitem
// markup that inflates its summary), DBLP-style bibliographies,
// Shakespeare-style plays, and Nasa/SwissProt-style scientific records.
// Real benchmark files are unavailable offline; these generators substitute
// for them — containment and rewriting costs depend on the summary and the
// patterns, which the generators reproduce, not on raw document bytes.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"xamdb/internal/xmltree"
)

var words = strings.Fields(`the quick brown fox jumps over lazy dog web data
semistructured query pattern view index summary access module rewriting
containment algebra storage engine auction item person bid keyword gold
silver shipping description creditcard category europe asia africa history
science nature deep blue red green large small ancient modern abstract`)

type gen struct {
	rng *rand.Rand
}

func newGen(seed int64) *gen { return &gen{rng: rand.New(rand.NewSource(seed))} }

func (g *gen) word() string { return words[g.rng.Intn(len(words))] }

func (g *gen) text(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = g.word()
	}
	return strings.Join(parts, " ")
}

func (g *gen) intn(n int) int { return g.rng.Intn(n) }

func el(label string, children ...*xmltree.Node) *xmltree.Node {
	return xmltree.NewElement(label, children...)
}

func txt(s string) *xmltree.Node { return xmltree.NewText(s) }

func attr(name, v string) *xmltree.Node { return xmltree.NewAttr(name, v) }

// XMark generates an XMark-like auction document. items controls the number
// of items per region (6 regions); people and auctions scale the other
// sections. The recursive description markup (parlist/listitem/text with
// bold, emph, keyword) reproduces XMark's large summaries.
func XMark(items, people, auctions int) *xmltree.Document {
	g := newGen(7)
	regions := el("regions")
	for _, r := range []string{"africa", "asia", "australia", "europe", "namerica", "samerica"} {
		region := el(r)
		for i := 0; i < items; i++ {
			region.Children = append(region.Children, g.xmarkItem(r, i))
		}
		regions.Children = append(regions.Children, region)
	}
	ppl := el("people")
	for i := 0; i < people; i++ {
		ppl.Children = append(ppl.Children, g.xmarkPerson(i))
	}
	open := el("open_auctions")
	closed := el("closed_auctions")
	for i := 0; i < auctions; i++ {
		open.Children = append(open.Children, g.xmarkOpenAuction(i))
		closed.Children = append(closed.Children, g.xmarkClosedAuction(i))
	}
	cats := el("categories")
	for i := 0; i < max(1, items/2); i++ {
		cats.Children = append(cats.Children,
			el("category", attr("id", fmt.Sprintf("category%d", i)),
				el("name", txt(g.word())),
				el("description", g.parlist(2))))
	}
	root := el("site", regions, cats, el("catgraph"), ppl, open, closed)
	return xmltree.NewDocument("xmark.xml", root)
}

func (g *gen) xmarkItem(region string, i int) *xmltree.Node {
	item := el("item", attr("id", fmt.Sprintf("item_%s_%d", region, i)),
		el("location", txt(g.word())),
		el("quantity", txt(fmt.Sprint(1+g.intn(5)))),
		el("name", txt(g.text(2))),
		el("payment", txt("Creditcard")),
		el("description", g.parlist(3)),
		el("shipping", txt(g.word())))
	mailbox := el("mailbox")
	for m := 0; m <= g.intn(3); m++ {
		mailbox.Children = append(mailbox.Children,
			el("mail",
				el("from", txt(g.word())),
				el("to", txt(g.word())),
				el("date", txt(fmt.Sprintf("%02d/%02d/%d", 1+g.intn(12), 1+g.intn(28), 1998+g.intn(8)))),
				el("text", g.richText()...)))
	}
	item.Children = append(item.Children, mailbox)
	item.Children = append(item.Children, el("incategory", attr("category", fmt.Sprintf("category%d", g.intn(3)))))
	return item
}

// parlist builds the recursive description structure that dominates XMark
// summaries: parlist → listitem → (text | parlist) …
func (g *gen) parlist(depth int) *xmltree.Node {
	pl := el("parlist")
	for i := 0; i <= g.intn(2); i++ {
		li := el("listitem")
		if depth > 0 && g.intn(3) == 0 {
			li.Children = append(li.Children, g.parlist(depth-1))
		} else {
			li.Children = append(li.Children, el("text", g.richText()...))
		}
		pl.Children = append(pl.Children, li)
	}
	return pl
}

// richText yields mixed content with the markup tags (bold, emph, keyword)
// that make XMark summaries wide.
func (g *gen) richText() []*xmltree.Node {
	out := []*xmltree.Node{txt(g.text(3))}
	if g.intn(2) == 0 {
		out = append(out, el("bold", txt(g.word())))
	}
	if g.intn(2) == 0 {
		out = append(out, el("keyword", txt(g.word()), el("emph", txt(g.word()))))
	}
	if g.intn(3) == 0 {
		out = append(out, el("emph", txt(g.word()), el("bold", txt(g.word()))))
	}
	out = append(out, txt(g.word()))
	return out
}

func (g *gen) xmarkPerson(i int) *xmltree.Node {
	p := el("person", attr("id", fmt.Sprintf("person%d", i)),
		el("name", txt(g.text(2))),
		el("emailaddress", txt(g.word()+"@example.com")))
	if g.intn(2) == 0 {
		p.Children = append(p.Children, el("phone", txt(fmt.Sprint(g.intn(999999)))))
	}
	if g.intn(2) == 0 {
		p.Children = append(p.Children,
			el("address",
				el("street", txt(g.text(2))),
				el("city", txt(g.word())),
				el("country", txt(g.word()))))
	}
	if g.intn(3) == 0 {
		p.Children = append(p.Children,
			el("profile", attr("income", fmt.Sprint(20000+g.intn(80000))),
				el("interest", attr("category", fmt.Sprintf("category%d", g.intn(3)))),
				el("education", txt("Graduate School")),
				el("business", txt("No"))))
	}
	p.Children = append(p.Children, el("watches",
		el("watch", attr("open_auction", fmt.Sprintf("open_auction%d", g.intn(10))))))
	return p
}

func (g *gen) xmarkOpenAuction(i int) *xmltree.Node {
	a := el("open_auction", attr("id", fmt.Sprintf("open_auction%d", i)),
		el("initial", txt(fmt.Sprintf("%d.%02d", 1+g.intn(200), g.intn(100)))),
		el("reserve", txt(fmt.Sprint(10+g.intn(100)))))
	for b := 0; b <= g.intn(3); b++ {
		a.Children = append(a.Children,
			el("bidder",
				el("date", txt(fmt.Sprintf("%02d/%02d/2001", 1+g.intn(12), 1+g.intn(28)))),
				el("personref", attr("person", fmt.Sprintf("person%d", g.intn(20)))),
				el("increase", txt(fmt.Sprintf("%d.00", 1+g.intn(20))))))
	}
	a.Children = append(a.Children,
		el("current", txt(fmt.Sprint(20+g.intn(300)))),
		el("itemref", attr("item", fmt.Sprintf("item_europe_%d", g.intn(5)))),
		el("seller", attr("person", fmt.Sprintf("person%d", g.intn(20)))),
		el("annotation",
			el("author", attr("person", fmt.Sprintf("person%d", g.intn(20)))),
			el("description", el("text", g.richText()...)),
			el("happiness", txt(fmt.Sprint(1+g.intn(10))))),
		el("quantity", txt("1")),
		el("type", txt("Regular")),
		el("interval",
			el("start", txt("01/01/2001")),
			el("end", txt("12/31/2001"))))
	return a
}

func (g *gen) xmarkClosedAuction(i int) *xmltree.Node {
	return el("closed_auction",
		el("seller", attr("person", fmt.Sprintf("person%d", g.intn(20)))),
		el("buyer", attr("person", fmt.Sprintf("person%d", g.intn(20)))),
		el("itemref", attr("item", fmt.Sprintf("item_asia_%d", g.intn(5)))),
		el("price", txt(fmt.Sprintf("%d.00", 10+g.intn(500)))),
		el("date", txt("07/04/2001")),
		el("quantity", txt("1")),
		el("type", txt("Regular")),
		el("annotation",
			el("author", attr("person", fmt.Sprintf("person%d", g.intn(20)))),
			el("description", g.parlist(2)),
			el("happiness", txt(fmt.Sprint(1+g.intn(10))))))
}

// DBLP generates a DBLP-like bibliography with pubs entries spread over the
// usual publication types.
func DBLP(pubs int) *xmltree.Document {
	g := newGen(11)
	root := el("dblp")
	kinds := []string{"article", "inproceedings", "book", "phdthesis", "mastersthesis", "www"}
	for i := 0; i < pubs; i++ {
		kind := kinds[i%len(kinds)]
		pub := el(kind, attr("key", fmt.Sprintf("%s/%d", kind, i)), attr("mdate", "2002-01-03"))
		for a := 0; a <= g.intn(3); a++ {
			pub.Children = append(pub.Children, el("author", txt(g.text(2))))
		}
		pub.Children = append(pub.Children,
			el("title", txt(g.text(4))),
			el("year", txt(fmt.Sprint(1990+g.intn(15)))))
		switch kind {
		case "article":
			pub.Children = append(pub.Children,
				el("journal", txt(g.text(2))),
				el("volume", txt(fmt.Sprint(1+g.intn(40)))),
				el("pages", txt(fmt.Sprintf("%d-%d", g.intn(100), 100+g.intn(100)))))
			if g.intn(2) == 0 {
				pub.Children = append(pub.Children, el("ee", txt("http://doi.example/"+g.word())))
			}
		case "inproceedings":
			pub.Children = append(pub.Children,
				el("booktitle", txt(g.text(2))),
				el("pages", txt(fmt.Sprintf("%d-%d", g.intn(100), 100+g.intn(100)))),
				el("crossref", txt("conf/"+g.word())))
		case "book":
			pub.Children = append(pub.Children,
				el("publisher", txt(g.word())),
				el("isbn", txt(fmt.Sprint(1000000+g.intn(8999999)))))
		case "phdthesis", "mastersthesis":
			pub.Children = append(pub.Children, el("school", txt(g.text(2))))
		case "www":
			pub.Children = append(pub.Children, el("url", txt("http://"+g.word()+".example.org")))
		}
		if g.intn(4) == 0 {
			pub.Children = append(pub.Children, el("cite", txt("...")))
		}
		root.Children = append(root.Children, pub)
	}
	return xmltree.NewDocument("dblp.xml", root)
}

// Shakespeare generates a play-shaped document (acts × scenes).
func Shakespeare(acts, scenes int) *xmltree.Document {
	g := newGen(13)
	play := el("PLAY",
		el("TITLE", txt("The Tragedy of "+g.word())),
		el("FM", el("P", txt(g.text(6)))),
		el("PERSONAE",
			el("TITLE", txt("Dramatis Personae")),
			el("PERSONA", txt(g.text(2))),
			el("PGROUP", el("PERSONA", txt(g.text(2))), el("GRPDESCR", txt(g.word()))),
			el("PERSONA", txt(g.text(2)))),
		el("SCNDESCR", txt(g.text(4))),
		el("PLAYSUBT", txt(g.word())))
	for a := 0; a < acts; a++ {
		act := el("ACT", el("TITLE", txt(fmt.Sprintf("ACT %d", a+1))))
		for s := 0; s < scenes; s++ {
			scene := el("SCENE", el("TITLE", txt(fmt.Sprintf("SCENE %d", s+1))),
				el("STAGEDIR", txt(g.text(3))))
			for sp := 0; sp <= 2+g.intn(4); sp++ {
				speech := el("SPEECH", el("SPEAKER", txt(strings.ToUpper(g.word()))))
				for l := 0; l <= 1+g.intn(4); l++ {
					speech.Children = append(speech.Children, el("LINE", txt(g.text(6))))
				}
				scene.Children = append(scene.Children, speech)
			}
			act.Children = append(act.Children, scene)
		}
		play.Children = append(play.Children, act)
	}
	return xmltree.NewDocument("shakespeare.xml", play)
}

// Nasa generates astronomical dataset records.
func Nasa(datasets int) *xmltree.Document {
	g := newGen(17)
	root := el("datasets")
	for i := 0; i < datasets; i++ {
		ds := el("dataset", attr("subject", "astronomy"),
			el("title", txt(g.text(3))),
			el("altname", attr("type", "ADC"), txt(g.word())),
			el("reference",
				el("source",
					el("other",
						el("title", txt(g.text(3))),
						el("author",
							el("initial", txt("J")),
							el("lastName", txt(g.word()))),
						el("name", txt(g.text(2))),
						el("publisher", txt(g.word())),
						el("city", txt(g.word())),
						el("date", el("year", txt(fmt.Sprint(1970+g.intn(30)))))))),
			el("keywords", attr("parentListURL", "http://example.org"),
				el("keyword", txt(g.word())),
				el("keyword", txt(g.word()))),
			el("descriptions",
				el("description",
					el("para", txt(g.text(10)))),
				el("details", txt(g.text(4)))),
			el("identifier", txt(fmt.Sprintf("I_%d", i))))
		if g.intn(2) == 0 {
			ds.Children = append(ds.Children,
				el("tableHead",
					el("tableLinks", el("tableLink", attr("url", "http://x"))),
					el("fields",
						el("field",
							el("name", txt(g.word())),
							el("definition", txt(g.text(4)))))))
		}
		if g.intn(3) == 0 {
			ds.Children = append(ds.Children,
				el("history",
					el("ingest", el("creator",
						el("lastName", txt(g.word()))), el("date", el("year", txt("1999"))))))
		}
		root.Children = append(root.Children, ds)
	}
	return xmltree.NewDocument("nasa.xml", root)
}

// SwissProt generates protein entries.
func SwissProt(entries int) *xmltree.Document {
	g := newGen(19)
	root := el("root")
	for i := 0; i < entries; i++ {
		e := el("Entry", attr("id", fmt.Sprintf("P%05d", i)), attr("seqlen", fmt.Sprint(100+g.intn(900))),
			el("AC", txt(fmt.Sprintf("Q%05d", i))),
			el("Mod", attr("date", "01-JAN-1998"), attr("version", fmt.Sprint(1+g.intn(30)))),
			el("Descr", txt(g.text(4))),
			el("Species", txt(g.word()+" "+g.word())),
			el("Org", txt(g.word())))
		for r := 0; r <= g.intn(3); r++ {
			ref := el("Ref", attr("num", fmt.Sprint(r+1)), attr("pos", "1-100"),
				el("Comment", txt(g.text(3))),
				el("DB", txt("MEDLINE")),
				el("MedlineID", txt(fmt.Sprint(90000000+g.intn(9999999)))))
			for a := 0; a <= g.intn(3); a++ {
				ref.Children = append(ref.Children, el("Author", txt(g.word()+" "+strings.ToUpper(g.word()[:1])+".")))
			}
			ref.Children = append(ref.Children, el("Cite", txt(g.text(4))))
			e.Children = append(e.Children, ref)
		}
		e.Children = append(e.Children,
			el("EMBL", txt(g.word())),
			el("INTERPRO", txt(g.word())),
			el("PFAM", txt(g.word())))
		feats := el("Features")
		// SwissProt's summary breadth comes from its many feature kinds,
		// each a distinct path with the same Descr/From/To shape.
		kinds := []string{"DOMAIN", "CHAIN", "BINDING", "TRANSMEM", "DISULFID",
			"CONFLICT", "MUTAGEN", "SIGNAL", "CARBOHYD", "ACT_SITE", "NP_BIND",
			"MOD_RES", "METAL", "REPEAT", "ZN_FING", "PROPEP", "VARSPLIC",
			"INIT_MET", "SIMILAR", "PEPTIDE"}
		for f := 0; f <= 2+g.intn(4); f++ {
			kind := kinds[g.intn(len(kinds))]
			feats.Children = append(feats.Children,
				el(kind,
					el("Descr", txt(g.text(2))),
					el("From", txt(fmt.Sprint(g.intn(100)))),
					el("To", txt(fmt.Sprint(100+g.intn(100))))))
		}
		e.Children = append(e.Children, feats)
		// Cross-reference databases, each its own element name.
		dbs := []string{"PROSITE", "PRINTS", "PDB", "MIM", "GCRDB", "AARHUS",
			"DICTYDB", "ECOGENE", "FLYBASE", "MAIZEDB", "MGD", "REBASE",
			"SGD", "STYGENE", "SUBTILIST", "TIGR", "TRANSFAC", "WORMPEP",
			"YEPD", "ZFIN"}
		for d := 0; d <= g.intn(5); d++ {
			e.Children = append(e.Children, el(dbs[g.intn(len(dbs))], txt(g.word())))
		}
		if g.intn(3) == 0 {
			e.Children = append(e.Children,
				el("Keyword", txt(g.word())),
				el("Gene", el("Name", txt(strings.ToUpper(g.word())))))
		}
		root.Children = append(root.Children, e)
	}
	return xmltree.NewDocument("swissprot.xml", root)
}

// SerialItems generates the predicate-selectivity stand-in: n items whose
// <num> child holds the serial 0..n-1, so a range predicate num < k selects
// exactly k items (selectivity k/n is dialed directly). Each item also
// carries a payload plus filler children, so base evaluation pays realistic
// per-item navigation cost that a value-storing view avoids.
func SerialItems(n int) *xmltree.Document {
	g := newGen(29)
	root := el("items")
	for i := 0; i < n; i++ {
		item := el("item",
			el("num", txt(fmt.Sprint(i))),
			el("payload", txt(g.text(3))),
			el("kind", txt(g.word())),
			el("note", txt(g.text(2))),
			el("source", txt(g.word())))
		root.Children = append(root.Children, item)
	}
	return xmltree.NewDocument("items.xml", root)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
