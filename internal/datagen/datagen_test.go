package datagen

import (
	"testing"

	"xamdb/internal/summary"
)

func TestGeneratorsDeterministic(t *testing.T) {
	a := XMark(3, 5, 4)
	b := XMark(3, 5, 4)
	if a.Serialize() != b.Serialize() {
		t.Fatal("XMark not deterministic")
	}
	if DBLP(20).Serialize() != DBLP(20).Serialize() {
		t.Fatal("DBLP not deterministic")
	}
}

func TestXMarkShape(t *testing.T) {
	doc := XMark(4, 10, 8)
	s := summary.Build(doc)
	// Key XMark paths must exist.
	for _, p := range []string{
		"/site/regions/europe/item/description/parlist/listitem",
		"/site/people/person/name",
		"/site/open_auctions/open_auction/bidder/increase",
		"/site/closed_auctions/closed_auction/price",
	} {
		if s.NodeByPath(p) == nil {
			t.Errorf("missing path %s", p)
		}
	}
	// Recursive parlist must unfold at least once somewhere.
	found := false
	for _, n := range s.Nodes() {
		if n.Label == "parlist" && n.Parent != nil && n.Parent.Label == "listitem" {
			found = true
		}
	}
	if !found {
		t.Error("no recursive parlist unfolding")
	}
	// The summary should be in the hundreds of paths, like real XMark.
	if s.Size() < 200 {
		t.Errorf("summary too small: %d", s.Size())
	}
	if doc.Size() < 2000 {
		t.Errorf("document too small: %d nodes", doc.Size())
	}
}

func TestDBLPShape(t *testing.T) {
	s := summary.Build(DBLP(60))
	for _, p := range []string{
		"/dblp/article/author", "/dblp/article/title", "/dblp/article/year",
		"/dblp/inproceedings/booktitle", "/dblp/phdthesis/school", "/dblp/book/publisher",
	} {
		if s.NodeByPath(p) == nil {
			t.Errorf("missing path %s", p)
		}
	}
	// DBLP summaries are much smaller than XMark ones (Figure 4.13).
	if s.Size() > 120 {
		t.Errorf("dblp summary unexpectedly large: %d", s.Size())
	}
}

func TestOtherShapes(t *testing.T) {
	sh := summary.Build(Shakespeare(3, 3))
	if sh.NodeByPath("/PLAY/ACT/SCENE/SPEECH/LINE") == nil {
		t.Error("missing Shakespeare path")
	}
	na := summary.Build(Nasa(20))
	if na.NodeByPath("/datasets/dataset/reference/source/other/author/lastName") == nil {
		t.Error("missing Nasa path")
	}
	sp := summary.Build(SwissProt(20))
	if sp.NodeByPath("/root/Entry/Features/DOMAIN/Descr") == nil {
		t.Error("missing SwissProt path")
	}
	// Relative summary sizes mirror Figure 4.13's ordering:
	// Shakespeare < Nasa < SwissProt-ish.
	if !(sh.Size() < na.Size()) {
		t.Errorf("expected |S(shakespeare)|=%d < |S(nasa)|=%d", sh.Size(), na.Size())
	}
}

func TestSummariesStableAcrossScale(t *testing.T) {
	// Summaries grow little as documents grow (Figure 4.13's observation).
	small := summary.Build(XMark(2, 4, 3)).Size()
	large := summary.Build(XMark(6, 20, 12)).Size()
	if large < small {
		t.Fatalf("summary shrank: %d -> %d", small, large)
	}
	if float64(large) > 1.6*float64(small) {
		t.Fatalf("summary grew too much: %d -> %d", small, large)
	}
}
