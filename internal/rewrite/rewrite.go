package rewrite

import (
	"fmt"
	"sort"

	"xamdb/internal/algebra"
	"xamdb/internal/containment"
	"xamdb/internal/faultinject"
	"xamdb/internal/summary"
	"xamdb/internal/value"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
)

// Options bounds the generate-and-test search.
type Options struct {
	// MaxJoinDepth limits composed plans: 0 = single views only, 1 = one
	// join, 2 = two joins (default 2).
	MaxJoinDepth int
	// DisableUnions switches off union rewritings.
	DisableUnions bool
	// DisableDerive switches off navigational parent-ID derivation.
	DisableDerive bool
	// MaxPlans stops the search after this many rewritings (0 = unlimited).
	MaxPlans int
	// MaxCandidates caps the generated plan pool (default 3000).
	MaxCandidates int
	// DisablePruning turns off summary-based view relevance pruning.
	DisablePruning bool
}

// Rewriter finds S-equivalent plans for query patterns over a fixed set of
// views.
type Rewriter struct {
	S     *summary.Summary
	Views []*View
	Opts  Options
}

// NewRewriter prepares views for rewriting: node names are made globally
// unique ("view_node") so composed plans have unambiguous columns. Extents
// registered in an Env must be produced from the returned views' patterns.
func NewRewriter(s *summary.Summary, views []*View, opts Options) *Rewriter {
	if opts.MaxJoinDepth == 0 {
		opts.MaxJoinDepth = 2
	}
	renamed := make([]*View, len(views))
	for i, v := range views {
		p := v.Pattern.Clone()
		for _, n := range p.Nodes() {
			n.Name = v.Name + "_" + n.Name
		}
		renamed[i] = &View{Name: v.Name, Pattern: p}
	}
	return &Rewriter{S: s, Views: renamed, Opts: opts}
}

// Rewriting is one S-equivalent plan for a query pattern, with the column
// correspondence to the query's schema.
type Rewriting struct {
	Plan Plan
	// Query is the rewritten pattern.
	Query *xam.Pattern
}

// Execute runs the plan and renames its output schema to the query pattern's
// schema (positionally — equivalence guarantees isomorphic shapes).
func (rw *Rewriting) Execute(env Env) (*algebra.Relation, error) {
	r, err := rw.Plan.Execute(env)
	if err != nil {
		return nil, err
	}
	return rw.AlignSchema(r)
}

// AlignSchema renames a plan-output relation to the query pattern's schema
// (positionally — equivalence guarantees isomorphic shapes), recursing into
// nested collections. The physical execution path produces relations in the
// plan's candidate-attribute naming and uses this for the same final rename
// the logical Execute applies.
func (rw *Rewriting) AlignSchema(rel *algebra.Relation) (*algebra.Relation, error) {
	return renameTo(rel, rw.Query.Schema())
}

// renameTo renames rel's schema to target if the shapes agree. Nested
// collection values carry their own schema inside each tuple, so collections
// are renamed recursively — otherwise template paths would not resolve
// inside them.
func renameTo(rel *algebra.Relation, target *algebra.Schema) (*algebra.Relation, error) {
	if len(rel.Schema.Attrs) != len(target.Attrs) {
		return nil, fmt.Errorf("rewrite: output shape mismatch: %s vs %s", rel.Schema, target)
	}
	out := algebra.NewRelation(target)
	nested := false
	for _, a := range target.Attrs {
		if a.Nested != nil {
			nested = true
			break
		}
	}
	if !nested {
		out.Tuples = rel.Tuples
		return out, nil
	}
	for _, t := range rel.Tuples {
		nt := t.Clone()
		for i, a := range target.Attrs {
			if a.Nested == nil || nt[i].Kind != algebra.Rel {
				continue
			}
			inner, err := renameTo(nt[i].Rel, a.Nested)
			if err != nil {
				return nil, err
			}
			nt[i] = algebra.RelV(inner)
		}
		out.Add(nt)
	}
	return out, nil
}

// Rewrite computes a set of non-redundant S-equivalent plans for q, cheapest
// first. An empty result means no rewriting exists over the registered views.
func (r *Rewriter) Rewrite(q *xam.Pattern) ([]*Rewriting, error) {
	needs, flatOK := queryNeeds(q)
	var results []*Rewriting
	seen := map[string]bool{}
	addResult := func(p Plan) {
		if seen[p.String()] {
			return
		}
		seen[p.String()] = true
		results = append(results, &Rewriting{Plan: p, Query: q})
	}
	limit := func() bool {
		return r.Opts.MaxPlans > 0 && len(results) >= r.Opts.MaxPlans
	}

	// Candidate pool: base scans over relevant views, plus derived and
	// joined combinations. Relevance pruning keeps only views whose
	// annotated nodes can share summary paths with the query (Definition
	// 4.3.1 path annotations); irrelevant views can never participate in an
	// equivalent plan.
	relevant := r.Views
	if !r.Opts.DisablePruning {
		relevant = r.relevantViews(q)
	}
	maxCands := r.Opts.MaxCandidates
	if maxCands == 0 {
		maxCands = 3000
	}
	var pool []Plan
	for _, v := range relevant {
		pool = append(pool, &ScanPlan{View: v})
	}
	if !r.Opts.DisableDerive {
		for _, v := range relevant {
			pool = append(pool, derivePlans(&ScanPlan{View: v})...)
		}
	}
	// Predicate absorption pushes residual selections onto the view scans
	// before composition: σ_φ over a scan compiles to a fused filtered scan,
	// so joins downstream run over the already-filtered extent instead of
	// filtering after the join.
	pool = append(pool, r.selectionVariants(pool, q, maxCands)...)
	pool = dedupPlans(pool)
	nestSems := queryNestSems(q)
	base := append([]Plan{}, pool...)
	frontier := base
	for depth := 1; depth <= r.Opts.MaxJoinDepth && len(frontier) > 0 && len(pool) < maxCands; depth++ {
		var next []Plan
		for _, left := range frontier {
			for _, right := range base {
				next = append(next, composePlans(left, right, nestSems)...)
				if len(pool)+len(next) >= maxCands {
					break
				}
			}
			if len(pool)+len(next) >= maxCands {
				break
			}
		}
		next = dedupPlans(next)
		pool = append(pool, next...)
		frontier = next
	}
	pool = dedupPlans(pool)

	// Selection variants guided by the query's labels and value predicates
	// (the σ_name=… selections of QEP4/QEP5).
	pool = append(pool, r.selectionVariants(pool, q, maxCands)...)
	pool = dedupPlans(pool)

	// Test candidates cheapest-first: exact or projected equivalence,
	// trying every monotone return-node assignment. Distinct plans with the
	// same equivalent pattern are tested once.
	sort.SliceStable(pool, func(i, j int) bool { return pool[i].Cost() < pool[j].Cost() })
	checker := containment.NewChecker(r.S, q)
	seenPattern := map[string]bool{}
	var containedParts []*fitted
	for _, cand := range pool {
		if limit() {
			break
		}
		for _, f := range r.fits(cand, q, needs, flatOK) {
			if k := f.pattern.String(); seenPattern[k] {
				continue
			} else {
				seenPattern[k] = true
			}
			// Cheap direction first: q ⊆ f using the cached model of q; most
			// candidates fail here without computing their own model.
			back, err := checker.QContainedIn(f.pattern)
			if err != nil {
				return nil, err
			}
			sub := false
			if back {
				sub, _, err = containment.ContainedInUnionBounded(f.pattern, []*xam.Pattern{q}, r.S, maxCandidateModel)
				if err != nil {
					return nil, err
				}
				if sub {
					addResult(f.plan)
					break
				}
			}
			if r.Opts.DisableUnions || back || len(containedParts) >= maxUnionParts {
				continue
			}
			// Keep one-way contained candidates as union parts.
			sub, _, err = containment.ContainedInUnionBounded(f.pattern, []*xam.Pattern{q}, r.S, maxCandidateModel)
			if err != nil {
				return nil, err
			}
			if sub {
				containedParts = append(containedParts, f)
			}
		}
	}

	// Union rewritings: a set of contained parts whose union contains q.
	if !r.Opts.DisableUnions && !limit() && len(containedParts) > 1 {
		if u, err := r.unionCover(checker, containedParts); err != nil {
			return nil, err
		} else if u != nil {
			addResult(u)
		}
	}

	sort.SliceStable(results, func(i, j int) bool {
		return results[i].Plan.Cost() < results[j].Plan.Cost()
	})
	return results, nil
}

// maxCandidateModel caps canonical models of candidate plan patterns: a
// candidate whose model exceeds it is skipped ("don't know" is sound — some
// other plan will cover the query, or none is reported).
const maxCandidateModel = 2000

// maxUnionParts caps the contained-part pool fed to the union cover search.
const maxUnionParts = 16

// fitted pairs a plan (already projected to the query's needs) with its
// equivalent pattern.
type fitted struct {
	plan    Plan
	pattern *xam.Pattern
}

// need describes the attributes one query return node requires.
type need struct {
	id, tag, val, cont bool
	nestDepth          int
}

func nodeNeed(q *xam.Pattern, n *xam.Node) need {
	return need{
		id:        n.IDSpec != xam.NoID,
		tag:       n.StoreTag,
		val:       n.StoreVal,
		cont:      n.StoreCont,
		nestDepth: containment.NestDepth(q, n),
	}
}

// queryNeeds lists the query's return-node requirements in pre-order and
// reports whether all needed attributes are top-level (projectable).
func queryNeeds(q *xam.Pattern) ([]need, bool) {
	var needs []need
	flat := true
	for _, n := range q.ReturnNodes() {
		nd := nodeNeed(q, n)
		if nd.nestDepth > 0 {
			flat = false
		}
		needs = append(needs, nd)
	}
	return needs, flat
}

// fits matches the plan's pattern to the query needs: the exact fit (the
// pattern's return nodes line up with the query's) plus every monotone
// projection assignment of pattern nodes to query needs (bounded).
func (r *Rewriter) fits(p Plan, q *xam.Pattern, needs []need, flatOK bool) []*fitted {
	pat := p.Pattern()
	if pat == nil {
		return nil
	}
	var out []*fitted
	rets := pat.ReturnNodes()
	if len(rets) == len(needs) {
		ok := true
		for i, n := range rets {
			if nodeNeed(pat, n) != needs[i] {
				ok = false
				break
			}
		}
		if ok {
			if !flatOK {
				// Exact nested fit: reshape to the pattern's schema order —
				// composed nest joins append collections after the outer
				// columns, which need not match pattern pre-order.
				var attrs []string
				for _, n := range rets {
					attrs = append(attrs, nodeAttrs(pat, n)...)
				}
				proj := &ProjectPlan{In: p, Attrs: attrs, Nested: true}
				return []*fitted{{plan: proj, pattern: proj.Pattern()}}
			}
			// Flat exact fit: order the columns by pattern pre-order so the
			// output aligns with the query schema (composed plans append
			// derived or joined columns out of order).
			var attrs []string
			for _, n := range rets {
				attrs = append(attrs, nodeAttrs(pat, n)...)
			}
			proj := &ProjectPlan{In: p, Attrs: attrs}
			return []*fitted{{plan: proj, pattern: proj.Pattern()}}
		}
	}
	if !flatOK {
		return r.nestedFits(p, pat, q)
	}
	// Nested collections hide data the projection cannot reach.
	for _, n := range pat.Nodes() {
		if containment.NestDepth(pat, n) > 0 && n.StoresAnything() {
			return nil
		}
	}
	nodes := pat.Nodes()
	const maxAssignments = 6
	var rec func(ni, di int, attrs []string)
	rec = func(ni, di int, attrs []string) {
		if len(out) >= maxAssignments {
			return
		}
		if di == len(needs) {
			proj := &ProjectPlan{In: p, Attrs: append([]string{}, attrs...)}
			out = append(out, &fitted{plan: proj, pattern: proj.Pattern()})
			return
		}
		for i := ni; i < len(nodes); i++ {
			n := nodes[i]
			nd := needs[di]
			have := nodeNeed(pat, n)
			if have.nestDepth != 0 {
				continue
			}
			if (nd.id && !have.id) || (nd.tag && !have.tag) || (nd.val && !have.val) || (nd.cont && !have.cont) {
				continue
			}
			var add []string
			if nd.id {
				add = append(add, n.Name+".ID")
			}
			if nd.tag {
				add = append(add, n.Name+".Tag")
			}
			if nd.val {
				add = append(add, n.Name+".Val")
			}
			if nd.cont {
				add = append(add, n.Name+".Cont")
			}
			rec(i+1, di+1, append(attrs, add...))
		}
	}
	rec(0, 0, nil)
	return out
}

// nodeAttrs lists the stored attribute columns of a pattern node, in the
// canonical ID/Tag/Val/Cont order.
func nodeAttrs(pat *xam.Pattern, n *xam.Node) []string {
	nd := nodeNeed(pat, n)
	var attrs []string
	if nd.id {
		attrs = append(attrs, n.Name+".ID")
	}
	if nd.tag {
		attrs = append(attrs, n.Name+".Tag")
	}
	if nd.val {
		attrs = append(attrs, n.Name+".Val")
	}
	if nd.cont {
		attrs = append(attrs, n.Name+".Cont")
	}
	return attrs
}

// shapeUnit is one element of a pattern's return shape in schema order:
// either the stored attributes of one node (flat; coll is false) or a
// nest-edge collection (sub holds the subtree's shape, possibly empty).
type shapeUnit struct {
	node *xam.Node
	nd   need // flat units: the node's stored attributes (nestDepth unused)
	coll bool
	sem  xam.EdgeSem // collection units: the nest edge's semantics
	sub  []shapeUnit
}

// returnShape lists a pattern's return shape, mirroring Pattern.Schema: s
// edges contribute nothing, j/o edges splice the child's units flat, nj/no
// edges contribute one collection unit.
func returnShape(pat *xam.Pattern) []shapeUnit {
	var walkNode func(n *xam.Node) []shapeUnit
	walkEdges := func(edges []*xam.Edge) []shapeUnit {
		var units []shapeUnit
		for _, e := range edges {
			switch {
			case e.Sem == xam.SemSemi:
			case e.Sem.Nested():
				units = append(units, shapeUnit{node: e.Child, coll: true, sem: e.Sem, sub: walkNode(e.Child)})
			default:
				units = append(units, walkNode(e.Child)...)
			}
		}
		return units
	}
	walkNode = func(n *xam.Node) []shapeUnit {
		var units []shapeUnit
		if n.StoresAnything() {
			units = append(units, shapeUnit{node: n, nd: need{
				id: n.IDSpec != xam.NoID, tag: n.StoreTag, val: n.StoreVal, cont: n.StoreCont,
			}})
		}
		return append(units, walkEdges(n.Edges)...)
	}
	return walkEdges(pat.Top)
}

// nestedFits matches a nested query's return shape against the candidate's:
// the shape-level generalization of the flat monotone assignment, erasing
// unneeded attributes inside collections via a reshaping projection.
func (r *Rewriter) nestedFits(p Plan, pat, q *xam.Pattern) []*fitted {
	const maxAssignments = 6
	keeps := matchShape(returnShape(q), returnShape(pat), maxAssignments)
	var out []*fitted
	for _, keep := range keeps {
		proj := &ProjectPlan{In: p, Attrs: keep, Nested: true}
		if fp := proj.Pattern(); fp != nil {
			out = append(out, &fitted{plan: proj, pattern: fp})
		}
	}
	return out
}

// matchShape aligns the query's return shape against a candidate's,
// producing up to limit keep-attribute lists. Flat candidate units may be
// skipped (projected away); collection units may not — a nest edge always
// contributes a schema attribute, even when its subtree stores nothing — so
// collections must match one-to-one, in order, with the same edge semantics,
// and their subtrees match recursively.
func matchShape(qs, cs []shapeUnit, limit int) [][]string {
	if limit <= 0 {
		return nil
	}
	if len(qs) == 0 {
		for _, cu := range cs {
			if cu.coll {
				return nil
			}
		}
		return [][]string{nil}
	}
	qu := qs[0]
	var out [][]string
	for j := 0; j < len(cs); j++ {
		cu := cs[j]
		if cu.coll {
			if !qu.coll || qu.sem != cu.sem {
				return out // an unmatched candidate collection blocks the scan
			}
			inners := matchShape(qu.sub, cu.sub, limit-len(out))
			if len(inners) == 0 {
				return out
			}
			rests := matchShape(qs[1:], cs[j+1:], limit-len(out))
			for _, in := range inners {
				for _, rest := range rests {
					out = append(out, concatKeep(in, rest))
					if len(out) >= limit {
						return out
					}
				}
			}
			return out
		}
		if qu.coll {
			continue // project this flat candidate unit away
		}
		nd, have := qu.nd, cu.nd
		if (nd.id && !have.id) || (nd.tag && !have.tag) || (nd.val && !have.val) || (nd.cont && !have.cont) {
			continue
		}
		var add []string
		if nd.id {
			add = append(add, cu.node.Name+".ID")
		}
		if nd.tag {
			add = append(add, cu.node.Name+".Tag")
		}
		if nd.val {
			add = append(add, cu.node.Name+".Val")
		}
		if nd.cont {
			add = append(add, cu.node.Name+".Cont")
		}
		for _, rest := range matchShape(qs[1:], cs[j+1:], limit-len(out)) {
			out = append(out, concatKeep(add, rest))
			if len(out) >= limit {
				return out
			}
		}
	}
	return out
}

func concatKeep(a, b []string) []string {
	return append(append([]string{}, a...), b...)
}

// queryNestSems lists the nest-edge semantics (nj, no) the query uses, so
// plan composition only proposes nest joins that can appear in an equivalent
// pattern.
func queryNestSems(q *xam.Pattern) []xam.EdgeSem {
	seen := map[xam.EdgeSem]bool{}
	var out []xam.EdgeSem
	var walk func(edges []*xam.Edge)
	walk = func(edges []*xam.Edge) {
		for _, e := range edges {
			if e.Sem.Nested() && !seen[e.Sem] {
				seen[e.Sem] = true
				out = append(out, e.Sem)
			}
			walk(e.Child.Edges)
		}
	}
	walk(q.Top)
	return out
}

// selectionVariants proposes σ(Tag=…) and σ(φ(Val)) augmentations of pooled
// plans, guided by the query's constant labels and value predicates. Each
// selection set is generated once (selections apply to nodes in pre-order).
func (r *Rewriter) selectionVariants(pool []Plan, q *xam.Pattern, maxCands int) []Plan {
	var labels []string
	type predInfo struct {
		f   value.Formula
		src []string
	}
	var preds []predInfo
	seenLabel := map[string]bool{}
	for _, n := range q.Nodes() {
		if !n.Wildcard() && !n.IsAttribute() && !seenLabel[n.Label] {
			seenLabel[n.Label] = true
			labels = append(labels, n.Label)
		}
		if n.HasValuePred {
			preds = append(preds, predInfo{f: n.ValuePred, src: n.PredSrc})
		}
	}
	if len(labels) == 0 && len(preds) == 0 {
		return nil
	}
	var out []Plan
	for _, pl := range pool {
		pat := pl.Pattern()
		if pat == nil {
			continue
		}
		nodes := pat.Nodes()
		var rec func(idx int, cur Plan)
		rec = func(idx int, cur Plan) {
			if len(out) >= maxCands {
				return
			}
			for j := idx; j < len(nodes); j++ {
				n := nodes[j]
				if n.Wildcard() && n.StoreTag {
					for _, l := range labels {
						next := &SelectTagPlan{In: cur, Node: n.Name, Label: l}
						out = append(out, next)
						rec(j+1, next)
					}
				}
				if n.StoreVal {
					for _, pi := range preds {
						if n.HasValuePred {
							// Absorption (φq ⇒ φv): the decorated view keeps
							// every row φq selects, so σ_φq is a sound
							// residual; if the decoration is already exact
							// the bare plan needs no selection at all.
							a, ok := containment.AbsorbPredicate(pi.f, n.ValuePred)
							if !ok || a.Exact {
								continue
							}
						}
						next := &SelectValPlan{In: cur, Node: n.Name, Formula: pi.f, Src: pi.src}
						out = append(out, next)
						rec(j+1, next)
					}
				}
			}
		}
		rec(0, pl)
		if len(out) >= maxCands {
			break
		}
	}
	return out
}

// derivePlans proposes parent-ID derivations on a plan's Dewey-labeled
// nodes.
func derivePlans(p Plan) []Plan {
	pat := p.Pattern()
	if pat == nil {
		return nil
	}
	var out []Plan
	for _, n := range pat.Nodes() {
		if n.IDSpec != xam.ParentID || n.Parent == nil || n.Parent.IDSpec != xam.NoID {
			continue
		}
		d := &DeriveParentPlan{In: p, ChildNode: n.Name, ParentNode: n.Parent.Name}
		if d.Pattern() != nil {
			out = append(out, d)
		}
	}
	return out
}

// composePlans proposes structural joins, fusions, and — when the query
// pattern itself nests (nestSems non-empty) — nest joins between two plans.
func composePlans(left, right Plan, nestSems []xam.EdgeSem) []Plan {
	lp, rp := left.Pattern(), right.Pattern()
	if lp == nil || rp == nil || len(rp.Top) != 1 {
		return nil
	}
	// Disambiguate node names on self-joins (main₁, main₂ … of §2.1).
	if namesCollide(lp, rp) {
		for i := 2; ; i++ {
			suffix := fmt.Sprintf("·%d", i)
			r2 := &RenamePlan{In: right, Suffix: suffix}
			rp2 := r2.Pattern()
			if rp2 != nil && !namesCollide(lp, rp2) {
				right, rp = r2, rp2
				break
			}
			if i > 8 {
				return nil
			}
		}
	}
	rTop := rp.Top[0].Child
	var out []Plan
	selfJoin := left.String() == right.String()
	for _, ln := range lp.Nodes() {
		if ln.IDSpec == xam.NoID {
			continue
		}
		if rTop.IDSpec != xam.NoID && rp.Top[0].Axis == xam.Descendant &&
			!(selfJoin && ln.Name == rTop.Name) {
			// Fusion on node identity (skipping trivial self-fusions).
			f := &FusePlan{Left: left, Right: right, LeftNode: ln.Name, RightNode: rTop.Name}
			if f.Pattern() != nil {
				out = append(out, f)
			}
		}
		if ln.IDSpec.Structural() && rTop.IDSpec.Structural() {
			for _, axis := range []xam.Axis{xam.Child, xam.Descendant} {
				j := &StructJoinPlan{Outer: left, Inner: right, OuterNode: ln.Name, InnerNode: rTop.Name, Axis: axis}
				if j.Pattern() != nil {
					out = append(out, j)
				}
				for _, sem := range nestSems {
					nj := &NestJoinPlan{Outer: left, Inner: right, OuterNode: ln.Name, InnerNode: rTop.Name,
						Axis: axis, OuterSem: sem == xam.SemNestOuter}
					if nj.Pattern() != nil {
						out = append(out, nj)
					}
				}
			}
		}
	}
	return out
}

func dedupPlans(ps []Plan) []Plan {
	seen := map[string]bool{}
	var out []Plan
	for _, p := range ps {
		k := p.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return out
}

// unionCover searches for a small set of contained parts whose union
// contains (hence equals) q; parts are tried cheapest-first, greedily.
func (r *Rewriter) unionCover(checker *containment.Checker, parts []*fitted) (Plan, error) {
	sort.SliceStable(parts, func(i, j int) bool {
		return parts[i].plan.Cost() < parts[j].plan.Cost()
	})
	var chosen []*fitted
	var pats []*xam.Pattern
	for _, f := range parts {
		chosen = append(chosen, f)
		pats = append(pats, f.pattern)
		ok, err := checker.QContainedInUnion(pats)
		if err != nil {
			return nil, err
		}
		if ok {
			u := &UnionPlan{}
			for _, c := range chosen {
				u.Parts = append(u.Parts, c.plan)
			}
			return u, nil
		}
	}
	return nil, nil
}

// SiteMaterializeView is the registered fault-injection site failing view
// materialization (see internal/faultinject); resilience tests arm it to
// prove a failed materialization degrades the query and is retried, never
// cached as an empty environment.
const SiteMaterializeView = "rewrite.materialize.view"

// Materialize evaluates every registered view over the document, producing
// the execution environment for rewritten plans. Patterns with required
// attributes (indexes) are skipped — they need bindings at lookup time.
func (r *Rewriter) Materialize(doc *xmltree.Document) (Env, error) {
	env := Env{}
	for _, v := range r.Views {
		rel, err := r.MaterializeView(doc, v.Name)
		if err != nil {
			return nil, err
		}
		if rel != nil {
			env[v.Name] = rel
		}
	}
	return env, nil
}

// MaterializeView evaluates one registered view's extent over the document.
// Index views (patterns with required attributes) return a nil relation and
// no error: they need bindings at lookup time and have no standalone extent.
func (r *Rewriter) MaterializeView(doc *xmltree.Document, name string) (*algebra.Relation, error) {
	for _, v := range r.Views {
		if v.Name != name {
			continue
		}
		if v.Pattern.HasRequired() {
			return nil, nil
		}
		if err := faultinject.Check(SiteMaterializeView); err != nil {
			return nil, fmt.Errorf("rewrite: materialize view %q: %w", name, err)
		}
		return v.Pattern.Eval(doc)
	}
	return nil, fmt.Errorf("rewrite: unknown view %q", name)
}

// relevantViews keeps the views whose stored nodes can map to summary paths
// that some query node also maps to (or to their ancestors/descendants —
// join anchors may sit above the query's own nodes).
func (r *Rewriter) relevantViews(q *xam.Pattern) []*View {
	qPaths := map[int]bool{}
	for _, ann := range containment.PathAnnotations(q, r.S) {
		for _, sn := range ann {
			qPaths[sn.Num] = true
			for p := sn.Parent; p != nil; p = p.Parent {
				qPaths[p.Num] = true
			}
		}
	}
	var out []*View
	for _, v := range r.Views {
		ann := containment.PathAnnotations(v.Pattern, r.S)
		keep := false
		for n, sns := range ann {
			if !n.StoresAnything() {
				continue
			}
			for _, sn := range sns {
				if qPaths[sn.Num] {
					keep = true
					break
				}
			}
			if keep {
				break
			}
		}
		if keep {
			out = append(out, v)
		}
	}
	return out
}

// namesCollide reports whether two patterns share a node name.
func namesCollide(a, b *xam.Pattern) bool {
	names := map[string]bool{}
	for _, n := range a.Nodes() {
		names[n.Name] = true
	}
	for _, n := range b.Nodes() {
		if names[n.Name] {
			return true
		}
	}
	return false
}
