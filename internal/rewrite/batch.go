package rewrite

import (
	"context"
	"fmt"
	"strings"
	"time"

	"xamdb/internal/algebra"
	"xamdb/internal/faultinject"
	"xamdb/internal/physical"
	"xamdb/internal/xam"
)

// This file is the batch counterpart of physical.go's compile: it lowers
// plans onto the vectorized BatchIterator operators (batch scans over
// columnar extents, fused σ_φ formula scans, batch projections, hash and
// stack-tree joins). Operators without a batch form — nest joins, parent
// derivation, unions — fall back to the row compiler wrapped in a Rebatch
// adapter; the fallback count is surfaced so the engine can report
// engine.batch_fallbacks. Labels match the row compiler exactly, so
// EXPLAIN ANALYZE trees keep one vocabulary across both paths.

// BatchExecInfo reports how a batch execution went: how many batches
// flowed through the pipeline (drains at materialization points plus the
// root drain) and how many plan nodes fell back to the row engine.
type BatchExecInfo struct {
	Batches   int64
	Fallbacks int64
}

// ExecuteBatchContext compiles the plan onto the batch operators and drains
// the resulting batch iterator. It produces the same relation as
// ExecutePhysicalContext in the same order (checked by the differential
// tests); the batch path exists for throughput, not semantics.
func ExecuteBatchContext(ctx context.Context, p Plan, env Env) (*algebra.Relation, BatchExecInfo, error) {
	c := &batchCompiler{ctx: ctx, env: env}
	it, _, err := c.compile(p)
	if err != nil {
		return nil, c.info(), err
	}
	rel, n, err := physical.DrainBatchesContext(ctx, it)
	c.batches += n
	return rel, c.info(), err
}

// ExecuteBatchAnalyzeContext is ExecuteBatchContext with instrumentation:
// every plan node accumulates into an OpStats tree mirroring the plan, with
// batch counts alongside rows and time. On execution error the
// partially-filled stats tree is still returned.
func ExecuteBatchAnalyzeContext(ctx context.Context, p Plan, env Env) (*algebra.Relation, *physical.OpStats, BatchExecInfo, error) {
	c := &batchCompiler{ctx: ctx, env: env, instr: true}
	it, stats, err := c.compile(p)
	if err != nil {
		return nil, stats, c.info(), err
	}
	rel, n, err := physical.DrainBatchesContext(ctx, it)
	c.batches += n
	return rel, stats, c.info(), err
}

// batchCompiler carries compilation state: the execution context, the view
// extents, and the batch/fallback accounting the engine's metrics consume.
type batchCompiler struct {
	ctx       context.Context
	env       Env
	instr     bool
	batches   int64
	fallbacks int64
}

func (c *batchCompiler) info() BatchExecInfo {
	return BatchExecInfo{Batches: c.batches, Fallbacks: c.fallbacks}
}

// wrap instruments a finished batch node; a no-op when instrumentation is
// off.
func (c *batchCompiler) wrap(label string, it physical.BatchIterator, children ...*physical.OpStats) (physical.BatchIterator, *physical.OpStats) {
	if !c.instr {
		return it, nil
	}
	ins := physical.NewBatchInstrument(label, it)
	for _, ch := range children {
		ins.Stats().AddChild(ch)
	}
	return ins, ins.Stats()
}

// drain materializes a batch subtree at a blocking plan node, counting its
// batches toward the execution total.
func (c *batchCompiler) drain(it physical.BatchIterator) (*algebra.Relation, error) {
	rel, n, err := physical.DrainBatchesContext(c.ctx, it)
	c.batches += n
	return rel, err
}

// fallback compiles p with the row compiler and adapts it into the batch
// protocol. The row subtree keeps its own Checkpoint charging and its own
// stats nodes — no extra label is added, so the EXPLAIN ANALYZE tree shows
// the row operators directly under the batch parent.
func (c *batchCompiler) fallback(p Plan) (physical.BatchIterator, *physical.OpStats, error) {
	it, st, err := compile(c.ctx, p, c.env, c.instr)
	if err != nil {
		return nil, st, err
	}
	c.fallbacks++
	return physical.NewRebatch(it), st, nil
}

// compile lowers one plan node onto the batch operators.
func (c *batchCompiler) compile(p Plan) (physical.BatchIterator, *physical.OpStats, error) {
	switch pl := p.(type) {
	case *ScanPlan:
		if err := faultinject.Check(SiteCompileScan); err != nil {
			return nil, nil, err
		}
		rel, ok := c.env[pl.View.Name]
		if !ok {
			return nil, nil, fmt.Errorf("rewrite: no extent for view %q", pl.View.Name)
		}
		it, st := c.wrap("scan("+pl.View.Name+")", physical.NewBatchScan(c.ctx, rel, nil))
		return it, st, nil

	case *SelectValPlan:
		if scan, ok := pl.In.(*ScanPlan); ok {
			// Fused σ_φ over a view extent: the vectorized formula scan
			// evaluates the compiled matcher against the extent's cached
			// atom column. Self-checkpointing, like FormulaSelect.
			if err := faultinject.Check(SiteCompileScan); err != nil {
				return nil, nil, err
			}
			rel, ok := c.env[scan.View.Name]
			if !ok {
				return nil, nil, fmt.Errorf("rewrite: no extent for view %q", scan.View.Name)
			}
			fs, err := physical.NewBatchFormulaScan(c.ctx, rel, nil, pl.Node+".Val", pl.Formula)
			if err != nil {
				return nil, nil, err
			}
			it, st := c.wrap(fmt.Sprintf("σ[φ(%s.Val)]·scan(%s)", pl.Node, scan.View.Name), fs)
			return it, st, nil
		}
		in, cst, err := c.compile(pl.In)
		if err != nil {
			return nil, cst, err
		}
		filter, err := physical.NewBatchFormulaFilter(in, pl.Node+".Val", pl.Formula)
		if err != nil {
			return nil, cst, err
		}
		it, st := c.wrap(fmt.Sprintf("σ[φ(%s.Val)]", pl.Node), filter, cst)
		return it, st, nil

	case *SelectTagPlan:
		in, cst, err := c.compile(pl.In)
		if err != nil {
			return nil, cst, err
		}
		sel, err := physical.NewBatchSelect(in, algebra.Pred{Path: pl.Node + ".Tag", Op: algebra.Eq, Const: algebra.S(pl.Label)})
		if err != nil {
			return nil, cst, err
		}
		it, st := c.wrap(fmt.Sprintf("σ[%s.Tag=%s]", pl.Node, pl.Label), sel, cst)
		return it, st, nil

	case *ProjectPlan:
		in, cst, err := c.compile(pl.In)
		if err != nil {
			return nil, cst, err
		}
		if pl.Nested {
			pat := pl.Pattern()
			if pat == nil {
				return nil, cst, fmt.Errorf("rewrite: nested projection has no pattern")
			}
			var st *physical.OpStats
			var start time.Time
			if c.instr {
				st = &physical.OpStats{Label: "π⁰ⁿ[" + strings.Join(pl.Attrs, ",") + "]"}
				st.AddChild(cst)
				start = time.Now()
			}
			drained, err := c.drain(in)
			if err != nil {
				return nil, st, err
			}
			shaped, err := algebra.Reshape(drained, pat.Schema())
			if err != nil {
				return nil, st, err
			}
			// Vectorized dedup over the reshaped collection: typed hashing
			// instead of the row engine's rendered-string fingerprints.
			dist := physical.NewBatchDistinct(physical.NewBatchRelScan(c.ctx, shaped, nil))
			if c.instr {
				st.Time += time.Since(start)
				return physical.BatchInstrumentWith(st, dist), st, nil
			}
			return dist, nil, nil
		}
		proj, err := physical.NewBatchProject(in, pl.Attrs...)
		if err != nil {
			return nil, cst, err
		}
		// The flat π° stays fully streaming: projection is a column-pointer
		// pick and the distinct dedups batch by batch with typed hashes — no
		// materialization point at all, unlike the row compiler.
		it, st := c.wrap("π⁰["+strings.Join(pl.Attrs, ",")+"]", physical.NewBatchDistinct(proj), cst)
		return it, st, nil

	case *StructJoinPlan:
		outer, ost, err := c.compile(pl.Outer)
		if err != nil {
			return nil, ost, err
		}
		inner, ist, err := c.compile(pl.Inner)
		if err != nil {
			return nil, ist, err
		}
		oSort, err := physical.NewBatchSort(outer, pl.OuterNode+".ID")
		if err != nil {
			return nil, ost, err
		}
		iSort, err := physical.NewBatchSort(inner, pl.InnerNode+".ID")
		if err != nil {
			return nil, ist, err
		}
		var outerSorted, innerSorted physical.BatchIterator = oSort, iSort
		if c.instr {
			oIns := physical.NewBatchInstrument("sort["+pl.OuterNode+".ID]", outerSorted)
			oIns.Stats().AddChild(ost)
			iIns := physical.NewBatchInstrument("sort["+pl.InnerNode+".ID]", innerSorted)
			iIns.Stats().AddChild(ist)
			outerSorted, ost = oIns, oIns.Stats()
			innerSorted, ist = iIns, iIns.Stats()
		}
		axis := physical.DescendantAxis
		axisName := "desc"
		if pl.Axis == xam.Child {
			axis = physical.ChildAxis
			axisName = "child"
		}
		join, err := physical.NewBatchStackTreeDesc(outerSorted, innerSorted, pl.OuterNode+".ID", pl.InnerNode+".ID", axis)
		if err != nil {
			return nil, nil, err
		}
		it, st := c.wrap(fmt.Sprintf("stacktree[%s ≺%s %s]", pl.OuterNode, axisName, pl.InnerNode), join, ost, ist)
		return it, st, nil

	case *FusePlan:
		left, lst, err := c.compile(pl.Left)
		if err != nil {
			return nil, lst, err
		}
		right, rst, err := c.compile(pl.Right)
		if err != nil {
			return nil, rst, err
		}
		hj, err := physical.NewBatchHashJoin(left, right, pl.LeftNode+".ID", pl.RightNode+".ID", false)
		if err != nil {
			return nil, nil, err
		}
		var st *physical.OpStats
		var start time.Time
		if c.instr {
			st = &physical.OpStats{Label: fmt.Sprintf("fuse[%s=%s]", pl.LeftNode, pl.RightNode)}
			st.AddChild(lst)
			st.AddChild(rst)
			start = time.Now()
		}
		rel, err := c.drain(hj)
		if c.instr {
			st.Time += time.Since(start)
		}
		if err != nil {
			return nil, st, err
		}
		shaped, err := fuseShape(rel, pl, left.Schema(), right.Schema())
		if err != nil {
			return nil, st, err
		}
		if !c.instr {
			return physical.NewBatchRelScan(c.ctx, shaped, nil), nil, nil
		}
		return physical.BatchInstrumentWith(st, physical.NewBatchRelScan(c.ctx, shaped, nil)), st, nil

	case *RenamePlan:
		in, cst, err := c.compile(pl.In)
		if err != nil {
			return nil, cst, err
		}
		// ρ is pure schema relabeling: the batch path streams it instead of
		// materializing like the row compiler does.
		re, err := physical.NewBatchReschema(in, renameSchema(in.Schema(), pl.Suffix))
		if err != nil {
			return nil, cst, err
		}
		it, st := c.wrap("ρ["+pl.Suffix+"]", re, cst)
		return it, st, nil

	case *NestJoinPlan, *DeriveParentPlan, *UnionPlan:
		// No batch form: nest joins group into nested collections, parent
		// derivation maps through the logical layer, unions align drained
		// parts — all row/materialization shaped. Fall back transparently.
		return c.fallback(p)
	}
	return nil, nil, fmt.Errorf("rewrite: cannot batch-compile %T", p)
}
