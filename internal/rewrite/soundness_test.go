package rewrite

import (
	"testing"

	"xamdb/internal/datagen"
	"xamdb/internal/patgen"
	"xamdb/internal/summary"
	"xamdb/internal/xmltree"
)

// TestRewritingSoundOnRandomWorkload cross-validates the planner against
// direct evaluation: every plan found for a random query over random views
// must produce exactly the query pattern's result on the document.
func TestRewritingSoundOnRandomWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation workload skipped in -short mode")
	}
	docs := []*xmltree.Document{
		datagen.DBLP(30),
	}
	for _, doc := range docs {
		s := summary.Build(doc)
		viewPats := patgen.GenerateSet(s, patgen.Config{Nodes: 3, Returns: 2, PPred: -1, POpt: -1}, 6, 21)
		var views []*View
		for i, p := range viewPats {
			for _, n := range p.ReturnNodes() {
				n.StoreVal = true
			}
			views = append(views, &View{Name: "v" + string(rune('a'+i)), Pattern: p})
		}
		rw := NewRewriter(s, views, Options{MaxPlans: 2, MaxJoinDepth: 1})
		env, err := rw.Materialize(doc)
		if err != nil {
			t.Fatal(err)
		}
		queries := patgen.GenerateSet(s, patgen.Config{Nodes: 3, Returns: 1, PPred: -1, POpt: -1}, 8, 33)
		for _, q := range queries {
			for _, n := range q.ReturnNodes() {
				n.StoreVal = true
			}
			plans, err := rw.Rewrite(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := q.Eval(doc)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range plans {
				got, err := p.Execute(env)
				if err != nil {
					t.Fatalf("doc %s, query %s, plan %s: %v", doc.Name, q, p.Plan, err)
				}
				if !got.EqualAsSet(want) {
					t.Fatalf("doc %s: unsound plan for %s:\n  plan %s\n  got  %s\n  want %s",
						doc.Name, q, p.Plan, got, want)
				}
			}
		}
	}
}
