package rewrite

import (
	"testing"

	"xamdb/internal/datagen"
	"xamdb/internal/patgen"
	"xamdb/internal/summary"
	"xamdb/internal/value"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
)

// TestRewritingSoundOnRandomWorkload cross-validates the planner against
// direct evaluation: every plan found for a random query over random views
// must produce exactly the query pattern's result on the document.
func TestRewritingSoundOnRandomWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation workload skipped in -short mode")
	}
	docs := []*xmltree.Document{
		datagen.DBLP(30),
	}
	for _, doc := range docs {
		s := summary.Build(doc)
		viewPats := patgen.GenerateSet(s, patgen.Config{Nodes: 3, Returns: 2, PPred: -1, POpt: -1}, 6, 21)
		var views []*View
		for i, p := range viewPats {
			for _, n := range p.ReturnNodes() {
				n.StoreVal = true
			}
			views = append(views, &View{Name: "v" + string(rune('a'+i)), Pattern: p})
		}
		rw := NewRewriter(s, views, Options{MaxPlans: 2, MaxJoinDepth: 1})
		env, err := rw.Materialize(doc)
		if err != nil {
			t.Fatal(err)
		}
		queries := patgen.GenerateSet(s, patgen.Config{Nodes: 3, Returns: 1, PPred: -1, POpt: -1}, 8, 33)
		for _, q := range queries {
			for _, n := range q.ReturnNodes() {
				n.StoreVal = true
			}
			plans, err := rw.Rewrite(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := q.Eval(doc)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range plans {
				got, err := p.Execute(env)
				if err != nil {
					t.Fatalf("doc %s, query %s, plan %s: %v", doc.Name, q, p.Plan, err)
				}
				if !got.EqualAsSet(want) {
					t.Fatalf("doc %s: unsound plan for %s:\n  plan %s\n  got  %s\n  want %s",
						doc.Name, q, p.Plan, got, want)
				}
			}
		}
	}
}

// TestRewritingSoundOnPredicateWorkload is the predicate-absorption variant
// of the cross-validation workload: views and queries both carry random
// range predicates drawn from constants the document actually contains
// (DBLP years), so the planner must decide absorption per pair — φq ⇒ φv
// admits the view with a residual σφq, anything else must be rejected — and
// every surviving plan must still reproduce direct evaluation exactly.
func TestRewritingSoundOnPredicateWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation workload skipped in -short mode")
	}
	doc := datagen.DBLP(30)
	s := summary.Build(doc)
	years := make([]value.Atom, 0, 15)
	for y := 1990; y < 2005; y++ {
		years = append(years, value.Num(float64(y)))
	}
	cfg := patgen.Config{
		Nodes: 3, Returns: 2, PPred: 0.2, POpt: -1,
		PredValues: years, PredRange: true,
	}
	viewPats := patgen.GenerateSet(s, cfg, 10, 7)
	var views []*View
	for i, p := range viewPats {
		// Store id+val on every view node so any absorbable query predicate
		// finds a stored value to run its residual selection against.
		for _, n := range p.Nodes() {
			n.IDSpec = xam.StructID
			n.StoreVal = true
		}
		views = append(views, &View{Name: "v" + string(rune('a'+i)), Pattern: p})
	}
	rw := NewRewriter(s, views, Options{MaxPlans: 3, MaxJoinDepth: 1})
	env, err := rw.Materialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	qcfg := cfg
	qcfg.Returns = 1
	qcfg.PPred = 0.6
	queries := patgen.GenerateSet(s, qcfg, 12, 99)
	var residuals, planned int
	for _, q := range queries {
		for _, n := range q.ReturnNodes() {
			n.StoreVal = true
		}
		plans, err := rw.Rewrite(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := q.Eval(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range plans {
			planned++
			residuals += CountResidualSelections(p.Plan)
			got, err := p.Execute(env)
			if err != nil {
				t.Fatalf("query %s, plan %s: %v", q, p.Plan, err)
			}
			if !got.EqualAsSet(want) {
				t.Fatalf("unsound plan for %s:\n  plan %s\n  got  %s\n  want %s",
					q, p.Plan, got, want)
			}
		}
	}
	// The workload must actually exercise absorption: with these seeds some
	// query predicate lands on a value-storing view node and survives as a
	// residual selection. A zero here means the gate silently rejects all
	// absorbable pairs — exactly the regression this test exists to catch.
	if planned == 0 {
		t.Fatal("predicate workload produced no view-based plans at all")
	}
	if residuals == 0 {
		t.Fatal("predicate workload produced no residual selections: absorption path not exercised")
	}
}
