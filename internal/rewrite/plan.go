// Package rewrite implements view-based rewriting of XAM query patterns
// under path summary constraints (Chapter 5). Rewritings are logical plans
// over materialized view XAMs — scans, projections, structural joins, node
// fusions (ID-equality joins), navigational parent-ID derivations, and
// unions — following the generate-and-test approach of §5.3: each candidate
// plan is converted to its S-equivalent pattern (§5.5) and checked
// S-equivalent to the query pattern with the Chapter 4 machinery.
package rewrite

import (
	"fmt"
	"strings"

	"xamdb/internal/algebra"
	"xamdb/internal/value"
	"xamdb/internal/xam"
)

// View is a materialized view described by a XAM.
type View struct {
	Name    string
	Pattern *xam.Pattern
}

// Env supplies the materialized extents of views for plan execution.
type Env map[string]*algebra.Relation

// Plan is a logical rewriting plan over views.
type Plan interface {
	// Pattern returns the S-equivalent pattern of the plan (§5.5); union
	// plans return nil (they are equivalent to a union of patterns).
	Pattern() *xam.Pattern
	// Cost is the number of operators, used to prefer minimal plans.
	Cost() int
	// Execute evaluates the plan against materialized views.
	Execute(env Env) (*algebra.Relation, error)
	String() string
}

// ViewRefs lists the names of the views a plan scans, deduplicated, in
// first-reference order. The engine materializes exactly these extents
// before executing the plan, so a plan's cost never includes building
// extents it does not read.
func ViewRefs(p Plan) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Plan)
	walk = func(p Plan) {
		switch p := p.(type) {
		case *ScanPlan:
			if !seen[p.View.Name] {
				seen[p.View.Name] = true
				out = append(out, p.View.Name)
			}
		case *ProjectPlan:
			walk(p.In)
		case *StructJoinPlan:
			walk(p.Outer)
			walk(p.Inner)
		case *NestJoinPlan:
			walk(p.Outer)
			walk(p.Inner)
		case *FusePlan:
			walk(p.Left)
			walk(p.Right)
		case *DeriveParentPlan:
			walk(p.In)
		case *UnionPlan:
			for _, part := range p.Parts {
				walk(part)
			}
		case *SelectTagPlan:
			walk(p.In)
		case *SelectValPlan:
			walk(p.In)
		case *RenamePlan:
			walk(p.In)
		}
	}
	walk(p)
	return out
}

// CountResidualSelections reports how many residual value selections (σ_φ)
// a plan applies — the plan-level signal of predicate absorption, surfaced
// by the engine as the pred_residual metric.
func CountResidualSelections(p Plan) int {
	n := 0
	var walk func(Plan)
	walk = func(p Plan) {
		switch p := p.(type) {
		case *SelectValPlan:
			n++
			walk(p.In)
		case *ProjectPlan:
			walk(p.In)
		case *StructJoinPlan:
			walk(p.Outer)
			walk(p.Inner)
		case *NestJoinPlan:
			walk(p.Outer)
			walk(p.Inner)
		case *FusePlan:
			walk(p.Left)
			walk(p.Right)
		case *DeriveParentPlan:
			walk(p.In)
		case *UnionPlan:
			for _, part := range p.Parts {
				walk(part)
			}
		case *SelectTagPlan:
			walk(p.In)
		case *RenamePlan:
			walk(p.In)
		}
	}
	walk(p)
	return n
}

// ScanPlan reads one view.
type ScanPlan struct {
	View *View
}

// Pattern implements Plan.
func (p *ScanPlan) Pattern() *xam.Pattern { return p.View.Pattern.Clone() }

// Cost implements Plan.
func (p *ScanPlan) Cost() int { return 1 }

// Execute implements Plan.
func (p *ScanPlan) Execute(env Env) (*algebra.Relation, error) {
	r, ok := env[p.View.Name]
	if !ok {
		return nil, fmt.Errorf("rewrite: no extent for view %q", p.View.Name)
	}
	return r, nil
}

func (p *ScanPlan) String() string { return "scan(" + p.View.Name + ")" }

// ProjectPlan keeps only the listed attributes (named after pattern nodes,
// e.g. "e1.ID"). With Nested set, attributes may live inside nest-edge
// collections: execution then reshapes to the projected pattern's schema
// (projection inside collections, without unnesting) instead of a top-level
// column projection.
type ProjectPlan struct {
	In     Plan
	Attrs  []string
	Nested bool
}

// Pattern implements Plan: annotations outside the kept attributes are
// erased.
func (p *ProjectPlan) Pattern() *xam.Pattern {
	pat := p.In.Pattern()
	if pat == nil {
		return nil
	}
	keep := map[string]bool{}
	for _, a := range p.Attrs {
		keep[a] = true
	}
	for _, n := range pat.Nodes() {
		if n.IDSpec != xam.NoID && !keep[n.Name+".ID"] {
			n.IDSpec = xam.NoID
		}
		if n.StoreTag && !keep[n.Name+".Tag"] {
			n.StoreTag = false
		}
		if n.StoreVal && !keep[n.Name+".Val"] {
			n.StoreVal = false
		}
		if n.StoreCont && !keep[n.Name+".Cont"] {
			n.StoreCont = false
		}
	}
	return pat
}

// Cost implements Plan.
func (p *ProjectPlan) Cost() int { return p.In.Cost() + 1 }

// Execute implements Plan.
func (p *ProjectPlan) Execute(env Env) (*algebra.Relation, error) {
	r, err := p.In.Execute(env)
	if err != nil {
		return nil, err
	}
	if p.Nested {
		// π° inside collections: reshape to the projected pattern's schema
		// (attribute order and nesting follow the pattern), then dedup.
		pat := p.Pattern()
		if pat == nil {
			return nil, fmt.Errorf("rewrite: nested projection has no pattern")
		}
		shaped, err := algebra.Reshape(r, pat.Schema())
		if err != nil {
			return nil, err
		}
		return algebra.Distinct(shaped), nil
	}
	return algebra.Project(r, true, p.Attrs...)
}

func (p *ProjectPlan) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(p.Attrs, ","), p.In)
}

// StructJoinPlan joins two plans on a structural predicate
// outer.OuterAttr ≺(≺) inner.InnerAttr, where InnerAttr identifies the
// single top node of the inner plan's pattern. Its equivalent pattern grafts
// the inner pattern under the outer node (§5.5.2).
type StructJoinPlan struct {
	Outer     Plan
	Inner     Plan
	OuterNode string // node name in outer pattern
	InnerNode string // top node name in inner pattern
	Axis      xam.Axis
}

// Pattern implements Plan.
func (p *StructJoinPlan) Pattern() *xam.Pattern {
	outer := p.Outer.Pattern()
	inner := p.Inner.Pattern()
	if outer == nil || inner == nil || len(inner.Top) != 1 {
		return nil
	}
	anchor := outer.NodeByName(p.OuterNode)
	top := inner.Top[0].Child
	if anchor == nil || top.Name != p.InnerNode {
		return nil
	}
	e := &xam.Edge{Axis: p.Axis, Sem: xam.SemJoin, Child: top}
	top.Parent = anchor
	anchor.Edges = append(anchor.Edges, e)
	return outer
}

// Cost implements Plan.
func (p *StructJoinPlan) Cost() int { return p.Outer.Cost() + p.Inner.Cost() + 1 }

// Execute implements Plan.
func (p *StructJoinPlan) Execute(env Env) (*algebra.Relation, error) {
	outer, err := p.Outer.Execute(env)
	if err != nil {
		return nil, err
	}
	inner, err := p.Inner.Execute(env)
	if err != nil {
		return nil, err
	}
	op := algebra.Ancestor
	if p.Axis == xam.Child {
		op = algebra.Parent
	}
	return algebra.Join(outer, inner,
		algebra.JoinPred{Left: p.OuterNode + ".ID", Op: op, Right: p.InnerNode + ".ID"},
		algebra.InnerJoin, "")
}

func (p *StructJoinPlan) String() string {
	return fmt.Sprintf("(%s ⋈[%s.ID%s%s.ID] %s)", p.Outer, p.OuterNode,
		map[xam.Axis]string{xam.Child: "≺", xam.Descendant: "≺≺"}[p.Axis], p.InnerNode, p.Inner)
}

// NestJoinPlan is the nest-join counterpart of StructJoinPlan: it joins on
// the same structural predicate but groups each outer tuple's matches into a
// nested collection named after the inner pattern's top node — the plan-side
// image of an nj/no edge, needed to answer FLWOR queries whose return clause
// nests (`return <r>{$x/title}</r>`). With OuterSem set, outer tuples without
// matches survive with an empty collection (no); otherwise they are dropped
// (nj). Its equivalent pattern grafts the inner pattern under the outer node
// with the corresponding nest-edge semantics.
type NestJoinPlan struct {
	Outer     Plan
	Inner     Plan
	OuterNode string // node name in outer pattern
	InnerNode string // top node name in inner pattern
	Axis      xam.Axis
	OuterSem  bool // true = nest outerjoin (no), false = nest join (nj)
}

// Pattern implements Plan.
func (p *NestJoinPlan) Pattern() *xam.Pattern {
	outer := p.Outer.Pattern()
	inner := p.Inner.Pattern()
	if outer == nil || inner == nil || len(inner.Top) != 1 {
		return nil
	}
	anchor := outer.NodeByName(p.OuterNode)
	top := inner.Top[0].Child
	if anchor == nil || top.Name != p.InnerNode {
		return nil
	}
	sem := xam.SemNest
	if p.OuterSem {
		sem = xam.SemNestOuter
	}
	e := &xam.Edge{Axis: p.Axis, Sem: sem, Child: top}
	top.Parent = anchor
	anchor.Edges = append(anchor.Edges, e)
	return outer
}

// Cost implements Plan.
func (p *NestJoinPlan) Cost() int { return p.Outer.Cost() + p.Inner.Cost() + 1 }

// Execute implements Plan.
func (p *NestJoinPlan) Execute(env Env) (*algebra.Relation, error) {
	outer, err := p.Outer.Execute(env)
	if err != nil {
		return nil, err
	}
	inner, err := p.Inner.Execute(env)
	if err != nil {
		return nil, err
	}
	op := algebra.Ancestor
	if p.Axis == xam.Child {
		op = algebra.Parent
	}
	mode := algebra.NestJoin
	if p.OuterSem {
		mode = algebra.NestOuterJoin
	}
	return algebra.Join(outer, inner,
		algebra.JoinPred{Left: p.OuterNode + ".ID", Op: op, Right: p.InnerNode + ".ID"},
		mode, p.InnerNode)
}

func (p *NestJoinPlan) String() string {
	sem := "nj"
	if p.OuterSem {
		sem = "no"
	}
	return fmt.Sprintf("(%s ⋈%s[%s.ID%s%s.ID] %s)", p.Outer, sem, p.OuterNode,
		map[xam.Axis]string{xam.Child: "≺", xam.Descendant: "≺≺"}[p.Axis], p.InnerNode, p.Inner)
}

// FusePlan joins two plans on node identity (left.LeftNode.ID =
// right.RightNode.ID), the "join pairing input tuples which contain exactly
// the same node" of §5.3. RightNode must be the single top node of the right
// pattern; the equivalent pattern unifies the two nodes.
type FusePlan struct {
	Left      Plan
	Right     Plan
	LeftNode  string
	RightNode string
}

// Pattern implements Plan.
func (p *FusePlan) Pattern() *xam.Pattern {
	left := p.Left.Pattern()
	right := p.Right.Pattern()
	if left == nil || right == nil || len(right.Top) != 1 {
		return nil
	}
	// The unified node must not be constrained to be the document root's
	// child unless the left node is compatible; requiring a descendant top
	// edge keeps the graft sound.
	if right.Top[0].Axis != xam.Descendant {
		return nil
	}
	target := left.NodeByName(p.LeftNode)
	src := right.Top[0].Child
	if target == nil || src.Name != p.RightNode {
		return nil
	}
	// Unify labels: wildcard yields to constant; conflicting constants fail.
	switch {
	case target.Label == src.Label:
	case target.Wildcard():
		target.Label = src.Label
	case src.Wildcard():
	default:
		return nil
	}
	// Merge annotations and value predicates.
	if src.IDSpec != xam.NoID && target.IDSpec == xam.NoID {
		target.IDSpec = src.IDSpec
	}
	target.StoreTag = target.StoreTag || src.StoreTag
	target.StoreVal = target.StoreVal || src.StoreVal
	target.StoreCont = target.StoreCont || src.StoreCont
	if src.HasValuePred {
		if target.HasValuePred {
			target.ValuePred = target.ValuePred.And(src.ValuePred)
		} else {
			target.ValuePred = src.ValuePred
			target.HasValuePred = true
		}
		target.PredSrc = append(target.PredSrc, src.PredSrc...)
	}
	for _, e := range src.Edges {
		e.Child.Parent = target
		target.Edges = append(target.Edges, e)
	}
	return left
}

// Cost implements Plan.
func (p *FusePlan) Cost() int { return p.Left.Cost() + p.Right.Cost() + 1 }

// Execute implements Plan: an ID-equality join, then dropping the duplicate
// right-node columns.
func (p *FusePlan) Execute(env Env) (*algebra.Relation, error) {
	left, err := p.Left.Execute(env)
	if err != nil {
		return nil, err
	}
	right, err := p.Right.Execute(env)
	if err != nil {
		return nil, err
	}
	joined, err := algebra.Join(left, right,
		algebra.JoinPred{Left: p.LeftNode + ".ID", Op: algebra.Eq, Right: p.RightNode + ".ID"},
		algebra.InnerJoin, "")
	if err != nil {
		return nil, err
	}
	// Keep left columns plus right columns that are not the duplicated key;
	// the fused node's surviving columns take the left node's name, matching
	// the unified pattern.
	var names []string
	for _, a := range left.Schema.Attrs {
		names = append(names, a.Name)
	}
	for _, a := range right.Schema.Attrs {
		if a.Name == p.RightNode+".ID" {
			continue
		}
		names = append(names, a.Name)
	}
	proj, err := algebra.Project(joined, false, names...)
	if err != nil {
		return nil, err
	}
	renamed := &algebra.Schema{Attrs: append([]algebra.Attr{}, proj.Schema.Attrs...)}
	for i, a := range renamed.Attrs {
		if strings.HasPrefix(a.Name, p.RightNode+".") {
			renamed.Attrs[i].Name = p.LeftNode + strings.TrimPrefix(a.Name, p.RightNode)
		}
	}
	out := algebra.NewRelation(renamed)
	out.Tuples = proj.Tuples
	return out, nil
}

func (p *FusePlan) String() string {
	return fmt.Sprintf("(%s ⋈[%s.ID=%s.ID] %s)", p.Left, p.LeftNode, p.RightNode, p.Right)
}

// DeriveParentPlan exposes the parent's identifier of a node whose view
// stores navigational (Dewey) IDs (§5.2 "Exploiting ID properties"): the
// parent pattern node, reached over a '/' edge, gains a derived ID column.
type DeriveParentPlan struct {
	In         Plan
	ChildNode  string // node with IDSpec p
	ParentNode string // its '/'-parent in the pattern
}

// Pattern implements Plan.
func (p *DeriveParentPlan) Pattern() *xam.Pattern {
	pat := p.In.Pattern()
	if pat == nil {
		return nil
	}
	child := pat.NodeByName(p.ChildNode)
	if child == nil || child.IDSpec != xam.ParentID || child.Parent == nil ||
		child.Parent.Name != p.ParentNode {
		return nil
	}
	var edge *xam.Edge
	for _, e := range child.Parent.Edges {
		if e.Child == child {
			edge = e
		}
	}
	if edge == nil || edge.Axis != xam.Child {
		return nil
	}
	child.Parent.IDSpec = xam.ParentID
	return pat
}

// Cost implements Plan.
func (p *DeriveParentPlan) Cost() int { return p.In.Cost() + 1 }

// Execute implements Plan: computes the parent Dewey ID column.
func (p *DeriveParentPlan) Execute(env Env) (*algebra.Relation, error) {
	r, err := p.In.Execute(env)
	if err != nil {
		return nil, err
	}
	ci := r.Schema.Index(p.ChildNode + ".ID")
	if ci < 0 {
		return nil, fmt.Errorf("rewrite: derive-parent: no column %s.ID", p.ChildNode)
	}
	outSchema := &algebra.Schema{Attrs: append([]algebra.Attr{}, r.Schema.Attrs...)}
	outSchema.Attrs = append(outSchema.Attrs, algebra.Attr{Name: p.ParentNode + ".ID"})
	out := algebra.NewRelation(outSchema)
	for _, t := range r.Tuples {
		v := t[ci]
		if v.Kind != algebra.DeweyID {
			return nil, fmt.Errorf("rewrite: derive-parent: %s.ID is not a Dewey ID", p.ChildNode)
		}
		parent := v.Dewey.ParentID()
		nt := t.Clone()
		if parent == nil {
			nt = append(nt, algebra.NullValue)
		} else {
			nt = append(nt, algebra.DV(parent))
		}
		out.Add(nt)
	}
	return out, nil
}

func (p *DeriveParentPlan) String() string {
	return fmt.Sprintf("deriveParent[%s→%s](%s)", p.ChildNode, p.ParentNode, p.In)
}

// UnionPlan is the duplicate-preserving union of part plans; required for
// completeness under summary constraints (§5.3's q ∪ p₃ example).
type UnionPlan struct {
	Parts []Plan
	// ColMaps aligns each part's output columns with the first part's.
	ColMaps [][]string
}

// Pattern implements Plan: unions have no single equivalent pattern.
func (p *UnionPlan) Pattern() *xam.Pattern { return nil }

// PartPatterns returns the patterns of the union members.
func (p *UnionPlan) PartPatterns() []*xam.Pattern {
	out := make([]*xam.Pattern, len(p.Parts))
	for i, part := range p.Parts {
		out[i] = part.Pattern()
	}
	return out
}

// Cost implements Plan.
func (p *UnionPlan) Cost() int {
	c := 1
	for _, part := range p.Parts {
		c += part.Cost()
	}
	return c
}

// Execute implements Plan.
func (p *UnionPlan) Execute(env Env) (*algebra.Relation, error) {
	var acc *algebra.Relation
	for i, part := range p.Parts {
		r, err := part.Execute(env)
		if err != nil {
			return nil, err
		}
		if p.ColMaps != nil {
			r, err = algebra.Project(r, false, p.ColMaps[i]...)
			if err != nil {
				return nil, err
			}
		}
		if acc == nil {
			acc = r
			continue
		}
		// Align schemas positionally.
		aligned := algebra.NewRelation(acc.Schema)
		aligned.Tuples = r.Tuples
		acc, err = algebra.Union(acc, aligned)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

func (p *UnionPlan) String() string {
	parts := make([]string, len(p.Parts))
	for i, part := range p.Parts {
		parts[i] = part.String()
	}
	return "(" + strings.Join(parts, " ∪ ") + ")"
}

// SelectTagPlan applies σ(Node.Tag = Label) — the tag selections of the
// node-store plans QEP4/QEP5 (§2.1.1). Its pattern effect narrows a wildcard
// node to the selected label.
type SelectTagPlan struct {
	In    Plan
	Node  string
	Label string
}

// Pattern implements Plan.
func (p *SelectTagPlan) Pattern() *xam.Pattern {
	pat := p.In.Pattern()
	if pat == nil {
		return nil
	}
	n := pat.NodeByName(p.Node)
	if n == nil || !n.Wildcard() || !n.StoreTag {
		return nil
	}
	n.Label = p.Label
	return pat
}

// Cost implements Plan.
func (p *SelectTagPlan) Cost() int { return p.In.Cost() + 1 }

// Execute implements Plan.
func (p *SelectTagPlan) Execute(env Env) (*algebra.Relation, error) {
	r, err := p.In.Execute(env)
	if err != nil {
		return nil, err
	}
	return algebra.Select(r, algebra.Pred{Path: p.Node + ".Tag", Op: algebra.Eq, Const: algebra.S(p.Label)})
}

func (p *SelectTagPlan) String() string {
	return fmt.Sprintf("σ[%s.Tag=%s](%s)", p.Node, p.Label, p.In)
}

// SelectValPlan applies σ(φ(Node.Val)) for a value formula, letting wide
// views answer decorated query patterns.
type SelectValPlan struct {
	In      Plan
	Node    string
	Formula value.Formula
	Src     []string // parseable rendering for the pattern
}

// Pattern implements Plan.
func (p *SelectValPlan) Pattern() *xam.Pattern {
	pat := p.In.Pattern()
	if pat == nil {
		return nil
	}
	n := pat.NodeByName(p.Node)
	if n == nil || !n.StoreVal {
		return nil
	}
	if n.HasValuePred {
		n.ValuePred = n.ValuePred.And(p.Formula)
	} else {
		n.ValuePred = p.Formula
		n.HasValuePred = true
	}
	n.PredSrc = append(n.PredSrc, p.Src...)
	return pat
}

// Cost implements Plan: a selection directly over a view scan is free — it
// compiles to a scan fused with the residual filter (physical.FormulaSelect),
// so pushed-down selections rank ahead of selections stacked on joins.
func (p *SelectValPlan) Cost() int {
	if _, ok := p.In.(*ScanPlan); ok {
		return p.In.Cost()
	}
	return p.In.Cost() + 1
}

// Execute implements Plan.
func (p *SelectValPlan) Execute(env Env) (*algebra.Relation, error) {
	r, err := p.In.Execute(env)
	if err != nil {
		return nil, err
	}
	col := r.Schema.Index(p.Node + ".Val")
	if col < 0 {
		return nil, fmt.Errorf("rewrite: select-val: no column %s.Val", p.Node)
	}
	out := algebra.NewRelation(r.Schema)
	for _, t := range r.Tuples {
		if t[col].Kind != algebra.Null && p.Formula.Holds(value.Str(t[col].AsString())) {
			out.Add(t)
		}
	}
	return out, nil
}

func (p *SelectValPlan) String() string {
	return fmt.Sprintf("σ[φ(%s.Val)](%s)", p.Node, p.In)
}

// RenamePlan suffixes every pattern node name (and output column) of its
// input; it keeps self-joins unambiguous (main₁, main₂, … in §2.1's QEP5).
type RenamePlan struct {
	In     Plan
	Suffix string
}

// Pattern implements Plan.
func (p *RenamePlan) Pattern() *xam.Pattern {
	pat := p.In.Pattern()
	if pat == nil {
		return nil
	}
	for _, n := range pat.Nodes() {
		n.Name += p.Suffix
	}
	return pat
}

// Cost implements Plan: renaming is free.
func (p *RenamePlan) Cost() int { return p.In.Cost() }

// Execute implements Plan.
func (p *RenamePlan) Execute(env Env) (*algebra.Relation, error) {
	r, err := p.In.Execute(env)
	if err != nil {
		return nil, err
	}
	out := algebra.NewRelation(renameSchema(r.Schema, p.Suffix))
	out.Tuples = r.Tuples
	return out, nil
}

func renameSchema(s *algebra.Schema, suffix string) *algebra.Schema {
	out := &algebra.Schema{Attrs: make([]algebra.Attr, len(s.Attrs))}
	for i, a := range s.Attrs {
		name := a.Name
		if j := strings.LastIndexByte(name, '.'); j >= 0 &&
			(name[j:] == ".ID" || name[j:] == ".Tag" || name[j:] == ".Val" || name[j:] == ".Cont") {
			name = name[:j] + suffix + name[j:]
		} else {
			name += suffix
		}
		out.Attrs[i] = algebra.Attr{Name: name, Nested: renameSchema2(a.Nested, suffix)}
	}
	return out
}

func renameSchema2(s *algebra.Schema, suffix string) *algebra.Schema {
	if s == nil {
		return nil
	}
	return renameSchema(s, suffix)
}

func (p *RenamePlan) String() string {
	return fmt.Sprintf("ρ[%s](%s)", p.Suffix, p.In)
}
