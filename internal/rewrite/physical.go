package rewrite

import (
	"context"
	"fmt"
	"sort"

	"xamdb/internal/algebra"
	"xamdb/internal/faultinject"
	"xamdb/internal/physical"
	"xamdb/internal/value"
	"xamdb/internal/xam"
)

// SiteCompileScan is the registered fault-injection site failing plan
// compilation at the first view scan (see internal/faultinject and the
// faultsite analyzer); exported so resilience tests arm exactly the name
// the production check consults.
const SiteCompileScan = "rewrite.compile.scan"

// ExecutePhysical compiles the plan into the §1.2.3 physical operators —
// StackTreeDesc/StackTreeAnc structural joins over sorted inputs, hash joins
// for ID fusions, streaming selections and projections — and drains the
// resulting iterator. It is the execution-engine counterpart of the
// materialized logical Execute, and produces the same relation (checked by
// tests); benchmarks compare the two (the structural-join family is why the
// paper's physical layer exists).
func ExecutePhysical(p Plan, env Env) (*algebra.Relation, error) {
	return ExecutePhysicalContext(context.Background(), p, env)
}

// ExecutePhysicalContext is ExecutePhysical under a context: every view scan
// is wrapped in a cancellation checkpoint and every materialization point
// honors the context, so an expired deadline aborts the plan with the
// context's error instead of running to completion.
func ExecutePhysicalContext(ctx context.Context, p Plan, env Env) (*algebra.Relation, error) {
	it, err := compile(ctx, p, env)
	if err != nil {
		return nil, err
	}
	return physical.DrainContext(ctx, it)
}

// compile turns a logical plan into an iterator tree.
func compile(ctx context.Context, p Plan, env Env) (physical.Iterator, error) {
	switch pl := p.(type) {
	case *ScanPlan:
		if err := faultinject.Check(SiteCompileScan); err != nil {
			return nil, err
		}
		rel, ok := env[pl.View.Name]
		if !ok {
			return nil, fmt.Errorf("rewrite: no extent for view %q", pl.View.Name)
		}
		return physical.NewCheckpoint(ctx, physical.NewScan(rel, nil)), nil

	case *ProjectPlan:
		in, err := compile(ctx, pl.In, env)
		if err != nil {
			return nil, err
		}
		// π⁰ semantics: dedup after projection (materializing; projections
		// sit at plan roots).
		proj, err := physical.NewProject(in, pl.Attrs...)
		if err != nil {
			return nil, err
		}
		drained, err := physical.DrainContext(ctx, proj)
		if err != nil {
			return nil, err
		}
		rel := algebra.Distinct(drained)
		return physical.NewScan(rel, proj.Order()), nil

	case *SelectTagPlan:
		in, err := compile(ctx, pl.In, env)
		if err != nil {
			return nil, err
		}
		return physical.NewSelect(in, algebra.Pred{Path: pl.Node + ".Tag", Op: algebra.Eq, Const: algebra.S(pl.Label)})

	case *SelectValPlan:
		in, err := compile(ctx, pl.In, env)
		if err != nil {
			return nil, err
		}
		col := in.Schema().Index(pl.Node + ".Val")
		if col < 0 {
			return nil, fmt.Errorf("rewrite: select-val: no column %s.Val", pl.Node)
		}
		f := pl.Formula
		return physical.NewFilter(in, func(t algebra.Tuple) bool {
			return !t[col].IsNull() && f.Holds(value.Str(t[col].AsString()))
		}), nil

	case *StructJoinPlan:
		outer, err := compile(ctx, pl.Outer, env)
		if err != nil {
			return nil, err
		}
		inner, err := compile(ctx, pl.Inner, env)
		if err != nil {
			return nil, err
		}
		// StackTree joins need both inputs sorted by the join IDs.
		outerSorted := physical.NewSort(outer, pl.OuterNode+".ID")
		innerSorted := physical.NewSort(inner, pl.InnerNode+".ID")
		axis := physical.DescendantAxis
		if pl.Axis == xam.Child {
			axis = physical.ChildAxis
		}
		return physical.NewStackTreeDesc(outerSorted, innerSorted, pl.OuterNode+".ID", pl.InnerNode+".ID", axis)

	case *FusePlan:
		left, err := compile(ctx, pl.Left, env)
		if err != nil {
			return nil, err
		}
		right, err := compile(ctx, pl.Right, env)
		if err != nil {
			return nil, err
		}
		hj, err := physical.NewHashJoin(left, right, pl.LeftNode+".ID", pl.RightNode+".ID", false)
		if err != nil {
			return nil, err
		}
		// Drop the duplicated key and rename the fused columns, matching the
		// logical FusePlan output.
		rel, err := physical.DrainContext(ctx, hj)
		if err != nil {
			return nil, err
		}
		shaped, err := fuseShape(rel, pl, left.Schema(), right.Schema())
		if err != nil {
			return nil, err
		}
		return physical.NewScan(shaped, nil), nil

	case *DeriveParentPlan:
		rel, err := pl.Execute(env) // derivation is a per-tuple map; reuse
		if err != nil {
			return nil, err
		}
		return physical.NewScan(rel, nil), nil

	case *UnionPlan:
		var acc *algebra.Relation
		for _, part := range pl.Parts {
			it, err := compile(ctx, part, env)
			if err != nil {
				return nil, err
			}
			rel, err := physical.DrainContext(ctx, it)
			if err != nil {
				return nil, err
			}
			if acc == nil {
				acc = rel
				continue
			}
			aligned := algebra.NewRelation(acc.Schema)
			aligned.Tuples = rel.Tuples
			acc, err = algebra.Union(acc, aligned)
			if err != nil {
				return nil, err
			}
		}
		if acc == nil {
			return nil, fmt.Errorf("rewrite: empty union plan")
		}
		return physical.NewScan(acc, nil), nil

	case *RenamePlan:
		in, err := compile(ctx, pl.In, env)
		if err != nil {
			return nil, err
		}
		rel, err := physical.DrainContext(ctx, in)
		if err != nil {
			return nil, err
		}
		out := algebra.NewRelation(renameSchema(rel.Schema, pl.Suffix))
		out.Tuples = rel.Tuples
		return physical.NewScan(out, nil), nil
	}
	return nil, fmt.Errorf("rewrite: cannot compile %T", p)
}

// fuseShape reproduces FusePlan's output shaping on a drained hash join.
func fuseShape(rel *algebra.Relation, pl *FusePlan, left, right *algebra.Schema) (*algebra.Relation, error) {
	var names []string
	for _, a := range left.Attrs {
		names = append(names, a.Name)
	}
	for _, a := range right.Attrs {
		if a.Name == pl.RightNode+".ID" {
			continue
		}
		names = append(names, a.Name)
	}
	proj, err := algebra.Project(rel, false, names...)
	if err != nil {
		return nil, err
	}
	renamed := &algebra.Schema{Attrs: append([]algebra.Attr{}, proj.Schema.Attrs...)}
	for i, a := range renamed.Attrs {
		if hasPrefix(a.Name, pl.RightNode+".") {
			renamed.Attrs[i].Name = pl.LeftNode + a.Name[len(pl.RightNode):]
		}
	}
	out := algebra.NewRelation(renamed)
	out.Tuples = proj.Tuples
	return out, nil
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// SortPlans orders rewritings deterministically by cost then rendering;
// convenience for stable displays.
func SortPlans(rs []*Rewriting) {
	sort.SliceStable(rs, func(i, j int) bool {
		if c1, c2 := rs[i].Plan.Cost(), rs[j].Plan.Cost(); c1 != c2 {
			return c1 < c2
		}
		return rs[i].Plan.String() < rs[j].Plan.String()
	})
}
