package rewrite

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"xamdb/internal/algebra"
	"xamdb/internal/faultinject"
	"xamdb/internal/physical"
	"xamdb/internal/value"
	"xamdb/internal/xam"
)

// SiteCompileScan is the registered fault-injection site failing plan
// compilation at the first view scan (see internal/faultinject and the
// faultsite analyzer); exported so resilience tests arm exactly the name
// the production check consults.
const SiteCompileScan = "rewrite.compile.scan"

// ExecutePhysical compiles the plan into the §1.2.3 physical operators —
// StackTreeDesc/StackTreeAnc structural joins over sorted inputs, hash joins
// for ID fusions, streaming selections and projections — and drains the
// resulting iterator. It is the execution-engine counterpart of the
// materialized logical Execute, and produces the same relation (checked by
// tests); benchmarks compare the two (the structural-join family is why the
// paper's physical layer exists).
func ExecutePhysical(p Plan, env Env) (*algebra.Relation, error) {
	return ExecutePhysicalContext(context.Background(), p, env)
}

// ExecutePhysicalContext is ExecutePhysical under a context: every view scan
// is wrapped in a cancellation checkpoint and every materialization point
// honors the context, so an expired deadline aborts the plan with the
// context's error instead of running to completion.
func ExecutePhysicalContext(ctx context.Context, p Plan, env Env) (*algebra.Relation, error) {
	it, _, err := compile(ctx, p, env, false)
	if err != nil {
		return nil, err
	}
	return physical.DrainContext(ctx, it)
}

// ExecutePhysicalAnalyzeContext is ExecutePhysicalContext with every plan
// node wrapped in a physical.Instrument: the returned OpStats tree mirrors
// the plan and reports rows, Next calls, inclusive time and checkpoint
// polls per operator — the EXPLAIN ANALYZE data source. On execution error
// the partially-filled stats tree is still returned for diagnosis.
func ExecutePhysicalAnalyzeContext(ctx context.Context, p Plan, env Env) (*algebra.Relation, *physical.OpStats, error) {
	it, stats, err := compile(ctx, p, env, true)
	if err != nil {
		return nil, stats, err
	}
	rel, err := physical.DrainContext(ctx, it)
	return rel, stats, err
}

// compile turns a logical plan into an iterator tree. With instr set, every
// plan node is wrapped in an Instrument whose OpStats are linked into a
// tree mirroring the plan; materializing nodes (π⁰, fuse, union, rename)
// attribute their drain time to their own node and keep counting rows as
// the materialized relation is rescanned.
func compile(ctx context.Context, p Plan, env Env, instr bool) (physical.Iterator, *physical.OpStats, error) {
	// wrap instruments a finished node; a no-op when instrumentation is off.
	wrap := func(label string, it physical.Iterator, children ...*physical.OpStats) (physical.Iterator, *physical.OpStats) {
		if !instr {
			return it, nil
		}
		ins := physical.NewInstrument(label, it)
		for _, c := range children {
			ins.Stats().AddChild(c)
		}
		return ins, ins.Stats()
	}
	switch pl := p.(type) {
	case *ScanPlan:
		if err := faultinject.Check(SiteCompileScan); err != nil {
			return nil, nil, err
		}
		rel, ok := env[pl.View.Name]
		if !ok {
			return nil, nil, fmt.Errorf("rewrite: no extent for view %q", pl.View.Name)
		}
		it, st := wrap("scan("+pl.View.Name+")", physical.NewCheckpoint(ctx, physical.NewScan(rel, nil)))
		return it, st, nil

	case *ProjectPlan:
		in, cst, err := compile(ctx, pl.In, env, instr)
		if err != nil {
			return nil, cst, err
		}
		if pl.Nested {
			// Reshape to the projected pattern's schema (projection inside
			// collections), then dedup — the nested π°.
			pat := pl.Pattern()
			if pat == nil {
				return nil, cst, fmt.Errorf("rewrite: nested projection has no pattern")
			}
			var st *physical.OpStats
			var start time.Time
			if instr {
				st = &physical.OpStats{Label: "π⁰ⁿ[" + strings.Join(pl.Attrs, ",") + "]"}
				st.AddChild(cst)
				start = time.Now()
			}
			drained, err := physical.DrainContext(ctx, in)
			if err != nil {
				return nil, st, err
			}
			shaped, err := algebra.Reshape(drained, pat.Schema())
			if err != nil {
				return nil, st, err
			}
			rel := algebra.Distinct(shaped)
			if instr {
				st.Time += time.Since(start)
				return physical.InstrumentWith(st, physical.NewScan(rel, nil)), st, nil
			}
			return physical.NewScan(rel, nil), nil, nil
		}
		// π⁰ semantics: dedup after projection (materializing; projections
		// sit at plan roots).
		proj, err := physical.NewProject(in, pl.Attrs...)
		if err != nil {
			return nil, cst, err
		}
		if !instr {
			drained, err := physical.DrainContext(ctx, proj)
			if err != nil {
				return nil, nil, err
			}
			return physical.NewScan(algebra.Distinct(drained), proj.Order()), nil, nil
		}
		st := &physical.OpStats{Label: "π⁰[" + strings.Join(pl.Attrs, ",") + "]"}
		st.AddChild(cst)
		start := time.Now()
		drained, err := physical.DrainContext(ctx, proj)
		st.Time += time.Since(start)
		if err != nil {
			return nil, st, err
		}
		rel := algebra.Distinct(drained)
		return physical.InstrumentWith(st, physical.NewScan(rel, proj.Order())), st, nil

	case *SelectTagPlan:
		in, cst, err := compile(ctx, pl.In, env, instr)
		if err != nil {
			return nil, cst, err
		}
		sel, err := physical.NewSelect(in, algebra.Pred{Path: pl.Node + ".Tag", Op: algebra.Eq, Const: algebra.S(pl.Label)})
		if err != nil {
			return nil, cst, err
		}
		it, st := wrap(fmt.Sprintf("σ[%s.Tag=%s]", pl.Node, pl.Label), sel, cst)
		return it, st, nil

	case *SelectValPlan:
		if scan, ok := pl.In.(*ScanPlan); ok {
			// Residual selection directly over a view extent: fuse scan and
			// filter into one FormulaSelect leaf. The leaf carries its own
			// cancellation/quota checkpointing, so no Checkpoint wrapper.
			if err := faultinject.Check(SiteCompileScan); err != nil {
				return nil, nil, err
			}
			rel, ok := env[scan.View.Name]
			if !ok {
				return nil, nil, fmt.Errorf("rewrite: no extent for view %q", scan.View.Name)
			}
			fs, err := physical.NewFormulaSelect(ctx, rel, nil, pl.Node+".Val", pl.Formula)
			if err != nil {
				return nil, nil, err
			}
			it, st := wrap(fmt.Sprintf("σ[φ(%s.Val)]·scan(%s)", pl.Node, scan.View.Name), fs)
			return it, st, nil
		}
		in, cst, err := compile(ctx, pl.In, env, instr)
		if err != nil {
			return nil, cst, err
		}
		col := in.Schema().Index(pl.Node + ".Val")
		if col < 0 {
			return nil, cst, fmt.Errorf("rewrite: select-val: no column %s.Val", pl.Node)
		}
		f := pl.Formula
		filter := physical.NewFilter(in, func(t algebra.Tuple) bool {
			return !t[col].IsNull() && f.Holds(value.Str(t[col].AsString()))
		})
		it, st := wrap(fmt.Sprintf("σ[φ(%s.Val)]", pl.Node), filter, cst)
		return it, st, nil

	case *StructJoinPlan:
		outer, ost, err := compile(ctx, pl.Outer, env, instr)
		if err != nil {
			return nil, ost, err
		}
		inner, ist, err := compile(ctx, pl.Inner, env, instr)
		if err != nil {
			return nil, ist, err
		}
		// StackTree joins need both inputs sorted by the join IDs.
		oSort, err := physical.NewSort(outer, pl.OuterNode+".ID")
		if err != nil {
			return nil, ost, err
		}
		iSort, err := physical.NewSort(inner, pl.InnerNode+".ID")
		if err != nil {
			return nil, ist, err
		}
		var outerSorted, innerSorted physical.Iterator = oSort, iSort
		if instr {
			oIns := physical.NewInstrument("sort["+pl.OuterNode+".ID]", outerSorted)
			oIns.Stats().AddChild(ost)
			iIns := physical.NewInstrument("sort["+pl.InnerNode+".ID]", innerSorted)
			iIns.Stats().AddChild(ist)
			outerSorted, ost = oIns, oIns.Stats()
			innerSorted, ist = iIns, iIns.Stats()
		}
		axis := physical.DescendantAxis
		axisName := "desc"
		if pl.Axis == xam.Child {
			axis = physical.ChildAxis
			axisName = "child"
		}
		join, err := physical.NewStackTreeDesc(outerSorted, innerSorted, pl.OuterNode+".ID", pl.InnerNode+".ID", axis)
		if err != nil {
			return nil, nil, err
		}
		it, st := wrap(fmt.Sprintf("stacktree[%s ≺%s %s]", pl.OuterNode, axisName, pl.InnerNode), join, ost, ist)
		return it, st, nil

	case *NestJoinPlan:
		outer, ost, err := compile(ctx, pl.Outer, env, instr)
		if err != nil {
			return nil, ost, err
		}
		inner, ist, err := compile(ctx, pl.Inner, env, instr)
		if err != nil {
			return nil, ist, err
		}
		sem := "nj"
		mode := algebra.NestJoin
		if pl.OuterSem {
			sem = "no"
			mode = algebra.NestOuterJoin
		}
		op := algebra.Ancestor
		if pl.Axis == xam.Child {
			op = algebra.Parent
		}
		// Nest joins group matches into collections — materialize both sides
		// and reuse the logical operator (grouping needs the full match set
		// per outer tuple anyway).
		var st *physical.OpStats
		var start time.Time
		if instr {
			st = &physical.OpStats{Label: fmt.Sprintf("nestjoin·%s[%s≺%s]", sem, pl.OuterNode, pl.InnerNode)}
			st.AddChild(ost)
			st.AddChild(ist)
			start = time.Now()
		}
		orel, err := physical.DrainContext(ctx, outer)
		if err != nil {
			return nil, st, err
		}
		irel, err := physical.DrainContext(ctx, inner)
		if err != nil {
			return nil, st, err
		}
		joined, err := algebra.Join(orel, irel,
			algebra.JoinPred{Left: pl.OuterNode + ".ID", Op: op, Right: pl.InnerNode + ".ID"},
			mode, pl.InnerNode)
		if err != nil {
			return nil, st, err
		}
		if !instr {
			return physical.NewScan(joined, nil), nil, nil
		}
		st.Time += time.Since(start)
		return physical.InstrumentWith(st, physical.NewScan(joined, nil)), st, nil

	case *FusePlan:
		left, lst, err := compile(ctx, pl.Left, env, instr)
		if err != nil {
			return nil, lst, err
		}
		right, rst, err := compile(ctx, pl.Right, env, instr)
		if err != nil {
			return nil, rst, err
		}
		hj, err := physical.NewHashJoin(left, right, pl.LeftNode+".ID", pl.RightNode+".ID", false)
		if err != nil {
			return nil, nil, err
		}
		// Drop the duplicated key and rename the fused columns, matching the
		// logical FusePlan output.
		var st *physical.OpStats
		var start time.Time
		if instr {
			st = &physical.OpStats{Label: fmt.Sprintf("fuse[%s=%s]", pl.LeftNode, pl.RightNode)}
			st.AddChild(lst)
			st.AddChild(rst)
			start = time.Now()
		}
		rel, err := physical.DrainContext(ctx, hj)
		if instr {
			st.Time += time.Since(start)
		}
		if err != nil {
			return nil, st, err
		}
		shaped, err := fuseShape(rel, pl, left.Schema(), right.Schema())
		if err != nil {
			return nil, st, err
		}
		if !instr {
			return physical.NewScan(shaped, nil), nil, nil
		}
		return physical.InstrumentWith(st, physical.NewScan(shaped, nil)), st, nil

	case *DeriveParentPlan:
		var start time.Time
		if instr {
			start = time.Now()
		}
		rel, err := pl.Execute(env) // derivation is a per-tuple map; reuse
		if err != nil {
			return nil, nil, err
		}
		if !instr {
			return physical.NewScan(rel, nil), nil, nil
		}
		st := &physical.OpStats{
			Label: fmt.Sprintf("derive-parent[%s→%s]", pl.ChildNode, pl.ParentNode),
			Time:  time.Since(start),
		}
		return physical.InstrumentWith(st, physical.NewScan(rel, nil)), st, nil

	case *UnionPlan:
		var st *physical.OpStats
		if instr {
			st = &physical.OpStats{Label: "∪"}
		}
		var acc *algebra.Relation
		for _, part := range pl.Parts {
			it, pst, err := compile(ctx, part, env, instr)
			if err != nil {
				return nil, st, err
			}
			if instr {
				st.AddChild(pst)
			}
			var start time.Time
			if instr {
				start = time.Now()
			}
			rel, err := physical.DrainContext(ctx, it)
			if instr {
				st.Time += time.Since(start)
			}
			if err != nil {
				return nil, st, err
			}
			if acc == nil {
				acc = rel
				continue
			}
			aligned := algebra.NewRelation(acc.Schema)
			aligned.Tuples = rel.Tuples
			acc, err = algebra.Union(acc, aligned)
			if err != nil {
				return nil, st, err
			}
		}
		if acc == nil {
			return nil, st, fmt.Errorf("rewrite: empty union plan")
		}
		if !instr {
			return physical.NewScan(acc, nil), nil, nil
		}
		return physical.InstrumentWith(st, physical.NewScan(acc, nil)), st, nil

	case *RenamePlan:
		in, cst, err := compile(ctx, pl.In, env, instr)
		if err != nil {
			return nil, cst, err
		}
		var st *physical.OpStats
		var start time.Time
		if instr {
			st = &physical.OpStats{Label: "ρ[" + pl.Suffix + "]"}
			st.AddChild(cst)
			start = time.Now()
		}
		rel, err := physical.DrainContext(ctx, in)
		if instr {
			st.Time += time.Since(start)
		}
		if err != nil {
			return nil, st, err
		}
		out := algebra.NewRelation(renameSchema(rel.Schema, pl.Suffix))
		out.Tuples = rel.Tuples
		if !instr {
			return physical.NewScan(out, nil), nil, nil
		}
		return physical.InstrumentWith(st, physical.NewScan(out, nil)), st, nil
	}
	return nil, nil, fmt.Errorf("rewrite: cannot compile %T", p)
}

// fuseShape reproduces FusePlan's output shaping on a drained hash join.
func fuseShape(rel *algebra.Relation, pl *FusePlan, left, right *algebra.Schema) (*algebra.Relation, error) {
	var names []string
	for _, a := range left.Attrs {
		names = append(names, a.Name)
	}
	for _, a := range right.Attrs {
		if a.Name == pl.RightNode+".ID" {
			continue
		}
		names = append(names, a.Name)
	}
	proj, err := algebra.Project(rel, false, names...)
	if err != nil {
		return nil, err
	}
	renamed := &algebra.Schema{Attrs: append([]algebra.Attr{}, proj.Schema.Attrs...)}
	for i, a := range renamed.Attrs {
		if hasPrefix(a.Name, pl.RightNode+".") {
			renamed.Attrs[i].Name = pl.LeftNode + a.Name[len(pl.RightNode):]
		}
	}
	out := algebra.NewRelation(renamed)
	out.Tuples = proj.Tuples
	return out, nil
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// SortPlans orders rewritings deterministically by cost then rendering;
// convenience for stable displays.
func SortPlans(rs []*Rewriting) {
	sort.SliceStable(rs, func(i, j int) bool {
		if c1, c2 := rs[i].Plan.Cost(), rs[j].Plan.Cost(); c1 != c2 {
			return c1 < c2
		}
		return rs[i].Plan.String() < rs[j].Plan.String()
	})
}
