package rewrite

import (
	"context"
	"testing"

	"xamdb/internal/datagen"
	"xamdb/internal/patgen"
	"xamdb/internal/summary"
	"xamdb/internal/value"
	"xamdb/internal/xam"
)

// TestBatchEngineMatchesRowEngine is the row/batch differential property
// test: every plan the rewriter produces for a random patgen workload is
// executed through the row physical engine and the vectorized batch engine,
// and the two must agree tuple-for-tuple in order. Both are additionally
// cross-checked against logical evaluation as sets, so a shared bug that
// moved both engines in lockstep would still be caught.
func TestBatchEngineMatchesRowEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("differential workload skipped in -short mode")
	}
	ctx := context.Background()
	doc := datagen.DBLP(30)
	s := summary.Build(doc)

	years := make([]value.Atom, 0, 15)
	for y := 1990; y < 2005; y++ {
		years = append(years, value.Num(float64(y)))
	}
	workloads := []struct {
		name       string
		vcfg, qcfg patgen.Config
		vn, qn     int
		vs, qs     int64
	}{
		{
			name: "structural",
			vcfg: patgen.Config{Nodes: 3, Returns: 2, PPred: -1, POpt: -1},
			qcfg: patgen.Config{Nodes: 3, Returns: 1, PPred: -1, POpt: -1},
			vn:   6, qn: 8, vs: 21, qs: 33,
		},
		{
			name: "predicate",
			vcfg: patgen.Config{Nodes: 3, Returns: 2, PPred: 0.2, POpt: -1, PredValues: years, PredRange: true},
			qcfg: patgen.Config{Nodes: 3, Returns: 1, PPred: 0.6, POpt: -1, PredValues: years, PredRange: true},
			vn:   10, qn: 12, vs: 7, qs: 99,
		},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			viewPats := patgen.GenerateSet(s, w.vcfg, w.vn, w.vs)
			var views []*View
			for i, p := range viewPats {
				for _, n := range p.Nodes() {
					n.IDSpec = xam.StructID
					n.StoreVal = true
				}
				views = append(views, &View{Name: "v" + string(rune('a'+i)), Pattern: p})
			}
			rw := NewRewriter(s, views, Options{MaxPlans: 3, MaxJoinDepth: 1})
			env, err := rw.Materialize(doc)
			if err != nil {
				t.Fatal(err)
			}
			queries := patgen.GenerateSet(s, w.qcfg, w.qn, w.qs)
			var planned int
			var batches, fallbacks int64
			for _, q := range queries {
				for _, n := range q.ReturnNodes() {
					n.StoreVal = true
				}
				plans, err := rw.Rewrite(q)
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range plans {
					planned++
					logical, err := p.Plan.Execute(env)
					if err != nil {
						t.Fatalf("query %s, plan %s: logical: %v", q, p.Plan, err)
					}
					row, err := ExecutePhysicalContext(ctx, p.Plan, env)
					if err != nil {
						t.Fatalf("query %s, plan %s: row: %v", q, p.Plan, err)
					}
					batch, info, err := ExecuteBatchContext(ctx, p.Plan, env)
					if err != nil {
						t.Fatalf("query %s, plan %s: batch: %v", q, p.Plan, err)
					}
					batches += info.Batches
					fallbacks += info.Fallbacks
					if !batch.Equal(row) {
						t.Fatalf("batch/row divergence for %s:\n  plan  %s\n  batch %s\n  row   %s",
							q, p.Plan, batch, row)
					}
					if !row.EqualAsSet(logical) {
						t.Fatalf("row/logical divergence for %s:\n  plan %s\n  row  %s\n  want %s",
							q, p.Plan, row, logical)
					}
				}
			}
			if planned == 0 {
				t.Fatal("workload produced no plans — differential test exercised nothing")
			}
			if batches == 0 {
				t.Fatal("batch engine reported zero batches — vectorized path not exercised")
			}
			t.Logf("%s: %d plans, %d batches, %d fallbacks", w.name, planned, batches, fallbacks)
		})
	}
}
