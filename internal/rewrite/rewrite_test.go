package rewrite

import (
	"strings"
	"testing"

	"xamdb/internal/algebra"
	"xamdb/internal/summary"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
)

func setup(t *testing.T, docSrc string, views map[string]string, opts Options) (*Rewriter, *xmltree.Document, Env) {
	t.Helper()
	doc := xmltree.MustParse("t.xml", docSrc)
	s := summary.Build(doc)
	var vs []*View
	for name, src := range views {
		vs = append(vs, &View{Name: name, Pattern: xam.MustParse(src)})
	}
	rw := NewRewriter(s, vs, opts)
	env, err := rw.Materialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	return rw, doc, env
}

func bestPlan(t *testing.T, rw *Rewriter, q string) *Rewriting {
	t.Helper()
	plans, err := rw.Rewrite(xam.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatalf("no rewriting found for %s", q)
	}
	return plans[0]
}

func TestSingleViewExactRewriting(t *testing.T) {
	rw, doc, env := setup(t,
		`<bib><book><title>T</title></book></bib>`,
		map[string]string{"v1": `// book{id s, cont}`},
		Options{})
	r := bestPlan(t, rw, `// book{id s, cont}`)
	if !strings.Contains(r.Plan.String(), "scan(v1)") {
		t.Fatalf("plan: %s", r.Plan)
	}
	got, err := r.Execute(env)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := xam.MustParse(`// book{id s, cont}`).Eval(doc)
	if !got.EqualAsSet(want) {
		t.Fatalf("results differ:\n%s\nvs\n%s", got, want)
	}
}

func TestProjectionRewriting(t *testing.T) {
	rw, doc, env := setup(t,
		`<bib><book><title>T</title></book></bib>`,
		map[string]string{"wide": `// book{id s, tag, cont}`},
		Options{})
	r := bestPlan(t, rw, `// book{id s}`)
	if !strings.Contains(r.Plan.String(), "π[") {
		t.Fatalf("plan should project: %s", r.Plan)
	}
	got, err := r.Execute(env)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := xam.MustParse(`// book{id s}`).Eval(doc)
	if !got.EqualAsSet(want) {
		t.Fatalf("results differ:\n%s\nvs\n%s", got, want)
	}
}

func TestSummaryEnabledViewReuse(t *testing.T) {
	// The §5.2 motivating scenario: the view stores region children having a
	// description child, without naming them; the summary guarantees all
	// such children are items.
	rw, doc, env := setup(t,
		`<regions><region><item><description/></item><item><description/></item></region></regions>`,
		map[string]string{"v1": `// region(/ *{id s}(/(s) description))`},
		Options{})
	r := bestPlan(t, rw, `// item{id s}`)
	got, err := r.Execute(env)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := xam.MustParse(`// item{id s}`).Eval(doc)
	if !got.EqualAsSet(want) {
		t.Fatalf("results differ:\n%s\nvs\n%s", got, want)
	}
}

func TestStructuralJoinRewriting(t *testing.T) {
	rw, doc, env := setup(t,
		`<bib><book><title>T1</title></book><book><title>T2</title></book></bib>`,
		map[string]string{
			"books":  `// book{id s}`,
			"titles": `// title{id s, val}`,
		},
		Options{})
	q := `// book{id s}(/ title{id s, val})`
	r := bestPlan(t, rw, q)
	if !strings.Contains(r.Plan.String(), "⋈") {
		t.Fatalf("plan should join: %s", r.Plan)
	}
	got, err := r.Execute(env)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := xam.MustParse(q).Eval(doc)
	if !got.EqualAsSet(want) {
		t.Fatalf("results differ:\n%s\nvs\n%s", got, want)
	}
}

func TestUnionRewriting(t *testing.T) {
	rw, doc, env := setup(t,
		`<a><x><b>1</b></x><y><b>2</b></y></a>`,
		map[string]string{
			"vx": `// x(/ b{id s, val})`,
			"vy": `// y(/ b{id s, val})`,
		},
		Options{})
	q := `// b{id s, val}`
	r := bestPlan(t, rw, q)
	if !strings.Contains(r.Plan.String(), "∪") {
		t.Fatalf("plan should union: %s", r.Plan)
	}
	got, err := r.Execute(env)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := xam.MustParse(q).Eval(doc)
	if !got.EqualAsSet(want) {
		t.Fatalf("results differ:\n%s\nvs\n%s", got, want)
	}
	// With unions disabled, no rewriting exists.
	rw.Opts.DisableUnions = true
	plans, err := rw.Rewrite(xam.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 0 {
		t.Fatalf("unexpected plans without unions: %v", plans[0].Plan)
	}
}

func TestDeweyParentDerivation(t *testing.T) {
	rw, doc, env := setup(t,
		`<a><d><p/></d><d><p/></d></a>`,
		map[string]string{"vp": `// d(/ p{id p})`},
		Options{})
	q := `// d{id p}(/ p{id p})`
	r := bestPlan(t, rw, q)
	if !strings.Contains(r.Plan.String(), "deriveParent") {
		t.Fatalf("plan should derive parent IDs: %s", r.Plan)
	}
	got, err := r.Execute(env)
	if err != nil {
		t.Fatal(err)
	}
	// Verify derived parent IDs are the true Dewey labels of the d nodes.
	ds := doc.Root.Elements()
	found := 0
	for _, tp := range got.Tuples {
		di := got.Schema.Index("e1.ID")
		if di < 0 {
			t.Fatalf("schema: %s", got.Schema)
		}
		for _, d := range ds {
			if tp[di].Kind == algebra.DeweyID && tp[di].Dewey.Compare(d.Dewey) == 0 {
				found++
			}
		}
	}
	if found != 2 {
		t.Fatalf("derived parent IDs wrong: %s", got)
	}
	// With derivation disabled, no rewriting exists.
	rw.Opts.DisableDerive = true
	plans, _ := rw.Rewrite(xam.MustParse(q))
	if len(plans) != 0 {
		t.Fatalf("unexpected plans without derivation: %v", plans[0].Plan)
	}
}

func TestNoRewritingWhenViewsInsufficient(t *testing.T) {
	rw, _, _ := setup(t,
		`<bib><book><title>T</title></book></bib>`,
		map[string]string{"titles": `// title{id s}`},
		Options{})
	plans, err := rw.Rewrite(xam.MustParse(`// book{id s, cont}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 0 {
		t.Fatalf("unexpected plan: %v", plans[0].Plan)
	}
}

func TestValuePredicateViewOnlyForMatchingQueries(t *testing.T) {
	rw, doc, env := setup(t,
		`<bib><book><year>1999</year></book><book><year>2005</year></book></bib>`,
		map[string]string{
			"v99":  `// book{id s}(/(s) year{val=1999})`,
			"vall": `// book{id s}`,
		},
		Options{})
	// Query with the same predicate: the filtered view fits.
	q := `// book{id s}(/(s) year{val=1999})`
	plans, err := rw.Rewrite(xam.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	var foundFiltered bool
	for _, p := range plans {
		if strings.Contains(p.Plan.String(), "scan(v99)") && !strings.Contains(p.Plan.String(), "vall") {
			foundFiltered = true
			got, err := p.Execute(env)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := xam.MustParse(q).Eval(doc)
			if !got.EqualAsSet(want) {
				t.Fatalf("results differ")
			}
		}
	}
	if !foundFiltered {
		t.Fatal("filtered view not used")
	}
	// The unfiltered query must not be answered by the filtered view alone.
	plans2, _ := rw.Rewrite(xam.MustParse(`// book{id s}`))
	for _, p := range plans2 {
		if strings.Contains(p.Plan.String(), "v99") && !strings.Contains(p.Plan.String(), "vall") {
			t.Fatalf("unsound plan: %s", p.Plan)
		}
	}
}

// TestNestedFitFromFlatViews is the FLWOR-shaped rewrite: a query with a
// semijoin predicate branch and a nest-outer return collection, answered
// from two flat ID-bearing views via absorption (σφ fused onto the year
// view) and a nest-outer structural join rebuilding the collection.
func TestNestedFitFromFlatViews(t *testing.T) {
	rw, doc, env := setup(t,
		`<bib>
		  <article><year>1999</year><title>A</title></article>
		  <article><year>1999</year><title>B</title><title>B2</title></article>
		  <article><year>2002</year><title>C</title></article>
		  <article><year>1999</year></article>
		</bib>`,
		map[string]string{
			"v_ay": `// article{id s}(/ year{id s, val})`,
			"v_t":  `// title{id s, cont}`,
		},
		Options{MaxPlans: 3})
	q := `// article{id s}(/(s) year{val="1999"}, /(no) title{cont})`
	r := bestPlan(t, rw, q)
	plan := r.Plan.String()
	if !strings.Contains(plan, "σ[φ(") || !strings.Contains(plan, "scan(v_ay)") || !strings.Contains(plan, "⋈no") {
		t.Fatalf("want absorbed selection + nest-outer join over the views, got %s", plan)
	}
	want, err := xam.MustParse(q).Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Execute(env)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Fatalf("logical execution differs:\n%s\nvs\n%s", got, want)
	}
	prel, err := ExecutePhysical(r.Plan, env)
	if err != nil {
		t.Fatal(err)
	}
	aligned, err := r.AlignSchema(prel)
	if err != nil {
		t.Fatal(err)
	}
	if !aligned.EqualAsSet(want) {
		t.Fatalf("physical execution differs:\n%s\nvs\n%s", aligned, want)
	}
	// Three matching articles, including the title-less one (nest-outer
	// keeps its empty collection); σφ must have excluded the 2002 article.
	if got.Len() != 3 {
		t.Fatalf("rows: %d, want 3\n%s", got.Len(), got)
	}
}

func TestFusionRewriting(t *testing.T) {
	// Two views over the same nodes, each storing half the attributes;
	// fusing on node identity recovers both.
	rw, doc, env := setup(t,
		`<bib><book><title>T1</title></book><book><title>T2</title></book></bib>`,
		map[string]string{
			"ids":  `// title{id s, val}`,
			"tags": `// title{id s, tag}`,
		},
		Options{})
	q := `// title{id s, tag, val}`
	plans, err := rw.Rewrite(xam.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	var fused *Rewriting
	for _, p := range plans {
		if strings.Contains(p.Plan.String(), "=") {
			fused = p
			break
		}
	}
	if fused == nil {
		t.Fatalf("no fusion plan among %d plans", len(plans))
	}
	got, err := fused.Execute(env)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := xam.MustParse(q).Eval(doc)
	if got.Len() != want.Len() {
		t.Fatalf("results differ:\n%s\nvs\n%s", got, want)
	}
}

func TestRewritePrefersCheapestPlan(t *testing.T) {
	rw, _, _ := setup(t,
		`<bib><book><title>T</title></book></bib>`,
		map[string]string{
			"exact":  `// book{id s}(/ title{id s, val})`,
			"books":  `// book{id s}`,
			"titles": `// title{id s, val}`,
		},
		Options{})
	plans, err := rw.Rewrite(xam.MustParse(`// book{id s}(/ title{id s, val})`))
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 2 {
		t.Fatalf("want several plans, got %d", len(plans))
	}
	if !strings.Contains(plans[0].Plan.String(), "scan(exact)") || strings.Contains(plans[0].Plan.String(), "⋈") {
		t.Fatalf("cheapest plan should be the exact view scan: %s", plans[0].Plan)
	}
}

func TestNodeStoreTagSelections(t *testing.T) {
	// The QEP5 shape of §2.1.1: a node store answers //book/title by two
	// tag selections over the wildcard view plus a structural join.
	rw, doc, env := setup(t,
		`<bib><book><title>T1</title></book><book><title>T2</title></book></bib>`,
		map[string]string{"main": `// *{id s, tag, val}`},
		Options{})
	q := `// book(/ title{val})`
	r := bestPlan(t, rw, q)
	if !strings.Contains(r.Plan.String(), "σ[") {
		t.Fatalf("plan should select tags: %s", r.Plan)
	}
	got, err := r.Execute(env)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := xam.MustParse(q).Eval(doc)
	if !got.EqualAsSet(want) {
		t.Fatalf("results differ:\n%s\nvs\n%s", got, want)
	}
}

func TestValueSelectionOnWideView(t *testing.T) {
	rw, doc, env := setup(t,
		`<bib><book><year>1999</year></book><book><year>2005</year></book></bib>`,
		map[string]string{"years": `// year{id s, val}`},
		Options{})
	q := `// year{id s, val, val=1999}`
	r := bestPlan(t, rw, q)
	if !strings.Contains(r.Plan.String(), "σ[φ") {
		t.Fatalf("plan should filter values: %s", r.Plan)
	}
	got, err := r.Execute(env)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := xam.MustParse(q).Eval(doc)
	if !got.EqualAsSet(want) {
		t.Fatalf("results differ:\n%s\nvs\n%s", got, want)
	}
}

// TestViewRefs checks the plan walker the engine's lazy materialization
// relies on: it must name exactly the views a plan scans, across join and
// union shapes, without duplicates.
func TestViewRefs(t *testing.T) {
	rw, _, _ := setup(t,
		`<bib><book><title>T1</title></book><book><title>T2</title></book></bib>`,
		map[string]string{
			"books":  `// book{id s}`,
			"titles": `// title{id s, val}`,
		},
		Options{})
	r := bestPlan(t, rw, `// book{id s}(/ title{id s, val})`)
	refs := ViewRefs(r.Plan)
	if len(refs) != 2 {
		t.Fatalf("join plan %s must reference both views, got %v", r.Plan, refs)
	}
	got := map[string]bool{}
	for _, name := range refs {
		if got[name] {
			t.Fatalf("duplicate ref %q in %v", name, refs)
		}
		got[name] = true
	}
	if !got["books"] || !got["titles"] {
		t.Fatalf("refs = %v, want books and titles", refs)
	}

	rwu, _, _ := setup(t,
		`<a><x><b>1</b></x><y><b>2</b></y></a>`,
		map[string]string{
			"vx": `// x(/ b{id s, val})`,
			"vy": `// y(/ b{id s, val})`,
		},
		Options{})
	ru := bestPlan(t, rwu, `// b{id s, val}`)
	urefs := ViewRefs(ru.Plan)
	if len(urefs) != 2 {
		t.Fatalf("union plan %s must reference both views, got %v", ru.Plan, urefs)
	}
}

// TestMaterializeView checks the single-view entry point the engine's lazy
// extents use: known views evaluate, R-marked index views have no standalone
// extent, unknown names error.
func TestMaterializeView(t *testing.T) {
	doc := xmltree.MustParse("t.xml", `<bib><book><title>T</title></book></bib>`)
	s := summary.Build(doc)
	rw := NewRewriter(s, []*View{
		{Name: "v", Pattern: xam.MustParse(`// book{id s, cont}`)},
		{Name: "idx", Pattern: xam.MustParse(`// title{id R, val}`)},
	}, Options{})
	rel, err := rw.MaterializeView(doc, "v")
	if err != nil || rel == nil || rel.Len() != 1 {
		t.Fatalf("MaterializeView(v) = %v, %v", rel, err)
	}
	rel, err = rw.MaterializeView(doc, "idx")
	if err != nil || rel != nil {
		t.Fatalf("index view must have no standalone extent, got %v, %v", rel, err)
	}
	if _, err := rw.MaterializeView(doc, "nope"); err == nil {
		t.Fatal("unknown view must error")
	}
}
