package rewrite

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"xamdb/internal/physical"
	"xamdb/internal/xam"
)

// TestPhysicalMatchesLogical: the iterator-based execution must agree with
// the materialized logical execution on every plan kind.
func TestPhysicalMatchesLogical(t *testing.T) {
	rw, _, env := setup(t,
		`<bib><book year="1999"><title>T1</title></book><book><title>T2</title></book></bib>`,
		map[string]string{
			"books":  `// book{id s}`,
			"titles": `// title{id s, val}`,
			"main":   `// *{id s, tag, val}`,
		},
		Options{})
	for _, q := range []string{
		`// book{id s}(/ title{id s, val})`,
		`// title{id s, val}`,
		`// book(/ title{val})`,
	} {
		plans, err := rw.Rewrite(xam.MustParse(q))
		if err != nil {
			t.Fatal(err)
		}
		if len(plans) == 0 {
			t.Fatalf("no plans for %s", q)
		}
		for _, p := range plans {
			logical, err := p.Plan.Execute(env)
			if err != nil {
				t.Fatalf("%s logical: %v", p.Plan, err)
			}
			phys, err := ExecutePhysical(p.Plan, env)
			if err != nil {
				t.Fatalf("%s physical: %v", p.Plan, err)
			}
			if !logical.EqualAsSet(phys) {
				t.Fatalf("plan %s: physical differs\nlogical: %s\nphysical: %s", p.Plan, logical, phys)
			}
		}
	}
}

func TestPhysicalUnionAndDerive(t *testing.T) {
	rw, _, env := setup(t,
		`<a><x><b>1</b></x><y><b>2</b></y></a>`,
		map[string]string{
			"vx": `// x(/ b{id s, val})`,
			"vy": `// y(/ b{id s, val})`,
		},
		Options{})
	plans, err := rw.Rewrite(xam.MustParse(`// b{id s, val}`))
	if err != nil || len(plans) == 0 {
		t.Fatalf("plans: %v %v", plans, err)
	}
	for _, p := range plans {
		logical, err := p.Plan.Execute(env)
		if err != nil {
			t.Fatal(err)
		}
		phys, err := ExecutePhysical(p.Plan, env)
		if err != nil {
			t.Fatal(err)
		}
		if !logical.EqualAsSet(phys) {
			t.Fatalf("union physical differs for %s", p.Plan)
		}
	}

	rw2, _, env2 := setup(t,
		`<a><d><p/></d><d><p/></d></a>`,
		map[string]string{"vp": `// d(/ p{id p})`},
		Options{})
	plans2, err := rw2.Rewrite(xam.MustParse(`// d{id p}(/ p{id p})`))
	if err != nil || len(plans2) == 0 {
		t.Fatalf("derive plans: %v %v", plans2, err)
	}
	logical, _ := plans2[0].Plan.Execute(env2)
	phys, err := ExecutePhysical(plans2[0].Plan, env2)
	if err != nil {
		t.Fatal(err)
	}
	if !logical.EqualAsSet(phys) {
		t.Fatal("derive physical differs")
	}
}

func TestExecutePhysicalContextExpired(t *testing.T) {
	rw, _, env := setup(t,
		`<bib><book><title>T1</title></book><book><title>T2</title></book></bib>`,
		map[string]string{"v": `// book{id s}(/ title{id s, val})`},
		Options{})
	plans, err := rw.Rewrite(xam.MustParse(`// book{id s}(/ title{id s, val})`))
	if err != nil || len(plans) == 0 {
		t.Fatalf("rewrite: %v (%d plans)", err, len(plans))
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := ExecutePhysicalContext(ctx, plans[0].Plan, env); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if rel, err := ExecutePhysicalContext(context.Background(), plans[0].Plan, env); err != nil || rel.Len() == 0 {
		t.Fatalf("live context must execute: %v (%v)", err, rel)
	}
}

// TestAnalyzeMatchesPhysical: the instrumented execution path must return
// the same relation as the plain one on every plan kind, with an OpStats
// tree whose root reports the output cardinality.
func TestAnalyzeMatchesPhysical(t *testing.T) {
	rw, _, env := setup(t,
		`<bib><book year="1999"><title>T1</title></book><book><title>T2</title></book></bib>`,
		map[string]string{
			"books":  `// book{id s}`,
			"titles": `// title{id s, val}`,
			"main":   `// *{id s, tag, val}`,
		},
		Options{})
	for _, q := range []string{
		`// book{id s}(/ title{id s, val})`,
		`// title{id s, val}`,
		`// book(/ title{val})`,
	} {
		plans, err := rw.Rewrite(xam.MustParse(q))
		if err != nil || len(plans) == 0 {
			t.Fatalf("rewrite %s: %v (%d plans)", q, err, len(plans))
		}
		for _, p := range plans {
			plain, err := ExecutePhysical(p.Plan, env)
			if err != nil {
				t.Fatalf("%s plain: %v", p.Plan, err)
			}
			instr, stats, err := ExecutePhysicalAnalyzeContext(context.Background(), p.Plan, env)
			if err != nil {
				t.Fatalf("%s instrumented: %v", p.Plan, err)
			}
			if !plain.EqualAsSet(instr) {
				t.Fatalf("plan %s: instrumented result differs\nplain: %s\ninstr: %s", p.Plan, plain, instr)
			}
			if stats == nil {
				t.Fatalf("plan %s: no stats tree", p.Plan)
			}
			if stats.Rows != int64(instr.Len()) {
				t.Fatalf("plan %s: root rows %d, relation %d", p.Plan, stats.Rows, instr.Len())
			}
		}
	}
}

// TestAnalyzeStatsTreeShape checks the stats tree mirrors a joined plan:
// a structural join node with sorted scan leaves, checkpoint polls on the
// leaves, and inclusive timings.
func TestAnalyzeStatsTreeShape(t *testing.T) {
	rw, _, env := setup(t,
		`<bib><book><title>T1</title></book><book><title>T2</title></book></bib>`,
		map[string]string{
			"books":  `// book{id s}`,
			"titles": `// title{id s, val}`,
		},
		Options{DisableUnions: true})
	plans, err := rw.Rewrite(xam.MustParse(`// book{id s}(/ title{id s, val})`))
	if err != nil || len(plans) == 0 {
		t.Fatalf("rewrite: %v (%d plans)", err, len(plans))
	}
	var joined *Rewriting
	for _, p := range plans {
		if _, ok := p.Plan.(*ProjectPlan); ok {
			joined = p
			break
		}
	}
	if joined == nil {
		joined = plans[0]
	}
	_, stats, err := ExecutePhysicalAnalyzeContext(context.Background(), joined.Plan, env)
	if err != nil {
		t.Fatal(err)
	}
	rendered := stats.String()
	if !strings.Contains(rendered, "scan(") || !strings.Contains(rendered, "rows=") {
		t.Fatalf("stats tree must name scans and rows:\n%s", rendered)
	}
	// Every scan leaf sits under a checkpoint; polls must be recorded.
	var polls int64
	var walk func(s *physical.OpStats)
	walk = func(s *physical.OpStats) {
		polls += s.Checkpoints
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(stats)
	if polls == 0 {
		t.Fatalf("no checkpoint polls recorded anywhere in the tree:\n%s", rendered)
	}
}
