package physical

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"xamdb/internal/algebra"
	"xamdb/internal/value"
)

func selectFixture(n int) *algebra.Relation {
	rel := algebra.NewRelation(&algebra.Schema{Attrs: []algebra.Attr{{Name: "n.Val"}, {Name: "n.ID"}}})
	for i := 0; i < n; i++ {
		rel.Add(algebra.Tuple{algebra.S(fmt.Sprint(i)), algebra.S(fmt.Sprintf("id%d", i))})
	}
	return rel
}

func TestFormulaSelectFilters(t *testing.T) {
	rel := selectFixture(100)
	f := value.Lt(value.Num(10))
	fs, err := NewFormulaSelect(context.Background(), rel, algebra.OrderDesc{"n.ID"}, "n.Val", f)
	if err != nil {
		t.Fatal(err)
	}
	out := Drain(fs)
	if out.Len() != 10 {
		t.Fatalf("want 10 rows, got %d", out.Len())
	}
	if fs.Examined() != 100 {
		t.Fatalf("want 100 examined, got %d", fs.Examined())
	}
	if len(fs.Order()) != 1 || fs.Order()[0] != "n.ID" {
		t.Fatalf("order not preserved: %v", fs.Order())
	}
}

func TestFormulaSelectMissingAttr(t *testing.T) {
	if _, err := NewFormulaSelect(context.Background(), selectFixture(1), nil, "nope", value.True()); err == nil {
		t.Fatal("missing attribute must error")
	}
}

func TestFormulaSelectSkipsNull(t *testing.T) {
	rel := algebra.NewRelation(&algebra.Schema{Attrs: []algebra.Attr{{Name: "n.Val"}}})
	rel.Add(algebra.Tuple{algebra.NullValue})
	rel.Add(algebra.Tuple{algebra.S("5")})
	fs, err := NewFormulaSelect(context.Background(), rel, nil, "n.Val", value.True())
	if err != nil {
		t.Fatal(err)
	}
	if out := Drain(fs); out.Len() != 1 {
		t.Fatalf("null must not satisfy any formula; got %d rows", out.Len())
	}
}

// The residual selection must stay responsive even when it emits nothing:
// an expired context aborts mid-extent through the Cancelled panic.
func TestFormulaSelectCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rel := selectFixture(10_000)
	fs, err := NewFormulaSelect(ctx, rel, nil, "n.Val", value.False())
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := DrainContext(context.Background(), fs); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from the select's own context, got %v", err)
	}
}

// Examined tuples are charged against the tuple quota in checkpoint-sized
// granules, so a selective filter over a big extent still trips the budget.
func TestFormulaSelectChargesBudget(t *testing.T) {
	b := NewBudget(BudgetLimits{MaxTuples: 256}, nil)
	ctx := WithBudget(context.Background(), b)
	rel := selectFixture(10_000)
	fs, err := NewFormulaSelect(ctx, rel, nil, "n.Val", value.False())
	if err != nil {
		t.Fatal(err)
	}
	_, err = DrainContext(context.Background(), fs)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("want ErrQuotaExceeded, got %v", err)
	}
	if fs.Examined() >= 10_000 {
		t.Fatal("quota kill must abort before the whole extent is examined")
	}
	if fs.Polls() == 0 {
		t.Fatal("polls must be counted")
	}
}

// EXPLAIN ANALYZE surfaces examined counts and polls through Instrument.
func TestFormulaSelectInstrumented(t *testing.T) {
	rel := selectFixture(128)
	fs, err := NewFormulaSelect(context.Background(), rel, nil, "n.Val", value.Lt(value.Num(2)))
	if err != nil {
		t.Fatal(err)
	}
	ins := NewInstrument("σ[φ(n.Val)]·scan", fs)
	out := Drain(ins)
	st := ins.Stats()
	if out.Len() != 2 || st.Rows != 2 {
		t.Fatalf("rows: out=%d stats=%d", out.Len(), st.Rows)
	}
	if st.Examined != 128 {
		t.Fatalf("examined: %d", st.Examined)
	}
	if st.Checkpoints == 0 {
		t.Fatal("polls must surface as checkpoints")
	}
}
