package physical

import (
	"fmt"
	"strings"
	"time"

	"xamdb/internal/algebra"
)

// OpStats is one node of an EXPLAIN ANALYZE operator tree: rows produced,
// Next calls served, time spent (inclusive of children — the wall time the
// operator's subtree was pulled through this node), and, for checkpointed
// leaves, how many cancellation polls ran. It is plain data, marshalable to
// JSON for the bench export.
type OpStats struct {
	Label       string        `json:"label"`
	Rows        int64         `json:"rows"`
	NextCalls   int64         `json:"next_calls"`
	Time        time.Duration `json:"time_ns"`
	Checkpoints int64         `json:"checkpoints,omitempty"`
	// Examined counts input tuples a residual selection inspected; with
	// Rows it exposes the filter's selectivity in EXPLAIN ANALYZE.
	Examined int64 `json:"examined,omitempty"`
	// Batches counts NextBatch calls served by a batch operator; row
	// operators leave it zero.
	Batches int64 `json:"batches,omitempty"`
	// PhysRows counts physical batch rows delivered before selection-vector
	// filtering (Batch.N summed over batches). With Rows it exposes the
	// selection-vector density (Rows/PhysRows), and with Batches the batch
	// fill ratio (Rows/Batches) — the vector-efficiency figures of the
	// `-analyze` rendering. Row operators leave it zero.
	PhysRows int64      `json:"phys_rows,omitempty"`
	Children []*OpStats `json:"children,omitempty"`
}

// AddChild appends a child stats node (ignoring nils, so uninstrumented
// subtrees compose silently).
func (s *OpStats) AddChild(c *OpStats) {
	if c != nil {
		s.Children = append(s.Children, c)
	}
}

// TotalRows returns the rows produced by this node (the root of a plan's
// tree reports the plan's output cardinality).
func (s *OpStats) TotalRows() int64 { return s.Rows }

// String renders the annotated operator tree, one operator per line:
//
//	label  rows=N time=1.2ms next=K [ckpt=M]
//	  child …
func (s *OpStats) String() string {
	var sb strings.Builder
	s.render(&sb, 0)
	return sb.String()
}

func (s *OpStats) render(sb *strings.Builder, depth int) {
	fmt.Fprintf(sb, "%s%s  rows=%d time=%s next=%d",
		strings.Repeat("  ", depth), s.Label, s.Rows, s.Time.Round(time.Microsecond), s.NextCalls)
	if s.Checkpoints > 0 {
		fmt.Fprintf(sb, " ckpt=%d", s.Checkpoints)
	}
	if s.Examined > 0 {
		fmt.Fprintf(sb, " exam=%d", s.Examined)
	}
	if s.Batches > 0 {
		fmt.Fprintf(sb, " batches=%d fill=%.1f", s.Batches, float64(s.Rows)/float64(s.Batches))
	}
	if s.PhysRows > 0 {
		fmt.Fprintf(sb, " sel=%.1f%%", 100*float64(s.Rows)/float64(s.PhysRows))
	}
	sb.WriteByte('\n')
	for _, c := range s.Children {
		c.render(sb, depth+1)
	}
}

// Instrument wraps an iterator and records rows out, Next calls and
// cumulative Next time into an OpStats node. Wrapping a *Checkpoint also
// mirrors its cancellation-poll count. Instrumentation is pay-as-you-go:
// plans compiled without it carry no wrappers at all.
type Instrument struct {
	in    Iterator
	stats *OpStats
	ck    *Checkpoint
	fs    *FormulaSelect
}

// NewInstrument wraps in with a fresh stats node labeled label.
func NewInstrument(label string, in Iterator) *Instrument {
	return InstrumentWith(&OpStats{Label: label}, in)
}

// InstrumentWith wraps in, accumulating into an existing stats node — used
// when a plan node materializes (drain + rescan) but must report as one
// operator.
func InstrumentWith(stats *OpStats, in Iterator) *Instrument {
	ins := &Instrument{in: in, stats: stats}
	if ck, ok := in.(*Checkpoint); ok {
		ins.ck = ck
	}
	if fs, ok := in.(*FormulaSelect); ok {
		ins.fs = fs
	}
	return ins
}

// Stats returns the node this wrapper accumulates into.
func (i *Instrument) Stats() *OpStats { return i.stats }

// Schema implements Iterator.
func (i *Instrument) Schema() *algebra.Schema { return i.in.Schema() }

// Order implements Iterator; instrumentation preserves order.
func (i *Instrument) Order() algebra.OrderDesc { return i.in.Order() }

// Next implements Iterator.
func (i *Instrument) Next() (algebra.Tuple, bool) {
	start := time.Now()
	t, ok := i.in.Next()
	i.stats.Time += time.Since(start)
	i.stats.NextCalls++
	if ok {
		i.stats.Rows++
	}
	if i.ck != nil {
		i.stats.Checkpoints = int64(i.ck.Polls())
	}
	if i.fs != nil {
		i.stats.Checkpoints = int64(i.fs.Polls())
		i.stats.Examined = i.fs.Examined()
	}
	return t, ok
}
