package physical

import (
	"context"
	"fmt"

	"xamdb/internal/algebra"
	"xamdb/internal/value"
)

// FormulaSelect is the residual-selection leaf of predicate absorption: a
// scan over a materialized view extent fused with a σ_φ filter on one value
// column, where φ is a §4.1 interval-union formula. Fusing the filter into
// the leaf matters for selective predicates — the operator examines the
// whole extent but emits only matching tuples, so it must itself carry the
// cancellation/quota protocol: like Checkpoint, it polls its context and
// charges the Budget one checkpointInterval of examined tuples at a time,
// keeping quota kills and deadlines responsive even when nothing flows
// downstream for long stretches.
type FormulaSelect struct {
	rel      *algebra.Relation
	order    algebra.OrderDesc
	ctx      context.Context
	budget   *Budget
	col      int
	formula  value.Formula
	pos      int
	examined int64
	polls    int
}

// NewFormulaSelect builds a residual-selection leaf over rel, filtering on
// the named top-level attribute with the given formula. Null values never
// satisfy a formula. The declared order is preserved (filtering keeps the
// relative order of surviving tuples).
func NewFormulaSelect(ctx context.Context, rel *algebra.Relation, order algebra.OrderDesc, attr string, f value.Formula) (*FormulaSelect, error) {
	col := rel.Schema.Index(attr)
	if col < 0 {
		return nil, fmt.Errorf("physical: formula select: no attribute %q", attr)
	}
	return &FormulaSelect{
		rel: rel, order: order, ctx: ctx, budget: BudgetFrom(ctx),
		col: col, formula: f,
	}, nil
}

// Schema implements Iterator.
func (s *FormulaSelect) Schema() *algebra.Schema { return s.rel.Schema }

// Order implements Iterator.
func (s *FormulaSelect) Order() algebra.OrderDesc { return s.order }

// Examined reports how many extent tuples the filter has inspected —
// surfaced by EXPLAIN ANALYZE so residual-selection selectivity is visible
// (rows ÷ examined).
func (s *FormulaSelect) Examined() int64 { return s.examined }

// Polls reports how many context checks have run, mirroring Checkpoint.
func (s *FormulaSelect) Polls() int { return s.polls }

// Next implements Iterator.
func (s *FormulaSelect) Next() (algebra.Tuple, bool) {
	for {
		if s.examined%checkpointInterval == 0 {
			s.polls++
			if err := s.ctx.Err(); err != nil {
				//xamlint:allow nopanic(cancellation protocol: typed panic unwinds the iterator tree and is recovered by DrainContext)
				panic(&Cancelled{Err: err})
			}
			if err := s.budget.ChargeTuples(checkpointInterval); err != nil {
				//xamlint:allow nopanic(cancellation protocol: quota kill unwinds like a deadline and is recovered by DrainContext)
				panic(&Cancelled{Err: err})
			}
		}
		if s.pos >= s.rel.Len() {
			return nil, false
		}
		t := s.rel.Tuples[s.pos]
		s.pos++
		s.examined++
		v := t[s.col]
		if v.Kind != algebra.Null && s.formula.Holds(value.Str(v.AsString())) {
			return t, true
		}
	}
}
