package physical

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xamdb/internal/algebra"
	"xamdb/internal/value"
	"xamdb/internal/xmltree"
)

// randomRel builds a relation of n rows with an ID column (document order),
// a numeric string Val column, and an Int payload — the shape view extents
// have.
func randomRel(seed int64, n int) *algebra.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := algebra.NewRelation(algebra.NewSchema("x.ID", "x.Val", "x.N"))
	for i := 0; i < n; i++ {
		rel.Add(algebra.Tuple{
			algebra.IDV(xmltree.NodeID{Pre: int32(i), Post: int32(n - i), Depth: 2}),
			algebra.S(fmt.Sprintf("%d", rng.Intn(1000))),
			algebra.I(int64(rng.Intn(50))),
		})
	}
	return rel
}

func drainBatches(t *testing.T, it BatchIterator) *algebra.Relation {
	t.Helper()
	rel, _, err := DrainBatchesContext(context.Background(), it)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestBatchScanRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, BatchSize - 1, BatchSize, BatchSize + 1, 3000} {
		rel := randomRel(int64(n), n)
		got := drainBatches(t, NewBatchScan(context.Background(), rel, nil))
		if !got.Equal(rel) {
			t.Fatalf("n=%d: batch scan round trip differs", n)
		}
	}
}

func TestBatchFormulaScanMatchesFormulaSelect(t *testing.T) {
	ctx := context.Background()
	rel := randomRel(7, 2500)
	for _, f := range []value.Formula{
		value.Lt(value.Num(300)),
		value.Ge(value.Num(500)).And(value.Lt(value.Num(900))),
		value.Eq(value.Str("42")),
		value.True(),
		value.False(),
	} {
		fs, err := NewFormulaSelect(ctx, rel, nil, "x.Val", f)
		if err != nil {
			t.Fatal(err)
		}
		want, err := DrainContext(ctx, fs)
		if err != nil {
			t.Fatal(err)
		}
		bfs, err := NewBatchFormulaScan(ctx, rel, nil, "x.Val", f)
		if err != nil {
			t.Fatal(err)
		}
		got := drainBatches(t, bfs)
		if !got.Equal(want) {
			t.Fatalf("formula %s: batch %d rows vs row %d rows", f, got.Len(), want.Len())
		}
		if bfs.Examined() != int64(rel.Len()) {
			t.Fatalf("formula %s: examined %d, want %d", f, bfs.Examined(), rel.Len())
		}
	}
	if _, err := NewBatchFormulaScan(ctx, rel, nil, "nope", value.True()); err == nil {
		t.Fatal("unknown attribute must error")
	}
}

func TestBatchSelectProjectReschema(t *testing.T) {
	ctx := context.Background()
	rel := randomRel(3, 2100)
	// Row pipeline: σ[x.N=7] then π[x.ID].
	sel, err := NewSelect(NewScan(rel, algebra.OrderDesc{"x.ID"}), algebra.Pred{Path: "x.N", Op: algebra.Eq, Const: algebra.I(7)})
	if err != nil {
		t.Fatal(err)
	}
	proj, err := NewProject(sel, "x.ID")
	if err != nil {
		t.Fatal(err)
	}
	want := Drain(proj)

	bsel, err := NewBatchSelect(NewBatchScan(ctx, rel, algebra.OrderDesc{"x.ID"}), algebra.Pred{Path: "x.N", Op: algebra.Eq, Const: algebra.I(7)})
	if err != nil {
		t.Fatal(err)
	}
	bproj, err := NewBatchProject(bsel, "x.ID")
	if err != nil {
		t.Fatal(err)
	}
	if got := drainBatches(t, bproj); !got.Equal(want) {
		t.Fatalf("batch σπ differs: %d vs %d rows", got.Len(), want.Len())
	}
	if o := bproj.Order(); len(o) != 1 || o[0] != "x.ID" {
		t.Fatalf("projection order: %v", o)
	}

	re, err := NewBatchReschema(NewBatchScan(ctx, rel, nil), algebra.NewSchema("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	got := drainBatches(t, re)
	if got.Schema.Attrs[0].Name != "a" || got.Len() != rel.Len() {
		t.Fatalf("reschema: %s", got.Schema)
	}
	if _, err := NewBatchReschema(NewBatchScan(ctx, rel, nil), algebra.NewSchema("a")); err == nil {
		t.Fatal("width mismatch must error")
	}
	if _, err := NewBatchSelect(NewBatchScan(ctx, rel, nil), algebra.Pred{Path: "zz"}); err == nil {
		t.Fatal("unknown select attribute must error")
	}
	if _, err := NewBatchProject(NewBatchScan(ctx, rel, nil), "zz"); err == nil {
		t.Fatal("unknown project attribute must error")
	}
}

func TestBatchSortMatchesSortOp(t *testing.T) {
	ctx := context.Background()
	rel := randomRel(11, 2300)
	s, err := NewSort(NewScan(rel, nil), "x.N", "x.Val")
	if err != nil {
		t.Fatal(err)
	}
	want := Drain(s)
	bs, err := NewBatchSort(NewBatchScan(ctx, rel, nil), "x.N", "x.Val")
	if err != nil {
		t.Fatal(err)
	}
	got := drainBatches(t, bs)
	// Stable sort over equal keys must agree exactly with the row operator.
	if !got.Equal(want) {
		t.Fatal("batch sort differs from SortOp")
	}
	if _, err := NewBatchSort(NewBatchScan(ctx, rel, nil), "zz"); err == nil {
		t.Fatal("unknown sort column must error")
	}
}

func TestRebatchUnbatchRoundTrip(t *testing.T) {
	rel := randomRel(5, 1500)
	rb := NewRebatch(NewScan(rel, algebra.OrderDesc{"x.ID"}))
	if o := rb.Order(); len(o) != 1 || o[0] != "x.ID" {
		t.Fatalf("rebatch order: %v", o)
	}
	got := Drain(NewUnbatch(rb))
	if !got.Equal(rel) {
		t.Fatal("rebatch→unbatch round trip differs")
	}
}

func TestBatchHashJoinMatchesHashJoin(t *testing.T) {
	ctx := context.Background()
	l := randomRel(21, 900)
	r := randomRel(22, 700)
	for _, outer := range []bool{false, true} {
		hj, err := NewHashJoin(NewScan(l, nil), NewScan(r, nil), "x.N", "x.N", outer)
		if err != nil {
			t.Fatal(err)
		}
		want := Drain(hj)
		bhj, err := NewBatchHashJoin(NewBatchScan(ctx, l, nil), NewBatchScan(ctx, r, nil), "x.N", "x.N", outer)
		if err != nil {
			t.Fatal(err)
		}
		got := drainBatches(t, bhj)
		if !got.Equal(want) {
			t.Fatalf("outer=%v: batch hash join differs: %d vs %d rows", outer, got.Len(), want.Len())
		}
	}
	if _, err := NewBatchHashJoin(NewBatchScan(ctx, l, nil), NewBatchScan(ctx, r, nil), "zz", "x.N", false); err == nil {
		t.Fatal("missing attribute must error")
	}
}

func TestBatchStackTreeMatchesRowStackTree(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 5; seed++ {
		anc, desc, _, _ := buildDocRelations(t, seed, 80)
		for _, axis := range []Axis{ChildAxis, DescendantAxis} {
			row, err := NewStackTreeDesc(NewScan(anc, algebra.OrderDesc{"A"}), NewScan(desc, algebra.OrderDesc{"D"}), "A", "D", axis)
			if err != nil {
				t.Fatal(err)
			}
			want := Drain(row)

			// Pre-sorted batch inputs.
			bj, err := NewBatchStackTreeDesc(
				NewBatchScan(ctx, anc, algebra.OrderDesc{"A"}),
				NewBatchScan(ctx, desc, algebra.OrderDesc{"D"}), "A", "D", axis)
			if err != nil {
				t.Fatal(err)
			}
			got := drainBatches(t, bj)
			if !got.Equal(want) {
				t.Fatalf("seed %d axis %v: batch stacktree differs: %d vs %d rows",
					seed, axis, got.Len(), want.Len())
			}

			// Through BatchSort inputs (the fused sortedRefs path).
			oSort, err := NewBatchSort(NewBatchScan(ctx, anc, nil), "A")
			if err != nil {
				t.Fatal(err)
			}
			iSort, err := NewBatchSort(NewBatchScan(ctx, desc, nil), "D")
			if err != nil {
				t.Fatal(err)
			}
			bj2, err := NewBatchStackTreeDesc(oSort, iSort, "A", "D", axis)
			if err != nil {
				t.Fatal(err)
			}
			if got2 := drainBatches(t, bj2); !got2.Equal(want) {
				t.Fatalf("seed %d axis %v: sorted-refs stacktree differs", seed, axis)
			}
		}
	}
}

func TestBatchStackTreeRejectsUnsortedInput(t *testing.T) {
	ctx := context.Background()
	r := relOf([]string{"A"}, []algebra.Value{idv(1, 1, 1)})
	if _, err := NewBatchStackTreeDesc(NewBatchScan(ctx, r, nil), NewBatchScan(ctx, r, algebra.OrderDesc{"A"}), "A", "A", ChildAxis); err == nil {
		t.Fatal("must reject unsorted ancestor input")
	}
	if _, err := NewBatchStackTreeDesc(NewBatchScan(ctx, r, algebra.OrderDesc{"A"}), NewBatchScan(ctx, r, nil), "A", "A", ChildAxis); err == nil {
		t.Fatal("must reject unsorted descendant input")
	}
}

func TestBatchScanHonorsBudgetAndContext(t *testing.T) {
	rel := randomRel(31, 5000)

	// Tuple quota: the charging scan must abort once the budget is spent.
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	b := NewBudget(BudgetLimits{MaxTuples: BatchSize + 1}, cancel)
	bctx := WithBudget(ctx, b)
	_, _, err := DrainBatchesContext(bctx, NewBatchScan(bctx, rel, nil))
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("quota kill must surface ErrQuotaExceeded, got %v", err)
	}

	// The non-charging rescan must NOT consume the tuple quota.
	ctx2, cancel2 := context.WithCancelCause(context.Background())
	defer cancel2(nil)
	b2 := NewBudget(BudgetLimits{MaxTuples: 1}, cancel2)
	bctx2 := WithBudget(ctx2, b2)
	if _, _, err := DrainBatchesContext(bctx2, NewBatchRelScan(bctx2, rel, nil)); err != nil {
		t.Fatalf("rescan must not charge the tuple quota: %v", err)
	}

	// Context cancellation unwinds through the Cancelled panic protocol.
	ctx3, cancel3 := context.WithCancel(context.Background())
	cancel3()
	if _, _, err := DrainBatchesContext(ctx3, NewBatchScan(ctx3, rel, nil)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context must abort the drain, got %v", err)
	}
}

func TestBatchInstrumentCounts(t *testing.T) {
	ctx := context.Background()
	rel := randomRel(41, 2500)
	fs, err := NewBatchFormulaScan(ctx, rel, nil, "x.Val", value.Lt(value.Num(500)))
	if err != nil {
		t.Fatal(err)
	}
	ins := NewBatchInstrument("σφ·scan", fs)
	got := drainBatches(t, ins)
	st := ins.Stats()
	if st.Rows != int64(got.Len()) {
		t.Fatalf("rows %d vs %d", st.Rows, got.Len())
	}
	if st.Batches == 0 || st.Batches != st.NextCalls {
		t.Fatalf("batches=%d next=%d", st.Batches, st.NextCalls)
	}
	if st.Examined != int64(rel.Len()) {
		t.Fatalf("examined %d, want %d", st.Examined, rel.Len())
	}
	if st.Checkpoints == 0 {
		t.Fatal("poll count must surface as checkpoints")
	}
	// Vector-efficiency accounting: the fused filter emits selection
	// vectors over full physical windows, so PhysRows is the pre-selection
	// row count and Rows/PhysRows the selection density.
	if st.PhysRows != int64(rel.Len()) {
		t.Fatalf("phys rows %d, want %d", st.PhysRows, rel.Len())
	}
	if st.PhysRows <= st.Rows {
		t.Fatalf("selective filter must show phys=%d > live=%d", st.PhysRows, st.Rows)
	}
	s := st.String()
	if !strings.Contains(s, "fill=") || !strings.Contains(s, "sel=") {
		t.Fatalf("render must carry fill ratio and selection density: %q", s)
	}
	wantFill := fmt.Sprintf("fill=%.1f", float64(st.Rows)/float64(st.Batches))
	wantSel := fmt.Sprintf("sel=%.1f%%", 100*float64(st.Rows)/float64(st.PhysRows))
	if !strings.Contains(s, wantFill) || !strings.Contains(s, wantSel) {
		t.Fatalf("render %q must carry %q and %q", s, wantFill, wantSel)
	}
}

// BenchmarkHashJoinProbe measures the row hash join's build+probe loop with
// the typed joinKey; BenchmarkHashJoinProbeStringKeys replicates the former
// rendered-string key on the same data, demonstrating the satellite fix's
// win (one v.String() allocation per build and probe tuple).
func BenchmarkHashJoinProbe(b *testing.B) {
	l := randomRel(51, 4000)
	r := randomRel(52, 4000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hj, err := NewHashJoin(NewScan(l, nil), NewScan(r, nil), "x.ID", "x.ID", true)
		if err != nil {
			b.Fatal(err)
		}
		Drain(hj)
	}
}

func BenchmarkHashJoinProbeStringKeys(b *testing.B) {
	l := randomRel(51, 4000)
	r := randomRel(52, 4000)
	lcol := l.Schema.Index("x.ID")
	rcol := r.Schema.Index("x.ID")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table := map[string][]algebra.Tuple{}
		for _, t := range r.Tuples {
			k := t[rcol].String()
			table[k] = append(table[k], t)
		}
		var out []algebra.Tuple
		for _, t := range l.Tuples {
			matches := table[t[lcol].String()]
			if len(matches) == 0 {
				pad := make(algebra.Tuple, len(r.Schema.Attrs))
				for i := range pad {
					pad[i] = algebra.NullValue
				}
				out = append(out, t.Concat(pad))
				continue
			}
			for _, u := range matches {
				out = append(out, t.Concat(u))
			}
		}
		_ = out
	}
}
