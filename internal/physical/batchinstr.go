package physical

import (
	"time"

	"xamdb/internal/algebra"
)

// batchPoller is implemented by self-checkpointing batch leaves that report
// their cancellation-poll count (BatchScan, BatchFormulaScan).
type batchPoller interface{ Polls() int }

// batchExaminer is implemented by fused batch filters that report how many
// rows they inspected (BatchFormulaScan).
type batchExaminer interface{ Examined() int64 }

// BatchInstrument is Instrument for the batch protocol: it records live
// rows out, NextBatch calls (as both NextCalls and Batches) and cumulative
// time into an OpStats node, mirroring poll/examined counters from
// self-checkpointing batch leaves. Row and batch operators thus share one
// EXPLAIN ANALYZE tree shape.
type BatchInstrument struct {
	in    BatchIterator
	stats *OpStats
	bp    batchPoller
	be    batchExaminer
}

// NewBatchInstrument wraps in with a fresh stats node labeled label.
func NewBatchInstrument(label string, in BatchIterator) *BatchInstrument {
	return BatchInstrumentWith(&OpStats{Label: label}, in)
}

// BatchInstrumentWith wraps in, accumulating into an existing stats node.
func BatchInstrumentWith(stats *OpStats, in BatchIterator) *BatchInstrument {
	ins := &BatchInstrument{in: in, stats: stats}
	if bp, ok := in.(batchPoller); ok {
		ins.bp = bp
	}
	if be, ok := in.(batchExaminer); ok {
		ins.be = be
	}
	return ins
}

// Stats returns the node this wrapper accumulates into.
func (i *BatchInstrument) Stats() *OpStats { return i.stats }

// Schema implements BatchIterator.
func (i *BatchInstrument) Schema() *algebra.Schema { return i.in.Schema() }

// Order implements BatchIterator; instrumentation preserves order.
func (i *BatchInstrument) Order() algebra.OrderDesc { return i.in.Order() }

// NextBatch implements BatchIterator.
func (i *BatchInstrument) NextBatch() (*Batch, bool) {
	start := time.Now()
	b, ok := i.in.NextBatch()
	i.stats.Time += time.Since(start)
	i.stats.NextCalls++
	i.stats.Batches++
	if ok {
		i.stats.Rows += int64(b.Rows())
		i.stats.PhysRows += int64(b.N)
	}
	if i.bp != nil {
		i.stats.Checkpoints = int64(i.bp.Polls())
	}
	if i.be != nil {
		i.stats.Examined = i.be.Examined()
	}
	return b, ok
}
