package physical

import (
	"context"
	"errors"
	"testing"

	"xamdb/internal/algebra"
)

// budgetRel builds a flat single-attribute relation of n string tuples.
func budgetRel(n int) *algebra.Relation {
	rel := algebra.NewRelation(algebra.NewSchema("a"))
	for i := 0; i < n; i++ {
		rel.Add(algebra.Tuple{algebra.S("x")})
	}
	return rel
}

// TestBudgetNilSafe checks that a nil budget admits everything, so call
// sites need no guards.
func TestBudgetNilSafe(t *testing.T) {
	var b *Budget
	if err := b.ChargeTuples(1 << 40); err != nil {
		t.Fatal(err)
	}
	if err := b.ChargeExtentBytes(1 << 40); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckRowsOut(1 << 40); err != nil {
		t.Fatal(err)
	}
}

// TestBudgetLimits exercises each quota dimension independently.
func TestBudgetLimits(t *testing.T) {
	b := NewBudget(BudgetLimits{MaxRowsOut: 10, MaxExtentBytes: 100, MaxTuples: 5}, nil)
	if err := b.CheckRowsOut(10); err != nil {
		t.Fatalf("rows at limit must pass: %v", err)
	}
	if err := b.CheckRowsOut(11); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("rows over limit: got %v", err)
	}
	if err := b.ChargeExtentBytes(60); err != nil {
		t.Fatal(err)
	}
	if err := b.ChargeExtentBytes(60); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("cumulative bytes over limit: got %v", err)
	}
	if err := b.ChargeTuples(6); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("tuples over limit: got %v", err)
	}
}

// TestBudgetCancelsContext checks that tripping any quota cancels the
// query's context with the quota error as cause, so every checkpoint in the
// plan sees the kill.
func TestBudgetCancelsContext(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	b := NewBudget(BudgetLimits{MaxExtentBytes: 1}, cancel)
	err := b.ChargeExtentBytes(2)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("got %v", err)
	}
	if ctx.Err() == nil {
		t.Fatal("context must be cancelled after a quota trip")
	}
	if !errors.Is(context.Cause(ctx), ErrQuotaExceeded) {
		t.Fatalf("cause must carry the quota error, got %v", context.Cause(ctx))
	}
}

// TestCheckpointEnforcesTupleQuota drains a plan whose tuple quota is far
// below its cardinality and checks the drain dies with the quota error
// instead of materializing everything.
func TestCheckpointEnforcesTupleQuota(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	b := NewBudget(BudgetLimits{MaxTuples: 100}, cancel)
	ctx = WithBudget(ctx, b)

	it := NewCheckpoint(ctx, NewScan(budgetRel(100000), nil))
	rel, err := DrainContext(ctx, it)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("drain must die on the tuple quota, got rel=%v err=%v", rel, err)
	}
}

// TestCheckpointNoBudgetUnlimited checks plans without a budget drain fully.
func TestCheckpointNoBudgetUnlimited(t *testing.T) {
	ctx := context.Background()
	it := NewCheckpoint(ctx, NewScan(budgetRel(1000), nil))
	rel, err := DrainContext(ctx, it)
	if err != nil || rel.Len() != 1000 {
		t.Fatalf("got len=%d err=%v", rel.Len(), err)
	}
}

// TestEstimatedBytesStable checks the estimate is positive, cached, and
// grows with cardinality.
func TestEstimatedBytesStable(t *testing.T) {
	small, big := budgetRel(10), budgetRel(1000)
	s1 := small.EstimatedBytes()
	if s1 <= 0 {
		t.Fatalf("estimate must be positive, got %d", s1)
	}
	if s2 := small.EstimatedBytes(); s2 != s1 {
		t.Fatalf("estimate must be stable: %d then %d", s1, s2)
	}
	if big.EstimatedBytes() <= s1 {
		t.Fatalf("bigger relation must estimate bigger: %d vs %d", big.EstimatedBytes(), s1)
	}
}
