package physical

import (
	"fmt"

	"xamdb/internal/algebra"
)

// BatchHashJoin is the batch form of HashJoin: the right input is drained
// once into a hash table of row references keyed by the typed joinKey, then
// each left batch is probed as a unit. Output batches are gathered straight
// from the source batches' columns — no per-row tuple Concat.
type BatchHashJoin struct {
	left, right BatchIterator
	lcol, rcol  int
	schema      *algebra.Schema
	outer       bool

	built    bool
	rbatches []*Batch
	table    map[joinKey][]batchRef
}

// NewBatchHashJoin joins left and right on equality of the given top-level
// attributes; with outer set, unmatched left rows are padded with ⊥.
func NewBatchHashJoin(left, right BatchIterator, leftAttr, rightAttr string, outer bool) (*BatchHashJoin, error) {
	lc := left.Schema().Index(leftAttr)
	rc := right.Schema().Index(rightAttr)
	if lc < 0 || rc < 0 {
		return nil, fmt.Errorf("physical: batch hash join: missing attribute %q/%q", leftAttr, rightAttr)
	}
	return &BatchHashJoin{
		left: left, right: right, lcol: lc, rcol: rc,
		schema: left.Schema().Concat(right.Schema()),
		outer:  outer,
	}, nil
}

// Schema implements BatchIterator.
func (h *BatchHashJoin) Schema() *algebra.Schema { return h.schema }

// Order implements BatchIterator: output follows the probe (left) order.
func (h *BatchHashJoin) Order() algebra.OrderDesc { return h.left.Order() }

func (h *BatchHashJoin) build() {
	if h.built {
		return
	}
	h.table = map[joinKey][]batchRef{}
	batches, refs := drainRefs(h.right)
	h.rbatches = batches
	for _, ref := range refs {
		k := makeJoinKey(batches[ref.b].Cols[h.rcol][ref.r])
		h.table[k] = append(h.table[k], ref)
	}
	h.built = true
}

// NextBatch implements BatchIterator: probes one left batch and emits all
// its join results as one output batch (sized by the match count, not
// clamped to BatchSize — downstream operators handle any batch size).
func (h *BatchHashJoin) NextBatch() (*Batch, bool) {
	h.build()
	lw := len(h.left.Schema().Attrs)
	rw := len(h.right.Schema().Attrs)
	for {
		lb, ok := h.left.NextBatch()
		if !ok {
			return nil, false
		}
		cols := make([][]algebra.Value, lw+rw)
		n := 0
		emit := func(lr int, rref *batchRef) {
			for j := 0; j < lw; j++ {
				cols[j] = append(cols[j], lb.Cols[j][lr])
			}
			for j := 0; j < rw; j++ {
				if rref != nil {
					cols[lw+j] = append(cols[lw+j], h.rbatches[rref.b].Cols[j][rref.r])
				} else {
					cols[lw+j] = append(cols[lw+j], algebra.NullValue)
				}
			}
			n++
		}
		rows := lb.Rows()
		for i := 0; i < rows; i++ {
			lr := lb.Row(i)
			matches := h.table[makeJoinKey(lb.Cols[h.lcol][lr])]
			if len(matches) == 0 {
				if h.outer {
					emit(lr, nil)
				}
				continue
			}
			for mi := range matches {
				emit(lr, &matches[mi])
			}
		}
		if n == 0 {
			continue
		}
		return &Batch{Schema: h.schema, Cols: cols, N: n}, true
	}
}
