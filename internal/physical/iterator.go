// Package physical implements the execution engine's physical operators
// (§1.2.3): tuple iterators for scan, select, project, sort, hash join,
// nested loops join, and the stack-based structural join algorithms
// StackTreeDesc and StackTreeAnc of Al-Khalifa et al., with semijoin and
// outerjoin variants. Every operator carries an order descriptor so the
// optimizer can verify that structural joins receive correctly sorted
// inputs.
package physical

import (
	"fmt"
	"math"
	"sort"

	"xamdb/internal/algebra"
)

// Iterator is the pull-based physical operator interface. Next returns the
// next tuple and false when exhausted.
type Iterator interface {
	Schema() *algebra.Schema
	// Order is the operator's output order descriptor (§1.2.3).
	Order() algebra.OrderDesc
	Next() (algebra.Tuple, bool)
}

// Drain materializes an iterator into a relation.
func Drain(it Iterator) *algebra.Relation {
	out := algebra.NewRelation(it.Schema())
	for {
		t, ok := it.Next()
		if !ok {
			return out
		}
		out.Add(t)
	}
}

// Scan iterates over a materialized relation, optionally declaring the order
// its tuples are known to satisfy.
type Scan struct {
	rel   *algebra.Relation
	order algebra.OrderDesc
	pos   int
}

// NewScan builds a scan over rel with a declared order.
func NewScan(rel *algebra.Relation, order algebra.OrderDesc) *Scan {
	return &Scan{rel: rel, order: order}
}

// Schema implements Iterator.
func (s *Scan) Schema() *algebra.Schema { return s.rel.Schema }

// Order implements Iterator.
func (s *Scan) Order() algebra.OrderDesc { return s.order }

// Next implements Iterator.
//
//xamlint:allow budgetcharge(leaf by design: every compile site wraps scans in NewCheckpoint, which charges the budget per tuple)
func (s *Scan) Next() (algebra.Tuple, bool) {
	if s.pos >= s.rel.Len() {
		return nil, false
	}
	t := s.rel.Tuples[s.pos]
	s.pos++
	return t, true
}

// Filter applies a tuple predicate.
type Filter struct {
	in   Iterator
	pred func(algebra.Tuple) bool
}

// NewFilter builds a filtering iterator.
func NewFilter(in Iterator, pred func(algebra.Tuple) bool) *Filter {
	return &Filter{in: in, pred: pred}
}

// NewSelect builds a filter from σ predicates on top-level attributes.
func NewSelect(in Iterator, preds ...algebra.Pred) (*Filter, error) {
	idx := make([]int, len(preds))
	for i, p := range preds {
		j := in.Schema().Index(p.Path)
		if j < 0 {
			return nil, fmt.Errorf("physical: select: no attribute %q", p.Path)
		}
		idx[i] = j
	}
	return NewFilter(in, func(t algebra.Tuple) bool {
		for i, p := range preds {
			if !p.Op.Apply(t[idx[i]], p.Const) {
				return false
			}
		}
		return true
	}), nil
}

// Schema implements Iterator.
func (f *Filter) Schema() *algebra.Schema { return f.in.Schema() }

// Order implements Iterator; filtering preserves order.
func (f *Filter) Order() algebra.OrderDesc { return f.in.Order() }

// Next implements Iterator.
func (f *Filter) Next() (algebra.Tuple, bool) {
	for {
		t, ok := f.in.Next()
		if !ok {
			return nil, false
		}
		if f.pred(t) {
			return t, true
		}
	}
}

// Projection keeps the named top-level attributes.
type Projection struct {
	in     Iterator
	cols   []int
	schema *algebra.Schema
}

// NewProject builds a projection iterator.
func NewProject(in Iterator, names ...string) (*Projection, error) {
	cols := make([]int, len(names))
	schema := &algebra.Schema{}
	for i, n := range names {
		j := in.Schema().Index(n)
		if j < 0 {
			return nil, fmt.Errorf("physical: project: no attribute %q", n)
		}
		cols[i] = j
		schema.Attrs = append(schema.Attrs, in.Schema().Attrs[j])
	}
	return &Projection{in: in, cols: cols, schema: schema}, nil
}

// Schema implements Iterator.
func (p *Projection) Schema() *algebra.Schema { return p.schema }

// Order implements Iterator. Projection preserves order only if the order
// columns survive; we report the surviving prefix.
func (p *Projection) Order() algebra.OrderDesc {
	var out algebra.OrderDesc
	for _, o := range p.in.Order() {
		if p.schema.Index(o) >= 0 {
			out = append(out, o)
		} else {
			break
		}
	}
	return out
}

// Next implements Iterator.
func (p *Projection) Next() (algebra.Tuple, bool) {
	t, ok := p.in.Next()
	if !ok {
		return nil, false
	}
	out := make(algebra.Tuple, len(p.cols))
	for i, j := range p.cols {
		out[i] = t[j]
	}
	return out, true
}

// SortOp materializes and sorts its input by top-level attribute paths (the
// paper's Sort_φ; ours is in-memory rather than B+-tree backed).
type SortOp struct {
	in     Iterator
	by     []string
	idx    []int
	sorted []algebra.Tuple
	pos    int
	done   bool
}

// NewSort builds a sort operator. Sort columns are resolved up front and an
// unknown column is an error — a sort that silently ignored a missing key
// would declare an order it does not deliver, and the structural joins
// downstream trust order descriptors.
func NewSort(in Iterator, by ...string) (*SortOp, error) {
	idx := make([]int, len(by))
	for i, b := range by {
		j := in.Schema().Index(b)
		if j < 0 {
			return nil, fmt.Errorf("physical: sort: no attribute %q", b)
		}
		idx[i] = j
	}
	return &SortOp{in: in, by: by, idx: idx}, nil
}

// Schema implements Iterator.
func (s *SortOp) Schema() *algebra.Schema { return s.in.Schema() }

// Order implements Iterator.
func (s *SortOp) Order() algebra.OrderDesc { return algebra.OrderDesc(s.by) }

// Next implements Iterator.
func (s *SortOp) Next() (algebra.Tuple, bool) {
	if !s.done {
		for {
			t, ok := s.in.Next()
			if !ok {
				break
			}
			s.sorted = append(s.sorted, t)
		}
		sort.SliceStable(s.sorted, func(i, j int) bool {
			for _, k := range s.idx {
				cmp, ok := s.sorted[i][k].Compare(s.sorted[j][k])
				if ok && cmp != 0 {
					return cmp < 0
				}
			}
			return false
		})
		s.done = true
	}
	if s.pos >= len(s.sorted) {
		return nil, false
	}
	t := s.sorted[s.pos]
	s.pos++
	return t, true
}

// HashJoin is the equality join backed by a memory-resident hash table built
// on the right input.
type HashJoin struct {
	left, right Iterator
	lcol, rcol  int
	schema      *algebra.Schema
	table       map[joinKey][]algebra.Tuple
	built       bool
	cur         algebra.Tuple
	matches     []algebra.Tuple
	mi          int
	outer       bool
	pad         algebra.Tuple
}

// NewHashJoin joins left and right on equality of the given top-level
// attributes. With outer set, unmatched left tuples are padded with ⊥.
func NewHashJoin(left, right Iterator, leftAttr, rightAttr string, outer bool) (*HashJoin, error) {
	lc := left.Schema().Index(leftAttr)
	rc := right.Schema().Index(rightAttr)
	if lc < 0 || rc < 0 {
		return nil, fmt.Errorf("physical: hash join: missing attribute %q/%q", leftAttr, rightAttr)
	}
	h := &HashJoin{
		left: left, right: right, lcol: lc, rcol: rc,
		schema: left.Schema().Concat(right.Schema()),
		outer:  outer,
	}
	if outer {
		// One shared, immutable ⊥-pad for every unmatched row — tuples are
		// immutable by convention, so all outputs can alias it.
		h.pad = make(algebra.Tuple, len(right.Schema().Attrs))
		for i := range h.pad {
			h.pad[i] = algebra.NullValue
		}
	}
	return h, nil
}

// Schema implements Iterator.
func (h *HashJoin) Schema() *algebra.Schema { return h.schema }

// Order implements Iterator: output follows the probe (left) order.
func (h *HashJoin) Order() algebra.OrderDesc { return h.left.Order() }

// joinKey is the typed, comparable hash-join key. The former string key
// rendered every build and probe value through Value.String — an allocation
// per tuple on the join's hottest path. Typed keys hash the common kinds
// (ID, Int, Float, Str) without rendering; only the rare composite kinds
// (Dewey, nested relations) still fall back to a rendered string.
type joinKey struct {
	kind algebra.Kind
	a, b int64
	s    string
}

func makeJoinKey(v algebra.Value) joinKey {
	switch v.Kind {
	case algebra.Int:
		return joinKey{kind: algebra.Int, a: v.Int}
	case algebra.Float:
		return joinKey{kind: algebra.Float, a: int64(math.Float64bits(v.Float))}
	case algebra.ID:
		return joinKey{kind: algebra.ID,
			a: int64(v.ID.Pre)<<32 | int64(uint32(v.ID.Post)), b: int64(v.ID.Depth)}
	case algebra.Str:
		return joinKey{kind: algebra.Str, s: v.Str}
	case algebra.Null:
		return joinKey{kind: algebra.Null}
	}
	return joinKey{kind: v.Kind, s: v.String()}
}

// Next implements Iterator.
func (h *HashJoin) Next() (algebra.Tuple, bool) {
	if !h.built {
		h.table = map[joinKey][]algebra.Tuple{}
		for {
			t, ok := h.right.Next()
			if !ok {
				break
			}
			k := makeJoinKey(t[h.rcol])
			h.table[k] = append(h.table[k], t)
		}
		h.built = true
	}
	for {
		if h.cur != nil && h.mi < len(h.matches) {
			u := h.matches[h.mi]
			h.mi++
			return h.cur.Concat(u), true
		}
		t, ok := h.left.Next()
		if !ok {
			return nil, false
		}
		h.cur = t
		h.matches = h.table[makeJoinKey(t[h.lcol])]
		h.mi = 0
		if len(h.matches) == 0 {
			if h.outer {
				return t.Concat(h.pad), true
			}
			continue
		}
	}
}

// NestedLoops is the general-predicate join; the right input is materialized.
type NestedLoops struct {
	left    Iterator
	right   []algebra.Tuple
	rschema *algebra.Schema
	pred    func(l, r algebra.Tuple) bool
	schema  *algebra.Schema
	cur     algebra.Tuple
	ri      int
	loaded  bool
	rightIt Iterator
}

// NewNestedLoops builds a nested loops join with an arbitrary predicate.
func NewNestedLoops(left, right Iterator, pred func(l, r algebra.Tuple) bool) *NestedLoops {
	return &NestedLoops{
		left: left, rightIt: right, rschema: right.Schema(),
		pred:   pred,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema implements Iterator.
func (n *NestedLoops) Schema() *algebra.Schema { return n.schema }

// Order implements Iterator.
func (n *NestedLoops) Order() algebra.OrderDesc { return n.left.Order() }

// Next implements Iterator.
func (n *NestedLoops) Next() (algebra.Tuple, bool) {
	if !n.loaded {
		for {
			t, ok := n.rightIt.Next()
			if !ok {
				break
			}
			n.right = append(n.right, t)
		}
		n.loaded = true
	}
	for {
		if n.cur == nil {
			t, ok := n.left.Next()
			if !ok {
				return nil, false
			}
			n.cur = t
			n.ri = 0
		}
		for n.ri < len(n.right) {
			u := n.right[n.ri]
			n.ri++
			if n.pred(n.cur, u) {
				return n.cur.Concat(u), true
			}
		}
		n.cur = nil
	}
}
