package physical

import (
	"fmt"

	"xamdb/internal/algebra"
	"xamdb/internal/xmltree"
)

// BatchStackTree is the batch form of the StackTreeDesc structural join
// (VariantJoin, descendant output order — the variant the view compiler
// emits). Both inputs must declare document (pre) order on their join
// attributes, exactly like the row operator. The join runs over row
// references: when an input is a BatchSort the sorted reference list is
// consumed directly (the sort's output gather is skipped entirely);
// otherwise the input is drained into batches once. The stack holds only
// (reference, NodeID) pairs, and matched pairs are gathered into compact
// output batches at emission.
type BatchStackTree struct {
	anc, desc  BatchIterator
	acol, dcol int
	axis       Axis
	schema     *algebra.Schema
	order      algebra.OrderDesc

	ran      bool
	abatches []*Batch
	dbatches []*Batch
	pairs    []stPair
	emitPos  int
}

type stPair struct{ a, d batchRef }

// NewBatchStackTreeDesc builds the batch StackTreeDesc join: output ordered
// by the descendant attribute.
func NewBatchStackTreeDesc(anc, desc BatchIterator, ancAttr, descAttr string, axis Axis) (*BatchStackTree, error) {
	ac := anc.Schema().Index(ancAttr)
	dc := desc.Schema().Index(descAttr)
	if ac < 0 || dc < 0 {
		return nil, fmt.Errorf("physical: batch stack-tree join: missing attribute %q/%q", ancAttr, descAttr)
	}
	if err := requireBatchOrder(anc, ancAttr); err != nil {
		return nil, err
	}
	if err := requireBatchOrder(desc, descAttr); err != nil {
		return nil, err
	}
	return &BatchStackTree{
		anc: anc, desc: desc, acol: ac, dcol: dc, axis: axis,
		schema: anc.Schema().Concat(desc.Schema()),
		order:  algebra.OrderDesc{descAttr},
	}, nil
}

// requireBatchOrder is requireOrder for the batch protocol.
func requireBatchOrder(it BatchIterator, attr string) error {
	o := it.Order()
	if len(o) == 0 || o[0] != attr {
		return fmt.Errorf("physical: batch stack-tree join requires input ordered by %q, have %v", attr, o)
	}
	return nil
}

// Schema implements BatchIterator.
func (st *BatchStackTree) Schema() *algebra.Schema { return st.schema }

// Order implements BatchIterator.
func (st *BatchStackTree) Order() algebra.OrderDesc { return st.order }

// inputRefs materializes one input as (batches, refs), fusing with an
// upstream BatchSort when possible.
func inputRefs(in BatchIterator) ([]*Batch, []batchRef) {
	if s, ok := in.(*BatchSort); ok {
		return s.sortedRefs()
	}
	return drainRefs(in)
}

func (st *BatchStackTree) matches(a, d xmltree.NodeID) bool {
	if st.axis == ChildAxis {
		return a.ParentOf(d)
	}
	return a.AncestorOf(d)
}

// run executes the stack-tree sweep over the reference lists: the same
// merge of the two pre-ordered streams as stackTree.run, restricted to the
// VariantJoin/descendant-order case where pairs are appended exactly when a
// descendant matches the live stack (pop is a no-op). Non-ID join values
// are skipped, and stack entries with identical IDs stay through
// popFinished, both matching the row operator.
func (st *BatchStackTree) run() {
	if st.ran {
		return
	}
	var aRefs, dRefs []batchRef
	st.abatches, aRefs = inputRefs(st.anc)
	st.dbatches, dRefs = inputRefs(st.desc)

	type entry struct {
		ref batchRef
		id  xmltree.NodeID
	}
	var stack []entry
	popFinished := func(id xmltree.NodeID) {
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if top.id.AncestorOf(id) || top.id == id {
				return
			}
			stack = stack[:len(stack)-1]
		}
	}

	ai, di := 0, 0
	for ai < len(aRefs) || di < len(dRefs) {
		var aID, dID xmltree.NodeID
		haveA, haveD := false, false
		if ai < len(aRefs) {
			ref := aRefs[ai]
			v := st.abatches[ref.b].Cols[st.acol][ref.r]
			if v.Kind != algebra.ID {
				ai++
				continue
			}
			aID, haveA = v.ID, true
		}
		if di < len(dRefs) {
			ref := dRefs[di]
			v := st.dbatches[ref.b].Cols[st.dcol][ref.r]
			if v.Kind != algebra.ID {
				di++
				continue
			}
			dID, haveD = v.ID, true
		}
		if haveA && (!haveD || aID.Pre < dID.Pre) {
			popFinished(aID)
			stack = append(stack, entry{ref: aRefs[ai], id: aID})
			ai++
		} else if haveD {
			popFinished(dID)
			for _, e := range stack {
				if st.matches(e.id, dID) {
					st.pairs = append(st.pairs, stPair{a: e.ref, d: dRefs[di]})
				}
			}
			di++
		}
	}
	st.ran = true
}

// NextBatch implements BatchIterator: gathers the next window of matched
// pairs into a compact output batch.
func (st *BatchStackTree) NextBatch() (*Batch, bool) {
	st.run()
	if st.emitPos >= len(st.pairs) {
		return nil, false
	}
	end := st.emitPos + BatchSize
	if end > len(st.pairs) {
		end = len(st.pairs)
	}
	aw := len(st.anc.Schema().Attrs)
	dw := len(st.desc.Schema().Attrs)
	bn := end - st.emitPos
	cols := make([][]algebra.Value, aw+dw)
	backing := make([]algebra.Value, bn*(aw+dw))
	for j := 0; j < aw+dw; j++ {
		cols[j] = backing[j*bn : (j+1)*bn : (j+1)*bn]
	}
	for i := 0; i < bn; i++ {
		p := st.pairs[st.emitPos+i]
		for j := 0; j < aw; j++ {
			cols[j][i] = st.abatches[p.a.b].Cols[j][p.a.r]
		}
		for j := 0; j < dw; j++ {
			cols[aw+j][i] = st.dbatches[p.d.b].Cols[j][p.d.r]
		}
	}
	st.emitPos = end
	return &Batch{Schema: st.schema, Cols: cols, N: bn}, true
}
