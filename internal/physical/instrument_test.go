package physical

import (
	"context"
	"strings"
	"testing"

	"xamdb/internal/algebra"
)

func instrRel(n int) *algebra.Relation {
	rel := algebra.NewRelation(&algebra.Schema{Attrs: []algebra.Attr{{Name: "a.Val"}}})
	for i := 0; i < n; i++ {
		rel.Add(algebra.Tuple{algebra.S("x")})
	}
	return rel
}

// TestInstrumentCounts checks rows/next accounting and that the wrapper is
// transparent to the tuples flowing through.
func TestInstrumentCounts(t *testing.T) {
	rel := instrRel(7)
	ins := NewInstrument("scan(v)", NewScan(rel, nil))
	out := Drain(ins)
	if out.Len() != 7 {
		t.Fatalf("instrumented drain lost tuples: %d", out.Len())
	}
	st := ins.Stats()
	if st.Rows != 7 {
		t.Fatalf("rows = %d, want 7", st.Rows)
	}
	if st.NextCalls != 8 { // 7 tuples + 1 exhausted call
		t.Fatalf("next calls = %d, want 8", st.NextCalls)
	}
	if st.Label != "scan(v)" {
		t.Fatalf("label = %q", st.Label)
	}
}

// TestInstrumentCheckpointPolls checks the wrapper mirrors a wrapped
// checkpoint's cancellation-poll count.
func TestInstrumentCheckpointPolls(t *testing.T) {
	rel := instrRel(200) // > checkpointInterval, so at least 2 polls
	ins := NewInstrument("scan", NewCheckpoint(context.Background(), NewScan(rel, nil)))
	if _, err := DrainContext(context.Background(), ins); err != nil {
		t.Fatal(err)
	}
	if ins.Stats().Checkpoints < 2 {
		t.Fatalf("checkpoint polls = %d, want ≥ 2", ins.Stats().Checkpoints)
	}
}

// TestOpStatsTreeRendering checks the annotated tree format: nesting,
// rows and timings on every line.
func TestOpStatsTreeRendering(t *testing.T) {
	child := &OpStats{Label: "scan(v1)", Rows: 3}
	root := &OpStats{Label: "π[a.Val]", Rows: 2}
	root.AddChild(child)
	root.AddChild(nil) // nil children must compose silently
	if len(root.Children) != 1 {
		t.Fatalf("nil child must be ignored: %d", len(root.Children))
	}
	s := root.String()
	if !strings.Contains(s, "π[a.Val]  rows=2") || !strings.Contains(s, "  scan(v1)  rows=3") {
		t.Fatalf("tree rendering wrong:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[1], "  ") {
		t.Fatalf("child must render indented under parent:\n%s", s)
	}
}
