package physical

import (
	"fmt"
	"sort"

	"xamdb/internal/algebra"
	"xamdb/internal/xmltree"
)

// Axis selects the structural relationship a stack-tree join matches.
type Axis uint8

const (
	// ChildAxis matches parent–child pairs.
	ChildAxis Axis = iota
	// DescendantAxis matches ancestor–descendant pairs.
	DescendantAxis
)

func (a Axis) String() string {
	if a == ChildAxis {
		return "/"
	}
	return "//"
}

// JoinVariant selects the structural join flavor implemented as a variation
// of StackTreeDesc (§1.2.3: "We have implemented structural outerjoins and
// structural semijoins as variations of the StackTreeDesc algorithm").
type JoinVariant uint8

const (
	// VariantJoin emits one concatenated tuple per matching pair.
	VariantJoin JoinVariant = iota
	// VariantSemi emits each ancestor tuple once if it has a match.
	VariantSemi
	// VariantOuter emits every ancestor tuple, padding with ⊥ when no
	// descendant matches.
	VariantOuter
)

type pair struct{ a, d algebra.Tuple }

type stackEntry struct {
	tuple   algebra.Tuple
	id      xmltree.NodeID
	self    []pair
	inherit []pair
	matched bool
}

func tupleID(t algebra.Tuple, col int) (xmltree.NodeID, bool) {
	v := t[col]
	if v.Kind != algebra.ID {
		return xmltree.NodeID{}, false
	}
	return v.ID, true
}

// stackTree is the shared machinery of StackTreeDesc and StackTreeAnc. Both
// require their inputs sorted by the join attribute in document (pre) order.
type stackTree struct {
	anc, desc   Iterator
	acol, dcol  int
	axis        Axis
	variant     JoinVariant
	ancOrder    bool // true = StackTreeAnc output order
	schema      *algebra.Schema
	order       algebra.OrderDesc
	stack       []*stackEntry
	nextA       algebra.Tuple
	nextD       algebra.Tuple
	aDone       bool
	dDone       bool
	out         []pair // buffered output pairs
	oi          int
	outTuples   []algebra.Tuple // for semi/outer variants
	oti         int
	initialized bool
}

func newStackTree(anc, desc Iterator, ancAttr, descAttr string, axis Axis, variant JoinVariant, ancOrder bool) (*stackTree, error) {
	ac := anc.Schema().Index(ancAttr)
	dc := desc.Schema().Index(descAttr)
	if ac < 0 || dc < 0 {
		return nil, fmt.Errorf("physical: stack-tree join: missing attribute %q/%q", ancAttr, descAttr)
	}
	if err := requireOrder(anc, ancAttr); err != nil {
		return nil, err
	}
	if err := requireOrder(desc, descAttr); err != nil {
		return nil, err
	}
	st := &stackTree{
		anc: anc, desc: desc, acol: ac, dcol: dc,
		axis: axis, variant: variant, ancOrder: ancOrder,
	}
	switch variant {
	case VariantJoin:
		st.schema = anc.Schema().Concat(desc.Schema())
	case VariantSemi:
		st.schema = anc.Schema()
	case VariantOuter:
		st.schema = anc.Schema().Concat(desc.Schema())
	}
	if ancOrder || variant != VariantJoin {
		st.order = algebra.OrderDesc{ancAttr}
	} else {
		st.order = algebra.OrderDesc{descAttr}
	}
	return st, nil
}

// requireOrder enforces the §1.2.3 rule that structural joins only accept
// inputs sorted on the right attributes; it is how order descriptors keep
// operators correctly piped.
func requireOrder(it Iterator, attr string) error {
	o := it.Order()
	if len(o) == 0 || o[0] != attr {
		return fmt.Errorf("physical: stack-tree join requires input ordered by %q, have %v", attr, o)
	}
	return nil
}

func (st *stackTree) matches(a, d xmltree.NodeID) bool {
	if st.axis == ChildAxis {
		return a.ParentOf(d)
	}
	return a.AncestorOf(d)
}

func (st *stackTree) advanceA() {
	if t, ok := st.anc.Next(); ok {
		st.nextA = t
	} else {
		st.nextA = nil
		st.aDone = true
	}
}

func (st *stackTree) advanceD() {
	if t, ok := st.desc.Next(); ok {
		st.nextD = t
	} else {
		st.nextD = nil
		st.dDone = true
	}
}

// run executes the whole join eagerly; the stack discipline itself is the
// streaming stack-tree algorithm, output is buffered to honor the requested
// order without a second sort.
func (st *stackTree) run() {
	st.advanceA()
	st.advanceD()
	for st.nextA != nil || st.nextD != nil {
		var aID, dID xmltree.NodeID
		var aOK, dOK bool
		if st.nextA != nil {
			aID, aOK = tupleID(st.nextA, st.acol)
			if !aOK {
				st.advanceA()
				continue
			}
		}
		if st.nextD != nil {
			dID, dOK = tupleID(st.nextD, st.dcol)
			if !dOK {
				st.advanceD()
				continue
			}
		}
		if st.nextA != nil && (st.nextD == nil || aID.Pre < dID.Pre) {
			st.popFinished(aID)
			st.stack = append(st.stack, &stackEntry{tuple: st.nextA, id: aID})
			st.advanceA()
		} else if st.nextD != nil {
			st.popFinished(dID)
			st.emitMatches(st.nextD, dID)
			st.advanceD()
		}
	}
	// Drain the stack.
	for len(st.stack) > 0 {
		st.pop()
	}
	// Semi/outer variants emit ancestor tuples at pop time (LIFO); restore
	// the declared ancestor order.
	if st.variant == VariantSemi || st.variant == VariantOuter {
		sort.SliceStable(st.outTuples, func(i, j int) bool {
			a, aok := tupleID(st.outTuples[i], st.acol)
			b, bok := tupleID(st.outTuples[j], st.acol)
			return aok && bok && a.Pre < b.Pre
		})
	}
}

// popFinished pops stack entries that cannot contain the node with id.
// Entries with an identical identifier stay: composed plans feed the join
// ancestor tuples with repeated IDs, which behave as a nested run.
func (st *stackTree) popFinished(id xmltree.NodeID) {
	for len(st.stack) > 0 {
		top := st.stack[len(st.stack)-1]
		if top.id.AncestorOf(id) || top.id == id {
			return
		}
		st.pop()
	}
}

func (st *stackTree) pop() {
	top := st.stack[len(st.stack)-1]
	st.stack = st.stack[:len(st.stack)-1]
	switch st.variant {
	case VariantSemi:
		if top.matched {
			st.outTuples = append(st.outTuples, top.tuple)
		}
	case VariantOuter:
		if !top.matched {
			pad := make(algebra.Tuple, len(st.desc.Schema().Attrs))
			for i := range pad {
				pad[i] = algebra.NullValue
			}
			st.outTuples = append(st.outTuples, top.tuple.Concat(pad))
		} else {
			for _, p := range append(top.self, top.inherit...) {
				st.outTuples = append(st.outTuples, p.a.Concat(p.d))
			}
		}
	case VariantJoin:
		if st.ancOrder {
			combined := append(top.self, top.inherit...)
			if len(st.stack) == 0 {
				st.out = append(st.out, combined...)
			} else {
				newTop := st.stack[len(st.stack)-1]
				newTop.inherit = append(newTop.inherit, combined...)
			}
		}
	}
}

func (st *stackTree) emitMatches(d algebra.Tuple, dID xmltree.NodeID) {
	for i, e := range st.stack {
		if !st.matches(e.id, dID) {
			continue
		}
		e.matched = true
		switch st.variant {
		case VariantJoin:
			if st.ancOrder {
				if i == 0 {
					st.out = append(st.out, pair{e.tuple, d})
				} else {
					e.self = append(e.self, pair{e.tuple, d})
				}
			} else {
				st.out = append(st.out, pair{e.tuple, d}) // descendant order
			}
		case VariantSemi, VariantOuter:
			if st.variant == VariantOuter {
				e.self = append(e.self, pair{e.tuple, d})
			}
		}
	}
}

// Schema implements Iterator.
func (st *stackTree) Schema() *algebra.Schema { return st.schema }

// Order implements Iterator.
func (st *stackTree) Order() algebra.OrderDesc { return st.order }

// Next implements Iterator.
func (st *stackTree) Next() (algebra.Tuple, bool) {
	if !st.initialized {
		st.run()
		st.initialized = true
	}
	if st.variant == VariantJoin {
		if st.oi >= len(st.out) {
			return nil, false
		}
		p := st.out[st.oi]
		st.oi++
		return p.a.Concat(p.d), true
	}
	if st.oti >= len(st.outTuples) {
		return nil, false
	}
	t := st.outTuples[st.oti]
	st.oti++
	return t, true
}

// NewStackTreeDesc builds the StackTreeDesc structural join: output ordered
// by the descendant attribute.
func NewStackTreeDesc(anc, desc Iterator, ancAttr, descAttr string, axis Axis) (Iterator, error) {
	return newStackTree(anc, desc, ancAttr, descAttr, axis, VariantJoin, false)
}

// NewStackTreeAnc builds the StackTreeAnc structural join: output ordered by
// the ancestor attribute, using per-entry self/inherit pair lists.
func NewStackTreeAnc(anc, desc Iterator, ancAttr, descAttr string, axis Axis) (Iterator, error) {
	return newStackTree(anc, desc, ancAttr, descAttr, axis, VariantJoin, true)
}

// NewStructuralSemiJoin builds the structural semijoin variant.
func NewStructuralSemiJoin(anc, desc Iterator, ancAttr, descAttr string, axis Axis) (Iterator, error) {
	return newStackTree(anc, desc, ancAttr, descAttr, axis, VariantSemi, true)
}

// NewStructuralOuterJoin builds the structural left outerjoin variant.
func NewStructuralOuterJoin(anc, desc Iterator, ancAttr, descAttr string, axis Axis) (Iterator, error) {
	return newStackTree(anc, desc, ancAttr, descAttr, axis, VariantOuter, true)
}
