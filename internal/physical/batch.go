package physical

import (
	"context"
	"fmt"
	"sort"

	"xamdb/internal/algebra"
	"xamdb/internal/value"
)

// This file is the batch half of the physical layer (ROADMAP item 3):
// instead of pulling one tuple per virtual call, operators exchange batches
// of ~BatchSize rows represented as column vectors plus a selection. A
// batch leaf polls its context and charges the Budget once per batch — the
// same cancellation/quota protocol as the row path's Checkpoint, at 1/64th
// of the poll density but bounded by the same interval guarantees (a batch
// is at most BatchSize rows). Operators without a batch form fall back to
// the row engine through the Rebatch/Unbatch adapters.

// BatchSize is the target number of rows per batch: large enough to
// amortize per-batch overheads, small enough to stay cache-resident.
const BatchSize = 1024

// Batch is one unit of batch execution: column vectors over a schema plus
// an ordered selection of live rows. Cols[j] holds N physical rows of
// attribute j (usually zero-copy windows over an extent's columns); Sel,
// when non-nil, lists the live physical row indexes in output order. A nil
// Sel means all N rows are live in order. Batches and their columns are
// read-only once handed downstream.
type Batch struct {
	Schema *algebra.Schema
	Cols   [][]algebra.Value
	Sel    []int
	N      int
}

// Rows returns the number of live rows.
func (b *Batch) Rows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// Row maps live-row position i to the physical row index.
func (b *Batch) Row(i int) int {
	if b.Sel != nil {
		return b.Sel[i]
	}
	return i
}

// Tuple materializes live row i as a row-major tuple (adapter and drain
// paths; batch operators read columns directly).
func (b *Batch) Tuple(i int) algebra.Tuple {
	r := b.Row(i)
	t := make(algebra.Tuple, len(b.Cols))
	for j := range b.Cols {
		t[j] = b.Cols[j][r]
	}
	return t
}

// BatchIterator is the batch counterpart of Iterator: NextBatch returns the
// next non-empty batch and false when exhausted. Order declares the output
// order of the live-row sequence across batches, exactly as Iterator.Order
// does for tuples.
type BatchIterator interface {
	Schema() *algebra.Schema
	Order() algebra.OrderDesc
	NextBatch() (*Batch, bool)
}

// batchCancelCheck polls ctx and charges n tuples against the budget,
// unwinding through the Cancelled panic protocol exactly like Checkpoint.
func batchCancelCheck(ctx context.Context, budget *Budget, n int64) {
	if err := ctx.Err(); err != nil {
		//xamlint:allow nopanic(cancellation protocol: typed panic unwinds the iterator tree and is recovered by DrainBatchesContext)
		panic(&Cancelled{Err: err})
	}
	if err := budget.ChargeTuples(n); err != nil {
		//xamlint:allow nopanic(cancellation protocol: quota kill unwinds like a deadline and is recovered by DrainBatchesContext)
		panic(&Cancelled{Err: err})
	}
}

// BatchScan is the batch leaf over a materialized relation: each NextBatch
// slices the next BatchSize-row window of the relation's column vectors —
// zero copies — after polling the context and charging the budget for the
// window. It is the batch counterpart of Checkpoint(Scan).
type BatchScan struct {
	cols   *algebra.Columns
	order  algebra.OrderDesc
	ctx    context.Context
	budget *Budget
	charge bool
	pos    int
	polls  int
}

// NewBatchScan builds a charging batch scan over an extent; every extent
// leaf charges the tuple quota per batch, mirroring the row path's
// Checkpoint-wrapped scans.
func NewBatchScan(ctx context.Context, rel *algebra.Relation, order algebra.OrderDesc) *BatchScan {
	return &BatchScan{cols: rel.Columns(), order: order, ctx: ctx, budget: BudgetFrom(ctx), charge: true}
}

// NewBatchRelScan builds a batch scan over a derived (already materialized
// and already charged-for) relation: it polls the context per batch but
// does not re-charge the tuple quota, mirroring the row compiler's
// un-checkpointed rescans of intermediate results.
func NewBatchRelScan(ctx context.Context, rel *algebra.Relation, order algebra.OrderDesc) *BatchScan {
	return &BatchScan{cols: rel.Columns(), order: order, ctx: ctx, budget: BudgetFrom(ctx)}
}

// Schema implements BatchIterator.
func (s *BatchScan) Schema() *algebra.Schema { return s.cols.Schema }

// Order implements BatchIterator.
func (s *BatchScan) Order() algebra.OrderDesc { return s.order }

// Polls reports the context checks run, for EXPLAIN ANALYZE.
func (s *BatchScan) Polls() int { return s.polls }

// NextBatch implements BatchIterator.
func (s *BatchScan) NextBatch() (*Batch, bool) {
	if s.pos >= s.cols.NRows {
		return nil, false
	}
	end := s.pos + BatchSize
	if end > s.cols.NRows {
		end = s.cols.NRows
	}
	n := end - s.pos
	s.polls++
	if s.charge {
		batchCancelCheck(s.ctx, s.budget, int64(n))
	} else {
		batchCancelCheck(s.ctx, nil, 0)
	}
	cols := make([][]algebra.Value, len(s.cols.Cols))
	for j := range cols {
		cols[j] = s.cols.Cols[j][s.pos:end]
	}
	s.pos = end
	return &Batch{Schema: s.cols.Schema, Cols: cols, N: n}, true
}

// BatchFormulaScan is the batch counterpart of FormulaSelect: a scan over a
// view extent fused with a σ_φ filter on one value column. It evaluates the
// compiled formula against the extent's cached atom column — the per-row
// string parse happens once per extent, not once per query — and emits
// windows with a selection of the matching rows. Like FormulaSelect it is a
// self-checkpointing leaf: one poll and one budget charge per examined
// window.
type BatchFormulaScan struct {
	cols     *algebra.Columns
	order    algebra.OrderDesc
	ctx      context.Context
	budget   *Budget
	col      int
	f        value.Formula
	match    func(value.Atom) bool
	atoms    []value.Atom
	nulls    []int32 // ascending ⊥ row indexes; nil for the common clean column
	pos      int
	examined int64
	polls    int
}

// NewBatchFormulaScan builds the fused filtered batch scan over rel,
// filtering on the named top-level attribute. Null values never satisfy a
// formula.
func NewBatchFormulaScan(ctx context.Context, rel *algebra.Relation, order algebra.OrderDesc, attr string, f value.Formula) (*BatchFormulaScan, error) {
	cols := rel.Columns()
	col := cols.Schema.Index(attr)
	if col < 0 {
		return nil, fmt.Errorf("physical: batch formula scan: no attribute %q", attr)
	}
	return &BatchFormulaScan{
		cols: cols, order: order, ctx: ctx, budget: BudgetFrom(ctx),
		col: col, f: f, match: f.Matcher(), atoms: cols.Atoms(col), nulls: cols.Nulls(col),
	}, nil
}

// Schema implements BatchIterator.
func (s *BatchFormulaScan) Schema() *algebra.Schema { return s.cols.Schema }

// Order implements BatchIterator; filtering preserves the declared order.
func (s *BatchFormulaScan) Order() algebra.OrderDesc { return s.order }

// Examined reports how many extent rows the filter has inspected.
func (s *BatchFormulaScan) Examined() int64 { return s.examined }

// Polls reports the context checks run.
func (s *BatchFormulaScan) Polls() int { return s.polls }

// NextBatch implements BatchIterator.
func (s *BatchFormulaScan) NextBatch() (*Batch, bool) {
	vals := s.cols.Cols[s.col]
	for s.pos < s.cols.NRows {
		end := s.pos + BatchSize
		if end > s.cols.NRows {
			end = s.cols.NRows
		}
		n := end - s.pos
		s.polls++
		batchCancelCheck(s.ctx, s.budget, int64(n))
		s.examined += int64(n)
		var sel []int
		if len(s.nulls) == 0 {
			// Clean column: the vectorized kernel matches the whole window
			// with no per-row kind checks or closure calls.
			sel = s.f.MatchColumn(s.atoms[s.pos:end], sel)
		} else {
			for i := s.pos; i < end; i++ {
				if vals[i].Kind != algebra.Null && s.match(s.atoms[i]) {
					sel = append(sel, i-s.pos)
				}
			}
		}
		start := s.pos
		s.pos = end
		if sel == nil {
			continue // whole window filtered out; examine the next one
		}
		cols := make([][]algebra.Value, len(s.cols.Cols))
		for j := range cols {
			cols[j] = s.cols.Cols[j][start:end]
		}
		return &Batch{Schema: s.cols.Schema, Cols: cols, Sel: sel, N: n}, true
	}
	return nil, false
}

// BatchSelect filters incoming batches with σ predicates on top-level
// attributes, refining each batch's selection in place of copying rows.
type BatchSelect struct {
	in    BatchIterator
	preds []algebra.Pred
	idx   []int
}

// NewBatchSelect builds the batch counterpart of NewSelect.
func NewBatchSelect(in BatchIterator, preds ...algebra.Pred) (*BatchSelect, error) {
	idx := make([]int, len(preds))
	for i, p := range preds {
		j := in.Schema().Index(p.Path)
		if j < 0 {
			return nil, fmt.Errorf("physical: batch select: no attribute %q", p.Path)
		}
		idx[i] = j
	}
	return &BatchSelect{in: in, preds: preds, idx: idx}, nil
}

// Schema implements BatchIterator.
func (f *BatchSelect) Schema() *algebra.Schema { return f.in.Schema() }

// Order implements BatchIterator; filtering preserves order.
func (f *BatchSelect) Order() algebra.OrderDesc { return f.in.Order() }

// NextBatch implements BatchIterator.
func (f *BatchSelect) NextBatch() (*Batch, bool) {
	for {
		b, ok := f.in.NextBatch()
		if !ok {
			return nil, false
		}
		var sel []int
		rows := b.Rows()
	row:
		for i := 0; i < rows; i++ {
			r := b.Row(i)
			for k, p := range f.preds {
				if !p.Op.Apply(b.Cols[f.idx[k]][r], p.Const) {
					continue row
				}
			}
			sel = append(sel, r)
		}
		if sel == nil {
			continue
		}
		return &Batch{Schema: b.Schema, Cols: b.Cols, Sel: sel, N: b.N}, true
	}
}

// BatchFormulaFilter applies a σ_φ value-formula filter to incoming batches
// (the non-fused case, where the input is not a bare extent scan and no
// cached atom column exists).
type BatchFormulaFilter struct {
	in    BatchIterator
	col   int
	match func(value.Atom) bool
}

// NewBatchFormulaFilter builds a batch σ_φ over the named attribute.
func NewBatchFormulaFilter(in BatchIterator, attr string, f value.Formula) (*BatchFormulaFilter, error) {
	col := in.Schema().Index(attr)
	if col < 0 {
		return nil, fmt.Errorf("physical: batch formula filter: no attribute %q", attr)
	}
	return &BatchFormulaFilter{in: in, col: col, match: f.Matcher()}, nil
}

// Schema implements BatchIterator.
func (f *BatchFormulaFilter) Schema() *algebra.Schema { return f.in.Schema() }

// Order implements BatchIterator.
func (f *BatchFormulaFilter) Order() algebra.OrderDesc { return f.in.Order() }

// NextBatch implements BatchIterator.
func (f *BatchFormulaFilter) NextBatch() (*Batch, bool) {
	for {
		b, ok := f.in.NextBatch()
		if !ok {
			return nil, false
		}
		var sel []int
		rows := b.Rows()
		col := b.Cols[f.col]
		for i := 0; i < rows; i++ {
			r := b.Row(i)
			if col[r].Kind != algebra.Null && f.match(value.Str(col[r].AsString())) {
				sel = append(sel, r)
			}
		}
		if sel == nil {
			continue
		}
		return &Batch{Schema: b.Schema, Cols: b.Cols, Sel: sel, N: b.N}, true
	}
}

// BatchProject keeps the named top-level attributes — pure column-pointer
// selection, no row materialization at all.
type BatchProject struct {
	in     BatchIterator
	cols   []int
	schema *algebra.Schema
}

// NewBatchProject builds the batch counterpart of NewProject.
func NewBatchProject(in BatchIterator, names ...string) (*BatchProject, error) {
	cols := make([]int, len(names))
	schema := &algebra.Schema{}
	for i, n := range names {
		j := in.Schema().Index(n)
		if j < 0 {
			return nil, fmt.Errorf("physical: batch project: no attribute %q", n)
		}
		cols[i] = j
		schema.Attrs = append(schema.Attrs, in.Schema().Attrs[j])
	}
	return &BatchProject{in: in, cols: cols, schema: schema}, nil
}

// Schema implements BatchIterator.
func (p *BatchProject) Schema() *algebra.Schema { return p.schema }

// Order implements BatchIterator: the surviving prefix of the input order,
// matching the row Projection.
func (p *BatchProject) Order() algebra.OrderDesc {
	var out algebra.OrderDesc
	for _, o := range p.in.Order() {
		if p.schema.Index(o) >= 0 {
			out = append(out, o)
		} else {
			break
		}
	}
	return out
}

// NextBatch implements BatchIterator.
func (p *BatchProject) NextBatch() (*Batch, bool) {
	b, ok := p.in.NextBatch()
	if !ok {
		return nil, false
	}
	cols := make([][]algebra.Value, len(p.cols))
	for i, j := range p.cols {
		cols[i] = b.Cols[j]
	}
	return &Batch{Schema: p.schema, Cols: cols, Sel: b.Sel, N: b.N}, true
}

// BatchReschema re-labels batches with a schema of identical shape (the
// batch form of ρ); the declared order resets because the attribute names
// an upstream order descriptor referred to no longer exist.
type BatchReschema struct {
	in     BatchIterator
	schema *algebra.Schema
}

// NewBatchReschema wraps in with the replacement schema, which must have
// the same width.
func NewBatchReschema(in BatchIterator, schema *algebra.Schema) (*BatchReschema, error) {
	if len(schema.Attrs) != len(in.Schema().Attrs) {
		return nil, fmt.Errorf("physical: batch reschema: width %d != input width %d",
			len(schema.Attrs), len(in.Schema().Attrs))
	}
	return &BatchReschema{in: in, schema: schema}, nil
}

// Schema implements BatchIterator.
func (r *BatchReschema) Schema() *algebra.Schema { return r.schema }

// Order implements BatchIterator.
func (r *BatchReschema) Order() algebra.OrderDesc { return nil }

// NextBatch implements BatchIterator.
func (r *BatchReschema) NextBatch() (*Batch, bool) {
	b, ok := r.in.NextBatch()
	if !ok {
		return nil, false
	}
	return &Batch{Schema: r.schema, Cols: b.Cols, Sel: b.Sel, N: b.N}, true
}

// batchRef addresses one live row inside a drained batch list.
type batchRef struct {
	b int32 // index into the batch list
	r int32 // physical row inside that batch
}

// drainRefs pulls every batch from in and returns the batch list plus the
// live rows in arrival order. It is the materialization step of the
// blocking batch operators (sort, join builds, stack-tree); cancellation
// panics from the leaves unwind through it to the root drain.
func drainRefs(in BatchIterator) ([]*Batch, []batchRef) {
	var batches []*Batch
	var refs []batchRef
	for {
		b, ok := in.NextBatch()
		if !ok {
			return batches, refs
		}
		bi := int32(len(batches))
		batches = append(batches, b)
		rows := b.Rows()
		for i := 0; i < rows; i++ {
			refs = append(refs, batchRef{b: bi, r: int32(b.Row(i))})
		}
	}
}

// gatherBatches materializes refs (rows scattered across batches) into
// fresh, compact output batches over schema. pick maps an output column to
// its (batch-list, column) source: joins gather from two input lists.
func gatherBatches(schema *algebra.Schema, width int, n int,
	col func(out int) func(ref batchRef) algebra.Value, refAt func(i int) batchRef) []*Batch {
	var out []*Batch
	for start := 0; start < n; start += BatchSize {
		end := start + BatchSize
		if end > n {
			end = n
		}
		bn := end - start
		cols := make([][]algebra.Value, width)
		backing := make([]algebra.Value, bn*width)
		for j := 0; j < width; j++ {
			cols[j] = backing[j*bn : (j+1)*bn : (j+1)*bn]
			get := col(j)
			for i := 0; i < bn; i++ {
				cols[j][i] = get(refAt(start + i))
			}
		}
		out = append(out, &Batch{Schema: schema, Cols: cols, N: bn})
	}
	return out
}

// BatchSort materializes its input and emits it sorted by top-level
// attribute paths: the batch counterpart of SortOp. Sorting permutes row
// references, not rows; values are gathered into output batches once, at
// emission. Downstream batch structural joins (BatchStackTree) consume the
// sorted references directly and skip that gather entirely.
type BatchSort struct {
	in      BatchIterator
	by      []string
	idx     []int
	batches []*Batch
	refs    []batchRef
	built   bool
	emitPos int
}

// NewBatchSort builds a batch sort; unknown sort columns are an error, like
// NewSort.
func NewBatchSort(in BatchIterator, by ...string) (*BatchSort, error) {
	idx := make([]int, len(by))
	for i, b := range by {
		j := in.Schema().Index(b)
		if j < 0 {
			return nil, fmt.Errorf("physical: batch sort: no attribute %q", b)
		}
		idx[i] = j
	}
	return &BatchSort{in: in, by: by, idx: idx}, nil
}

// Schema implements BatchIterator.
func (s *BatchSort) Schema() *algebra.Schema { return s.in.Schema() }

// Order implements BatchIterator.
func (s *BatchSort) Order() algebra.OrderDesc { return algebra.OrderDesc(s.by) }

// build drains the input and stable-sorts the row references with the same
// comparator semantics as SortOp (incomparable pairs keep arrival order).
func (s *BatchSort) build() {
	if s.built {
		return
	}
	s.batches, s.refs = drainRefs(s.in)
	sort.SliceStable(s.refs, func(i, j int) bool {
		a, b := s.refs[i], s.refs[j]
		for _, k := range s.idx {
			cmp, ok := s.batches[a.b].Cols[k][a.r].Compare(s.batches[b.b].Cols[k][b.r])
			if ok && cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	s.built = true
}

// sortedRefs exposes the sorted row references for fused consumers
// (BatchStackTree reads IDs straight out of the source batches).
func (s *BatchSort) sortedRefs() ([]*Batch, []batchRef) {
	s.build()
	return s.batches, s.refs
}

// NextBatch implements BatchIterator: gathers the next window of sorted
// rows into a compact batch.
func (s *BatchSort) NextBatch() (*Batch, bool) {
	s.build()
	if s.emitPos >= len(s.refs) {
		return nil, false
	}
	end := s.emitPos + BatchSize
	if end > len(s.refs) {
		end = len(s.refs)
	}
	schema := s.in.Schema()
	w := len(schema.Attrs)
	bn := end - s.emitPos
	cols := make([][]algebra.Value, w)
	backing := make([]algebra.Value, bn*w)
	for j := 0; j < w; j++ {
		cols[j] = backing[j*bn : (j+1)*bn : (j+1)*bn]
		for i := 0; i < bn; i++ {
			ref := s.refs[s.emitPos+i]
			cols[j][i] = s.batches[ref.b].Cols[j][ref.r]
		}
	}
	s.emitPos = end
	return &Batch{Schema: schema, Cols: cols, N: bn}, true
}

// Rebatch adapts a row iterator into the batch protocol: the transparent
// fallback for operators without a batch form. It pulls up to BatchSize
// tuples per batch and transposes them; the row subtree below keeps its own
// Checkpoint charging, so Rebatch itself charges nothing.
type Rebatch struct {
	in Iterator
}

// NewRebatch wraps a row iterator as a BatchIterator.
func NewRebatch(in Iterator) *Rebatch { return &Rebatch{in: in} }

// Schema implements BatchIterator.
func (r *Rebatch) Schema() *algebra.Schema { return r.in.Schema() }

// Order implements BatchIterator.
func (r *Rebatch) Order() algebra.OrderDesc { return r.in.Order() }

// NextBatch implements BatchIterator.
func (r *Rebatch) NextBatch() (*Batch, bool) {
	schema := r.in.Schema()
	w := len(schema.Attrs)
	var rows []algebra.Tuple
	for len(rows) < BatchSize {
		t, ok := r.in.Next()
		if !ok {
			break
		}
		rows = append(rows, t)
	}
	if len(rows) == 0 {
		return nil, false
	}
	n := len(rows)
	cols := make([][]algebra.Value, w)
	backing := make([]algebra.Value, n*w)
	for j := 0; j < w; j++ {
		cols[j] = backing[j*n : (j+1)*n : (j+1)*n]
		for i, t := range rows {
			if j < len(t) {
				cols[j][i] = t[j]
			}
		}
	}
	return &Batch{Schema: schema, Cols: cols, N: n}, true
}

// Unbatch adapts a BatchIterator back into the row protocol, materializing
// one tuple per Next. It lets a row-only consumer sit above a batch
// subtree; the batch leaves below carry the charging.
type Unbatch struct {
	in  BatchIterator
	cur *Batch
	pos int
}

// NewUnbatch wraps a batch iterator as a row Iterator.
func NewUnbatch(in BatchIterator) *Unbatch { return &Unbatch{in: in} }

// Schema implements Iterator.
func (u *Unbatch) Schema() *algebra.Schema { return u.in.Schema() }

// Order implements Iterator.
func (u *Unbatch) Order() algebra.OrderDesc { return u.in.Order() }

// Next implements Iterator. The batch pull is budget coverage: the wrapped
// chain's leaves poll the context and charge per batch.
func (u *Unbatch) Next() (algebra.Tuple, bool) {
	for u.cur == nil || u.pos >= u.cur.Rows() {
		b, ok := u.in.NextBatch()
		if !ok {
			return nil, false
		}
		u.cur, u.pos = b, 0
	}
	t := u.cur.Tuple(u.pos)
	u.pos++
	return t, true
}

// DrainBatchesContext materializes a batch iterator into a relation,
// honoring the context per batch and recovering *Cancelled panics raised by
// batch leaves (and by row Checkpoints under Rebatch adapters). It returns
// the number of batches drained, the engine.batches accounting source.
func DrainBatchesContext(ctx context.Context, it BatchIterator) (rel *algebra.Relation, batches int64, err error) {
	defer func() {
		if p := recover(); p != nil {
			if c, ok := p.(*Cancelled); ok {
				rel, err = nil, c.Err
				return
			}
			panic(p)
		}
	}()
	out := algebra.NewRelation(it.Schema())
	w := len(it.Schema().Attrs)
	for {
		if err := ctx.Err(); err != nil {
			return nil, batches, err
		}
		b, ok := it.NextBatch()
		if !ok {
			return out, batches, nil
		}
		batches++
		rows := b.Rows()
		if rows == 0 {
			continue
		}
		backing := make([]algebra.Value, rows*w)
		for i := 0; i < rows; i++ {
			r := b.Row(i)
			t := backing[i*w : (i+1)*w : (i+1)*w]
			for j := 0; j < w && j < len(b.Cols); j++ {
				t[j] = b.Cols[j][r]
			}
			out.Tuples = append(out.Tuples, t)
		}
	}
}
