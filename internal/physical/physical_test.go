package physical

import (
	"math/rand"
	"testing"

	"xamdb/internal/algebra"
	"xamdb/internal/xmltree"
)

func idv(pre, post, depth int32) algebra.Value {
	return algebra.IDV(xmltree.NodeID{Pre: pre, Post: post, Depth: depth})
}

func relOf(names []string, rows ...[]algebra.Value) *algebra.Relation {
	r := algebra.NewRelation(algebra.NewSchema(names...))
	for _, row := range rows {
		r.Add(algebra.Tuple(row))
	}
	return r
}

func TestScanFilterProject(t *testing.T) {
	r := relOf([]string{"A", "B"},
		[]algebra.Value{algebra.I(1), algebra.S("x")},
		[]algebra.Value{algebra.I(2), algebra.S("y")})
	sel, err := NewSelect(NewScan(r, algebra.OrderDesc{"A"}), algebra.Pred{Path: "B", Op: algebra.Eq, Const: algebra.S("y")})
	if err != nil {
		t.Fatal(err)
	}
	proj, err := NewProject(sel, "A")
	if err != nil {
		t.Fatal(err)
	}
	got := Drain(proj)
	if got.Len() != 1 || got.Tuples[0][0].Int != 2 {
		t.Fatalf("pipeline result: %s", got)
	}
	if len(proj.Order()) != 1 || proj.Order()[0] != "A" {
		t.Fatalf("order propagation: %v", proj.Order())
	}
}

func TestProjectionDropsOrderWhenColumnLost(t *testing.T) {
	r := relOf([]string{"A", "B"}, []algebra.Value{algebra.I(1), algebra.S("x")})
	p, _ := NewProject(NewScan(r, algebra.OrderDesc{"B", "A"}), "A")
	if len(p.Order()) != 0 {
		t.Fatalf("order should be dropped, got %v", p.Order())
	}
}

func TestSortOp(t *testing.T) {
	r := relOf([]string{"A"},
		[]algebra.Value{algebra.I(3)},
		[]algebra.Value{algebra.I(1)},
		[]algebra.Value{algebra.I(2)})
	s, err := NewSort(NewScan(r, nil), "A")
	if err != nil {
		t.Fatal(err)
	}
	got := Drain(s)
	for i, want := range []int64{1, 2, 3} {
		if got.Tuples[i][0].Int != want {
			t.Fatalf("sorted: %s", got)
		}
	}
}

func TestSortRejectsUnknownColumn(t *testing.T) {
	r := relOf([]string{"A"}, []algebra.Value{algebra.I(1)})
	if _, err := NewSort(NewScan(r, nil), "Z"); err == nil {
		t.Fatal("sort on a missing column must error, not silently skip the key")
	}
	if _, err := NewSort(NewScan(r, nil), "A", "Z"); err == nil {
		t.Fatal("sort with any missing column must error")
	}
}

func TestHashJoin(t *testing.T) {
	l := relOf([]string{"A"}, []algebra.Value{algebra.I(1)}, []algebra.Value{algebra.I(2)}, []algebra.Value{algebra.I(3)})
	r := relOf([]string{"B", "V"},
		[]algebra.Value{algebra.I(1), algebra.S("a")},
		[]algebra.Value{algebra.I(1), algebra.S("b")},
		[]algebra.Value{algebra.I(2), algebra.S("c")})
	j, err := NewHashJoin(NewScan(l, nil), NewScan(r, nil), "A", "B", false)
	if err != nil {
		t.Fatal(err)
	}
	if got := Drain(j); got.Len() != 3 {
		t.Fatalf("hash join: %s", got)
	}
	oj, _ := NewHashJoin(NewScan(l, nil), NewScan(r, nil), "A", "B", true)
	got := Drain(oj)
	if got.Len() != 4 {
		t.Fatalf("outer hash join: %s", got)
	}
	last := got.Tuples[3]
	if last[0].Int != 3 || !last[1].IsNull() {
		t.Fatalf("outer padding: %s", got)
	}
	if _, err := NewHashJoin(NewScan(l, nil), NewScan(r, nil), "Z", "B", false); err == nil {
		t.Fatal("missing attribute must error")
	}
}

func TestNestedLoops(t *testing.T) {
	l := relOf([]string{"A"}, []algebra.Value{algebra.I(1)}, []algebra.Value{algebra.I(5)})
	r := relOf([]string{"B"}, []algebra.Value{algebra.I(3)}, []algebra.Value{algebra.I(7)})
	j := NewNestedLoops(NewScan(l, nil), NewScan(r, nil), func(a, b algebra.Tuple) bool {
		return a[0].Int < b[0].Int
	})
	got := Drain(j)
	if got.Len() != 3 { // (1,3) (1,7) (5,7)
		t.Fatalf("nested loops: %s", got)
	}
}

// buildDocRelations creates ancestor/descendant input relations (sorted by
// pre order) from a random tree, plus the expected pair set per axis.
func buildDocRelations(t *testing.T, seed int64, n int) (*algebra.Relation, *algebra.Relation, map[[2]int32]bool, map[[2]int32]bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	root := xmltree.NewElement("n0")
	nodes := []*xmltree.Node{root}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		c := xmltree.NewElement("n")
		parent.Children = append(parent.Children, c)
		nodes = append(nodes, c)
	}
	doc := xmltree.NewDocument("rand.xml", root)
	var all []*xmltree.Node
	doc.Walk(func(nd *xmltree.Node) bool { all = append(all, nd); return true })

	anc := relOf([]string{"A"})
	desc := relOf([]string{"D"})
	childPairs := map[[2]int32]bool{}
	descPairs := map[[2]int32]bool{}
	for _, nd := range all {
		anc.Add(algebra.Tuple{algebra.IDV(nd.ID)})
		desc.Add(algebra.Tuple{algebra.IDV(nd.ID)})
	}
	for _, a := range all {
		for _, d := range all {
			if a.ID.ParentOf(d.ID) {
				childPairs[[2]int32{a.ID.Pre, d.ID.Pre}] = true
			}
			if a.ID.AncestorOf(d.ID) {
				descPairs[[2]int32{a.ID.Pre, d.ID.Pre}] = true
			}
		}
	}
	return anc, desc, childPairs, descPairs
}

func drainPairs(t *testing.T, it Iterator) [][2]int32 {
	t.Helper()
	var out [][2]int32
	for {
		tp, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, [2]int32{tp[0].ID.Pre, tp[1].ID.Pre})
	}
}

func TestStackTreeDescMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		anc, desc, childPairs, descPairs := buildDocRelations(t, seed, 60)
		for _, axis := range []Axis{ChildAxis, DescendantAxis} {
			want := childPairs
			if axis == DescendantAxis {
				want = descPairs
			}
			j, err := NewStackTreeDesc(NewScan(anc, algebra.OrderDesc{"A"}), NewScan(desc, algebra.OrderDesc{"D"}), "A", "D", axis)
			if err != nil {
				t.Fatal(err)
			}
			got := drainPairs(t, j)
			if len(got) != len(want) {
				t.Fatalf("seed %d axis %v: got %d pairs, want %d", seed, axis, len(got), len(want))
			}
			for _, p := range got {
				if !want[p] {
					t.Fatalf("seed %d: unexpected pair %v", seed, p)
				}
			}
			// Output must be ordered by descendant pre.
			for i := 1; i < len(got); i++ {
				if got[i][1] < got[i-1][1] {
					t.Fatalf("seed %d: desc order violated at %d", seed, i)
				}
			}
		}
	}
}

func TestStackTreeAncMatchesOracleAndOrder(t *testing.T) {
	for seed := int64(10); seed < 15; seed++ {
		anc, desc, _, descPairs := buildDocRelations(t, seed, 60)
		j, err := NewStackTreeAnc(NewScan(anc, algebra.OrderDesc{"A"}), NewScan(desc, algebra.OrderDesc{"D"}), "A", "D", DescendantAxis)
		if err != nil {
			t.Fatal(err)
		}
		got := drainPairs(t, j)
		if len(got) != len(descPairs) {
			t.Fatalf("seed %d: got %d pairs, want %d", seed, len(got), len(descPairs))
		}
		for _, p := range got {
			if !descPairs[p] {
				t.Fatalf("seed %d: unexpected pair %v", seed, p)
			}
		}
		for i := 1; i < len(got); i++ {
			if got[i][0] < got[i-1][0] {
				t.Fatalf("seed %d: anc order violated at %d: %v", seed, i, got)
			}
		}
	}
}

func TestStructuralSemiAndOuterJoin(t *testing.T) {
	// Tree: r(1,4,1) -> a(2,2,2), b(3,3,2)... build explicit: r has child a;
	// a has child c; sibling b childless.
	doc := xmltree.MustParse("t.xml", `<r><a><c/></a><b/></r>`)
	var ids []xmltree.NodeID
	doc.Walk(func(n *xmltree.Node) bool { ids = append(ids, n.ID); return true })
	anc := relOf([]string{"A"})
	for _, id := range ids {
		anc.Add(algebra.Tuple{algebra.IDV(id)})
	}
	// Descendants: only the c node.
	c := doc.Root.Elements()[0].Elements()[0]
	desc := relOf([]string{"D"}, []algebra.Value{algebra.IDV(c.ID)})

	semi, err := NewStructuralSemiJoin(NewScan(anc, algebra.OrderDesc{"A"}), NewScan(desc, algebra.OrderDesc{"D"}), "A", "D", DescendantAxis)
	if err != nil {
		t.Fatal(err)
	}
	got := Drain(semi)
	if got.Len() != 2 { // r and a have descendant c
		t.Fatalf("semijoin: %s", got)
	}
	if got.Tuples[0][0].ID.Pre > got.Tuples[1][0].ID.Pre {
		t.Fatal("semijoin output not in ancestor order")
	}

	outer, err := NewStructuralOuterJoin(NewScan(anc, algebra.OrderDesc{"A"}), NewScan(desc, algebra.OrderDesc{"D"}), "A", "D", DescendantAxis)
	if err != nil {
		t.Fatal(err)
	}
	got2 := Drain(outer)
	if got2.Len() != 4 { // every ancestor once; matched carry c, others ⊥
		t.Fatalf("outerjoin: %s", got2)
	}
	var padded, matched int
	for _, tp := range got2.Tuples {
		if tp[1].IsNull() {
			padded++
		} else {
			matched++
		}
	}
	if padded != 2 || matched != 2 {
		t.Fatalf("outerjoin padding: %s", got2)
	}
}

func TestStackTreeRejectsUnsortedInput(t *testing.T) {
	r := relOf([]string{"A"}, []algebra.Value{idv(1, 1, 1)})
	if _, err := NewStackTreeDesc(NewScan(r, nil), NewScan(r, algebra.OrderDesc{"A"}), "A", "A", ChildAxis); err == nil {
		t.Fatal("must reject unsorted ancestor input")
	}
	if _, err := NewStackTreeDesc(NewScan(r, algebra.OrderDesc{"A"}), NewScan(r, nil), "A", "A", ChildAxis); err == nil {
		t.Fatal("must reject unsorted descendant input")
	}
}

func TestStackTreeSelfJoinNoSelfPairs(t *testing.T) {
	doc := xmltree.MustParse("t.xml", `<r><a/></r>`)
	rel := relOf([]string{"A"})
	doc.Walk(func(n *xmltree.Node) bool {
		rel.Add(algebra.Tuple{algebra.IDV(n.ID)})
		return true
	})
	rel2 := relOf([]string{"D"})
	rel2.Tuples = append(rel2.Tuples, rel.Tuples...)
	j, err := NewStackTreeDesc(NewScan(rel, algebra.OrderDesc{"A"}), NewScan(rel2, algebra.OrderDesc{"D"}), "A", "D", DescendantAxis)
	if err != nil {
		t.Fatal(err)
	}
	got := Drain(j)
	if got.Len() != 1 {
		t.Fatalf("self join: %s", got)
	}
	if got.Tuples[0][0].ID == got.Tuples[0][1].ID {
		t.Fatal("node paired with itself")
	}
}
