package physical

import (
	"hash/maphash"
	"math"

	"xamdb/internal/algebra"
)

// BatchDistinct removes duplicate rows from a batch stream preserving first
// occurrence order, the π°/Distinct step of every projected rewriting. Where
// the row engine fingerprints each tuple into a rendered string key
// (algebra.Distinct), this operator hashes typed column values directly —
// no per-row string building — and confirms collisions with Value.Equal, so
// the output is exactly the row operator's.
type BatchDistinct struct {
	in BatchIterator
	// hashes/refs form an open-addressing table (linear probing, power-of-
	// two capacity, grown at 3/4 load). Flat pointer-free arrays instead of
	// a Go map: inserts don't allocate, growth is a rehash of two slices,
	// and the GC never scans the table.
	hashes   []uint64
	refs     []batchRef
	occupied []bool
	entries  int
	kept     []*Batch     // emitted batches retained as equality-check referents
	seed     maphash.Seed // for string columns: AES-backed, allocation-free
}

// NewBatchDistinct wraps in with streaming duplicate elimination.
func NewBatchDistinct(in BatchIterator) *BatchDistinct {
	return &BatchDistinct{
		in:       in,
		hashes:   make([]uint64, 2*BatchSize),
		refs:     make([]batchRef, 2*BatchSize),
		occupied: make([]bool, 2*BatchSize),
		seed:     maphash.MakeSeed(),
	}
}

// Schema implements BatchIterator.
func (d *BatchDistinct) Schema() *algebra.Schema { return d.in.Schema() }

// Order implements BatchIterator: first-occurrence dedup preserves the
// input order.
func (d *BatchDistinct) Order() algebra.OrderDesc { return d.in.Order() }

// NextBatch implements BatchIterator.
func (d *BatchDistinct) NextBatch() (*Batch, bool) {
	for {
		b, ok := d.in.NextBatch()
		if !ok {
			return nil, false
		}
		sel := make([]int, 0, b.Rows())
		bi := int32(len(d.kept))
		for i := 0; i < b.Rows(); i++ {
			r := b.Row(i)
			if d.insert(d.hashRow(b, r), batchRef{b: bi, r: int32(r)}, b, r) {
				sel = append(sel, r)
			}
		}
		if len(sel) == 0 {
			continue
		}
		out := &Batch{Schema: b.Schema, Cols: b.Cols, Sel: sel, N: b.N}
		// Retain the source batch: the refs just inserted point at its
		// columns for future equality confirmation.
		d.kept = append(d.kept, b)
		return out, true
	}
}

// insert probes for row r of b under hash h and claims a slot if no equal
// row is present. It reports true when the row is new (kept), false for a
// duplicate.
func (d *BatchDistinct) insert(h uint64, ref batchRef, b *Batch, r int) bool {
	mask := uint64(len(d.hashes) - 1)
	i := h & mask
	for d.occupied[i] {
		if d.hashes[i] == h && d.sameRow(d.refs[i], b, r) {
			return false
		}
		i = (i + 1) & mask
	}
	d.hashes[i] = h
	d.refs[i] = ref
	d.occupied[i] = true
	d.entries++
	if d.entries*4 > len(d.hashes)*3 {
		d.grow()
	}
	return true
}

// grow doubles the table, reinserting by hash alone — existing entries are
// pairwise distinct, so no row comparisons are needed.
func (d *BatchDistinct) grow() {
	oldH, oldR, oldO := d.hashes, d.refs, d.occupied
	n := 2 * len(oldH)
	d.hashes = make([]uint64, n)
	d.refs = make([]batchRef, n)
	d.occupied = make([]bool, n)
	mask := uint64(n - 1)
	for j, occ := range oldO {
		if !occ {
			continue
		}
		i := oldH[j] & mask
		for d.occupied[i] {
			i = (i + 1) & mask
		}
		d.hashes[i] = oldH[j]
		d.refs[i] = oldR[j]
		d.occupied[i] = true
	}
}

// sameRow compares row r of b against the kept row ref points at. Refs into
// the batch currently being filtered (not yet appended to kept) resolve to
// b itself.
func (d *BatchDistinct) sameRow(ref batchRef, b *Batch, r int) bool {
	kb := b
	if int(ref.b) < len(d.kept) {
		kb = d.kept[ref.b]
	}
	for c := range b.Cols {
		if !b.Cols[c][r].Equal(kb.Cols[c][ref.r]) {
			return false
		}
	}
	return true
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func (d *BatchDistinct) hashRow(b *Batch, r int) uint64 {
	h := uint64(fnvOffset64)
	for c := range b.Cols {
		h = d.hashValue(h, b.Cols[c][r])
	}
	return h
}

func hashByte(h uint64, x byte) uint64 {
	return (h ^ uint64(x)) * fnvPrime64
}

// hash64 folds a whole word per multiply instead of FNV's byte-at-a-time
// loop. Weaker avalanche than true FNV is fine here: hash collisions only
// cost an extra Equal confirmation, and the Go map re-hashes the key for
// bucket placement anyway.
func hash64(h, x uint64) uint64 {
	return (h ^ x) * fnvPrime64
}

// hashValue folds v into h such that Equal values hash identically: the kind
// tag plus the kind's canonical bits, recursing into nested collections.
func (d *BatchDistinct) hashValue(h uint64, v algebra.Value) uint64 {
	h = hashByte(h, byte(v.Kind))
	switch v.Kind {
	case algebra.Null:
	case algebra.Int:
		h = hash64(h, uint64(v.Int))
	case algebra.Float:
		h = hash64(h, math.Float64bits(v.Float))
	case algebra.Str:
		h = hash64(h, maphash.String(d.seed, v.Str))
	case algebra.ID:
		h = hash64(h, uint64(uint32(v.ID.Pre)))
		h = hash64(h, uint64(uint32(v.ID.Post)))
		h = hash64(h, uint64(uint32(v.ID.Depth)))
	case algebra.DeweyID:
		for _, c := range v.Dewey {
			h = hash64(h, uint64(uint32(c)))
		}
	case algebra.Rel:
		if v.Rel == nil {
			return hashByte(h, 0xff)
		}
		h = hash64(h, uint64(len(v.Rel.Tuples)))
		for _, t := range v.Rel.Tuples {
			for _, cv := range t {
				h = d.hashValue(h, cv)
			}
		}
	default:
		h = hash64(h, maphash.String(d.seed, v.Str))
	}
	return h
}
