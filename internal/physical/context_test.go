package physical

import (
	"context"
	"errors"
	"testing"
	"time"

	"xamdb/internal/algebra"
)

func intRelation(n int) *algebra.Relation {
	rel := algebra.NewRelation(&algebra.Schema{Attrs: []algebra.Attr{{Name: "a"}}})
	for i := 0; i < n; i++ {
		rel.Add(algebra.Tuple{algebra.I(int64(i))})
	}
	return rel
}

func TestCheckpointExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	it := NewCheckpoint(ctx, NewScan(intRelation(10), nil))
	_, err := DrainContext(context.Background(), it)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from the checkpoint, got %v", err)
	}
}

func TestDrainContextExpired(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := DrainContext(ctx, NewScan(intRelation(10), nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
}

func TestCheckpointCancelMidStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	// Cancel from inside the stream after ~2 checkpoint intervals.
	in := NewFilter(NewCheckpoint(ctx, NewScan(intRelation(100000), nil)), func(algebra.Tuple) bool {
		n++
		if n == 2*checkpointInterval {
			cancel()
		}
		return true
	})
	rel, err := DrainContext(context.Background(), in)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v (rel=%v)", err, rel)
	}
	if n > 3*checkpointInterval {
		t.Fatalf("kept pulling %d tuples after cancellation", n)
	}
}

func TestCheckpointLiveContextPassesThrough(t *testing.T) {
	it := NewCheckpoint(context.Background(), NewScan(intRelation(10), nil))
	rel, err := DrainContext(context.Background(), it)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 10 {
		t.Fatalf("got %d tuples, want 10", rel.Len())
	}
}
