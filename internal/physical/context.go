package physical

import (
	"context"

	"xamdb/internal/algebra"
)

// The pull-based Iterator interface has no error channel, so cancellation
// travels as a typed panic: Checkpoint iterators placed at plan leaves test
// the context every checkpointInterval tuples and panic with *Cancelled;
// DrainContext recovers it at the plan root and converts it back into the
// context's error. Blocking operators (Sort, HashJoin build, StackTree)
// materialize by pulling their inputs, so leaf checkpoints bound how long
// any operator can run past a deadline.

// checkpointInterval is how many Next calls pass between context checks.
// Small enough to abort within microseconds of a deadline, large enough
// that the per-tuple cost is a counter increment.
const checkpointInterval = 64

// Cancelled is the panic value used to unwind an iterator tree when its
// context expires; DrainContext recovers it.
type Cancelled struct{ Err error }

func (c *Cancelled) Error() string { return "physical: cancelled: " + c.Err.Error() }

// Checkpoint wraps an iterator with periodic context checks (a cancellation
// checkpoint). The first Next call always checks, so an already-expired
// context aborts before any work. When the context carries a *Budget, each
// poll also charges the interval's tuples against the work quota, so quota
// kills unwind through the same panic protocol as deadlines.
type Checkpoint struct {
	in     Iterator
	ctx    context.Context
	budget *Budget
	n      int
	polls  int
}

// NewCheckpoint builds a cancellation checkpoint over in.
func NewCheckpoint(ctx context.Context, in Iterator) *Checkpoint {
	return &Checkpoint{in: in, ctx: ctx, budget: BudgetFrom(ctx)}
}

// Schema implements Iterator.
func (c *Checkpoint) Schema() *algebra.Schema { return c.in.Schema() }

// Order implements Iterator; checkpointing preserves order.
func (c *Checkpoint) Order() algebra.OrderDesc { return c.in.Order() }

// Polls reports how many context checks have run — surfaced by EXPLAIN
// ANALYZE so cancellation responsiveness is visible per plan leaf.
func (c *Checkpoint) Polls() int { return c.polls }

// Next implements Iterator.
func (c *Checkpoint) Next() (algebra.Tuple, bool) {
	if c.n%checkpointInterval == 0 {
		c.polls++
		if err := c.ctx.Err(); err != nil {
			//xamlint:allow nopanic(cancellation protocol: typed panic unwinds the iterator tree and is recovered by DrainContext)
			panic(&Cancelled{Err: err})
		}
		// Tuple quota is charged one interval at a time: granular enough to
		// kill runaway plans within 64 tuples, cheap enough to sit on the
		// per-tuple path.
		if err := c.budget.ChargeTuples(checkpointInterval); err != nil {
			//xamlint:allow nopanic(cancellation protocol: quota kill unwinds like a deadline and is recovered by DrainContext)
			panic(&Cancelled{Err: err})
		}
	}
	c.n++
	return c.in.Next()
}

// DrainContext materializes an iterator into a relation, honoring the
// context both in its own loop and by recovering *Cancelled panics raised
// by Checkpoint iterators deeper in the tree.
func DrainContext(ctx context.Context, it Iterator) (rel *algebra.Relation, err error) {
	defer func() {
		if p := recover(); p != nil {
			if c, ok := p.(*Cancelled); ok {
				rel, err = nil, c.Err
				return
			}
			panic(p)
		}
	}()
	out := algebra.NewRelation(it.Schema())
	for n := 0; ; n++ {
		if n%checkpointInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		t, ok := it.Next()
		if !ok {
			return out, nil
		}
		out.Add(t)
	}
}
