package physical

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Per-query resource quotas ride the context as a *Budget: the admission
// layer creates one per admitted query, the engine charges decoded-extent
// bytes and output rows against it, and Checkpoint iterators charge the
// tuples they pull — so a query that exceeds its envelope is killed at the
// next cancellation checkpoint, exactly like a deadline, instead of running
// to completion and being discarded.

// ErrQuotaExceeded is wrapped by every quota-kill error; callers use
// errors.Is to tell a quota kill from a plan failure (quota kills abort the
// query, they never trigger the fallback cascade).
var ErrQuotaExceeded = errors.New("physical: per-query quota exceeded")

// BudgetLimits bounds one query's resource envelope. Zero means unlimited.
type BudgetLimits struct {
	// MaxRowsOut caps the rows serialized to the client (checked by the
	// engine when the result is assembled).
	MaxRowsOut int64
	// MaxExtentBytes caps the estimated decoded bytes of the extents a
	// query's plans touch (charged by the engine per referenced extent).
	MaxExtentBytes int64
	// MaxTuples caps the tuples pulled through cancellation checkpoints —
	// a work bound on intermediate results, charged in checkpointInterval
	// granules, so a plan with runaway intermediates dies mid-flight.
	MaxTuples int64
}

// Budget tracks one query's consumption against its limits. All charge
// methods are goroutine-safe and nil-receiver-safe (a nil budget admits
// everything), so call sites need no guards. When a limit trips, the
// budget's cancel-cause (if any) fires with the quota error: every
// checkpoint in the plan sees the cancelled context, so the whole iterator
// tree unwinds even where the violating operator never charges again.
type Budget struct {
	limits BudgetLimits
	tuples atomic.Int64
	bytes  atomic.Int64
	cancel context.CancelCauseFunc
}

// NewBudget builds a budget over the limits; cancel may be nil (enforcement
// then relies on the charging call sites alone).
func NewBudget(limits BudgetLimits, cancel context.CancelCauseFunc) *Budget {
	return &Budget{limits: limits, cancel: cancel}
}

// Limits returns the budget's configured limits.
func (b *Budget) Limits() BudgetLimits {
	if b == nil {
		return BudgetLimits{}
	}
	return b.limits
}

// exceed builds the quota error and cancels the query's context with it.
func (b *Budget) exceed(what string, used, limit int64) error {
	err := fmt.Errorf("%w: %s %d over limit %d", ErrQuotaExceeded, what, used, limit)
	if b.cancel != nil {
		b.cancel(err)
	}
	return err
}

// ChargeTuples adds n pulled tuples; non-nil means the work quota tripped.
func (b *Budget) ChargeTuples(n int64) error {
	if b == nil || b.limits.MaxTuples <= 0 {
		return nil
	}
	if used := b.tuples.Add(n); used > b.limits.MaxTuples {
		return b.exceed("tuples", used, b.limits.MaxTuples)
	}
	return nil
}

// ChargeExtentBytes adds the estimated decoded size of one extent the query
// references; non-nil means the memory quota tripped.
func (b *Budget) ChargeExtentBytes(n int64) error {
	if b == nil || b.limits.MaxExtentBytes <= 0 {
		return nil
	}
	if used := b.bytes.Add(n); used > b.limits.MaxExtentBytes {
		return b.exceed("extent bytes", used, b.limits.MaxExtentBytes)
	}
	return nil
}

// CheckRowsOut validates the final result cardinality against the rows-out
// quota (absolute, not cumulative).
func (b *Budget) CheckRowsOut(n int64) error {
	if b == nil || b.limits.MaxRowsOut <= 0 {
		return nil
	}
	if n > b.limits.MaxRowsOut {
		return b.exceed("rows out", n, b.limits.MaxRowsOut)
	}
	return nil
}

// budgetKey is the context key Budget rides under.
type budgetKey struct{}

// WithBudget attaches the budget to the context; the engine and Checkpoint
// iterators pick it up with BudgetFrom.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFrom returns the context's budget, or nil.
func BudgetFrom(ctx context.Context) *Budget {
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}
