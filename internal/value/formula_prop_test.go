package value

import (
	"math"
	"math/rand"
	"testing"
)

// Regression: strconv.ParseFloat accepts "NaN" and "Inf" spellings, and the
// resulting non-finite numeric atoms break the total order (NaN compares
// neither less, greater, nor equal, so Compare returned 0 against every
// number, silently corrupting interval normalization). Non-finite parses
// must stay string atoms.
func TestStrNonFiniteStaysString(t *testing.T) {
	for _, s := range []string{"NaN", "nan", "Inf", "inf", "+Inf", "-Inf", "Infinity", "-infinity", " NaN "} {
		a := Str(s)
		if a.IsNum {
			t.Errorf("Str(%q) must be a string atom, got number %v", s, a.Num)
		}
		if a.Compare(a) != 0 {
			t.Errorf("Str(%q) must equal itself", s)
		}
	}
	// Finite spellings still coerce.
	for _, s := range []string{"1e308", "-4.5", "0"} {
		if a := Str(s); !a.IsNum {
			t.Errorf("Str(%q) must stay numeric", s)
		}
	}
	// The concrete corruption: before the fix, a NaN atom compared equal to
	// everything, so v = "NaN" absorbed unrelated points during normalize.
	f := Eq(Str("NaN")).Or(Eq(Num(3)))
	if f.Holds(Num(5)) || f.Holds(Str("NbN")) {
		t.Fatalf("v=\"NaN\" ∨ v=3 must not cover other points: %s", f)
	}
	if !f.Holds(Str("NaN")) || !f.Holds(Num(3)) {
		t.Fatalf("v=\"NaN\" ∨ v=3 must cover its own points: %s", f)
	}
	if Num(3).Compare(Str("NaN")) != -1 {
		t.Fatal("numbers must order before the NaN string atom")
	}
	if Num(math.Inf(1)).Compare(Num(1)) != 1 {
		t.Fatal("explicit Num(+Inf) still orders above finite numbers")
	}
}

// mixedAtom samples both sides of the number/string boundary, including
// the NaN spelling that used to corrupt ordering.
func mixedAtom(rng *rand.Rand) Atom {
	if rng.Intn(2) == 0 {
		return Num(float64(rng.Intn(10)))
	}
	return Str([]string{"", "NaN", "a", "m", "z"}[rng.Intn(5)])
}

// randFormulaMixed is randFormula over mixed numeric/string atoms.
func randFormulaMixed(rng *rand.Rand, depth int) Formula {
	if depth == 0 {
		c := mixedAtom(rng)
		switch rng.Intn(6) {
		case 0:
			return Eq(c)
		case 1:
			return Ne(c)
		case 2:
			return Lt(c)
		case 3:
			return Le(c)
		case 4:
			return Gt(c)
		default:
			return Ge(c)
		}
	}
	a := randFormulaMixed(rng, depth-1)
	b := randFormulaMixed(rng, depth-1)
	switch rng.Intn(3) {
	case 0:
		return a.And(b)
	case 1:
		return a.Or(b)
	default:
		return a.Not()
	}
}

// checkDisjoint asserts the representation invariant: every interval
// non-empty, intervals strictly ordered by lower bound, and no two
// consecutive intervals adjacent or overlapping (they would have merged).
func checkDisjoint(t *testing.T, f Formula, op string) {
	t.Helper()
	for i, iv := range f.ivs {
		if iv.empty() {
			t.Fatalf("%s: interval %d of %s is empty", op, i, f)
		}
		if i == 0 {
			continue
		}
		prev := f.ivs[i-1]
		if cmpLo(prev, iv) >= 0 {
			t.Fatalf("%s: intervals out of order in %s", op, f)
		}
		if adjacentOrOverlap(prev, iv) {
			t.Fatalf("%s: unmerged adjacency between %s and %s in %s", op, prev, iv, f)
		}
	}
}

// Property: the disjoint-sorted-interval invariant survives every operation,
// over mixed numeric/string formulas.
func TestOpsPreserveDisjointInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		a := randFormulaMixed(rng, 2)
		b := randFormulaMixed(rng, 2)
		checkDisjoint(t, a, "gen")
		checkDisjoint(t, a.And(b), "and")
		checkDisjoint(t, a.Or(b), "or")
		checkDisjoint(t, a.Not(), "not")
		checkDisjoint(t, a.And(a.Not()), "contradiction")
	}
}

// Property: f ∧ ¬f ≡ ⊥, f ∨ ¬f ≡ ⊤, and the weakening law f ⇒ f ∨ g, for
// random mixed formulas.
func TestContradictionAndWeakening(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		f := randFormulaMixed(rng, 2)
		g := randFormulaMixed(rng, 2)
		if !f.And(f.Not()).IsFalse() {
			t.Fatalf("f ∧ ¬f must be F for %s", f)
		}
		if !f.Or(f.Not()).IsTrue() {
			t.Fatalf("f ∨ ¬f must be T for %s", f)
		}
		if !f.Implies(f.Or(g)) {
			t.Fatalf("f ⇏ f∨g for f=%s g=%s", f, g)
		}
		if !f.And(g).Implies(f) {
			t.Fatalf("f∧g ⇏ f for f=%s g=%s", f, g)
		}
		if !f.Not().Not().Equal(f) {
			t.Fatalf("¬¬f ≠ f for %s", f)
		}
	}
}

// Boundary cases where intervals span the number/string divide: every
// number precedes every string in the domain order.
func TestMixedAtomBoundaries(t *testing.T) {
	// v < "a" covers all numbers and low strings.
	lt := Lt(Str("a"))
	if !lt.Holds(Num(1e300)) || !lt.Holds(Str("NaN")) || lt.Holds(Str("b")) {
		t.Fatalf("v<\"a\": %s", lt)
	}
	// v ≥ 0 covers every string.
	ge := Ge(Num(0))
	if !ge.Holds(Str("")) || !ge.Holds(Str("zzz")) || ge.Holds(Num(-1)) {
		t.Fatalf("v≥0: %s", ge)
	}
	// ¬(v ≤ 5) keeps strings.
	not := Le(Num(5)).Not()
	if !not.Holds(Str("x")) || !not.Holds(Num(6)) || not.Holds(Num(5)) {
		t.Fatalf("¬(v≤5): %s", not)
	}
	// An interval crossing the divide holds points on both sides.
	span := Gt(Num(10)).And(Lt(Str("b")))
	if !span.Holds(Num(11)) || !span.Holds(Str("a")) || span.Holds(Num(10)) || span.Holds(Str("c")) {
		t.Fatalf("(10,\"b\"): %s", span)
	}
	// Complement across the divide is exact.
	if !span.Or(span.Not()).IsTrue() {
		t.Fatal("span ∨ ¬span must be T")
	}
}
