// Package value implements the node-decoration formulas φ(v) of §4.1: boolean
// combinations of atoms v θ c over a totally ordered atomic domain. As the
// paper suggests, a formula is represented compactly as a union of disjoint
// intervals, which makes negation, conjunction, disjunction and implication
// directly computable — the operations containment of decorated patterns
// needs (§4.4.2).
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Atom is one point of the ordered atomic domain A. Numbers order before
// strings; numbers order numerically, strings lexicographically. A string
// constant that parses as a number is treated as that number, mirroring the
// loose typing of XML leaf values.
type Atom struct {
	IsNum bool
	Num   float64
	Str   string
}

// Num builds a numeric atom.
func Num(f float64) Atom { return Atom{IsNum: true, Num: f} }

// Str builds a string atom (numeric strings become numeric atoms). NaN and
// ±Inf parse successfully but violate the total order Compare promises —
// NaN in particular compares neither less, greater, nor equal, which would
// corrupt interval normalization — so non-finite parses stay strings.
func Str(s string) Atom {
	if f, ok := fastInt(s); ok {
		return Num(f)
	}
	if f, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil && !math.IsNaN(f) && !math.IsInf(f, 0) {
		return Num(f)
	}
	return Atom{Str: s}
}

// fastInt recognizes plain decimal integers (optional sign, ≤15 digits, so
// the float64 conversion is exact) without the strconv machinery — residual
// selections call Str once per scanned extent row, and ParseFloat dominated
// that loop.
func fastInt(s string) (float64, bool) {
	i, neg := 0, false
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		neg = s[i] == '-'
		i++
	}
	if i == len(s) || len(s)-i > 15 {
		return 0, false
	}
	var n int64
	for ; i < len(s); i++ {
		d := s[i] - '0'
		if d > 9 {
			return 0, false
		}
		n = n*10 + int64(d)
	}
	if neg {
		n = -n
	}
	return float64(n), true
}

// Compare totally orders atoms.
func (a Atom) Compare(b Atom) int {
	switch {
	case a.IsNum && !b.IsNum:
		return -1
	case !a.IsNum && b.IsNum:
		return 1
	case a.IsNum:
		switch {
		case a.Num < b.Num:
			return -1
		case a.Num > b.Num:
			return 1
		}
		return 0
	}
	return strings.Compare(a.Str, b.Str)
}

func (a Atom) String() string {
	if a.IsNum {
		return strconv.FormatFloat(a.Num, 'g', -1, 64)
	}
	return strconv.Quote(a.Str)
}

// Interval is a contiguous range of the domain. Infinite bounds are flagged;
// Open marks strict bounds.
type Interval struct {
	LoInf, HiInf   bool
	Lo, Hi         Atom
	LoOpen, HiOpen bool
}

// Contains reports whether a lies in the interval.
func (iv Interval) Contains(a Atom) bool {
	if !iv.LoInf {
		c := iv.Lo.Compare(a)
		if c > 0 || (c == 0 && iv.LoOpen) {
			return false
		}
	}
	if !iv.HiInf {
		c := a.Compare(iv.Hi)
		if c > 0 || (c == 0 && iv.HiOpen) {
			return false
		}
	}
	return true
}

// empty reports whether the interval denotes no point.
func (iv Interval) empty() bool {
	if iv.LoInf || iv.HiInf {
		return false
	}
	c := iv.Lo.Compare(iv.Hi)
	return c > 0 || (c == 0 && (iv.LoOpen || iv.HiOpen))
}

func (iv Interval) String() string {
	var sb strings.Builder
	if iv.LoOpen || iv.LoInf {
		sb.WriteByte('(')
	} else {
		sb.WriteByte('[')
	}
	if iv.LoInf {
		sb.WriteString("-∞")
	} else {
		sb.WriteString(iv.Lo.String())
	}
	sb.WriteString(", ")
	if iv.HiInf {
		sb.WriteString("+∞")
	} else {
		sb.WriteString(iv.Hi.String())
	}
	if iv.HiOpen || iv.HiInf {
		sb.WriteByte(')')
	} else {
		sb.WriteByte(']')
	}
	return sb.String()
}

// Formula is a normalized union of disjoint, sorted intervals. The zero
// value is F (false); True() spans the whole domain.
type Formula struct {
	ivs []Interval
}

// False is the unsatisfiable formula F.
func False() Formula { return Formula{} }

// True is the trivially satisfied formula T.
func True() Formula { return Formula{ivs: []Interval{{LoInf: true, HiInf: true}}} }

// Eq builds v = c.
func Eq(c Atom) Formula { return Formula{ivs: []Interval{{Lo: c, Hi: c}}} }

// Lt builds v < c.
func Lt(c Atom) Formula {
	return Formula{ivs: []Interval{{LoInf: true, Hi: c, HiOpen: true}}}
}

// Le builds v ≤ c.
func Le(c Atom) Formula { return Formula{ivs: []Interval{{LoInf: true, Hi: c}}} }

// Gt builds v > c.
func Gt(c Atom) Formula {
	return Formula{ivs: []Interval{{Lo: c, LoOpen: true, HiInf: true}}}
}

// Ge builds v ≥ c.
func Ge(c Atom) Formula { return Formula{ivs: []Interval{{Lo: c, HiInf: true}}} }

// Ne builds v ≠ c.
func Ne(c Atom) Formula { return Eq(c).Not() }

// IsFalse reports whether the formula is unsatisfiable.
func (f Formula) IsFalse() bool { return len(f.ivs) == 0 }

// IsTrue reports whether the formula covers the whole domain.
func (f Formula) IsTrue() bool {
	return len(f.ivs) == 1 && f.ivs[0].LoInf && f.ivs[0].HiInf
}

// Holds reports whether the formula is satisfied by the atom.
func (f Formula) Holds(a Atom) bool {
	for _, iv := range f.ivs {
		if iv.Contains(a) {
			return true
		}
	}
	return false
}

// cmpLo orders intervals by lower bound.
func cmpLo(a, b Interval) int {
	switch {
	case a.LoInf && b.LoInf:
		return 0
	case a.LoInf:
		return -1
	case b.LoInf:
		return 1
	}
	c := a.Lo.Compare(b.Lo)
	if c != 0 {
		return c
	}
	switch {
	case !a.LoOpen && b.LoOpen:
		return -1
	case a.LoOpen && !b.LoOpen:
		return 1
	}
	return 0
}

// adjacentOrOverlap reports whether a ∪ b is contiguous given cmpLo(a,b) ≤ 0.
func adjacentOrOverlap(a, b Interval) bool {
	if a.HiInf {
		return true
	}
	if b.LoInf {
		return true
	}
	c := a.Hi.Compare(b.Lo)
	if c > 0 {
		return true
	}
	if c == 0 {
		// [x, c] [c, y] or [x, c) [c, y]: contiguous unless both open.
		return !(a.HiOpen && b.LoOpen)
	}
	return false
}

func maxHi(a, b Interval) (hiInf bool, hi Atom, hiOpen bool) {
	if a.HiInf || b.HiInf {
		return true, Atom{}, false
	}
	c := a.Hi.Compare(b.Hi)
	switch {
	case c > 0:
		return false, a.Hi, a.HiOpen
	case c < 0:
		return false, b.Hi, b.HiOpen
	}
	return false, a.Hi, a.HiOpen && b.HiOpen
}

func normalize(ivs []Interval) Formula {
	var kept []Interval
	for _, iv := range ivs {
		if !iv.empty() {
			kept = append(kept, iv)
		}
	}
	if len(kept) == 0 {
		return Formula{}
	}
	// Insertion sort by lower bound (lists are tiny).
	for i := 1; i < len(kept); i++ {
		for j := i; j > 0 && cmpLo(kept[j], kept[j-1]) < 0; j-- {
			kept[j], kept[j-1] = kept[j-1], kept[j]
		}
	}
	out := []Interval{kept[0]}
	for _, iv := range kept[1:] {
		last := &out[len(out)-1]
		if adjacentOrOverlap(*last, iv) {
			last.HiInf, last.Hi, last.HiOpen = maxHi(*last, iv)
		} else {
			out = append(out, iv)
		}
	}
	return Formula{ivs: out}
}

// Or computes f ∨ g.
func (f Formula) Or(g Formula) Formula {
	return normalize(append(append([]Interval{}, f.ivs...), g.ivs...))
}

// And computes f ∧ g.
func (f Formula) And(g Formula) Formula {
	var out []Interval
	for _, a := range f.ivs {
		for _, b := range g.ivs {
			iv := intersect(a, b)
			if !iv.empty() {
				out = append(out, iv)
			}
		}
	}
	return normalize(out)
}

func intersect(a, b Interval) Interval {
	out := Interval{LoInf: a.LoInf && b.LoInf, HiInf: a.HiInf && b.HiInf}
	// Lower bound: the larger of the two.
	switch {
	case a.LoInf:
		out.Lo, out.LoOpen = b.Lo, b.LoOpen
	case b.LoInf:
		out.Lo, out.LoOpen = a.Lo, a.LoOpen
	default:
		c := a.Lo.Compare(b.Lo)
		switch {
		case c > 0:
			out.Lo, out.LoOpen = a.Lo, a.LoOpen
		case c < 0:
			out.Lo, out.LoOpen = b.Lo, b.LoOpen
		default:
			out.Lo, out.LoOpen = a.Lo, a.LoOpen || b.LoOpen
		}
	}
	// Upper bound: the smaller of the two.
	switch {
	case a.HiInf:
		out.Hi, out.HiOpen = b.Hi, b.HiOpen
	case b.HiInf:
		out.Hi, out.HiOpen = a.Hi, a.HiOpen
	default:
		c := a.Hi.Compare(b.Hi)
		switch {
		case c < 0:
			out.Hi, out.HiOpen = a.Hi, a.HiOpen
		case c > 0:
			out.Hi, out.HiOpen = b.Hi, b.HiOpen
		default:
			out.Hi, out.HiOpen = a.Hi, a.HiOpen || b.HiOpen
		}
	}
	return out
}

// Not computes ¬f.
func (f Formula) Not() Formula {
	if f.IsFalse() {
		return True()
	}
	var out []Interval
	cur := Interval{LoInf: true}
	for _, iv := range f.ivs {
		if !iv.LoInf {
			gap := cur
			gap.Hi, gap.HiOpen, gap.HiInf = iv.Lo, !iv.LoOpen, false
			if !gap.empty() {
				out = append(out, gap)
			}
		}
		if iv.HiInf {
			return normalize(out)
		}
		cur = Interval{Lo: iv.Hi, LoOpen: !iv.HiOpen, HiInf: true}
	}
	out = append(out, cur)
	return normalize(out)
}

// Implies reports f ⇒ g (every satisfying point of f satisfies g).
func (f Formula) Implies(g Formula) bool { return f.And(g.Not()).IsFalse() }

// Equal reports logical equivalence.
func (f Formula) Equal(g Formula) bool { return f.Implies(g) && g.Implies(f) }

func (f Formula) String() string {
	if f.IsFalse() {
		return "F"
	}
	if f.IsTrue() {
		return "T"
	}
	parts := make([]string, len(f.ivs))
	for i, iv := range f.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " ∪ ")
}

// FromComparison builds a formula for a v θ c atom from its textual
// comparator; used by the XAM and XQuery parsers.
func FromComparison(op string, c Atom) (Formula, error) {
	switch op {
	case "=":
		return Eq(c), nil
	case "!=", "<>":
		return Ne(c), nil
	case "<":
		return Lt(c), nil
	case "<=":
		return Le(c), nil
	case ">":
		return Gt(c), nil
	case ">=":
		return Ge(c), nil
	}
	return Formula{}, fmt.Errorf("value: unknown comparator %q", op)
}
