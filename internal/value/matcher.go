package value

import "math"

// Matcher compiles the formula into a specialized predicate over atoms.
// Semantically Matcher()(a) ≡ Holds(a) for every atom; the compiled form
// exists for the batch execution path, which evaluates one formula against
// whole column vectors of pre-parsed atoms — there the generic interval
// walk (Atom copies, Compare calls per interval bound) dominates, while
// the common single-interval numeric shapes (v < c, c1 ≤ v ≤ c2) reduce
// to one or two float comparisons per row.
//
// Numbers order before strings in the atom domain, so an interval with a
// numeric (or -∞) lower bound and an unbounded top contains every string;
// the fast paths therefore apply only to numeric atoms and defer string
// atoms to the generic Holds.
func (f Formula) Matcher() func(Atom) bool {
	if len(f.ivs) == 0 {
		return func(Atom) bool { return false }
	}
	if f.IsTrue() {
		return func(Atom) bool { return true }
	}
	if len(f.ivs) == 1 {
		iv := f.ivs[0]
		numericBounds := (iv.LoInf || iv.Lo.IsNum) && (iv.HiInf || iv.Hi.IsNum)
		if numericBounds {
			return func(a Atom) bool {
				if !a.IsNum {
					return f.Holds(a)
				}
				if !iv.LoInf {
					if a.Num < iv.Lo.Num || (iv.LoOpen && a.Num == iv.Lo.Num) {
						return false
					}
				}
				if !iv.HiInf {
					if a.Num > iv.Hi.Num || (iv.HiOpen && a.Num == iv.Hi.Num) {
						return false
					}
				}
				return true
			}
		}
	}
	return f.Holds
}

// MatchColumn appends to sel the indexes of the atoms satisfying f, in
// ascending order. It is the column-vector form of Matcher: one call per
// window instead of one closure invocation per row, with the dominant
// single-interval numeric shape inlined into the loop. Callers are
// responsible for excluding null rows (a null's zero atom is
// indistinguishable from the empty string here).
func (f Formula) MatchColumn(atoms []Atom, sel []int) []int {
	if len(f.ivs) == 0 {
		return sel
	}
	if f.IsTrue() {
		for i := range atoms {
			sel = append(sel, i)
		}
		return sel
	}
	if len(f.ivs) == 1 {
		iv := f.ivs[0]
		if (iv.LoInf || iv.Lo.IsNum) && (iv.HiInf || iv.Hi.IsNum) {
			lo, hi := math.Inf(-1), math.Inf(1)
			if !iv.LoInf {
				lo = iv.Lo.Num
			}
			if !iv.HiInf {
				hi = iv.Hi.Num
			}
			for i := range atoms {
				a := &atoms[i]
				if a.IsNum {
					if a.Num < lo || a.Num > hi ||
						(iv.LoOpen && a.Num == lo) || (iv.HiOpen && a.Num == hi) {
						continue
					}
				} else if !f.Holds(*a) {
					continue
				}
				sel = append(sel, i)
			}
			return sel
		}
	}
	for i := range atoms {
		if f.Holds(atoms[i]) {
			sel = append(sel, i)
		}
	}
	return sel
}
