package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAtomOrder(t *testing.T) {
	if Num(1).Compare(Num(2)) != -1 || Num(2).Compare(Num(2)) != 0 {
		t.Fatal("numeric order")
	}
	if Str("a").Compare(Str("b")) != -1 {
		t.Fatal("string order")
	}
	if Num(1e9).Compare(Atom{Str: "a"}) != -1 {
		t.Fatal("numbers order before strings")
	}
	// Numeric strings coerce to numbers.
	if !Str("42").IsNum || Str("42").Num != 42 {
		t.Fatal("numeric string coercion")
	}
}

func TestBasicConstructors(t *testing.T) {
	c := Num(5)
	cases := []struct {
		f      Formula
		pt     Atom
		expect bool
	}{
		{Eq(c), Num(5), true},
		{Eq(c), Num(4), false},
		{Ne(c), Num(5), false},
		{Ne(c), Num(6), true},
		{Lt(c), Num(4.9), true},
		{Lt(c), Num(5), false},
		{Le(c), Num(5), true},
		{Gt(c), Num(5), false},
		{Gt(c), Num(5.1), true},
		{Ge(c), Num(5), true},
		{True(), Str("anything"), true},
		{False(), Num(0), false},
	}
	for i, tc := range cases {
		if got := tc.f.Holds(tc.pt); got != tc.expect {
			t.Errorf("case %d: %s holds %s = %v, want %v", i, tc.f, tc.pt, got, tc.expect)
		}
	}
}

func TestAndOrNot(t *testing.T) {
	a := Ge(Num(1)).And(Le(Num(10))) // [1,10]
	b := Ge(Num(5)).And(Le(Num(20))) // [5,20]
	inter := a.And(b)                // [5,10]
	if !inter.Holds(Num(7)) || inter.Holds(Num(3)) || inter.Holds(Num(15)) {
		t.Fatalf("intersection: %s", inter)
	}
	uni := a.Or(b) // [1,20]
	if !uni.Holds(Num(3)) || !uni.Holds(Num(15)) || uni.Holds(Num(0)) {
		t.Fatalf("union: %s", uni)
	}
	neg := a.Not()
	if neg.Holds(Num(5)) || !neg.Holds(Num(0)) || !neg.Holds(Num(11)) {
		t.Fatalf("negation: %s", neg)
	}
	if !a.And(a.Not()).IsFalse() {
		t.Fatal("f ∧ ¬f must be F")
	}
	if !a.Or(a.Not()).IsTrue() {
		t.Fatalf("f ∨ ¬f must be T, got %s", a.Or(a.Not()))
	}
}

func TestDisjointUnionStaysDisjoint(t *testing.T) {
	f := Eq(Num(1)).Or(Eq(Num(3)))
	if f.Holds(Num(2)) {
		t.Fatal("gap must not be covered")
	}
	if !f.Holds(Num(1)) || !f.Holds(Num(3)) {
		t.Fatal("points must be covered")
	}
	// Adjacent half-open intervals merge.
	g := Lt(Num(5)).Or(Ge(Num(5)))
	if !g.IsTrue() {
		t.Fatalf("(-∞,5) ∪ [5,∞) must be T, got %s", g)
	}
	// Both-open adjacency leaves the point out.
	h := Lt(Num(5)).Or(Gt(Num(5)))
	if h.Holds(Num(5)) || h.IsTrue() {
		t.Fatalf("(-∞,5) ∪ (5,∞): %s", h)
	}
	if !h.Equal(Ne(Num(5))) {
		t.Fatal("should equal v≠5")
	}
}

func TestImplies(t *testing.T) {
	if !Eq(Num(3)).Implies(Ge(Num(1))) {
		t.Fatal("v=3 ⇒ v≥1")
	}
	if Ge(Num(1)).Implies(Eq(Num(3))) {
		t.Fatal("v≥1 ⇏ v=3")
	}
	if !False().Implies(Eq(Num(1))) {
		t.Fatal("F implies everything")
	}
	if !Eq(Num(1)).Implies(True()) {
		t.Fatal("everything implies T")
	}
	// The §4.4.2 check: φ ⇒ φ₁ ∨ φ₂.
	phi := Eq(Num(3)).Or(Eq(Num(7)))
	phi1 := Le(Num(5))
	phi2 := Ge(Num(6))
	if !phi.Implies(phi1.Or(phi2)) {
		t.Fatal("disjunctive implication")
	}
	if phi.Implies(phi1) {
		t.Fatal("phi ⇏ phi1 alone")
	}
}

func TestStringsAndNumbersMix(t *testing.T) {
	f := Eq(Str("Data on the Web"))
	if !f.Holds(Str("Data on the Web")) || f.Holds(Str("other")) {
		t.Fatal("string equality")
	}
	g := Ge(Str("m")) // strings ≥ "m"
	if !g.Holds(Str("z")) || g.Holds(Str("a")) {
		t.Fatal("string range")
	}
	// All numbers sort before strings, so v ≥ "m" excludes numbers below
	// every string.
	if g.Holds(Num(1e12)) {
		t.Fatal("numbers precede strings in the domain order")
	}
}

func TestFromComparison(t *testing.T) {
	for _, op := range []string{"=", "!=", "<>", "<", "<=", ">", ">="} {
		if _, err := FromComparison(op, Num(1)); err != nil {
			t.Errorf("FromComparison(%q): %v", op, err)
		}
	}
	if _, err := FromComparison("~", Num(1)); err == nil {
		t.Fatal("unknown comparator must error")
	}
}

// randFormula builds a random formula from atoms over small integers.
func randFormula(rng *rand.Rand, depth int) Formula {
	if depth == 0 {
		c := Num(float64(rng.Intn(10)))
		switch rng.Intn(6) {
		case 0:
			return Eq(c)
		case 1:
			return Ne(c)
		case 2:
			return Lt(c)
		case 3:
			return Le(c)
		case 4:
			return Gt(c)
		default:
			return Ge(c)
		}
	}
	a := randFormula(rng, depth-1)
	b := randFormula(rng, depth-1)
	switch rng.Intn(3) {
	case 0:
		return a.And(b)
	case 1:
		return a.Or(b)
	default:
		return a.Not()
	}
}

// Property: boolean algebra laws hold pointwise over sampled atoms.
func TestQuickBooleanLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := make([]Atom, 0, 40)
	for i := -2; i <= 11; i++ {
		pts = append(pts, Num(float64(i)), Num(float64(i)+0.5))
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randFormula(r, 2)
		b := randFormula(r, 2)
		for _, p := range pts {
			if a.And(b).Holds(p) != (a.Holds(p) && b.Holds(p)) {
				return false
			}
			if a.Or(b).Holds(p) != (a.Holds(p) || b.Holds(p)) {
				return false
			}
			if a.Not().Holds(p) != !a.Holds(p) {
				return false
			}
		}
		// Implication matches pointwise subset over the sample.
		if a.Implies(b) {
			for _, p := range pts {
				if a.Holds(p) && !b.Holds(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleNegation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		f := randFormula(rng, 2)
		if !f.Not().Not().Equal(f) {
			t.Fatalf("¬¬f ≠ f for %s", f)
		}
	}
}
