package admission

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xamdb/internal/faultinject"
	"xamdb/internal/obs"
	"xamdb/internal/physical"
)

// testConfig returns a small controller config with quick timeouts and a
// private metrics registry so tests do not pollute the default registry.
func testConfig() Config {
	return Config{
		Workers:         2,
		QueueDepth:      4,
		QueueTimeout:    200 * time.Millisecond,
		DefaultDeadline: time.Second,
		MaxDeadline:     2 * time.Second,
		DrainTimeout:    time.Second,
		Metrics:         obs.NewRegistry(),
	}
}

// TestPoolBoundsConcurrency checks that at most Workers queries execute at
// once, whatever the offered load.
func TestPoolBoundsConcurrency(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 2
	cfg.QueueDepth = 32
	cfg.QueueTimeout = 5 * time.Second
	c := New(cfg)
	defer c.Drain(time.Second)

	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Do(context.Background(), 0, func(ctx context.Context) error {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(5 * time.Millisecond)
				cur.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("pool must bound concurrency at 2, saw %d", p)
	}
	if s := c.Stats(); s.Served != 16 {
		t.Fatalf("all 16 must be served, got %+v", s)
	}
}

// TestQueueFullSheds checks that a submission finding the queue full is
// rejected immediately with OutcomeShedQueueFull.
func TestQueueFullSheds(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.QueueTimeout = 5 * time.Second
	c := New(cfg)
	defer c.Drain(time.Second)

	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(context.Background(), 0, func(ctx context.Context) error {
			close(started)
			<-block
			return nil
		})
	}()
	<-started
	// Fill the one queue slot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(context.Background(), 0, func(ctx context.Context) error { return nil })
	}()
	// Wait until the queued task is visible, then the next must shed.
	deadline := time.Now().Add(time.Second)
	for c.Stats().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued task never became visible")
		}
		time.Sleep(time.Millisecond)
	}
	res := c.Do(context.Background(), 0, func(ctx context.Context) error { return nil })
	if res.Outcome != OutcomeShedQueueFull || res.Ran {
		t.Fatalf("want queue-full shed without running, got %+v", res)
	}
	close(block)
	wg.Wait()
	if s := c.Stats(); s.ShedQueueFull != 1 || s.Served != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestQueueTimeoutSheds checks that a request stuck in the queue past the
// queue timeout is shed rather than run.
func TestQueueTimeoutSheds(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 4
	cfg.QueueTimeout = 20 * time.Millisecond
	c := New(cfg)
	defer c.Drain(time.Second)

	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(context.Background(), 0, func(ctx context.Context) error {
			close(started)
			<-block
			return nil
		})
	}()
	<-started
	res := make(chan Result, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		res <- c.Do(context.Background(), 0, func(ctx context.Context) error { return nil })
	}()
	time.Sleep(60 * time.Millisecond) // exceed the queue timeout
	close(block)
	r := <-res
	if r.Outcome != OutcomeShedQueueTimeout || r.Ran {
		t.Fatalf("want queue-timeout shed, got %+v", r)
	}
	wg.Wait()
}

// TestCancelWhileQueued checks that a caller abandoning a queued request
// accounts it as cancelled without running it.
func TestCancelWhileQueued(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 4
	cfg.QueueTimeout = 5 * time.Second
	c := New(cfg)
	defer c.Drain(time.Second)

	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(context.Background(), 0, func(ctx context.Context) error {
			close(started)
			<-block
			return nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan Result, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		res <- c.Do(ctx, 0, func(ctx context.Context) error { return nil })
	}()
	for c.Stats().Queued < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(block)
	r := <-res
	if r.Outcome != OutcomeCancelled || r.Ran {
		t.Fatalf("want cancelled without running, got %+v", r)
	}
	wg.Wait()
}

// TestWorkerPanicKeepsSlot checks the tentpole resilience property: a query
// that panics is accounted as errored, the pool slot survives, the process
// does not crash, and the goroutine count stays flat.
func TestWorkerPanicKeepsSlot(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1 // one slot: if a panic leaked it, the next query would hang
	c := New(cfg)
	defer c.Drain(time.Second)

	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		res := c.Do(context.Background(), 0, func(ctx context.Context) error {
			//xamlint:allow nopanic(deliberate panic: test proves the pool recovers worker panics)
			panic(fmt.Sprintf("boom %d", i))
		})
		if res.Outcome != OutcomeErrored || res.Err == nil {
			t.Fatalf("panic must account as errored, got %+v", res)
		}
	}
	// The single slot must still serve.
	res := c.Do(context.Background(), 0, func(ctx context.Context) error { return nil })
	if res.Outcome != OutcomeServed {
		t.Fatalf("slot leaked after panics: %+v", res)
	}
	runtime.GC()
	time.Sleep(20 * time.Millisecond)
	after := runtime.NumGoroutine()
	if after > before+3 {
		t.Fatalf("goroutines grew %d -> %d after panics", before, after)
	}
	if s := c.Stats(); s.Errored != 8 || s.Served != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestDeadlineHintClamped checks deadline resolution: no hint uses the
// default, a hint overrides it, and hints are clamped to MaxDeadline.
func TestDeadlineHintClamped(t *testing.T) {
	cfg := testConfig()
	cfg.DefaultDeadline = time.Second
	cfg.MaxDeadline = 2 * time.Second
	c := New(cfg)
	defer c.Drain(time.Second)

	remaining := func(hint time.Duration) time.Duration {
		var d time.Duration
		c.Do(context.Background(), hint, func(ctx context.Context) error {
			dl, ok := ctx.Deadline()
			if !ok {
				t.Error("query context must carry a deadline")
				return nil
			}
			d = time.Until(dl)
			return nil
		})
		return d
	}
	if d := remaining(0); d > time.Second || d < 500*time.Millisecond {
		t.Fatalf("default deadline: remaining %v", d)
	}
	if d := remaining(100 * time.Millisecond); d > 100*time.Millisecond {
		t.Fatalf("hint must shorten the deadline: remaining %v", d)
	}
	if d := remaining(time.Hour); d > 2*time.Second {
		t.Fatalf("hint must be clamped to MaxDeadline: remaining %v", d)
	}
}

// TestDeadlineOutcome checks an expired per-query deadline accounts as
// OutcomeDeadline.
func TestDeadlineOutcome(t *testing.T) {
	c := New(testConfig())
	defer c.Drain(time.Second)

	res := c.Do(context.Background(), 10*time.Millisecond, func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if res.Outcome != OutcomeDeadline || !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("want deadline outcome, got %+v", res)
	}
}

// TestQuotaOutcome checks that a query tripping its budget accounts as
// quota-killed, not errored, and that the budget actually reaches the query
// context.
func TestQuotaOutcome(t *testing.T) {
	cfg := testConfig()
	cfg.MaxTuples = 64
	c := New(cfg)
	defer c.Drain(time.Second)

	res := c.Do(context.Background(), 0, func(ctx context.Context) error {
		b := physical.BudgetFrom(ctx)
		if b == nil {
			return errors.New("no budget on query context")
		}
		return b.ChargeTuples(1000)
	})
	if res.Outcome != OutcomeQuotaKilled || !errors.Is(res.Err, physical.ErrQuotaExceeded) {
		t.Fatalf("want quota kill, got %+v", res)
	}
	if s := c.Stats(); s.QuotaKilled != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestFaultSites arms each admission fault site in turn and checks the
// failure is shaped into the right outcome.
func TestFaultSites(t *testing.T) {
	defer faultinject.Reset()

	c := New(testConfig())
	defer c.Drain(time.Second)
	ok := func(ctx context.Context) error { return nil }

	faultinject.Arm(SiteEnqueue, faultinject.Fault{})
	if res := c.Do(context.Background(), 0, ok); res.Outcome != OutcomeShedQueueFull || res.Ran {
		t.Fatalf("enqueue fault must shed: %+v", res)
	}
	faultinject.Disarm(SiteEnqueue)

	faultinject.Arm(SiteDispatch, faultinject.Fault{})
	if res := c.Do(context.Background(), 0, ok); res.Outcome != OutcomeErrored {
		t.Fatalf("dispatch fault must error: %+v", res)
	}
	faultinject.Disarm(SiteDispatch)

	// A dispatch-site panic models a worker bug: recovered, accounted, slot
	// kept.
	faultinject.Arm(SiteDispatch, faultinject.Fault{PanicWith: "dispatch bug"})
	if res := c.Do(context.Background(), 0, ok); res.Outcome != OutcomeErrored {
		t.Fatalf("dispatch panic must account as errored: %+v", res)
	}
	faultinject.Disarm(SiteDispatch)

	faultinject.Arm(SiteQuota, faultinject.Fault{})
	res := c.Do(context.Background(), 0, ok)
	if res.Outcome != OutcomeQuotaKilled || !errors.Is(res.Err, physical.ErrQuotaExceeded) {
		t.Fatalf("quota fault must quota-kill: %+v", res)
	}
	faultinject.Disarm(SiteQuota)

	if res := c.Do(context.Background(), 0, ok); res.Outcome != OutcomeServed {
		t.Fatalf("pool must still serve after faults: %+v", res)
	}
}

// TestDrainClean checks a drain with idle workers returns nil, subsequent
// submissions shed as draining, and in-flight work completes.
func TestDrainClean(t *testing.T) {
	c := New(testConfig())
	release := make(chan struct{})
	started := make(chan struct{})
	res := make(chan Result, 1)
	go func() {
		res <- c.Do(context.Background(), 0, func(ctx context.Context) error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started
	done := make(chan error, 1)
	go func() { done <- c.Drain(time.Second) }()
	// While draining, new submissions are shed.
	deadline := time.Now().Add(time.Second)
	for !c.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	if r := c.Do(context.Background(), 0, func(ctx context.Context) error { return nil }); r.Outcome != OutcomeShedDraining {
		t.Fatalf("during drain new work must shed: %+v", r)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("clean drain must return nil, got %v", err)
	}
	if r := <-res; r.Outcome != OutcomeServed {
		t.Fatalf("in-flight query must finish during drain: %+v", r)
	}
}

// TestDrainDeadlineForces checks that a drain whose deadline expires kills
// in-flight queries through their contexts and still accounts them.
func TestDrainDeadlineForces(t *testing.T) {
	c := New(testConfig())
	started := make(chan struct{})
	res := make(chan Result, 1)
	go func() {
		res <- c.Do(context.Background(), 0, func(ctx context.Context) error {
			close(started)
			<-ctx.Done() // a well-behaved query: blocks until killed
			return context.Cause(ctx)
		})
	}()
	<-started
	t0 := time.Now()
	err := c.Drain(50 * time.Millisecond)
	if !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("forced drain must report ErrDrainTimeout, got %v", err)
	}
	if el := time.Since(t0); el > 2*time.Second {
		t.Fatalf("drain must be bounded, took %v", el)
	}
	r := <-res
	if r.Outcome != OutcomeCancelled || !errors.Is(r.Err, ErrDrainTimeout) {
		t.Fatalf("killed query must account as cancelled with the drain cause: %+v", r)
	}
	s := c.Stats()
	if s.Submitted != s.Accounted() {
		t.Fatalf("unaccounted requests after forced drain: %+v", s)
	}
}

// TestAccountingReconciles hammers the controller with concurrent mixed
// work — fast, slow, panicking, cancelled — then drains and checks the
// invariant: every submitted request has exactly one outcome.
func TestAccountingReconciles(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 4
	cfg.QueueDepth = 8
	cfg.QueueTimeout = 30 * time.Millisecond
	c := New(cfg)

	const n = 400
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			var cancel context.CancelFunc
			if i%7 == 0 {
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%5)*time.Millisecond)
				defer cancel()
			}
			c.Do(ctx, 0, func(ctx context.Context) error {
				switch i % 5 {
				case 0:
					time.Sleep(time.Duration(i%4) * time.Millisecond)
					return nil
				case 1:
					return errors.New("synthetic failure")
				case 2:
					//xamlint:allow nopanic(deliberate panic: accounting must absorb worker bugs)
					panic("synthetic panic")
				default:
					return nil
				}
			})
		}(i)
	}
	wg.Wait()
	if err := c.Drain(time.Second); err != nil {
		t.Fatalf("drain after quiescence must be clean: %v", err)
	}
	s := c.Stats()
	if s.Submitted != n {
		t.Fatalf("submitted %d, want %d", s.Submitted, n)
	}
	if s.Accounted() != s.Submitted {
		t.Fatalf("unaccounted requests: submitted=%d accounted=%d (%+v)", s.Submitted, s.Accounted(), s)
	}
	if s.Queued != 0 || s.Inflight != 0 {
		t.Fatalf("residual work after drain: %+v", s)
	}
}

// TestSubmitDuringDrainNeverHangs races submissions against a drain and
// checks every Do returns and is accounted — the enqueue-vs-sweep mutex
// closes the window where a task could be queued and never completed.
func TestSubmitDuringDrainNeverHangs(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 2
	cfg.QueueDepth = 4
	c := New(cfg)

	const n = 200
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			c.Do(context.Background(), 0, func(ctx context.Context) error {
				time.Sleep(100 * time.Microsecond)
				return nil
			})
		}()
	}
	close(start)
	time.Sleep(time.Millisecond)
	_ = c.Drain(2 * time.Second)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("a Do call hung across drain")
	}
	s := c.Stats()
	if s.Submitted != n || s.Accounted() != n {
		t.Fatalf("reconciliation failed: %+v (accounted %d)", s, s.Accounted())
	}
}

// TestRetryAfter checks the backoff suggestion is ≥ 1s and grows while
// draining.
func TestRetryAfter(t *testing.T) {
	cfg := testConfig()
	cfg.QueueTimeout = 100 * time.Millisecond
	cfg.DrainTimeout = 3 * time.Second
	c := New(cfg)
	if got := c.RetryAfter(); got != 1 {
		t.Fatalf("sub-second queue timeout must round up to 1, got %d", got)
	}
	c.Drain(10 * time.Millisecond)
	if got := c.RetryAfter(); got != 3 {
		t.Fatalf("draining retry-after must reflect the drain timeout, got %d", got)
	}
}

// TestOutcomeStrings pins the wire names used by the query log and bench
// JSON.
func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		OutcomeServed:           "served",
		OutcomeErrored:          "error",
		OutcomeQuotaKilled:      "quota_killed",
		OutcomeDeadline:         "deadline",
		OutcomeCancelled:        "cancelled",
		OutcomeShedQueueFull:    "shed:queue_full",
		OutcomeShedQueueTimeout: "shed:queue_timeout",
		OutcomeShedDraining:     "shed:draining",
	}
	for o, s := range want {
		if o.String() != s {
			t.Fatalf("outcome %d: got %q want %q", int(o), o.String(), s)
		}
	}
	if !OutcomeShedQueueFull.Shed() || OutcomeServed.Shed() {
		t.Fatal("Shed classification wrong")
	}
}
