// Package admission is the production query path's front door: a bounded
// FIFO admission queue feeding a fixed worker pool, per-query deadlines
// (server default clamped against client hints), per-query resource quotas
// (rows out, decoded-extent bytes, tuple work — enforced through the
// physical.Budget / Checkpoint plumbing), and explicit overload shedding.
// Every submitted request ends in exactly one accounted outcome — served,
// errored, quota-killed, cancelled, or shed with a cause — never silently
// dropped; Stats reconciles exactly against a load generator's counts
// (xambench -exp admission holds that invariant at saturation).
//
// Graceful drain: Drain stops admission (new requests shed with
// OutcomeShedDraining), lets queued and in-flight queries finish within the
// drain deadline, then kills stragglers through their contexts and rejects
// whatever is still queued. serve.Server wires Drain into its shutdown
// path, so SIGTERM on uload -serve finishes in-flight queries, 503s new
// ones, and exits within the deadline.
package admission

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xamdb/internal/faultinject"
	"xamdb/internal/obs"
	"xamdb/internal/physical"
)

// Fault sites on the admission path (armed by resilience tests): a fault at
// SiteEnqueue sheds the request as queue-full backpressure, a fault at
// SiteDispatch surfaces as a worker-side error (panics included — a
// panicking worker completes its task as errored and keeps its pool slot),
// and a fault at SiteQuota kills the query as quota-exceeded.
const (
	SiteEnqueue  = "admission.enqueue"
	SiteDispatch = "admission.dispatch"
	SiteQuota    = "admission.quota"
)

// Metric names exported through the engine's registry (Prometheus-visible
// via /metrics once serve wires the controller to the engine's registry).
const (
	MetricQueueDepth       = "admission.queue_depth"
	MetricInflight         = "admission.inflight"
	MetricWaitNS           = "admission.wait_ns"
	MetricSubmitted        = "admission.submitted"
	MetricServed           = "admission.served"
	MetricErrored          = "admission.errored"
	MetricQuotaKilled      = "admission.quota_killed"
	MetricDeadline         = "admission.deadline"
	MetricCancelled        = "admission.cancelled"
	MetricShedQueueFull    = "admission.shed.queue_full"
	MetricShedQueueTimeout = "admission.shed.queue_timeout"
	MetricShedDraining     = "admission.shed.draining"
)

// ErrDrainTimeout is returned by Drain when the deadline expired before the
// queue and the in-flight set quiesced (stragglers were killed or rejected).
var ErrDrainTimeout = errors.New("admission: drain deadline exceeded")

// Outcome classifies how one submitted request ended. Every request gets
// exactly one.
type Outcome int

const (
	// OutcomeServed: the work ran and returned nil.
	OutcomeServed Outcome = iota
	// OutcomeErrored: the work ran and returned a non-quota error (or
	// panicked; the panic is recovered into the error).
	OutcomeErrored
	// OutcomeQuotaKilled: the work was killed by a resource quota (rows
	// out, extent bytes, tuple work).
	OutcomeQuotaKilled
	// OutcomeDeadline: the work was killed by its wall-clock deadline.
	OutcomeDeadline
	// OutcomeCancelled: the caller's context died (in queue or mid-run), or
	// a forced drain killed the query.
	OutcomeCancelled
	// OutcomeShedQueueFull: rejected at submission, admission queue full.
	OutcomeShedQueueFull
	// OutcomeShedQueueTimeout: dequeued after waiting longer than the queue
	// timeout; shed instead of run.
	OutcomeShedQueueTimeout
	// OutcomeShedDraining: rejected because the controller is draining.
	OutcomeShedDraining
)

// Shed reports whether the outcome is a load-shedding rejection (the work
// never ran).
func (o Outcome) Shed() bool {
	return o == OutcomeShedQueueFull || o == OutcomeShedQueueTimeout || o == OutcomeShedDraining
}

// String returns the outcome's stable wire name (query log, bench JSON).
func (o Outcome) String() string {
	switch o {
	case OutcomeServed:
		return "served"
	case OutcomeErrored:
		return "error"
	case OutcomeQuotaKilled:
		return "quota_killed"
	case OutcomeDeadline:
		return "deadline"
	case OutcomeCancelled:
		return "cancelled"
	case OutcomeShedQueueFull:
		return "shed:queue_full"
	case OutcomeShedQueueTimeout:
		return "shed:queue_timeout"
	case OutcomeShedDraining:
		return "shed:draining"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Config sizes the controller. The zero value gets sensible defaults from
// withDefaults (workers = GOMAXPROCS, queue = 4×workers, 1s queue timeout,
// 30s default deadline, 60s max, 10s drain).
type Config struct {
	// Workers is the number of concurrently executing queries.
	Workers int
	// QueueDepth bounds the FIFO admission queue; a submission finding the
	// queue full is shed immediately with OutcomeShedQueueFull.
	QueueDepth int
	// QueueTimeout sheds requests that waited in the queue longer than
	// this before a worker picked them up (0 disables).
	QueueTimeout time.Duration
	// DefaultDeadline is the per-query wall-clock bound applied when the
	// client sends no hint (0 = none).
	DefaultDeadline time.Duration
	// MaxDeadline clamps client deadline hints (and the default); 0 means
	// hints are clamped to DefaultDeadline if that is set, else unbounded.
	MaxDeadline time.Duration
	// MaxRowsOut / MaxExtentBytes / MaxTuples are the per-query resource
	// quotas handed to physical.NewBudget; 0 = unlimited.
	MaxRowsOut     int64
	MaxExtentBytes int64
	MaxTuples      int64
	// DrainTimeout bounds Drain (and serve's shutdown path).
	DrainTimeout time.Duration
	// Metrics receives the admission counters/gauges/histograms; nil falls
	// back to obs.Default().
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = time.Second
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 2 * c.DefaultDeadline
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	return c
}

// Result is the accounting record Do returns for one request.
type Result struct {
	// Outcome is the request's single accounted outcome.
	Outcome Outcome
	// Err carries the work's error (execution/quota/deadline) or the shed
	// reason; nil only for OutcomeServed.
	Err error
	// QueueWait is the time spent in the admission queue.
	QueueWait time.Duration
	// Ran reports whether the work function was invoked — false for sheds
	// and queue-side cancellations, whose callers must do their own logging
	// (the engine never saw the query).
	Ran bool
}

// Stats is a point-in-time accounting snapshot. When the controller is
// idle, Submitted equals the sum of the outcome counters: no request is
// ever unaccounted.
type Stats struct {
	Submitted        int64 `json:"submitted"`
	Served           int64 `json:"served"`
	Errored          int64 `json:"errored"`
	QuotaKilled      int64 `json:"quota_killed"`
	Deadline         int64 `json:"deadline"`
	Cancelled        int64 `json:"cancelled"`
	ShedQueueFull    int64 `json:"shed_queue_full"`
	ShedQueueTimeout int64 `json:"shed_queue_timeout"`
	ShedDraining     int64 `json:"shed_draining"`
	Queued           int64 `json:"queued"`
	Inflight         int64 `json:"inflight"`
	Draining         bool  `json:"draining"`
}

// Accounted sums the outcome counters — at quiescence it must equal
// Submitted.
func (s Stats) Accounted() int64 {
	return s.Served + s.Errored + s.QuotaKilled + s.Deadline + s.Cancelled +
		s.ShedQueueFull + s.ShedQueueTimeout + s.ShedDraining
}

// task is one queued request.
type task struct {
	ctx      context.Context
	hint     time.Duration
	fn       func(context.Context) error
	enqueued time.Time
	done     chan Result
}

// Controller is the admission controller. Create with New (which starts the
// workers), submit with Do, stop with Drain.
type Controller struct {
	cfg   Config
	queue chan *task
	quit  chan struct{}
	wg    sync.WaitGroup

	// mu guards closed: once set, nothing may enqueue, so the drain sweep
	// observes a complete queue.
	mu     sync.Mutex
	closed bool

	draining  atomic.Bool
	drainOnce sync.Once
	drainErr  error

	// killCtx is cancelled (with ErrDrainTimeout cause) when a drain
	// deadline forces in-flight queries to die at their next checkpoint.
	killCtx  context.Context
	killFunc context.CancelCauseFunc

	queued   atomic.Int64
	inflight atomic.Int64

	submitted        atomic.Int64
	served           atomic.Int64
	errored          atomic.Int64
	quotaKilled      atomic.Int64
	deadline         atomic.Int64
	cancelled        atomic.Int64
	shedQueueFull    atomic.Int64
	shedQueueTimeout atomic.Int64
	shedDraining     atomic.Int64

	mQueueDepth *obs.Gauge
	mInflight   *obs.Gauge
	mWaitNS     *obs.Histogram
	mOutcomes   map[Outcome]*obs.Counter
	mSubmitted  *obs.Counter
}

// New builds a controller and starts its worker pool.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:   cfg,
		queue: make(chan *task, cfg.QueueDepth),
		quit:  make(chan struct{}),
	}
	c.killCtx, c.killFunc = context.WithCancelCause(context.Background())
	reg := cfg.Metrics
	c.mQueueDepth = reg.Gauge(MetricQueueDepth)
	c.mInflight = reg.Gauge(MetricInflight)
	c.mWaitNS = reg.Histogram(MetricWaitNS)
	c.mSubmitted = reg.Counter(MetricSubmitted)
	c.mOutcomes = map[Outcome]*obs.Counter{
		OutcomeServed:           reg.Counter(MetricServed),
		OutcomeErrored:          reg.Counter(MetricErrored),
		OutcomeQuotaKilled:      reg.Counter(MetricQuotaKilled),
		OutcomeDeadline:         reg.Counter(MetricDeadline),
		OutcomeCancelled:        reg.Counter(MetricCancelled),
		OutcomeShedQueueFull:    reg.Counter(MetricShedQueueFull),
		OutcomeShedQueueTimeout: reg.Counter(MetricShedQueueTimeout),
		OutcomeShedDraining:     reg.Counter(MetricShedDraining),
	}
	for i := 0; i < cfg.Workers; i++ {
		c.wg.Add(1)
		go c.worker()
	}
	return c
}

// Config returns the controller's effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Draining reports whether drain has started.
func (c *Controller) Draining() bool { return c.draining.Load() }

// RetryAfter suggests a client backoff: the queue timeout for transient
// sheds, the drain timeout while draining — always at least one second, in
// whole seconds (the Retry-After header grammar).
func (c *Controller) RetryAfter() int {
	d := c.cfg.QueueTimeout
	if c.draining.Load() {
		d = c.cfg.DrainTimeout
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Stats snapshots the accounting counters.
func (c *Controller) Stats() Stats {
	return Stats{
		Submitted:        c.submitted.Load(),
		Served:           c.served.Load(),
		Errored:          c.errored.Load(),
		QuotaKilled:      c.quotaKilled.Load(),
		Deadline:         c.deadline.Load(),
		Cancelled:        c.cancelled.Load(),
		ShedQueueFull:    c.shedQueueFull.Load(),
		ShedQueueTimeout: c.shedQueueTimeout.Load(),
		ShedDraining:     c.shedDraining.Load(),
		Queued:           c.queued.Load(),
		Inflight:         c.inflight.Load(),
		Draining:         c.draining.Load(),
	}
}

// account tallies one outcome in the atomics and the metrics registry.
func (c *Controller) account(o Outcome) {
	switch o {
	case OutcomeServed:
		c.served.Add(1)
	case OutcomeErrored:
		c.errored.Add(1)
	case OutcomeQuotaKilled:
		c.quotaKilled.Add(1)
	case OutcomeDeadline:
		c.deadline.Add(1)
	case OutcomeCancelled:
		c.cancelled.Add(1)
	case OutcomeShedQueueFull:
		c.shedQueueFull.Add(1)
	case OutcomeShedQueueTimeout:
		c.shedQueueTimeout.Add(1)
	case OutcomeShedDraining:
		c.shedDraining.Add(1)
	}
	if m := c.mOutcomes[o]; m != nil {
		m.Inc()
	}
}

// Do submits one request: fn runs on a pool worker under a context carrying
// the per-query deadline (DefaultDeadline, overridden by a positive client
// hint, both clamped to MaxDeadline) and the resource-quota budget. Do
// blocks until the request reaches its single outcome — served, errored,
// killed, cancelled or shed — and returns the accounting Result. hint ≤ 0
// means no client hint.
func (c *Controller) Do(ctx context.Context, hint time.Duration, fn func(context.Context) error) Result {
	c.submitted.Add(1)
	c.mSubmitted.Inc()
	shed := func(o Outcome, err error) Result {
		c.account(o)
		return Result{Outcome: o, Err: err}
	}
	if c.draining.Load() {
		return shed(OutcomeShedDraining, errors.New("admission: draining"))
	}
	// An injected enqueue fault models backpressure from a failing queue:
	// the request is shed as queue-full, never half-admitted.
	if err := faultinject.Check(SiteEnqueue); err != nil {
		return shed(OutcomeShedQueueFull, fmt.Errorf("admission: enqueue: %w", err))
	}
	t := &task{ctx: ctx, hint: hint, fn: fn, enqueued: time.Now(), done: make(chan Result, 1)}
	c.mu.Lock()
	if c.closed || c.draining.Load() {
		c.mu.Unlock()
		return shed(OutcomeShedDraining, errors.New("admission: draining"))
	}
	select {
	case c.queue <- t:
		c.queued.Add(1)
		c.mQueueDepth.Add(1)
		c.mu.Unlock()
	default:
		c.mu.Unlock()
		return shed(OutcomeShedQueueFull, errors.New("admission: queue full"))
	}
	// Every enqueued task is completed exactly once — by a worker or by the
	// drain sweep — so this receive always returns.
	return <-t.done
}

// worker pulls tasks until the controller quits.
func (c *Controller) worker() {
	defer c.wg.Done()
	for {
		select {
		case t := <-c.queue:
			c.dispatch(t)
		case <-c.quit:
			return
		}
	}
}

// dispatch runs one dequeued task to its single outcome.
func (c *Controller) dispatch(t *task) {
	wait := time.Since(t.enqueued)
	c.queued.Add(-1)
	c.mQueueDepth.Add(-1)
	c.mWaitNS.ObserveDuration(wait)
	finish := func(o Outcome, err error, ran bool) {
		c.account(o)
		t.done <- Result{Outcome: o, Err: err, QueueWait: wait, Ran: ran}
	}
	if err := t.ctx.Err(); err != nil {
		finish(OutcomeCancelled, err, false)
		return
	}
	if c.cfg.QueueTimeout > 0 && wait > c.cfg.QueueTimeout {
		finish(OutcomeShedQueueTimeout, fmt.Errorf("admission: queued %v, limit %v", wait, c.cfg.QueueTimeout), false)
		return
	}
	c.inflight.Add(1)
	c.mInflight.Add(1)
	outcome, err := c.run(t)
	c.inflight.Add(-1)
	c.mInflight.Add(-1)
	finish(outcome, err, true)
}

// deadlineFor resolves the effective per-query deadline from the server
// default and the client hint.
func (c *Controller) deadlineFor(hint time.Duration) time.Duration {
	d := c.cfg.DefaultDeadline
	if hint > 0 {
		d = hint
	}
	if c.cfg.MaxDeadline > 0 && d > c.cfg.MaxDeadline {
		d = c.cfg.MaxDeadline
	}
	return d
}

// run executes one admitted query under its deadline and budget, with
// panics recovered so a worker bug costs one request, not a pool slot (or
// the process). The returned outcome classifies the error.
func (c *Controller) run(t *task) (outcome Outcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			outcome = OutcomeErrored
			if perr, ok := p.(error); ok {
				err = fmt.Errorf("admission: query panic: %w", perr)
			} else {
				err = fmt.Errorf("admission: query panic: %v", p)
			}
		}
	}()
	if err := faultinject.Check(SiteDispatch); err != nil {
		return OutcomeErrored, fmt.Errorf("admission: dispatch: %w", err)
	}

	qctx, cancel := context.WithCancelCause(t.ctx)
	defer cancel(nil)
	// A forced drain kills in-flight queries through the shared kill
	// context; the per-query cancel propagates it to the checkpoints.
	stop := context.AfterFunc(c.killCtx, func() { cancel(context.Cause(c.killCtx)) })
	defer stop()

	if d := c.deadlineFor(t.hint); d > 0 {
		var cancelD context.CancelFunc
		qctx, cancelD = context.WithTimeout(qctx, d)
		defer cancelD()
	}

	if err := faultinject.Check(SiteQuota); err != nil {
		return OutcomeQuotaKilled, fmt.Errorf("%w: %w", physical.ErrQuotaExceeded, err)
	}
	if c.cfg.MaxRowsOut > 0 || c.cfg.MaxExtentBytes > 0 || c.cfg.MaxTuples > 0 {
		b := physical.NewBudget(physical.BudgetLimits{
			MaxRowsOut:     c.cfg.MaxRowsOut,
			MaxExtentBytes: c.cfg.MaxExtentBytes,
			MaxTuples:      c.cfg.MaxTuples,
		}, cancel)
		qctx = physical.WithBudget(qctx, b)
	}

	err = t.fn(qctx)
	switch {
	case err == nil:
		return OutcomeServed, nil
	case errors.Is(err, physical.ErrQuotaExceeded) || errors.Is(context.Cause(qctx), physical.ErrQuotaExceeded):
		return OutcomeQuotaKilled, err
	case t.ctx.Err() != nil || errors.Is(context.Cause(qctx), ErrDrainTimeout):
		// The caller went away, or a forced drain killed us.
		return OutcomeCancelled, err
	case errors.Is(err, context.DeadlineExceeded):
		return OutcomeDeadline, err
	default:
		return OutcomeErrored, err
	}
}

// Drain shuts the controller down gracefully: it stops admitting (new
// submissions shed with OutcomeShedDraining), waits for the queue and the
// in-flight set to empty, and — if the deadline expires first — kills
// in-flight queries through their contexts and rejects whatever is still
// queued, so every admitted request still reaches an outcome. Idempotent;
// returns ErrDrainTimeout when the deadline forced the drain.
func (c *Controller) Drain(timeout time.Duration) error {
	c.drainOnce.Do(func() { c.drainErr = c.drain(timeout) })
	return c.drainErr
}

func (c *Controller) drain(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = c.cfg.DrainTimeout
	}
	c.draining.Store(true)
	deadline := time.Now().Add(timeout)
	forced := false
	for c.queued.Load() > 0 || c.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			forced = true
			c.killFunc(ErrDrainTimeout)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Final phase: no new enqueues can land once closed is set (Do checks
	// it under the same mutex), so sweeping the queue sees every remaining
	// task. Workers still racing the sweep are fine — each task completes
	// exactly once, via a worker (killed context → fast cancel) or here.
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	close(c.quit)
	for {
		select {
		case t := <-c.queue:
			c.queued.Add(-1)
			c.mQueueDepth.Add(-1)
			c.account(OutcomeShedDraining)
			t.done <- Result{Outcome: OutcomeShedDraining, Err: errors.New("admission: draining"), QueueWait: time.Since(t.enqueued)}
		default:
			goto swept
		}
	}
swept:
	// Wait for the workers; on a clean drain they are already idle. After a
	// forced drain they finish their current (context-killed) query first.
	workersDone := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
	case <-time.After(timeout):
		forced = true
	}
	if forced {
		return ErrDrainTimeout
	}
	return nil
}
