package xmltree

import (
	"math/rand"
	"testing"
)

func randomDoc(seed int64, n int) *Document {
	rng := rand.New(rand.NewSource(seed))
	root := NewElement("n0")
	nodes := []*Node{root}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		c := NewElement("n")
		parent.Children = append(parent.Children, c)
		nodes = append(nodes, c)
	}
	return NewDocument("rand.xml", root)
}

// Every plane axis must agree with the tree-walking oracle.
func TestPlaneAxesMatchTree(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		doc := randomDoc(seed, 80)
		plane := NewPlane(doc)
		if plane.Size() != doc.Size() {
			t.Fatalf("plane size %d != %d", plane.Size(), doc.Size())
		}
		var all []*Node
		doc.Walk(func(n *Node) bool { all = append(all, n); return true })
		for _, n := range all {
			wantDesc := n.Descendants()
			gotDesc := plane.Descendants(n.ID)
			if len(wantDesc) != len(gotDesc) {
				t.Fatalf("seed %d: descendants of %s: %d vs %d", seed, n.ID, len(gotDesc), len(wantDesc))
			}
			for i := range gotDesc {
				if gotDesc[i] != wantDesc[i] {
					t.Fatalf("seed %d: descendant order differs at %d", seed, i)
				}
			}
			gotKids := plane.Children(n.ID)
			var wantKids int
			for _, c := range n.Children {
				_ = c
				wantKids++
			}
			if len(gotKids) != wantKids {
				t.Fatalf("seed %d: children of %s: %d vs %d", seed, n.ID, len(gotKids), wantKids)
			}
			if par := plane.Parent(n.ID); par != n.Parent {
				t.Fatalf("seed %d: parent mismatch for %s", seed, n.ID)
			}
			// Quadrant partition: every other node falls in exactly one of
			// the four quadrants (Figure 1.3).
			anc := plane.Ancestors(n.ID)
			fol := plane.Following(n.ID)
			pre := plane.Preceding(n.ID)
			if len(anc)+len(fol)+len(pre)+len(gotDesc)+1 != doc.Size() {
				t.Fatalf("seed %d: quadrants do not partition: %d+%d+%d+%d+1 != %d",
					seed, len(anc), len(fol), len(pre), len(gotDesc), doc.Size())
			}
		}
	}
}

func TestPlaneWindow(t *testing.T) {
	doc := randomDoc(9, 40)
	plane := NewPlane(doc)
	w := plane.Window(5, 10)
	if len(w) != 6 {
		t.Fatalf("window: %d", len(w))
	}
	for _, n := range w {
		if n.ID.Pre < 5 || n.ID.Pre > 10 {
			t.Fatalf("window out of range: %s", n.ID)
		}
	}
	if len(plane.Window(1000, 2000)) != 0 {
		t.Fatal("empty window expected")
	}
}
