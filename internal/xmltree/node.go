// Package xmltree implements the XML data model of the paper (§1.1): ordered
// trees of element, attribute and text nodes, endowed with structural
// identifiers. It provides a parser for a practical XML subset, a serializer,
// and the (pre, post, depth) and Dewey labeling schemes of §1.2.1.
package xmltree

import (
	"fmt"
	"strings"
)

// Kind distinguishes the node populations Φ_e, Φ_a and text nodes.
type Kind uint8

const (
	// Element is an XML element node (member of Φ_e).
	Element Kind = iota
	// Attribute is an XML attribute node (member of Φ_a). By the paper's
	// convention attribute labels are written with a leading '@'.
	Attribute
	// Text is a text node. The paper folds text into element values; we keep
	// text nodes first-class (the "simple extension" of §1.1) so content
	// serialization and full-text indexing stay faithful.
	Text
)

func (k Kind) String() string {
	switch k {
	case Element:
		return "element"
	case Attribute:
		return "attribute"
	case Text:
		return "text"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// NodeID is a (pre, post, depth) structural identifier (§1.2.1). Comparing two
// NodeIDs decides every structural axis without touching the tree.
type NodeID struct {
	Pre   int32
	Post  int32
	Depth int32
}

// IsZero reports whether the identifier is unassigned.
func (id NodeID) IsZero() bool { return id == NodeID{} }

// AncestorOf reports whether id identifies a strict ancestor of other.
func (id NodeID) AncestorOf(other NodeID) bool {
	return id.Pre < other.Pre && other.Post < id.Post
}

// ParentOf reports whether id identifies the parent of other.
func (id NodeID) ParentOf(other NodeID) bool {
	return id.AncestorOf(other) && id.Depth+1 == other.Depth
}

// Precedes reports whether id's node precedes other in document order and is
// not one of its ancestors.
func (id NodeID) Precedes(other NodeID) bool { return id.Post < other.Pre }

// Follows reports whether id's node follows other in document order and is
// not one of its descendants.
func (id NodeID) Follows(other NodeID) bool { return other.Post < id.Pre }

// Before reports document order: id's node starts before other's.
func (id NodeID) Before(other NodeID) bool { return id.Pre < other.Pre }

func (id NodeID) String() string {
	return fmt.Sprintf("(%d,%d,%d)", id.Pre, id.Post, id.Depth)
}

// Node is one node of an XML document tree.
type Node struct {
	Kind     Kind
	Label    string // element tag, attribute name (with '@'), or "#text"
	Text     string // text content for Text nodes, attribute value for Attribute nodes
	ID       NodeID
	Dewey    Dewey
	Parent   *Node
	Children []*Node // attributes first, then element/text children in document order

	doc *Document
}

// Document is a parsed XML document: a virtual document node above a single
// element root, as in §1.1.
type Document struct {
	Root *Node  // the unique Φ_e child of the document node
	Name string // document name, e.g. "bib.xml"

	byPre []*Node // nodes indexed by ID.Pre-1, filled by Relabel
}

// Doc returns the document the node belongs to.
func (n *Node) Doc() *Document { return n.doc }

// IsElem reports whether n is an element.
func (n *Node) IsElem() bool { return n.Kind == Element }

// Value implements the paper's value function: for an element it is the
// concatenation of all descendant text, for attributes and text nodes the
// literal text.
func (n *Node) Value() string {
	switch n.Kind {
	case Attribute, Text:
		return n.Text
	}
	var sb strings.Builder
	n.appendText(&sb)
	return sb.String()
}

func (n *Node) appendText(sb *strings.Builder) {
	if n.Kind == Text {
		sb.WriteString(n.Text)
		return
	}
	for _, c := range n.Children {
		if c.Kind != Attribute {
			c.appendText(sb)
		}
	}
}

// Content returns the node's serialized subtree (the paper's Cont attribute).
func (n *Node) Content() string {
	var sb strings.Builder
	serializeNode(&sb, n)
	return sb.String()
}

// Elements returns the element children of n in document order.
func (n *Node) Elements() []*Node {
	out := make([]*Node, 0, len(n.Children))
	for _, c := range n.Children {
		if c.Kind == Element {
			out = append(out, c)
		}
	}
	return out
}

// Attr returns the attribute child named name (with or without leading '@'),
// or nil.
func (n *Node) Attr(name string) *Node {
	if !strings.HasPrefix(name, "@") {
		name = "@" + name
	}
	for _, c := range n.Children {
		if c.Kind == Attribute && c.Label == name {
			return c
		}
	}
	return nil
}

// Path returns the node's rooted label path, e.g. "/bib/book/title".
func (n *Node) Path() string {
	if n.Parent == nil {
		return "/" + n.Label
	}
	return n.Parent.Path() + "/" + n.pathStep()
}

func (n *Node) pathStep() string {
	if n.Kind == Text {
		return "#text"
	}
	return n.Label
}

// Walk calls fn for every node of the subtree rooted at n (pre-order,
// attributes before element/text children). Walking stops early if fn
// returns false.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, c := range n.Children {
		if !c.Walk(fn) {
			return false
		}
	}
	return true
}

// Descendants returns every strict descendant of n in document order.
func (n *Node) Descendants() []*Node {
	var out []*Node
	for _, c := range n.Children {
		c.Walk(func(d *Node) bool {
			out = append(out, d)
			return true
		})
	}
	return out
}

// NodeByPre returns the node whose pre label is pre, or nil.
func (d *Document) NodeByPre(pre int32) *Node {
	if pre < 1 || int(pre) > len(d.byPre) {
		return nil
	}
	return d.byPre[pre-1]
}

// Size returns the number of nodes in the document (elements, attributes and
// text nodes), excluding the virtual document node.
func (d *Document) Size() int { return len(d.byPre) }

// Relabel (re)assigns (pre, post, depth) identifiers and Dewey labels over
// the whole document and rebuilds the pre-order index. It must be called
// after structural edits; Parse calls it automatically.
func (d *Document) Relabel() {
	d.byPre = d.byPre[:0]
	var pre, post int32
	var visit func(n *Node, depth int32, dewey Dewey)
	visit = func(n *Node, depth int32, dewey Dewey) {
		pre++
		n.ID.Pre = pre
		n.ID.Depth = depth
		n.Dewey = dewey
		n.doc = d
		d.byPre = append(d.byPre, n)
		for i, c := range n.Children {
			c.Parent = n
			visit(c, depth+1, dewey.Child(i+1))
		}
		post++
		n.ID.Post = post
	}
	if d.Root != nil {
		d.Root.Parent = nil
		visit(d.Root, 1, Dewey{1})
	}
}

// Walk visits every node of the document in document order.
func (d *Document) Walk(fn func(*Node) bool) {
	if d.Root != nil {
		d.Root.Walk(fn)
	}
}
