package xmltree

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses an XML document from its textual form. The supported subset
// covers the needs of the paper's data sets: elements, attributes, character
// data, entity references, comments, processing instructions and a DOCTYPE
// prolog (the latter three are skipped). Whitespace-only text between
// elements is dropped; mixed content keeps its text nodes.
func Parse(name, input string) (*Document, error) {
	p := &parser{src: input}
	root, err := p.parseDocument()
	if err != nil {
		return nil, fmt.Errorf("xmltree: parse %s: %w", name, err)
	}
	doc := &Document{Root: root, Name: name}
	doc.Relabel()
	return doc, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(name, input string) *Document {
	doc, err := Parse(name, input)
	if err != nil {
		panic(err)
	}
	return doc
}

type parser struct {
	src  string
	pos  int
	line int
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) skipSpace() {
	for !p.eof() {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) skipMisc() error {
	for {
		p.skipSpace()
		switch {
		case strings.HasPrefix(p.src[p.pos:], "<?"):
			end := strings.Index(p.src[p.pos:], "?>")
			if end < 0 {
				return p.errorf("unterminated processing instruction")
			}
			p.pos += end + 2
		case strings.HasPrefix(p.src[p.pos:], "<!--"):
			end := strings.Index(p.src[p.pos:], "-->")
			if end < 0 {
				return p.errorf("unterminated comment")
			}
			p.pos += end + 3
		case strings.HasPrefix(p.src[p.pos:], "<!DOCTYPE"):
			// Skip to the matching '>' (internal subsets with brackets
			// supported shallowly).
			depth := 0
			for ; p.pos < len(p.src); p.pos++ {
				switch p.src[p.pos] {
				case '[':
					depth++
				case ']':
					depth--
				case '>':
					if depth <= 0 {
						p.pos++
						goto next
					}
				}
			}
			return p.errorf("unterminated DOCTYPE")
		default:
			return nil
		}
	next:
	}
}

func (p *parser) parseDocument() (*Node, error) {
	if err := p.skipMisc(); err != nil {
		return nil, err
	}
	if p.eof() || p.peek() != '<' {
		return nil, p.errorf("expected root element")
	}
	root, err := p.parseElement()
	if err != nil {
		return nil, err
	}
	if err := p.skipMisc(); err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, p.errorf("trailing content after root element")
	}
	return root, nil
}

func isNameByte(b byte, first bool) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_', b == ':':
		return true
	case !first && (b >= '0' && b <= '9' || b == '-' || b == '.'):
		return true
	case b >= 0x80: // permit UTF-8 names bytewise
		return true
	}
	return false
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	if p.eof() || !isNameByte(p.src[p.pos], true) {
		return "", p.errorf("expected name")
	}
	p.pos++
	for !p.eof() && isNameByte(p.src[p.pos], false) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseElement() (*Node, error) {
	if p.peek() != '<' {
		return nil, p.errorf("expected '<'")
	}
	p.pos++
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	elem := &Node{Kind: Element, Label: name}
	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errorf("unterminated start tag <%s", name)
		}
		switch p.peek() {
		case '/':
			if !strings.HasPrefix(p.src[p.pos:], "/>") {
				return nil, p.errorf("bad empty-element tag")
			}
			p.pos += 2
			return elem, nil
		case '>':
			p.pos++
			if err := p.parseContent(elem); err != nil {
				return nil, err
			}
			return elem, nil
		default:
			attr, err := p.parseAttr()
			if err != nil {
				return nil, err
			}
			elem.Children = append(elem.Children, attr)
		}
	}
}

func (p *parser) parseAttr() (*Node, error) {
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.peek() != '=' {
		return nil, p.errorf("expected '=' after attribute %s", name)
	}
	p.pos++
	p.skipSpace()
	quote := p.peek()
	if quote != '"' && quote != '\'' {
		return nil, p.errorf("expected quoted attribute value")
	}
	p.pos++
	start := p.pos
	for !p.eof() && p.src[p.pos] != quote {
		p.pos++
	}
	if p.eof() {
		return nil, p.errorf("unterminated attribute value")
	}
	val, err := unescape(p.src[start:p.pos])
	if err != nil {
		return nil, err
	}
	p.pos++
	return &Node{Kind: Attribute, Label: "@" + name, Text: val}, nil
}

func (p *parser) parseContent(parent *Node) error {
	var textStart = p.pos
	flush := func(end int) error {
		raw := p.src[textStart:end]
		if strings.TrimSpace(raw) == "" {
			return nil
		}
		text, err := unescape(raw)
		if err != nil {
			return err
		}
		parent.Children = append(parent.Children, &Node{Kind: Text, Label: "#text", Text: text})
		return nil
	}
	for {
		if p.eof() {
			return p.errorf("unterminated element <%s>", parent.Label)
		}
		if p.peek() != '<' {
			p.pos++
			continue
		}
		if err := flush(p.pos); err != nil {
			return err
		}
		switch {
		case strings.HasPrefix(p.src[p.pos:], "</"):
			p.pos += 2
			name, err := p.parseName()
			if err != nil {
				return err
			}
			if name != parent.Label {
				return p.errorf("mismatched end tag </%s> for <%s>", name, parent.Label)
			}
			p.skipSpace()
			if p.peek() != '>' {
				return p.errorf("malformed end tag </%s", name)
			}
			p.pos++
			return nil
		case strings.HasPrefix(p.src[p.pos:], "<!--"):
			end := strings.Index(p.src[p.pos:], "-->")
			if end < 0 {
				return p.errorf("unterminated comment")
			}
			p.pos += end + 3
		case strings.HasPrefix(p.src[p.pos:], "<![CDATA["):
			body := p.src[p.pos+9:]
			end := strings.Index(body, "]]>")
			if end < 0 {
				return p.errorf("unterminated CDATA section")
			}
			parent.Children = append(parent.Children, &Node{Kind: Text, Label: "#text", Text: body[:end]})
			p.pos += 9 + end + 3
		case strings.HasPrefix(p.src[p.pos:], "<?"):
			end := strings.Index(p.src[p.pos:], "?>")
			if end < 0 {
				return p.errorf("unterminated processing instruction")
			}
			p.pos += end + 2
		default:
			child, err := p.parseElement()
			if err != nil {
				return err
			}
			parent.Children = append(parent.Children, child)
		}
		textStart = p.pos
	}
}

func unescape(s string) (string, error) {
	if !strings.ContainsRune(s, '&') {
		return s, nil
	}
	var sb strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '&' {
			sb.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 {
			return "", fmt.Errorf("xmltree: unterminated entity in %q", s)
		}
		ent := s[i+1 : i+semi]
		switch {
		case ent == "lt":
			sb.WriteByte('<')
		case ent == "gt":
			sb.WriteByte('>')
		case ent == "amp":
			sb.WriteByte('&')
		case ent == "quot":
			sb.WriteByte('"')
		case ent == "apos":
			sb.WriteByte('\'')
		case strings.HasPrefix(ent, "#x"), strings.HasPrefix(ent, "#X"):
			v, err := strconv.ParseInt(ent[2:], 16, 32)
			if err != nil {
				return "", fmt.Errorf("xmltree: bad character reference &%s;", ent)
			}
			sb.WriteRune(rune(v))
		case strings.HasPrefix(ent, "#"):
			v, err := strconv.ParseInt(ent[1:], 10, 32)
			if err != nil {
				return "", fmt.Errorf("xmltree: bad character reference &%s;", ent)
			}
			sb.WriteRune(rune(v))
		default:
			return "", fmt.Errorf("xmltree: unknown entity &%s;", ent)
		}
		i += semi + 1
	}
	return sb.String(), nil
}
