package xmltree

import (
	"strings"
	"testing"
	"testing/quick"
)

const bibXML = `<library>
  <book year="1999">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Suciu</author>
  </book>
  <book>
    <title>The Syntactic Web</title>
    <author>Tom Lerners-Bee</author>
  </book>
  <phdthesis year="2004">
    <title>The Web: next generation</title>
    <author>Jim Smith</author>
  </phdthesis>
</library>`

func TestParseBasicStructure(t *testing.T) {
	doc, err := Parse("bib.xml", bibXML)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Label != "library" {
		t.Fatalf("root = %q, want library", doc.Root.Label)
	}
	elems := doc.Root.Elements()
	if len(elems) != 3 {
		t.Fatalf("got %d children, want 3", len(elems))
	}
	if elems[0].Label != "book" || elems[2].Label != "phdthesis" {
		t.Fatalf("child labels wrong: %v %v", elems[0].Label, elems[2].Label)
	}
	year := elems[0].Attr("year")
	if year == nil || year.Text != "1999" {
		t.Fatalf("year attr = %v", year)
	}
	if got := elems[0].Elements()[0].Value(); got != "Data on the Web" {
		t.Fatalf("title value = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"<a>",
		"<a></b>",
		"<a attr=unquoted></a>",
		"<a><b></a></b>",
		"<a>&unknown;</a>",
		"<a/><b/>",
		"text only",
		"<a ><b/><",
	}
	for _, src := range cases {
		if _, err := Parse("bad.xml", src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseEntitiesAndCDATA(t *testing.T) {
	doc := MustParse("e.xml", `<a x="&lt;&amp;&quot;">A &amp; B &#65;&#x42;<![CDATA[<raw>]]></a>`)
	if got := doc.Root.Attr("x").Text; got != `<&"` {
		t.Fatalf("attr = %q", got)
	}
	if got := doc.Root.Value(); got != "A & B AB<raw>" {
		t.Fatalf("value = %q", got)
	}
}

func TestParseSkipsPrologCommentsPI(t *testing.T) {
	src := `<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a ANY>]><!-- c --><a><!-- inner --><?pi data?><b/></a>`
	doc := MustParse("p.xml", src)
	if doc.Root.Label != "a" || len(doc.Root.Elements()) != 1 {
		t.Fatalf("unexpected structure: %s", doc.Serialize())
	}
}

func TestPrePostDepthInvariants(t *testing.T) {
	doc := MustParse("bib.xml", bibXML)
	seenPre := map[int32]bool{}
	doc.Walk(func(n *Node) bool {
		if seenPre[n.ID.Pre] {
			t.Errorf("duplicate pre label %d", n.ID.Pre)
		}
		seenPre[n.ID.Pre] = true
		for _, c := range n.Children {
			if !n.ID.ParentOf(c.ID) {
				t.Errorf("%s not ParentOf %s", n.ID, c.ID)
			}
			if !n.ID.AncestorOf(c.ID) {
				t.Errorf("%s not AncestorOf %s", n.ID, c.ID)
			}
			if !n.Dewey.ParentOf(c.Dewey) {
				t.Errorf("dewey %s not parent of %s", n.Dewey, c.Dewey)
			}
		}
		return true
	})
	if len(seenPre) != doc.Size() {
		t.Fatalf("pre labels %d != size %d", len(seenPre), doc.Size())
	}
}

func TestNodeIDAxes(t *testing.T) {
	doc := MustParse("bib.xml", bibXML)
	books := doc.Root.Elements()
	b1, b2 := books[0], books[1]
	if !b1.ID.Precedes(b2.ID) {
		t.Error("book1 should precede book2")
	}
	if !b2.ID.Follows(b1.ID) {
		t.Error("book2 should follow book1")
	}
	title1 := b1.Elements()[0]
	if b1.ID.Precedes(title1.ID) {
		t.Error("ancestor must not 'precede' its descendant")
	}
	if !doc.Root.ID.AncestorOf(title1.ID) {
		t.Error("root must be ancestor of title")
	}
	if doc.Root.ID.ParentOf(title1.ID) {
		t.Error("root must not be parent of title")
	}
}

func TestNodeByPre(t *testing.T) {
	doc := MustParse("bib.xml", bibXML)
	doc.Walk(func(n *Node) bool {
		if doc.NodeByPre(n.ID.Pre) != n {
			t.Errorf("NodeByPre(%d) mismatch", n.ID.Pre)
		}
		return true
	})
	if doc.NodeByPre(0) != nil || doc.NodeByPre(int32(doc.Size()+1)) != nil {
		t.Error("out-of-range NodeByPre should be nil")
	}
}

func TestValueConcatenatesDescendantText(t *testing.T) {
	doc := MustParse("v.xml", `<a>x<b>y<c>z</c></b>w</a>`)
	if got := doc.Root.Value(); got != "xyzw" {
		t.Fatalf("value = %q, want xyzw", got)
	}
}

func TestContentRoundTrip(t *testing.T) {
	doc := MustParse("bib.xml", bibXML)
	again := MustParse("bib2.xml", doc.Serialize())
	if doc.Size() != again.Size() {
		t.Fatalf("round trip size %d != %d", doc.Size(), again.Size())
	}
	if doc.Serialize() != again.Serialize() {
		t.Fatal("serialize not stable")
	}
}

func TestContentOfLeaf(t *testing.T) {
	doc := MustParse("c.xml", `<a><t>Data &amp; Co</t></a>`)
	want := `<t>Data &amp; Co</t>`
	if got := doc.Root.Elements()[0].Content(); got != want {
		t.Fatalf("content = %q, want %q", got, want)
	}
}

func TestPath(t *testing.T) {
	doc := MustParse("bib.xml", bibXML)
	title := doc.Root.Elements()[0].Elements()[0]
	if got := title.Path(); got != "/library/book/title" {
		t.Fatalf("path = %q", got)
	}
	year := doc.Root.Elements()[0].Attr("year")
	if got := year.Path(); got != "/library/book/@year" {
		t.Fatalf("attr path = %q", got)
	}
}

func TestDeweyNavigation(t *testing.T) {
	d := Dewey{1, 3, 2}
	if got := d.ParentID(); got.String() != "1.3" {
		t.Fatalf("parent = %s", got)
	}
	if got := d.AncestorID(1); got.String() != "1" {
		t.Fatalf("ancestor(1) = %s", got)
	}
	if d.AncestorID(3) != nil || d.AncestorID(0) != nil {
		t.Fatal("out-of-range ancestor must be nil")
	}
	if (Dewey{1}).ParentID() != nil {
		t.Fatal("root parent must be nil")
	}
	if !(Dewey{1, 3}).AncestorOf(d) || (Dewey{1, 2}).AncestorOf(d) {
		t.Fatal("AncestorOf wrong")
	}
	if d.Compare(Dewey{1, 3}) != 1 || (Dewey{1, 3}).Compare(d) != -1 || d.Compare(d.Clone()) != 0 {
		t.Fatal("Compare wrong")
	}
}

func TestParseDewey(t *testing.T) {
	d, err := ParseDewey("1.4.2")
	if err != nil || d.String() != "1.4.2" {
		t.Fatalf("round trip failed: %v %v", d, err)
	}
	for _, bad := range []string{"", "1..2", "0", "1.x", "-1"} {
		if _, err := ParseDewey(bad); err == nil {
			t.Errorf("ParseDewey(%q) should fail", bad)
		}
	}
}

// Property: Dewey document order agrees with pre order for every node pair.
func TestDeweyOrderMatchesPreOrder(t *testing.T) {
	doc := MustParse("bib.xml", bibXML)
	var nodes []*Node
	doc.Walk(func(n *Node) bool { nodes = append(nodes, n); return true })
	for _, a := range nodes {
		for _, b := range nodes {
			cmp := a.Dewey.Compare(b.Dewey)
			switch {
			case a.ID.Pre < b.ID.Pre && cmp != -1:
				t.Fatalf("order mismatch %s vs %s", a.Dewey, b.Dewey)
			case a.ID.Pre > b.ID.Pre && cmp != 1:
				t.Fatalf("order mismatch %s vs %s", a.Dewey, b.Dewey)
			case a.ID.Pre == b.ID.Pre && cmp != 0:
				t.Fatalf("order mismatch %s vs %s", a.Dewey, b.Dewey)
			}
			if a.ID.AncestorOf(b.ID) != a.Dewey.AncestorOf(b.Dewey) {
				t.Fatalf("ancestor mismatch %s vs %s", a.Dewey, b.Dewey)
			}
		}
	}
}

// Property: escaping survives a parse/serialize round trip for arbitrary text.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if !validUTF8ish(s) {
			return true
		}
		root := NewElement("r", NewText(s))
		doc := NewDocument("q.xml", root)
		if strings.TrimSpace(s) == "" {
			return true // whitespace-only text is dropped by design
		}
		again, err := Parse("q2.xml", doc.Serialize())
		if err != nil {
			return false
		}
		return again.Root.Value() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func validUTF8ish(s string) bool {
	for _, r := range s {
		if r == 0xFFFD || r < 0x09 || r == 0x0b || r == 0x0c || (r > 0x0d && r < 0x20) {
			return false
		}
	}
	return true
}

func TestRelabelAfterEdit(t *testing.T) {
	doc := MustParse("e.xml", `<a><b/></a>`)
	doc.Root.Children = append(doc.Root.Children, NewElement("c"))
	doc.Relabel()
	c := doc.Root.Elements()[1]
	if c.Parent != doc.Root || c.ID.IsZero() || c.Doc() != doc {
		t.Fatal("relabel did not wire new node")
	}
	if !doc.Root.Elements()[0].ID.Precedes(c.ID) {
		t.Fatal("new node must follow existing child")
	}
}

func TestDescendantsAndWalkStop(t *testing.T) {
	doc := MustParse("d.xml", `<a><b><c/></b><d/></a>`)
	if got := len(doc.Root.Descendants()); got != 3 {
		t.Fatalf("descendants = %d, want 3", got)
	}
	count := 0
	doc.Walk(func(n *Node) bool {
		count++
		return n.Label != "b" // abort the whole walk at b
	})
	if count != 2 { // a, b — abort semantics stop the traversal entirely
		t.Fatalf("walk visited %d, want 2", count)
	}
}
