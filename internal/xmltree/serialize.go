package xmltree

import "strings"

// Serialize renders the document back to XML text.
func (d *Document) Serialize() string {
	var sb strings.Builder
	if d.Root != nil {
		serializeNode(&sb, d.Root)
	}
	return sb.String()
}

func serializeNode(sb *strings.Builder, n *Node) {
	switch n.Kind {
	case Text:
		escapeText(sb, n.Text)
	case Attribute:
		sb.WriteString(n.Label[1:])
		sb.WriteString(`="`)
		escapeAttr(sb, n.Text)
		sb.WriteByte('"')
	case Element:
		sb.WriteByte('<')
		sb.WriteString(n.Label)
		var hasContent bool
		for _, c := range n.Children {
			if c.Kind == Attribute {
				sb.WriteByte(' ')
				serializeNode(sb, c)
			} else {
				hasContent = true
			}
		}
		if !hasContent {
			sb.WriteString("/>")
			return
		}
		sb.WriteByte('>')
		for _, c := range n.Children {
			if c.Kind != Attribute {
				serializeNode(sb, c)
			}
		}
		sb.WriteString("</")
		sb.WriteString(n.Label)
		sb.WriteByte('>')
	}
}

func escapeText(sb *strings.Builder, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '&':
			sb.WriteString("&amp;")
		default:
			sb.WriteByte(s[i])
		}
	}
}

func escapeAttr(sb *strings.Builder, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			sb.WriteString("&lt;")
		case '&':
			sb.WriteString("&amp;")
		case '"':
			sb.WriteString("&quot;")
		default:
			sb.WriteByte(s[i])
		}
	}
}

// NewElement builds an element node with the given label and children;
// convenience for programmatic document construction (tests, generators).
func NewElement(label string, children ...*Node) *Node {
	return &Node{Kind: Element, Label: label, Children: children}
}

// NewText builds a text node.
func NewText(text string) *Node {
	return &Node{Kind: Text, Label: "#text", Text: text}
}

// NewAttr builds an attribute node; the '@' prefix is added if missing.
func NewAttr(name, value string) *Node {
	if !strings.HasPrefix(name, "@") {
		name = "@" + name
	}
	return &Node{Kind: Attribute, Label: name, Text: value}
}

// NewDocument wraps a root element into a relabeled document.
func NewDocument(name string, root *Node) *Document {
	doc := &Document{Root: root, Name: name}
	doc.Relabel()
	return doc
}
