package xmltree

import (
	"fmt"
	"strconv"
	"strings"
)

// Dewey is a navigational structural identifier (§1.2.1): the sequence of
// 1-based child ordinals from the root. Unlike (pre, post, depth) labels, a
// Dewey ID lets us *derive* the identifier of any ancestor directly — the
// property the rewriting algorithm exploits in §5.2 ("Exploiting ID
// properties").
type Dewey []int32

// Child returns the Dewey label of the ord-th child (1-based).
func (d Dewey) Child(ord int) Dewey {
	out := make(Dewey, len(d)+1)
	copy(out, d)
	out[len(d)] = int32(ord)
	return out
}

// ParentID returns the Dewey label of the parent, or nil for the root.
// This is the navigational derivation step: no tree access is needed.
func (d Dewey) ParentID() Dewey {
	if len(d) <= 1 {
		return nil
	}
	return d[:len(d)-1].Clone()
}

// AncestorID returns the ancestor's label at the given depth (1 = root), or
// nil if depth is out of range.
func (d Dewey) AncestorID(depth int) Dewey {
	if depth < 1 || depth >= len(d) {
		return nil
	}
	return d[:depth].Clone()
}

// Depth returns the node depth encoded by the label (root = 1).
func (d Dewey) Depth() int { return len(d) }

// Clone returns an independent copy.
func (d Dewey) Clone() Dewey {
	out := make(Dewey, len(d))
	copy(out, d)
	return out
}

// AncestorOf reports whether d labels a strict ancestor of other.
func (d Dewey) AncestorOf(other Dewey) bool {
	if len(d) >= len(other) {
		return false
	}
	for i := range d {
		if d[i] != other[i] {
			return false
		}
	}
	return true
}

// ParentOf reports whether d labels the parent of other.
func (d Dewey) ParentOf(other Dewey) bool {
	return len(d)+1 == len(other) && d.AncestorOf(other)
}

// Compare orders Dewey labels in document order: -1, 0 or +1. An ancestor
// sorts before its descendants.
func (d Dewey) Compare(other Dewey) int {
	n := min(len(d), len(other))
	for i := 0; i < n; i++ {
		switch {
		case d[i] < other[i]:
			return -1
		case d[i] > other[i]:
			return 1
		}
	}
	switch {
	case len(d) < len(other):
		return -1
	case len(d) > len(other):
		return 1
	}
	return 0
}

// String renders the label in the conventional dotted form, e.g. "1.3.2".
func (d Dewey) String() string {
	parts := make([]string, len(d))
	for i, c := range d {
		parts[i] = strconv.FormatInt(int64(c), 10)
	}
	return strings.Join(parts, ".")
}

// ParseDewey parses the dotted form produced by String.
func ParseDewey(s string) (Dewey, error) {
	if s == "" {
		return nil, fmt.Errorf("xmltree: empty dewey label")
	}
	parts := strings.Split(s, ".")
	out := make(Dewey, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 32)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("xmltree: bad dewey component %q", p)
		}
		out[i] = int32(v)
	}
	return out, nil
}
