package xmltree

import "sort"

// Plane is the pre/post plane of §1.2.1 (Figure 1.3) — the XPath Accelerator
// view of a document: every node plotted by its (pre, post) coordinates.
// Axis evaluation becomes a range query: the descendants of n occupy the
// quadrant right of and below n, ancestors the upper-left quadrant, and so
// on. The plane stores nodes sorted by pre, so window scans are binary
// searches plus a linear pass over the candidate strip.
type Plane struct {
	nodes []*Node // sorted by ID.Pre
}

// NewPlane indexes a document's nodes onto the pre/post plane.
func NewPlane(doc *Document) *Plane {
	p := &Plane{nodes: make([]*Node, 0, doc.Size())}
	doc.Walk(func(n *Node) bool {
		p.nodes = append(p.nodes, n)
		return true
	})
	sort.Slice(p.nodes, func(i, j int) bool { return p.nodes[i].ID.Pre < p.nodes[j].ID.Pre })
	return p
}

// Size returns the number of plotted nodes.
func (p *Plane) Size() int { return len(p.nodes) }

// firstAfter returns the index of the first node with Pre > pre.
func (p *Plane) firstAfter(pre int32) int {
	return sort.Search(len(p.nodes), func(i int) bool { return p.nodes[i].ID.Pre > pre })
}

// Descendants returns the nodes in n's descendant quadrant (pre > n.pre,
// post < n.post), in document order. On the plane this is the contiguous
// pre-strip (n.pre, …] cut at the first node leaving n's interval.
func (p *Plane) Descendants(id NodeID) []*Node {
	start := p.firstAfter(id.Pre)
	var out []*Node
	for i := start; i < len(p.nodes); i++ {
		n := p.nodes[i]
		if n.ID.Post > id.Post {
			break // left n's subtree: everything further follows n
		}
		out = append(out, n)
	}
	return out
}

// Children filters the descendant strip by depth.
func (p *Plane) Children(id NodeID) []*Node {
	var out []*Node
	for _, n := range p.Descendants(id) {
		if n.ID.Depth == id.Depth+1 {
			out = append(out, n)
		}
	}
	return out
}

// Ancestors returns the nodes in n's ancestor quadrant (pre < n.pre,
// post > n.post), outermost first.
func (p *Plane) Ancestors(id NodeID) []*Node {
	var out []*Node
	for i := 0; i < len(p.nodes); i++ {
		n := p.nodes[i]
		if n.ID.Pre >= id.Pre {
			break
		}
		if n.ID.Post > id.Post {
			out = append(out, n)
		}
	}
	return out
}

// Parent returns the parent node, or nil for the root.
func (p *Plane) Parent(id NodeID) *Node {
	for _, a := range p.Ancestors(id) {
		if a.ID.Depth == id.Depth-1 {
			return a
		}
	}
	return nil
}

// Following returns nodes entirely after n in document order (pre > n.pre
// and post > n.post), i.e. the upper-right quadrant.
func (p *Plane) Following(id NodeID) []*Node {
	start := p.firstAfter(id.Pre)
	var out []*Node
	for i := start; i < len(p.nodes); i++ {
		n := p.nodes[i]
		if n.ID.Post > id.Post {
			out = append(out, n)
		}
	}
	return out
}

// Preceding returns nodes entirely before n (pre < n.pre, post < n.post).
func (p *Plane) Preceding(id NodeID) []*Node {
	var out []*Node
	for i := 0; i < len(p.nodes); i++ {
		n := p.nodes[i]
		if n.ID.Pre >= id.Pre {
			break
		}
		if n.ID.Post < id.Post {
			out = append(out, n)
		}
	}
	return out
}

// Window returns the nodes with pre in [loPre, hiPre] — the primitive range
// scan other axes are built from.
func (p *Plane) Window(loPre, hiPre int32) []*Node {
	start := sort.Search(len(p.nodes), func(i int) bool { return p.nodes[i].ID.Pre >= loPre })
	var out []*Node
	for i := start; i < len(p.nodes) && p.nodes[i].ID.Pre <= hiPre; i++ {
		out = append(out, p.nodes[i])
	}
	return out
}
