package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"xamdb/internal/algebra"
	"xamdb/internal/physical"
)

func TestCheckUnarmed(t *testing.T) {
	Reset()
	if err := Check("nowhere"); err != nil {
		t.Fatalf("unarmed site must be silent, got %v", err)
	}
}

func TestCheckArmDisarm(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm("s", Fault{})
	err := Check("s")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("armed site must inject, got %v", err)
	}
	if Hits("s") != 1 {
		t.Fatalf("hits = %d, want 1", Hits("s"))
	}
	Disarm("s")
	if err := Check("s"); err != nil {
		t.Fatalf("disarmed site must be silent, got %v", err)
	}
}

func TestCheckSkipFirst(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	custom := errors.New("boom")
	Arm("s", Fault{Err: custom, SkipFirst: 2})
	for i := 0; i < 2; i++ {
		if err := Check("s"); err != nil {
			t.Fatalf("hit %d must be skipped, got %v", i+1, err)
		}
	}
	if err := Check("s"); !errors.Is(err, custom) {
		t.Fatalf("hit 3 must fail with the armed error, got %v", err)
	}
}

func TestCheckProbability(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Seed(42)
	Arm("s", Fault{Prob: 0.5})
	fired := 0
	for i := 0; i < 1000; i++ {
		if Check("s") != nil {
			fired++
		}
	}
	if fired < 400 || fired > 600 {
		t.Fatalf("p=0.5 fired %d/1000 times", fired)
	}
}

func TestCheckPanic(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm("s", Fault{PanicWith: "injected panic"})
	defer func() {
		if p := recover(); p != "injected panic" {
			t.Fatalf("recovered %v", p)
		}
	}()
	Check("s")
	t.Fatal("Check must panic")
}

func TestReaderFailsAtOffset(t *testing.T) {
	src := strings.Repeat("x", 100)
	r := &Reader{R: strings.NewReader(src), FailAfter: 37}
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if len(got) > 37 {
		t.Fatalf("read %d bytes past the fault offset", len(got))
	}
}

func TestWriterFailsAtOffset(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, FailAfter: 10}
	n, err := w.Write(make([]byte, 64))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if n != 10 || buf.Len() != 10 {
		t.Fatalf("wrote %d (buffered %d), want exactly 10", n, buf.Len())
	}
	if _, err := w.Write([]byte("more")); !errors.Is(err, ErrInjected) {
		t.Fatalf("subsequent writes must keep failing, got %v", err)
	}
}

func TestPanicIterator(t *testing.T) {
	rel := algebra.NewRelation(&algebra.Schema{Attrs: []algebra.Attr{{Name: "a"}}})
	for i := 0; i < 5; i++ {
		rel.Add(algebra.Tuple{algebra.I(int64(i))})
	}
	it := &PanicIterator{In: physical.NewScan(rel, nil), After: 3}
	for i := 0; i < 3; i++ {
		if _, ok := it.Next(); !ok {
			t.Fatalf("tuple %d must flow through", i)
		}
	}
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("4th Next must panic")
		}
	}()
	it.Next()
}
