// Package faultinject provides controlled failure injection for resilience
// testing: error-injecting io.Reader/io.Writer wrappers, a panic-injecting
// physical iterator wrapper, and a process-wide registry of named fault
// sites that production code consults through Check. With no site armed,
// Check is a single atomic load, so the hooks are safe to leave in hot
// paths; tests arm sites to prove that every failure path degrades instead
// of crashing.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"

	"xamdb/internal/algebra"
	"xamdb/internal/physical"
)

// ErrInjected is the default error returned by armed sites and wrappers.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault describes what happens when an armed site triggers.
type Fault struct {
	// Err is returned by Check when the site triggers. Defaults to
	// ErrInjected when nil (and PanicWith is nil).
	Err error
	// PanicWith, if non-nil, makes the site panic with this value instead
	// of returning an error — modeling operator bugs rather than I/O
	// failures.
	PanicWith any
	// SkipFirst suppresses the fault for the first N hits of the site, so
	// a failure can be placed mid-stream ("fail on the 3rd read").
	SkipFirst int
	// Prob triggers the fault with this probability per hit (after
	// SkipFirst); 0 or ≥1 means always. The registry's rng is seeded
	// deterministically (see Seed).
	Prob float64
}

type armedSite struct {
	fault Fault
	hits  int
}

var (
	anyArmed atomic.Bool
	mu       sync.Mutex
	sites    map[string]*armedSite
	rng      = rand.New(rand.NewSource(1))
)

// Arm registers a fault at a named site. Arming replaces any previous fault
// at the same site and resets its hit counter.
func Arm(site string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = map[string]*armedSite{}
	}
	sites[site] = &armedSite{fault: f}
	anyArmed.Store(true)
}

// Disarm removes the fault at a site, if any.
func Disarm(site string) {
	mu.Lock()
	defer mu.Unlock()
	delete(sites, site)
	anyArmed.Store(len(sites) > 0)
}

// Reset disarms every site and reseeds the rng.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	sites = nil
	rng = rand.New(rand.NewSource(1))
	anyArmed.Store(false)
}

// Seed reseeds the probability rng for reproducible probabilistic faults.
func Seed(seed int64) {
	mu.Lock()
	defer mu.Unlock()
	rng = rand.New(rand.NewSource(seed))
}

// Hits reports how many times a site has been consulted since it was armed.
func Hits(site string) int {
	mu.Lock()
	defer mu.Unlock()
	if s, ok := sites[site]; ok {
		return s.hits
	}
	return 0
}

// Check is the production-side hook: it returns nil (fast, one atomic load)
// unless the named site is armed, in which case it returns the armed error
// or panics with the armed value according to the Fault.
func Check(site string) error {
	if !anyArmed.Load() {
		return nil
	}
	mu.Lock()
	s, ok := sites[site]
	if !ok {
		mu.Unlock()
		return nil
	}
	s.hits++
	if s.hits <= s.fault.SkipFirst {
		mu.Unlock()
		return nil
	}
	if p := s.fault.Prob; p > 0 && p < 1 && rng.Float64() >= p {
		mu.Unlock()
		return nil
	}
	f := s.fault
	mu.Unlock()
	if f.PanicWith != nil {
		panic(f.PanicWith)
	}
	if f.Err != nil {
		return f.Err
	}
	return fmt.Errorf("%w at site %q", ErrInjected, site)
}

// Reader wraps an io.Reader and injects Err after FailAfter bytes have been
// read (0 = fail on the first read). A zero Err injects ErrInjected.
type Reader struct {
	R         io.Reader
	FailAfter int64
	Err       error
	read      int64
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.read >= r.FailAfter {
		return 0, r.err()
	}
	if max := r.FailAfter - r.read; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := r.R.Read(p)
	r.read += int64(n)
	if err == nil && r.read >= r.FailAfter {
		err = r.err()
	}
	return n, err
}

func (r *Reader) err() error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// Writer wraps an io.Writer and injects Err after FailAfter bytes have been
// written (0 = fail on the first write). A zero Err injects ErrInjected.
type Writer struct {
	W         io.Writer
	FailAfter int64
	Err       error
	written   int64
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.written >= w.FailAfter {
		return 0, w.err()
	}
	short := false
	if max := w.FailAfter - w.written; int64(len(p)) > max {
		p = p[:max]
		short = true
	}
	n, err := w.W.Write(p)
	w.written += int64(n)
	if err == nil && short {
		err = w.err()
	}
	return n, err
}

func (w *Writer) err() error {
	if w.Err != nil {
		return w.Err
	}
	return ErrInjected
}

// PanicIterator wraps a physical iterator and panics on the (After+1)-th
// Next call, modeling an operator bug surfacing mid-execution.
type PanicIterator struct {
	In    physical.Iterator
	After int
	// Msg is the panic value; defaults to ErrInjected.
	Msg any
	n   int
}

// Schema implements physical.Iterator.
func (p *PanicIterator) Schema() *algebra.Schema { return p.In.Schema() }

// Order implements physical.Iterator.
func (p *PanicIterator) Order() algebra.OrderDesc { return p.In.Order() }

// Next implements physical.Iterator.
func (p *PanicIterator) Next() (algebra.Tuple, bool) {
	if p.n >= p.After {
		if p.Msg != nil {
			panic(p.Msg)
		}
		panic(ErrInjected)
	}
	p.n++
	return p.In.Next()
}
