package containment

import (
	"math/rand"
	"testing"

	"xamdb/internal/algebra"
	"xamdb/internal/datagen"
	"xamdb/internal/patgen"
	"xamdb/internal/summary"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
)

// TestContainmentSoundOnConformingDocument cross-validates the decision
// procedure against evaluation: whenever p ⊆_S q, every document conforming
// to S must satisfy p(d) ⊆ q(d). The generating document conforms to its own
// summary by construction.
func TestContainmentSoundOnConformingDocument(t *testing.T) {
	docs := []*xmltree.Document{
		datagen.DBLP(40),
		datagen.Shakespeare(2, 3),
		xmltree.MustParse("mixed.xml", `<r>
			<a><b v="1">x</b><c><b v="2">y</b></c></a>
			<a><c><b v="3">z</b></c></a>
			<d><b v="4">w</b></d>
		</r>`),
	}
	for _, doc := range docs {
		s := summary.Build(doc)
		pats := patgen.GenerateSet(s, patgen.Config{Nodes: 4, Returns: 1, POpt: 0.3}, 12, 11)
		checked, positives := 0, 0
		for i := 0; i < len(pats); i++ {
			for j := 0; j < len(pats); j++ {
				ok, err := Contained(pats[i], pats[j], s)
				if err != nil {
					t.Fatal(err)
				}
				checked++
				if !ok {
					continue
				}
				positives++
				ri, err := pats[i].Eval(doc)
				if err != nil {
					t.Fatal(err)
				}
				rj, err := pats[j].Eval(doc)
				if err != nil {
					t.Fatal(err)
				}
				if !subset(ri, rj) {
					t.Fatalf("doc %s: decided %s ⊆ %s but evaluation disagrees:\n%s\nvs\n%s",
						doc.Name, pats[i], pats[j], ri, rj)
				}
			}
		}
		if positives == 0 {
			t.Errorf("doc %s: no positive pairs among %d — workload too scattered", doc.Name, checked)
		}
	}
}

func subset(a, b *algebra.Relation) bool {
	for _, t := range a.Tuples {
		found := false
		for _, u := range b.Tuples {
			if t.Equal(u) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestEquivalenceMatchesEvaluation: decided equivalences must yield equal
// results on a conforming document.
func TestEquivalenceMatchesEvaluation(t *testing.T) {
	doc := datagen.DBLP(30)
	s := summary.Build(doc)
	rng := rand.New(rand.NewSource(3))
	pats := make([]*xam.Pattern, 0, 16)
	for len(pats) < 16 {
		p := patgen.Generate(s, patgen.Config{Nodes: 3, Returns: 1}, rng)
		if p != nil {
			pats = append(pats, p)
		}
	}
	for i := range pats {
		for j := range pats {
			eq, err := Equivalent(pats[i], pats[j], s)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				continue
			}
			ri, _ := pats[i].Eval(doc)
			rj, _ := pats[j].Eval(doc)
			if !ri.EqualAsSet(rj) {
				t.Fatalf("decided %s ≡ %s but evaluations differ", pats[i], pats[j])
			}
		}
	}
}
