package containment

import (
	"fmt"

	"xamdb/internal/summary"
	"xamdb/internal/xam"
)

// SContractions returns every pattern obtained from p by erasing one
// non-return node and reconnecting its children to its parent over
// ancestor-descendant edges (§4.5). Only conjunctive patterns are handled,
// matching the scope of the thesis's minimization discussion.
func SContractions(p *xam.Pattern) ([]*xam.Pattern, error) {
	if !p.Conjunctive() {
		return nil, fmt.Errorf("containment: S-contraction is defined for conjunctive patterns")
	}
	var out []*xam.Pattern
	nodes := p.Nodes()
	for i, n := range nodes {
		if n.IsReturn() {
			continue
		}
		q := p.Clone()
		qn := q.Nodes()[i]
		if err := contractNode(q, qn); err != nil {
			continue
		}
		if q.Size() == 0 {
			continue
		}
		out = append(out, q)
	}
	return out, nil
}

// contractNode removes n from q, splicing its children onto its parent (or
// onto ⊤) with '//' axes.
func contractNode(q *xam.Pattern, n *xam.Node) error {
	lift := func(edges []*xam.Edge, newParent *xam.Node) []*xam.Edge {
		var out []*xam.Edge
		for _, e := range edges {
			out = append(out, &xam.Edge{Axis: xam.Descendant, Sem: e.Sem, Child: e.Child})
			e.Child.Parent = newParent
		}
		return out
	}
	if n.Parent == nil {
		var newTop []*xam.Edge
		for _, e := range q.Top {
			if e.Child == n {
				newTop = append(newTop, lift(n.Edges, nil)...)
			} else {
				newTop = append(newTop, e)
			}
		}
		q.Top = newTop
		return nil
	}
	parent := n.Parent
	var newEdges []*xam.Edge
	for _, e := range parent.Edges {
		if e.Child == n {
			newEdges = append(newEdges, lift(n.Edges, parent)...)
		} else {
			newEdges = append(newEdges, e)
		}
	}
	parent.Edges = newEdges
	return nil
}

// MinimizeByContraction computes all patterns minimal under S-contraction
// that are S-equivalent to p (§4.5). Several minimal patterns may exist
// (Figure 4.12's t'₁ and t'₂); they are returned deduplicated.
func MinimizeByContraction(p *xam.Pattern, s *summary.Summary) ([]*xam.Pattern, error) {
	seen := map[string]bool{}
	minimal := map[string]*xam.Pattern{}
	var rec func(t *xam.Pattern) error
	rec = func(t *xam.Pattern) error {
		key := t.String()
		if seen[key] {
			return nil
		}
		seen[key] = true
		cands, err := SContractions(t)
		if err != nil {
			return err
		}
		contracted := false
		for _, c := range cands {
			eq, err := Equivalent(c, p, s)
			if err != nil {
				return err
			}
			if eq {
				contracted = true
				if err := rec(c); err != nil {
					return err
				}
			}
		}
		if !contracted {
			minimal[key] = t
		}
		return nil
	}
	if err := rec(p); err != nil {
		return nil, err
	}
	out := make([]*xam.Pattern, 0, len(minimal))
	for _, t := range minimal {
		out = append(out, t)
	}
	// Deterministic order: smaller first, then lexicographic.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

func less(a, b *xam.Pattern) bool {
	if a.Size() != b.Size() {
		return a.Size() < b.Size()
	}
	return a.String() < b.String()
}
