package containment

import (
	"xamdb/internal/value"
	"xamdb/internal/xam"
)

// Absorption is the compensation record for matching a query node carrying
// predicate φq against a view node decorated with φv (§4.4.2 applied to
// decorated patterns). The match is sound whenever φq ⇒ φv: every document
// node the query wants is guaranteed to be in the view's extent. Residual
// is the selection the rewriting must still apply on the view side —
// φq itself, since on rows already known to satisfy φv, σ_{φq} computes
// exactly φv ∧ φq = φq. Exact marks φv ⇒ φq too, in which case the view
// stores no extra rows and no residual selection is needed at all.
type Absorption struct {
	Query    value.Formula // φq, the query node's predicate
	View     value.Formula // φv, the view node's decoration (T when bare)
	Residual value.Formula // selection to push onto the view-extent scan
	Exact    bool          // φv ≡ φq: the scan alone is already correct
}

// AbsorbPredicate decides whether a query predicate φq can be absorbed by a
// view node decorated with φv, and if so returns the compensation record.
// ok is false when φq ⇏ φv: the view may be missing rows the query needs,
// so no selection on the view can recover them.
func AbsorbPredicate(q, v value.Formula) (Absorption, bool) {
	if !q.Implies(v) {
		return Absorption{}, false
	}
	return Absorption{
		Query:    q,
		View:     v,
		Residual: q,
		Exact:    v.Implies(q),
	}, true
}

// AbsorbNode is AbsorbPredicate lifted to pattern nodes: the view node's
// decoration defaults to T (a bare value-storing node keeps every row).
// Absorption additionally requires the view node to expose the value —
// either it stores Val (the residual can be evaluated on the extent) or it
// carries a decoration already implied (Exact, nothing to evaluate).
func AbsorbNode(qn, vn *xam.Node) (Absorption, bool) {
	if !qn.HasValuePred {
		return Absorption{}, false
	}
	view := value.True()
	if vn.HasValuePred {
		view = vn.ValuePred
	}
	a, ok := AbsorbPredicate(qn.ValuePred, view)
	if !ok {
		return Absorption{}, false
	}
	if !a.Exact && !vn.StoreVal {
		// A residual selection needs the stored value to filter on.
		return Absorption{}, false
	}
	return a, true
}
