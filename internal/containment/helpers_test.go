package containment

import "xamdb/internal/value"

func eq(v float64) value.Formula { return value.Eq(value.Num(v)) }
func le(v float64) value.Formula { return value.Le(value.Num(v)) }
func ge(v float64) value.Formula { return value.Ge(value.Num(v)) }
func gt(v float64) value.Formula { return value.Gt(value.Num(v)) }
func le10() value.Formula        { return value.Le(value.Num(10)) }
