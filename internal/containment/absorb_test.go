package containment

import (
	"testing"

	"xamdb/internal/value"
	"xamdb/internal/xam"
)

func TestAbsorbPredicate(t *testing.T) {
	eq := value.Eq(value.Num(1999))
	rng := value.Ge(value.Num(1990)).And(value.Le(value.Num(2005)))

	// Equality into a bare (T-decorated) view node: residual = φq.
	a, ok := AbsorbPredicate(eq, value.True())
	if !ok || a.Exact || !a.Residual.Equal(eq) {
		t.Fatalf("eq into T: %+v ok=%v", a, ok)
	}
	// Range into a wider range: absorbable with residual.
	a, ok = AbsorbPredicate(eq, rng)
	if !ok || a.Exact || !a.Residual.Equal(eq) {
		t.Fatalf("eq into range: %+v ok=%v", a, ok)
	}
	// Exact match: no residual work needed.
	a, ok = AbsorbPredicate(rng, rng)
	if !ok || !a.Exact {
		t.Fatalf("range into itself: %+v ok=%v", a, ok)
	}
	// Conjunction: φq = range ∧ ≠2000 still implies the range.
	conj := rng.And(value.Ne(value.Num(2000)))
	a, ok = AbsorbPredicate(conj, rng)
	if !ok || a.Exact || !a.Residual.Equal(conj) {
		t.Fatalf("conjunction into range: %+v ok=%v", a, ok)
	}
	// Non-implied: the view is missing rows; no selection can recover them.
	if _, ok := AbsorbPredicate(rng, eq); ok {
		t.Fatal("wider query predicate must not absorb into a narrower view")
	}
}

func TestAbsorbNode(t *testing.T) {
	qn := &xam.Node{Name: "q", Label: "year", ValuePred: value.Eq(value.Num(1999)), HasValuePred: true}
	bare := &xam.Node{Name: "v", Label: "year", StoreVal: true}
	if _, ok := AbsorbNode(qn, bare); !ok {
		t.Fatal("predicate must absorb into a bare value-storing node")
	}
	// Decorated but value-less view node: only an exact decoration works,
	// since a residual selection has nothing to filter on.
	decorated := &xam.Node{Name: "v", Label: "year",
		ValuePred: value.Ge(value.Num(1990)), HasValuePred: true}
	if _, ok := AbsorbNode(qn, decorated); ok {
		t.Fatal("residual selection requires a stored value")
	}
	exact := &xam.Node{Name: "v", Label: "year",
		ValuePred: value.Eq(value.Num(1999)), HasValuePred: true}
	a, ok := AbsorbNode(qn, exact)
	if !ok || !a.Exact {
		t.Fatalf("exact decoration needs no stored value: %+v ok=%v", a, ok)
	}
	// No query predicate → nothing to absorb.
	if _, ok := AbsorbNode(&xam.Node{Name: "q"}, bare); ok {
		t.Fatal("predicate-free query node must not absorb")
	}
}
