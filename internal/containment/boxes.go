package containment

import "xamdb/internal/value"

// Box is a conjunction of per-variable value formulas: variable i (a summary
// node number) must satisfy Box[i]; absent variables are unconstrained (T).
// A box describes the value-assignments under which one canonical tree, or
// one embedding of a pattern into it, applies (§4.4.2).
type Box map[int]value.Formula

// boxEmpty reports whether the box denotes no assignment.
func boxEmpty(b Box) bool {
	for _, f := range b {
		if f.IsFalse() {
			return true
		}
	}
	return false
}

// boxAt returns the formula constraining variable v (T when absent).
func boxAt(b Box, v int) value.Formula {
	if f, ok := b[v]; ok {
		return f
	}
	return value.True()
}

// cloneBox copies a box.
func cloneBox(b Box) Box {
	out := make(Box, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// BoxImplies decides b ⇒ c₁ ∨ … ∨ cₙ: every assignment satisfying b
// satisfies some cover box. This is the φ_te ⇒ ∨ φ_t' test of §4.4.2,
// implemented by orthant decomposition: subtract the first cover box from b
// (yielding at most |vars(c)| remainder boxes) and recurse on the rest.
func BoxImplies(b Box, cover []Box) bool {
	if boxEmpty(b) {
		return true
	}
	if len(cover) == 0 {
		return false
	}
	c := cover[0]
	if boxEmpty(c) {
		return BoxImplies(b, cover[1:])
	}
	inter := cloneBox(b)
	var remainders []Box
	for v, cf := range c {
		// Remainder: agrees with c on previously processed variables (via
		// inter) but violates c on v.
		out := cloneBox(inter)
		out[v] = boxAt(b, v).And(cf.Not())
		if !boxEmpty(out) {
			remainders = append(remainders, out)
		}
		inter[v] = boxAt(inter, v).And(cf)
	}
	for _, r := range remainders {
		if !BoxImplies(r, cover[1:]) {
			return false
		}
	}
	return true
}
