// Package containment decides XAM tree pattern containment, equivalence,
// satisfiability and minimization under path summary constraints (Chapter 4).
// The central tool is the S-canonical model mod_S(p): for every embedding of
// p into the summary S, a canonical tree is built whose nodes are labeled
// with summary paths — one parent-child chain per pattern edge (§4.3.1), so
// two pattern branches reaching the same path yield distinct tree nodes
// unless the summary's one-to-one edges force every document to share them.
// A pattern p is S-contained in a union of patterns iff every canonical tree
// of p admits return-preserving embeddings of some union member, and p's
// value formulas imply the disjunction of the embeddings' formulas (§4.4).
package containment

import (
	"fmt"
	"strings"

	"xamdb/internal/summary"
	"xamdb/internal/value"
	"xamdb/internal/xam"
)

// CTNode is one node of a canonical tree: an element/attribute occurrence on
// a specific summary path, optionally decorated with a value formula.
type CTNode struct {
	ID         int // per-tree identity, also the box variable
	Path       *summary.Node
	Formula    value.Formula
	HasFormula bool
	Parent     *CTNode
	Children   []*CTNode
}

// CanonTree is one element of mod_S(p), together with the return tuple of
// the generating embedding (nil entries are ⊥) and its nesting sequences.
type CanonTree struct {
	S *summary.Summary
	// Top holds the chains hanging under the ⊤ node; after one-to-one
	// merging there is normally a single root-element node.
	Top []*CTNode
	// All lists every node in pre-order.
	All []*CTNode
	// RetNodes are the return nodes of the generating embedding (nil = ⊥).
	RetNodes []*CTNode
	// Ret mirrors RetNodes as summary path numbers (0 = ⊥); stable across
	// isomorphic trees, used for deduplication and display.
	Ret []int
	// NestSeq holds, per return node, the nesting sequence of the generating
	// embedding (§4.4.5): summary numbers of the images of ancestors reached
	// over nested edges, top-down; 0 stands for the ⊤ node.
	NestSeq [][]int
}

// Size returns the number of tree nodes.
func (t *CanonTree) Size() int { return len(t.All) }

// Key returns a canonical identity for deduplication: the tree structure
// (paths + formulas) with return markers, serialized pre-order with sorted
// sibling order.
func (t *CanonTree) Key() string {
	retIdx := map[*CTNode]int{}
	for i, n := range t.RetNodes {
		if n != nil {
			retIdx[n] = i + 1
		}
	}
	var render func(n *CTNode) string
	render = func(n *CTNode) string {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d", n.Path.Num)
		if n.HasFormula {
			sb.WriteByte('[')
			sb.WriteString(n.Formula.String())
			sb.WriteByte(']')
		}
		if i, ok := retIdx[n]; ok {
			fmt.Fprintf(&sb, "!r%d", i)
		}
		kids := make([]string, len(n.Children))
		for i, c := range n.Children {
			kids[i] = render(c)
		}
		// Sort sibling renderings for order independence.
		for i := 1; i < len(kids); i++ {
			for j := i; j > 0 && kids[j] < kids[j-1]; j-- {
				kids[j], kids[j-1] = kids[j-1], kids[j]
			}
		}
		sb.WriteByte('(')
		sb.WriteString(strings.Join(kids, ","))
		sb.WriteByte(')')
		return sb.String()
	}
	tops := make([]string, len(t.Top))
	for i, n := range t.Top {
		tops[i] = render(n)
	}
	for i := 1; i < len(tops); i++ {
		for j := i; j > 0 && tops[j] < tops[j-1]; j-- {
			tops[j], tops[j-1] = tops[j-1], tops[j]
		}
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(tops, ","))
	sb.WriteByte('|')
	for i, r := range t.Ret {
		fmt.Fprintf(&sb, "%d;", r)
		for _, s := range t.NestSeq[i] {
			fmt.Fprintf(&sb, "%d.", s)
		}
	}
	return sb.String()
}

// binding maps pattern nodes to summary nodes; nil means ⊥.
type binding map[*xam.Node]*summary.Node

// edgeCandidates returns the summary nodes a pattern node may map to, given
// its parent's image. parent == nil denotes the ⊤ node.
func edgeCandidates(s *summary.Summary, parent *summary.Node, e *xam.Edge) []*summary.Node {
	label := e.Child.Label
	if parent == nil {
		if e.Axis == xam.Child {
			if s.Root != nil && labelMatches(s.Root.Label, label) {
				return []*summary.Node{s.Root}
			}
			return nil
		}
		var cands []*summary.Node
		for _, n := range s.Nodes() {
			if labelMatches(n.Label, label) {
				cands = append(cands, n)
			}
		}
		return cands
	}
	if e.Axis == xam.Child {
		return parent.ChildrenLabeled(label)
	}
	return parent.DescendantsLabeled(label)
}

func labelMatches(nodeLabel, patLabel string) bool {
	switch patLabel {
	case "*":
		return !strings.HasPrefix(nodeLabel, "@") && nodeLabel != "#text"
	case "@*":
		return strings.HasPrefix(nodeLabel, "@")
	}
	return nodeLabel == patLabel
}

// strictEmbeddings enumerates all embeddings of the pattern into the summary
// treating every edge as mandatory, skipping edges for which skip returns
// true (used to erase optional subtrees).
func strictEmbeddings(p *xam.Pattern, s *summary.Summary, skip func(*xam.Edge) bool) []binding {
	var out []binding
	strictEmbeddingsFunc(p, s, skip, func(b binding) bool {
		out = append(out, b)
		return true
	})
	return out
}

// strictEmbeddingsFunc is the streaming form: yield receives each embedding
// and may return false to stop the enumeration early.
func strictEmbeddingsFunc(p *xam.Pattern, s *summary.Summary, skip func(*xam.Edge) bool, yield func(binding) bool) {
	cur := binding{}
	stopped := false
	var assignEdges func(edges []*xam.Edge, parent *summary.Node, k func())
	var assignEdge func(e *xam.Edge, parent *summary.Node, k func())
	assignEdges = func(edges []*xam.Edge, parent *summary.Node, k func()) {
		if stopped {
			return
		}
		if len(edges) == 0 {
			k()
			return
		}
		assignEdge(edges[0], parent, func() {
			assignEdges(edges[1:], parent, k)
		})
	}
	assignEdge = func(e *xam.Edge, parent *summary.Node, k func()) {
		if skip != nil && skip(e) {
			k()
			return
		}
		for _, cand := range edgeCandidates(s, parent, e) {
			if stopped {
				break
			}
			cur[e.Child] = cand
			assignEdges(e.Child.Edges, cand, k)
		}
		delete(cur, e.Child)
	}
	assignEdges(p.Top, nil, func() {
		if stopped {
			return
		}
		b := binding{}
		for n, sn := range cur {
			b[n] = sn
		}
		if !yield(b) {
			stopped = true
		}
	})
}

// optionalEdges lists the pattern's optional edges in pre-order.
func optionalEdges(p *xam.Pattern) []*xam.Edge {
	var out []*xam.Edge
	var visitNode func(n *xam.Node)
	visitEdge := func(e *xam.Edge) {
		if e.Sem.Optional() {
			out = append(out, e)
		}
	}
	visitNode = func(n *xam.Node) {
		for _, e := range n.Edges {
			visitEdge(e)
			visitNode(e.Child)
		}
	}
	for _, e := range p.Top {
		visitEdge(e)
		visitNode(e.Child)
	}
	return out
}

// incomingEdge finds the edge pointing at n (possibly a top edge).
func incomingEdge(p *xam.Pattern, n *xam.Node) *xam.Edge {
	if n.Parent == nil {
		for _, e := range p.Top {
			if e.Child == n {
				return e
			}
		}
		return nil
	}
	for _, e := range n.Parent.Edges {
		if e.Child == n {
			return e
		}
	}
	return nil
}

// nestingSequence computes ns(n, b): the images of n's ancestors n' such
// that the edge below n' toward n is nested, top-down (§4.4.5). A nested
// top edge contributes 0 (the ⊤ node).
func nestingSequence(p *xam.Pattern, n *xam.Node, b binding) []int {
	var chain []*xam.Node
	for cur := n; cur != nil; cur = cur.Parent {
		chain = append(chain, cur)
	}
	var seq []int
	for i := len(chain) - 1; i >= 0; i-- {
		node := chain[i]
		e := incomingEdge(p, node)
		if e == nil || !e.Sem.Nested() {
			continue
		}
		if node.Parent == nil {
			seq = append(seq, 0)
		} else if sn := b[node.Parent]; sn != nil {
			seq = append(seq, sn.Num)
		}
	}
	return seq
}

// NestDepth counts the nested edges on the path from ⊤ to n (the static
// |ns(n)| of §4.4.5).
func NestDepth(p *xam.Pattern, n *xam.Node) int {
	d := 0
	for cur := n; cur != nil; cur = cur.Parent {
		if e := incomingEdge(p, cur); e != nil && e.Sem.Nested() {
			d++
		}
	}
	return d
}

// maxOptionalEdges bounds the 2^n optional-erasure enumeration; realistic
// patterns stay far below it (§4.6).
const maxOptionalEdges = 12

// CanonicalModel computes mod_S(p) (§4.3.1–4.3.2): one canonical tree per
// embedding of each optional-erasure variant of p, deduplicated, and
// filtered so that the induced return tuple is actually produced by p on the
// tree (the p(t_{e,F}) ≠ ∅ condition of §4.3.2).
func CanonicalModel(p *xam.Pattern, s *summary.Summary) []*CanonTree {
	out, _ := CanonicalModelBounded(p, s, 0)
	return out
}

// CanonicalModelBounded is CanonicalModel with an optional cap on the number
// of canonical trees (0 = unlimited). It reports whether the enumeration was
// truncated; truncated models must not be used for containment decisions.
func CanonicalModelBounded(p *xam.Pattern, s *summary.Summary, max int) ([]*CanonTree, bool) {
	opts := optionalEdges(p)
	if len(opts) > maxOptionalEdges {
		opts = opts[:maxOptionalEdges]
	}
	returns := p.ReturnNodes()
	seen := map[string]bool{}
	var out []*CanonTree
	truncated := false
	for mask := 0; mask < 1<<len(opts) && !truncated; mask++ {
		erased := map[*xam.Edge]bool{}
		for i, e := range opts {
			if mask&(1<<i) != 0 {
				erased[e] = true
			}
		}
		if redundantMask(p, erased) {
			continue
		}
		skip := func(e *xam.Edge) bool { return erased[e] }
		strictEmbeddingsFunc(p, s, skip, func(b binding) bool {
			t := buildCanonTree(p, s, b, returns, skip)
			if t == nil {
				return true
			}
			// The generating embedding itself witnesses the return tuple
			// when nothing was erased; the ⊥-rule check only matters for
			// erased optional subtrees.
			if mask != 0 && !retProduced(p, t) {
				return true
			}
			if k := t.Key(); !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
			if max > 0 && len(out) > max {
				truncated = true
				return false
			}
			return true
		})
	}
	return out, truncated
}

// redundantMask reports whether some erased edge lies strictly below another
// erased edge's subtree (the smaller mask yields the same tree).
func redundantMask(p *xam.Pattern, erased map[*xam.Edge]bool) bool {
	var visit func(n *xam.Node, under bool) bool
	visit = func(n *xam.Node, under bool) bool {
		for _, e := range n.Edges {
			if erased[e] && under {
				return true
			}
			if visit(e.Child, under || erased[e]) {
				return true
			}
		}
		return false
	}
	for _, e := range p.Top {
		if visit(e.Child, erased[e]) {
			return true
		}
	}
	return false
}

// uniquePerParent reports whether every document instance of the parent path
// has exactly one child on this path — the condition under which sibling
// chains must share the node (one-to-one merging).
func uniquePerParent(sn *summary.Node) bool { return sn.EdgeIn == summary.One }

// buildCanonTree assembles the canonical tree for one embedding: one chain
// of fresh nodes per pattern edge (§4.3.1's construction), merging chain
// prefixes only where the summary's one-to-one edges force every document to
// share the occurrence. Returns nil when conflicting decorations make the
// tree unsatisfiable.
func buildCanonTree(p *xam.Pattern, s *summary.Summary, b binding, returns []*xam.Node, skip func(*xam.Edge) bool) *CanonTree {
	t := &CanonTree{S: s}
	nextID := 0
	newNode := func(path *summary.Node, parent *CTNode) *CTNode {
		nextID++
		n := &CTNode{ID: nextID, Path: path, Parent: parent}
		if parent == nil {
			t.Top = append(t.Top, n)
		} else {
			parent.Children = append(parent.Children, n)
		}
		t.All = append(t.All, n)
		return n
	}
	// attachChain walks the summary path from `fromPath` (exclusive; nil for
	// ⊤) down to `to`, reusing existing shared nodes over one-to-one edges.
	attachChain := func(parent *CTNode, fromPath, to *summary.Node) *CTNode {
		// Collect the summary chain top-down.
		var chain []*summary.Node
		for sn := to; sn != fromPath; sn = sn.Parent {
			chain = append([]*summary.Node{sn}, chain...)
			if sn.Parent == nil && fromPath != nil {
				return nil // not actually a descendant; embedding bug
			}
			if sn.Parent == nil {
				break
			}
		}
		cur := parent
		for _, sn := range chain {
			var reuse *CTNode
			if uniquePerParent(sn) || (cur == nil && sn.Parent == nil) {
				siblings := t.Top
				if cur != nil {
					siblings = cur.Children
				}
				for _, c := range siblings {
					if c.Path == sn {
						reuse = c
						break
					}
				}
			}
			if reuse != nil {
				cur = reuse
			} else {
				cur = newNode(sn, cur)
			}
		}
		return cur
	}

	patNode := map[*xam.Node]*CTNode{}
	ok := true
	var place func(edges []*xam.Edge, parent *xam.Node)
	place = func(edges []*xam.Edge, parent *xam.Node) {
		if !ok {
			return
		}
		for _, e := range edges {
			if skip != nil && skip(e) {
				continue
			}
			sn := b[e.Child]
			if sn == nil {
				continue
			}
			var parentCT *CTNode
			var fromPath *summary.Node
			if parent != nil {
				parentCT = patNode[parent]
				fromPath = b[parent]
			}
			ct := attachChain(parentCT, fromPath, sn)
			if ct == nil {
				ok = false
				return
			}
			if e.Child.HasValuePred {
				if ct.HasFormula {
					ct.Formula = ct.Formula.And(e.Child.ValuePred)
				} else {
					ct.Formula = e.Child.ValuePred
					ct.HasFormula = true
				}
				if ct.Formula.IsFalse() {
					ok = false
					return
				}
			}
			patNode[e.Child] = ct
			place(e.Child.Edges, e.Child)
		}
	}
	place(p.Top, nil)
	if !ok {
		return nil
	}
	for _, rn := range returns {
		ct := patNode[rn]
		t.RetNodes = append(t.RetNodes, ct)
		if ct != nil {
			t.Ret = append(t.Ret, ct.Path.Num)
			t.NestSeq = append(t.NestSeq, nestingSequence(p, rn, b))
		} else {
			t.Ret = append(t.Ret, 0)
			t.NestSeq = append(t.NestSeq, nil)
		}
	}
	return t
}
