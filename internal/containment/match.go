package containment

import (
	"xamdb/internal/summary"
	"xamdb/internal/xam"
)

// ctBinding maps pattern nodes to canonical tree nodes. An explicit nil
// entry is ⊥ (an optional subtree without a match); nodes matched virtually
// against summary-forced structure are simply absent (virtual matching is
// only allowed for return-free, formula-free subtrees, whose assignments
// never matter).
type ctBinding map[*xam.Node]*CTNode

// descendantsOf returns the strict descendants of a tree node, pre-order.
func descendantsOf(n *CTNode) []*CTNode {
	var out []*CTNode
	var walk func(c *CTNode)
	walk = func(c *CTNode) {
		out = append(out, c)
		for _, cc := range c.Children {
			walk(cc)
		}
	}
	for _, c := range n.Children {
		walk(c)
	}
	return out
}

// realCandidates lists the tree nodes a pattern edge may map to under the
// given context (nil context = ⊤).
func realCandidates(t *CanonTree, ctx *CTNode, e *xam.Edge) []*CTNode {
	label := e.Child.Label
	var pool []*CTNode
	switch {
	case ctx == nil && e.Axis == xam.Child:
		for _, n := range t.Top {
			if n.Path.Parent == nil {
				pool = append(pool, n)
			}
		}
	case ctx == nil:
		pool = t.All
	case e.Axis == xam.Child:
		pool = ctx.Children
	default:
		pool = descendantsOf(ctx)
	}
	var out []*CTNode
	for _, n := range pool {
		if labelMatches(n.Path.Label, label) {
			out = append(out, n)
		}
	}
	return out
}

// pureSubtree reports whether the subtree rooted at n contains no return
// node and no value predicate — the precondition for matching it virtually
// against summary-forced structure.
func pureSubtree(n *xam.Node) bool {
	if n.IsReturn() || n.HasValuePred {
		return false
	}
	for _, e := range n.Edges {
		if !pureSubtree(e.Child) {
			return false
		}
	}
	return true
}

// forcedMatch reports whether the pattern subtree under e is guaranteed to
// match below the given summary path in EVERY conforming document: the
// target is reachable over strong (+/1) summary edges only, and the
// subtree's mandatory edges are recursively forced. Only meaningful for
// pure subtrees.
func forcedMatch(e *xam.Edge, from *summary.Node) bool {
	var targets []*summary.Node
	var collect func(sn *summary.Node, deep bool)
	collect = func(sn *summary.Node, deep bool) {
		for _, c := range sn.Children {
			if c.EdgeIn != summary.Plus && c.EdgeIn != summary.One {
				continue
			}
			if labelMatches(c.Label, e.Child.Label) {
				targets = append(targets, c)
			}
			if deep {
				collect(c, true)
			}
		}
	}
	collect(from, e.Axis == xam.Descendant)
	for _, target := range targets {
		ok := true
		for _, ce := range e.Child.Edges {
			if ce.Sem.Optional() {
				continue
			}
			if !forcedMatch(ce, target) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// forcedGuaranteed reports whether the subtree under e matches in EVERY
// conforming document below the given path: targets reachable over strong
// edges, no value predicates anywhere on the mandatory skeleton (a forced
// node's value is arbitrary, so a predicate can always fail), and mandatory
// children recursively guaranteed.
func forcedGuaranteed(e *xam.Edge, from *summary.Node) bool {
	if e.Child.HasValuePred {
		return false
	}
	var targets []*summary.Node
	var collect func(sn *summary.Node, deep bool)
	collect = func(sn *summary.Node, deep bool) {
		for _, c := range sn.Children {
			if c.EdgeIn != summary.Plus && c.EdgeIn != summary.One {
				continue
			}
			if labelMatches(c.Label, e.Child.Label) {
				targets = append(targets, c)
			}
			if deep {
				collect(c, true)
			}
		}
	}
	collect(from, e.Axis == xam.Descendant)
	for _, target := range targets {
		ok := true
		for _, ce := range e.Child.Edges {
			if ce.Sem.Optional() {
				continue
			}
			if !forcedGuaranteed(ce, target) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// canMatch reports whether the subtree under e can match below ctx in the
// minimal witness document — against real tree nodes, or against structure
// the summary's strong edges force into every document. This drives the
// ⊥-rule of §4.1 condition 3(b): an optional node maps to ⊥ only when no
// match exists.
func canMatch(t *CanonTree, e *xam.Edge, ctx *CTNode) bool {
	for _, cand := range realCandidates(t, ctx, e) {
		// A predicate-decorated pattern node cannot match a tree node whose
		// formula contradicts the predicate: no valuation consistent with
		// the entry satisfies both, so that candidate never yields a match
		// and must not block the ⊥ assignment.
		if e.Child.HasValuePred && cand.HasFormula && e.Child.ValuePred.And(cand.Formula).IsFalse() {
			continue
		}
		ok := true
		for _, ce := range e.Child.Edges {
			if ce.Sem.Optional() {
				continue
			}
			if !canMatch(t, ce, cand) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	if from := fromPathOf(t, ctx); from != nil && forcedGuaranteed(e, from) {
		return true
	}
	return false
}

// fromPathOf returns the summary path of a context (the summary root's
// parent is represented by nil ⊤; for ⊤ forced matching starts at the
// summary root only for child axes, handled by forcedMatch's caller).
func fromPathOf(t *CanonTree, ctx *CTNode) *summary.Node {
	if ctx != nil {
		return ctx.Path
	}
	return nil
}

// patternEmbeddings enumerates embeddings of p into the canonical tree t,
// honoring the optional-edge semantics of §4.1 and allowing pure subtrees to
// match summary-forced structure. Each yielded binding covers the pattern's
// return-relevant and decorated nodes; pure virtually-matched subtrees are
// absent from it.
func patternEmbeddings(p *xam.Pattern, t *CanonTree) []ctBinding {
	var out []ctBinding
	cur := ctBinding{}

	var assignEdges func(edges []*xam.Edge, ctx *CTNode, k func())
	var assignEdge func(e *xam.Edge, ctx *CTNode, k func())
	var assignBot func(n *xam.Node, k func())

	assignBot = func(n *xam.Node, k func()) {
		cur[n] = nil
		var botEdges func(edges []*xam.Edge, k func())
		botEdges = func(edges []*xam.Edge, k func()) {
			if len(edges) == 0 {
				k()
				return
			}
			assignBot(edges[0].Child, func() { botEdges(edges[1:], k) })
		}
		botEdges(n.Edges, k)
		delete(cur, n)
	}

	assignEdges = func(edges []*xam.Edge, ctx *CTNode, k func()) {
		if len(edges) == 0 {
			k()
			return
		}
		assignEdge(edges[0], ctx, func() {
			assignEdges(edges[1:], ctx, k)
		})
	}
	assignEdge = func(e *xam.Edge, ctx *CTNode, k func()) {
		if e.Sem.Optional() && !canMatch(t, e, ctx) {
			assignBot(e.Child, k)
			return
		}
		for _, cand := range realCandidates(t, ctx, e) {
			cur[e.Child] = cand
			assignEdges(e.Child.Edges, cand, k)
		}
		delete(cur, e.Child)
		// Virtual matching of a pure subtree against forced structure; its
		// nodes stay unbound.
		if pureSubtree(e.Child) {
			if from := fromPathOf(t, ctx); from != nil && forcedMatch(e, from) {
				k()
			}
		}
	}
	assignEdges(p.Top, nil, func() {
		b := ctBinding{}
		for n, ct := range cur {
			b[n] = ct
		}
		out = append(out, b)
	})
	return out
}

// retProduced checks that p, evaluated on the canonical tree with optional
// embedding semantics, produces the tree's return tuple (the p(t_{e,F}) ≠ ∅
// filter of §4.3.2: ⊥ may stand only where no match exists).
func retProduced(p *xam.Pattern, t *CanonTree) bool {
	rs := p.ReturnNodes()
	for _, b := range patternEmbeddings(p, t) {
		ok := true
		for i, rn := range rs {
			ct, bound := b[rn]
			want := t.RetNodes[i]
			switch {
			case want == nil:
				if !bound || ct != nil {
					ok = false
				}
			default:
				if !bound || ct != want {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
