package containment

import (
	"fmt"

	"xamdb/internal/summary"
	"xamdb/internal/xam"
)

// Satisfiable reports S-satisfiability: p is S-unsatisfiable iff its
// canonical model is empty (Proposition 4.3.1's corollary).
func Satisfiable(p *xam.Pattern, s *summary.Summary) bool {
	return len(CanonicalModel(p, s)) > 0
}

// Contained decides p ⊆_S q (Definition 4.4.1) via Proposition 4.4.1 and its
// decorated/optional/attribute/nested extensions (§4.4).
func Contained(p, q *xam.Pattern, s *summary.Summary) (bool, error) {
	return ContainedInUnion(p, []*xam.Pattern{q}, s)
}

// Equivalent decides p ≡_S q by checking containment both ways (§4.4).
func Equivalent(p, q *xam.Pattern, s *summary.Summary) (bool, error) {
	ok, err := Contained(p, q, s)
	if err != nil || !ok {
		return false, err
	}
	return Contained(q, p, s)
}

// ContainedInUnion decides p ⊆_S q₁ ∪ … ∪ qₘ (Proposition 4.4.2 with the
// §4.4.2 value-formula condition): for every canonical tree of p there must
// be return-preserving embeddings of union members, and the tree's formulas
// must imply the disjunction of the embeddings' formulas.
func ContainedInUnion(p *xam.Pattern, qs []*xam.Pattern, s *summary.Summary) (bool, error) {
	ok, _, err := ContainedInUnionBounded(p, qs, s, 0)
	return ok, err
}

// ContainedInUnionBounded is ContainedInUnion with a cap on |mod_S(p)|
// (0 = unlimited). When the model exceeds the cap the check gives up,
// reporting truncated=true with ok=false — a sound "don't know" used by the
// rewriting search to skip pathological candidate plans.
func ContainedInUnionBounded(p *xam.Pattern, qs []*xam.Pattern, s *summary.Summary, max int) (bool, bool, error) {
	if len(qs) == 0 {
		return false, false, fmt.Errorf("containment: empty union")
	}
	var compatible []*xam.Pattern
	for _, q := range qs {
		ok, err := staticCompatible(p, q)
		if err != nil {
			return false, false, err
		}
		if ok {
			compatible = append(compatible, q)
		}
	}
	if len(compatible) == 0 {
		return false, false, nil
	}
	model, truncated := CanonicalModelBounded(p, s, max)
	if truncated {
		return false, true, nil
	}
	if len(model) == 0 {
		// Unsatisfiable patterns are contained in anything.
		return true, false, nil
	}
	for _, entry := range model {
		var cover []Box
		for _, q := range compatible {
			cover = append(cover, matchingBoxes(q, entry, s)...)
		}
		if len(cover) == 0 {
			return false, false, nil
		}
		if !BoxImplies(entryBox(entry), cover) {
			return false, false, nil
		}
	}
	return true, false, nil
}

// staticCompatible checks the structural preconditions that do not depend on
// the summary: equal return arity, identical attribute annotations on
// corresponding return nodes (Proposition 4.4.3 condition 1), and equal
// nesting depths (Proposition 4.4.4 condition 2a).
func staticCompatible(p, q *xam.Pattern) (bool, error) {
	pr, qr := p.ReturnNodes(), q.ReturnNodes()
	if len(pr) != len(qr) {
		return false, nil
	}
	for i := range pr {
		a, b := pr[i], qr[i]
		if (a.IDSpec != xam.NoID) != (b.IDSpec != xam.NoID) {
			return false, nil
		}
		if a.StoreTag != b.StoreTag || a.StoreVal != b.StoreVal || a.StoreCont != b.StoreCont {
			return false, nil
		}
		if NestDepth(p, a) != NestDepth(q, b) {
			return false, nil
		}
	}
	return true, nil
}

// matchingBoxes collects, for every embedding of q into the canonical tree
// whose return tuple and nesting sequences match the entry, the box of value
// constraints the embedding imposes (variables are tree node identities).
func matchingBoxes(q *xam.Pattern, entry *CanonTree, s *summary.Summary) []Box {
	qr := q.ReturnNodes()
	var out []Box
	for _, f := range patternEmbeddings(q, entry) {
		if !retAndNestMatch(q, qr, f, entry, s) {
			continue
		}
		box := Box{}
		for n, ct := range f {
			if ct == nil || !n.HasValuePred {
				continue
			}
			if g, ok := box[ct.ID]; ok {
				box[ct.ID] = g.And(n.ValuePred)
			} else {
				box[ct.ID] = n.ValuePred
			}
		}
		out = append(out, box)
	}
	return out
}

// entryBox renders the canonical tree's own decorations as a box.
func entryBox(entry *CanonTree) Box {
	box := Box{}
	for _, n := range entry.All {
		if n.HasFormula {
			box[n.ID] = n.Formula
		}
	}
	return box
}

func retAndNestMatch(q *xam.Pattern, qr []*xam.Node, f ctBinding, entry *CanonTree, s *summary.Summary) bool {
	for i, rn := range qr {
		ct, bound := f[rn]
		want := entry.RetNodes[i]
		if want == nil {
			if !bound || ct != nil {
				return false
			}
			continue
		}
		if !bound || ct != want {
			return false
		}
		ns := ctNestingSequence(q, rn, f)
		if !nestSeqCompatible(s, entry.NestSeq[i], ns) {
			return false
		}
	}
	return true
}

// ctNestingSequence computes ns(n, f) over a tree binding: summary numbers
// of the images of nest-edge ancestors, top-down (0 = ⊤).
func ctNestingSequence(q *xam.Pattern, n *xam.Node, f ctBinding) []int {
	var chain []*xam.Node
	for cur := n; cur != nil; cur = cur.Parent {
		chain = append(chain, cur)
	}
	var seq []int
	for i := len(chain) - 1; i >= 0; i-- {
		node := chain[i]
		e := incomingEdge(q, node)
		if e == nil || !e.Sem.Nested() {
			continue
		}
		if node.Parent == nil {
			seq = append(seq, 0)
		} else if ct := f[node.Parent]; ct != nil {
			seq = append(seq, ct.Path.Num)
		}
	}
	return seq
}

// nestSeqCompatible implements condition 2(b) of Proposition 4.4.4 with the
// one-to-one relaxation: sequences must have equal length and corresponding
// elements must be equal or connected by one-to-one edges only.
func nestSeqCompatible(s *summary.Summary, a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !oneToOneConnected(s, a[i], b[i]) {
			return false
		}
	}
	return true
}

// oneToOneConnected reports whether two summary nodes (0 = ⊤) are linked by
// a path made exclusively of one-to-one edges; nesting under either then
// groups identically (§4.4.5).
func oneToOneConnected(s *summary.Summary, a, b int) bool {
	if a == b {
		return true
	}
	// Normalize: 0 acts as the parent of the root over a one-to-one edge.
	nodeOf := func(num int) *summary.Node {
		if num == 0 {
			return nil
		}
		return s.NodeByNum(num)
	}
	na, nb := nodeOf(a), nodeOf(b)
	// Walk up from the deeper node towards the shallower over One edges.
	walkUp := func(from *summary.Node, to *summary.Node) bool {
		cur := from
		for cur != nil && cur != to {
			if cur.EdgeIn != summary.One {
				return false
			}
			cur = cur.Parent
		}
		return cur == to
	}
	switch {
	case na == nil:
		return walkUp(nb, nil)
	case nb == nil:
		return walkUp(na, nil)
	case na.AncestorOf(nb):
		return walkUp(nb, na)
	case nb.AncestorOf(na):
		return walkUp(na, nb)
	}
	return false
}

// PathAnnotations computes, for every pattern node, the set of summary paths
// it may embed to (Definition 4.3.1). Optional subtrees are annotated from
// the variants in which they are present.
func PathAnnotations(p *xam.Pattern, s *summary.Summary) map[*xam.Node][]*summary.Node {
	out := map[*xam.Node]map[int]*summary.Node{}
	for _, n := range p.Nodes() {
		out[n] = map[int]*summary.Node{}
	}
	// Treat every edge as mandatory except that optional subtrees may be
	// absent: enumerate with all-optional-erased masks like CanonicalModel.
	opts := optionalEdges(p)
	if len(opts) > maxOptionalEdges {
		opts = opts[:maxOptionalEdges]
	}
	for mask := 0; mask < 1<<len(opts); mask++ {
		erased := map[*xam.Edge]bool{}
		for i, e := range opts {
			if mask&(1<<i) != 0 {
				erased[e] = true
			}
		}
		if redundantMask(p, erased) {
			continue
		}
		for _, b := range strictEmbeddings(p, s, func(e *xam.Edge) bool { return erased[e] }) {
			for n, sn := range b {
				if sn != nil {
					out[n][sn.Num] = sn
				}
			}
		}
	}
	final := map[*xam.Node][]*summary.Node{}
	for n, m := range out {
		nodes := make([]*summary.Node, 0, len(m))
		for _, sn := range m {
			nodes = append(nodes, sn)
		}
		// Sort by path number for deterministic output.
		for i := 1; i < len(nodes); i++ {
			for j := i; j > 0 && nodes[j].Num < nodes[j-1].Num; j-- {
				nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
			}
		}
		final[n] = nodes
	}
	return final
}

// Checker caches the canonical model of one query pattern so that many
// candidate patterns can be tested against it cheaply (the rewriting search
// of Chapter 5 tests hundreds of candidates per query).
type Checker struct {
	S *summary.Summary
	Q *xam.Pattern

	model   []*CanonTree
	modeled bool
}

// NewChecker prepares a checker for q over s.
func NewChecker(s *summary.Summary, q *xam.Pattern) *Checker {
	return &Checker{S: s, Q: q}
}

// Model returns (computing once) mod_S(Q).
func (c *Checker) Model() []*CanonTree {
	if !c.modeled {
		c.model = CanonicalModel(c.Q, c.S)
		c.modeled = true
	}
	return c.model
}

// QContainedIn decides Q ⊆_S p using the cached model.
func (c *Checker) QContainedIn(p *xam.Pattern) (bool, error) {
	return c.QContainedInUnion([]*xam.Pattern{p})
}

// QContainedInUnion decides Q ⊆_S p₁ ∪ … ∪ pₘ using the cached model.
func (c *Checker) QContainedInUnion(ps []*xam.Pattern) (bool, error) {
	if len(ps) == 0 {
		return false, fmt.Errorf("containment: empty union")
	}
	var compatible []*xam.Pattern
	for _, p := range ps {
		ok, err := staticCompatible(c.Q, p)
		if err != nil {
			return false, err
		}
		if ok {
			compatible = append(compatible, p)
		}
	}
	if len(compatible) == 0 {
		return false, nil
	}
	model := c.Model()
	if len(model) == 0 {
		return true, nil
	}
	for _, entry := range model {
		var cover []Box
		for _, p := range compatible {
			cover = append(cover, matchingBoxes(p, entry, c.S)...)
		}
		if len(cover) == 0 {
			return false, nil
		}
		if !BoxImplies(entryBox(entry), cover) {
			return false, nil
		}
	}
	return true, nil
}

// Equivalent decides p ≡_S Q, testing the cheap cached direction first.
func (c *Checker) Equivalent(p *xam.Pattern) (bool, error) {
	ok, err := c.QContainedIn(p)
	if err != nil || !ok {
		return false, err
	}
	return Contained(p, c.Q, c.S)
}
