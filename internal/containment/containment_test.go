package containment

import (
	"testing"

	"xamdb/internal/summary"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
)

func sum(t *testing.T, src string) *summary.Summary {
	t.Helper()
	return summary.Build(xmltree.MustParse("t.xml", src))
}

func mustContained(t *testing.T, p, q string, s *summary.Summary, want bool) {
	t.Helper()
	got, err := Contained(xam.MustParse(p), xam.MustParse(q), s)
	if err != nil {
		t.Fatalf("Contained(%s, %s): %v", p, q, err)
	}
	if got != want {
		t.Fatalf("Contained(%s, %s) = %v, want %v", p, q, got, want)
	}
}

func TestSelfContainment(t *testing.T) {
	s := sum(t, `<a><b><c>x</c></b><b/><d><c>y</c></d></a>`)
	for _, src := range []string{
		`// c{id}`,
		`/ a(/ b{id}(/(o) c{id}))`,
		`// b{id}(/(nj) c{id, val})`,
		`// c{id, val=5}`,
		`// *{id}(/(s) c)`,
	} {
		p := xam.MustParse(src)
		ok, err := Contained(p, xam.MustParse(src), s)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !ok {
			t.Errorf("%s not contained in itself", src)
		}
	}
}

func TestSummaryEnablesContainment(t *testing.T) {
	// Every c is a child of b: //c ≡_S //b/c, though ⊄ in general.
	s := sum(t, `<a><b><c/></b><b><c/></b></a>`)
	mustContained(t, `// c{id}`, `// b(/ c{id})`, s, true)
	mustContained(t, `// b(/ c{id})`, `// c{id}`, s, true)

	// With a top-level c the containment breaks one way.
	s2 := sum(t, `<a><c/><b><c/></b></a>`)
	mustContained(t, `// c{id}`, `// b(/ c{id})`, s2, false)
	mustContained(t, `// b(/ c{id})`, `// c{id}`, s2, true)
}

func TestDescendantToChildTightening(t *testing.T) {
	// All e under a are at depth 2 via d: //a//e ≡_S //a/d/e.
	s := sum(t, `<a><d><e/></d></a>`)
	mustContained(t, `/ a(// e{id})`, `/ a(/ d(/ e{id}))`, s, true)
	mustContained(t, `/ a(/ d(/ e{id}))`, `/ a(// e{id})`, s, true)
}

func TestUnsatisfiablePattern(t *testing.T) {
	s := sum(t, `<a><b/></a>`)
	p := xam.MustParse(`// zebra{id}`)
	if Satisfiable(p, s) {
		t.Fatal("zebra must be unsatisfiable")
	}
	// Unsatisfiable patterns are contained in anything of compatible shape.
	mustContained(t, `// zebra{id}`, `// b{id}`, s, true)
	// A child-chain that the summary lacks is unsatisfiable too.
	if Satisfiable(xam.MustParse(`/ a(/ b(/ b{id}))`), s) {
		t.Fatal("b/b must be unsatisfiable")
	}
}

func TestCanonicalModelSizeWildcards(t *testing.T) {
	// Summary paths: /a, /a/b, /a/b/c, /a/c. Pattern //*{id} has one
	// canonical tree per element path.
	s := sum(t, `<a><b><c/></b><c/></a>`)
	model := CanonicalModel(xam.MustParse(`// *{id}`), s)
	if len(model) != 4 {
		t.Fatalf("|mod| = %d, want 4", len(model))
	}
	// A chain of two wildcards: (a,b), (a,c), (b,c) pairs.
	model2 := CanonicalModel(xam.MustParse(`// *(// *{id})`), s)
	if len(model2) != 3 {
		t.Fatalf("|mod| = %d, want 3", len(model2))
	}
}

func TestUnionContainmentRequired(t *testing.T) {
	// Summary with b reachable under x and under y; q1 covers x-side, q2
	// covers y-side; only the union contains p (the §5.3 observation that
	// unions enable rewritings).
	s := sum(t, `<a><x><b/></x><y><b/></y></a>`)
	p := xam.MustParse(`// b{id}`)
	q1 := xam.MustParse(`// x(/ b{id})`)
	q2 := xam.MustParse(`// y(/ b{id})`)
	ok, err := Contained(p, q1, s)
	if err != nil || ok {
		t.Fatalf("p ⊆ q1 should fail: %v %v", ok, err)
	}
	ok, err = ContainedInUnion(p, []*xam.Pattern{q1, q2}, s)
	if err != nil || !ok {
		t.Fatalf("p ⊆ q1 ∪ q2 should hold: %v %v", ok, err)
	}
}

func TestDecoratedContainment(t *testing.T) {
	s := sum(t, `<r><x>3</x></r>`)
	// v=3 ⇒ v≤5.
	mustContained(t, `// x{id, val=3}`, `// x{id, val<=5}`, s, true)
	// v≤5 ⇏ v=3.
	mustContained(t, `// x{id, val<=5}`, `// x{id, val=3}`, s, false)
	// Undecorated ⊄ decorated.
	mustContained(t, `// x{id}`, `// x{id, val<=5}`, s, false)
	// Decorated ⊆ undecorated.
	mustContained(t, `// x{id, val=3}`, `// x{id}`, s, true)
}

func TestDecoratedUnionSplit(t *testing.T) {
	// The §4.4.2 disjunction check: v=3 ⊆ (v≤5 ∪ v≥6); full domain is not.
	s := sum(t, `<r><x>3</x></r>`)
	p := xam.MustParse(`// x{id, val=3}`)
	full := xam.MustParse(`// x{id}`)
	lo := xam.MustParse(`// x{id, val<=5}`)
	hi := xam.MustParse(`// x{id, val>=6}`)
	ok, err := ContainedInUnion(p, []*xam.Pattern{lo, hi}, s)
	if err != nil || !ok {
		t.Fatalf("v=3 ⊆ union: %v %v", ok, err)
	}
	ok, err = ContainedInUnion(full, []*xam.Pattern{lo, hi}, s)
	if err != nil || ok {
		t.Fatalf("T ⊄ (v≤5 ∪ v≥6) over a dense domain: %v %v", ok, err)
	}
	// But v<7 ⊆ (v≤5 ∪ v>5).
	p2 := xam.MustParse(`// x{id, val<7}`)
	lo2 := xam.MustParse(`// x{id, val<=5}`)
	hi2 := xam.MustParse(`// x{id, val>5}`)
	ok, err = ContainedInUnion(p2, []*xam.Pattern{lo2, hi2}, s)
	if err != nil || !ok {
		t.Fatalf("v<7 ⊆ (v≤5 ∪ v>5): %v %v", ok, err)
	}
}

func TestOptionalContainment(t *testing.T) {
	s := sum(t, `<r><c><b/></c><c/></r>`)
	// The only children of c are b's, so optional-b and optional-* agree.
	mustContained(t, `// c{id}(/(o) b{id})`, `// c{id}(/(o) *{id})`, s, true)
	mustContained(t, `// c{id}(/(o) *{id})`, `// c{id}(/(o) b{id})`, s, true)
	// Optional is not contained in mandatory (the ⊥ tuple is missing).
	mustContained(t, `// c{id}(/(o) b{id})`, `// c{id}(/ b{id})`, s, false)
	// Mandatory ⊆ optional fails too: on the childless-c canonical tree the
	// optional pattern produces a ⊥ tuple the strict one does not — but for
	// the strict pattern's own model (which always includes b) the optional
	// pattern produces matching tuples, so strict ⊆ optional holds.
	mustContained(t, `// c{id}(/ b{id})`, `// c{id}(/(o) b{id})`, s, true)
}

func TestOptionalBotRule(t *testing.T) {
	// mod must not contain a ⊥ tuple when a match exists (§4.1 cond 3(b)).
	s := sum(t, `<r><c><b/></c></r>`)
	model := CanonicalModel(xam.MustParse(`// c{id}(/(o) b{id})`), s)
	for _, e := range model {
		if e.Ret[1] != 0 {
			continue
		}
		for _, n := range e.All {
			if n.Path.Label == "b" {
				t.Fatalf("⊥ return with b present in tree: %v", e.Ret)
			}
		}
	}
	// Every c has a b here, so exactly one canonical tree, with b bound.
	if len(model) != 1 || model[0].Ret[1] == 0 {
		t.Fatalf("model: %d entries", len(model))
	}
}

func TestOptionalUnmatchableSubtree(t *testing.T) {
	// The optional child's label is absent from the summary entirely: the
	// pattern is still satisfiable, returning ⊥ for it.
	s := sum(t, `<r><c/></r>`)
	p := xam.MustParse(`// c{id}(/(o) zebra{id})`)
	model := CanonicalModel(p, s)
	if len(model) != 1 || model[0].Ret[1] != 0 {
		t.Fatalf("model: %+v", model)
	}
	mustContained(t, `// c{id}(/(o) zebra{id})`, `// c{id}(/(o) zebra{id})`, s, true)
}

func TestAttributeAnnotationsMustMatch(t *testing.T) {
	s := sum(t, `<a><b>x</b></a>`)
	// Same annotations: contained (b ⊆ * under this summary).
	mustContained(t, `// b{id, val}`, `// *{id, val}`, s, true)
	// Different annotations on the return node: never contained.
	mustContained(t, `// b{id}`, `// b{val}`, s, false)
	mustContained(t, `// b{id, val}`, `// b{id}`, s, false)
	// Different return arity: never contained.
	mustContained(t, `// b{id}`, `/ a{id}(/ b{id})`, s, false)
}

func TestNestedContainment(t *testing.T) {
	s := sum(t, `<r><w><c><b/><b/></c></w></r>`)
	// Same nesting point: contained.
	mustContained(t, `// c{id}(/(nj) b{id})`, `// c{id}(/(nj) b{id})`, s, true)
	// Nested vs flat: static nest-depth mismatch.
	mustContained(t, `// c{id}(/(nj) b{id})`, `// c{id}(/ b{id})`, s, false)
	mustContained(t, `// c{id}(/ b{id})`, `// c{id}(/(nj) b{id})`, s, false)
}

func TestNestedOneToOneRelaxation(t *testing.T) {
	// w has exactly one c: nesting under w equals nesting under c.
	s := sum(t, `<r><w><c><b/><b/></c></w></r>`)
	if s.NodeByPath("/r/w/c").EdgeIn != summary.One {
		t.Fatal("precondition: w→c must be a one-to-one edge")
	}
	p := xam.MustParse(`// w{id}(/(nj) c(/ b{id}))`)
	q := xam.MustParse(`// w{id}(/ c(/(nj) b{id}))`)
	ok, err := Contained(p, q, s)
	if err != nil || !ok {
		t.Fatalf("one-to-one nest relaxation should allow containment: %v %v", ok, err)
	}
	// With multiple c under w, the relaxation must NOT apply.
	s2 := sum(t, `<r><w><c><b/></c><c><b/></c></w></r>`)
	if s2.NodeByPath("/r/w/c").EdgeIn == summary.One {
		t.Fatal("precondition: w→c must not be one-to-one")
	}
	ok, err = Contained(p, q, s2)
	if err != nil || ok {
		t.Fatalf("nest relaxation must fail without one-to-one edge: %v %v", ok, err)
	}
}

func TestPathAnnotations(t *testing.T) {
	s := sum(t, `<a><b><c/></b><c/></a>`)
	p := xam.MustParse(`// *{id}(/ c{id})`)
	ann := PathAnnotations(p, s)
	star := p.Nodes()[0]
	c := p.Nodes()[1]
	// * can be a (with child c) or b (with child c).
	if len(ann[star]) != 2 {
		t.Fatalf("star annotation: %v", ann[star])
	}
	if len(ann[c]) != 2 {
		t.Fatalf("c annotation: %v", ann[c])
	}
}

func TestMinimizeByContraction(t *testing.T) {
	// Every e lies under d: //a//d//e minimizes to //a//e … and further to
	// //e since a is the root.
	s := sum(t, `<a><d><e/></d></a>`)
	p := xam.MustParse(`// a(// d(// e{id}))`)
	min, err := MinimizeByContraction(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) == 0 {
		t.Fatal("no minimal pattern")
	}
	best := min[0]
	if best.Size() != 1 {
		t.Fatalf("minimal size = %d (%s), want 1", best.Size(), best)
	}
	for _, m := range min {
		eq, err := Equivalent(m, p, s)
		if err != nil || !eq {
			t.Fatalf("minimal %s not equivalent: %v", m, err)
		}
	}
}

func TestMinimizeKeepsDiscriminatingNodes(t *testing.T) {
	// Here d discriminates: there are e's outside d.
	s := sum(t, `<a><d><e/></d><e/></a>`)
	p := xam.MustParse(`// d(// e{id})`)
	min, err := MinimizeByContraction(p, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range min {
		if m.Size() < 2 {
			t.Fatalf("over-minimized to %s", m)
		}
	}
}

func TestSContractionRejectsNonConjunctive(t *testing.T) {
	if _, err := SContractions(xam.MustParse(`// a(/(o) b{id})`)); err == nil {
		t.Fatal("optional patterns must be rejected")
	}
}

func TestBoxImplies(t *testing.T) {
	v3 := Box{1: eq(3)}
	le5 := Box{1: le(5)}
	ge6 := Box{1: ge(6)}
	if !BoxImplies(v3, []Box{le5}) {
		t.Fatal("v=3 ⇒ v≤5")
	}
	if BoxImplies(le5, []Box{v3}) {
		t.Fatal("v≤5 ⇏ v=3")
	}
	if !BoxImplies(v3, []Box{ge6, le5}) {
		t.Fatal("union membership")
	}
	// Cross-variable: (x=3 ∧ y=4) ⊆ (x≤5) even though y unconstrained.
	b := Box{1: eq(3), 2: eq(4)}
	if !BoxImplies(b, []Box{le5}) {
		t.Fatal("projection implication")
	}
	// 2D split: (x∈[0,10], y∈[0,10]) ⊆ (x≤5) ∪ (x>5) holds;
	// ⊆ (x≤5, y≤5) ∪ (x>5) fails (corner x≤5,y>5 uncovered).
	sq := Box{1: ge(0).And(le10()), 2: ge(0).And(le10())}
	if !BoxImplies(sq, []Box{{1: le(5)}, {1: gt(5)}}) {
		t.Fatal("2D cover")
	}
	if BoxImplies(sq, []Box{{1: le(5), 2: le(5)}, {1: gt(5)}}) {
		t.Fatal("2D corner must be uncovered")
	}
	// Empty box implies anything.
	if !BoxImplies(Box{1: eq(1).And(eq(2))}, nil) {
		t.Fatal("empty box")
	}
}

func TestCanonTreeKeyStability(t *testing.T) {
	s := sum(t, `<a><b>1</b></a>`)
	m1 := CanonicalModel(xam.MustParse(`// b{id, val=1}`), s)
	m2 := CanonicalModel(xam.MustParse(`// b{id, val=1}`), s)
	if len(m1) != 1 || len(m2) != 1 || m1[0].Key() != m2[0].Key() {
		t.Fatal("keys must be deterministic")
	}
}

func TestStrongEdgeEnablesContainment(t *testing.T) {
	// Every c has exactly one b child (One edge): //c{id} is contained in
	// //c{id}(/(s) b) because the semijoin condition always holds on
	// conforming documents. Enhanced-summary constraints enable this.
	s := sum(t, `<r><c><b/></c><c><b/></c></r>`)
	if s.NodeByPath("/r/c/b").EdgeIn != summary.One {
		t.Fatal("precondition: c→b must be one-to-one")
	}
	mustContained(t, `// c{id}`, `// c{id}(/(s) b)`, s, true)
	// Without the guarantee the containment must fail.
	s2 := sum(t, `<r><c><b/></c><c/></r>`)
	mustContained(t, `// c{id}`, `// c{id}(/(s) b)`, s2, false)
}

func TestSiblingBranchesNotContainedInChain(t *testing.T) {
	// Regression for the canonical-tree construction: a pattern reaching
	// book and title through unrelated branches pairs every book with every
	// title — it must NOT be contained in the parent-child chain pattern,
	// even though both touch the same summary paths. The §4.3.1
	// construction keeps one chain per pattern edge, so the canonical tree
	// has separate book occurrences and the chain pattern cannot match.
	s := sum(t, `<bib><book><title>T1</title></book><book><title>T2</title></book></bib>`)
	p := xam.MustParse(`// *(/ book{id s}, // title{id s, val})`)
	q := xam.MustParse(`// book{id s}(/ title{id s, val})`)
	mustContained(t, p.String(), q.String(), s, false)
	// The chain is contained in the product, though.
	mustContained(t, q.String(), p.String(), s, true)
}

func TestOneToOneMergingSharesForcedNodes(t *testing.T) {
	// With exactly one book per bib (One edge), the branch pattern and the
	// chain pattern coincide on every conforming document: one-to-one chain
	// merging makes the containment hold.
	s := sum(t, `<bib><book><title>T1</title><title>T2</title></book></bib>`)
	if s.NodeByPath("/bib/book").EdgeIn != summary.One {
		t.Fatal("precondition: bib→book must be one-to-one")
	}
	p := xam.MustParse(`// *(/ book{id s}, // title{id s, val})`)
	q := xam.MustParse(`// book{id s}(/ title{id s, val})`)
	mustContained(t, p.String(), q.String(), s, true)
}

func TestSelfJoinStyleSemijoinBranches(t *testing.T) {
	// Two semijoin branches on the same path must not be confused with one:
	// //a[b][c] vs //a[b]: containment holds one way only when c exists
	// under every a... here a's may lack c.
	s := sum(t, `<r><a><b/><c/></a><a><b/></a></r>`)
	mustContained(t, `// a{id s}(/(s) b, /(s) c)`, `// a{id s}(/(s) b)`, s, true)
	mustContained(t, `// a{id s}(/(s) b)`, `// a{id s}(/(s) b, /(s) c)`, s, false)
}
