// Package snapshot defines a dataflow analyzer for the copy-on-write
// snapshot protocol (PR 4): values published through an
// atomic.Pointer[T] are immutable once published. Readers call Load and
// must treat the result as frozen; writers build a fresh value and
// publish it with Store under the owner's mutex.
//
// Three rules, checked per function with a may-taint analysis that tracks
// which locals are LOADED (came out of an atomic.Pointer.Load) and which
// are FRESH (built here via a composite literal or new):
//
//  1. No writes through a loaded snapshot: an assignment, compound
//     assignment or ++/-- whose target is reachable from a LOADED local
//     mutates state that concurrent readers share without locks.
//
//  2. No re-publication of a loaded snapshot: Store(x) where x is LOADED
//     republishes an aliased value — mutations to it (even later ones)
//     would be visible to readers of both generations.
//
//  3. Publication is locked: Store on an atomic.Pointer field of a
//     shared value must happen while a mutex may be held, or inside a
//     function following the *Locked naming convention (caller holds the
//     lock). Stores whose base value is itself FRESH are exempt — they
//     initialize a not-yet-published value (the AddDocument pattern).
//
// Writes inside nested function literals are analyzed against the
// literal's own dataflow, so a lazy-init closure passed to sync.Once.Do
// (the planEnv.rwOnce pattern) is not charged to the enclosing function.
package snapshot

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"xamdb/internal/lint/analysis"
)

// Analyzer reports mutations of atomic.Pointer snapshots and unlocked or
// aliased publications.
var Analyzer = &analysis.Analyzer{
	Name: "snapshot",
	Doc:  "atomic.Pointer payloads are immutable after Load; publish fresh values via Store under the owner's lock",
	Run:  run,
}

type taint int

const (
	tFresh taint = iota + 1
	tLoaded
)

type taintMap map[types.Object]taint

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		analysis.Functions(f, func(fi *analysis.FuncInfo) {
			checkFunc(pass, fi)
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fi *analysis.FuncInfo) {
	cfg := analysis.BuildCFG(fi.Body)

	// Held locks at each node (rule 3 consults them).
	lockFlow := analysis.LockFlow(pass.TypesInfo, cfg, false)
	heldAt := map[ast.Node]analysis.LockSet{}
	lockFlow.Before(lockFlow.Run(), func(held analysis.LockSet, n ast.Node) {
		heldAt[n] = held
	})

	flow := &analysis.Flow[taintMap]{
		CFG:      cfg,
		Entry:    taintMap{},
		Transfer: func(fact taintMap, n ast.Node) taintMap { return transfer(pass.TypesInfo, fact, n) },
		Join: func(a, b taintMap) taintMap {
			out := taintMap{}
			for k, v := range a {
				out[k] = v
			}
			for k, v := range b {
				if w, ok := out[k]; ok && w != v {
					out[k] = tLoaded // conflicting paths: assume shared
					continue
				}
				out[k] = v
			}
			return out
		},
		Equal: func(a, b taintMap) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if b[k] != v {
					return false
				}
			}
			return true
		},
	}
	flow.Before(flow.Run(), func(fact taintMap, n ast.Node) {
		if _, ok := n.(*ast.DeferStmt); ok {
			return
		}
		check(pass, fi, fact, heldAt[n], n)
	})
}

// transfer updates taints for the assignments inside one node.
func transfer(info *types.Info, fact taintMap, n ast.Node) taintMap {
	if _, ok := n.(*ast.DeferStmt); ok {
		return fact
	}
	out := fact
	cloned := false
	set := func(obj types.Object, t taint) {
		if !cloned {
			cloned = true
			c := make(taintMap, len(out)+1)
			for k, v := range out {
				c[k] = v
			}
			out = c
		}
		if t == 0 {
			delete(out, obj)
		} else {
			out[obj] = t
		}
	}
	analysis.Inspect(n, func(m ast.Node) bool {
		as, ok := m.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			// A 1:1 (or n:n) assignment transfers the rhs taint; tuple
			// assignments from one call kill it (conservative).
			var t taint
			if len(as.Rhs) == len(as.Lhs) {
				t = taintOf(info, as.Rhs[i])
			}
			set(obj, t)
		}
		return true
	})
	return out
}

// taintOf classifies one rhs expression: the result of an
// atomic.Pointer.Load is LOADED, a composite literal / &literal / new(T)
// is FRESH, everything else is untainted.
func taintOf(info *types.Info, e ast.Expr) taint {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CallExpr:
		if isPointerMethod(info, e, "Load") {
			return tLoaded
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return tFresh
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				return tFresh
			}
		}
	case *ast.CompositeLit:
		return tFresh
	}
	return 0
}

// isPointerMethod reports whether call is a method call named name on a
// sync/atomic.Pointer[T] receiver.
func isPointerMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := info.Types[sel.X].Type
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	return analysis.NamedType(t, "sync/atomic", "Pointer")
}

// baseIdent walks to the leftmost identifier of a selector/index chain.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func taintOfBase(info *types.Info, fact taintMap, e ast.Expr) taint {
	id := baseIdent(e)
	if id == nil {
		return 0
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return 0
	}
	return fact[obj]
}

func check(pass *analysis.Pass, fi *analysis.FuncInfo, fact taintMap, held analysis.LockSet, n ast.Node) {
	info := pass.TypesInfo
	analysis.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					continue // rebinding a local, not writing through it
				}
				if taintOfBase(info, fact, lhs) == tLoaded {
					pass.Reportf(lhs.Pos(),
						"write through a snapshot loaded from an atomic.Pointer; snapshots are immutable — build a fresh value and Store it")
				}
			}
		case *ast.IncDecStmt:
			if _, ok := ast.Unparen(m.X).(*ast.Ident); !ok {
				if taintOfBase(info, fact, m.X) == tLoaded {
					pass.Reportf(m.X.Pos(),
						"write through a snapshot loaded from an atomic.Pointer; snapshots are immutable — build a fresh value and Store it")
				}
			}
		case *ast.CallExpr:
			if !isPointerMethod(info, m, "Store") {
				return true
			}
			if len(m.Args) == 1 {
				if id, ok := ast.Unparen(m.Args[0]).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && fact[obj] == tLoaded {
						pass.Reportf(m.Pos(),
							"Store of a value loaded from an atomic.Pointer re-publishes an aliased snapshot; build a fresh value instead")
					}
				}
			}
			// Rule 3: locked publication, unless the base value is fresh
			// (initialization before publication) or the function follows
			// the *Locked convention.
			sel := ast.Unparen(m.Fun).(*ast.SelectorExpr)
			if taintOfBase(info, fact, sel.X) == tFresh {
				return true
			}
			if strings.HasSuffix(fi.Name(), "Locked") {
				return true
			}
			if len(held) == 0 {
				pass.Reportf(m.Pos(),
					"atomic.Pointer Store outside a locked publish path; hold the owner's mutex or publish from a *Locked function")
			}
		}
		return true
	})
}
