package snapshot_test

import (
	"testing"

	"xamdb/internal/lint/analysistest"
	"xamdb/internal/lint/snapshot"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata", snapshot.Analyzer, "snapshot_a")
}
