package errwrap_test

import (
	"testing"

	"xamdb/internal/lint/analysistest"
	"xamdb/internal/lint/errwrap"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata", errwrap.Analyzer, "errwrap_a")
}
