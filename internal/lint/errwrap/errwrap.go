// Package errwrap defines an analyzer enforcing %w error wrapping: a
// fmt.Errorf call that formats an error value must use the %w verb, so
// errors.Is / errors.As keep working across package boundaries — the
// persistence and fallback-cascade paths match on sentinel errors
// (context.DeadlineExceeded, faultinject.ErrInjected, storage corruption
// sentinels) and silently stop degrading gracefully when a %v wrap breaks
// the chain.
package errwrap

import (
	"go/ast"
	"go/token"
	"go/types"

	"xamdb/internal/lint/analysis"
)

// Analyzer reports fmt.Errorf calls that format an error argument with a
// verb other than %w, and error arguments flattened through err.Error().
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf with an error argument must wrap it with %w so errors.Is/errors.As see the chain",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !analysis.IsFunc(analysis.Callee(pass.TypesInfo, call), "fmt", "Errorf") {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				return true // dynamic format string; nothing to verify
			}
			format, err := formatValue(lit)
			if err {
				return true
			}
			uses, ok := parseVerbs(format)
			if !ok {
				return true // explicit argument indexes; stay conservative
			}
			for _, u := range uses {
				i := 1 + u.argIndex
				if i >= len(call.Args) {
					continue // malformed call; go vet's department
				}
				arg := call.Args[i]
				t := pass.TypesInfo.Types[arg].Type
				switch {
				case u.verb == 'w':
					// Correct wrapping.
				case t != nil && analysis.ImplementsError(t):
					pass.Reportf(arg.Pos(),
						"error formatted with %%%c loses the error chain; use %%w", u.verb)
				case flattensError(pass.TypesInfo, arg):
					pass.Reportf(arg.Pos(),
						"err.Error() flattens the error chain; pass the error itself with %%w")
				}
			}
			return true
		})
	}
	return nil
}

// flattensError reports whether arg is a call to the Error() method of an
// error value.
func flattensError(info *types.Info, arg ast.Expr) bool {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	recv := info.Types[sel.X].Type
	return recv != nil && analysis.ImplementsError(recv)
}

// formatValue unquotes a string literal; err is true when it is not a
// plain string literal.
func formatValue(lit *ast.BasicLit) (string, bool) {
	if lit.Kind != token.STRING {
		return "", true
	}
	s := lit.Value
	if len(s) >= 2 && (s[0] == '"' || s[0] == '`') {
		return s[1 : len(s)-1], false
	}
	return "", true
}

type verbUse struct {
	verb     rune
	argIndex int
}

// parseVerbs extracts the argument-consuming verbs of a format string in
// order. Returns ok=false for formats with explicit argument indexes
// ("%[2]v"), which the analyzer does not model.
func parseVerbs(format string) ([]verbUse, bool) {
	var uses []verbUse
	arg := 0
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i < len(rs) && rs[i] == '%' {
			continue
		}
		// flags, width, precision; '*' consumes an argument.
		for i < len(rs) {
			c := rs[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				arg++
				i++
				continue
			}
			if c == '#' || c == '0' || c == '-' || c == ' ' || c == '+' ||
				c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(rs) {
			break
		}
		uses = append(uses, verbUse{verb: rs[i], argIndex: arg})
		arg++
	}
	return uses, true
}
