package ctxdrain_test

import (
	"testing"

	"xamdb/internal/lint/analysistest"
	"xamdb/internal/lint/ctxdrain"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata", ctxdrain.Analyzer, "ctxdrain_a")
}
