// Package ctxdrain defines an analyzer enforcing the engine's cancellation
// contract (PR 1): wherever a context.Context is in scope, physical
// iterators must be drained through physical.DrainContext (or polled with
// ctx.Err checks), never through the raw physical.Drain or a bare
// for-Next loop — those run to completion after the deadline has passed,
// which is exactly the bug class the Checkpoint/DrainContext protocol
// exists to prevent.
package ctxdrain

import (
	"go/ast"
	"go/types"

	"xamdb/internal/lint/analysis"
)

const (
	physicalPath = "xamdb/internal/physical"
	rewritePath  = "xamdb/internal/rewrite"
)

// Analyzer reports context-blind drains: physical.Drain calls,
// rewrite.ExecutePhysical calls, and bare Next loops over
// physical.Iterator values, in any function with a context.Context in
// scope. The physical package itself (which implements the protocol) is
// exempt.
var Analyzer = &analysis.Analyzer{
	Name: "ctxdrain",
	Doc:  "with a context.Context in scope, drain physical iterators via DrainContext/Checkpoint, not Drain or bare Next loops",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == physicalPath {
		return nil
	}
	ctxObj := pass.ImportedObject("context", "Context")
	if ctxObj == nil {
		return nil // no context in the package, nothing can be in scope
	}
	var iterIface *types.Interface
	if obj := pass.ImportedObject(physicalPath, "Iterator"); obj != nil {
		iterIface, _ = obj.Type().Underlying().(*types.Interface)
	}
	for _, f := range pass.Files {
		w := &walker{pass: pass, iter: iterIface}
		w.walk(f)
	}
	return nil
}

// walker tracks the set of context.Context parameters of the enclosing
// function stack while visiting a file.
type walker struct {
	pass *analysis.Pass
	iter *types.Interface
	ctxs []types.Object // in-scope context parameters, outermost first
}

func (w *walker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return false
			}
			w.enter(n.Type, n.Body)
			return false
		case *ast.FuncLit:
			w.enter(n.Type, n.Body)
			return false
		case *ast.CallExpr:
			w.checkCall(n)
		case *ast.ForStmt:
			w.checkLoop(n, n.Body, n.Cond, n.Post)
		case *ast.RangeStmt:
			w.checkLoop(n, n.Body, nil, nil)
		}
		return true
	})
}

// enter pushes a function's context parameters and walks its body.
func (w *walker) enter(ft *ast.FuncType, body *ast.BlockStmt) {
	n := len(w.ctxs)
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			t := w.pass.TypesInfo.Types[field.Type].Type
			if !analysis.NamedType(t, "context", "Context") {
				continue
			}
			if len(field.Names) == 0 {
				// Unnamed context parameter: in scope but unreferencable;
				// a sentinel object still arms the checks.
				w.ctxs = append(w.ctxs, types.NewParam(field.Pos(), w.pass.Pkg, "_", t))
				continue
			}
			for _, name := range field.Names {
				if obj := w.pass.TypesInfo.Defs[name]; obj != nil {
					w.ctxs = append(w.ctxs, obj)
				}
			}
		}
	}
	w.walk(body)
	w.ctxs = w.ctxs[:n]
}

func (w *walker) checkCall(call *ast.CallExpr) {
	if len(w.ctxs) == 0 {
		return
	}
	obj := analysis.Callee(w.pass.TypesInfo, call)
	switch {
	case analysis.IsFunc(obj, physicalPath, "Drain"):
		w.pass.Reportf(call.Pos(),
			"physical.Drain ignores the in-scope context; use physical.DrainContext(ctx, it)")
	case analysis.IsFunc(obj, rewritePath, "ExecutePhysical"):
		w.pass.Reportf(call.Pos(),
			"rewrite.ExecutePhysical ignores the in-scope context; use rewrite.ExecutePhysicalContext(ctx, plan, env)")
	}
}

// checkLoop flags a loop that pulls Next() from a physical.Iterator while
// never consulting the in-scope context. Loops over *physical.Checkpoint
// are exempt: the checkpoint polls the context itself.
func (w *walker) checkLoop(loop ast.Node, parts ...ast.Node) {
	if len(w.ctxs) == 0 || w.iter == nil {
		return
	}
	drains := false
	safe := false
	for _, part := range parts {
		if part == nil {
			continue
		}
		ast.Inspect(part, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
				// Nested loops are checked on their own; function literals
				// run on their own schedule.
				return false
			case *ast.Ident:
				if obj := w.pass.TypesInfo.Uses[n]; obj != nil {
					for _, c := range w.ctxs {
						if obj == c {
							safe = true // the loop consults ctx somehow
						}
					}
				}
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Next" && len(n.Args) == 0 {
					recv := w.pass.TypesInfo.Types[sel.X].Type
					if recv == nil {
						return true
					}
					if analysis.NamedType(deref(recv), physicalPath, "Checkpoint") {
						safe = true // checkpoints poll the context per Next
						return true
					}
					if types.Implements(recv, w.iter) ||
						types.Implements(types.NewPointer(recv), w.iter) {
						drains = true
					}
				}
				if analysis.IsFunc(analysis.Callee(w.pass.TypesInfo, n), physicalPath, "DrainContext") {
					safe = true
				}
			}
			return true
		})
	}
	if drains && !safe {
		w.pass.Reportf(loop.Pos(),
			"loop drains a physical.Iterator without consulting the in-scope context; use physical.DrainContext or check ctx.Err() in the loop")
	}
}

func deref(t types.Type) types.Type {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
