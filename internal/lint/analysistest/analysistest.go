// Package analysistest runs a lint analyzer over fixture packages and
// checks its diagnostics against expectations embedded in the fixtures,
// mirroring golang.org/x/tools/go/analysis/analysistest (which the
// offline build cannot depend on).
//
// An expectation is a trailing comment of the form
//
//	physical.Drain(it) // want "use physical.DrainContext"
//
// where each quoted string is a regular expression that must match one
// diagnostic reported on that line. Lines without a want-comment must
// produce no diagnostics. Fixtures live under <testdata>/src/<pkg>/ and
// may import real module packages (e.g. xamdb/internal/physical).
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"xamdb/internal/lint/analysis"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package under testdata/src and applies the
// analyzer, reporting mismatches between diagnostics and want-comments
// through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, pkgName := range pkgs {
		dir := filepath.Join(testdata, "src", pkgName)
		pkg, err := loader.LoadDir(dir, pkgName)
		if err != nil {
			t.Errorf("analysistest: load %s: %v", pkgName, err)
			continue
		}
		diags, err := analysis.Run(loader.Fset, pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("analysistest: run %s on %s: %v", a.Name, pkgName, err)
			continue
		}
		checkPackage(t, loader.Fset, pkg, diags)
	}
}

func checkPackage(t *testing.T, fset *token.FileSet, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	// file -> line -> pending expectations.
	wants := map[string]map[int][]*expectation{}
	for _, f := range pkg.Files {
		collectWants(fset, f, wants)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		exps := wants[pos.Filename][pos.Line]
		found := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for file, lines := range wants {
		for line, exps := range lines {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, e.raw)
				}
			}
		}
	}
}

func collectWants(fset *token.FileSet, f *ast.File, wants map[string]map[int][]*expectation) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
				pat := strings.ReplaceAll(q[1], `\"`, `"`)
				re, err := regexp.Compile(pat)
				if err != nil {
					// Surface the broken pattern as an unmatchable expectation.
					re = regexp.MustCompile(regexp.QuoteMeta("BAD WANT REGEXP: " + pat))
				}
				if wants[pos.Filename] == nil {
					wants[pos.Filename] = map[int][]*expectation{}
				}
				wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line],
					&expectation{re: re, raw: q[1]})
			}
		}
	}
}
