package nopanic_test

import (
	"testing"

	"xamdb/internal/lint/analysistest"
	"xamdb/internal/lint/nopanic"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata", nopanic.Analyzer, "nopanic_a")
}
