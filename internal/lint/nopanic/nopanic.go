// Package nopanic defines an analyzer keeping panics out of library code:
// packages under internal/ must return errors on data-dependent failure
// paths instead of panicking, so that one bad document, query or store
// cannot take down a process serving many. Three idioms remain legal:
//
//   - constant-argument panics (panic("unreachable")) — invariant
//     assertions, not data-dependent failures;
//   - exported Must* helpers (MustParse), where the caller explicitly
//     opts into panic-on-error;
//   - re-raises inside a function that calls recover() — the
//     recover-filter-repanic pattern used by DrainContext.
//
// Command packages (cmd/, examples/) and the faultinject package (whose
// purpose is injecting panics) are out of scope. Anything else needs an
// explicit, reasoned //xamlint:allow nopanic(...) directive.
package nopanic

import (
	"go/ast"
	"go/types"
	"strings"

	"xamdb/internal/lint/analysis"
)

// Analyzer reports data-dependent panics in library packages.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "library packages must return errors, not panic, on data-dependent paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if exemptPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil && strings.HasPrefix(fd.Name.Name, "Must") {
				continue // conventional panic-on-error wrapper
			}
			check(pass, fd.Body)
		}
	}
	return nil
}

func exemptPackage(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "cmd" || seg == "examples" {
			return true
		}
	}
	return path == "xamdb/internal/faultinject"
}

// check walks one function body. Panics are reported unless the argument
// is a compile-time constant or the innermost enclosing function also
// calls recover (the re-raise pattern).
func check(pass *analysis.Pass, body *ast.BlockStmt) {
	reraise := callsRecover(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			check(pass, n.Body) // own recover scope
			return false
		case *ast.CallExpr:
			if !isBuiltin(pass.TypesInfo, n, "panic") || len(n.Args) != 1 {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[n.Args[0]]; ok && tv.Value != nil {
				return true // constant argument: invariant assertion
			}
			if reraise {
				return true
			}
			pass.Reportf(n.Pos(),
				"data-dependent panic in library code; return an error (or document an invariant with a constant panic message)")
		}
		return true
	})
}

// callsRecover reports whether the function body calls recover() outside
// of nested function literals.
func callsRecover(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isBuiltin(pass.TypesInfo, n, "recover") {
				found = true
			}
		}
		return true
	})
	return found
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
