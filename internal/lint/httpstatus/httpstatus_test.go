package httpstatus_test

import (
	"testing"

	"xamdb/internal/lint/analysistest"
	"xamdb/internal/lint/httpstatus"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata", httpstatus.Analyzer, "httpstatus_a")
}
