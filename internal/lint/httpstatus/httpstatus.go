// Package httpstatus defines a dataflow analyzer for the HTTP surface's
// status discipline (PR 6): handlers only write statuses from the
// documented map, and any path that can produce 429 (shed) or 503
// (draining/not ready) must arrange a Retry-After header — overload is a
// documented, machine-actionable signal, not an error soup.
//
// Statuses reaching w.WriteHeader or http.Error must be provable
// constants: either literal/named constants at the call, or locals only
// ever assigned constants (the handleQuery `status` switch shape). The
// analyzer runs a may dataflow analysis that tracks the possible constant
// values of int locals, plus whether a Header().Set("Retry-After", ...)
// call exists on some path into the write. A write whose value cannot be
// proven, or that includes a status outside the documented map, or that
// may send 429/503 without any Retry-After path, is reported.
package httpstatus

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"xamdb/internal/lint/analysis"
)

// Analyzer reports undocumented, unprovable, or Retry-After-less status
// writes.
var Analyzer = &analysis.Analyzer{
	Name: "httpstatus",
	Doc:  "handlers write only documented HTTP statuses; 429/503 paths must set Retry-After",
	Run:  run,
}

// allowedStatuses is the documented response map of the serve package:
// 200 OK, 400 bad request, 405 method, 413 body too large, 422 query
// failed, 429 shed, 499 client closed, 500 internal, 503
// draining/not-ready, 504 deadline.
var allowedStatuses = map[int64]bool{
	200: true, 400: true, 405: true, 413: true, 422: true,
	429: true, 499: true, 500: true, 503: true, 504: true,
}

// codes is the may-set of constant values one int local can hold; any
// marks a value the analysis cannot bound.
type codes struct {
	any  bool
	vals map[int64]bool
}

type fact struct {
	vars       map[types.Object]codes
	retryAfter bool // Header().Set("Retry-After", ...) on some path
}

func run(pass *analysis.Pass) error {
	rwObj := pass.ImportedObject("net/http", "ResponseWriter")
	if rwObj == nil {
		return nil // package has no HTTP surface
	}
	rwIface, _ := rwObj.Type().Underlying().(*types.Interface)
	if rwIface == nil {
		return nil
	}
	for _, f := range pass.Files {
		analysis.Functions(f, func(fi *analysis.FuncInfo) {
			checkFunc(pass, rwIface, fi)
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, rwIface *types.Interface, fi *analysis.FuncInfo) {
	// Cheap pre-scan: only analyze functions that write a status.
	found := false
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && statusArg(pass.TypesInfo, rwIface, call) != nil {
			found = true
		}
		return !found
	})
	if !found {
		return
	}

	cfg := analysis.BuildCFG(fi.Body)
	flow := &analysis.Flow[fact]{
		CFG:   cfg,
		Entry: fact{vars: map[types.Object]codes{}},
		Transfer: func(f fact, n ast.Node) fact {
			return transfer(pass.TypesInfo, f, n)
		},
		Join:  join,
		Equal: equal,
	}
	flow.Before(flow.Run(), func(f fact, n ast.Node) {
		if _, ok := n.(*ast.DeferStmt); ok {
			return
		}
		analysis.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			arg := statusArg(pass.TypesInfo, rwIface, call)
			if arg == nil {
				return true
			}
			cs := valuesOf(pass.TypesInfo, f, arg)
			switch {
			case cs.any:
				pass.Reportf(call.Pos(),
					"status is not provably a constant from the documented map; assign only documented constants to it")
			default:
				var bad []string
				needsRetry := false
				for v := range cs.vals {
					if !allowedStatuses[v] {
						bad = append(bad, strconv.FormatInt(v, 10))
					}
					if v == 429 || v == 503 {
						needsRetry = true
					}
				}
				if len(bad) > 0 {
					sort.Strings(bad)
					pass.Reportf(call.Pos(),
						"status %s is outside the documented map (200,400,405,413,422,429,499,500,503,504)", strings.Join(bad, ","))
				}
				if needsRetry && !f.retryAfter {
					pass.Reportf(call.Pos(),
						"429/503 response without a Retry-After header on any path; overload must carry a machine-actionable backoff")
				}
			}
			return true
		})
	})
}

// statusArg returns the status expression of a w.WriteHeader(code) or
// http.Error(w, msg, code) call, or nil.
func statusArg(info *types.Info, rwIface *types.Interface, call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "WriteHeader" && len(call.Args) == 1 {
		if t := info.Types[sel.X].Type; t != nil {
			if types.Implements(t, rwIface) || types.Implements(types.NewPointer(t), rwIface) {
				return call.Args[0]
			}
		}
	}
	if analysis.IsFunc(analysis.Callee(info, call), "net/http", "Error") && len(call.Args) == 3 {
		return call.Args[2]
	}
	return nil
}

// isRetryAfterSet matches Header().Set/Add("Retry-After", ...).
func isRetryAfterSet(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Set" && sel.Sel.Name != "Add") || len(call.Args) != 2 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return strings.EqualFold(constant.StringVal(tv.Value), "Retry-After")
}

func transfer(info *types.Info, f fact, n ast.Node) fact {
	if _, ok := n.(*ast.DeferStmt); ok {
		return f
	}
	out := f
	cloned := false
	mutate := func() {
		if !cloned {
			cloned = true
			vars := make(map[types.Object]codes, len(f.vars)+1)
			for k, v := range f.vars {
				vars[k] = v
			}
			out = fact{vars: vars, retryAfter: out.retryAfter}
		}
	}
	analysis.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if isRetryAfterSet(info, m) && !out.retryAfter {
				mutate()
				out.retryAfter = true
			}
		case *ast.AssignStmt:
			for i, lhs := range m.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || !isIntLike(obj.Type()) {
					continue
				}
				c := codes{any: true}
				if len(m.Rhs) == len(m.Lhs) && (m.Tok == token.ASSIGN || m.Tok == token.DEFINE) {
					if tv, ok := info.Types[m.Rhs[i]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
						if v, exact := constant.Int64Val(tv.Value); exact {
							c = codes{vals: map[int64]bool{v: true}}
						}
					}
				}
				mutate()
				out.vars[obj] = c
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(m.X).(*ast.Ident); ok {
				obj := info.Uses[id]
				if obj != nil && isIntLike(obj.Type()) {
					mutate()
					out.vars[obj] = codes{any: true}
				}
			}
		}
		return true
	})
	return out
}

func isIntLike(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// valuesOf bounds the possible values of the status expression.
func valuesOf(info *types.Info, f fact, e ast.Expr) codes {
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, exact := constant.Int64Val(tv.Value); exact {
			return codes{vals: map[int64]bool{v: true}}
		}
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			if c, ok := f.vars[obj]; ok {
				return c
			}
		}
	}
	return codes{any: true}
}

func join(a, b fact) fact {
	vars := make(map[types.Object]codes, len(a.vars))
	for k, v := range a.vars {
		vars[k] = v
	}
	for k, v := range b.vars {
		w, ok := vars[k]
		if !ok {
			vars[k] = v
			continue
		}
		vars[k] = joinCodes(w, v)
	}
	return fact{vars: vars, retryAfter: a.retryAfter || b.retryAfter}
}

func joinCodes(a, b codes) codes {
	if a.any || b.any {
		return codes{any: true}
	}
	vals := make(map[int64]bool, len(a.vals)+len(b.vals))
	for v := range a.vals {
		vals[v] = true
	}
	for v := range b.vals {
		vals[v] = true
	}
	return codes{vals: vals}
}

func equal(a, b fact) bool {
	if a.retryAfter != b.retryAfter || len(a.vars) != len(b.vars) {
		return false
	}
	for k, v := range a.vars {
		w, ok := b.vars[k]
		if !ok || v.any != w.any || len(v.vals) != len(w.vals) {
			return false
		}
		for x := range v.vals {
			if !w.vals[x] {
				return false
			}
		}
	}
	return true
}
