// Package lockorder defines a dataflow analyzer for the engine's locking
// protocol (PRs 4–6). Three rules, all checked per function over the CFG
// with a may-held lock analysis (analysis.LockFlow):
//
//  1. Acquisition order. Engine.mu is the coarse registry lock and
//     docState.mu the per-document publication lock; the documented order
//     is Engine.mu before docState.mu. Acquiring a lock of an earlier
//     level while one of a later level may be held is an inversion and is
//     reported. Levels are matched by type and field name ("Engine.mu",
//     "docState.mu") so the rule also binds fixture and future packages
//     that copy the shape.
//
//  2. Balance. A lock acquired in a function must be released on every
//     path out of it — by a deferred unlock, or by explicit unlocks
//     dominating every return. A lock still (possibly) held at function
//     exit with no deferred unlock for it is reported at the acquisition
//     site. Acquiring a lock that may already be held is likewise
//     reported (self-deadlock for plain mutexes).
//
//  3. No blocking under a lock. While a lock may be held, the function
//     must not perform channel operations (send, receive, range over a
//     channel, blocking select arms) or call the admission controller's
//     blocking entry points (Controller.Do, Controller.Drain) — those
//     can block indefinitely and extend the critical section without
//     bound. Select communications with a default case cannot block and
//     are exempt (the admission controller's reserve-under-lock uses
//     exactly this shape).
//
// Functions whose name ends in "Locked" follow the repo convention that
// the caller holds the lock; they are still checked (the analysis simply
// starts from an empty held set, so their internal acquisitions obey the
// same rules).
package lockorder

import (
	"go/ast"
	"go/types"
	"strings"

	"xamdb/internal/lint/analysis"
)

const admissionPath = "xamdb/internal/admission"

// Analyzer reports lock-order inversions, unbalanced or double
// acquisitions, and blocking operations performed under a lock.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "enforce Engine.mu→docState.mu order, balanced unlocks on every path, and no blocking ops under a lock",
	Run:  run,
}

// lockLevels orders the named locks of the engine's protocol. Lower
// levels are acquired first; keys are ".Type.field" suffixes of
// analysis.LockKey. Locks outside the table are unordered (only rules 2
// and 3 apply to them).
var lockLevels = []string{
	".Engine.mu",   // level 0: engine registry lock
	".docState.mu", // level 1: per-document publication lock
}

func levelOf(k analysis.LockKey) int {
	for i, suffix := range lockLevels {
		if strings.HasSuffix(string(k), suffix) {
			return i
		}
	}
	return -1
}

// shortKey trims the package path off a LockKey for diagnostics.
func shortKey(k analysis.LockKey) string {
	s := string(k)
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	if i := strings.Index(s, "."); i >= 0 {
		s = s[i+1:]
	}
	return s
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		analysis.Functions(f, func(fi *analysis.FuncInfo) {
			checkFunc(pass, fi)
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fi *analysis.FuncInfo) {
	cfg := analysis.BuildCFG(fi.Body)
	flow := analysis.LockFlow(pass.TypesInfo, cfg, false /* may */)
	in := flow.Run()

	flow.Before(in, func(held analysis.LockSet, n ast.Node) {
		if _, ok := n.(*ast.DeferStmt); ok {
			return // deferred unlocks run at exit; DeferredUnlocks models them
		}
		for _, op := range analysis.MutexOps(pass.TypesInfo, n) {
			if op.Release {
				if _, ok := held[op.Key]; !ok {
					pass.Reportf(op.Call.Pos(),
						"unlock of %s which is not held on any path here", shortKey(op.Key))
				}
				continue
			}
			if _, ok := held[op.Key]; ok {
				pass.Reportf(op.Call.Pos(),
					"%s may already be held here; second acquisition self-deadlocks", shortKey(op.Key))
			}
			lv := levelOf(op.Key)
			if lv < 0 {
				continue
			}
			for k := range held {
				if hl := levelOf(k); hl > lv {
					pass.Reportf(op.Call.Pos(),
						"lock order inversion: acquiring %s while %s may be held (documented order: %s before %s)",
						shortKey(op.Key), shortKey(k), shortKey(op.Key), shortKey(k))
				}
			}
		}
		if len(held) > 0 {
			checkBlocking(pass, cfg, held, n)
		}
	})

	// Balance: locks that may still be held at function exit, net of
	// deferred unlocks, were acquired without a release on some path.
	deferred := analysis.DeferredUnlocks(pass.TypesInfo, cfg)
	for k, info := range in[cfg.Exit] {
		if deferred[k] {
			continue
		}
		pass.Reportf(info.Pos,
			"%s may still be held at function exit; unlock on every path or defer the unlock", shortKey(k))
	}
}

// checkBlocking reports channel operations and admission-controller calls
// performed while a lock may be held.
func checkBlocking(pass *analysis.Pass, cfg *analysis.CFG, held analysis.LockSet, n ast.Node) {
	if cfg.NonBlocking[n] {
		return // comm clause of a select with a default: cannot block
	}
	report := func(pos ast.Node, what string) {
		var any analysis.LockKey
		for k := range held {
			any = k
			break
		}
		pass.Reportf(pos.Pos(), "%s while %s may be held; blocking under a lock extends the critical section unboundedly",
			what, shortKey(any))
	}
	if rs, ok := n.(*ast.RangeStmt); ok {
		if t := pass.TypesInfo.Types[rs.X].Type; t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				report(rs, "range over channel")
			}
		}
		return
	}
	analysis.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.SendStmt:
			report(m, "channel send")
		case *ast.UnaryExpr:
			if m.Op.String() == "<-" {
				report(m, "channel receive")
			}
		case *ast.CallExpr:
			obj := analysis.Callee(pass.TypesInfo, m)
			if isBlockingAdmissionCall(obj) {
				report(m, "admission."+obj.Name()+" call")
			}
		}
		return true
	})
}

// isBlockingAdmissionCall matches the admission controller's blocking
// entry points: Controller.Do (queues and waits for the query to run) and
// Controller.Drain (waits for in-flight work).
func isBlockingAdmissionCall(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Name() != "Do" && fn.Name() != "Drain" {
		return false
	}
	if fn.Pkg().Path() != admissionPath {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Name() == "Controller"
}
