package lockorder_test

import (
	"testing"

	"xamdb/internal/lint/analysistest"
	"xamdb/internal/lint/lockorder"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata", lockorder.Analyzer, "lockorder_a")
}
