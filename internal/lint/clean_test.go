package lint

import (
	"strings"
	"testing"

	"xamdb/internal/lint/analysis"
)

// TestRepoClean runs the whole analyzer suite over every package of the
// module and fails on any diagnostic, making the enforced invariants part
// of the tier-1 `go test ./...` gate — a contract regression fails the
// build before it can fail at runtime.
func TestRepoClean(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.ModuleDirs()
	if err != nil {
		t.Fatal(err)
	}
	suite := Analyzers()
	total := 0
	for _, dir := range dirs {
		path, err := loader.PathForDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		diags, err := analysis.Run(loader.Fset, pkg, suite)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			t.Errorf("%s:%d:%d: %s: %s", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
		}
		total += len(diags)
	}
	if total == 0 {
		t.Logf("suite clean over %d packages: %s", len(dirs), names(suite))
	}
}

func names(as []*analysis.Analyzer) string {
	var ns []string
	for _, a := range as {
		ns = append(ns, a.Name)
	}
	return strings.Join(ns, ", ")
}
