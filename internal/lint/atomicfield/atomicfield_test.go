package atomicfield_test

import (
	"testing"

	"xamdb/internal/lint/analysistest"
	"xamdb/internal/lint/atomicfield"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata", atomicfield.Analyzer, "atomicfield_a")
}
