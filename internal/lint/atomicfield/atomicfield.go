// Package atomicfield defines an analyzer for the classic mixed-access
// race: a variable or struct field that is accessed through the legacy
// sync/atomic functions (atomic.AddInt64(&x.n, 1), atomic.LoadInt64,
// ...) anywhere in a package must never be read or written plainly
// elsewhere in that package — the plain access races with the atomic
// ones, and the race detector only catches it when both sides actually
// collide under test.
//
// The analyzer collects every field and package-level variable whose
// address is passed to a sync/atomic function, then reports every other
// plain use of those objects. Composite-literal keys are exempt: they
// initialize a value that is not yet shared (and the typed atomics —
// atomic.Int64, atomic.Pointer[T] — make the whole class unrepresentable;
// this analyzer exists to keep the legacy style from creeping back in
// mixed form).
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"xamdb/internal/lint/analysis"
)

// Analyzer reports plain accesses to variables that are elsewhere
// accessed through sync/atomic functions.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "a field accessed via sync/atomic functions must never be read or written plainly",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Pass 1: objects whose address flows into a sync/atomic call, and
	// the exact selector/ident nodes inside those calls (exempt later).
	atomicUse := map[types.Object]token.Pos{}
	inAtomicArg := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isLegacyAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				target := ast.Unparen(u.X)
				var obj types.Object
				switch t := target.(type) {
				case *ast.SelectorExpr:
					obj = info.Uses[t.Sel]
				case *ast.Ident:
					obj = info.Uses[t]
				}
				v, ok := obj.(*types.Var)
				if !ok {
					continue
				}
				if !v.IsField() && !isPackageLevel(v) {
					continue // a local: unshareable without also flagging the alias
				}
				if _, seen := atomicUse[v]; !seen {
					atomicUse[v] = call.Pos()
				}
				inAtomicArg[target] = true
			}
			return true
		})
	}
	if len(atomicUse) == 0 {
		return nil
	}

	// Pass 2: every other use of those objects is a plain access.
	for _, f := range pass.Files {
		handledSel := map[*ast.Ident]bool{}
		litKeys := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							litKeys[id] = true
						}
					}
				}
			case *ast.SelectorExpr:
				handledSel[n.Sel] = true
				if inAtomicArg[n] {
					return true
				}
				report(pass, info.Uses[n.Sel], atomicUse, n.Pos())
			case *ast.Ident:
				if handledSel[n] || litKeys[n] || inAtomicArg[n] {
					return true
				}
				report(pass, info.Uses[n], atomicUse, n.Pos())
			}
			return true
		})
	}
	return nil
}

func report(pass *analysis.Pass, obj types.Object, atomicUse map[types.Object]token.Pos, pos token.Pos) {
	first, ok := atomicUse[obj]
	if !ok {
		return
	}
	pass.Reportf(pos,
		"plain access to %s, which is accessed with sync/atomic at %s; mixed access races — use the atomic functions (or a typed atomic) everywhere",
		obj.Name(), pass.Fset.Position(first))
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

var atomicPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

// isLegacyAtomicCall matches top-level sync/atomic functions (not the
// typed atomics' methods).
func isLegacyAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := analysis.Callee(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, p := range atomicPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			return true
		}
	}
	return false
}
