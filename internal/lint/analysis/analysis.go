// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework, built only on the standard
// library's go/ast and go/types. The container this repo grows in has no
// module proxy access, so instead of depending on x/tools we reimplement
// the small surface the xamlint suite needs: an Analyzer runs over one
// type-checked package (a Pass) and reports position-anchored Diagnostics.
//
// Findings can be suppressed — sparingly, and with a mandatory reason —
// by a directive comment on the offending line or the line above:
//
//	//xamlint:allow nopanic(cancellation protocol, recovered by DrainContext)
//
// A directive without a reason is itself reported, so suppressions stay
// auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow-directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run performs the check, reporting findings through pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one type-checked, non-test package through an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// ImportedObject resolves a package-level object in a package imported by
// the pass's package (or in the package itself, when paths match). Returns
// nil when the package is not imported or lacks the name — analyzers use
// this to no-op on packages that cannot violate their invariant.
func (p *Pass) ImportedObject(pkgPath, name string) types.Object {
	if p.Pkg.Path() == pkgPath {
		return p.Pkg.Scope().Lookup(name)
	}
	for _, imp := range p.Pkg.Imports() {
		if imp.Path() == pkgPath {
			return imp.Scope().Lookup(name)
		}
	}
	return nil
}

// directiveRe matches "xamlint:allow name" with an optional "(reason)".
var directiveRe = regexp.MustCompile(`^\s*xamlint:allow\s+([a-z][a-z0-9_,\s]*?)\s*(\(([^)]*)\))?\s*$`)

type directive struct {
	line      int
	analyzers []string
	reason    string
	hasReason bool
	pos       token.Pos
}

// Allow is one xamlint:allow directive, exported for audit tooling
// (cmd/xamlint -allows).
type Allow struct {
	Pos       token.Position
	Analyzers []string
	Reason    string // empty for malformed (reasonless) directives
}

// Allows returns every xamlint:allow directive in a parsed file, with
// position and reason, whether well-formed or not.
func Allows(fset *token.FileSet, f *ast.File) []Allow {
	var out []Allow
	for _, d := range collectDirectives(fset, f) {
		out = append(out, Allow{
			Pos:       fset.Position(d.pos),
			Analyzers: d.analyzers,
			Reason:    d.reason,
		})
	}
	return out
}

// collectDirectives scans a file's comments for xamlint:allow directives.
func collectDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSuffix(text, "*/")
			m := directiveRe.FindStringSubmatch(text)
			if m == nil {
				continue
			}
			var names []string
			for _, n := range strings.FieldsFunc(m[1], func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
				if n != "" {
					names = append(names, n)
				}
			}
			reason := strings.TrimSpace(m[3])
			out = append(out, directive{
				line:      fset.Position(c.Pos()).Line,
				analyzers: names,
				reason:    reason,
				hasReason: reason != "",
				pos:       c.Pos(),
			})
		}
	}
	return out
}

// Run applies analyzers to a loaded package and returns the surviving
// diagnostics sorted by position. Findings matched by a well-formed
// allow-directive are dropped; malformed directives (missing reason)
// are reported under the reserved analyzer name "xamlint".
func Run(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}

	// Suppression: map file -> line -> allowed analyzer names.
	allowed := map[string]map[int]map[string]bool{}
	for _, f := range pkg.Files {
		file := fset.Position(f.Pos()).Filename
		for _, d := range collectDirectives(fset, f) {
			if !d.hasReason {
				diags = append(diags, Diagnostic{
					Pos:      d.pos,
					Analyzer: "xamlint",
					Message:  "xamlint:allow directive needs a reason: //xamlint:allow name(reason)",
				})
				continue
			}
			if allowed[file] == nil {
				allowed[file] = map[int]map[string]bool{}
			}
			if allowed[file][d.line] == nil {
				allowed[file][d.line] = map[string]bool{}
			}
			for _, n := range d.analyzers {
				allowed[file][d.line][n] = true
			}
		}
	}
	var kept []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		lines := allowed[pos.Filename]
		if lines != nil && (lines[pos.Line][d.Analyzer] || lines[pos.Line-1][d.Analyzer]) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := fset.Position(kept[i].Pos), fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}
