package analysis

import (
	"go/ast"
)

// Flow is a generic forward dataflow analysis over a CFG, iterated to
// fixpoint with a worklist. The client supplies the lattice through three
// functions:
//
//   - Transfer computes the fact after a node from the fact before it.
//     Facts must be treated as immutable — return a copy when changing.
//   - Join merges facts where control flow merges. Union joins give a
//     MAY analysis ("holds on some path"), intersection joins a MUST
//     analysis ("holds on every path").
//   - Equal detects the fixpoint.
//
// Only blocks reachable from Entry are analyzed; unreachable code gets no
// facts and is skipped by Before.
type Flow[T any] struct {
	CFG      *CFG
	Entry    T // fact at function entry
	Transfer func(fact T, n ast.Node) T
	Join     func(a, b T) T
	Equal    func(a, b T) bool
}

// Run iterates to fixpoint and returns the fact at the entry of every
// reachable block. The fact at CFG.Exit's entry is the merged
// end-of-function fact.
func (f *Flow[T]) Run() map[*Block]T {
	in := map[*Block]T{f.CFG.Entry: f.Entry}
	seen := map[*Block]bool{f.CFG.Entry: true}
	work := []*Block{f.CFG.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		fact := in[blk]
		for _, n := range blk.Nodes {
			fact = f.Transfer(fact, n)
		}
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				in[s] = fact
				work = append(work, s)
				continue
			}
			merged := f.Join(in[s], fact)
			if !f.Equal(merged, in[s]) {
				in[s] = merged
				work = append(work, s)
			}
		}
	}
	return in
}

// Before replays the transfer function through every reachable block of a
// finished Run, calling visit with the fact in force immediately before
// each node — the hook analyzers use to check a node against the dataflow
// state reaching it.
func (f *Flow[T]) Before(in map[*Block]T, visit func(fact T, n ast.Node)) {
	for _, blk := range f.CFG.Blocks {
		fact, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		for _, n := range blk.Nodes {
			visit(fact, n)
			fact = f.Transfer(fact, n)
		}
	}
}
