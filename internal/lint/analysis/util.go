package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves a call expression to the package-level function, method
// or builtin object being called, or nil for indirect calls through
// function values.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // package-qualified call
	}
	return nil
}

// IsFunc reports whether obj is the function named name in the package
// with the given import path.
func IsFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// ImplementsError reports whether t satisfies the error interface.
func ImplementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}

// derefType strips one level of pointer indirection, if any.
func derefType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedType reports whether t (after unaliasing) is the named type
// pkgPath.name.
func NamedType(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
