package analysis

import (
	"go/ast"
)

// This file grows the per-file AST walkers of the original suite into a
// small intraprocedural dataflow layer: BuildCFG decomposes one function
// body into basic blocks of atomic nodes (simple statements and the
// condition expressions of if/for/switch), and flow.go runs a generic
// forward may/must analysis over the result. The concurrency- and
// protocol-shaped analyzers (lockorder, snapshot, budgetcharge,
// httpstatus) are clients.

// CFG is the control-flow graph of one function body. Blocks hold only
// atomic nodes — simple statements and branch-condition expressions —
// never compound statements, so a dataflow transfer function can treat
// each node as a single program point. Every function exit (return,
// terminal panic, falling off the end) has an edge to the synthetic Exit
// block, which holds no nodes.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block // all blocks, Entry first, Exit last

	// Defers lists every defer statement of the body in source order
	// (including defers inside loops or branches). Deferred calls run at
	// function exit; clients that model them (e.g. lockorder's
	// balanced-unlock check) consult this list rather than the blocks.
	Defers []*ast.DeferStmt

	// NonBlocking marks channel-operation nodes that cannot block: the
	// communication clauses of a select that has a default case.
	NonBlocking map[ast.Node]bool
}

// Block is one basic block: a maximal straight-line node sequence.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// loopCtx is the break/continue target pair of one enclosing loop,
// switch or select (continueTo is nil for switch/select).
type loopCtx struct {
	breakTo    *Block
	continueTo *Block
	label      string
}

type cfgBuilder struct {
	cfg   *CFG
	cur   *Block // nil while the current point is unreachable
	loops []*loopCtx

	// pending label context: set by a LabeledStmt so the construct it
	// labels registers itself as that label's break/continue target.
	pendingLabel string

	labels map[string]*Block // label name -> entry block (goto target)
	gotos  map[string][]*Block
}

// BuildCFG builds the control-flow graph of one function body. The body
// of a nested function literal is NOT expanded into the enclosing graph —
// literals run on their own schedule and get their own CFG; a FuncLit
// appearing inside a node is just part of that node's expression (the
// Inspect helper skips literal bodies for exactly this reason).
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{NonBlocking: map[ast.Node]bool{}},
		labels: map[string]*Block{},
		gotos:  map[string][]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = &Block{}
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	for name, srcs := range b.gotos {
		if dst, ok := b.labels[name]; ok {
			for _, src := range srcs {
				b.edge(src, dst)
			}
		}
	}
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends an atomic node to the current block, starting a fresh
// (unreachable, pred-less) block when the current point is dead — so the
// nodes of unreachable code still exist in the graph, but no dataflow
// fact ever reaches them.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// pushLoop registers break/continue targets, consuming the pending label.
func (b *cfgBuilder) pushLoop(breakTo, continueTo *Block) {
	b.loops = append(b.loops, &loopCtx{breakTo: breakTo, continueTo: continueTo, label: b.pendingLabel})
	b.pendingLabel = ""
}

func (b *cfgBuilder) popLoop() { b.loops = b.loops[:len(b.loops)-1] }

func (b *cfgBuilder) breakTarget(label string) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		if label == "" || b.loops[i].label == label {
			return b.loops[i].breakTo
		}
	}
	return nil
}

func (b *cfgBuilder) continueTarget(label string) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		if b.loops[i].continueTo != nil && (label == "" || b.loops[i].label == label) {
			return b.loops[i].continueTo
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label is both a goto target and (if it labels a loop or
		// switch) a break/continue name. Start a fresh block so the goto
		// edge has a clean entry point.
		entry := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, entry)
		}
		b.cur = entry
		b.labels[s.Label.Name] = entry
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		var elseEnd *Block
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			elseEnd = b.cur
		} else {
			elseEnd = cond
		}
		after := b.newBlock()
		if thenEnd != nil {
			b.edge(thenEnd, after)
		}
		if elseEnd != nil {
			b.edge(elseEnd, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		condEnd := b.cur // cond may grow the head block; keep its end
		body := b.newBlock()
		after := b.newBlock()
		post := b.newBlock()
		b.edge(condEnd, body)
		if s.Cond != nil {
			b.edge(condEnd, after)
		}
		b.pushLoop(after, post)
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		b.popLoop()
		b.cur = post
		if s.Post != nil {
			b.add(s.Post)
		}
		b.edge(b.cur, head)
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		// The RangeStmt itself is the head node (range expression plus
		// per-iteration key/value binding); Inspect visits only its
		// header parts, never the body, which is decomposed below.
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.pushLoop(after, head)
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, nil)

	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		after := b.newBlock()
		hasDefault := false
		for _, c := range s.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		b.pushLoop(after, nil)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			branch := b.newBlock()
			b.edge(head, branch)
			b.cur = branch
			if cc.Comm != nil {
				b.add(cc.Comm)
				if hasDefault {
					b.cfg.NonBlocking[cc.Comm] = true
				}
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.popLoop()
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok.String() {
		case "break":
			if t := b.breakTarget(label); t != nil && b.cur != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		case "continue":
			if t := b.continueTarget(label); t != nil && b.cur != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		case "goto":
			if b.cur != nil {
				b.gotos[label] = append(b.gotos[label], b.cur)
			}
			b.cur = nil
		case "fallthrough":
			// Handled by switchClauses via the fallthrough edge; the
			// statement itself carries no dataflow content.
		}

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.edge(b.cur, b.cfg.Exit)
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, IncDecStmt, DeclStmt, SendStmt, GoStmt, ...
		b.add(s)
	}
}

// switchClauses builds the branch structure shared by expression and type
// switches, including fallthrough edges between consecutive case bodies.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, _ *Block) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	b.pushLoop(after, nil)
	hasDefault := false
	bodies := make([]*Block, len(clauses))
	ends := make([]*Block, len(clauses))
	falls := make([]bool, len(clauses))
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		branch := b.newBlock()
		bodies[i] = branch
		b.edge(head, branch)
		b.cur = branch
		for _, e := range cc.List {
			b.add(e)
		}
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				falls[i] = true
			}
			b.stmt(st)
		}
		ends[i] = b.cur
		if b.cur != nil && !falls[i] {
			b.edge(b.cur, after)
		}
	}
	for i := range clauses {
		if falls[i] && ends[i] != nil && i+1 < len(bodies) {
			b.edge(ends[i], bodies[i+1])
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.popLoop()
	b.cur = after
}

// isTerminalCall reports whether e is a call that never returns — a bare
// panic, or os.Exit-style terminators recognized by name.
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fn.X.(*ast.Ident); ok {
			return (pkg.Name == "os" && fn.Sel.Name == "Exit") ||
				(pkg.Name == "runtime" && fn.Sel.Name == "Goexit")
		}
	}
	return false
}

// Inspect walks the expressions of one CFG node, skipping the bodies of
// nested function literals (they execute on their own schedule and have
// their own CFG) and, for a RangeStmt head node, visiting only the header
// parts (key, value, range expression) — the loop body is decomposed into
// its own blocks.
func Inspect(n ast.Node, fn func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		if r.Key != nil {
			Inspect(r.Key, fn)
		}
		if r.Value != nil {
			Inspect(r.Value, fn)
		}
		Inspect(r.X, fn)
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// FuncInfo identifies one analyzable function body: a declaration or a
// function literal.
type FuncInfo struct {
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Body *ast.BlockStmt
}

// Name returns a best-effort display name for diagnostics.
func (fi *FuncInfo) Name() string {
	if fi.Decl != nil {
		return fi.Decl.Name.Name
	}
	return "func literal"
}

// Functions yields every function body of a file — declarations and
// (nested) function literals — so flow-based analyzers can build one CFG
// per body.
func Functions(f *ast.File, visit func(*FuncInfo)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(&FuncInfo{Decl: n, Body: n.Body})
			}
		case *ast.FuncLit:
			visit(&FuncInfo{Lit: n, Body: n.Body})
		}
		return true
	})
}
