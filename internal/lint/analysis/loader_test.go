package analysis_test

import (
	"testing"

	"xamdb/internal/lint/analysis"
)

func TestSmokeLoad(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("xamdb/internal/storage")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("loaded %s with %d files, scope has %d names", pkg.Path, len(pkg.Files), len(pkg.Types.Scope().Names()))
	pkg2, err := l.Load("xamdb/internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	_ = pkg2
}
