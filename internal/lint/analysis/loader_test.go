package analysis_test

import (
	"go/types"
	"strings"
	"testing"

	"xamdb/internal/lint/analysis"
)

func TestSmokeLoad(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("xamdb/internal/storage")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("loaded %s with %d files, scope has %d names", pkg.Path, len(pkg.Files), len(pkg.Types.Scope().Names()))
	pkg2, err := l.Load("xamdb/internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	_ = pkg2
}

// TestLoadEdgeCases drives the loader over the shapes that break naive
// source importers: a multi-file package, generic declarations with
// cross-file instantiation, method values, and defers inside loops.
func TestLoadEdgeCases(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir("../testdata/src/loaderedge_a", "loaderedge_a")
	if err != nil {
		t.Fatal(err)
	}

	if len(pkg.Files) != 2 {
		t.Fatalf("multi-file package: loaded %d files, want 2", len(pkg.Files))
	}

	// Generics: Map keeps its type parameters, and the cross-file call in
	// Pairs records a concrete instantiation.
	mapObj, ok := pkg.Types.Scope().Lookup("Map").(*types.Func)
	if !ok || mapObj.Type().(*types.Signature).TypeParams().Len() != 2 {
		t.Fatalf("generic Map lost its type parameters: %v", mapObj)
	}
	instantiated := false
	for id, inst := range pkg.Info.Instances {
		if id.Name == "Map" && inst.Type != nil && strings.Contains(inst.Type.String(), "Pair") {
			instantiated = true
		}
	}
	if !instantiated {
		t.Fatal("cross-file generic call left no Pair instantiation in Info.Instances")
	}

	// Method values: binding c.inc produces a receiver-free func() — the
	// selection must be recorded as a method value, not a field access.
	methodValue := false
	for sel, s := range pkg.Info.Selections {
		if sel.Sel.Name == "inc" && s.Kind() == types.MethodVal {
			methodValue = true
		}
	}
	if !methodValue {
		t.Fatal("method value c.inc not recorded as a MethodVal selection")
	}

	// Defer in a loop: the CFG collects the DeferStmt even though it is
	// nested in a range body.
	var checked bool
	for _, f := range pkg.Files {
		analysis.Functions(f, func(fi *analysis.FuncInfo) {
			if fi.Name() != "DeferInLoop" {
				return
			}
			checked = true
			cfg := analysis.BuildCFG(fi.Body)
			if len(cfg.Defers) != 1 {
				t.Fatalf("DeferInLoop: %d defers collected, want 1", len(cfg.Defers))
			}
		})
	}
	if !checked {
		t.Fatal("DeferInLoop not found in fixture")
	}

	// Every fixture function must survive CFG construction and an empty
	// analyzer run (directive parsing, block ordering).
	if _, err := analysis.Run(l.Fset, pkg, nil); err != nil {
		t.Fatalf("empty analyzer run over edge-case package: %v", err)
	}
}
