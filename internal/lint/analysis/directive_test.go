package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// newTestLoader seeds dir with a go.mod so it forms its own module.
func newTestLoader(t *testing.T, dir string) *Loader {
	t.Helper()
	writeFile(t, dir, "go.mod", "module tmp\n\ngo 1.22\n")
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func inspectReturns(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			pass.Reportf(ret.Pos(), "return found")
		}
		return true
	})
}

func parseOne(t *testing.T, src string) (*token.FileSet, *directivesOnly) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, &directivesOnly{ds: collectDirectives(fset, f)}
}

type directivesOnly struct{ ds []directive }

func TestCollectDirectives(t *testing.T) {
	src := `package p

func a() {
	//xamlint:allow nopanic(protocol panic, recovered upstream)
	_ = 1
	//xamlint:allow nopanic, errwrap(two analyzers, one reason)
	_ = 2
	//xamlint:allow nopanic
	_ = 3
	// xamlint is great (not a directive)
}
`
	_, got := parseOne(t, src)
	if len(got.ds) != 3 {
		t.Fatalf("want 3 directives, got %d: %+v", len(got.ds), got.ds)
	}
	if !got.ds[0].hasReason || len(got.ds[0].analyzers) != 1 || got.ds[0].analyzers[0] != "nopanic" {
		t.Errorf("directive 0 parsed wrong: %+v", got.ds[0])
	}
	if !got.ds[1].hasReason || len(got.ds[1].analyzers) != 2 {
		t.Errorf("directive 1 must name two analyzers with a reason: %+v", got.ds[1])
	}
	if got.ds[2].hasReason {
		t.Errorf("directive 2 has no reason and must say so: %+v", got.ds[2])
	}
}

// TestDirectiveReasonRequired checks end-to-end that a reasonless
// allow-directive does not suppress and is itself reported, while a
// reasoned one suppresses findings on its own and the following line.
func TestDirectiveReasonRequired(t *testing.T) {
	dir := t.TempDir()
	src := `package p

func bad() string { //xamlint:allow testcheck
	return "x"
}

func good() string {
	//xamlint:allow testcheck(demonstrating suppression)
	return "y"
}
`
	writeFile(t, dir, "p.go", src)
	loader := newTestLoader(t, dir)
	pkg, err := loader.LoadDir(dir, "p")
	if err != nil {
		t.Fatal(err)
	}
	check := &Analyzer{
		Name: "testcheck",
		Doc:  "flags every return statement for directive testing",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				inspectReturns(pass, f)
			}
			return nil
		},
	}
	diags, err := Run(loader.Fset, pkg, []*Analyzer{check})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Analyzer+": "+d.Message)
	}
	joined := strings.Join(msgs, "\n")
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (unsuppressed finding + malformed directive), got %d:\n%s", len(diags), joined)
	}
	if !strings.Contains(joined, "needs a reason") {
		t.Errorf("reasonless directive must be reported:\n%s", joined)
	}
	if !strings.Contains(joined, "testcheck: return found") {
		t.Errorf("finding under a reasonless directive must survive:\n%s", joined)
	}
	if strings.Count(joined, "return found") != 1 {
		t.Errorf("reasoned directive must suppress the second finding:\n%s", joined)
	}
}
