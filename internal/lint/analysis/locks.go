package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Lock identity and held-lock dataflow shared by the concurrency
// analyzers (lockorder, snapshot). A lock is identified by where it
// lives, not by instance: every `e.mu` with e of type engine.Engine maps
// to the one key "xamdb/internal/engine.Engine.mu". That folds all
// instances of a type together — exactly what an acquisition-order policy
// wants, and conservative enough for balance checks.

// LockKey names one mutex: "pkgpath.Type.field" for a struct field,
// "pkgpath.name" for a package-level var, "local:name@offset" for a
// function-local mutex.
type LockKey string

// LockInfo describes one held lock: the kind of hold and where it was
// acquired (for diagnostics).
type LockInfo struct {
	Read bool
	Pos  token.Pos
}

// LockSet is a dataflow fact: the set of locks held at a program point.
// Treated as immutable by the flow framework; transfer copies on write.
type LockSet map[LockKey]LockInfo

func (s LockSet) clone() LockSet {
	out := make(LockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// MutexOp is one Lock/Unlock event found inside a CFG node.
type MutexOp struct {
	Key     LockKey
	Read    bool // RLock/RUnlock
	Release bool // Unlock/RUnlock
	Call    *ast.CallExpr
}

var mutexMethods = map[string]struct{ read, release bool }{
	"Lock":    {false, false},
	"RLock":   {true, false},
	"Unlock":  {false, true},
	"RUnlock": {true, true},
}

// MutexOps scans one CFG node for sync.Mutex / sync.RWMutex operations
// (skipping nested function literals).
func MutexOps(info *types.Info, n ast.Node) []MutexOp {
	var out []MutexOp
	Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		kind, ok := mutexMethods[sel.Sel.Name]
		if !ok {
			return true
		}
		fn, ok := Callee(info, call).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		out = append(out, MutexOp{
			Key:     lockKeyFor(info, sel.X),
			Read:    kind.read,
			Release: kind.release,
			Call:    call,
		})
		return true
	})
	return out
}

// lockKeyFor derives the stable identity of the mutex expression x (the
// receiver of a Lock/Unlock call).
func lockKeyFor(info *types.Info, x ast.Expr) LockKey {
	x = unwrapAddrDeref(x)
	switch x := x.(type) {
	case *ast.SelectorExpr:
		// e.mu → owner type of e + field name.
		base := derefType(info.Types[ast.Unparen(x.X)].Type)
		if named, ok := types.Unalias(base).(*types.Named); ok && named.Obj().Pkg() != nil {
			return LockKey(named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name)
		}
		return LockKey(fmt.Sprintf("expr.%s@%d", x.Sel.Name, x.Pos()))
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			return LockKey("local:" + x.Name)
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return LockKey(obj.Pkg().Path() + "." + obj.Name())
		}
		return LockKey(fmt.Sprintf("local:%s@%d", obj.Name(), obj.Pos()))
	}
	return LockKey(fmt.Sprintf("expr@%d", x.Pos()))
}

// unwrapAddrDeref strips parens, & and * so (&s.mu).Lock() and
// (*pmu).Lock() resolve like s.mu.Lock() and pmu.Lock().
func unwrapAddrDeref(x ast.Expr) ast.Expr {
	for {
		switch e := x.(type) {
		case *ast.ParenExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				x = e.X
				continue
			}
			return x
		default:
			return x
		}
	}
}

func deredup(a, b LockInfo) LockInfo { return a } // keep the first-seen info

// LockFlow builds the held-locks analysis over one CFG. With must set,
// joins intersect (a lock is held only if held on every path); otherwise
// joins union (held on some path). Defers do not release — a deferred
// Unlock keeps the lock held to function exit by design; clients consult
// CFG.Defers (see DeferredUnlocks) for balance checks.
func LockFlow(info *types.Info, cfg *CFG, must bool) *Flow[LockSet] {
	join := func(a, b LockSet) LockSet {
		out := LockSet{}
		if must {
			for k, v := range a {
				if w, ok := b[k]; ok {
					out[k] = deredup(v, w)
				}
			}
			return out
		}
		for k, v := range a {
			out[k] = v
		}
		for k, v := range b {
			if w, ok := out[k]; ok {
				out[k] = deredup(w, v)
				continue
			}
			out[k] = v
		}
		return out
	}
	return &Flow[LockSet]{
		CFG:   cfg,
		Entry: LockSet{},
		Transfer: func(fact LockSet, n ast.Node) LockSet {
			if _, ok := n.(*ast.DeferStmt); ok {
				return fact // deferred ops run at function exit, not here
			}
			ops := MutexOps(info, n)
			if len(ops) == 0 {
				return fact
			}
			out := fact.clone()
			for _, op := range ops {
				if op.Release {
					delete(out, op.Key)
				} else {
					out[op.Key] = LockInfo{Read: op.Read, Pos: op.Call.Pos()}
				}
			}
			return out
		},
		Join: join,
		Equal: func(a, b LockSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				w, ok := b[k]
				if !ok || v.Read != w.Read {
					return false
				}
			}
			return true
		},
	}
}

// DeferredUnlocks collects the lock keys released by defer statements
// anywhere in the CFG — the set a balance check subtracts from the locks
// still held at function exit.
func DeferredUnlocks(info *types.Info, cfg *CFG) map[LockKey]bool {
	out := map[LockKey]bool{}
	for _, d := range cfg.Defers {
		for _, op := range MutexOps(info, d.Call) {
			if op.Release {
				out[op.Key] = true
			}
		}
	}
	return out
}
