package analysis

import (
	"go/ast"
	"testing"
)

// assignFlow builds a gen-only analysis over simple assignments: the fact
// is the set of identifier names assigned so far. union=true gives a MAY
// analysis, union=false a MUST analysis.
func assignFlow(cfg *CFG, union bool) *Flow[map[string]bool] {
	return &Flow[map[string]bool]{
		CFG:   cfg,
		Entry: map[string]bool{},
		Transfer: func(fact map[string]bool, n ast.Node) map[string]bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return fact
			}
			out := make(map[string]bool, len(fact)+1)
			for k := range fact {
				out[k] = true
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					out[id.Name] = true
				}
			}
			return out
		},
		Join: func(a, b map[string]bool) map[string]bool {
			out := map[string]bool{}
			if union {
				for k := range a {
					out[k] = true
				}
				for k := range b {
					out[k] = true
				}
				return out
			}
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	}
}

func atExit(t *testing.T, body string, union bool) map[string]bool {
	t.Helper()
	cfg, _ := parseFunc(t, body)
	f := assignFlow(cfg, union)
	in := f.Run()
	return in[cfg.Exit]
}

func TestFlowMayVsMustAcrossBranch(t *testing.T) {
	body := `
	c := true
	if c {
		a := 1
		_ = a
	} else {
		b := 2
		_ = b
	}`
	may := atExit(t, body, true)
	if !may["a"] || !may["b"] {
		t.Fatalf("may analysis should see both branch assignments, got %v", may)
	}
	must := atExit(t, body, false)
	if must["a"] || must["b"] {
		t.Fatalf("must analysis should drop branch-only assignments, got %v", must)
	}
	if !must["c"] {
		t.Fatalf("must analysis should keep the dominating assignment, got %v", must)
	}
}

func TestFlowMustThroughBothBranches(t *testing.T) {
	must := atExit(t, `
	c := true
	if c {
		x := 1
		_ = x
	} else {
		x := 2
		_ = x
	}`, false)
	if !must["x"] {
		t.Fatalf("x assigned on every path, must analysis lost it: %v", must)
	}
}

func TestFlowLoopFixpoint(t *testing.T) {
	// The loop body may never run: a must analysis cannot claim y, a may
	// analysis can.
	body := `
	n := 3
	for i := 0; i < n; i++ {
		y := i
		_ = y
	}`
	if may := atExit(t, body, true); !may["y"] {
		t.Fatalf("may analysis should reach y through the loop, got %v", may)
	}
	if must := atExit(t, body, false); must["y"] {
		t.Fatalf("must analysis should not claim loop-body assignment, got %v", must)
	}
}

func TestFlowPanicIsAnExitPath(t *testing.T) {
	// A panic is a function exit: the exit fact merges it, so a must
	// analysis keeps only what held on BOTH the panic path and the normal
	// path — the semantics a lock-balance check wants (a lock held at a
	// panic site without a deferred unlock is leaked). Facts after the
	// branch, by contrast, see only the surviving path.
	body := `
	c := true
	if c {
		bad := 1
		_ = bad
		panic("no")
	}
	good := 2
	_ = good`
	must := atExit(t, body, false)
	if must["bad"] || must["good"] {
		t.Fatalf("exit fact should hold only the dominating assignment, got %v", must)
	}
	if !must["c"] {
		t.Fatalf("dominating assignment lost at exit: %v", must)
	}
	// The fact before `good := 2` is untouched by the panic path.
	cfg, _ := parseFunc(t, body)
	f := assignFlow(cfg, false)
	in := f.Run()
	var checked bool
	f.Before(in, func(fact map[string]bool, n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "good" {
			checked = true
			if fact["bad"] {
				t.Fatalf("panic-path assignment leaked past the branch: %v", fact)
			}
			if !fact["c"] {
				t.Fatalf("dominating assignment missing before good: %v", fact)
			}
		}
	})
	if !checked {
		t.Fatalf("never visited the good assignment")
	}
}

func TestFlowUnreachableCodeGetsNoFacts(t *testing.T) {
	cfg, _ := parseFunc(t, `
	return
	z := 1
	_ = z`)
	f := assignFlow(cfg, true)
	in := f.Run()
	visited := 0
	f.Before(in, func(fact map[string]bool, n ast.Node) {
		visited++
		if fact["z"] {
			t.Fatalf("fact from unreachable code observed")
		}
	})
	// Only the return statement is reachable.
	if visited != 1 {
		t.Fatalf("Before visited %d nodes, want 1 (the return)", visited)
	}
}

func TestFlowBeforeSeesFactBeforeNode(t *testing.T) {
	cfg, _ := parseFunc(t, `
	a := 1
	b := 2
	_ = a
	_ = b`)
	f := assignFlow(cfg, true)
	in := f.Run()
	var checked bool
	f.Before(in, func(fact map[string]bool, n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "b" {
			checked = true
			if !fact["a"] {
				t.Fatalf("fact before `b := 2` should include a, got %v", fact)
			}
			if fact["b"] {
				t.Fatalf("fact before `b := 2` should not yet include b")
			}
		}
	})
	if !checked {
		t.Fatalf("never visited the b assignment")
	}
}

func TestFlowSelectBranches(t *testing.T) {
	// Each select arm is a branch; may sees both arms' assignments, must
	// sees neither (plus default means arms may be skipped entirely).
	body := `
	ch := make(chan int)
	select {
	case v := <-ch:
		a := v
		_ = a
	default:
		b := 1
		_ = b
	}`
	may := atExit(t, body, true)
	if !may["a"] || !may["b"] {
		t.Fatalf("may should see both select arms, got %v", may)
	}
	must := atExit(t, body, false)
	if must["a"] || must["b"] {
		t.Fatalf("must should drop arm-only assignments, got %v", must)
	}
}
