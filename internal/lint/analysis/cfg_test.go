package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFunc parses `body` as the body of func f and returns its CFG.
func parseFunc(t *testing.T, body string) (*CFG, *ast.File) {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[len(f.Decls)-1].(*ast.FuncDecl)
	return BuildCFG(fd.Body), f
}

// reachable returns the blocks reachable from Entry.
func reachable(cfg *CFG) map[*Block]bool {
	seen := map[*Block]bool{cfg.Entry: true}
	work := []*Block{cfg.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

func TestCFGStraightLine(t *testing.T) {
	cfg, _ := parseFunc(t, "x := 1\ny := 2\n_ = x\n_ = y")
	if len(cfg.Entry.Nodes) != 4 {
		t.Fatalf("entry nodes = %d, want 4", len(cfg.Entry.Nodes))
	}
	if len(cfg.Entry.Succs) != 1 || cfg.Entry.Succs[0] != cfg.Exit {
		t.Fatalf("entry should flow straight to exit")
	}
}

func TestCFGIfElseJoins(t *testing.T) {
	cfg, _ := parseFunc(t, `
	x := 0
	if x > 0 {
		x = 1
	} else {
		x = 2
	}
	_ = x`)
	// Exit must be reachable, and the after-if block must have two preds.
	if !reachable(cfg)[cfg.Exit] {
		t.Fatalf("exit unreachable")
	}
	var after *Block
	for _, b := range cfg.Blocks {
		if len(b.Preds) == 2 && b != cfg.Exit {
			after = b
		}
	}
	if after == nil {
		t.Fatalf("no join block with two preds")
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	cfg, _ := parseFunc(t, `
	x := 0
	if x > 0 {
		return
	}
	x = 2
	_ = x`)
	// Both the return path and the fallthrough path reach Exit.
	if got := len(cfg.Exit.Preds); got != 2 {
		t.Fatalf("exit preds = %d, want 2 (return + fallthrough)", got)
	}
}

func TestCFGReturnMakesCodeUnreachable(t *testing.T) {
	cfg, _ := parseFunc(t, "return\nx := 1\n_ = x")
	r := reachable(cfg)
	// The trailing statements live in a block no dataflow fact reaches.
	var dead bool
	for _, b := range cfg.Blocks {
		if len(b.Nodes) > 0 && !r[b] {
			dead = true
		}
	}
	if !dead {
		t.Fatalf("expected an unreachable block holding the dead code")
	}
}

func TestCFGPanicIsTerminal(t *testing.T) {
	cfg, _ := parseFunc(t, `
	x := 0
	if x > 0 {
		panic("boom")
	}
	_ = x`)
	// The panic block must edge to Exit and not into the after-if block.
	var panicBlk *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok && isTerminalCall(es.X) {
				panicBlk = b
			}
		}
	}
	if panicBlk == nil {
		t.Fatalf("panic node not found")
	}
	if len(panicBlk.Succs) != 1 || panicBlk.Succs[0] != cfg.Exit {
		t.Fatalf("panic block should flow only to exit, got %d succs", len(panicBlk.Succs))
	}
}

func TestCFGForLoop(t *testing.T) {
	cfg, _ := parseFunc(t, `
	for i := 0; i < 10; i++ {
		if i == 5 {
			break
		}
		if i == 3 {
			continue
		}
		_ = i
	}
	done := true
	_ = done`)
	r := reachable(cfg)
	if !r[cfg.Exit] {
		t.Fatalf("exit unreachable through loop")
	}
	// The loop head must be part of a cycle: some reachable block has a
	// back edge to an earlier block.
	var back bool
	for _, b := range cfg.Blocks {
		if !r[b] {
			continue
		}
		for _, s := range b.Succs {
			if s.Index < b.Index {
				back = true
			}
		}
	}
	if !back {
		t.Fatalf("no back edge found for loop")
	}
}

func TestCFGRangeHeadNode(t *testing.T) {
	cfg, _ := parseFunc(t, `
	xs := []int{1, 2}
	for _, v := range xs {
		_ = v
	}`)
	var head *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatalf("range head node missing")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("range head succs = %d, want 2 (body + after)", len(head.Succs))
	}
	// Inspect on the head node must not descend into the body.
	rs := head.Nodes[len(head.Nodes)-1]
	Inspect(rs, func(n ast.Node) bool {
		if _, ok := n.(*ast.BlockStmt); ok {
			t.Fatalf("Inspect descended into range body")
		}
		return true
	})
}

func TestCFGSwitchFallthroughAndDefault(t *testing.T) {
	cfg, _ := parseFunc(t, `
	x := 1
	switch x {
	case 1:
		x = 10
		fallthrough
	case 2:
		x = 20
	default:
		x = 30
	}
	_ = x`)
	if !reachable(cfg)[cfg.Exit] {
		t.Fatalf("exit unreachable")
	}
	// With a default present, the switch head must NOT edge straight to
	// the after block: every path goes through a case.
	// Count: find block holding the tag expr; its succ count should be 3.
	var head *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if id, ok := n.(ast.Expr); ok {
				_ = id
			}
		}
		if len(b.Succs) == 3 {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("switch head with 3 branch succs not found")
	}
}

func TestCFGSelectDefaultNonBlocking(t *testing.T) {
	cfg, _ := parseFunc(t, `
	ch := make(chan int)
	select {
	case v := <-ch:
		_ = v
	default:
	}
	select {
	case v := <-ch:
		_ = v
	}`)
	var marked, unmarked int
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.AssignStmt); ok {
				if cfg.NonBlocking[n] {
					marked++
				}
			}
		}
	}
	for n := range cfg.NonBlocking {
		_ = n
		unmarked++
	}
	if unmarked != 1 {
		t.Fatalf("NonBlocking size = %d, want exactly the one default-select comm", unmarked)
	}
	if marked != 1 {
		t.Fatalf("the default-select comm clause should be marked non-blocking")
	}
}

func TestCFGDefersCollected(t *testing.T) {
	cfg, _ := parseFunc(t, `
	mu := 0
	defer func() { _ = mu }()
	for i := 0; i < 3; i++ {
		defer func() { _ = i }()
	}`)
	if len(cfg.Defers) != 2 {
		t.Fatalf("defers = %d, want 2", len(cfg.Defers))
	}
}

func TestCFGGoto(t *testing.T) {
	cfg, _ := parseFunc(t, `
	i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}
	_ = i`)
	r := reachable(cfg)
	if !r[cfg.Exit] {
		t.Fatalf("exit unreachable")
	}
	var back bool
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index {
				back = true
			}
		}
	}
	if !back {
		t.Fatalf("goto produced no back edge")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	cfg, _ := parseFunc(t, `
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 {
				break outer
			}
		}
	}
	x := 1
	_ = x`)
	if !reachable(cfg)[cfg.Exit] {
		t.Fatalf("exit unreachable with labeled break")
	}
}

func TestInspectSkipsFuncLit(t *testing.T) {
	_, f := parseFunc(t, `
	g := func() { inner() }
	_ = g`)
	fd := f.Decls[len(f.Decls)-1].(*ast.FuncDecl)
	var sawInner bool
	Inspect(fd.Body.List[0], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "inner" {
			sawInner = true
		}
		return true
	})
	if sawInner {
		t.Fatalf("Inspect descended into function literal body")
	}
}

func TestFunctionsYieldsDeclsAndLits(t *testing.T) {
	src := `package p

func a() {}

func b() {
	c := func() {
		d := func() {}
		_ = d
	}
	_ = c
}`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	var decls, lits int
	Functions(f, func(fi *FuncInfo) {
		if fi.Decl != nil {
			decls++
		}
		if fi.Lit != nil {
			lits++
		}
	})
	if decls != 2 || lits != 2 {
		t.Fatalf("decls=%d lits=%d, want 2 and 2", decls, lits)
	}
}
