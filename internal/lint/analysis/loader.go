package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked, non-test compilation unit.
type Package struct {
	Path  string // import path ("xamdb/internal/storage", or a fixture name)
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module without
// any toolchain subprocesses or external dependencies. Imports within the
// module resolve to source directories under the module root; everything
// else is treated as standard library and type-checked from GOROOT source
// via go/importer's "source" importer (which works offline).
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader for the module containing startDir (searched
// upward for go.mod).
func NewLoader(startDir string) (*Loader, error) {
	dir, err := filepath.Abs(startDir)
	if err != nil {
		return nil, err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			path, err := modulePath(data)
			if err != nil {
				return nil, fmt.Errorf("lint: %s: %w", filepath.Join(dir, "go.mod"), err)
			}
			fset := token.NewFileSet()
			return &Loader{
				Fset:       fset,
				ModulePath: path,
				ModuleDir:  dir,
				std:        importer.ForCompiler(fset, "source", nil),
				pkgs:       map[string]*Package{},
				loading:    map[string]bool{},
			}, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, fmt.Errorf("lint: no go.mod above %s", startDir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) (string, error) {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("no module line")
}

// Load type-checks the package at an import path inside the module.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	return l.load(dir, path)
}

// LoadDir type-checks the package in dir under a synthetic import path;
// used by analysistest to load fixtures that live outside the module's
// package tree (testdata is invisible to the go tool).
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	if pkg, ok := l.pkgs[asPath]; ok {
		return pkg, nil
	}
	return l.load(dir, asPath)
}

func (l *Loader) dirFor(path string) (string, error) {
	if path == l.ModulePath {
		return l.ModuleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), nil
	}
	return "", fmt.Errorf("lint: %q is outside module %s", path, l.ModulePath)
}

func (l *Loader) load(dir, path string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-local packages load from source
// under the module root, anything else is delegated to the GOROOT source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// ModuleDirs returns the directories under the module root that contain at
// least one non-test Go file, skipping testdata, hidden and vendor
// directories — the expansion of the "./..." pattern.
func (l *Loader) ModuleDirs() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if p != l.ModuleDir && (n == "testdata" || n == "vendor" || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		n := d.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
			dir := filepath.Dir(p)
			if len(out) == 0 || out[len(out)-1] != dir {
				out = append(out, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// PathForDir maps a directory under the module root to its import path.
func (l *Loader) PathForDir(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleDir)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}
