// Package budgetcharge defines an analyzer for the per-query quota
// protocol (PR 6). Two rules:
//
//  1. Every physical.Iterator Next and physical.BatchIterator NextBatch
//     implementation must be covered by the quota machinery. Operators
//     that pull an upstream iterator (row or batch) anywhere in their
//     pull method are covered by construction — the compiler wraps every
//     scan in a Checkpoint and batch leaves charge per batch, so tuples
//     flowing up the chain are charged at the leaf. A LEAF pull method
//     (one that never pulls an upstream of either protocol) yields
//     tuples out of thin air; it must itself charge or check a
//     physical.Budget (ChargeTuples, ChargeExtentBytes, CheckRowsOut) or
//     build a Checkpoint — directly or through a same-package helper —
//     or carry a reasoned allow-directive explaining why every
//     construction site wraps it.
//
//  2. ErrQuotaExceeded never flows into the fallback cascade. A call to
//     a degrade hook (the engine's convention: a local closure or
//     function named "degrade") with an error argument is only legal
//     when that error has been vetted by abortErr on every path to the
//     call — otherwise a quota-killed plan would fall back to a cheaper
//     rewriting and spend even more of a budget that is already
//     exhausted. Checked with a must dataflow analysis over the CFG:
//     evaluating abortErr(err) adds err to the vetted set, any
//     reassignment of err removes it.
package budgetcharge

import (
	"go/ast"
	"go/types"
	"strings"

	"xamdb/internal/lint/analysis"
)

const physicalPath = "xamdb/internal/physical"

// Analyzer reports uncovered leaf iterators and unvetted errors entering
// the fallback cascade.
var Analyzer = &analysis.Analyzer{
	Name: "budgetcharge",
	Doc:  "leaf Iterator.Next and BatchIterator.NextBatch implementations must charge a physical.Budget; ErrQuotaExceeded must never reach the fallback cascade",
	Run:  run,
}

// pullIfaces resolves the row and batch pull protocols once per package.
type pullIfaces struct {
	iter  *types.Interface // physical.Iterator (Next)
	batch *types.Interface // physical.BatchIterator (NextBatch)
}

func run(pass *analysis.Pass) error {
	var ifaces pullIfaces
	if obj := pass.ImportedObject(physicalPath, "Iterator"); obj != nil {
		ifaces.iter, _ = obj.Type().Underlying().(*types.Interface)
	}
	if obj := pass.ImportedObject(physicalPath, "BatchIterator"); obj != nil {
		ifaces.batch, _ = obj.Type().Underlying().(*types.Interface)
	}
	if ifaces.iter != nil || ifaces.batch != nil {
		// Methods grouped by receiver type: judging one type's Next also
		// scans its sibling methods, so operators that decompose the pull
		// into helpers (the stackTree run/advance shape) stay covered.
		// Package-level functions are kept alongside so a charge routed
		// through a shared helper (the batchCancelCheck shape) is seen too.
		methods := map[*types.TypeName][]*ast.FuncDecl{}
		helpers := map[types.Object]*ast.FuncDecl{}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fd.Recv == nil {
					if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
						helpers[obj] = fd
					}
					continue
				}
				if tn := recvTypeName(pass.TypesInfo, fd); tn != nil {
					methods[tn] = append(methods[tn], fd)
				}
			}
		}
		for tn, decls := range methods {
			for _, fd := range decls {
				switch fd.Name.Name {
				case "Next":
					if ifaces.iter != nil {
						checkPullImpl(pass, ifaces, ifaces.iter, "Iterator.Next", tn, fd, methods[tn], helpers)
					}
				case "NextBatch":
					if ifaces.batch != nil {
						checkPullImpl(pass, ifaces, ifaces.batch, "BatchIterator.NextBatch", tn, fd, methods[tn], helpers)
					}
				}
			}
		}
	}
	for _, f := range pass.Files {
		analysis.Functions(f, func(fi *analysis.FuncInfo) {
			checkCascade(pass, fi)
		})
	}
	return nil
}

// recvTypeName resolves the named type of a method's receiver.
func recvTypeName(info *types.Info, fd *ast.FuncDecl) *types.TypeName {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// checkPullImpl applies rule 1 to one pull-method declaration (Next or
// NextBatch), consulting every method of the receiver type — and any
// package-level helper those methods call — for pulls and charges. A pull
// of either protocol counts as coverage: row chains are charged at their
// Checkpoint-wrapped leaf, batch chains at the leaf scan's per-batch
// charge, and the Rebatch/Unbatch adapters bridge one into the other.
func checkPullImpl(pass *analysis.Pass, ifaces pullIfaces, self *types.Interface, label string, tn *types.TypeName, decl *ast.FuncDecl, siblings []*ast.FuncDecl, helpers map[types.Object]*ast.FuncDecl) {
	recv := tn.Type()
	if !types.Implements(recv, self) && !types.Implements(types.NewPointer(recv), self) {
		return
	}
	pulls, charges := false, false
	visited := map[*ast.FuncDecl]bool{}
	var scan func(body ast.Node)
	scan = func(body ast.Node) {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && len(call.Args) == 0 {
				var iface *types.Interface
				switch sel.Sel.Name {
				case "Next":
					iface = ifaces.iter
				case "NextBatch":
					iface = ifaces.batch
				}
				if iface != nil {
					if t := pass.TypesInfo.Types[sel.X].Type; t != nil && !types.Identical(t, recv) && !types.Identical(t, types.NewPointer(recv)) {
						if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
							pulls = true
						}
					}
				}
			}
			obj := analysis.Callee(pass.TypesInfo, call)
			if isBudgetCharge(obj) || analysis.IsFunc(obj, physicalPath, "NewCheckpoint") {
				charges = true
			}
			if hd, ok := helpers[obj]; ok && !visited[hd] {
				visited[hd] = true
				scan(hd.Body)
			}
			return true
		})
	}
	for _, fd := range siblings {
		scan(fd.Body)
	}
	if !pulls && !charges {
		pass.Reportf(decl.Pos(),
			"leaf %s yields tuples without pulling an upstream or charging a physical.Budget; quota kills cannot reach it — charge the budget or document why every construction site wraps it in a Checkpoint", label)
	}
}

// isBudgetCharge matches the charging methods of physical.Budget.
func isBudgetCharge(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != physicalPath {
		return false
	}
	if !strings.HasPrefix(fn.Name(), "Charge") && !strings.HasPrefix(fn.Name(), "Check") {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Name() == "Budget"
}

// checkCascade applies rule 2 to one function body: every error-typed
// identifier handed to a degrade hook must be abortErr-vetted on every
// path reaching the call.
func checkCascade(pass *analysis.Pass, fi *analysis.FuncInfo) {
	info := pass.TypesInfo

	// Cheap pre-scan: nothing to do without a degrade call.
	hasDegrade := false
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isNamedCall(call, "degrade") {
			hasDegrade = true
		}
		return !hasDegrade
	})
	if !hasDegrade {
		return
	}

	cfg := analysis.BuildCFG(fi.Body)
	type vetSet = map[types.Object]bool
	flow := &analysis.Flow[vetSet]{
		CFG:   cfg,
		Entry: vetSet{},
		Transfer: func(fact vetSet, n ast.Node) vetSet {
			out := fact
			cloned := false
			mutate := func() {
				if !cloned {
					cloned = true
					c := make(vetSet, len(fact)+1)
					for k, v := range fact {
						c[k] = v
					}
					out = c
				}
			}
			analysis.Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.CallExpr:
					if isNamedCall(m, "abortErr") && len(m.Args) == 1 {
						if obj := identObj(info, m.Args[0]); obj != nil {
							mutate()
							out[obj] = true
						}
					}
				case *ast.AssignStmt:
					for _, lhs := range m.Lhs {
						if obj := identObj(info, lhs); obj != nil && out[obj] {
							mutate()
							delete(out, obj)
						}
					}
				}
				return true
			})
			return out
		},
		Join: func(a, b vetSet) vetSet {
			out := vetSet{}
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b vetSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	}
	flow.Before(flow.Run(), func(fact vetSet, n ast.Node) {
		analysis.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || !isNamedCall(call, "degrade") {
				return true
			}
			for _, arg := range call.Args {
				obj := identObj(info, arg)
				if obj == nil || !analysis.ImplementsError(obj.Type()) {
					continue
				}
				if !fact[obj] {
					pass.Reportf(call.Pos(),
						"%s flows into the fallback cascade without an abortErr guard; a quota-killed plan must abort, not degrade", obj.Name())
				}
			}
			return true
		})
	})
}

// isNamedCall reports a call to a plain identifier with the given name —
// the engine's degrade/abortErr hooks are locals or package functions,
// matched by the protocol's naming convention.
func isNamedCall(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == name
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
