package budgetcharge_test

import (
	"testing"

	"xamdb/internal/lint/analysistest"
	"xamdb/internal/lint/budgetcharge"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata", budgetcharge.Analyzer, "budgetcharge_a")
}
