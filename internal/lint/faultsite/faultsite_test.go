package faultsite_test

import (
	"testing"

	"xamdb/internal/lint/analysistest"
	"xamdb/internal/lint/faultsite"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata", faultsite.Analyzer, "faultsite_a")
}
