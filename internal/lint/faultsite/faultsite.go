// Package faultsite defines an analyzer for the faultinject site registry
// (PR 1): every site name passed to faultinject.Check / Arm / Disarm /
// Hits must be a package-level named string constant. Inline literals
// drift — a test arming "storage.save" keeps passing after the production
// site is renamed, silently injecting nothing — and make the registry
// ungreppable. With named constants, the full site inventory is
// `grep -rn 'Site[A-Z]' internal/`.
package faultsite

import (
	"go/ast"
	"go/types"

	"xamdb/internal/lint/analysis"
)

const faultinjectPath = "xamdb/internal/faultinject"

// Analyzer reports fault-site arguments that are not package-level named
// constants.
var Analyzer = &analysis.Analyzer{
	Name: "faultsite",
	Doc:  "faultinject site names must be package-level named constants, not inline string literals",
	Run:  run,
}

var siteFuncs = map[string]bool{"Check": true, "Arm": true, "Disarm": true, "Hits": true}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == faultinjectPath {
		return nil // the registry implementation handles raw strings by design
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn, ok := analysis.Callee(pass.TypesInfo, call).(*types.Func)
			if !ok || !siteFuncs[fn.Name()] || fn.Pkg() == nil || fn.Pkg().Path() != faultinjectPath {
				return true
			}
			site := ast.Unparen(call.Args[0])
			if !isPackageConst(pass.TypesInfo, site) {
				pass.Reportf(site.Pos(),
					"fault site passed to faultinject.%s must be a package-level named string constant (inline values drift out of the site registry)", fn.Name())
			}
			return true
		})
	}
	return nil
}

// isPackageConst reports whether e names a constant declared at some
// package's top level.
func isPackageConst(info *types.Info, e ast.Expr) bool {
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return false
	}
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil {
		return false
	}
	return c.Parent() == c.Pkg().Scope()
}
