package iterimpl_test

import (
	"testing"

	"xamdb/internal/lint/analysistest"
	"xamdb/internal/lint/iterimpl"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata", iterimpl.Analyzer, "iterimpl_a")
}
