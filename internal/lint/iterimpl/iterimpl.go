// Package iterimpl defines an analyzer for physical.Iterator
// implementations and structural-join construction. Two invariants:
//
//  1. A type implementing physical.Iterator must declare Schema, Order and
//     Next on receivers of the same kind (all pointer or all value). A
//     split method set means copies of the iterator share or lose
//     per-iteration state depending on which method is called — the bug
//     surfaces as duplicated or dropped tuples, never as a compile error.
//
//  2. StackTree structural joins require inputs sorted by the join
//     attribute, and the optimizer verifies this through order
//     descriptors. Feeding a NewStackTree* constructor a scan with a nil
//     or empty algebra.OrderDesc declares "no known order" and is always
//     either a latent runtime error or a lie about sortedness; the order
//     must be declared at the scan.
package iterimpl

import (
	"go/ast"
	"go/types"
	"strings"

	"xamdb/internal/lint/analysis"
)

const (
	physicalPath = "xamdb/internal/physical"
	algebraPath  = "xamdb/internal/algebra"
)

// Analyzer reports Iterator implementations with mixed receiver kinds and
// StackTree constructors fed order-less scans.
var Analyzer = &analysis.Analyzer{
	Name: "iterimpl",
	Doc:  "physical.Iterator methods must share one receiver kind; StackTree inputs must declare their order",
	Run:  run,
}

var iterMethods = []string{"Schema", "Order", "Next"}

func run(pass *analysis.Pass) error {
	iterObj := pass.ImportedObject(physicalPath, "Iterator")
	if iterObj == nil {
		return nil // cannot implement or construct without the package
	}
	iface, ok := iterObj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	checkImplementations(pass, iface)
	checkConstructors(pass)
	return nil
}

// checkImplementations enforces receiver-kind consistency on every named
// type of the package whose pointer (or value) satisfies Iterator.
func checkImplementations(pass *analysis.Pass, iface *types.Interface) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if types.IsInterface(named) {
			continue
		}
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		var ptrRecv, valRecv []string
		for _, m := range iterMethods {
			fn := ownMethod(named, m)
			if fn == nil {
				continue // promoted from an embedded iterator; its own type is checked
			}
			if _, isPtr := fn.Type().(*types.Signature).Recv().Type().(*types.Pointer); isPtr {
				ptrRecv = append(ptrRecv, m)
			} else {
				valRecv = append(valRecv, m)
			}
		}
		if len(ptrRecv) > 0 && len(valRecv) > 0 {
			pass.Reportf(tn.Pos(),
				"%s implements physical.Iterator with mixed receivers: %s on pointer, %s on value; per-iteration state is lost on copies",
				name, strings.Join(ptrRecv, "/"), strings.Join(valRecv, "/"))
		}
	}
}

// ownMethod returns the method declared directly on named (not promoted
// from an embedded field), or nil.
func ownMethod(named *types.Named, name string) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// checkConstructors flags NewStackTree* calls whose input scans declare no
// order.
func checkConstructors(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := analysis.Callee(pass.TypesInfo, call).(*types.Func)
			if !ok || !strings.HasPrefix(fn.Name(), "NewStackTree") {
				return true
			}
			if fn.Pkg() == nil || fn.Pkg().Path() != physicalPath {
				return true
			}
			for _, arg := range call.Args {
				checkInput(pass, arg)
			}
			return true
		})
	}
}

// checkInput inspects one constructor argument for order-less scans and
// bare empty OrderDesc literals.
func checkInput(pass *analysis.Pass, arg ast.Expr) {
	switch e := ast.Unparen(arg).(type) {
	case *ast.CallExpr:
		if analysis.IsFunc(analysis.Callee(pass.TypesInfo, e), physicalPath, "NewScan") && len(e.Args) == 2 {
			if orderless(pass, e.Args[1]) {
				pass.Reportf(e.Args[1].Pos(),
					"structural-join input scan declares no order; StackTree requires inputs sorted by the join attribute (pass the algebra.OrderDesc the data satisfies, or sort first)")
			}
		}
	case *ast.CompositeLit:
		if orderless(pass, e) {
			pass.Reportf(e.Pos(),
				"empty algebra.OrderDesc passed to a structural join; declare the order the input satisfies")
		}
	}
}

// orderless reports whether e is nil or an empty algebra.OrderDesc
// composite literal.
func orderless(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if ok && tv.IsNil() {
		return true
	}
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok || len(lit.Elts) > 0 {
		return false
	}
	return analysis.NamedType(pass.TypesInfo.Types[lit].Type, algebraPath, "OrderDesc")
}
