// Package lint assembles the xamlint analyzer suite: compile-time
// enforcement of the engine's runtime contracts (cancellation,
// error-chain preservation, iterator/order discipline, fault-site
// registry hygiene, no-panic library surfaces) and — since the dataflow
// layer landed — its concurrency protocols (lock order, snapshot
// immutability, atomic-access hygiene, quota charging, HTTP status
// discipline). The suite runs three ways, all equivalent:
//
//	go run ./cmd/xamlint ./...   (locally and as a required CI step)
//	go test ./internal/lint      (TestRepoClean, part of tier-1 tests)
//	per-analyzer analysistest fixtures under internal/lint/testdata
package lint

import (
	"xamdb/internal/lint/analysis"
	"xamdb/internal/lint/atomicfield"
	"xamdb/internal/lint/budgetcharge"
	"xamdb/internal/lint/ctxdrain"
	"xamdb/internal/lint/errwrap"
	"xamdb/internal/lint/faultsite"
	"xamdb/internal/lint/httpstatus"
	"xamdb/internal/lint/iterimpl"
	"xamdb/internal/lint/lockorder"
	"xamdb/internal/lint/nopanic"
	"xamdb/internal/lint/snapshot"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.Analyzer,
		budgetcharge.Analyzer,
		ctxdrain.Analyzer,
		errwrap.Analyzer,
		faultsite.Analyzer,
		httpstatus.Analyzer,
		iterimpl.Analyzer,
		lockorder.Analyzer,
		nopanic.Analyzer,
		snapshot.Analyzer,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
