// Package lint assembles the xamlint analyzer suite: compile-time
// enforcement of the engine's runtime contracts (cancellation,
// error-chain preservation, iterator/order discipline, fault-site
// registry hygiene, no-panic library surfaces). The suite runs three
// ways, all equivalent:
//
//	go run ./cmd/xamlint ./...   (locally and as a required CI step)
//	go test ./internal/lint      (TestRepoClean, part of tier-1 tests)
//	per-analyzer analysistest fixtures under internal/lint/testdata
package lint

import (
	"xamdb/internal/lint/analysis"
	"xamdb/internal/lint/ctxdrain"
	"xamdb/internal/lint/errwrap"
	"xamdb/internal/lint/faultsite"
	"xamdb/internal/lint/iterimpl"
	"xamdb/internal/lint/nopanic"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxdrain.Analyzer,
		errwrap.Analyzer,
		faultsite.Analyzer,
		iterimpl.Analyzer,
		nopanic.Analyzer,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
