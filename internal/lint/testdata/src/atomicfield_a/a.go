// Fixture for the atomicfield analyzer: mixed atomic/plain access to the
// same field or package variable is a race.
package atomicfield_a

import "sync/atomic"

type counter struct {
	n int64 // accessed atomically below: every other access must be too
	m int64 // never atomic: plain access is fine
}

func bump(c *counter) {
	atomic.AddInt64(&c.n, 1)
}

func atomicRead(c *counter) int64 {
	return atomic.LoadInt64(&c.n)
}

func plainWrite(c *counter) {
	c.n = 0 // want "mixed access races"
}

func plainRead(c *counter) int64 {
	return c.n // want "mixed access races"
}

func aliasedWrite(c *counter) {
	p := &c.n // want "mixed access races"
	*p = 1
}

func plainOther(c *counter) {
	c.m = 2 // m is never touched atomically
}

// Composite-literal keys initialize a value nobody shares yet.
func fresh() *counter {
	return &counter{n: 0, m: 0}
}

var total int64

func addTotal() {
	atomic.AddInt64(&total, 1)
}

func readTotal() int64 {
	return total // want "mixed access races"
}

func casTotal(old, new int64) bool {
	return atomic.CompareAndSwapInt64(&total, old, new)
}

// A suppressed plain read: the snapshot is taken after all writers have
// been joined, which the analyzer cannot see.
func finalTotal() int64 {
	//xamlint:allow atomicfield(fixture: read after writer join, no concurrency remains)
	return total
}

// Typed atomics are type-safe: no legacy functions involved, nothing to
// report even though reads and writes mix freely with method calls.
type typed struct {
	v atomic.Int64
}

func typedUse(t *typed) int64 {
	t.v.Store(3)
	return t.v.Load()
}
