// Fixture for the snapshot analyzer: atomic.Pointer payloads are
// immutable after Load; publication Stores fresh values under a lock.
package snapshot_a

import (
	"sync"
	"sync/atomic"
)

type env struct {
	gen  int
	tags []string
}

type holder struct {
	mu sync.Mutex
	pe atomic.Pointer[env]
}

func readOK(h *holder) int {
	e := h.pe.Load()
	return e.gen // reading a snapshot is the whole point
}

func mutateLoaded(h *holder) {
	e := h.pe.Load()
	e.gen = 7 // want "snapshots are immutable"
}

func mutateLoadedIncDec(h *holder) {
	e := h.pe.Load()
	e.gen++ // want "snapshots are immutable"
}

func mutateLoadedElement(h *holder) {
	e := h.pe.Load()
	e.tags[0] = "x" // want "snapshots are immutable"
}

func mutateLoadedBranch(h *holder, cond bool) {
	e := &env{}
	if cond {
		e = h.pe.Load()
	}
	e.gen = 1 // want "snapshots are immutable"
}

func rebindThenMutate(h *holder) {
	e := h.pe.Load()
	e = &env{gen: e.gen + 1}
	e.gen = 2 // rebound to a fresh value: fine
	h.mu.Lock()
	defer h.mu.Unlock()
	h.pe.Store(e)
}

func republish(h *holder) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.pe.Load()
	h.pe.Store(e) // want "re-publishes an aliased snapshot"
}

func publishUnlocked(h *holder) {
	h.pe.Store(&env{}) // want "outside a locked publish path"
}

func publishUnderLock(h *holder) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.pe.Store(&env{gen: 1})
}

// The repo convention: a *Locked suffix promises the caller holds the
// owner's mutex.
func (h *holder) publishLocked(gen int) {
	old := h.pe.Load()
	next := &env{gen: gen, tags: old.tags}
	h.pe.Store(next)
}

// Initializing a fresh, not-yet-published holder needs no lock (the
// AddDocument pattern).
func build() *holder {
	h := &holder{}
	h.pe.Store(&env{})
	return h
}

// A suppressed violation: reasoned directives drop the finding.
func rebuildCache(h *holder) {
	//xamlint:allow snapshot(fixture: idempotent rebuild, racing stores converge)
	h.pe.Store(&env{})
}

// A closure gets its own dataflow: the literal never Loads, so its write
// to the captured pointer is not charged against the enclosing Load (the
// sync.Once lazy-init pattern).
func lazyInit(h *holder, once *sync.Once) int {
	e := h.pe.Load()
	once.Do(func() {
		e.gen = 42
	})
	return e.gen
}
