// Fixture for the errwrap analyzer: fmt.Errorf must wrap error arguments
// with %w.
package errwrap_a

import (
	"errors"
	"fmt"
)

type codeError struct{ code int }

func (e *codeError) Error() string { return fmt.Sprintf("code %d", e.code) }

func wrapV(err error) error {
	return fmt.Errorf("load failed: %v", err) // want "loses the error chain"
}

func wrapS(path string, err error) error {
	return fmt.Errorf("save %s: %s", path, err) // want "loses the error chain"
}

func wrapConcrete(e *codeError) error {
	return fmt.Errorf("upstream: %v", e) // want "loses the error chain"
}

func flatten(err error) error {
	return fmt.Errorf("save: %s", err.Error()) // want "flattens the error chain"
}

func wrapOK(path string, err error) error {
	return fmt.Errorf("save %s: %w", path, err)
}

func doubleWrapOK(a, b error) error {
	return fmt.Errorf("both failed: %w / %w", a, b)
}

func notError(n int) error {
	return fmt.Errorf("bad count %v (max %s)", n, "ten")
}

func starWidth(err error) error {
	return fmt.Errorf("%*d failed: %v", 3, 7, err) // want "loses the error chain"
}

func dynamicFormat(f string, err error) error {
	return fmt.Errorf(f, err) // unverifiable format: allowed
}

var errSentinel = errors.New("sentinel")

func mixed(path string) error {
	return fmt.Errorf("open %q: %w", path, errSentinel)
}
