// Fixture for the lockorder analyzer: acquisition order, balance on
// every path, and no blocking operations under a lock.
package lockorder_a

import (
	"context"
	"sync"
	"time"

	"xamdb/internal/admission"
)

// Engine and docState replicate the shape of the engine's locking
// protocol; the analyzer orders the locks by type and field name.
type Engine struct {
	mu   sync.RWMutex
	docs map[string]*docState
}

type docState struct {
	mu  sync.Mutex
	gen int
}

func orderOK(e *Engine, st *docState) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.gen++
}

func orderInverted(e *Engine, st *docState) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e.mu.Lock() // want "lock order inversion"
	defer e.mu.Unlock()
}

func orderInvertedRead(e *Engine, st *docState) {
	st.mu.Lock()
	e.mu.RLock() // want "lock order inversion"
	e.mu.RUnlock()
	st.mu.Unlock()
}

func sequentialNotNested(e *Engine, st *docState) {
	st.mu.Lock()
	st.mu.Unlock()
	e.mu.Lock() // released before acquiring: no inversion
	e.mu.Unlock()
}

func balancedDefer(st *docState) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.gen++
}

func balancedExplicit(st *docState, cond bool) int {
	st.mu.Lock()
	if cond {
		st.mu.Unlock()
		return 0
	}
	g := st.gen
	st.mu.Unlock()
	return g
}

func leakOnOnePath(st *docState, cond bool) int { // early return leaks the lock
	st.mu.Lock() // want "may still be held at function exit"
	if cond {
		return 0
	}
	g := st.gen
	st.mu.Unlock()
	return g
}

func doubleAcquire(st *docState) {
	st.mu.Lock() // first acquisition is fine
	st.mu.Lock() // want "may already be held"
	st.mu.Unlock()
	// The held-set does not count recursive acquisitions, so the second
	// unlock releases a lock the model no longer tracks.
	st.mu.Unlock() // want "not held on any path"
}

func unlockNotHeld(st *docState) {
	st.mu.Unlock() // want "not held on any path"
}

func sendUnderLock(st *docState, ch chan int) {
	st.mu.Lock()
	ch <- st.gen // want "channel send while"
	st.mu.Unlock()
}

func recvUnderLock(st *docState, ch chan int) {
	st.mu.Lock()
	st.gen = <-ch // want "channel receive while"
	st.mu.Unlock()
}

func rangeChanUnderLock(st *docState, ch chan int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for v := range ch { // want "range over channel while"
		st.gen += v
	}
}

func selectBlockingUnderLock(st *docState, ch chan int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	select {
	case v := <-ch: // want "channel receive while"
		st.gen = v
	}
}

// The admission controller's reserve-under-lock shape: a select with a
// default case cannot block, so sending under the lock is fine.
func selectDefaultUnderLock(st *docState, ch chan int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	select {
	case ch <- st.gen:
		return true
	default:
		return false
	}
}

func sendAfterUnlock(st *docState, ch chan int) {
	st.mu.Lock()
	g := st.gen
	st.mu.Unlock()
	ch <- g // lock released: fine
}

func admissionUnderLock(st *docState, c *admission.Controller, ctx context.Context) {
	st.mu.Lock()
	defer st.mu.Unlock()
	c.Do(ctx, time.Second, func(context.Context) error { return nil }) // want "admission.Do call while"
}

func admissionUnlocked(st *docState, c *admission.Controller, ctx context.Context) {
	st.mu.Lock()
	st.gen++
	st.mu.Unlock()
	c.Do(ctx, time.Second, func(context.Context) error { return nil })
}

// A suppressed violation: the directive must carry a reason and names the
// analyzer, so the finding on the next line is dropped.
func suppressed(st *docState, ch chan int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	//xamlint:allow lockorder(fixture: documented handoff, receiver is never concurrent here)
	ch <- st.gen
}

// Locks inside a loop body, released before the back edge: balanced.
func lockPerIteration(st *docState, n int) {
	for i := 0; i < n; i++ {
		st.mu.Lock()
		st.gen++
		st.mu.Unlock()
	}
}

// A function literal gets its own CFG: the goroutine's lock use is
// checked independently and does not leak into the enclosing function.
func spawn(st *docState) {
	go func() {
		st.mu.Lock()
		defer st.mu.Unlock()
		st.gen++
	}()
}
