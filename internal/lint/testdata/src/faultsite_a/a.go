// Fixture for the faultsite analyzer: fault-site names must be
// package-level named constants.
package faultsite_a

import "xamdb/internal/faultinject"

// SiteLoad is a registered fault site; exported so tests elsewhere can arm
// the same name the production check consults.
const SiteLoad = "faultsite_a.load"

const siteLocal = "faultsite_a.local" // unexported package-level is fine too

func checks() error {
	if err := faultinject.Check("faultsite_a.inline"); err != nil { // want "package-level named string constant"
		return err
	}
	if err := faultinject.Check(SiteLoad); err != nil {
		return err
	}
	return faultinject.Check(siteLocal)
}

func arm() {
	faultinject.Arm("inline.site", faultinject.Fault{}) // want "package-level named string constant"
	faultinject.Arm(SiteLoad, faultinject.Fault{})
}

func localConst() {
	const site = "local.const"
	faultinject.Disarm(site) // want "package-level named string constant"
}

func dynamic(name string) int {
	return faultinject.Hits("pre." + name) // want "package-level named string constant"
}
