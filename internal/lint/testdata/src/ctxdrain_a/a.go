// Fixture for the ctxdrain analyzer: context-blind drains must be
// reported wherever a context.Context is in scope.
package ctxdrain_a

import (
	"context"

	"xamdb/internal/algebra"
	"xamdb/internal/physical"
	"xamdb/internal/rewrite"
)

func drainRaw(ctx context.Context, it physical.Iterator) *algebra.Relation {
	return physical.Drain(it) // want "use physical.DrainContext"
}

func drainOK(ctx context.Context, it physical.Iterator) (*algebra.Relation, error) {
	return physical.DrainContext(ctx, it)
}

func noCtx(it physical.Iterator) *algebra.Relation {
	return physical.Drain(it) // no context in scope: allowed
}

func execRaw(ctx context.Context, p rewrite.Plan, env rewrite.Env) (*algebra.Relation, error) {
	return rewrite.ExecutePhysical(p, env) // want "use rewrite.ExecutePhysicalContext"
}

func execOK(ctx context.Context, p rewrite.Plan, env rewrite.Env) (*algebra.Relation, error) {
	return rewrite.ExecutePhysicalContext(ctx, p, env)
}

func rawLoop(ctx context.Context, it physical.Iterator) int {
	n := 0
	for { // want "without consulting the in-scope context"
		_, ok := it.Next()
		if !ok {
			break
		}
		n++
	}
	return n
}

func politeLoop(ctx context.Context, it physical.Iterator) (int, error) {
	n := 0
	for {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		_, ok := it.Next()
		if !ok {
			return n, nil
		}
		n++
	}
}

func checkpointLoop(ctx context.Context, it physical.Iterator) int {
	cp := physical.NewCheckpoint(ctx, it)
	n := 0
	for {
		_, ok := cp.Next() // checkpoint polls the context itself: allowed
		if !ok {
			break
		}
		n++
	}
	return n
}

func closure(ctx context.Context, it physical.Iterator) func() *algebra.Relation {
	return func() *algebra.Relation {
		return physical.Drain(it) // want "use physical.DrainContext"
	}
}

func unnamedCtx(_ context.Context, it physical.Iterator) *algebra.Relation {
	return physical.Drain(it) // want "use physical.DrainContext"
}
