// Fixture for the budgetcharge analyzer: leaf Next implementations must
// charge the budget, and errors entering the fallback cascade must be
// abortErr-vetted.
package budgetcharge_a

import (
	"context"
	"errors"

	"xamdb/internal/algebra"
	"xamdb/internal/physical"
	"xamdb/internal/value"
)

// leafBad yields tuples from a buffer without ever pulling an upstream
// or charging a budget: quota kills can never reach it.
type leafBad struct {
	rows []algebra.Tuple
	pos  int
}

func (l *leafBad) Schema() *algebra.Schema      { return nil }
func (l *leafBad) Order() (o algebra.OrderDesc) { return }

func (l *leafBad) Next() (algebra.Tuple, bool) { // want "leaf Iterator.Next"
	if l.pos >= len(l.rows) {
		return nil, false
	}
	t := l.rows[l.pos]
	l.pos++
	return t, true
}

// leafCharged is a leaf too, but it charges the budget per tuple.
type leafCharged struct {
	rows []algebra.Tuple
	pos  int
	b    *physical.Budget
}

func (l *leafCharged) Schema() *algebra.Schema      { return nil }
func (l *leafCharged) Order() (o algebra.OrderDesc) { return }

func (l *leafCharged) Next() (algebra.Tuple, bool) {
	if l.pos >= len(l.rows) {
		return nil, false
	}
	if err := l.b.ChargeTuples(1); err != nil {
		return nil, false
	}
	t := l.rows[l.pos]
	l.pos++
	return t, true
}

// wrapper pulls an upstream iterator: the checkpoint at the chain's leaf
// charges for it, so it needs no budget of its own.
type wrapper struct {
	in physical.Iterator
}

func (w *wrapper) Schema() *algebra.Schema      { return w.in.Schema() }
func (w *wrapper) Order() (o algebra.OrderDesc) { return w.in.Order() }

func (w *wrapper) Next() (algebra.Tuple, bool) {
	return w.in.Next()
}

// checkpointed builds its own checkpoint over a relation: covered.
type checkpointed struct {
	ctx context.Context
	rel *algebra.Relation
	cp  *physical.Checkpoint
}

func (c *checkpointed) Schema() *algebra.Schema      { return c.rel.Schema }
func (c *checkpointed) Order() (o algebra.OrderDesc) { return }

func (c *checkpointed) Next() (t algebra.Tuple, ok bool) {
	if c.cp == nil {
		c.cp = physical.NewCheckpoint(c.ctx, physical.NewScan(c.rel, nil))
	}
	return c.cp.Next()
}

// leafAllowed is a leaf whose every construction site wraps it in a
// Checkpoint; the directive records that argument.
type leafAllowed struct {
	rows []algebra.Tuple
	pos  int
}

func (l *leafAllowed) Schema() *algebra.Schema      { return nil }
func (l *leafAllowed) Order() (o algebra.OrderDesc) { return }

//xamlint:allow budgetcharge(fixture: wrapped in NewCheckpoint at every construction site)
func (l *leafAllowed) Next() (algebra.Tuple, bool) {
	if l.pos >= len(l.rows) {
		return nil, false
	}
	t := l.rows[l.pos]
	l.pos++
	return t, true
}

// filterLeafBad mirrors a fused residual-selection leaf (σ_φ over an extent)
// that filters without the quota protocol: it examines arbitrarily many
// tuples between emissions, yet never charges the budget — for a selective
// formula a quota kill could be deferred across the whole extent.
type filterLeafBad struct {
	rel *algebra.Relation
	col int
	f   value.Formula
	pos int
}

func (l *filterLeafBad) Schema() *algebra.Schema      { return l.rel.Schema }
func (l *filterLeafBad) Order() (o algebra.OrderDesc) { return }

func (l *filterLeafBad) Next() (algebra.Tuple, bool) { // want "leaf Iterator.Next"
	for l.pos < l.rel.Len() {
		t := l.rel.Tuples[l.pos]
		l.pos++
		if l.f.Holds(value.Str(t[l.col].AsString())) {
			return t, true
		}
	}
	return nil, false
}

// filterLeafCharged is the same fused filter carrying the protocol itself:
// it charges one batch of examined tuples at a time, so quota kills stay
// responsive even when nothing satisfies the formula for long stretches.
type filterLeafCharged struct {
	rel      *algebra.Relation
	b        *physical.Budget
	col      int
	f        value.Formula
	pos      int
	examined int
}

func (l *filterLeafCharged) Schema() *algebra.Schema      { return l.rel.Schema }
func (l *filterLeafCharged) Order() (o algebra.OrderDesc) { return }

func (l *filterLeafCharged) Next() (algebra.Tuple, bool) {
	for l.pos < l.rel.Len() {
		if l.examined%64 == 0 {
			if err := l.b.ChargeTuples(64); err != nil {
				return nil, false
			}
		}
		t := l.rel.Tuples[l.pos]
		l.pos++
		l.examined++
		if l.f.Holds(value.Str(t[l.col].AsString())) {
			return t, true
		}
	}
	return nil, false
}

// notAnIterator has a Next that does not implement physical.Iterator:
// out of scope.
type notAnIterator struct{ n int }

func (x *notAnIterator) Next() int {
	x.n++
	return x.n
}

// --- batch pull protocol (BatchIterator.NextBatch) ---

// batchLeafBad slices batches out of a relation's columns without polling
// or charging: between batches a quota kill can never land.
type batchLeafBad struct {
	cols *algebra.Columns
	pos  int
}

func (l *batchLeafBad) Schema() *algebra.Schema      { return l.cols.Schema }
func (l *batchLeafBad) Order() (o algebra.OrderDesc) { return }

func (l *batchLeafBad) NextBatch() (*physical.Batch, bool) { // want "leaf BatchIterator.NextBatch"
	if l.pos >= l.cols.NRows {
		return nil, false
	}
	n := l.cols.NRows - l.pos
	if n > physical.BatchSize {
		n = physical.BatchSize
	}
	cols := make([][]algebra.Value, len(l.cols.Cols))
	for j := range cols {
		cols[j] = l.cols.Cols[j][l.pos : l.pos+n]
	}
	l.pos += n
	return &physical.Batch{Schema: l.cols.Schema, Cols: cols, N: n}, true
}

// batchLeafCharged is the same leaf charging the tuple quota per batch
// window, directly on the budget.
type batchLeafCharged struct {
	cols *algebra.Columns
	b    *physical.Budget
	pos  int
}

func (l *batchLeafCharged) Schema() *algebra.Schema      { return l.cols.Schema }
func (l *batchLeafCharged) Order() (o algebra.OrderDesc) { return }

func (l *batchLeafCharged) NextBatch() (*physical.Batch, bool) {
	if l.pos >= l.cols.NRows {
		return nil, false
	}
	n := l.cols.NRows - l.pos
	if n > physical.BatchSize {
		n = physical.BatchSize
	}
	if err := l.b.ChargeTuples(int64(n)); err != nil {
		return nil, false
	}
	cols := make([][]algebra.Value, len(l.cols.Cols))
	for j := range cols {
		cols[j] = l.cols.Cols[j][l.pos : l.pos+n]
	}
	l.pos += n
	return &physical.Batch{Schema: l.cols.Schema, Cols: cols, N: n}, true
}

// chargeWindow is the batchCancelCheck shape: the per-batch charge routed
// through a shared package-level helper.
func chargeWindow(b *physical.Budget, n int) bool {
	return b.ChargeTuples(int64(n)) == nil
}

// batchLeafHelperCharged charges through chargeWindow: the analyzer must
// follow same-package helper calls to see the charge.
type batchLeafHelperCharged struct {
	cols *algebra.Columns
	b    *physical.Budget
	pos  int
}

func (l *batchLeafHelperCharged) Schema() *algebra.Schema      { return l.cols.Schema }
func (l *batchLeafHelperCharged) Order() (o algebra.OrderDesc) { return }

func (l *batchLeafHelperCharged) NextBatch() (*physical.Batch, bool) {
	if l.pos >= l.cols.NRows {
		return nil, false
	}
	n := l.cols.NRows - l.pos
	if n > physical.BatchSize {
		n = physical.BatchSize
	}
	if !chargeWindow(l.b, n) {
		return nil, false
	}
	cols := make([][]algebra.Value, len(l.cols.Cols))
	for j := range cols {
		cols[j] = l.cols.Cols[j][l.pos : l.pos+n]
	}
	l.pos += n
	return &physical.Batch{Schema: l.cols.Schema, Cols: cols, N: n}, true
}

// batchWrapper pulls an upstream BatchIterator: charged at the chain's
// leaf scan, so it needs no budget of its own.
type batchWrapper struct {
	in physical.BatchIterator
}

func (w *batchWrapper) Schema() *algebra.Schema      { return w.in.Schema() }
func (w *batchWrapper) Order() (o algebra.OrderDesc) { return w.in.Order() }

func (w *batchWrapper) NextBatch() (*physical.Batch, bool) {
	return w.in.NextBatch()
}

// unbatchLike is a row iterator fed by a batch upstream (the Unbatch
// adapter shape): the cross-protocol pull is coverage — the batch chain's
// leaf charges per batch.
type unbatchLike struct {
	in  physical.BatchIterator
	cur *physical.Batch
	pos int
}

func (u *unbatchLike) Schema() *algebra.Schema      { return u.in.Schema() }
func (u *unbatchLike) Order() (o algebra.OrderDesc) { return u.in.Order() }

func (u *unbatchLike) Next() (algebra.Tuple, bool) {
	for u.cur == nil || u.pos >= u.cur.Rows() {
		b, ok := u.in.NextBatch()
		if !ok {
			return nil, false
		}
		u.cur, u.pos = b, 0
	}
	t := u.cur.Tuple(u.pos)
	u.pos++
	return t, true
}

// batchLeafAllowed is a batch leaf whose construction sites guarantee
// coverage; the directive records that argument.
type batchLeafAllowed struct {
	cols *algebra.Columns
	pos  int
}

func (l *batchLeafAllowed) Schema() *algebra.Schema      { return l.cols.Schema }
func (l *batchLeafAllowed) Order() (o algebra.OrderDesc) { return }

//xamlint:allow budgetcharge(fixture: every construction site feeds it through a charging BatchScan)
func (l *batchLeafAllowed) NextBatch() (*physical.Batch, bool) {
	if l.pos >= l.cols.NRows {
		return nil, false
	}
	n := l.cols.NRows - l.pos
	cols := make([][]algebra.Value, len(l.cols.Cols))
	for j := range cols {
		cols[j] = l.cols.Cols[j][l.pos : l.pos+n]
	}
	l.pos += n
	return &physical.Batch{Schema: l.cols.Schema, Cols: cols, N: n}, true
}

// --- fallback cascade rules ---

var errPlan = errors.New("plan failed")

func abortErr(err error) bool {
	return errors.Is(err, physical.ErrQuotaExceeded)
}

func degrade(plan string, err error) { _ = plan; _ = err }

func cascadeGuarded(err error) {
	if err != nil {
		if abortErr(err) {
			return
		}
		degrade("p1", err)
	}
}

func cascadeGuardedOr(ctx context.Context, err error) {
	if abortErr(err) || ctx.Err() != nil {
		return
	}
	degrade("p2", err)
}

func cascadeUnguarded(err error) {
	if err != nil {
		degrade("p3", err) // want "without an abortErr guard"
	}
}

func cascadeReassigned(err error) {
	if abortErr(err) {
		return
	}
	err = errPlan
	degrade("p4", err) // want "without an abortErr guard"
}

func cascadeOneBranchOnly(err error, cond bool) {
	if cond {
		if abortErr(err) {
			return
		}
	}
	degrade("p5", err) // want "without an abortErr guard"
}

func cascadeSuppressed(err error) {
	//xamlint:allow budgetcharge(fixture: err proven non-quota by construction above)
	degrade("p6", err)
}

func cascadeNonError() {
	degrade("p7", nil) // no error identifier: nothing to vet
}
