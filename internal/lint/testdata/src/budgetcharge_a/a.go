// Fixture for the budgetcharge analyzer: leaf Next implementations must
// charge the budget, and errors entering the fallback cascade must be
// abortErr-vetted.
package budgetcharge_a

import (
	"context"
	"errors"

	"xamdb/internal/algebra"
	"xamdb/internal/physical"
	"xamdb/internal/value"
)

// leafBad yields tuples from a buffer without ever pulling an upstream
// or charging a budget: quota kills can never reach it.
type leafBad struct {
	rows []algebra.Tuple
	pos  int
}

func (l *leafBad) Schema() *algebra.Schema      { return nil }
func (l *leafBad) Order() (o algebra.OrderDesc) { return }

func (l *leafBad) Next() (algebra.Tuple, bool) { // want "leaf Iterator.Next"
	if l.pos >= len(l.rows) {
		return nil, false
	}
	t := l.rows[l.pos]
	l.pos++
	return t, true
}

// leafCharged is a leaf too, but it charges the budget per tuple.
type leafCharged struct {
	rows []algebra.Tuple
	pos  int
	b    *physical.Budget
}

func (l *leafCharged) Schema() *algebra.Schema      { return nil }
func (l *leafCharged) Order() (o algebra.OrderDesc) { return }

func (l *leafCharged) Next() (algebra.Tuple, bool) {
	if l.pos >= len(l.rows) {
		return nil, false
	}
	if err := l.b.ChargeTuples(1); err != nil {
		return nil, false
	}
	t := l.rows[l.pos]
	l.pos++
	return t, true
}

// wrapper pulls an upstream iterator: the checkpoint at the chain's leaf
// charges for it, so it needs no budget of its own.
type wrapper struct {
	in physical.Iterator
}

func (w *wrapper) Schema() *algebra.Schema      { return w.in.Schema() }
func (w *wrapper) Order() (o algebra.OrderDesc) { return w.in.Order() }

func (w *wrapper) Next() (algebra.Tuple, bool) {
	return w.in.Next()
}

// checkpointed builds its own checkpoint over a relation: covered.
type checkpointed struct {
	ctx context.Context
	rel *algebra.Relation
	cp  *physical.Checkpoint
}

func (c *checkpointed) Schema() *algebra.Schema      { return c.rel.Schema }
func (c *checkpointed) Order() (o algebra.OrderDesc) { return }

func (c *checkpointed) Next() (t algebra.Tuple, ok bool) {
	if c.cp == nil {
		c.cp = physical.NewCheckpoint(c.ctx, physical.NewScan(c.rel, nil))
	}
	return c.cp.Next()
}

// leafAllowed is a leaf whose every construction site wraps it in a
// Checkpoint; the directive records that argument.
type leafAllowed struct {
	rows []algebra.Tuple
	pos  int
}

func (l *leafAllowed) Schema() *algebra.Schema      { return nil }
func (l *leafAllowed) Order() (o algebra.OrderDesc) { return }

//xamlint:allow budgetcharge(fixture: wrapped in NewCheckpoint at every construction site)
func (l *leafAllowed) Next() (algebra.Tuple, bool) {
	if l.pos >= len(l.rows) {
		return nil, false
	}
	t := l.rows[l.pos]
	l.pos++
	return t, true
}

// filterLeafBad mirrors a fused residual-selection leaf (σ_φ over an extent)
// that filters without the quota protocol: it examines arbitrarily many
// tuples between emissions, yet never charges the budget — for a selective
// formula a quota kill could be deferred across the whole extent.
type filterLeafBad struct {
	rel *algebra.Relation
	col int
	f   value.Formula
	pos int
}

func (l *filterLeafBad) Schema() *algebra.Schema      { return l.rel.Schema }
func (l *filterLeafBad) Order() (o algebra.OrderDesc) { return }

func (l *filterLeafBad) Next() (algebra.Tuple, bool) { // want "leaf Iterator.Next"
	for l.pos < l.rel.Len() {
		t := l.rel.Tuples[l.pos]
		l.pos++
		if l.f.Holds(value.Str(t[l.col].AsString())) {
			return t, true
		}
	}
	return nil, false
}

// filterLeafCharged is the same fused filter carrying the protocol itself:
// it charges one batch of examined tuples at a time, so quota kills stay
// responsive even when nothing satisfies the formula for long stretches.
type filterLeafCharged struct {
	rel      *algebra.Relation
	b        *physical.Budget
	col      int
	f        value.Formula
	pos      int
	examined int
}

func (l *filterLeafCharged) Schema() *algebra.Schema      { return l.rel.Schema }
func (l *filterLeafCharged) Order() (o algebra.OrderDesc) { return }

func (l *filterLeafCharged) Next() (algebra.Tuple, bool) {
	for l.pos < l.rel.Len() {
		if l.examined%64 == 0 {
			if err := l.b.ChargeTuples(64); err != nil {
				return nil, false
			}
		}
		t := l.rel.Tuples[l.pos]
		l.pos++
		l.examined++
		if l.f.Holds(value.Str(t[l.col].AsString())) {
			return t, true
		}
	}
	return nil, false
}

// notAnIterator has a Next that does not implement physical.Iterator:
// out of scope.
type notAnIterator struct{ n int }

func (x *notAnIterator) Next() int {
	x.n++
	return x.n
}

// --- fallback cascade rules ---

var errPlan = errors.New("plan failed")

func abortErr(err error) bool {
	return errors.Is(err, physical.ErrQuotaExceeded)
}

func degrade(plan string, err error) { _ = plan; _ = err }

func cascadeGuarded(err error) {
	if err != nil {
		if abortErr(err) {
			return
		}
		degrade("p1", err)
	}
}

func cascadeGuardedOr(ctx context.Context, err error) {
	if abortErr(err) || ctx.Err() != nil {
		return
	}
	degrade("p2", err)
}

func cascadeUnguarded(err error) {
	if err != nil {
		degrade("p3", err) // want "without an abortErr guard"
	}
}

func cascadeReassigned(err error) {
	if abortErr(err) {
		return
	}
	err = errPlan
	degrade("p4", err) // want "without an abortErr guard"
}

func cascadeOneBranchOnly(err error, cond bool) {
	if cond {
		if abortErr(err) {
			return
		}
	}
	degrade("p5", err) // want "without an abortErr guard"
}

func cascadeSuppressed(err error) {
	//xamlint:allow budgetcharge(fixture: err proven non-quota by construction above)
	degrade("p6", err)
}

func cascadeNonError() {
	degrade("p7", nil) // no error identifier: nothing to vet
}
