package loaderedge_a

// Second file of the package: cross-file generic instantiation must
// type-check when the loader parses and checks all files together.
func Pairs() []Pair[string, int] {
	keys := []string{"a", "bb"}
	return Map(keys, func(k string) Pair[string, int] {
		return Pair[string, int]{Key: k, Val: len(k)}
	})
}
