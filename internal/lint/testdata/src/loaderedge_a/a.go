// Fixture for loader edge cases: generics, method values, and deferred
// cleanups inside loops — shapes the source importer and CFG builder
// must survive without losing type information.
package loaderedge_a

// Pair is a generic type instantiated from the package's other file.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}

// Map is a generic function; calls to it must leave instances in the
// type info so analyzers can resolve the concrete signatures.
func Map[T, U any](xs []T, f func(T) U) []U {
	out := make([]U, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

type counter struct{ n int }

func (c *counter) inc() { c.n++ }

// MethodValue binds a method value — the call site has no selector, an
// easy crash for naive callee resolution.
func MethodValue() int {
	c := &counter{}
	f := c.inc
	f()
	return c.n
}

// DeferInLoop stacks a deferred cleanup per iteration; the CFG must
// collect the defer even though it executes more than once.
func DeferInLoop(closers []func() error) (err error) {
	for _, close := range closers {
		defer func(cl func() error) {
			if e := cl(); e != nil && err == nil {
				err = e
			}
		}(close)
	}
	return nil
}
