// Fixture for the nopanic analyzer: library code returns errors; panics
// are reserved for constant invariant assertions, Must* wrappers,
// re-raises under recover, and reasoned suppressions.
package nopanic_a

import (
	"errors"
	"fmt"
)

var errBoom = errors.New("boom")

func parse(s string) error {
	if s == "" {
		panic("parse: empty input precondition") // constant assertion: allowed
	}
	if len(s) > 10 {
		panic(fmt.Sprintf("too long: %s", s)) // want "data-dependent panic"
	}
	if s == "boom" {
		panic(errBoom) // want "data-dependent panic"
	}
	return nil
}

// MustParse is the conventional panic-on-error opt-in wrapper: allowed.
func MustParse(s string) string {
	if err := parse(s); err != nil {
		panic(err)
	}
	return s
}

// mustParse hides a panic behind an unexported helper: still a violation.
func mustParse(s string) string {
	if err := parse(s); err != nil {
		panic(err) // want "data-dependent panic"
	}
	return s
}

// reraise recovers, filters, and re-panics: the DrainContext pattern,
// allowed.
func reraise(f func()) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok {
				err = e
				return
			}
			panic(p)
		}
	}()
	f()
	return nil
}

// suppressed carries a reasoned allow-directive: allowed, auditable.
func suppressed() {
	//xamlint:allow nopanic(fixture: demonstrates reasoned suppression)
	panic(errBoom)
}
