// Fixture for the httpstatus analyzer: only documented statuses, and
// 429/503 paths must arrange Retry-After.
package httpstatus_a

import "net/http"

func constOK(w http.ResponseWriter) {
	w.WriteHeader(http.StatusOK)
}

func constUndocumented(w http.ResponseWriter) {
	w.WriteHeader(http.StatusTeapot) // want "outside the documented map"
}

func httpErrorOK(w http.ResponseWriter) {
	http.Error(w, "bad body", http.StatusBadRequest)
}

func httpErrorUndocumented(w http.ResponseWriter) {
	http.Error(w, "gone", http.StatusGone) // want "outside the documented map"
}

// The handleQuery shape: a status local assigned only documented
// constants, Retry-After set on the paths that need it.
func switchShape(w http.ResponseWriter, outcome int, retryAfter string) {
	status := http.StatusOK
	switch outcome {
	case 1:
		status = http.StatusUnprocessableEntity
	case 2:
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", retryAfter)
	case 3:
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfter)
	default:
		status = http.StatusInternalServerError
	}
	w.WriteHeader(status)
}

func switchShapeUndocumented(w http.ResponseWriter, outcome int) {
	status := http.StatusOK
	if outcome > 0 {
		status = http.StatusNotImplemented
	}
	w.WriteHeader(status) // want "outside the documented map"
}

func unprovable(w http.ResponseWriter, status int) {
	w.WriteHeader(status) // want "not provably a constant"
}

func unprovableArith(w http.ResponseWriter, n int) {
	status := http.StatusOK
	status += n
	w.WriteHeader(status) // want "not provably a constant"
}

func shedNoRetryAfter(w http.ResponseWriter) {
	w.WriteHeader(http.StatusTooManyRequests) // want "without a Retry-After header"
}

func drainingNoRetryAfter(w http.ResponseWriter) {
	http.Error(w, "draining", http.StatusServiceUnavailable) // want "without a Retry-After header"
}

func shedWithRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "60")
	w.WriteHeader(http.StatusTooManyRequests)
}

// Retry-After on one path into the write suffices: the write is shared
// with paths that send non-backoff statuses.
func conditionalRetryAfter(w http.ResponseWriter, shed bool, retryAfter string) {
	status := http.StatusOK
	if shed {
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", retryAfter)
	}
	w.WriteHeader(status)
}

// The guardDraining shape used by the observability endpoints
// (/debug/workload, /debug/advisor): an early 503 + Retry-After while the
// admission controller drains, then a plain 200 body.
func drainGuardShape(w http.ResponseWriter, draining bool, retryAfter string) {
	if draining {
		w.Header().Set("Retry-After", retryAfter)
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// Same shape but the drain path forgets its Retry-After: still flagged.
func drainGuardShapeNoRetryAfter(w http.ResponseWriter, draining bool) {
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable) // want "without a Retry-After header"
		return
	}
	w.WriteHeader(http.StatusOK)
}

func suppressed(w http.ResponseWriter) {
	//xamlint:allow httpstatus(fixture: internal debug surface, clients are humans with curl)
	w.WriteHeader(http.StatusTeapot)
}

// Not a status write at all: other WriteHeader-free handlers are skipped.
func plain(w http.ResponseWriter) {
	_, _ = w.Write([]byte("ok"))
}
