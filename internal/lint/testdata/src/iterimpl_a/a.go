// Fixture for the iterimpl analyzer: Iterator implementations must use
// receiver-consistent methods, and StackTree inputs must declare orders.
package iterimpl_a

import (
	"xamdb/internal/algebra"
	"xamdb/internal/physical"
)

// mixed loses its cursor when copied: Next advances a pointer receiver
// while Schema/Order are value methods.
type mixed struct { // want "mixed receivers"
	rel *algebra.Relation
	pos int
}

func (m mixed) Schema() *algebra.Schema  { return m.rel.Schema }
func (m mixed) Order() algebra.OrderDesc { return nil }
func (m *mixed) Next() (algebra.Tuple, bool) {
	if m.pos >= m.rel.Len() {
		return nil, false
	}
	t := m.rel.Tuples[m.pos]
	m.pos++
	return t, true
}

// consistent is fine: all three methods on the pointer.
type consistent struct {
	rel *algebra.Relation
	pos int
}

func (c *consistent) Schema() *algebra.Schema  { return c.rel.Schema }
func (c *consistent) Order() algebra.OrderDesc { return nil }
func (c *consistent) Next() (algebra.Tuple, bool) {
	if c.pos >= c.rel.Len() {
		return nil, false
	}
	t := c.rel.Tuples[c.pos]
	c.pos++
	return t, true
}

// wrapper embeds an iterator; promoted methods are not its problem.
type wrapper struct {
	physical.Iterator
	label string
}

func badJoin(anc, desc *algebra.Relation) {
	_, _ = physical.NewStackTreeDesc(
		physical.NewScan(anc, nil), // want "declares no order"
		physical.NewScan(desc, algebra.OrderDesc{}), // want "declares no order"
		"A.ID", "D.ID", physical.DescendantAxis)
}

func badAncJoin(anc, desc *algebra.Relation) {
	_, _ = physical.NewStackTreeAnc(
		physical.NewScan(anc, nil), // want "declares no order"
		physical.NewScan(desc, algebra.OrderDesc{"D.ID"}),
		"A.ID", "D.ID", physical.DescendantAxis)
}

func goodJoin(anc, desc *algebra.Relation) {
	_, _ = physical.NewStackTreeDesc(
		physical.NewScan(anc, algebra.OrderDesc{"A.ID"}),
		physical.NewScan(desc, algebra.OrderDesc{"D.ID"}),
		"A.ID", "D.ID", physical.DescendantAxis)
}
