package summary

import (
	"strings"
	"testing"

	"xamdb/internal/xmltree"
)

const bibXML = `<bib>
  <book year="1999">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Suciu</author>
  </book>
  <book>
    <title>The Syntactic Web</title>
    <author>Tom Lerners-Bee</author>
  </book>
  <phdthesis year="2004">
    <title>The Web: next generation</title>
    <author>Jim Smith</author>
  </phdthesis>
</bib>`

func bibDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	return xmltree.MustParse("bib.xml", bibXML)
}

func TestBuildPaths(t *testing.T) {
	s := Build(bibDoc(t))
	want := []string{
		"/bib",
		"/bib/book",
		"/bib/book/@year",
		"/bib/book/title",
		"/bib/book/title/#text",
		"/bib/book/author",
		"/bib/book/author/#text",
		"/bib/phdthesis",
		"/bib/phdthesis/@year",
		"/bib/phdthesis/title",
		"/bib/phdthesis/title/#text",
		"/bib/phdthesis/author",
		"/bib/phdthesis/author/#text",
	}
	if s.Size() != len(want) {
		t.Fatalf("size = %d, want %d\n%s", s.Size(), len(want), s)
	}
	for _, p := range want {
		if s.NodeByPath(p) == nil {
			t.Errorf("missing path %s", p)
		}
	}
}

func TestPathNumbersAreDense(t *testing.T) {
	s := Build(bibDoc(t))
	for i := 1; i <= s.Size(); i++ {
		n := s.NodeByNum(i)
		if n == nil || n.Num != i {
			t.Fatalf("NodeByNum(%d) = %v", i, n)
		}
	}
	if s.NodeByNum(0) != nil || s.NodeByNum(s.Size()+1) != nil {
		t.Fatal("out-of-range NodeByNum must be nil")
	}
}

func TestEdgeConstraints(t *testing.T) {
	s := Build(bibDoc(t))
	// Every book and phdthesis has exactly one title -> One.
	if got := s.NodeByPath("/bib/book/title").EdgeIn; got != One {
		t.Errorf("book/title edge = %v, want 1", got)
	}
	// Books have 1..2 authors, all have at least one -> Plus.
	if got := s.NodeByPath("/bib/book/author").EdgeIn; got != Plus {
		t.Errorf("book/author edge = %v, want +", got)
	}
	// Second book lacks @year -> Star.
	if got := s.NodeByPath("/bib/book/@year").EdgeIn; got != Star {
		t.Errorf("book/@year edge = %v, want *", got)
	}
	// phdthesis/@year occurs on the single phdthesis -> One.
	if got := s.NodeByPath("/bib/phdthesis/@year").EdgeIn; got != One {
		t.Errorf("phdthesis/@year edge = %v, want 1", got)
	}
}

func TestEdgeConstraintOrderIndependence(t *testing.T) {
	// A document where the child is missing on the FIRST parent instance.
	doc := xmltree.MustParse("o.xml", `<r><a/><a><b/></a></r>`)
	s := Build(doc)
	if got := s.NodeByPath("/r/a/b").EdgeIn; got != Star {
		t.Errorf("edge = %v, want * (first parent lacks b)", got)
	}
	// Mirror image: missing on the SECOND instance.
	doc2 := xmltree.MustParse("o2.xml", `<r><a><b/></a><a/></r>`)
	s2 := Build(doc2)
	if got := s2.NodeByPath("/r/a/b").EdgeIn; got != Star {
		t.Errorf("edge = %v, want * (second parent lacks b)", got)
	}
}

func TestPlusDemotionFromOne(t *testing.T) {
	doc := xmltree.MustParse("p.xml", `<r><a><b/></a><a><b/><b/></a></r>`)
	s := Build(doc)
	if got := s.NodeByPath("/r/a/b").EdgeIn; got != Plus {
		t.Errorf("edge = %v, want +", got)
	}
}

func TestPathOf(t *testing.T) {
	doc := bibDoc(t)
	s := Build(doc)
	title := doc.Root.Elements()[0].Elements()[0]
	sn := s.PathOf(title)
	if sn == nil || sn.Path() != "/bib/book/title" {
		t.Fatalf("PathOf(title) = %v", sn)
	}
	// All same-path nodes map to the same summary node.
	title2 := doc.Root.Elements()[1].Elements()[0]
	if s.PathOf(title2) != sn {
		t.Fatal("same-path nodes must share a summary node")
	}
	other := xmltree.MustParse("x.xml", `<zzz/>`)
	if s.PathOf(other.Root) != nil {
		t.Fatal("foreign node must not resolve")
	}
}

func TestConforms(t *testing.T) {
	doc := bibDoc(t)
	s := Build(doc)
	if !s.Conforms(doc) {
		t.Fatal("document must conform to its own summary")
	}
	// A document with a new path does not conform.
	other := xmltree.MustParse("n.xml", `<bib><journal/></bib>`)
	if s.Conforms(other) {
		t.Fatal("new path must break conformance")
	}
	// A document violating a One edge (two titles) does not conform.
	twoTitles := xmltree.MustParse("t.xml",
		`<bib><book year="1"><title>a</title><title>b</title><author>x</author></book></bib>`)
	if s.Conforms(twoTitles) {
		t.Fatal("1-edge violation must break conformance")
	}
	// A document violating a Plus edge (book without author) does not conform.
	noAuthor := xmltree.MustParse("t2.xml", `<bib><book year="1"><title>a</title></book></bib>`)
	if s.Conforms(noAuthor) {
		t.Fatal("+-edge violation must break conformance")
	}
}

func TestExtendWithSecondDocument(t *testing.T) {
	s := Build(bibDoc(t))
	before := s.Size()
	// Second doc adds a path and removes year from all books.
	doc2 := xmltree.MustParse("bib2.xml",
		`<bib><book><title>T</title><author>A</author><isbn>1</isbn></book></bib>`)
	s.Extend(doc2)
	if s.Size() != before+2 { // isbn + isbn/#text
		t.Fatalf("size = %d, want %d", s.Size(), before+2)
	}
	if s.NodeByPath("/bib/book/isbn") == nil {
		t.Fatal("missing extended path")
	}
	// Title is still One (every book in both docs has one title).
	if got := s.NodeByPath("/bib/book/title").EdgeIn; got != One {
		t.Errorf("title edge after extend = %v, want 1", got)
	}
	// isbn appeared only in the later doc: must be Star.
	if got := s.NodeByPath("/bib/book/isbn").EdgeIn; got != Star {
		t.Errorf("isbn edge = %v, want *", got)
	}
}

func TestBuildAllRejectsDifferentRoots(t *testing.T) {
	a := xmltree.MustParse("a.xml", `<a/>`)
	b := xmltree.MustParse("b.xml", `<b/>`)
	if _, err := BuildAll(a, b); err == nil {
		t.Fatal("want root-conflict error")
	}
	if s, err := BuildAll(a, a); err != nil || s.Size() != 1 {
		t.Fatalf("BuildAll(a,a) = %v, %v", s, err)
	}
}

func TestStats(t *testing.T) {
	s := Build(bibDoc(t))
	st := s.Stats()
	if st.Paths != s.Size() {
		t.Fatalf("paths = %d", st.Paths)
	}
	if st.OneToOne == 0 || st.StrongEdge < st.OneToOne {
		t.Fatalf("bad stats %+v", st)
	}
	if st.MaxDepth != 4 { // /bib/book/title/#text
		t.Fatalf("depth = %d, want 4", st.MaxDepth)
	}
}

func TestRecursionSharesSummaryNodesPerDepth(t *testing.T) {
	// Recursive parlist/listitem as in XMark: each unfolding depth is a
	// distinct path (summaries are trees, not graphs).
	doc := xmltree.MustParse("r.xml",
		`<a><p><l/><l><p><l/></p></l></p></a>`)
	s := Build(doc)
	if s.NodeByPath("/a/p/l/p/l") == nil {
		t.Fatal("nested unfolding path missing")
	}
	if got := s.NodeByPath("/a/p/l"); got == nil || got.Count != 2 {
		t.Fatalf("count of /a/p/l = %v", got)
	}
}

func TestDescendantsLabeledAndWildcard(t *testing.T) {
	s := Build(bibDoc(t))
	titles := s.Root.DescendantsLabeled("title")
	if len(titles) != 2 {
		t.Fatalf("titles = %d, want 2", len(titles))
	}
	stars := s.Root.DescendantsLabeled("*")
	for _, n := range stars {
		if strings.HasPrefix(n.Label, "@") || n.Label == "#text" {
			t.Errorf("wildcard matched non-element %s", n.Label)
		}
	}
	if len(stars) != 6 { // book, phdthesis, and their title+author paths
		t.Fatalf("wildcard count = %d, want 6", len(stars))
	}
	if got := len(s.Root.ChildrenLabeled("book")); got != 1 {
		t.Fatalf("children book = %d", got)
	}
	if got := len(s.Root.ChildrenLabeled("*")); got != 2 {
		t.Fatalf("children * = %d", got)
	}
}

func TestAncestorOf(t *testing.T) {
	s := Build(bibDoc(t))
	root := s.Root
	title := s.NodeByPath("/bib/book/title")
	if !root.AncestorOf(title) || title.AncestorOf(root) || title.AncestorOf(title) {
		t.Fatal("AncestorOf wrong")
	}
}

func TestStringAndSortedPaths(t *testing.T) {
	s := Build(bibDoc(t))
	out := s.String()
	if !strings.Contains(out, "1 bib") || !strings.Contains(out, "[+]") {
		t.Fatalf("render: %s", out)
	}
	paths := s.SortedPaths()
	if len(paths) != s.Size() || paths[0] != "/bib" {
		t.Fatalf("sorted paths: %v", paths)
	}
	for i := 1; i < len(paths); i++ {
		if paths[i] < paths[i-1] {
			t.Fatal("paths not sorted")
		}
	}
	if One.String() != "1" || Plus.String() != "+" || Star.String() != "*" {
		t.Fatal("edge kind strings")
	}
	if s.Root.Depth() != 1 || s.NodeByPath("/bib/book/title").Depth() != 3 {
		t.Fatal("depths")
	}
	if len(s.Nodes()) != s.Size() {
		t.Fatal("Nodes()")
	}
}
