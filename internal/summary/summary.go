// Package summary implements XML path summaries — strong DataGuides for
// tree-structured data (§4.2.1) — and their enhanced form carrying integrity
// constraints on edges (§4.2.2). A summary has exactly one node per rooted
// label path occurring in the documents it describes; containment and
// rewriting use it as the source of structural constraints.
package summary

import (
	"fmt"
	"sort"
	"strings"

	"xamdb/internal/xmltree"
)

// EdgeKind is the integrity annotation on a summary edge (§4.2.2).
type EdgeKind uint8

const (
	// Star is the unconstrained edge: parents may have zero or more children
	// on the child path.
	Star EdgeKind = iota
	// Plus marks a strong edge: every document node on the parent path has
	// at least one child on the child path.
	Plus
	// One marks a one-to-one edge: every document node on the parent path
	// has exactly one child on the child path.
	One
)

func (k EdgeKind) String() string {
	switch k {
	case Star:
		return "*"
	case Plus:
		return "+"
	case One:
		return "1"
	}
	return "?"
}

// Node is one summary node, i.e. one rooted path. Path numbers are assigned
// in pre-order starting from 1 (the paper's "large font" integers in Fig 4.6).
type Node struct {
	Num      int    // path number, 1-based
	Label    string // element tag, attribute name with '@', or "#text"
	Parent   *Node
	Children []*Node
	EdgeIn   EdgeKind // constraint on the edge from Parent to this node

	// Count is the number of document nodes mapped to this path; it is
	// maintained by Build/Extend and used by the optimizer as a coarse
	// cardinality statistic.
	Count int

	depth int
}

// Depth returns the node's depth; the root path has depth 1.
func (n *Node) Depth() int { return n.depth }

// Child returns the child with the given label, or nil.
func (n *Node) Child(label string) *Node {
	for _, c := range n.Children {
		if c.Label == label {
			return c
		}
	}
	return nil
}

// Path returns the rooted path string, e.g. "/site/people/person".
func (n *Node) Path() string {
	if n.Parent == nil {
		return "/" + n.Label
	}
	return n.Parent.Path() + "/" + n.Label
}

// AncestorOf reports whether n is a strict ancestor of other in the summary.
func (n *Node) AncestorOf(other *Node) bool {
	for p := other.Parent; p != nil; p = p.Parent {
		if p == n {
			return true
		}
	}
	return false
}

// Summary is a path summary over one or more documents.
type Summary struct {
	Root *Node

	byNum []*Node
}

// Build computes the strong DataGuide of a document together with the
// enhanced 1/+ edge constraints it satisfies (Definition 4.2.1 / 4.2.3).
func Build(doc *xmltree.Document) *Summary {
	s := &Summary{}
	s.Extend(doc)
	return s
}

// BuildAll computes a single summary describing several documents; all
// documents must share the same root label.
func BuildAll(docs ...*xmltree.Document) (*Summary, error) {
	s := &Summary{}
	for _, d := range docs {
		if s.Root != nil && d.Root != nil && s.Root.Label != d.Root.Label {
			return nil, fmt.Errorf("summary: root label %q conflicts with %q", d.Root.Label, s.Root.Label)
		}
		s.Extend(d)
	}
	return s, nil
}

// Extend folds another document into the summary (summaries update in linear
// time, §4.6). Edge constraints are tightened downward only: an edge keeps
// the strongest annotation consistent with every document seen so far.
func (s *Summary) Extend(doc *xmltree.Document) {
	if doc.Root == nil {
		return
	}
	if s.Root == nil {
		s.Root = &Node{Label: doc.Root.Label, depth: 1, EdgeIn: One}
	}
	s.extendNode(s.Root, doc.Root, true)
	s.renumber()
}

// extendNode maps the document subtree rooted at dn onto summary node sn.
func (s *Summary) extendNode(sn *Node, dn *xmltree.Node, fresh bool) {
	sn.Count++
	// Group dn's children by summary label.
	groups := map[string][]*xmltree.Node{}
	var order []string
	addChild := func(label string, c *xmltree.Node) {
		if _, seen := groups[label]; !seen {
			order = append(order, label)
		}
		groups[label] = append(groups[label], c)
	}
	for _, c := range dn.Children {
		addChild(c.Label, c)
	}
	seenHere := map[string]bool{}
	for _, label := range order {
		seenHere[label] = true
		child := sn.Child(label)
		freshChild := false
		if child == nil {
			child = &Node{Label: label, Parent: sn, depth: sn.depth + 1}
			// First sighting: provisionally the strongest constraint that
			// this parent instance satisfies.
			if len(groups[label]) == 1 {
				child.EdgeIn = One
			} else {
				child.EdgeIn = Plus
			}
			// If the parent had earlier instances without this child, the
			// edge cannot be strong.
			if sn.Count > 1 {
				child.EdgeIn = Star
			}
			sn.Children = append(sn.Children, child)
			freshChild = true
		} else if len(groups[label]) > 1 && child.EdgeIn == One {
			child.EdgeIn = Plus
		}
		_ = freshChild
		for _, dc := range groups[label] {
			s.extendNode(child, dc, freshChild)
		}
	}
	// Any known child label missing under this parent instance demotes the
	// edge to Star.
	for _, c := range sn.Children {
		if !seenHere[c.Label] {
			c.EdgeIn = Star
		}
	}
	_ = fresh
}

func (s *Summary) renumber() {
	s.byNum = s.byNum[:0]
	var visit func(n *Node)
	visit = func(n *Node) {
		n.Num = len(s.byNum) + 1
		s.byNum = append(s.byNum, n)
		for _, c := range n.Children {
			visit(c)
		}
	}
	if s.Root != nil {
		visit(s.Root)
	}
}

// Size returns the number of summary nodes (paths).
func (s *Summary) Size() int { return len(s.byNum) }

// NodeByNum returns the summary node with the given path number, or nil.
func (s *Summary) NodeByNum(num int) *Node {
	if num < 1 || num > len(s.byNum) {
		return nil
	}
	return s.byNum[num-1]
}

// Nodes returns all summary nodes in pre-order.
func (s *Summary) Nodes() []*Node { return s.byNum }

// NodeByPath resolves a rooted '/'-separated path, e.g. "/bib/book/title".
func (s *Summary) NodeByPath(path string) *Node {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	if len(parts) == 0 || s.Root == nil || parts[0] != s.Root.Label {
		return nil
	}
	n := s.Root
	for _, p := range parts[1:] {
		n = n.Child(p)
		if n == nil {
			return nil
		}
	}
	return n
}

// PathOf returns the summary node a document node maps to (the φ function of
// Definition 4.2.1), or nil if the node's path is not in the summary.
func (s *Summary) PathOf(n *xmltree.Node) *Node {
	if n == nil {
		return nil
	}
	if n.Parent == nil {
		if s.Root != nil && s.Root.Label == n.Label {
			return s.Root
		}
		return nil
	}
	p := s.PathOf(n.Parent)
	if p == nil {
		return nil
	}
	return p.Child(n.Label)
}

// Conforms reports whether every path of doc appears in the summary and every
// 1/+ edge constraint holds on doc (Definition 4.2.2 plus 4.2.3).
func (s *Summary) Conforms(doc *xmltree.Document) bool {
	if doc.Root == nil {
		return s.Root == nil
	}
	if s.Root == nil || s.Root.Label != doc.Root.Label {
		return false
	}
	ok := true
	var visit func(sn *Node, dn *xmltree.Node) bool
	visit = func(sn *Node, dn *xmltree.Node) bool {
		counts := map[string]int{}
		for _, c := range dn.Children {
			counts[c.Label]++
			sc := sn.Child(c.Label)
			if sc == nil {
				return false
			}
			if !visit(sc, c) {
				return false
			}
		}
		for _, sc := range sn.Children {
			got := counts[sc.Label]
			switch sc.EdgeIn {
			case One:
				if got != 1 {
					return false
				}
			case Plus:
				if got < 1 {
					return false
				}
			}
		}
		return true
	}
	ok = visit(s.Root, doc.Root)
	return ok
}

// Stats summarizes the summary itself: |S|, strong edges n_s and one-to-one
// edges n_1, the numbers reported in Figure 4.13.
type Stats struct {
	Paths      int
	StrongEdge int // edges labeled + or 1
	OneToOne   int // edges labeled 1
	MaxDepth   int
}

// Stats computes the Figure 4.13 statistics.
func (s *Summary) Stats() Stats {
	var st Stats
	for _, n := range s.byNum {
		st.Paths++
		if n.depth > st.MaxDepth {
			st.MaxDepth = n.depth
		}
		if n.Parent == nil {
			continue
		}
		switch n.EdgeIn {
		case Plus:
			st.StrongEdge++
		case One:
			st.StrongEdge++
			st.OneToOne++
		}
	}
	return st
}

// String renders the summary as an indented tree with edge annotations and
// path numbers; used by cmd tools and tests.
func (s *Summary) String() string {
	var sb strings.Builder
	var visit func(n *Node, indent string)
	visit = func(n *Node, indent string) {
		fmt.Fprintf(&sb, "%s%d %s", indent, n.Num, n.Label)
		if n.Parent != nil {
			fmt.Fprintf(&sb, " [%s]", n.EdgeIn)
		}
		fmt.Fprintf(&sb, " (count=%d)\n", n.Count)
		for _, c := range n.Children {
			visit(c, indent+"  ")
		}
	}
	if s.Root != nil {
		visit(s.Root, "")
	}
	return sb.String()
}

// DescendantsLabeled returns, in path-number order, every summary node under
// (and excluding) n whose label matches label; "*" matches any element label
// (attribute and text paths are excluded for "*", per XPath child/descendant
// axis semantics).
func (n *Node) DescendantsLabeled(label string) []*Node {
	var out []*Node
	var visit func(c *Node)
	visit = func(c *Node) {
		if matchLabel(c.Label, label) {
			out = append(out, c)
		}
		for _, cc := range c.Children {
			visit(cc)
		}
	}
	for _, c := range n.Children {
		visit(c)
	}
	return out
}

// ChildrenLabeled returns n's children matching label (see DescendantsLabeled).
func (n *Node) ChildrenLabeled(label string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if matchLabel(c.Label, label) {
			out = append(out, c)
		}
	}
	return out
}

func matchLabel(nodeLabel, query string) bool {
	if query == "*" {
		return !strings.HasPrefix(nodeLabel, "@") && nodeLabel != "#text"
	}
	return nodeLabel == query
}

// SortedPaths returns every rooted path string in lexicographic order;
// convenience for stable test assertions.
func (s *Summary) SortedPaths() []string {
	out := make([]string, 0, len(s.byNum))
	for _, n := range s.byNum {
		out = append(out, n.Path())
	}
	sort.Strings(out)
	return out
}
