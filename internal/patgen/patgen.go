// Package patgen generates random satisfiable XAM patterns over a given
// path summary, following the synthetic workload of §4.6: patterns of n
// nodes with fanout f=3, nodes relabeled * with probability 0.1, decorated
// with a value predicate v=c with probability 0.2 (10 distinct values),
// edges labeled // with probability 0.5 and optional with a configurable
// probability, and r return nodes. Satisfiability is guaranteed by
// construction: every pattern is grown along an embedding into the summary.
package patgen

import (
	"fmt"
	"math/rand"

	"xamdb/internal/summary"
	"xamdb/internal/value"
	"xamdb/internal/xam"
)

// Config controls generation; zero fields take the §4.6 defaults.
type Config struct {
	Nodes    int     // pattern size (default 5)
	Fanout   int     // max children per node (default 3)
	PStar    float64 // probability of a * label (default 0.1)
	PPred    float64 // probability of a v=c predicate (default 0.2)
	PDesc    float64 // probability of a // edge (default 0.5)
	POpt     float64 // probability of an optional edge (0 = conjunctive)
	Values   int     // distinct predicate constants (default 10)
	Returns  int     // number of return nodes, annotated {id} (default 1)
	MaxDepth int     // summary descent bound per edge (default 4)

	// PredValues, when non-empty, replaces the default 0..Values-1 constant
	// pool — point it at values the target document actually contains so
	// generated predicates select non-empty results.
	PredValues []value.Atom
	// PredRange draws the comparator uniformly from {=, !=, <, <=, >, >=}
	// instead of always =, so workloads exercise interval absorption, not
	// just point lookups.
	PredRange bool
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 5
	}
	if c.Fanout == 0 {
		c.Fanout = 3
	}
	if c.PStar == 0 {
		c.PStar = 0.1
	}
	if c.PPred == 0 {
		c.PPred = 0.2
	}
	if c.PDesc == 0 {
		c.PDesc = 0.5
	}
	if c.Values == 0 {
		c.Values = 10
	}
	if c.Returns == 0 {
		c.Returns = 1
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 4
	}
	return c
}

// Generate builds one random satisfiable pattern. The same (summary, cfg,
// rng state) always yields the same pattern.
func Generate(s *summary.Summary, cfg Config, rng *rand.Rand) *xam.Pattern {
	cfg = cfg.withDefaults()
	// Choose the witness summary nodes by growing a tree from a random
	// element node.
	type slot struct {
		sn     *summary.Node
		parent *xam.Node
		axis   xam.Axis
	}
	elems := elementNodes(s)
	if len(elems) == 0 {
		return nil
	}
	// Prefer roots with enough element descendants to host the pattern;
	// otherwise shallow summaries degenerate to single-node patterns.
	var roomy []*summary.Node
	for _, e := range elems {
		if subtreeElements(e) >= cfg.Nodes {
			roomy = append(roomy, e)
		}
	}
	if len(roomy) == 0 {
		roomy = elems
	}
	pat := &xam.Pattern{}
	budget := cfg.Nodes
	var queue []slot
	root := roomy[rng.Intn(len(roomy))]
	queue = append(queue, slot{sn: root, parent: nil, axis: xam.Descendant})
	var made []*xam.Node
	for budget > 0 && len(queue) > 0 {
		// Pop a random queue slot to vary shapes.
		qi := rng.Intn(len(queue))
		cur := queue[qi]
		queue = append(queue[:qi], queue[qi+1:]...)

		n := &xam.Node{Label: cur.sn.Label}
		if rng.Float64() < cfg.PStar {
			n.Label = "*"
		}
		if rng.Float64() < cfg.PPred {
			c := value.Num(float64(rng.Intn(cfg.Values)))
			if len(cfg.PredValues) > 0 {
				c = cfg.PredValues[rng.Intn(len(cfg.PredValues))]
			}
			op := "="
			if cfg.PredRange {
				ops := []string{"=", "!=", "<", "<=", ">", ">="}
				op = ops[rng.Intn(len(ops))]
			}
			f, err := value.FromComparison(op, c)
			if err != nil {
				panic("patgen: comparator pool out of sync with value.FromComparison")
			}
			n.ValuePred = f
			n.HasValuePred = true
			n.PredSrc = []string{fmt.Sprintf("val%s%s", op, c)}
		}
		sem := xam.SemJoin
		if rng.Float64() < cfg.POpt && cur.parent != nil {
			sem = xam.SemOuter
		}
		e := &xam.Edge{Axis: cur.axis, Sem: sem, Child: n}
		if cur.parent == nil {
			pat.Top = append(pat.Top, e)
		} else {
			n.Parent = cur.parent
			cur.parent.Edges = append(cur.parent.Edges, e)
		}
		made = append(made, n)
		budget--
		if budget == 0 {
			break
		}
		// Queue children of this node: descend into the summary.
		kids := rng.Intn(cfg.Fanout) + 1
		for k := 0; k < kids && budget > len(queue); k++ {
			child, depth := randomDescendant(cur.sn, cfg.MaxDepth, rng)
			if child == nil {
				continue
			}
			axis := xam.Descendant
			if depth == 1 && rng.Float64() >= cfg.PDesc {
				axis = xam.Child
			}
			queue = append(queue, slot{sn: child, parent: n, axis: axis})
		}
	}
	// Mark return nodes: prefer the last-generated nodes (deeper ones),
	// mirroring the thesis's fixed-label returns keeping patterns related.
	r := cfg.Returns
	if r > len(made) {
		r = len(made)
	}
	for i := 0; i < r; i++ {
		made[len(made)-1-i].IDSpec = xam.StructID
	}
	pat.AssignNames()
	return pat
}

// GenerateSet builds count patterns with the same configuration.
func GenerateSet(s *summary.Summary, cfg Config, count int, seed int64) []*xam.Pattern {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*xam.Pattern, 0, count)
	for len(out) < count {
		p := Generate(s, cfg, rng)
		if p != nil && p.Size() > 0 {
			out = append(out, p)
		}
	}
	return out
}

// subtreeElements counts the element nodes in a summary subtree (incl. n).
func subtreeElements(n *summary.Node) int {
	count := 1
	for _, c := range n.Children {
		if c.Label != "#text" && c.Label[0] != '@' {
			count += subtreeElements(c)
		}
	}
	return count
}

func elementNodes(s *summary.Summary) []*summary.Node {
	var out []*summary.Node
	for _, n := range s.Nodes() {
		if n.Label != "#text" && len(n.Label) > 0 && n.Label[0] != '@' {
			out = append(out, n)
		}
	}
	return out
}

// randomDescendant picks a random element descendant within maxDepth levels;
// it returns the node and its depth below the start (1 = child).
func randomDescendant(from *summary.Node, maxDepth int, rng *rand.Rand) (*summary.Node, int) {
	type cand struct {
		n *summary.Node
		d int
	}
	var cands []cand
	var walk func(n *summary.Node, d int)
	walk = func(n *summary.Node, d int) {
		if d > maxDepth {
			return
		}
		for _, c := range n.Children {
			if c.Label != "#text" && c.Label[0] != '@' {
				cands = append(cands, cand{c, d})
				walk(c, d+1)
			}
		}
	}
	walk(from, 1)
	if len(cands) == 0 {
		return nil, 0
	}
	pick := cands[rng.Intn(len(cands))]
	return pick.n, pick.d
}
