package patgen

import (
	"math/rand"
	"testing"

	"xamdb/internal/containment"
	"xamdb/internal/datagen"
	"xamdb/internal/summary"
	"xamdb/internal/xam"
)

func TestGeneratedPatternsAreSatisfiable(t *testing.T) {
	s := summary.Build(datagen.XMark(2, 4, 3))
	pats := GenerateSet(s, Config{Nodes: 6, Returns: 2}, 25, 42)
	if len(pats) != 25 {
		t.Fatalf("generated %d", len(pats))
	}
	for i, p := range pats {
		if !containment.Satisfiable(p, s) {
			t.Errorf("pattern %d unsatisfiable: %s", i, p)
		}
		if len(p.ReturnNodes()) == 0 {
			t.Errorf("pattern %d has no return nodes: %s", i, p)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := summary.Build(datagen.DBLP(30))
	a := GenerateSet(s, Config{Nodes: 5}, 10, 7)
	b := GenerateSet(s, Config{Nodes: 5}, 10, 7)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("pattern %d differs", i)
		}
	}
}

func TestGenerateSizeAndOptions(t *testing.T) {
	s := summary.Build(datagen.DBLP(30))
	rng := rand.New(rand.NewSource(1))
	optSeen, predSeen, starSeen := false, false, false
	for i := 0; i < 60; i++ {
		p := Generate(s, Config{Nodes: 8, POpt: 0.5}, rng)
		if p.Size() > 8 {
			t.Fatalf("size %d > 8: %s", p.Size(), p)
		}
		for _, n := range p.Nodes() {
			if n.Label == "*" {
				starSeen = true
			}
			if n.HasValuePred {
				predSeen = true
			}
			for _, e := range n.Edges {
				if e.Sem == xam.SemOuter {
					optSeen = true
				}
			}
		}
	}
	if !optSeen || !predSeen || !starSeen {
		t.Fatalf("feature coverage: opt=%v pred=%v star=%v", optSeen, predSeen, starSeen)
	}
}

func TestSelfContainmentOfGenerated(t *testing.T) {
	// Conjunctive-only generated patterns must contain themselves.
	s := summary.Build(datagen.DBLP(30))
	pats := GenerateSet(s, Config{Nodes: 5, POpt: -1}, 10, 99)
	for _, p := range pats {
		ok, err := containment.Contained(p, p, s)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("self containment failed: %s", p)
		}
	}
}
