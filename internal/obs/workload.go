// The workload observatory (ROADMAP item 3's observability half): a
// goroutine-safe, bounded-cardinality aggregate table keyed by query
// fingerprint, folding one QueryRecord per completed (or shed) query into
// per-fingerprint statistics plus the inverse index — per-view attribution
// of the queries each materialized view actually served. The advisor
// (advisor.go) mines both into materialization recommendations.
//
// Cardinality is bounded: at most `cap` exact fingerprint entries are
// retained. When the table is full and a new fingerprint arrives, the
// entry with the smallest count is retired into a single overflow bucket
// (its aggregates are merged, never lost) and the slot is reused — hot
// fingerprints have large counts and are never the minimum, so they stay
// exact even under an adversarial stream of unique fingerprints. The view
// table needs no such bound: its cardinality is the registered view
// catalog, an administrative quantity.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// ViewUse is one view's involvement in one query, attached to the query's
// record by the engine: Referenced marks views the chosen rewritings scan
// (extent bytes placed in the execution env ride along), MaterializeNS is
// the extent build this query paid for (0 when the extent was warm).
type ViewUse struct {
	Name       string `json:"name"`
	Referenced bool   `json:"referenced,omitempty"`
	// ExtentBytes is the estimated decoded size of the view's extent as
	// placed in the execution environment (the same figure the budget
	// charges), counted once per referencing query.
	ExtentBytes   int64 `json:"extent_bytes,omitempty"`
	MaterializeNS int64 `json:"materialize_ns,omitempty"`
}

// Bounds on per-entry map growth, so one fingerprint cannot inflate its
// entry without limit: outcome names beyond the bound fold into "other",
// view names beyond the bound are dropped (the per-view table still sees
// them).
const (
	maxOutcomesPerEntry = 16
	maxViewsPerEntry    = 16
)

// fpEntry is the live (locked) aggregate of one fingerprint.
type fpEntry struct {
	fingerprint string
	query       string // exemplar text, first seen
	count       int64
	outcomes    map[string]int64
	errors      int64
	degraded    int64
	shed        int64
	lat         *Histogram
	rows        *Histogram
	phases      map[string]int64
	cacheHits   int64
	cacheMisses int64
	batches     int64
	fallbacks   int64
	absorbed    int64
	residual    int64
	baseScans   int64
	views       map[string]bool
	lastNS      int64
}

func newFPEntry(fp string) *fpEntry {
	return &fpEntry{
		fingerprint: fp,
		outcomes:    map[string]int64{},
		lat:         newHistogram(),
		rows:        newHistogram(),
		phases:      map[string]int64{},
		views:       map[string]bool{},
	}
}

// viewEntry is the live aggregate of one view's attribution.
type viewEntry struct {
	queries          int64
	rows             int64
	extentBytes      int64
	materializations int64
	materializeNS    int64
	lastUsedNS       int64
}

// WorkloadStats is the fingerprint-aggregated workload table. All methods
// are nil-safe, so a disabled observatory costs nothing at the call sites.
type WorkloadStats struct {
	mu       sync.Mutex
	cap      int
	entries  map[string]*fpEntry
	overflow *fpEntry
	evicted  int64
	total    int64
	views    map[string]*viewEntry
}

// NewWorkloadStats creates a table retaining up to capacity exact
// fingerprint entries (minimum 1) plus the overflow bucket.
func NewWorkloadStats(capacity int) *WorkloadStats {
	if capacity < 1 {
		capacity = 1
	}
	return &WorkloadStats{
		cap:     capacity,
		entries: make(map[string]*fpEntry, capacity),
		views:   map[string]*viewEntry{},
	}
}

// Observe folds one completed (or shed) query into the table. The record's
// Fingerprint keys the aggregate; Views carries the per-view attribution.
func (w *WorkloadStats) Observe(rec QueryRecord) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.total++
	e := w.entry(rec.Fingerprint)
	e.count++
	if e.query == "" {
		e.query = rec.Query
	}
	if rec.TimeUnixNS > e.lastNS {
		e.lastNS = rec.TimeUnixNS
	}
	outcome := rec.Outcome
	if outcome == "" {
		outcome = "served"
	}
	switch {
	case strings.HasPrefix(outcome, "shed"):
		e.shed++
	case outcome != "served":
		e.errors++
	}
	if _, ok := e.outcomes[outcome]; !ok && len(e.outcomes) >= maxOutcomesPerEntry {
		outcome = "other"
	}
	e.outcomes[outcome]++
	if rec.Degraded > 0 {
		e.degraded++
	}
	e.lat.Observe(rec.DurationNS)
	e.rows.Observe(rec.RowsOut)
	for name, ns := range rec.PhasesNS {
		e.phases[name] += ns
	}
	e.cacheHits += int64(rec.CacheHits)
	e.cacheMisses += int64(rec.CacheMisses)
	e.batches += rec.Batches
	e.fallbacks += rec.BatchFallbacks
	if rec.PredAbsorbed {
		e.absorbed++
	}
	e.residual += int64(rec.PredResidual)
	e.baseScans += int64(rec.BaseScans)
	for _, vu := range rec.Views {
		if vu.Referenced && (e.views[vu.Name] || len(e.views) < maxViewsPerEntry) {
			e.views[vu.Name] = true
		}
		v, ok := w.views[vu.Name]
		if !ok {
			v = &viewEntry{}
			w.views[vu.Name] = v
		}
		if vu.Referenced {
			v.queries++
			v.rows += rec.RowsOut
			v.extentBytes += vu.ExtentBytes
			if rec.TimeUnixNS > v.lastUsedNS {
				v.lastUsedNS = rec.TimeUnixNS
			}
		}
		if vu.MaterializeNS > 0 {
			v.materializations++
			v.materializeNS += vu.MaterializeNS
		}
	}
}

// entry returns the fingerprint's aggregate, creating it — and, at
// capacity, retiring the smallest-count entry into the overflow bucket
// first. Callers hold w.mu.
func (w *WorkloadStats) entry(fp string) *fpEntry {
	if e, ok := w.entries[fp]; ok {
		return e
	}
	if len(w.entries) >= w.cap {
		var min *fpEntry
		for _, e := range w.entries {
			if min == nil || e.count < min.count {
				min = e
			}
		}
		w.retire(min)
	}
	e := newFPEntry(fp)
	w.entries[fp] = e
	return e
}

// retire merges an evicted entry into the overflow bucket and frees its
// slot. Callers hold w.mu.
func (w *WorkloadStats) retire(e *fpEntry) {
	if w.overflow == nil {
		w.overflow = newFPEntry("(overflow)")
		w.overflow.query = "(evicted fingerprints, aggregated)"
	}
	o := w.overflow
	o.count += e.count
	o.errors += e.errors
	o.degraded += e.degraded
	o.shed += e.shed
	for name, n := range e.outcomes {
		if _, ok := o.outcomes[name]; !ok && len(o.outcomes) >= maxOutcomesPerEntry {
			name = "other"
		}
		o.outcomes[name] += n
	}
	o.lat.Merge(e.lat)
	o.rows.Merge(e.rows)
	for name, ns := range e.phases {
		o.phases[name] += ns
	}
	o.cacheHits += e.cacheHits
	o.cacheMisses += e.cacheMisses
	o.batches += e.batches
	o.fallbacks += e.fallbacks
	o.absorbed += e.absorbed
	o.residual += e.residual
	o.baseScans += e.baseScans
	if e.lastNS > o.lastNS {
		o.lastNS = e.lastNS
	}
	delete(w.entries, e.fingerprint)
	w.evicted++
}

// FingerprintStats is the exported aggregate of one query fingerprint.
type FingerprintStats struct {
	Fingerprint string           `json:"fingerprint"`
	Query       string           `json:"query"`
	Count       int64            `json:"count"`
	Outcomes    map[string]int64 `json:"outcomes,omitempty"`
	Errors      int64            `json:"errors"`
	Degraded    int64            `json:"degraded"`
	Shed        int64            `json:"shed"`
	Latency     HistogramStats   `json:"latency"`
	Rows        HistogramStats   `json:"rows"`
	PhasesNS    map[string]int64 `json:"phases_ns,omitempty"`
	CacheHits   int64            `json:"cache_hits"`
	CacheMisses int64            `json:"cache_misses"`
	// CacheHitRatio is hits/(hits+misses) over the fingerprint's plan-cache
	// lookups (0 when it never consulted the cache).
	CacheHitRatio  float64  `json:"cache_hit_ratio"`
	Batches        int64    `json:"batches"`
	BatchFallbacks int64    `json:"batch_fallbacks"`
	PredAbsorbed   int64    `json:"pred_absorbed"`
	PredResidual   int64    `json:"pred_residual"`
	BaseScans      int64    `json:"base_scans"`
	Views          []string `json:"views,omitempty"`
	LastUnixNS     int64    `json:"last_unix_ns,omitempty"`
}

// ViewStats is the exported per-view attribution: what the view's extent
// costs and which traffic it serves.
type ViewStats struct {
	View             string `json:"view"`
	Queries          int64  `json:"queries"`
	Rows             int64  `json:"rows"`
	ExtentBytes      int64  `json:"extent_bytes"`
	Materializations int64  `json:"materializations"`
	MaterializeNS    int64  `json:"materialize_ns"`
	LastUsedUnixNS   int64  `json:"last_used_unix_ns,omitempty"`
}

// WorkloadSnapshot is a point-in-time copy of the workload table,
// marshalable to JSON (the /debug/workload schema).
type WorkloadSnapshot struct {
	Capacity     int                `json:"capacity"`
	TotalQueries int64              `json:"total_queries"`
	Evictions    int64              `json:"evictions"`
	Fingerprints []FingerprintStats `json:"fingerprints"` // count-descending
	Overflow     *FingerprintStats  `json:"overflow,omitempty"`
	Views        []ViewStats        `json:"views"` // name-sorted
}

func (e *fpEntry) stats() FingerprintStats {
	st := FingerprintStats{
		Fingerprint:    e.fingerprint,
		Query:          e.query,
		Count:          e.count,
		Errors:         e.errors,
		Degraded:       e.degraded,
		Shed:           e.shed,
		Latency:        e.lat.Stats(),
		Rows:           e.rows.Stats(),
		CacheHits:      e.cacheHits,
		CacheMisses:    e.cacheMisses,
		Batches:        e.batches,
		BatchFallbacks: e.fallbacks,
		PredAbsorbed:   e.absorbed,
		PredResidual:   e.residual,
		BaseScans:      e.baseScans,
		LastUnixNS:     e.lastNS,
	}
	if total := e.cacheHits + e.cacheMisses; total > 0 {
		st.CacheHitRatio = float64(e.cacheHits) / float64(total)
	}
	if len(e.outcomes) > 0 {
		st.Outcomes = make(map[string]int64, len(e.outcomes))
		for k, v := range e.outcomes {
			st.Outcomes[k] = v
		}
	}
	if len(e.phases) > 0 {
		st.PhasesNS = make(map[string]int64, len(e.phases))
		for k, v := range e.phases {
			st.PhasesNS[k] = v
		}
	}
	for v := range e.views {
		st.Views = append(st.Views, v)
	}
	sort.Strings(st.Views)
	return st
}

// Snapshot copies the table: fingerprints sorted count-descending (ties by
// fingerprint for determinism), views sorted by name.
func (w *WorkloadStats) Snapshot() *WorkloadSnapshot {
	if w == nil {
		return &WorkloadSnapshot{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	s := &WorkloadSnapshot{
		Capacity:     w.cap,
		TotalQueries: w.total,
		Evictions:    w.evicted,
		Fingerprints: make([]FingerprintStats, 0, len(w.entries)),
		Views:        make([]ViewStats, 0, len(w.views)),
	}
	for _, e := range w.entries {
		s.Fingerprints = append(s.Fingerprints, e.stats())
	}
	sort.Slice(s.Fingerprints, func(i, j int) bool {
		if s.Fingerprints[i].Count != s.Fingerprints[j].Count {
			return s.Fingerprints[i].Count > s.Fingerprints[j].Count
		}
		return s.Fingerprints[i].Fingerprint < s.Fingerprints[j].Fingerprint
	})
	if w.overflow != nil {
		o := w.overflow.stats()
		s.Overflow = &o
	}
	for name, v := range w.views {
		s.Views = append(s.Views, ViewStats{
			View:             name,
			Queries:          v.queries,
			Rows:             v.rows,
			ExtentBytes:      v.extentBytes,
			Materializations: v.materializations,
			MaterializeNS:    v.materializeNS,
			LastUsedUnixNS:   v.lastUsedNS,
		})
	}
	sort.Slice(s.Views, func(i, j int) bool { return s.Views[i].View < s.Views[j].View })
	return s
}

// String renders the snapshot as two terminal tables: the fingerprint
// aggregates (top to bottom by count) and the per-view attribution.
func (s *WorkloadSnapshot) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "workload: %d queries, %d fingerprints (cap %d, %d evicted)\n",
		s.TotalQueries, len(s.Fingerprints), s.Capacity, s.Evictions)
	fmt.Fprintf(&sb, "%-18s %8s %8s %10s %10s %6s %6s %6s %6s  %s\n",
		"fingerprint", "count", "errs", "p50", "p99", "hit%", "base", "resid", "shed", "query")
	rows := s.Fingerprints
	if s.Overflow != nil {
		rows = append(append([]FingerprintStats{}, rows...), *s.Overflow)
	}
	for _, f := range rows {
		q := f.Query
		if len(q) > 48 {
			q = q[:45] + "..."
		}
		fmt.Fprintf(&sb, "%-18s %8d %8d %10s %10s %5.0f%% %6d %6d %6d  %s\n",
			f.Fingerprint, f.Count, f.Errors,
			time.Duration(f.Latency.P50NS).Round(time.Microsecond),
			time.Duration(f.Latency.P99NS).Round(time.Microsecond),
			100*f.CacheHitRatio, f.BaseScans, f.PredResidual, f.Shed, q)
	}
	if len(s.Views) > 0 {
		fmt.Fprintf(&sb, "%-24s %8s %10s %12s %8s %12s\n",
			"view", "queries", "rows", "extent-bytes", "builds", "build-time")
		for _, v := range s.Views {
			fmt.Fprintf(&sb, "%-24s %8d %10d %12d %8d %12s\n",
				v.View, v.Queries, v.Rows, v.ExtentBytes, v.Materializations,
				time.Duration(v.MaterializeNS).Round(time.Microsecond))
		}
	}
	return sb.String()
}

// PromFamilies renders the top-k fingerprints (by count) and every
// attributed view as single-label metric families for the Prometheus
// exposition (Snapshot.Labeled), so dashboards can plot per-fingerprint
// and per-view series without scraping the debug endpoints.
func (w *WorkloadStats) PromFamilies(k int) []LabeledFamily {
	if w == nil {
		return nil
	}
	s := w.Snapshot()
	fps := s.Fingerprints
	if k > 0 && len(fps) > k {
		fps = fps[:k]
	}
	fpQueries := LabeledFamily{Name: "engine.workload.fingerprint.queries", Type: "counter", LabelKey: "fingerprint"}
	fpP50 := LabeledFamily{Name: "engine.workload.fingerprint.p50_ns", Type: "gauge", LabelKey: "fingerprint"}
	fpBase := LabeledFamily{Name: "engine.workload.fingerprint.base_scans", Type: "counter", LabelKey: "fingerprint"}
	for _, f := range fps {
		fpQueries.Samples = append(fpQueries.Samples, LabeledSample{Label: f.Fingerprint, Value: f.Count})
		fpP50.Samples = append(fpP50.Samples, LabeledSample{Label: f.Fingerprint, Value: f.Latency.P50NS})
		fpBase.Samples = append(fpBase.Samples, LabeledSample{Label: f.Fingerprint, Value: f.BaseScans})
	}
	vQueries := LabeledFamily{Name: "engine.workload.view.queries", Type: "counter", LabelKey: "view"}
	vBytes := LabeledFamily{Name: "engine.workload.view.extent_bytes", Type: "counter", LabelKey: "view"}
	for _, v := range s.Views {
		vQueries.Samples = append(vQueries.Samples, LabeledSample{Label: v.View, Value: v.Queries})
		vBytes.Samples = append(vBytes.Samples, LabeledSample{Label: v.View, Value: v.ExtentBytes})
	}
	return []LabeledFamily{fpQueries, fpP50, fpBase, vQueries, vBytes}
}
