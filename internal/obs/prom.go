package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteProm renders the snapshot in the Prometheus text exposition format
// (version 0.0.4): counters and gauges as single samples, histograms as a
// `histogram` family with cumulative `le` buckets plus a companion
// `<name>_summary` family carrying the p50/p95/p99 quantile upper bounds.
// Registry names are sanitized to valid Prometheus identifiers
// (SanitizeMetricName); when two raw names collide after sanitization —
// or a name collides with a histogram's derived `_bucket`/`_sum`/`_count`
// series — later families are deterministically suffixed `_2`, `_3`, …,
// so the exposition never emits two samples with the same identity.
// Families appear counters-first, then gauges, then histograms, then
// labeled families, each sorted by raw name, so the output is byte-stable
// for a given snapshot.
func (s *Snapshot) WriteProm(w io.Writer) error {
	var sb strings.Builder
	used := map[string]bool{}
	// claim reserves base and every base+suffix name, bumping to
	// `base_2`, `base_3`, … until the whole family is collision-free.
	claim := func(base string, suffixes ...string) string {
		name := base
		for n := 2; ; n++ {
			free := !used[name]
			for _, suf := range suffixes {
				if used[name+suf] {
					free = false
					break
				}
			}
			if free {
				break
			}
			name = fmt.Sprintf("%s_%d", base, n)
		}
		used[name] = true
		for _, suf := range suffixes {
			used[name+suf] = true
		}
		return name
	}

	for _, raw := range sortedKeys(s.Counters) {
		n := claim(SanitizeMetricName(raw))
		fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[raw])
	}
	for _, raw := range sortedKeys(s.Gauges) {
		n := claim(SanitizeMetricName(raw))
		fmt.Fprintf(&sb, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[raw])
	}
	var hists []string
	for raw := range s.Histograms {
		hists = append(hists, raw)
	}
	sort.Strings(hists)
	for _, raw := range hists {
		h := s.Histograms[raw]
		n := claim(SanitizeMetricName(raw),
			"_bucket", "_sum", "_count", "_summary", "_summary_sum", "_summary_count")
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", n)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(&sb, "%s_bucket{le=\"%d\"} %d\n", n, b.UpperNS, cum)
		}
		fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(&sb, "%s_sum %d\n%s_count %d\n", n, h.SumNS, n, h.Count)
		q := n + "_summary"
		fmt.Fprintf(&sb, "# TYPE %s summary\n", q)
		fmt.Fprintf(&sb, "%s{quantile=\"0.5\"} %d\n", q, h.P50NS)
		fmt.Fprintf(&sb, "%s{quantile=\"0.95\"} %d\n", q, h.P95NS)
		fmt.Fprintf(&sb, "%s{quantile=\"0.99\"} %d\n", q, h.P99NS)
		fmt.Fprintf(&sb, "%s_sum %d\n%s_count %d\n", q, h.SumNS, q, h.Count)
	}
	labeled := append([]LabeledFamily{}, s.Labeled...)
	sort.SliceStable(labeled, func(i, j int) bool { return labeled[i].Name < labeled[j].Name })
	for _, fam := range labeled {
		typ := fam.Type
		if typ != "counter" && typ != "gauge" {
			typ = "gauge"
		}
		key := SanitizeMetricName(fam.LabelKey)
		n := claim(SanitizeMetricName(fam.Name))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", n, typ)
		samples := append([]LabeledSample{}, fam.Samples...)
		sort.SliceStable(samples, func(i, j int) bool { return samples[i].Label < samples[j].Label })
		seen := map[string]bool{}
		for _, smp := range samples {
			if seen[smp.Label] {
				continue
			}
			seen[smp.Label] = true
			fmt.Fprintf(&sb, "%s{%s=\"%s\"} %d\n", n, key, escapeLabelValue(smp.Label), smp.Value)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// LabeledSample is one sample of a labeled family: a single label value
// (the family fixes the key) and the sample's value.
type LabeledSample struct {
	Label string
	Value int64
}

// LabeledFamily is a metric family whose samples are distinguished by one
// label (key fixed per family — e.g. `fingerprint` or `view`). The
// workload observatory exports its top-K fingerprint and per-view series
// this way (WorkloadStats.PromFamilies); WriteProm emits them after the
// unlabeled families, with the family name passing through the same
// reservation-dedup as everything else and samples deduplicated by label
// value (first wins) and sorted for byte-stable output.
type LabeledFamily struct {
	Name     string // registry-style raw name; sanitized on write
	Type     string // "counter" or "gauge"; anything else renders as gauge
	LabelKey string
	Samples  []LabeledSample
}

// escapeLabelValue escapes a label value per the text exposition format:
// backslash, double quote and newline must be escaped, everything else
// passes through.
func escapeLabelValue(v string) string {
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// SanitizeMetricName maps an arbitrary registry name onto the Prometheus
// identifier grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid rune becomes
// '_', a leading digit gets a '_' prefix, and the empty name becomes "_".
func SanitizeMetricName(name string) string {
	var sb strings.Builder
	for _, r := range name {
		switch {
		case r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9'):
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if out == "" {
		return "_"
	}
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
