package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteProm renders the snapshot in the Prometheus text exposition format
// (version 0.0.4): counters and gauges as single samples, histograms as a
// `histogram` family with cumulative `le` buckets plus a companion
// `<name>_summary` family carrying the p50/p95/p99 quantile upper bounds.
// Registry names are sanitized to valid Prometheus identifiers
// (SanitizeMetricName); when two raw names collide after sanitization —
// or a name collides with a histogram's derived `_bucket`/`_sum`/`_count`
// series — later families are deterministically suffixed `_2`, `_3`, …,
// so the exposition never emits two samples with the same identity.
// Families appear counters-first, then gauges, then histograms, each
// sorted by raw name, so the output is byte-stable for a given snapshot.
func (s *Snapshot) WriteProm(w io.Writer) error {
	var sb strings.Builder
	used := map[string]bool{}
	// claim reserves base and every base+suffix name, bumping to
	// `base_2`, `base_3`, … until the whole family is collision-free.
	claim := func(base string, suffixes ...string) string {
		name := base
		for n := 2; ; n++ {
			free := !used[name]
			for _, suf := range suffixes {
				if used[name+suf] {
					free = false
					break
				}
			}
			if free {
				break
			}
			name = fmt.Sprintf("%s_%d", base, n)
		}
		used[name] = true
		for _, suf := range suffixes {
			used[name+suf] = true
		}
		return name
	}

	for _, raw := range sortedKeys(s.Counters) {
		n := claim(SanitizeMetricName(raw))
		fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[raw])
	}
	for _, raw := range sortedKeys(s.Gauges) {
		n := claim(SanitizeMetricName(raw))
		fmt.Fprintf(&sb, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[raw])
	}
	var hists []string
	for raw := range s.Histograms {
		hists = append(hists, raw)
	}
	sort.Strings(hists)
	for _, raw := range hists {
		h := s.Histograms[raw]
		n := claim(SanitizeMetricName(raw),
			"_bucket", "_sum", "_count", "_summary", "_summary_sum", "_summary_count")
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", n)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(&sb, "%s_bucket{le=\"%d\"} %d\n", n, b.UpperNS, cum)
		}
		fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(&sb, "%s_sum %d\n%s_count %d\n", n, h.SumNS, n, h.Count)
		q := n + "_summary"
		fmt.Fprintf(&sb, "# TYPE %s summary\n", q)
		fmt.Fprintf(&sb, "%s{quantile=\"0.5\"} %d\n", q, h.P50NS)
		fmt.Fprintf(&sb, "%s{quantile=\"0.95\"} %d\n", q, h.P95NS)
		fmt.Fprintf(&sb, "%s{quantile=\"0.99\"} %d\n", q, h.P99NS)
		fmt.Fprintf(&sb, "%s_sum %d\n%s_count %d\n", q, h.SumNS, q, h.Count)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// SanitizeMetricName maps an arbitrary registry name onto the Prometheus
// identifier grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid rune becomes
// '_', a leading digit gets a '_' prefix, and the empty name becomes "_".
func SanitizeMetricName(name string) string {
	var sb strings.Builder
	for _, r := range name {
		switch {
		case r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9'):
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if out == "" {
		return "_"
	}
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
