package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// QueryRecord is one structured entry of the query log. Counters and sizes
// are always present so the JSONL schema is stable; heavyweight fields
// (trace, operator stats) are attached only for slow queries and omitted
// otherwise. Trace and Ops are pre-marshaled by the producer so this
// package stays free of engine dependencies.
type QueryRecord struct {
	Seq         uint64           `json:"seq"`
	TimeUnixNS  int64            `json:"time_unix_ns"`
	Fingerprint string           `json:"fingerprint"`
	Query       string           `json:"query"`
	Plans       []string         `json:"plans,omitempty"`
	CacheHits   int              `json:"cache_hits"`
	CacheMisses int              `json:"cache_misses"`
	Degraded    int              `json:"degraded"`
	RowsOut     int64            `json:"rows_out"`
	DurationNS  int64            `json:"duration_ns"`
	// Outcome classifies how the query ended: "served", "error",
	// "quota_killed", "deadline", "cancelled", or a "shed:*" reason for
	// requests rejected by admission control before reaching the engine.
	Outcome  string           `json:"outcome,omitempty"`
	PhasesNS map[string]int64 `json:"phases_ns,omitempty"`
	// Plan-shape accounting for the workload observatory: base-table scans
	// the fallback cascade resorted to, whether value predicates were
	// absorbed into the chosen rewriting, residual selections left above it,
	// batch vs. row-at-a-time execution counts, and the views the executed
	// plans touched (see ViewUse).
	BaseScans      int             `json:"base_scans,omitempty"`
	PredAbsorbed   bool            `json:"pred_absorbed,omitempty"`
	PredResidual   int             `json:"pred_residual,omitempty"`
	Batches        int64           `json:"batches,omitempty"`
	BatchFallbacks int64           `json:"batch_fallbacks,omitempty"`
	Views          []ViewUse       `json:"views,omitempty"`
	Error          string          `json:"error,omitempty"`
	Slow           bool            `json:"slow,omitempty"`
	Trace          json.RawMessage `json:"trace,omitempty"`
	Ops            json.RawMessage `json:"ops,omitempty"`
}

// QueryLog is a bounded, goroutine-safe ring buffer of QueryRecords: the
// engine appends one record per query (successful, degraded or failed) and
// monitoring surfaces read recency-, latency- and error-ordered views of
// the retained window. All methods are nil-safe so a disabled log (nil)
// costs nothing at the call sites.
type QueryLog struct {
	mu   sync.Mutex
	cap  int
	slow time.Duration
	seq  uint64
	buf  []QueryRecord // ring; buf[next] is the oldest once full
	next int           // next write position
	n    int           // records retained (≤ cap)
}

// NewQueryLog creates a log retaining up to capacity records (minimum 1).
// Queries lasting at least slowThreshold are marked slow; 0 disables slow
// marking.
func NewQueryLog(capacity int, slowThreshold time.Duration) *QueryLog {
	if capacity < 1 {
		capacity = 1
	}
	return &QueryLog{cap: capacity, slow: slowThreshold, buf: make([]QueryRecord, capacity)}
}

// SlowThreshold returns the configured slow-query threshold (0 when the
// log is nil or slow marking is off).
func (l *QueryLog) SlowThreshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.slow
}

// IsSlow reports whether a query of duration d crosses the slow threshold.
func (l *QueryLog) IsSlow(d time.Duration) bool {
	return l != nil && l.slow > 0 && d >= l.slow
}

// Record appends one record, assigning its sequence number and slow flag
// and evicting the oldest retained record when the ring is full.
func (l *QueryLog) Record(rec QueryRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	rec.Seq = l.seq
	rec.Slow = l.slow > 0 && rec.DurationNS >= int64(l.slow)
	l.buf[l.next] = rec
	l.next = (l.next + 1) % l.cap
	if l.n < l.cap {
		l.n++
	}
}

// Len returns how many records are retained.
func (l *QueryLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// newestFirst copies the retained records newest-first, filtered by keep
// (nil keeps all), up to limit (≤0 means all). Callers hold l.mu.
func (l *QueryLog) newestFirst(limit int, keep func(*QueryRecord) bool) []QueryRecord {
	out := []QueryRecord{}
	for i := 1; i <= l.n; i++ {
		rec := &l.buf[(l.next-i+l.cap*2)%l.cap]
		if keep != nil && !keep(rec) {
			continue
		}
		out = append(out, *rec)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out
}

// Recent returns up to n retained records, newest first (n ≤ 0: all).
func (l *QueryLog) Recent(n int) []QueryRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.newestFirst(n, nil)
}

// Slow returns up to n retained slow records, newest first (n ≤ 0: all).
func (l *QueryLog) Slow(n int) []QueryRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.newestFirst(n, func(r *QueryRecord) bool { return r.Slow })
}

// Errors returns the error tail: up to n retained records that ended in an
// error, newest first (n ≤ 0: all).
func (l *QueryLog) Errors(n int) []QueryRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.newestFirst(n, func(r *QueryRecord) bool { return r.Error != "" })
}

// TopK returns the k slowest retained records, longest first (ties broken
// newest first; k ≤ 0: all retained, sorted).
func (l *QueryLog) TopK(k int) []QueryRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	all := l.newestFirst(0, nil)
	l.mu.Unlock()
	sort.SliceStable(all, func(i, j int) bool { return all[i].DurationNS > all[j].DurationNS })
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// WriteJSONL streams the retained records oldest-first as one JSON object
// per line — the query log's export format (schema: QueryRecord).
func (l *QueryLog) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	newest := l.newestFirst(0, nil)
	l.mu.Unlock()
	for i := len(newest) - 1; i >= 0; i-- {
		data, err := json.Marshal(&newest[i])
		if err != nil {
			return err
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return err
		}
	}
	return nil
}
