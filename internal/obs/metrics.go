// Package obs is the engine's dependency-free observability layer: a
// goroutine-safe registry of counters, gauges and latency histograms, plus
// per-query trace spans (trace.go). The engine threads these through the
// whole query path — parse, extract, rewrite, materialize, execute — so
// production traffic and benchmarks measure the same counters a perf PR
// must move. Everything here is plain stdlib: no exporter dependencies,
// just atomic integers and JSON snapshots.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the value to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. in-flight queries).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram bucketing is HDR-style: exponential power-of-two ranges, each
// split into 4 linear sub-buckets by the two bits after the leading one, so
// a quantile's bucket upper bound overestimates the true value by at most
// 25% (the pure power-of-two scheme was off by up to 2×). Values 0–3 get
// exact buckets; value v ≥ 4 with most-significant bit m (v ∈ [2^m, 2^(m+1)))
// lands in sub-bucket (v >> (m-2)) & 3 of range m. m runs 2…63, hence
// 4 + 62*4 buckets cover the full non-negative int64 range.
const histBuckets = 4 + 62*4

// histBucketIndex maps an observation to its bucket.
func histBucketIndex(v int64) int {
	if v < 4 {
		return int(v)
	}
	m := bits.Len64(uint64(v)) - 1
	sub := int((uint64(v) >> uint(m-2)) & 3)
	return 4 + (m-2)*4 + sub
}

// histBucketUpper is the largest value mapped to bucket i (the quantile
// upper bound), saturating at MaxInt64 for the top range.
func histBucketUpper(i int) int64 {
	if i < 4 {
		return int64(i)
	}
	m := uint((i-4)/4 + 2)
	sub := uint64((i-4)%4) + 1
	u := uint64(1)<<m + sub<<(m-2) - 1
	if u > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(u)
}

// Histogram records int64 observations (by convention nanoseconds for
// latencies) into exponential buckets with 4 linear sub-buckets per power
// of two (see histBucketIndex). All operations are atomic; Observe is
// wait-free except for the min/max CAS loops.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // initialized to MaxInt64 by the registry
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one value; negative values clamp to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	atomicMin(&h.min, v)
	atomicMax(&h.max, v)
	h.buckets[histBucketIndex(v)].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Since records the time elapsed from start; handy as a one-line defer.
func (h *Histogram) Since(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Count returns how many observations were recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1): the top of
// the sub-bucket the quantile falls into, at most 25% above the true value
// (and clamped to the observed max). 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			hi := histBucketUpper(i)
			if m := h.max.Load(); hi > m {
				hi = m
			}
			return hi
		}
	}
	return h.max.Load()
}

// Stats summarizes the histogram into its exported snapshot form (count,
// sum, min/max, mean, quantile upper bounds and the non-empty buckets) —
// shared by the registry snapshot and the workload aggregate table.
func (h *Histogram) Stats() HistogramStats {
	st := HistogramStats{
		Count: h.Count(),
		SumNS: h.Sum(),
		P50NS: h.Quantile(0.50),
		P95NS: h.Quantile(0.95),
		P99NS: h.Quantile(0.99),
	}
	if st.Count > 0 {
		st.MinNS = h.min.Load()
		st.MaxNS = h.max.Load()
		st.Mean = float64(st.SumNS) / float64(st.Count)
		for i := 0; i < histBuckets; i++ {
			if n := h.buckets[i].Load(); n > 0 {
				st.Buckets = append(st.Buckets, HistBucket{UpperNS: histBucketUpper(i), Count: n})
			}
		}
	}
	return st
}

// Merge folds src's observations into h (bucket-wise, so quantiles stay
// within the usual 25% bound). Used when a bounded aggregate table retires
// an entry into its overflow bucket. Not atomic across buckets: callers
// serialize merges externally.
func (h *Histogram) Merge(src *Histogram) {
	if src == nil || src.count.Load() == 0 {
		return
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
	atomicMin(&h.min, src.min.Load())
	atomicMax(&h.max, src.max.Load())
	for i := 0; i < histBuckets; i++ {
		if n := src.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
}

func atomicMin(a *atomic.Int64, v int64) {
	for {
		old := a.Load()
		if v >= old || a.CompareAndSwap(old, v) {
			return
		}
	}
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		old := a.Load()
		if v <= old || a.CompareAndSwap(old, v) {
			return
		}
	}
}

// Registry is a goroutine-safe name → metric table. Metrics are created on
// first use and live for the registry's lifetime; the accessors are cheap
// enough for per-query paths (one mutex-guarded map lookup).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, used when a component is not
// given its own.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// HistBucket is one non-empty histogram bucket: the largest value the
// bucket admits and how many observations landed in it. Counts are
// per-bucket, not cumulative — the Prometheus writer accumulates them into
// the exposition's `le` series.
type HistBucket struct {
	UpperNS int64
	Count   int64
}

// HistogramStats is the exported summary of one histogram. Buckets is
// excluded from JSON so the bench export format stays stable; it feeds the
// Prometheus exposition only.
type HistogramStats struct {
	Count   int64        `json:"count"`
	SumNS   int64        `json:"sum_ns"`
	MinNS   int64        `json:"min_ns"`
	MaxNS   int64        `json:"max_ns"`
	Mean    float64      `json:"mean_ns"`
	P50NS   int64        `json:"p50_ns"`
	P95NS   int64        `json:"p95_ns"`
	P99NS   int64        `json:"p99_ns"`
	Buckets []HistBucket `json:"-"`
}

// Snapshot is a point-in-time copy of every metric in a registry,
// marshalable to JSON (the bench export format; see DESIGN.md).
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms"`
	// Labeled carries labeled families (e.g. the workload observatory's
	// per-fingerprint/per-view series) into the Prometheus exposition only;
	// it is excluded from JSON so the bench export format stays stable.
	Labeled []LabeledFamily `json:"-"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramStats, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Stats()
	}
	return s
}

// JSON renders the snapshot as indented JSON.
func (s *Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// String renders the snapshot as sorted "name value" lines for terminals.
func (s *Snapshot) String() string {
	var sb strings.Builder
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "%-32s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "%-32s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&sb, "%-32s count=%d mean=%s p50=%s p95=%s p99=%s max=%s\n",
			n, h.Count, time.Duration(int64(h.Mean)), time.Duration(h.P50NS),
			time.Duration(h.P95NS), time.Duration(h.P99NS), time.Duration(h.MaxNS))
	}
	return sb.String()
}
