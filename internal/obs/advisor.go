// The view advisor: mines a WorkloadSnapshot into a ranked report of
// (a) hot fingerprints still paying for base scans or residual selections —
// candidates for new materialized views — and (b) cold views whose extents
// cost more to maintain than they serve. The report is the observability
// half of ROADMAP item 3; a future planner can consume the same structures
// to register views automatically.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// AdvisorOptions bound and inform a report. RegisteredViews lets the
// advisor flag catalog views that never appear in the attribution table at
// all (zero traffic since start) — without it, only views with at least
// one materialization or reference are considered.
type AdvisorOptions struct {
	MaxCandidates   int // ≤0: all
	MaxColdViews    int // ≤0: all
	RegisteredViews []string
}

// Candidate is one recommendation for a new materialized view: a query
// fingerprint whose chosen plans still hit base scans or leave residual
// selections, scored by frequency × latency (total time spent, in ns).
type Candidate struct {
	Fingerprint string  `json:"fingerprint"`
	Query       string  `json:"query"`
	Count       int64   `json:"count"`
	ScoreNS     int64   `json:"score_ns"` // = Σ latency = count × mean
	P50NS       int64   `json:"p50_ns"`
	BaseScans   int64   `json:"base_scans"`
	Residual    int64   `json:"residual"`
	Reason      string  `json:"reason"`
	ScanShare   float64 `json:"scan_share"` // base scans per query
}

// ColdView is one view flagged as costing more than it serves.
type ColdView struct {
	View          string `json:"view"`
	Queries       int64  `json:"queries"`
	MaterializeNS int64  `json:"materialize_ns"`
	// CostPerServeNS is materialize time divided by queries served (the
	// full materialize cost when the view served nothing).
	CostPerServeNS int64  `json:"cost_per_serve_ns"`
	Reason         string `json:"reason"`
}

// AdvisorReport is the advisor's output, marshalable to JSON (the
// /debug/advisor schema).
type AdvisorReport struct {
	TotalQueries int64       `json:"total_queries"`
	Candidates   []Candidate `json:"candidates"` // score-descending
	ColdViews    []ColdView  `json:"cold_views"` // unused first, then cost-descending
}

// Advise mines the snapshot. Candidates are fingerprints with at least one
// base scan or residual selection, ranked by ScoreNS = total latency
// (frequency × mean latency) so a pattern must be both hot and slow to
// rank; cold views are those serving zero queries, or whose materialize
// cost per served query exceeds 10× the workload's mean query latency.
func (s *WorkloadSnapshot) Advise(opts AdvisorOptions) *AdvisorReport {
	rep := &AdvisorReport{TotalQueries: s.TotalQueries}

	var sumNS, sumN int64
	for _, f := range s.Fingerprints {
		sumNS += f.Latency.SumNS
		sumN += f.Latency.Count
		if f.BaseScans == 0 && f.PredResidual == 0 {
			continue
		}
		c := Candidate{
			Fingerprint: f.Fingerprint,
			Query:       f.Query,
			Count:       f.Count,
			ScoreNS:     f.Latency.SumNS,
			P50NS:       f.Latency.P50NS,
			BaseScans:   f.BaseScans,
			Residual:    f.PredResidual,
		}
		if f.Count > 0 {
			c.ScanShare = float64(f.BaseScans) / float64(f.Count)
		}
		switch {
		case f.BaseScans > 0 && f.PredResidual > 0:
			c.Reason = "base scans + residual selections"
		case f.BaseScans > 0:
			c.Reason = "base scans"
		default:
			c.Reason = "residual selections"
		}
		rep.Candidates = append(rep.Candidates, c)
	}
	sort.Slice(rep.Candidates, func(i, j int) bool {
		if rep.Candidates[i].ScoreNS != rep.Candidates[j].ScoreNS {
			return rep.Candidates[i].ScoreNS > rep.Candidates[j].ScoreNS
		}
		return rep.Candidates[i].Fingerprint < rep.Candidates[j].Fingerprint
	})
	if opts.MaxCandidates > 0 && len(rep.Candidates) > opts.MaxCandidates {
		rep.Candidates = rep.Candidates[:opts.MaxCandidates]
	}

	var meanNS int64
	if sumN > 0 {
		meanNS = sumNS / sumN
	}
	attributed := map[string]bool{}
	var unused, costly []ColdView
	for _, v := range s.Views {
		attributed[v.View] = true
		switch {
		case v.Queries == 0:
			unused = append(unused, ColdView{
				View:           v.View,
				MaterializeNS:  v.MaterializeNS,
				CostPerServeNS: v.MaterializeNS,
				Reason:         "materialized but unused",
			})
		case meanNS > 0 && v.MaterializeNS/v.Queries > 10*meanNS:
			costly = append(costly, ColdView{
				View:           v.View,
				Queries:        v.Queries,
				MaterializeNS:  v.MaterializeNS,
				CostPerServeNS: v.MaterializeNS / v.Queries,
				Reason:         "materialize cost exceeds serving benefit",
			})
		}
	}
	for _, name := range opts.RegisteredViews {
		if !attributed[name] {
			unused = append(unused, ColdView{View: name, Reason: "registered but unused"})
		}
	}
	sort.Slice(unused, func(i, j int) bool { return unused[i].View < unused[j].View })
	sort.Slice(costly, func(i, j int) bool {
		if costly[i].CostPerServeNS != costly[j].CostPerServeNS {
			return costly[i].CostPerServeNS > costly[j].CostPerServeNS
		}
		return costly[i].View < costly[j].View
	})
	rep.ColdViews = append(unused, costly...)
	if opts.MaxColdViews > 0 && len(rep.ColdViews) > opts.MaxColdViews {
		rep.ColdViews = rep.ColdViews[:opts.MaxColdViews]
	}
	return rep
}

// String renders the report as terminal tables.
func (r *AdvisorReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "advisor: %d queries observed, %d view candidates, %d cold views\n",
		r.TotalQueries, len(r.Candidates), len(r.ColdViews))
	if len(r.Candidates) > 0 {
		fmt.Fprintf(&sb, "%-4s %-18s %8s %12s %10s %6s %6s  %-36s %s\n",
			"rank", "fingerprint", "count", "score", "p50", "base", "resid", "reason", "query")
		for i, c := range r.Candidates {
			q := c.Query
			if len(q) > 48 {
				q = q[:45] + "..."
			}
			fmt.Fprintf(&sb, "%-4d %-18s %8d %12s %10s %6d %6d  %-36s %s\n",
				i+1, c.Fingerprint, c.Count,
				time.Duration(c.ScoreNS).Round(time.Microsecond),
				time.Duration(c.P50NS).Round(time.Microsecond),
				c.BaseScans, c.Residual, c.Reason, q)
		}
	}
	if len(r.ColdViews) > 0 {
		fmt.Fprintf(&sb, "%-24s %8s %12s %14s  %s\n",
			"cold view", "queries", "build-time", "cost/serve", "reason")
		for _, v := range r.ColdViews {
			fmt.Fprintf(&sb, "%-24s %8d %12s %14s  %s\n",
				v.View, v.Queries,
				time.Duration(v.MaterializeNS).Round(time.Microsecond),
				time.Duration(v.CostPerServeNS).Round(time.Microsecond), v.Reason)
		}
	}
	return sb.String()
}
