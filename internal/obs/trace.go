package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one timed phase of a query (parse, extract, rewrite, materialize,
// execute …). Start is the offset from the trace origin so a JSON trace is
// self-contained without absolute timestamps.
type Span struct {
	Name     string        `json:"name"`
	Start    time.Duration `json:"start_ns"`
	Duration time.Duration `json:"dur_ns"`
	Children []*Span       `json:"children,omitempty"`

	tr    *Trace
	begun time.Time
}

// Trace is a tree of spans rooted at the whole query. Span creation and
// completion are guarded by one mutex — traces are cheap (a handful of
// spans per query), so contention is not a concern.
type Trace struct {
	mu     sync.Mutex
	origin time.Time
	Root   *Span
}

// NewTrace starts a trace whose root span is already running.
func NewTrace(name string) *Trace {
	now := time.Now()
	t := &Trace{origin: now}
	t.Root = &Span{Name: name, tr: t, begun: now}
	return t
}

// StartSpan opens a child span under parent (the root when parent is nil).
func (t *Trace) StartSpan(parent *Span, name string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if parent == nil {
		parent = t.Root
	}
	s := &Span{Name: name, Start: time.Since(t.origin), tr: t, begun: time.Now()}
	parent.Children = append(parent.Children, s)
	return s
}

// End closes the span, fixing its duration. Safe to call once per span.
func (s *Span) End() {
	if s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.Duration = time.Since(s.begun)
}

// End closes the root span.
func (t *Trace) End() { t.Root.End() }

// JSON renders the trace as indented JSON (schema: nested spans with
// name/start_ns/dur_ns/children; see DESIGN.md "Observability").
func (t *Trace) JSON() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return json.MarshalIndent(t.Root, "", "  ")
}

// PhaseTotals sums span durations by name across the whole tree (the root
// excluded — it spans the query end to end). Parameterized spans such as
// "materialize(v_title)" aggregate under their base name, so the totals
// line up with the engine's per-phase histograms.
func (t *Trace) PhaseTotals() map[string]time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	totals := map[string]time.Duration{}
	var walk func(s *Span)
	walk = func(s *Span) {
		name := s.Name
		if i := strings.IndexAny(name, "(["); i > 0 {
			name = name[:i]
		}
		totals[name] += s.Duration
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, c := range t.Root.Children {
		walk(c)
	}
	return totals
}

// String renders the span tree with durations for terminals.
func (t *Trace) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sb strings.Builder
	renderSpan(&sb, t.Root, 0)
	return sb.String()
}

func renderSpan(sb *strings.Builder, s *Span, depth int) {
	fmt.Fprintf(sb, "%s%s  %s\n", strings.Repeat("  ", depth), s.Name, s.Duration.Round(time.Microsecond))
	for _, c := range s.Children {
		renderSpan(sb, c, depth+1)
	}
}
