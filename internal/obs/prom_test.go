package obs

import (
	"regexp"
	"strings"
	"testing"
)

// TestPromExpositionGolden pins the Prometheus text exposition byte for
// byte: family order (counters, gauges, histograms; each name-sorted),
// sanitized identifiers, cumulative le buckets, and the companion
// quantile summary.
func TestPromExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.queries").Add(3)
	r.Counter("engine.base_scans").Inc()
	r.Gauge("engine.inflight").Set(1)
	h := r.Histogram("engine.query_ns")
	h.Observe(1)
	h.Observe(2)

	var sb strings.Builder
	if err := r.Snapshot().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE engine_base_scans counter
engine_base_scans 1
# TYPE engine_queries counter
engine_queries 3
# TYPE engine_inflight gauge
engine_inflight 1
# TYPE engine_query_ns histogram
engine_query_ns_bucket{le="1"} 1
engine_query_ns_bucket{le="2"} 2
engine_query_ns_bucket{le="+Inf"} 2
engine_query_ns_sum 3
engine_query_ns_count 2
# TYPE engine_query_ns_summary summary
engine_query_ns_summary{quantile="0.5"} 1
engine_query_ns_summary{quantile="0.95"} 2
engine_query_ns_summary{quantile="0.99"} 2
engine_query_ns_summary_sum 3
engine_query_ns_summary_count 2
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSanitizeMetricName covers the identifier grammar edge cases.
func TestSanitizeMetricName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"engine.query_ns", "engine_query_ns"},
		{"engine.view_materialized.v-1", "engine_view_materialized_v_1"},
		{"9lives", "_9lives"},
		{"", "_"},
		{"ok:name", "ok:name"},
		{"sp ace/slash", "sp_ace_slash"},
	} {
		if got := SanitizeMetricName(tc.in); got != tc.want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestPromLabeledGolden pins the labeled-family section of the exposition:
// emitted after the unlabeled families, name-sorted, samples label-sorted
// and deduplicated, label values escaped per the text format.
func TestPromLabeledGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.queries").Add(3)
	snap := r.Snapshot()
	snap.Labeled = []LabeledFamily{
		{
			Name: "engine.workload.view.queries", Type: "counter", LabelKey: "view",
			Samples: []LabeledSample{
				{Label: "v_b", Value: 2},
				{Label: "v_a", Value: 9},
				{Label: "v_b", Value: 99}, // duplicate label: first (post-sort) wins
				{Label: `odd"v\al{ue}`, Value: 1},
			},
		},
		{
			Name: "engine.workload.fingerprint.queries", Type: "counter", LabelKey: "fingerprint",
			Samples: []LabeledSample{{Label: "fp1", Value: 5}},
		},
		{
			Name: "engine.queries", Type: "bogus", LabelKey: "view", // collides with the counter; bad type → gauge
			Samples: []LabeledSample{{Label: "x", Value: 1}},
		},
	}
	var sb strings.Builder
	if err := snap.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE engine_queries counter
engine_queries 3
# TYPE engine_queries_2 gauge
engine_queries_2{view="x"} 1
# TYPE engine_workload_fingerprint_queries counter
engine_workload_fingerprint_queries{fingerprint="fp1"} 5
# TYPE engine_workload_view_queries counter
engine_workload_view_queries{view="odd\"v\\al{ue}"} 1
engine_workload_view_queries{view="v_a"} 9
engine_workload_view_queries{view="v_b"} 2
`
	if got := sb.String(); got != want {
		t.Fatalf("labeled exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	checkNoDuplicateSamples(t, sb.String())
}

// promSampleRe matches one exposition sample line: name, optional label
// set (label values are quoted strings with \\, \" and \n escapes, so a
// raw `}` inside a value does not end the set), value.
var promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_:][a-zA-Z0-9_:]*="(?:[^"\\]|\\.)*"\})? -?\d+$`)

// checkNoDuplicateSamples asserts every non-comment line of an exposition
// is grammatical and that no two samples share a metric identity
// (name + label set).
func checkNoDuplicateSamples(t *testing.T, exposition string) {
	t.Helper()
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(exposition, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line does not match the exposition grammar: %q", line)
		}
		id := m[1] + m[2]
		if seen[id] {
			t.Fatalf("duplicate sample identity %q in exposition:\n%s", id, exposition)
		}
		seen[id] = true
	}
}

// FuzzPromNoDuplicateLines feeds adversarial metric names — including ones
// that collide after sanitization, with a histogram's derived series, or
// with a labeled family — plus adversarial label values (quotes,
// backslashes, newlines, braces), and asserts Snapshot→WriteProm never
// emits two samples with the same identity and never emits an
// ungrammatical line.
func FuzzPromNoDuplicateLines(f *testing.F) {
	f.Add("engine.queries", "engine_queries", "engine.query_ns", "fp")
	f.Add("a.b", "a_b", "a_b_sum", `va"l`)
	f.Add("", " ", "9", "\n")
	f.Add("h", "h_count", "h_bucket", `}\`)
	f.Add("x", "x", "x", "x")
	f.Fuzz(func(t *testing.T, a, b, c, lbl string) {
		r := NewRegistry()
		r.Counter(a).Inc()
		r.Counter(b).Add(2)
		r.Gauge(a).Set(7)
		r.Gauge(c).Set(-1)
		r.Histogram(c).Observe(5)
		r.Histogram(a).Observe(123456)
		snap := r.Snapshot()
		snap.Labeled = []LabeledFamily{
			{Name: a, Type: "counter", LabelKey: b, Samples: []LabeledSample{
				{Label: lbl, Value: 1},
				{Label: lbl + "x", Value: 2},
				{Label: lbl, Value: 3},
			}},
			{Name: c, Type: "gauge", LabelKey: "view", Samples: []LabeledSample{
				{Label: lbl, Value: -4},
			}},
		}
		var sb strings.Builder
		if err := snap.WriteProm(&sb); err != nil {
			t.Fatal(err)
		}
		checkNoDuplicateSamples(t, sb.String())
	})
}
