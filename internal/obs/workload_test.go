package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func obsRecord(fp string, durNS int64, mut ...func(*QueryRecord)) QueryRecord {
	rec := QueryRecord{
		Fingerprint: fp,
		Query:       "q-" + fp,
		DurationNS:  durNS,
		RowsOut:     2,
		TimeUnixNS:  durNS, // monotone enough for last-used assertions
		Outcome:     "served",
	}
	for _, m := range mut {
		m(&rec)
	}
	return rec
}

func TestWorkloadFoldIn(t *testing.T) {
	w := NewWorkloadStats(8)
	w.Observe(obsRecord("fp1", 1000, func(r *QueryRecord) {
		r.CacheMisses = 1
		r.PhasesNS = map[string]int64{"rewrite": 100, "execute": 800}
		r.PredAbsorbed = true
		r.Batches = 3
		r.Views = []ViewUse{{Name: "v_a", Referenced: true, ExtentBytes: 64, MaterializeNS: 500}}
	}))
	w.Observe(obsRecord("fp1", 3000, func(r *QueryRecord) {
		r.CacheHits = 1
		r.PredResidual = 2
		r.BaseScans = 1
		r.BatchFallbacks = 1
		r.Views = []ViewUse{{Name: "v_a", Referenced: true, ExtentBytes: 64}}
	}))
	w.Observe(obsRecord("fp1", 2000, func(r *QueryRecord) {
		r.Outcome = "error"
		r.Error = "boom"
		r.Degraded = 1
	}))
	w.Observe(obsRecord("fp2", 500, func(r *QueryRecord) {
		r.Outcome = "shed:queue_full"
	}))

	s := w.Snapshot()
	if s.TotalQueries != 4 || len(s.Fingerprints) != 2 {
		t.Fatalf("got %d queries, %d fingerprints; want 4, 2", s.TotalQueries, len(s.Fingerprints))
	}
	f := s.Fingerprints[0] // count-descending: fp1 first
	if f.Fingerprint != "fp1" || f.Count != 3 {
		t.Fatalf("top entry = %q count=%d, want fp1 count=3", f.Fingerprint, f.Count)
	}
	if f.Query != "q-fp1" {
		t.Errorf("exemplar query = %q", f.Query)
	}
	if f.Errors != 1 || f.Degraded != 1 || f.Shed != 0 {
		t.Errorf("errors=%d degraded=%d shed=%d, want 1 1 0", f.Errors, f.Degraded, f.Shed)
	}
	if f.Outcomes["served"] != 2 || f.Outcomes["error"] != 1 {
		t.Errorf("outcomes = %v", f.Outcomes)
	}
	if f.Latency.Count != 3 || f.Latency.SumNS != 6000 {
		t.Errorf("latency count=%d sum=%d, want 3 6000", f.Latency.Count, f.Latency.SumNS)
	}
	if f.Rows.SumNS != 6 {
		t.Errorf("rows sum=%d, want 6", f.Rows.SumNS)
	}
	if f.PhasesNS["rewrite"] != 100 || f.PhasesNS["execute"] != 800 {
		t.Errorf("phases = %v", f.PhasesNS)
	}
	if f.CacheHits != 1 || f.CacheMisses != 1 || f.CacheHitRatio != 0.5 {
		t.Errorf("cache hits=%d misses=%d ratio=%v", f.CacheHits, f.CacheMisses, f.CacheHitRatio)
	}
	if f.Batches != 3 || f.BatchFallbacks != 1 {
		t.Errorf("batches=%d fallbacks=%d", f.Batches, f.BatchFallbacks)
	}
	if f.PredAbsorbed != 1 || f.PredResidual != 2 || f.BaseScans != 1 {
		t.Errorf("absorbed=%d residual=%d base=%d", f.PredAbsorbed, f.PredResidual, f.BaseScans)
	}
	if len(f.Views) != 1 || f.Views[0] != "v_a" {
		t.Errorf("views = %v", f.Views)
	}
	if s.Fingerprints[1].Shed != 1 {
		t.Errorf("fp2 shed = %d, want 1", s.Fingerprints[1].Shed)
	}

	if len(s.Views) != 1 {
		t.Fatalf("views = %v", s.Views)
	}
	v := s.Views[0]
	if v.View != "v_a" || v.Queries != 2 || v.Rows != 4 || v.ExtentBytes != 128 {
		t.Errorf("view stats = %+v", v)
	}
	if v.Materializations != 1 || v.MaterializeNS != 500 {
		t.Errorf("materializations=%d ns=%d, want 1 500", v.Materializations, v.MaterializeNS)
	}
	if v.LastUsedUnixNS != 3000 {
		t.Errorf("last used = %d, want 3000", v.LastUsedUnixNS)
	}

	// The table renderer mentions both sections.
	str := s.String()
	if !strings.Contains(str, "fp1") || !strings.Contains(str, "v_a") {
		t.Errorf("String() missing entries:\n%s", str)
	}
}

// TestWorkloadEviction pins the bounded-cardinality behavior: at capacity
// the minimum-count entry retires into the overflow bucket (aggregates
// preserved), and hot entries survive an adversarial stream of unique
// fingerprints.
func TestWorkloadEviction(t *testing.T) {
	w := NewWorkloadStats(2)
	for i := 0; i < 10; i++ {
		w.Observe(obsRecord("hot", 1000))
	}
	for i := 0; i < 50; i++ {
		w.Observe(obsRecord(fmt.Sprintf("unique-%d", i), 2000))
	}
	s := w.Snapshot()
	if len(s.Fingerprints) != 2 {
		t.Fatalf("retained %d entries, want 2", len(s.Fingerprints))
	}
	if s.Fingerprints[0].Fingerprint != "hot" || s.Fingerprints[0].Count != 10 {
		t.Fatalf("hot entry evicted: top = %+v", s.Fingerprints[0])
	}
	if s.Evictions != 49 {
		t.Errorf("evictions = %d, want 49", s.Evictions)
	}
	if s.Overflow == nil {
		t.Fatal("no overflow bucket")
	}
	// 49 unique singletons retired; none of their observations lost.
	if s.Overflow.Count != 49 || s.Overflow.Latency.SumNS != 49*2000 {
		t.Errorf("overflow count=%d sum=%d, want 49 %d", s.Overflow.Count, s.Overflow.Latency.SumNS, 49*2000)
	}
	if s.TotalQueries != 60 {
		t.Errorf("total = %d, want 60", s.TotalQueries)
	}
}

// TestWorkloadEntryBounds pins the per-entry map bounds: outcome names
// beyond the cap fold into "other", view names beyond the cap are dropped
// from the entry but still attributed in the view table.
func TestWorkloadEntryBounds(t *testing.T) {
	w := NewWorkloadStats(4)
	for i := 0; i < maxOutcomesPerEntry+5; i++ {
		w.Observe(obsRecord("fp", 100, func(r *QueryRecord) {
			r.Outcome = fmt.Sprintf("shed:reason-%d", i)
			r.Views = []ViewUse{{Name: fmt.Sprintf("v%02d", i), Referenced: true}}
		}))
	}
	s := w.Snapshot()
	f := s.Fingerprints[0]
	if len(f.Outcomes) > maxOutcomesPerEntry+1 { // +1 for "other"
		t.Errorf("outcomes unbounded: %d entries", len(f.Outcomes))
	}
	if f.Outcomes["other"] == 0 {
		t.Errorf("no overflow outcome: %v", f.Outcomes)
	}
	if len(f.Views) != maxViewsPerEntry {
		t.Errorf("entry views = %d, want %d", len(f.Views), maxViewsPerEntry)
	}
	if len(s.Views) != maxOutcomesPerEntry+5 {
		t.Errorf("view table = %d entries, want %d", len(s.Views), maxOutcomesPerEntry+5)
	}
}

func TestWorkloadNilSafe(t *testing.T) {
	var w *WorkloadStats
	w.Observe(obsRecord("fp", 1))
	if s := w.Snapshot(); s == nil || len(s.Fingerprints) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if fams := w.PromFamilies(5); fams != nil {
		t.Fatalf("nil PromFamilies = %v", fams)
	}
}

// TestWorkloadConcurrent hammers Observe and Snapshot from many
// goroutines; run under -race this pins goroutine safety.
func TestWorkloadConcurrent(t *testing.T) {
	w := NewWorkloadStats(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w.Observe(obsRecord(fmt.Sprintf("fp-%d", (g+i)%6), int64(i), func(r *QueryRecord) {
					r.Views = []ViewUse{{Name: "v", Referenced: true, ExtentBytes: 1}}
				}))
				if i%50 == 0 {
					_ = w.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := w.Snapshot()
	var n int64 = s.TotalQueries
	if n != 8*200 {
		t.Fatalf("total = %d, want %d", n, 8*200)
	}
	var retained int64
	for _, f := range s.Fingerprints {
		retained += f.Count
	}
	if s.Overflow != nil {
		retained += s.Overflow.Count
	}
	if retained != n {
		t.Fatalf("retained+overflow = %d, want %d (no observation may be lost)", retained, n)
	}
}

func TestAdvisor(t *testing.T) {
	w := NewWorkloadStats(16)
	// Hot and slow, base-scanning: must rank first.
	for i := 0; i < 20; i++ {
		w.Observe(obsRecord("hot-unserved", 10_000, func(r *QueryRecord) { r.BaseScans = 1 }))
	}
	// Cold base-scanner: lower score.
	w.Observe(obsRecord("cold-unserved", 10_000, func(r *QueryRecord) { r.BaseScans = 1 }))
	// Hot but fully served: not a candidate.
	for i := 0; i < 30; i++ {
		w.Observe(obsRecord("served", 1_000, func(r *QueryRecord) {
			r.Views = []ViewUse{{Name: "v_hot", Referenced: true}}
		}))
	}
	// Residual-selection fingerprint: a candidate too.
	for i := 0; i < 5; i++ {
		w.Observe(obsRecord("residual", 2_000, func(r *QueryRecord) { r.PredResidual = 1 }))
	}
	// A view that was materialized but never referenced.
	w.Observe(obsRecord("builder", 500, func(r *QueryRecord) {
		r.Views = []ViewUse{{Name: "v_wasted", MaterializeNS: 1_000_000}}
	}))

	rep := w.Snapshot().Advise(AdvisorOptions{RegisteredViews: []string{"v_hot", "v_wasted", "v_never"}})
	if len(rep.Candidates) != 3 {
		t.Fatalf("candidates = %+v, want 3", rep.Candidates)
	}
	if rep.Candidates[0].Fingerprint != "hot-unserved" {
		t.Fatalf("top candidate = %q, want hot-unserved", rep.Candidates[0].Fingerprint)
	}
	if rep.Candidates[0].ScoreNS != 20*10_000 {
		t.Errorf("top score = %d, want %d", rep.Candidates[0].ScoreNS, 20*10_000)
	}
	if rep.Candidates[0].Reason != "base scans" {
		t.Errorf("top reason = %q", rep.Candidates[0].Reason)
	}
	for _, c := range rep.Candidates {
		if c.Fingerprint == "served" {
			t.Errorf("fully served fingerprint recommended: %+v", c)
		}
	}

	cold := map[string]string{}
	for _, v := range rep.ColdViews {
		cold[v.View] = v.Reason
	}
	if _, ok := cold["v_hot"]; ok {
		t.Errorf("hot view flagged cold: %v", cold)
	}
	if cold["v_wasted"] != "materialized but unused" {
		t.Errorf("v_wasted reason = %q", cold["v_wasted"])
	}
	if cold["v_never"] != "registered but unused" {
		t.Errorf("v_never reason = %q", cold["v_never"])
	}

	// Bounds respected.
	bounded := w.Snapshot().Advise(AdvisorOptions{MaxCandidates: 1, MaxColdViews: 1})
	if len(bounded.Candidates) != 1 || len(bounded.ColdViews) != 1 {
		t.Errorf("bounds ignored: %d candidates, %d cold", len(bounded.Candidates), len(bounded.ColdViews))
	}

	str := rep.String()
	if !strings.Contains(str, "hot-unserved") || !strings.Contains(str, "v_wasted") {
		t.Errorf("report String() missing entries:\n%s", str)
	}
}

func TestWorkloadPromFamilies(t *testing.T) {
	w := NewWorkloadStats(8)
	for i := 0; i < 3; i++ {
		w.Observe(obsRecord("fp-a", 1000, func(r *QueryRecord) {
			r.Views = []ViewUse{{Name: "v1", Referenced: true, ExtentBytes: 10}}
		}))
	}
	w.Observe(obsRecord("fp-b", 2000, func(r *QueryRecord) { r.BaseScans = 1 }))

	fams := w.PromFamilies(1) // top-1: only fp-a survives the fingerprint cut
	byName := map[string]LabeledFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	fq := byName["engine.workload.fingerprint.queries"]
	if len(fq.Samples) != 1 || fq.Samples[0].Label != "fp-a" || fq.Samples[0].Value != 3 {
		t.Errorf("fingerprint.queries = %+v", fq.Samples)
	}
	vq := byName["engine.workload.view.queries"]
	if len(vq.Samples) != 1 || vq.Samples[0].Label != "v1" || vq.Samples[0].Value != 3 {
		t.Errorf("view.queries = %+v", vq.Samples)
	}
	vb := byName["engine.workload.view.extent_bytes"]
	if len(vb.Samples) != 1 || vb.Samples[0].Value != 30 {
		t.Errorf("view.extent_bytes = %+v", vb.Samples)
	}

	// Families render through WriteProm without identity collisions.
	snap := NewRegistry().Snapshot()
	snap.Labeled = w.PromFamilies(10)
	var sb strings.Builder
	if err := snap.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	checkNoDuplicateSamples(t, sb.String())
	if !strings.Contains(sb.String(), `engine_workload_fingerprint_queries{fingerprint="fp-a"} 3`) {
		t.Errorf("exposition missing fingerprint series:\n%s", sb.String())
	}
}
