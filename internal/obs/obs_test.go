package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterGaugeConcurrent hammers one counter and one gauge from many
// goroutines; run under -race this is the goroutine-safety proof.
func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Gauge("g").Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

// TestHistogramStats checks count/sum/min/max and that quantile upper
// bounds bracket the observations.
func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1106 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.5); q < 2 || q > 3 {
		t.Fatalf("p50 upper bound %d outside [2,3]", q)
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Fatalf("p100 = %d, want max 1000", q)
	}
	s := r.Snapshot()
	st := s.Histograms["lat"]
	if st.MinNS != 1 || st.MaxNS != 1000 || st.Count != 5 {
		t.Fatalf("snapshot stats: %+v", st)
	}
}

// TestHistogramQuantileAccuracy checks the sub-bucket bound: the quantile
// upper estimate must stay within 25% of the true value across the range
// (the pure power-of-two buckets were off by up to 2×).
func TestHistogramQuantileAccuracy(t *testing.T) {
	for _, v := range []int64{1, 3, 4, 5, 7, 9, 100, 999, 12345, 1 << 20, 1<<40 + 17} {
		h := newHistogram()
		h.Observe(v)
		q := h.Quantile(0.99)
		if q < v || float64(q) > float64(v)*1.25 {
			t.Fatalf("Observe(%d): quantile bound %d outside [v, 1.25v]", v, q)
		}
	}
	// Bucket index/upper stay consistent across the whole int64 range,
	// including the saturating top bucket.
	for _, v := range []int64{0, 1, 2, 3, 4, 63, 64, 65, 1<<62 + 1, math.MaxInt64} {
		i := histBucketIndex(v)
		if up := histBucketUpper(i); up < v {
			t.Fatalf("bucket upper %d below member value %d (bucket %d)", up, v, i)
		}
		if i > 0 {
			if lowUp := histBucketUpper(i - 1); lowUp >= v {
				t.Fatalf("value %d should not fit bucket %d (upper %d)", v, i-1, lowUp)
			}
		}
	}
}

// TestHistogramConcurrent checks concurrent observation totals.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Histogram("h").Observe(int64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Histogram("h").Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
}

// TestSnapshotJSON checks the JSON export round-trips and names every
// metric kind.
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.queries").Add(3)
	r.Gauge("inflight").Set(1)
	r.Histogram("engine.query_ns").Observe(1500)
	data, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v\n%s", err, data)
	}
	if back.Counters["engine.queries"] != 3 {
		t.Fatalf("counter lost in round-trip: %+v", back.Counters)
	}
	if back.Histograms["engine.query_ns"].Count != 1 {
		t.Fatalf("histogram lost in round-trip: %+v", back.Histograms)
	}
	if !strings.Contains(r.Snapshot().String(), "engine.queries") {
		t.Fatal("String rendering must name the metrics")
	}
}

// TestTraceSpans checks span nesting, offsets and the JSON schema.
func TestTraceSpans(t *testing.T) {
	tr := NewTrace("query")
	parse := tr.StartSpan(nil, "parse")
	time.Sleep(time.Millisecond)
	parse.End()
	pat := tr.StartSpan(nil, "pattern[0]")
	exec := tr.StartSpan(pat, "execute")
	exec.End()
	pat.End()
	tr.End()

	if len(tr.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(tr.Root.Children))
	}
	if parse.Duration < time.Millisecond {
		t.Fatalf("parse span duration %v too short", parse.Duration)
	}
	if pat.Children[0] != exec {
		t.Fatal("execute span must nest under its pattern span")
	}
	if exec.Start < parse.Start {
		t.Fatal("span offsets must be monotone in start order")
	}
	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var root Span
	if err := json.Unmarshal(data, &root); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v\n%s", err, data)
	}
	if root.Name != "query" || len(root.Children) != 2 {
		t.Fatalf("decoded trace shape wrong: %+v", root)
	}
	if !strings.Contains(tr.String(), "pattern[0]") {
		t.Fatal("trace rendering must name the spans")
	}
}
