package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestQueryLogGoldenJSONL pins the JSONL export schema: field names and
// which fields stay present (counters) versus omitted when empty (plans,
// error, trace). Monitoring consumers parse these names.
func TestQueryLogGoldenJSONL(t *testing.T) {
	l := NewQueryLog(8, 100*time.Millisecond)
	l.Record(QueryRecord{
		TimeUnixNS:  1000,
		Fingerprint: "deadbeef00000000",
		Query:       `doc("bib.xml")//book/title`,
		Plans:       []string{"scan(vt)"},
		CacheHits:   1,
		RowsOut:     2,
		DurationNS:  500,
	})
	l.Record(QueryRecord{
		TimeUnixNS:  2000,
		Fingerprint: "feedface00000000",
		Query:       "bad query",
		CacheMisses: 1,
		DurationNS:  int64(200 * time.Millisecond),
		Error:       "parse error",
		Trace:       json.RawMessage(`{"name":"query"}`),
	})
	var sb strings.Builder
	if err := l.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{"seq":1,"time_unix_ns":1000,"fingerprint":"deadbeef00000000","query":"doc(\"bib.xml\")//book/title","plans":["scan(vt)"],"cache_hits":1,"cache_misses":0,"degraded":0,"rows_out":2,"duration_ns":500}
{"seq":2,"time_unix_ns":2000,"fingerprint":"feedface00000000","query":"bad query","cache_hits":0,"cache_misses":1,"degraded":0,"rows_out":0,"duration_ns":200000000,"error":"parse error","slow":true,"trace":{"name":"query"}}
`
	if got := sb.String(); got != want {
		t.Fatalf("JSONL schema drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestQueryLogRingAndViews exercises the bounded ring and the monitoring
// views: recency order, eviction of the oldest, slow filtering, the error
// tail and top-K by latency.
func TestQueryLogRingAndViews(t *testing.T) {
	l := NewQueryLog(4, 50)
	for i := 1; i <= 10; i++ {
		rec := QueryRecord{TimeUnixNS: int64(i), DurationNS: int64(i * 10)}
		if i%3 == 0 {
			rec.Error = "boom"
		}
		l.Record(rec)
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", l.Len())
	}
	recent := l.Recent(0)
	if len(recent) != 4 || recent[0].Seq != 10 || recent[3].Seq != 7 {
		t.Fatalf("Recent must be newest-first over the retained window: %+v", recent)
	}
	if two := l.Recent(2); len(two) != 2 || two[0].Seq != 10 {
		t.Fatalf("Recent(2) wrong: %+v", two)
	}
	slow := l.Slow(0)
	if len(slow) != 4 { // durations 70..100 all ≥ threshold 50
		t.Fatalf("Slow view must mark threshold-crossers: %+v", slow)
	}
	errs := l.Errors(0)
	if len(errs) != 1 || errs[0].Seq != 9 {
		t.Fatalf("error tail must keep only failed queries, newest first: %+v", errs)
	}
	top := l.TopK(2)
	if len(top) != 2 || top[0].DurationNS != 100 || top[1].DurationNS != 90 {
		t.Fatalf("TopK must order by latency descending: %+v", top)
	}

	// A nil log is inert at every call site.
	var nilLog *QueryLog
	nilLog.Record(QueryRecord{})
	if nilLog.Len() != 0 || nilLog.Recent(1) != nil || nilLog.IsSlow(time.Hour) {
		t.Fatal("nil QueryLog must be a no-op")
	}
}

// TestQueryLogViewsUnderConcurrentWriters asserts the monitoring views'
// contracts while writers are racing: every view stays within its bound,
// Recent/Slow/Errors stay strictly newest-first (sequence descending),
// filters admit only matching records, and TopK stays duration-descending.
// Run under -race this pins both safety and ordering.
func TestQueryLogViewsUnderConcurrentWriters(t *testing.T) {
	const slowNS = 500
	l := NewQueryLog(32, slowNS)
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := QueryRecord{DurationNS: int64((w*7 + i) % 1000)}
				if i%5 == 0 {
					rec.Error = "boom"
				}
				l.Record(rec)
			}
		}(w)
	}

	newestFirst := func(view string, recs []QueryRecord) {
		for i := 1; i < len(recs); i++ {
			if recs[i].Seq >= recs[i-1].Seq {
				t.Errorf("%s not newest-first: seq %d then %d", view, recs[i-1].Seq, recs[i].Seq)
			}
		}
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 300; i++ {
				if recs := l.Recent(8); len(recs) > 8 {
					t.Errorf("Recent(8) returned %d records", len(recs))
				} else {
					newestFirst("Recent", recs)
				}
				slow := l.Slow(8)
				if len(slow) > 8 {
					t.Errorf("Slow(8) returned %d records", len(slow))
				}
				newestFirst("Slow", slow)
				for _, rec := range slow {
					if !rec.Slow || rec.DurationNS < slowNS {
						t.Errorf("Slow admitted fast record: %+v", rec)
					}
				}
				errs := l.Errors(8)
				if len(errs) > 8 {
					t.Errorf("Errors(8) returned %d records", len(errs))
				}
				newestFirst("Errors", errs)
				for _, rec := range errs {
					if rec.Error == "" {
						t.Errorf("Errors admitted clean record: %+v", rec)
					}
				}
				top := l.TopK(8)
				if len(top) > 8 {
					t.Errorf("TopK(8) returned %d records", len(top))
				}
				for j := 1; j < len(top); j++ {
					if top[j].DurationNS > top[j-1].DurationNS {
						t.Errorf("TopK not duration-descending: %d then %d",
							top[j-1].DurationNS, top[j].DurationNS)
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	if l.Len() != 32 {
		t.Fatalf("Len = %d, want capacity 32", l.Len())
	}
}

// TestQueryLogConcurrent hammers the log from many goroutines while
// readers drain every view; run under -race this is the safety proof.
func TestQueryLogConcurrent(t *testing.T) {
	l := NewQueryLog(64, 10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Record(QueryRecord{DurationNS: int64(w*1000 + i)})
				if i%16 == 0 {
					l.Recent(8)
					l.TopK(4)
					l.Errors(4)
					l.Slow(4)
					var sb strings.Builder
					if err := l.WriteJSONL(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 64 {
		t.Fatalf("Len = %d, want 64", l.Len())
	}
}
