package xquery

import (
	"fmt"
	"strings"

	"xamdb/internal/xam"
)

// Parse parses a query of the Q subset. Examples:
//
//	doc("bib.xml")//book[year = "1999"]/title
//	for $x in doc("bib.xml")//book where $x/year = "1999" return $x/author
//	for $x in doc("x.xml")//item return <res>{$x/name/text(), $x//keyword}</res>
func Parse(src string) (Expr, error) {
	p := &qparser{src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("xquery: parse: %w", err)
	}
	p.ws()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("xquery: parse: trailing input at offset %d", p.pos)
	}
	return e, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type qparser struct {
	src string
	pos int
}

func (p *qparser) errorf(format string, args ...any) error {
	return fmt.Errorf("offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *qparser) ws() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *qparser) has(s string) bool {
	p.ws()
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *qparser) eat(s string) bool {
	if p.has(s) {
		p.pos += len(s)
		return true
	}
	return false
}

// keyword matches an identifier-delimited keyword.
func (p *qparser) keyword(kw string) bool {
	p.ws()
	if !strings.HasPrefix(p.src[p.pos:], kw) {
		return false
	}
	end := p.pos + len(kw)
	if end < len(p.src) && identByte(p.src[end], false) {
		return false
	}
	p.pos = end
	return true
}

func identByte(b byte, first bool) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_':
		return true
	case !first && (b >= '0' && b <= '9' || b == '-' || b == '.'):
		return true
	}
	return false
}

func (p *qparser) ident() string {
	p.ws()
	start := p.pos
	if p.pos >= len(p.src) || !identByte(p.src[p.pos], true) {
		return ""
	}
	p.pos++
	for p.pos < len(p.src) && identByte(p.src[p.pos], false) {
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *qparser) stringLit() (string, error) {
	p.ws()
	if p.pos >= len(p.src) || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", p.errorf("expected string literal")
	}
	quote := p.src[p.pos]
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != quote {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", p.errorf("unterminated string literal")
	}
	s := p.src[start:p.pos]
	p.pos++
	return s, nil
}

// scalarLit accepts a string literal or a bare number.
func (p *qparser) scalarLit() (string, error) {
	p.ws()
	if p.pos < len(p.src) && (p.src[p.pos] == '"' || p.src[p.pos] == '\'') {
		return p.stringLit()
	}
	start := p.pos
	for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.' || p.src[p.pos] == '-') {
		p.pos++
	}
	if p.pos == start {
		return "", p.errorf("expected literal")
	}
	return p.src[start:p.pos], nil
}

// parseExpr parses a sequence of top-level expressions.
func (p *qparser) parseExpr() (Expr, error) {
	var items []Expr
	for {
		e, err := p.parseSingle()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
		if !p.eat(",") {
			break
		}
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return &Sequence{Items: items}, nil
}

func (p *qparser) parseSingle() (Expr, error) {
	p.ws()
	switch {
	case p.keyword("for"):
		return p.parseFLWR()
	case p.has("<"):
		return p.parseCtor()
	case p.has("doc("), p.has("document("), p.has("$"):
		return p.parsePath()
	}
	return nil, p.errorf("expected expression")
}

func (p *qparser) parseFLWR() (Expr, error) {
	f := &FLWR{}
	for {
		p.ws()
		if !p.eat("$") {
			return nil, p.errorf("expected variable after 'for'")
		}
		name := p.ident()
		if name == "" {
			return nil, p.errorf("expected variable name")
		}
		if !p.keyword("in") {
			return nil, p.errorf("expected 'in'")
		}
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		f.Bindings = append(f.Bindings, Binding{Var: name, Path: path})
		if !p.eat(",") {
			break
		}
	}
	if p.keyword("where") {
		for {
			c, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			f.Where = append(f.Where, c)
			if !p.keyword("and") {
				break
			}
		}
	}
	if !p.keyword("return") {
		return nil, p.errorf("expected 'return'")
	}
	ret, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	f.Return = ret
	return f, nil
}

func (p *qparser) parseCond() (Cond, error) {
	left, err := p.parsePath()
	if err != nil {
		return Cond{}, err
	}
	op := p.cmpOp()
	if op == "" {
		return Cond{}, p.errorf("expected comparison operator")
	}
	p.ws()
	if p.has("$") || p.has("doc(") {
		right, err := p.parsePath()
		if err != nil {
			return Cond{}, err
		}
		return Cond{Left: left, Op: op, Right: right}, nil
	}
	c, err := p.scalarLit()
	if err != nil {
		return Cond{}, err
	}
	return Cond{Left: left, Op: op, Const: c}, nil
}

func (p *qparser) cmpOp() string {
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if p.eat(op) {
			return op
		}
	}
	return ""
}

// parseCtor parses <tag>{e1, e2}</tag> with nested constructors allowed both
// inside braces and directly in element content.
func (p *qparser) parseCtor() (Expr, error) {
	if !p.eat("<") {
		return nil, p.errorf("expected '<'")
	}
	tag := p.ident()
	if tag == "" {
		return nil, p.errorf("expected constructor tag")
	}
	if !p.eat(">") {
		return nil, p.errorf("expected '>' after tag %s", tag)
	}
	c := &ElementCtor{Tag: tag}
	for {
		p.ws()
		switch {
		case p.has("</"):
			p.eat("</")
			end := p.ident()
			if end != tag {
				return nil, p.errorf("mismatched constructor </%s> for <%s>", end, tag)
			}
			if !p.eat(">") {
				return nil, p.errorf("expected '>' in closing tag")
			}
			return c, nil
		case p.eat("{"):
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if !p.eat("}") {
				return nil, p.errorf("expected '}'")
			}
			if seq, ok := e.(*Sequence); ok {
				c.Content = append(c.Content, seq.Items...)
			} else {
				c.Content = append(c.Content, e)
			}
		case p.has("<"):
			inner, err := p.parseCtor()
			if err != nil {
				return nil, err
			}
			c.Content = append(c.Content, inner)
		case p.eat(","):
			// separators between content items
		default:
			return nil, p.errorf("unexpected content in <%s>", tag)
		}
	}
}

func (p *qparser) parsePath() (*PathExpr, error) {
	p.ws()
	path := &PathExpr{}
	switch {
	case p.eat("$"):
		name := p.ident()
		if name == "" {
			return nil, p.errorf("expected variable name")
		}
		path.Var = name
	case p.eat("doc("), p.eat("document("):
		doc, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		if !p.eat(")") {
			return nil, p.errorf("expected ')' after document name")
		}
		path.Doc = doc
	default:
		return nil, p.errorf("expected '$var' or 'doc(...)'")
	}
	for {
		var axis xam.Axis
		switch {
		case p.eat("//"):
			axis = xam.Descendant
		case p.eat("/"):
			axis = xam.Child
		default:
			return path, nil
		}
		p.ws()
		if p.keywordAt("text()") {
			path.Text = true
			return path, nil
		}
		step := Step{Axis: axis}
		switch {
		case p.eat("@"):
			name := p.ident()
			if name == "" {
				return nil, p.errorf("expected attribute name")
			}
			step.Label = "@" + name
		case p.eat("*"):
			step.Label = "*"
		default:
			name := p.ident()
			if name == "" {
				return nil, p.errorf("expected step name")
			}
			step.Label = name
		}
		for p.eat("[") {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			step.Preds = append(step.Preds, pred)
			if !p.eat("]") {
				return nil, p.errorf("expected ']'")
			}
		}
		path.Steps = append(path.Steps, step)
	}
}

func (p *qparser) keywordAt(lit string) bool {
	p.ws()
	if strings.HasPrefix(p.src[p.pos:], lit) {
		p.pos += len(lit)
		return true
	}
	return false
}

// parsePred parses a step qualifier: relpath, relpath θ c, or text() θ c.
func (p *qparser) parsePred() (Pred, error) {
	p.ws()
	rel := &PathExpr{}
	if p.keywordAt("text()") {
		rel.Text = true
	} else {
		for {
			step := Step{Axis: xam.Child}
			if len(rel.Steps) == 0 && p.eat("//") {
				step.Axis = xam.Descendant
			} else if len(rel.Steps) > 0 {
				if p.eat("//") {
					step.Axis = xam.Descendant
				} else if !p.eat("/") {
					break
				}
			}
			p.ws()
			if p.keywordAt("text()") {
				rel.Text = true
				break
			}
			switch {
			case p.eat("@"):
				name := p.ident()
				if name == "" {
					return Pred{}, p.errorf("expected attribute name")
				}
				step.Label = "@" + name
			case p.eat("*"):
				step.Label = "*"
			default:
				name := p.ident()
				if name == "" {
					return Pred{}, p.errorf("expected qualifier step")
				}
				step.Label = name
			}
			rel.Steps = append(rel.Steps, step)
		}
		if len(rel.Steps) == 0 && !rel.Text {
			return Pred{}, p.errorf("empty qualifier")
		}
	}
	op := p.cmpOp()
	if op == "" {
		return Pred{Path: rel}, nil
	}
	c, err := p.scalarLit()
	if err != nil {
		return Pred{}, err
	}
	return Pred{Path: rel, Op: op, Const: c}, nil
}
