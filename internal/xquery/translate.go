package xquery

import (
	"fmt"
	"strings"

	"xamdb/internal/xam"
)

// Algebraic renders the §3.3 translation of a query as a textual algebraic
// expression in the style of the thesis's full(q)/alg(q): tag-derived
// relation scans combined by structural joins (with the j/o/s/nj/no
// semantics the XAM edges carry), selections for value predicates, cartesian
// products between variable groups, value-join selections, and the xml_templ
// construction operator on top. This is the form Figure 3.2/3.3's rules
// produce before pattern isolation; Extract is the isolation step.
func Algebraic(q Expr) (string, error) {
	ex, err := Extract(q)
	if err != nil {
		return "", err
	}
	var groups []string
	for _, p := range ex.Patterns {
		groups = append(groups, renderPattern(p))
	}
	expr := strings.Join(groups, " × ")
	for _, j := range ex.Joins {
		expr = fmt.Sprintf("σ[%s %s %s](%s)", j.LeftAttr, j.Op, j.RightAttr, expr)
	}
	for _, c := range ex.Compensations {
		expr = fmt.Sprintf("σ[%s.ID≠⊥ ∨ %s=⊥](%s)", c.Dep.Name, c.Out.Name, expr)
	}
	return fmt.Sprintf("xml_templ[%s](%s)", ex.Template, expr), nil
}

// renderPattern renders one query pattern as the bottom-up structural join
// tree of Definition 2.2.4.
func renderPattern(p *xam.Pattern) string {
	var renderNode func(e *xam.Edge) string
	renderNode = func(e *xam.Edge) string {
		n := e.Child
		base := "e_" + baseName(n)
		if n.HasValuePred {
			base = fmt.Sprintf("σ[%s](%s)", strings.Join(n.PredSrc, "∧"), base)
		}
		expr := base
		for _, ce := range n.Edges {
			expr = fmt.Sprintf("(%s %s %s)", expr, joinGlyph(ce), renderNode(ce))
		}
		return expr
	}
	parts := make([]string, len(p.Top))
	for i, e := range p.Top {
		parts[i] = renderNode(e)
	}
	return strings.Join(parts, " × ")
}

func baseName(n *xam.Node) string {
	switch n.Label {
	case "*":
		return "★"
	case "@*":
		return "@★"
	}
	return n.Label
}

// joinGlyph renders the structural join operator for an edge: axis (≺ for
// parent-child, ≺≺ for ancestor-descendant) with the semantics superscript.
func joinGlyph(e *xam.Edge) string {
	axis := "≺"
	if e.Axis == xam.Descendant {
		axis = "≺≺"
	}
	switch e.Sem {
	case xam.SemJoin:
		return "⋈" + axis
	case xam.SemOuter:
		return "⟕" + axis
	case xam.SemSemi:
		return "⋉" + axis
	case xam.SemNest:
		return "⋈ⁿ" + axis
	case xam.SemNestOuter:
		return "⟕ⁿ" + axis
	}
	return "⋈" + axis
}
