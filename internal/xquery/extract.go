package xquery

import (
	"fmt"
	"strings"

	"xamdb/internal/algebra"
	"xamdb/internal/value"
	"xamdb/internal/xam"
)

// Extraction is the result of translating a Q query into XAM patterns
// (§3.3): one maximal tree pattern per group of structurally related
// variables — patterns span nested for-where-return blocks — plus the
// value joins connecting groups, the tagging template that rebuilds the
// query result, and the null-dependency compensations that tree patterns
// cannot express (§3.1's d→e dependency).
type Extraction struct {
	// Patterns are the maximal query tree patterns, in the order their
	// groups first appear in the query.
	Patterns []*xam.Pattern
	// VarNodes maps each for-variable to its pattern node.
	VarNodes map[string]*xam.Node
	// DocNames holds, per pattern, the document its group navigates.
	DocNames []string
	// Joins are cross-pattern value-join conditions from the where clauses.
	Joins []ValueJoin
	// Compensations are σ conditions of the form
	// (dep.ID ≠ ⊥) ∨ (dep.ID = ⊥ ∧ out.attr = ⊥) — the returned node out
	// must be nulled when its enclosing inner block produced no bindings.
	Compensations []Compensation
	// Template rebuilds the query result from the joined pattern tuples.
	Template *algebra.Template
}

// ValueJoin is a where-condition connecting two patterns.
type ValueJoin struct {
	LeftAttr  string // attribute name in the combined schema, e.g. "e3.Val"
	Op        string
	RightAttr string
}

// Compensation ties a returned node to an enclosing inner-block variable of
// the same pattern: if Dep has no binding (⊥), Out's data must not be
// emitted.
type Compensation struct {
	Dep *xam.Node // the inner for-variable node
	Out *xam.Node // the returned node that lexically sits inside Dep's block
}

// group is a pattern under construction.
type group struct {
	pattern *xam.Pattern
	doc     string // document the group's absolute path navigates
}

type extractor struct {
	groups   []*group
	varGroup map[string]*group
	varNode  map[string]*xam.Node
	joins    []ValueJoin
	comps    []Compensation
	nameSeq  int
}

// Extract runs the pattern extraction algorithm on a parsed query.
func Extract(q Expr) (*Extraction, error) {
	ex := &extractor{
		varGroup: map[string]*group{},
		varNode:  map[string]*xam.Node{},
	}
	templ, err := ex.walk(q, nil)
	if err != nil {
		return nil, err
	}
	out := &Extraction{
		VarNodes:      ex.varNode,
		Joins:         ex.joins,
		Compensations: ex.comps,
		Template:      templ,
	}
	for _, g := range ex.groups {
		g.pattern.AssignNames()
		out.Patterns = append(out.Patterns, g.pattern)
		out.DocNames = append(out.DocNames, g.doc)
	}
	return out, nil
}

func (ex *extractor) fresh(label string) *xam.Node {
	ex.nameSeq++
	return &xam.Node{Name: fmt.Sprintf("n%d", ex.nameSeq), Label: label}
}

// attach builds the chain of pattern nodes for a path's steps below an
// anchor node (nil anchor = the ⊤ of a new group's pattern) and returns the
// final node. The first edge uses sem; deeper edges use deep.
func (ex *extractor) attach(g *group, anchor *xam.Node, steps []Step, sem, deep xam.EdgeSem) (*xam.Node, error) {
	cur := anchor
	for i, st := range steps {
		n := ex.fresh(st.Label)
		edgeSem := deep
		if i == 0 {
			edgeSem = sem
		}
		e := &xam.Edge{Axis: st.Axis, Sem: edgeSem, Child: n}
		if cur == nil {
			g.pattern.Top = append(g.pattern.Top, e)
		} else {
			n.Parent = cur
			cur.Edges = append(cur.Edges, e)
		}
		// Step qualifiers become existential semijoin branches.
		for _, pred := range st.Preds {
			if err := ex.attachPred(g, n, pred); err != nil {
				return nil, err
			}
		}
		cur = n
	}
	return cur, nil
}

// attachPred adds a [qualifier] as a semijoin subtree (or a value predicate
// when the qualifier is text() θ c on the step itself).
func (ex *extractor) attachPred(g *group, node *xam.Node, pred Pred) error {
	if len(pred.Path.Steps) == 0 && pred.Path.Text {
		// [text() = c] decorates the node itself.
		return addValuePred(node, pred.Op, pred.Const)
	}
	last, err := ex.attach(g, node, pred.Path.Steps, xam.SemSemi, xam.SemJoin)
	if err != nil {
		return err
	}
	if pred.Op != "" {
		return addValuePred(last, pred.Op, pred.Const)
	}
	return nil
}

func addValuePred(n *xam.Node, op, c string) error {
	if op == "" {
		return nil
	}
	f, err := value.FromComparison(op, value.Str(c))
	if err != nil {
		return err
	}
	if n.HasValuePred {
		n.ValuePred = n.ValuePred.And(f)
	} else {
		n.ValuePred = f
		n.HasValuePred = true
	}
	q := c
	n.PredSrc = append(n.PredSrc, "val"+op+`"`+q+`"`)
	return nil
}

// resolve finds the group and anchor node for a path: absolute paths open a
// new group; variable paths attach to the variable's node and group.
func (ex *extractor) resolve(p *PathExpr) (*group, *xam.Node, error) {
	if p.Var != "" {
		g, ok := ex.varGroup[p.Var]
		if !ok {
			return nil, nil, fmt.Errorf("xquery: unbound variable $%s", p.Var)
		}
		return g, ex.varNode[p.Var], nil
	}
	g := &group{pattern: &xam.Pattern{}, doc: p.Doc}
	ex.groups = append(ex.groups, g)
	return g, nil, nil
}

// enclosing tracks, during the walk, the chain of for-variables lexically
// enclosing the current position (innermost last).
type scopeVar struct {
	name string
	node *xam.Node
	g    *group
}

// walk translates the expression, building patterns and returning the
// tagging template for the expression's output.
func (ex *extractor) walk(e Expr, scope []scopeVar) (*algebra.Template, error) {
	switch q := e.(type) {
	case *Sequence:
		t := &algebra.Template{Kind: algebra.TElem, Tag: ""}
		for _, item := range q.Items {
			sub, err := ex.walk(item, scope)
			if err != nil {
				return nil, err
			}
			t.Children = append(t.Children, sub)
		}
		return t, nil

	case *ElementCtor:
		t := algebra.Elem(q.Tag)
		for _, item := range q.Content {
			sub, err := ex.walk(item, scope)
			if err != nil {
				return nil, err
			}
			t.Children = append(t.Children, sub)
		}
		return t, nil

	case *PathExpr:
		return ex.walkReturnedPath(q, scope)

	case *FLWR:
		return ex.walkFLWR(q, scope)
	}
	return nil, fmt.Errorf("xquery: unsupported expression %T", e)
}

// walkReturnedPath handles a path expression in output position: its data
// is stored (Val for text(), Cont otherwise) under nest-outerjoin edges so
// constructors emit output even for empty results.
func (ex *extractor) walkReturnedPath(p *PathExpr, scope []scopeVar) (*algebra.Template, error) {
	g, anchor, err := ex.resolve(p)
	if err != nil {
		return nil, err
	}
	if len(p.Steps) == 0 {
		// Returning the variable itself: store its content.
		if anchor == nil {
			return nil, fmt.Errorf("xquery: returning a whole document is unsupported")
		}
		if p.Text {
			anchor.StoreVal = true
			ex.addComps(anchor, g, scope)
			return algebra.Field(anchor.Name + ".Val"), nil
		}
		anchor.StoreCont = true
		ex.addComps(anchor, g, scope)
		return algebra.RawField(anchor.Name + ".Cont"), nil
	}
	if anchor == nil && len(scope) == 0 {
		// A standalone path query: one output node per match, nothing to
		// group or keep on empty — the extracted pattern is conjunctive and
		// flat, the most rewritable form.
		last, err := ex.attach(g, anchor, p.Steps, xam.SemJoin, xam.SemJoin)
		if err != nil {
			return nil, err
		}
		if p.Text {
			last.StoreVal = true
			return algebra.Field(last.Name + ".Val"), nil
		}
		last.StoreCont = true
		return algebra.RawField(last.Name + ".Cont"), nil
	}
	// Inside a constructor or block: the first edge is a nest outerjoin
	// (grouped, optional); deeper edges stay optional.
	last, err := ex.attach(g, anchor, p.Steps, xam.SemNestOuter, xam.SemOuter)
	if err != nil {
		return nil, err
	}
	attr := ".Cont"
	if p.Text {
		last.StoreVal = true
		attr = ".Val"
	} else {
		last.StoreCont = true
	}
	ex.addComps(last, g, scope)

	field := algebra.Field(last.Name + attr)
	if attr == ".Cont" {
		field = algebra.RawField(last.Name + attr)
	}
	// Wrap in ForEach over the nested collection introduced by the first
	// step's nest-outer edge.
	first := topOf(last, anchor)
	return algebra.ForEach(first.Name, nestedFieldTemplate(first, last, field)), nil
}

// topOf walks up from last to the child of anchor (the node owning the
// nested collection attribute).
func topOf(last, anchor *xam.Node) *xam.Node {
	cur := last
	for cur.Parent != anchor && cur.Parent != nil {
		cur = cur.Parent
	}
	return cur
}

// nestedFieldTemplate descends from the collection root to the stored node;
// intermediate optional edges contribute flat (outerjoined) attributes, so
// the field path is direct.
func nestedFieldTemplate(first, last *xam.Node, field *algebra.Template) *algebra.Template {
	return field
}

// addComps records compensations: the returned node depends on every
// enclosing block variable of the same group that is not on its own anchor
// chain (§3.1: no e should appear if its b ancestor has no d descendants).
func (ex *extractor) addComps(out *xam.Node, g *group, scope []scopeVar) {
	for _, sv := range scope {
		if sv.g != g {
			continue
		}
		// Skip variables that are ancestors of out in the pattern: their
		// presence is already implied structurally.
		if isAncestor(sv.node, out) {
			continue
		}
		ex.comps = append(ex.comps, Compensation{Dep: sv.node, Out: out})
	}
}

func isAncestor(a, n *xam.Node) bool {
	for cur := n; cur != nil; cur = cur.Parent {
		if cur == a {
			return true
		}
	}
	return false
}

// walkFLWR translates a for-where-return block.
func (ex *extractor) walkFLWR(f *FLWR, scope []scopeVar) (*algebra.Template, error) {
	newScope := append([]scopeVar{}, scope...)
	collRoots := make([]*xam.Node, len(f.Bindings)) // non-nil for anchored bindings
	for i, b := range f.Bindings {
		g, anchor, err := ex.resolve(b.Path)
		if err != nil {
			return nil, err
		}
		sem := xam.SemJoin
		if anchor != nil {
			// A nested block's variable hangs off its anchor with nest
			// outerjoin semantics: the outer constructor emits output even
			// when the inner block is empty, and inner bindings group under
			// the outer one (the full(xq3) translation of §3.3.2).
			sem = xam.SemNestOuter
		}
		n, err := ex.attach(g, anchor, b.Path.Steps, sem, xam.SemJoin)
		if err != nil {
			return nil, err
		}
		if n == nil || n == anchor {
			return nil, fmt.Errorf("xquery: for-variable $%s binds an empty path", b.Var)
		}
		// Variables carry IDs: they anchor grouping, joins and rewriting.
		n.IDSpec = xam.StructID
		ex.varGroup[b.Var] = g
		ex.varNode[b.Var] = n
		if anchor != nil {
			collRoots[i] = topOf(n, anchor)
		}
		newScope = append(newScope, scopeVar{name: b.Var, node: n, g: g})
	}
	for _, c := range f.Where {
		if err := ex.walkCond(c); err != nil {
			return nil, err
		}
	}
	inner, err := ex.walk(f.Return, newScope)
	if err != nil {
		return nil, err
	}
	// One output per binding combination of this block's variables: iterate
	// the nested collections of variables anchored inside other variables.
	out := inner
	for i := len(f.Bindings) - 1; i >= 0; i-- {
		if collRoots[i] != nil {
			out = algebra.ForEach(collRoots[i].Name, out)
		}
	}
	return out, nil
}

// walkCond translates a where conjunct: constant comparisons decorate a
// semijoin branch of the owning pattern; variable-to-variable comparisons
// become value joins (possibly across groups).
func (ex *extractor) walkCond(c Cond) error {
	if c.Right == nil {
		g, anchor, err := ex.resolve(c.Left)
		if err != nil {
			return err
		}
		if len(c.Left.Steps) == 0 {
			if anchor == nil {
				return fmt.Errorf("xquery: condition on whole document")
			}
			return addValuePred(anchor, c.Op, c.Const)
		}
		last, err := ex.attach(g, anchor, c.Left.Steps, xam.SemSemi, xam.SemJoin)
		if err != nil {
			return err
		}
		return addValuePred(last, c.Op, c.Const)
	}
	// Path θ path: both sides store their values over mandatory edges.
	la, err := ex.condAttr(c.Left)
	if err != nil {
		return err
	}
	ra, err := ex.condAttr(c.Right)
	if err != nil {
		return err
	}
	ex.joins = append(ex.joins, ValueJoin{LeftAttr: la, Op: c.Op, RightAttr: ra})
	return nil
}

func (ex *extractor) condAttr(p *PathExpr) (string, error) {
	g, anchor, err := ex.resolve(p)
	if err != nil {
		return "", err
	}
	n := anchor
	if len(p.Steps) > 0 {
		n, err = ex.attach(g, anchor, p.Steps, xam.SemJoin, xam.SemJoin)
		if err != nil {
			return "", err
		}
	}
	if n == nil {
		return "", fmt.Errorf("xquery: join condition on whole document")
	}
	n.StoreVal = true
	return n.Name + ".Val", nil
}

// Describe renders the extraction for explain output: patterns, cross-group
// joins, null-dependency compensations, and the tagging template.
func (ex *Extraction) Describe() string {
	var sb strings.Builder
	for i, p := range ex.Patterns {
		fmt.Fprintf(&sb, "pattern %d", i+1)
		if ex.DocNames[i] != "" {
			fmt.Fprintf(&sb, " over %s", ex.DocNames[i])
		}
		fmt.Fprintf(&sb, ": %s\n", p)
	}
	for _, j := range ex.Joins {
		fmt.Fprintf(&sb, "value join: %s %s %s\n", j.LeftAttr, j.Op, j.RightAttr)
	}
	for _, c := range ex.Compensations {
		fmt.Fprintf(&sb, "compensation: null %s output when %s is ⊥ (σ %s.ID≠⊥ ∨ …)\n",
			c.Out.Name, c.Dep.Name, c.Dep.Name)
	}
	fmt.Fprintf(&sb, "template: %s\n", ex.Template)
	return sb.String()
}
