package xquery

import (
	"fmt"

	"xamdb/internal/algebra"
	"xamdb/internal/xmltree"
)

// Evaluate executes a Q query directly over a document: patterns are
// extracted (§3.3), evaluated with the XAM algebraic semantics, combined by
// cartesian products and value joins, and the tagging template rebuilds the
// XML result. This is the reference evaluator that view-based rewritings are
// checked against.
func Evaluate(q Expr, doc *xmltree.Document) ([]*xmltree.Node, error) {
	ex, err := Extract(q)
	if err != nil {
		return nil, err
	}
	rel, err := ex.Combine(doc)
	if err != nil {
		return nil, err
	}
	return algebra.XMLize(rel, ex.Template)
}

// EvaluateString is Evaluate on query text, serializing the result.
func EvaluateString(src string, doc *xmltree.Document) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	nodes, err := Evaluate(q, doc)
	if err != nil {
		return "", err
	}
	return algebra.SerializeNodes(nodes), nil
}

// Combine evaluates every extracted pattern over the document and combines
// the group relations: cartesian product across groups, then the
// cross-pattern value joins as selections.
func (ex *Extraction) Combine(doc *xmltree.Document) (*algebra.Relation, error) {
	if len(ex.Patterns) == 0 {
		return nil, fmt.Errorf("xquery: no patterns extracted")
	}
	var combined *algebra.Relation
	for _, p := range ex.Patterns {
		r, err := p.Eval(doc)
		if err != nil {
			return nil, err
		}
		if combined == nil {
			combined = r
		} else {
			combined = algebra.Product(combined, r)
		}
	}
	for _, j := range ex.Joins {
		var err error
		combined, err = filterJoin(combined, j)
		if err != nil {
			return nil, err
		}
	}
	return combined, nil
}

// filterJoin applies a value-join condition over two top-level attributes.
func filterJoin(r *algebra.Relation, j ValueJoin) (*algebra.Relation, error) {
	li := r.Schema.Index(j.LeftAttr)
	ri := r.Schema.Index(j.RightAttr)
	if li < 0 || ri < 0 {
		return nil, fmt.Errorf("xquery: join attribute %q/%q not at top level", j.LeftAttr, j.RightAttr)
	}
	var op algebra.Cmp
	switch j.Op {
	case "=":
		op = algebra.Eq
	case "!=":
		op = algebra.Ne
	case "<":
		op = algebra.Lt
	case "<=":
		op = algebra.Le
	case ">":
		op = algebra.Gt
	case ">=":
		op = algebra.Ge
	default:
		return nil, fmt.Errorf("xquery: unsupported join comparator %q", j.Op)
	}
	out := algebra.NewRelation(r.Schema)
	for _, t := range r.Tuples {
		if op.Apply(t[li], t[ri]) {
			out.Add(t)
		}
	}
	return out, nil
}
