package xquery

import (
	"strings"
	"testing"

	"xamdb/internal/value"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
)

const bibXML = `<bib>
  <book year="1999">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Suciu</author>
  </book>
  <book>
    <title>The Syntactic Web</title>
    <author>Tom Lerners-Bee</author>
  </book>
</bib>`

func bib(t *testing.T) *xmltree.Document {
	t.Helper()
	return xmltree.MustParse("bib.xml", bibXML)
}

func TestParsePathQuery(t *testing.T) {
	e := MustParse(`doc("bib.xml")//book[year = "1999"]/title`)
	p, ok := e.(*PathExpr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if p.Doc != "bib.xml" || len(p.Steps) != 2 {
		t.Fatalf("path: %s", String(p))
	}
	if len(p.Steps[0].Preds) != 1 || p.Steps[0].Preds[0].Const != "1999" {
		t.Fatalf("pred: %+v", p.Steps[0].Preds)
	}
	if p.Steps[0].Axis != xam.Descendant || p.Steps[1].Axis != xam.Child {
		t.Fatal("axes wrong")
	}
}

func TestParseFLWR(t *testing.T) {
	e := MustParse(`for $x in doc("bib.xml")//book where $x/year = "1999" return $x/author`)
	f, ok := e.(*FLWR)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if len(f.Bindings) != 1 || f.Bindings[0].Var != "x" {
		t.Fatalf("bindings: %+v", f.Bindings)
	}
	if len(f.Where) != 1 || f.Where[0].Const != "1999" {
		t.Fatalf("where: %+v", f.Where)
	}
	if _, ok := f.Return.(*PathExpr); !ok {
		t.Fatalf("return: %T", f.Return)
	}
}

func TestParseNestedConstructor(t *testing.T) {
	src := `for $x in doc("x.xml")//item return <res>{$x/name/text()}<inner>{$x//keyword}</inner></res>`
	e := MustParse(src)
	f := e.(*FLWR)
	c := f.Return.(*ElementCtor)
	if c.Tag != "res" || len(c.Content) != 2 {
		t.Fatalf("ctor: %s", String(c))
	}
	inner, ok := c.Content[1].(*ElementCtor)
	if !ok || inner.Tag != "inner" {
		t.Fatalf("inner ctor: %T", c.Content[1])
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`for $x return 1`,
		`for $x in doc("d") where return $x`,
		`doc("d")//a[`,
		`<a>{doc("d")//b}</b>`,
		`$x/a`, // unbound at parse level is fine; check extraction instead
	} {
		if src == `$x/a` {
			e, err := Parse(src)
			if err != nil {
				t.Errorf("Parse(%q) failed: %v", src, err)
				continue
			}
			if _, err := Extract(e); err == nil {
				t.Errorf("Extract(%q) should fail (unbound variable)", src)
			}
			continue
		}
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestExtractSingleGroup(t *testing.T) {
	// All navigation hangs on $x: one maximal pattern.
	e := MustParse(`for $x in doc("bib.xml")//book where $x/year = "1999" return <r>{$x/title}</r>`)
	ex, err := Extract(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Patterns) != 1 {
		t.Fatalf("patterns: %d", len(ex.Patterns))
	}
	p := ex.Patterns[0]
	if p.Size() != 3 { // book, year (semijoin, val=1999), title (nest-outer)
		t.Fatalf("pattern size %d: %s", p.Size(), p)
	}
	book := ex.VarNodes["x"]
	if book == nil || book.IDSpec == xam.NoID {
		t.Fatal("variable node must carry an ID")
	}
	var semi, nest int
	for _, n := range p.Nodes() {
		for _, edge := range n.Edges {
			switch edge.Sem {
			case xam.SemSemi:
				semi++
			case xam.SemNestOuter:
				nest++
			}
		}
	}
	if semi != 1 || nest != 1 {
		t.Fatalf("edge kinds: semi=%d nest=%d in %s", semi, nest, p)
	}
}

// TestExtractRangePredicateFormula checks that comparison predicates reach
// the extracted pattern as normalized value.Formula decorations — the form
// the rewriter's absorption check consumes. Conjunctive comparisons on the
// same path stay on separate existential branches (∃num≥10 ∧ ∃num<20 is not
// ∃num∈[10,20) when num is multi-valued), each carrying its own interval.
func TestExtractRangePredicateFormula(t *testing.T) {
	e := MustParse(`for $x in doc("items.xml")//item where $x/num >= "10" and $x/num < "20" return <r>{$x/payload}</r>`)
	ex, err := Extract(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Patterns) != 1 {
		t.Fatalf("patterns: %d", len(ex.Patterns))
	}
	var nums []*xam.Node
	for _, n := range ex.Patterns[0].Nodes() {
		if n.Label == "num" {
			nums = append(nums, n)
		}
	}
	if len(nums) != 2 {
		t.Fatalf("want one existential branch per conjunct: %s", ex.Patterns[0])
	}
	for _, want := range []value.Formula{value.Ge(value.Num(10)), value.Lt(value.Num(20))} {
		found := false
		for _, n := range nums {
			if n.HasValuePred && n.ValuePred.Equal(want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("no branch carries %s: %s", want, ex.Patterns[0])
		}
	}

	// The path-qualifier spelling of a single bound extracts the same way.
	pe := MustParse(`doc("items.xml")//item[num < "20"]/payload`)
	ex2, err := Extract(pe)
	if err != nil {
		t.Fatal(err)
	}
	var num2 *xam.Node
	for _, n := range ex2.Patterns[0].Nodes() {
		if n.Label == "num" {
			num2 = n
		}
	}
	if num2 == nil || !num2.HasValuePred || !num2.ValuePred.Equal(value.Lt(value.Num(20))) {
		t.Fatalf("path qualifier must extract as a formula: %s", ex2.Patterns[0])
	}
}

func TestExtractSpansNestedBlocks(t *testing.T) {
	// The Chapter 3 headline: the inner for over $y attaches to $x's
	// pattern — a single pattern spans both blocks.
	src := `for $x in doc("x.xml")//item return <res>{$x/name/text(),
		for $y in $x//description return <d>{$y//listitem}</d>}</res>`
	ex, err := Extract(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Patterns) != 1 {
		t.Fatalf("want one maximal pattern, got %d", len(ex.Patterns))
	}
	if ex.VarNodes["y"] == nil || ex.VarNodes["y"].Parent == nil {
		t.Fatal("inner variable must hang inside the outer pattern")
	}
}

func TestExtractSeparateGroupsAndJoin(t *testing.T) {
	src := `for $x in doc("a.xml")//a, $y in doc("b.xml")//b where $x/k = $y/k return <r>{$x/k}</r>`
	ex, err := Extract(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Patterns) != 2 {
		t.Fatalf("want two groups, got %d", len(ex.Patterns))
	}
	if len(ex.Joins) != 1 || ex.Joins[0].Op != "=" {
		t.Fatalf("joins: %+v", ex.Joins)
	}
}

func TestExtractCompensation(t *testing.T) {
	// $x/name returned inside the $y block: if $y has no bindings the name
	// must not appear — the d→e dependency of §3.1.
	src := `for $x in doc("x.xml")//item return <res>{
		for $y in $x//bid return <b>{$x/name, $y/amount}</b>}</res>`
	ex, err := Extract(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Compensations) != 1 {
		t.Fatalf("compensations: %+v", ex.Compensations)
	}
	if ex.Compensations[0].Dep != ex.VarNodes["y"] {
		t.Fatal("compensation must depend on $y")
	}
}

func TestEvaluatePathQuery(t *testing.T) {
	got, err := EvaluateString(`doc("bib.xml")//book/title`, bib(t))
	if err != nil {
		t.Fatal(err)
	}
	want := `<title>Data on the Web</title><title>The Syntactic Web</title>`
	if got != want {
		t.Fatalf("got %q", got)
	}
}

func TestEvaluatePathWithPredicate(t *testing.T) {
	got, err := EvaluateString(`doc("bib.xml")//book[@year = "1999"]/title`, bib(t))
	if err != nil {
		t.Fatal(err)
	}
	if got != `<title>Data on the Web</title>` {
		t.Fatalf("got %q", got)
	}
}

func TestEvaluateFLWRWithWhere(t *testing.T) {
	got, err := EvaluateString(
		`for $x in doc("bib.xml")//book where $x/@year = "1999" return <info>{$x/author}</info>`,
		bib(t))
	if err != nil {
		t.Fatal(err)
	}
	want := `<info><author>Abiteboul</author><author>Suciu</author></info>`
	if got != want {
		t.Fatalf("got %q", got)
	}
}

func TestEvaluateConstructorEmitsEmpty(t *testing.T) {
	// The XQuery rule of §3.1: constructors emit output even when the inner
	// expression is empty. The second book has no @year.
	got, err := EvaluateString(
		`for $x in doc("bib.xml")//book return <y>{$x/@year}</y>`,
		bib(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "<y/>") {
		t.Fatalf("missing empty constructor output: %q", got)
	}
}

func TestEvaluateNestedBlocks(t *testing.T) {
	doc := xmltree.MustParse("x.xml", `<site>
	  <item><name>i1</name><desc><li>a</li><li>b</li></desc></item>
	  <item><name>i2</name></item>
	</site>`)
	got, err := EvaluateString(
		`for $x in doc("x.xml")//item return <res>{$x/name/text(),
		   for $y in $x/desc return <d>{$y//li}</d>}</res>`, doc)
	if err != nil {
		t.Fatal(err)
	}
	want := `<res>i1<d><li>a</li><li>b</li></d></res><res>i2</res>`
	if got != want {
		t.Fatalf("got  %q\nwant %q", got, want)
	}
}

func TestEvaluateInnerBlockDependency(t *testing.T) {
	// The §3.1 dependency honored by scoped evaluation: $x/name inside the
	// $y block vanishes when $y has no bindings.
	doc := xmltree.MustParse("x.xml", `<site>
	  <item><name>i1</name><bid><amount>10</amount></bid></item>
	  <item><name>i2</name></item>
	</site>`)
	got, err := EvaluateString(
		`for $x in doc("x.xml")//item return <res>{
		   for $y in $x/bid return <b>{$x/name/text(), $y/amount/text()}</b>}</res>`, doc)
	if err != nil {
		t.Fatal(err)
	}
	want := `<res><b>i110</b></res><res/>`
	if got != want {
		t.Fatalf("got  %q\nwant %q", got, want)
	}
}

func TestEvaluateValueJoinAcrossGroups(t *testing.T) {
	doc := xmltree.MustParse("b.xml", `<bib>
	  <book><title>T1</title><author>Smith</author></book>
	  <book><title>T2</title><author>Jones</author></book>
	  <review><who>Smith</who><note>great</note></review>
	</bib>`)
	got, err := EvaluateString(
		`for $x in doc("b.xml")//book, $r in doc("b.xml")//review
		 where $x/author = $r/who
		 return <m>{$x/title/text()}</m>`, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != `<m>T1</m>` {
		t.Fatalf("got %q", got)
	}
}

func TestEvaluateTextPredicateInPath(t *testing.T) {
	got, err := EvaluateString(`doc("bib.xml")//book[title = "The Syntactic Web"]/author`, bib(t))
	if err != nil {
		t.Fatal(err)
	}
	if got != `<author>Tom Lerners-Bee</author>` {
		t.Fatalf("got %q", got)
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	srcs := []string{
		`doc("bib.xml")//book/title`,
		`for $x in doc("bib.xml")//book where $x/year = "1999" return <r>{$x/title}</r>`,
	}
	for _, src := range srcs {
		e := MustParse(src)
		again, err := Parse(String(e))
		if err != nil {
			t.Fatalf("reparse of %q: %v", String(e), err)
		}
		if String(e) != String(again) {
			t.Fatalf("round trip: %q vs %q", String(e), String(again))
		}
	}
}

func TestSequenceAndCloneAndStrings(t *testing.T) {
	e := MustParse(`doc("a.xml")//x, doc("a.xml")//y`)
	seq, ok := e.(*Sequence)
	if !ok || len(seq.Items) != 2 {
		t.Fatalf("sequence: %T", e)
	}
	if got := String(seq); got != `doc("a.xml")//x, doc("a.xml")//y` {
		t.Fatalf("sequence string: %q", got)
	}
	p := seq.Items[0].(*PathExpr)
	c := p.Clone()
	c.Steps[0].Label = "changed"
	if p.Steps[0].Label != "x" {
		t.Fatal("clone must be deep")
	}
	// Cond with path right-hand side renders.
	f := MustParse(`for $a in doc("d")//p, $b in doc("d")//q where $a/k = $b/k return $a/k/text()`).(*FLWR)
	if got := String(f); !strings.Contains(got, "$a/k = $b/k") {
		t.Fatalf("cond string: %q", got)
	}
}

func TestEvaluateSequenceQuery(t *testing.T) {
	doc := xmltree.MustParse("s.xml", `<r><x>1</x><y>2</y></r>`)
	got, err := EvaluateString(`doc("s.xml")//x, doc("s.xml")//y`, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != `<x>1</x><y>2</y>` {
		t.Fatalf("sequence result: %q", got)
	}
}

func TestEvaluateInequalityJoin(t *testing.T) {
	doc := xmltree.MustParse("j.xml", `<r><a><v>1</v></a><a><v>5</v></a><b><w>3</w></b></r>`)
	got, err := EvaluateString(
		`for $x in doc("j.xml")//a, $y in doc("j.xml")//b where $x/v < $y/w return <m>{$x/v/text()}</m>`, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != `<m>1</m>` {
		t.Fatalf("inequality join: %q", got)
	}
}

func TestParseBareNumberLiteral(t *testing.T) {
	f := MustParse(`for $x in doc("d")//a where $x/v >= 40 return $x/v/text()`).(*FLWR)
	if f.Where[0].Const != "40" || f.Where[0].Op != ">=" {
		t.Fatalf("bare literal: %+v", f.Where[0])
	}
}

func TestExistencePredicate(t *testing.T) {
	doc := xmltree.MustParse("e.xml", `<r><a><flag/><v>yes</v></a><a><v>no</v></a></r>`)
	got, err := EvaluateString(`doc("e.xml")//a[flag]/v`, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != `<v>yes</v>` {
		t.Fatalf("existence predicate: %q", got)
	}
}

func TestDeepQualifierPath(t *testing.T) {
	doc := xmltree.MustParse("d.xml", `<r><a><b><c>k</c></b><v>hit</v></a><a><v>miss</v></a></r>`)
	got, err := EvaluateString(`doc("d.xml")//a[b/c = "k"]/v`, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != `<v>hit</v>` {
		t.Fatalf("deep qualifier: %q", got)
	}
}

func TestReturnVariableContent(t *testing.T) {
	doc := xmltree.MustParse("v.xml", `<r><a><x>1</x></a></r>`)
	got, err := EvaluateString(`for $x in doc("v.xml")//a return <w>{$x}</w>`, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != `<w><a><x>1</x></a></w>` {
		t.Fatalf("variable content: %q", got)
	}
	got2, err := EvaluateString(`for $x in doc("v.xml")//a return <w>{$x/text()}</w>`, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != `<w>1</w>` {
		t.Fatalf("variable text: %q", got2)
	}
}

func TestExtractionDescribe(t *testing.T) {
	ex, err := Extract(MustParse(
		`for $x in doc("x.xml")//item return <res>{
		   for $y in $x/bid return <b>{$x/name/text()}</b>}</res>`))
	if err != nil {
		t.Fatal(err)
	}
	d := ex.Describe()
	for _, want := range []string{"pattern 1", "over x.xml", "compensation", "template: <res>"} {
		if !strings.Contains(d, want) {
			t.Fatalf("describe missing %q:\n%s", want, d)
		}
	}
}

func TestAlgebraicTranslationRendering(t *testing.T) {
	// A simple path query becomes a structural-join chain over tag-derived
	// relations (the full(q) shape of §3.3.1).
	out, err := Algebraic(MustParse(`doc("bib.xml")//book[year = "1999"]/title`))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"e_book", "e_title", "e_year", "⋈≺", "⋉≺", `σ[val="1999"]`, "xml_templ"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %s", want, out)
		}
	}
	// The Figure 3.3 shapes: nested blocks yield nest-outer joins, separate
	// variables a cartesian product.
	out2, err := Algebraic(MustParse(
		`for $x in doc("a.xml")//a, $y in doc("b.xml")//b where $x/k = $y/k return <r>{$x//c}</r>`))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{" × ", "σ[", "⟕ⁿ≺≺", "xml_templ[<r>"} {
		if !strings.Contains(out2, want) {
			t.Fatalf("missing %q in %s", want, out2)
		}
	}
}
