// Package xquery implements the XQuery subset Q of §3.2 — core
// XPath{/,//,*,[]} with text(), variable-relative paths, concatenation,
// element constructors, and nested for-where-return blocks — together with
// the Chapter 3 contribution: an algorithm extracting maximal XAM tree
// patterns from queries, where patterns span nested query blocks. The
// extraction also yields the tagging template and the compensating actions
// (value joins across patterns, null-dependency selections) needed to
// rebuild the query from its patterns.
package xquery

import (
	"fmt"
	"strings"

	"xamdb/internal/xam"
)

// Expr is any expression of the Q subset.
type Expr interface {
	exprString(sb *strings.Builder)
}

// String renders any expression back to query syntax.
func String(e Expr) string {
	var sb strings.Builder
	e.exprString(&sb)
	return sb.String()
}

// Step is one navigation step of a path expression.
type Step struct {
	Axis  xam.Axis
	Label string // element name, "*", or "@name"
	Preds []Pred // the [ ] qualifiers on this step
}

// Pred is a step qualifier: a relative existence path, optionally compared
// to a constant (e.g. [d/text() = 5] or [c]).
type Pred struct {
	Path  *PathExpr // relative, starting with a child step
	Op    string    // "" for pure existence
	Const string
}

// PathExpr is a path query: absolute over a document, or relative to a
// variable binding (§3.2 classes (1) and (2)).
type PathExpr struct {
	Doc   string // document name for absolute paths ("" when Var is set)
	Var   string // variable name without '$' for relative paths
	Steps []Step
	Text  bool // ends in /text()
}

func (p *PathExpr) exprString(sb *strings.Builder) {
	if p.Var != "" {
		sb.WriteString("$" + p.Var)
	} else {
		fmt.Fprintf(sb, "doc(%q)", p.Doc)
	}
	for _, s := range p.Steps {
		sb.WriteString(s.Axis.String())
		sb.WriteString(s.Label)
		for _, pr := range s.Preds {
			sb.WriteByte('[')
			pr.Path.exprString(sb)
			if pr.Op != "" {
				fmt.Fprintf(sb, " %s %q", pr.Op, pr.Const)
			}
			sb.WriteByte(']')
		}
	}
	if p.Text {
		sb.WriteString("/text()")
	}
}

// Clone returns a deep copy of the path.
func (p *PathExpr) Clone() *PathExpr {
	out := *p
	out.Steps = make([]Step, len(p.Steps))
	for i, s := range p.Steps {
		out.Steps[i] = s
		out.Steps[i].Preds = make([]Pred, len(s.Preds))
		for j, pr := range s.Preds {
			out.Steps[i].Preds[j] = pr
			out.Steps[i].Preds[j].Path = pr.Path.Clone()
		}
	}
	return &out
}

// Sequence is the concatenation e1, e2, … (§3.2 class (3)).
type Sequence struct {
	Items []Expr
}

func (s *Sequence) exprString(sb *strings.Builder) {
	for i, e := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		e.exprString(sb)
	}
}

// ElementCtor is an element constructor ⟨t⟩{exp}⟨/t⟩ (§3.2 class (4)).
type ElementCtor struct {
	Tag     string
	Content []Expr
}

func (c *ElementCtor) exprString(sb *strings.Builder) {
	fmt.Fprintf(sb, "<%s>{", c.Tag)
	for i, e := range c.Content {
		if i > 0 {
			sb.WriteString(", ")
		}
		e.exprString(sb)
	}
	fmt.Fprintf(sb, "}</%s>", c.Tag)
}

// Binding is one "for $x in path" clause member.
type Binding struct {
	Var  string
	Path *PathExpr
}

// Cond is one where-clause conjunct: path θ constant or path θ path.
type Cond struct {
	Left  *PathExpr
	Op    string
	Right *PathExpr // nil for constant comparisons
	Const string
}

// FLWR is a for-where-return block (§3.2 class (5)).
type FLWR struct {
	Bindings []Binding
	Where    []Cond
	Return   Expr
}

func (f *FLWR) exprString(sb *strings.Builder) {
	sb.WriteString("for ")
	for i, b := range f.Bindings {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, "$%s in ", b.Var)
		b.Path.exprString(sb)
	}
	if len(f.Where) > 0 {
		sb.WriteString(" where ")
		for i, c := range f.Where {
			if i > 0 {
				sb.WriteString(" and ")
			}
			c.Left.exprString(sb)
			fmt.Fprintf(sb, " %s ", c.Op)
			if c.Right != nil {
				c.Right.exprString(sb)
			} else {
				fmt.Fprintf(sb, "%q", c.Const)
			}
		}
	}
	sb.WriteString(" return ")
	f.Return.exprString(sb)
}
