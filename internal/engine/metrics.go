package engine

import (
	"xamdb/internal/obs"
)

// Engine metric names, centralized so monitoring surfaces and tests refer
// to one set of constants instead of scattered string literals. The
// Prometheus exporter (obs.Snapshot.WriteProm) sanitizes the dots to
// underscores; see DESIGN.md "Observability" for the semantics of each.
const (
	MetricQueries            = "engine.queries"
	MetricQueryErrors        = "engine.query_errors"
	MetricQueriesDegraded    = "engine.queries_degraded"
	MetricDegradations       = "engine.degradations"
	MetricPlansTried         = "engine.plans_tried"
	MetricBaseScans          = "engine.base_scans"
	MetricPredAbsorbed       = "engine.pred_absorbed"
	MetricPredResidual       = "engine.pred_residual"
	MetricPlanCacheHits      = "engine.plan_cache_hits"
	MetricPlanCacheMisses    = "engine.plan_cache_misses"
	MetricPlanCacheEvictions = "engine.plan_cache_evictions"
	MetricViewsMaterialized  = "engine.views_materialized"
	MetricInflight           = "engine.inflight"
	MetricQueryNS            = "engine.query_ns"
	MetricRewriteNS          = "engine.rewrite_ns"
	MetricMaterializeNS      = "engine.materialize_ns"
	MetricExecuteNS          = "engine.execute_ns"
	MetricFallbackDepth      = "engine.fallback_depth"
	// MetricBatches counts batches drained through the vectorized execution
	// path; MetricBatchFallbacks counts plan nodes that had no batch form
	// and fell back to the row engine behind a Rebatch adapter.
	MetricBatches        = "engine.batches"
	MetricBatchFallbacks = "engine.batch_fallbacks"

	// State gauges, synced from the planning snapshots by SyncStateGauges
	// (scrape time), not maintained on the query path.
	MetricPlanCacheSize      = "engine.plan_cache_size"
	MetricViewExtentsBuilt   = "engine.view_extents_built"
	MetricViewExtentsUnbuilt = "engine.view_extents_unbuilt"
	MetricViewExtentsFailed  = "engine.view_extents_failed"
)

// MetricViewMaterializedPrefix prefixes the per-view materialization
// counters: MetricViewMaterializedPrefix + viewName counts cold extent
// builds of that view, so cold-start spikes are attributable.
const MetricViewMaterializedPrefix = "engine.view_materialized."

// engineMetrics caches the engine's hot metric handles so the per-query
// path does one atomic load instead of a dozen mutex-guarded registry
// lookups (which serialize under concurrent load).
type engineMetrics struct {
	reg               *obs.Registry
	queries           *obs.Counter
	queryErrors       *obs.Counter
	queriesDegraded   *obs.Counter
	degradations      *obs.Counter
	plansTried        *obs.Counter
	baseScans         *obs.Counter
	predAbsorbed      *obs.Counter
	predResidual      *obs.Counter
	cacheHits         *obs.Counter
	cacheMisses       *obs.Counter
	cacheEvictions    *obs.Counter
	viewsMaterialized *obs.Counter
	inflight          *obs.Gauge
	queryNS           *obs.Histogram
	rewriteNS         *obs.Histogram
	materializeNS     *obs.Histogram
	executeNS         *obs.Histogram
	fallbackDepth     *obs.Histogram
	batches           *obs.Counter
	batchFallbacks    *obs.Counter

	planCacheSize  *obs.Gauge
	extentsBuilt   *obs.Gauge
	extentsUnbuilt *obs.Gauge
	extentsFailed  *obs.Gauge
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	return &engineMetrics{
		reg:               reg,
		queries:           reg.Counter(MetricQueries),
		queryErrors:       reg.Counter(MetricQueryErrors),
		queriesDegraded:   reg.Counter(MetricQueriesDegraded),
		degradations:      reg.Counter(MetricDegradations),
		plansTried:        reg.Counter(MetricPlansTried),
		baseScans:         reg.Counter(MetricBaseScans),
		predAbsorbed:      reg.Counter(MetricPredAbsorbed),
		predResidual:      reg.Counter(MetricPredResidual),
		cacheHits:         reg.Counter(MetricPlanCacheHits),
		cacheMisses:       reg.Counter(MetricPlanCacheMisses),
		cacheEvictions:    reg.Counter(MetricPlanCacheEvictions),
		viewsMaterialized: reg.Counter(MetricViewsMaterialized),
		inflight:          reg.Gauge(MetricInflight),
		queryNS:           reg.Histogram(MetricQueryNS),
		rewriteNS:         reg.Histogram(MetricRewriteNS),
		materializeNS:     reg.Histogram(MetricMaterializeNS),
		executeNS:         reg.Histogram(MetricExecuteNS),
		fallbackDepth:     reg.Histogram(MetricFallbackDepth),
		batches:           reg.Counter(MetricBatches),
		batchFallbacks:    reg.Counter(MetricBatchFallbacks),
		planCacheSize:     reg.Gauge(MetricPlanCacheSize),
		extentsBuilt:      reg.Gauge(MetricViewExtentsBuilt),
		extentsUnbuilt:    reg.Gauge(MetricViewExtentsUnbuilt),
		extentsFailed:     reg.Gauge(MetricViewExtentsFailed),
	}
}

// Registry returns the engine's metrics registry (the process-wide default
// when Metrics is nil) — the handle monitoring surfaces snapshot and
// export.
func (e *Engine) Registry() *obs.Registry { return e.metrics() }

// SyncStateGauges recomputes the externally visible planning-state gauges
// — plan-cache entries and per-view extent states (built / unbuilt /
// failed) summed over every document's current snapshot. It is called at
// scrape time (serve's /metrics handler, uload -metrics) rather than
// maintained on the query path, so lazy materialization stays observable
// without taxing queries.
func (e *Engine) SyncStateGauges() {
	m := e.m()
	var cacheEntries, built, unbuilt, failed int64
	e.mu.RLock()
	docs := make([]*docState, 0, len(e.docs))
	for _, st := range e.docs {
		docs = append(docs, st)
	}
	e.mu.RUnlock()
	for _, st := range docs {
		pe := st.plan()
		if pe.cache != nil {
			cacheEntries += int64(pe.cache.len())
		}
		for _, x := range pe.extents {
			switch x.state.Load() {
			case xsBuilt:
				built++
			case xsFailed:
				failed++
			default:
				unbuilt++
			}
		}
	}
	m.planCacheSize.Set(cacheEntries)
	m.extentsBuilt.Set(built)
	m.extentsUnbuilt.Set(unbuilt)
	m.extentsFailed.Set(failed)
}
