package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xamdb/internal/physical"
)

// budgetCtx attaches a fresh budget with the given limits to a cancellable
// context, mirroring what the admission layer does per query.
func budgetCtx(limits physical.BudgetLimits) context.Context {
	ctx, cancel := context.WithCancelCause(context.Background())
	b := physical.NewBudget(limits, cancel)
	return physical.WithBudget(ctx, b)
}

// TestRowsOutQuotaKillsQuery checks the rows-out quota aborts the query with
// a quota error instead of returning an oversized result.
func TestRowsOutQuotaKillsQuery(t *testing.T) {
	e := newEngine(t)
	ctx := budgetCtx(physical.BudgetLimits{MaxRowsOut: 1})
	out, _, err := e.QueryContext(ctx, `doc("bib.xml")//book/title`)
	if !errors.Is(err, physical.ErrQuotaExceeded) {
		t.Fatalf("want quota kill, got out=%q err=%v", out, err)
	}
	if out != "" {
		t.Fatalf("over-quota result must not be returned: %q", out)
	}
}

// TestRowsOutQuotaUnderLimitPasses checks a result within quota is served.
func TestRowsOutQuotaUnderLimitPasses(t *testing.T) {
	e := newEngine(t)
	ctx := budgetCtx(physical.BudgetLimits{MaxRowsOut: 10})
	out, _, err := e.QueryContext(ctx, `doc("bib.xml")//book/title`)
	if err != nil || out == "" {
		t.Fatalf("within-quota query must serve: out=%q err=%v", out, err)
	}
}

// TestExtentBytesQuotaAbortsNotDegrades checks the core cascade interaction:
// a plan killed by the extent-byte quota must abort the query, never fall
// back to the base scan (which would spend more resources, not fewer).
func TestExtentBytesQuotaAbortsNotDegrades(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "vtitles", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	ctx := budgetCtx(physical.BudgetLimits{MaxExtentBytes: 1})
	out, rep, err := e.QueryContext(ctx, `doc("bib.xml")//book/title`)
	if !errors.Is(err, physical.ErrQuotaExceeded) {
		t.Fatalf("want quota kill, got out=%q err=%v", out, err)
	}
	for _, d := range rep.Degradations {
		if strings.Contains(d.Err, "quota") {
			t.Fatalf("quota kill must not enter the fallback cascade: %+v", rep.Degradations)
		}
	}
}

// TestTupleQuotaKillsPhysicalPlan checks the checkpoint-level work quota
// kills a physically-executed plan mid-flight.
func TestTupleQuotaKillsPhysicalPlan(t *testing.T) {
	e := newEngine(t)
	e.UsePhysical = true
	if err := e.RegisterView("bib.xml", "vtitles", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	// Generous extent bytes, but a tuple budget of 1: the first checkpoint
	// interval (64 tuples) overshoots it.
	ctx := budgetCtx(physical.BudgetLimits{MaxTuples: 1})
	_, _, err := e.QueryContext(ctx, `doc("bib.xml")//book/title`)
	if !errors.Is(err, physical.ErrQuotaExceeded) {
		t.Fatalf("want tuple-quota kill, got %v", err)
	}
}

// TestNoBudgetUnlimited checks queries without a budget are unaffected.
func TestNoBudgetUnlimited(t *testing.T) {
	e := newEngine(t)
	out, _, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil || out == "" {
		t.Fatalf("budget-free query must serve: out=%q err=%v", out, err)
	}
}

// TestQueryLogOutcomes checks the query log classifies served, errored and
// quota-killed queries with the admission wire names.
func TestQueryLogOutcomes(t *testing.T) {
	e := newEngine(t)

	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Query(`doc("nope.xml")//x`); err == nil {
		t.Fatal("unknown document must error")
	}
	ctx := budgetCtx(physical.BudgetLimits{MaxRowsOut: 1})
	if _, _, err := e.QueryContext(ctx, `doc("bib.xml")//book/title`); err == nil {
		t.Fatal("quota query must fail")
	}

	recent := e.QueryLog.Recent(3)
	if len(recent) != 3 {
		t.Fatalf("want 3 records, got %d", len(recent))
	}
	// Recent is newest-first.
	if recent[0].Outcome != "quota_killed" {
		t.Fatalf("quota outcome: %q", recent[0].Outcome)
	}
	if recent[1].Outcome != "error" {
		t.Fatalf("error outcome: %q", recent[1].Outcome)
	}
	if recent[2].Outcome != "served" {
		t.Fatalf("served outcome: %q", recent[2].Outcome)
	}
}
