package engine

import (
	"strings"
	"testing"

	"xamdb/internal/storage"
	"xamdb/internal/summary"
)

const bibXML = `<bib>
  <book year="1999">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Suciu</author>
  </book>
  <book year="2002">
    <title>The Syntactic Web</title>
    <author>Tom Lerners-Bee</author>
  </book>
</bib>`

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	if err := e.LoadDocument("bib.xml", bibXML); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestQueryBaseFallback(t *testing.T) {
	e := newEngine(t)
	got, rep, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if got != `<title>Data on the Web</title><title>The Syntactic Web</title>` {
		t.Fatalf("result: %q", got)
	}
	if len(rep.Plans) != 1 || !strings.Contains(rep.Plans[0], "base scan") {
		t.Fatalf("report: %s", rep)
	}
}

func TestQueryUsesRegisteredView(t *testing.T) {
	e := newEngine(t)
	// A view that matches the whole query pattern of //book/title queries.
	if err := e.RegisterView("bib.xml", "vtitles",
		`// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	got, rep, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if got != `<title>Data on the Web</title><title>The Syntactic Web</title>` {
		t.Fatalf("result: %q", got)
	}
	if !strings.Contains(rep.Plans[0], "vtitles") {
		t.Fatalf("view not used: %s", rep)
	}
}

func TestQueryFLWRWithStore(t *testing.T) {
	e := New()
	e.FallbackToBase = true
	if err := e.LoadDocument("bib.xml", bibXML); err != nil {
		t.Fatal(err)
	}
	st, err := storage.TagPartitioned(e.Document("bib.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterStore("bib.xml", st); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.Query(
		`for $x in doc("bib.xml")//book where $x/@year = "1999" return <r>{$x/title}</r>`)
	if err != nil {
		t.Fatal(err)
	}
	if got != `<r><title>Data on the Web</title></r>` {
		t.Fatalf("result: %q", got)
	}
}

func TestExplainWithoutExecution(t *testing.T) {
	e := newEngine(t)
	rep, err := e.Explain(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Patterns) != 1 || !strings.Contains(rep.String(), "pattern 1") {
		t.Fatalf("explain: %s", rep)
	}
}

func TestUnknownDocument(t *testing.T) {
	e := newEngine(t)
	if _, _, err := e.Query(`doc("nope.xml")//a`); err == nil {
		t.Fatal("unknown document must error")
	}
	if err := e.RegisterView("nope.xml", "v", `// a{id}`); err == nil {
		t.Fatal("register on unknown document must error")
	}
}

func TestNoFallbackErrors(t *testing.T) {
	e := newEngine(t)
	e.FallbackToBase = false
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err == nil {
		t.Fatal("want error without views and without fallback")
	}
}

func TestSummaryAccess(t *testing.T) {
	e := newEngine(t)
	s := e.Summary("bib.xml")
	if s == nil || s.NodeByPath("/bib/book/title") == nil {
		t.Fatal("summary missing")
	}
	var _ *summary.Summary = s
}

func TestCrossDocumentJoin(t *testing.T) {
	e := New()
	if err := e.LoadDocument("a.xml", `<as><a><k>1</k></a><a><k>2</k></a></as>`); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadDocument("b.xml", `<bs><b><k>2</k><v>match</v></b></bs>`); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.Query(
		`for $x in doc("a.xml")//a, $y in doc("b.xml")//b where $x/k = $y/k return <m>{$y/v/text()}</m>`)
	if err != nil {
		t.Fatal(err)
	}
	if got != `<m>match</m>` {
		t.Fatalf("result: %q", got)
	}
}

func TestEngineCatalogRoundTrip(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/catalog.db"
	if err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	again, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := again.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("reloaded engine answers differently: %q vs %q", got, want)
	}
	if !strings.Contains(rep.Plans[0], "vt") {
		t.Fatalf("reloaded engine must reuse the view: %s", rep)
	}
}

func TestLoadCorruptCatalog(t *testing.T) {
	if _, err := Load(strings.NewReader("junk")); err == nil {
		t.Fatal("corrupt catalog must error")
	}
}

func TestQueryPhysicalExecution(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	logical, _, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	e.UsePhysical = true
	physical, rep, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if physical != logical {
		t.Fatalf("physical execution differs: %q vs %q", physical, logical)
	}
	if !strings.Contains(rep.Plans[0], "vt") {
		t.Fatalf("view must still be used: %s", rep)
	}
}
